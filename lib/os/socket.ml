type conn = {
  id : int;
  to_server : Buffer.t;
  mutable to_server_pos : int;
  to_client : Buffer.t;
  mutable to_client_pos : int;
  mutable client_closed : bool;
  mutable server_closed : bool;
}

type listener = { queue : conn Queue.t }

(* Atomic: systems in different domains (parallel attack campaign,
   bench fan-out) allocate connection ids concurrently. *)
let next_id = Atomic.make 0

let make_listener () = { queue = Queue.create () }

let make_conn () =
  {
    id = 1 + Atomic.fetch_and_add next_id 1;
    to_server = Buffer.create 256;
    to_server_pos = 0;
    to_client = Buffer.create 256;
    to_client_pos = 0;
    client_closed = false;
    server_closed = false;
  }

let connect listener =
  let conn = make_conn () in
  Queue.push conn listener.queue;
  conn

let pending listener = Queue.length listener.queue

let accept listener = Queue.take_opt listener.queue

let conn_id conn = conn.id

let client_send conn data =
  if conn.client_closed then invalid_arg "Socket.client_send: connection half-closed";
  Buffer.add_string conn.to_server data

let client_close conn = conn.client_closed <- true

let client_recv conn =
  let available = Buffer.length conn.to_client - conn.to_client_pos in
  if available = 0 then ""
  else begin
    let data = Buffer.sub conn.to_client conn.to_client_pos available in
    conn.to_client_pos <- conn.to_client_pos + available;
    data
  end

let server_closed conn = conn.server_closed

let server_read conn ~max =
  let available = Buffer.length conn.to_server - conn.to_server_pos in
  let n = min max available in
  if n <= 0 then ""
  else begin
    let data = Buffer.sub conn.to_server conn.to_server_pos n in
    conn.to_server_pos <- conn.to_server_pos + n;
    data
  end

let server_has_data conn = Buffer.length conn.to_server > conn.to_server_pos

let server_at_eof conn = conn.client_closed && not (server_has_data conn)

let server_write conn data =
  Buffer.add_string conn.to_client data;
  String.length data

let server_close conn = conn.server_closed <- true
