(** Static site content for the case-study server — the WebBench-style
    file mix the Table 3 workload requests. *)

type file = { name : string; size : int }

val files : file list
(** The document-root inventory (sizes chosen to straddle the server's
    4 KiB read buffer, giving a mix of one-read and streamed
    responses). *)

val content : file -> string
(** Deterministic page content of exactly [size] bytes. *)

val install : Nv_os.Vfs.t -> unit
(** Install the document root under [/var/www] (world-readable,
    owned by root). *)

val request_mix : string array
(** URL paths in the proportions the load generator draws from. *)
