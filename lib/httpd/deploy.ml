module Variation = Nv_core.Variation
module Nsystem = Nv_core.Nsystem
module Ut = Nv_transform.Uid_transform

type config = Unmodified_single | Transformed_single | Two_variant_address | Two_variant_uid

let all = [ Unmodified_single; Transformed_single; Two_variant_address; Two_variant_uid ]

let name = function
  | Unmodified_single -> "config1"
  | Transformed_single -> "config2"
  | Two_variant_address -> "config3"
  | Two_variant_uid -> "config4"

let description = function
  | Unmodified_single -> "Unmodified httpd, single process"
  | Transformed_single -> "UID-transformed httpd, single process"
  | Two_variant_address -> "2-variant address-space partitioning"
  | Two_variant_uid -> "2-variant UID data diversity"

let variation = function
  | Unmodified_single -> Variation.single
  | Transformed_single -> Variation.single
  | Two_variant_address -> Variation.address_partition
  | Two_variant_uid -> Variation.uid_diversity

let world ?users variation =
  let vfs = Nsystem.standard_vfs ?users ~variation () in
  Site.install vfs;
  vfs

let build ?(log_uid = true) ?mode ?parallel ?engine ?recover ?users config =
  let variation = variation config in
  let vfs = world ?users variation in
  let source = Httpd_source.source ~log_uid () in
  match config with
  | Unmodified_single | Two_variant_address ->
    (match Nv_minic.Codegen.compile_source source with
    | image -> Ok (Nsystem.of_one_image ~vfs ?parallel ?engine ?recover ~variation image)
    | exception Nv_minic.Codegen.Error message -> Error message)
  | Transformed_single | Two_variant_uid -> (
    match Ut.transform_source ?mode ~variation source with
    | Error _ as e -> e
    | Ok (images, _report) ->
      Ok (Nsystem.create ~vfs ?parallel ?engine ?recover ~variation images))

let transform_report ?(log_uid = true) ?mode () =
  let source = Httpd_source.source ~log_uid () in
  match Ut.transform_source ?mode ~variation:Variation.uid_diversity source with
  | Error _ as e -> e
  | Ok (_images, report) -> Ok report
