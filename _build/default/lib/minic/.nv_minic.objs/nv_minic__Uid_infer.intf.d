lib/minic/uid_infer.mli: Ast
