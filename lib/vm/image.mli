(** Relocatable program images and the loader.

    An image is laid out in {e segment-offset space}: code starts at
    offset 0, initialized data follows (16-byte aligned), then zeroed
    bss. Instructions whose immediate is an address carry a relocation
    mark; the loader adds the variant's segment [base] to those
    immediates. Loading the same image at two different bases is
    exactly the address-space-partitioning variation: the two variants
    are behaviourally identical but share no valid absolute
    addresses. *)

type item = { instr : Isa.t; relocate : bool }
(** One instruction; [relocate] means the embedded immediate (a jump /
    call target or an [Imm] operand) is a segment offset that the
    loader must rebase. *)

type t = {
  code : item array;
  data : Bytes.t;  (** initialized globals, at [data_offset] *)
  bss_size : int;  (** zeroed region after [data] *)
  entry_offset : int;  (** byte offset of the first executed instruction *)
  symbols : (string * int) list;  (** name -> segment offset *)
}

val data_offset : t -> int
(** Offset of the data region: code size rounded up to 16. *)

val image_size : t -> int
(** Bytes needed for code + data + bss (no stack). *)

val symbol : t -> string -> int
(** Segment offset of a symbol. Raises [Not_found]. *)

type layout = {
  base : int;
  code_start : int;
  data_start : int;
  bss_end : int;
  stack_top : int;
  abs_symbols : (string * int) list;  (** name -> absolute address *)
}

type loaded = { cpu : Cpu.t; memory : Memory.t; layout : layout }

val load : ?stack_size:int -> t -> base:int -> size:int -> tag:int -> loaded
(** Materialize the image into a fresh segment [\[base, base+size)]
    with instruction tag [tag] and the stack pointer at the top of the
    segment. Raises [Invalid_argument] if the image plus [stack_size]
    does not fit in [size]. *)

val abs_symbol : loaded -> string -> int
(** Absolute address of a symbol in a loaded instance. Raises
    [Not_found]. *)

type snapshot
(** A checkpoint of one loaded variant: the CPU's architectural state
    ({!Cpu.snapshot}) plus the full segment bytes
    ({!Memory.snapshot}). The layout is immutable and not captured. *)

val snapshot : loaded -> snapshot

val restore : loaded -> snapshot -> unit
(** Roll the variant back to the snapshot. The segment's
    decoded-instruction cache is invalidated as part of the memory
    restore. *)
