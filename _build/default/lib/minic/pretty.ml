let rec ty = function
  | Ast.Tvoid -> "void"
  | Ast.Tint -> "int"
  | Ast.Tchar -> "char"
  | Ast.Tuid -> "uid_t"
  | Ast.Tptr t -> ty t ^ "*"
  | Ast.Tarray (t, n) -> Printf.sprintf "%s[%d]" (ty t) n

let unop = function Ast.Neg -> "-" | Ast.Lnot -> "!" | Ast.Bnot -> "~"

let binop = function
  | Ast.Add -> "+" | Ast.Sub -> "-" | Ast.Mul -> "*" | Ast.Div -> "/" | Ast.Mod -> "%"
  | Ast.Band -> "&" | Ast.Bor -> "|" | Ast.Bxor -> "^" | Ast.Shl -> "<<" | Ast.Shr -> ">>"
  | Ast.Eq -> "==" | Ast.Ne -> "!=" | Ast.Lt -> "<" | Ast.Le -> "<=" | Ast.Gt -> ">"
  | Ast.Ge -> ">=" | Ast.Land -> "&&" | Ast.Lor -> "||"

let escape_string s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\000' -> Buffer.add_string buf "\\0"
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let escape_char = function
  | '\n' -> "\\n"
  | '\t' -> "\\t"
  | '\r' -> "\\r"
  | '\000' -> "\\0"
  | '\\' -> "\\\\"
  | '\'' -> "\\'"
  | c -> String.make 1 c

let rec expr = function
  | Ast.Int_lit v -> if v < 0 then Printf.sprintf "(%d)" v else string_of_int v
  | Ast.Char_lit c -> Printf.sprintf "'%s'" (escape_char c)
  | Ast.Str_lit s -> Printf.sprintf "\"%s\"" (escape_string s)
  | Ast.Var name -> name
  | Ast.Unop (op, e) -> Printf.sprintf "%s(%s)" (unop op) (expr e)
  | Ast.Binop (op, a, b) -> Printf.sprintf "(%s %s %s)" (expr a) (binop op) (expr b)
  | Ast.Assign (lv, e) -> Printf.sprintf "(%s = %s)" (lvalue lv) (expr e)
  | Ast.Call (name, args) ->
    Printf.sprintf "%s(%s)" name (String.concat ", " (List.map expr args))
  | Ast.Index (e, i) -> Printf.sprintf "%s[%s]" (expr_atom e) (expr i)
  | Ast.Deref e -> Printf.sprintf "*(%s)" (expr e)
  | Ast.Addr_of lv -> Printf.sprintf "&%s" (lvalue lv)
  | Ast.Cast (t, e) -> Printf.sprintf "(%s)(%s)" (ty t) (expr e)

and expr_atom e =
  match e with
  | Ast.Var _ | Ast.Int_lit _ -> expr e
  | _ -> Printf.sprintf "(%s)" (expr e)

and lvalue = function
  | Ast.Lvar name -> name
  | Ast.Lindex (e, i) -> Printf.sprintf "%s[%s]" (expr_atom e) (expr i)
  | Ast.Lderef e -> Printf.sprintf "*(%s)" (expr e)

let rec stmt ?(indent = 0) s =
  let pad = String.make indent ' ' in
  match s with
  | Ast.Sexpr e -> Printf.sprintf "%s%s;" pad (expr e)
  | Ast.Sdecl (t, name, init) -> (
    let base, suffix =
      match t with
      | Ast.Tarray (elem, n) -> (ty elem, Printf.sprintf "[%d]" n)
      | _ -> (ty t, "")
    in
    match init with
    | None -> Printf.sprintf "%s%s %s%s;" pad base name suffix
    | Some e -> Printf.sprintf "%s%s %s%s = %s;" pad base name suffix (expr e))
  | Ast.Sif (cond, then_s, else_s) ->
    let header = Printf.sprintf "%sif (%s) {\n%s" pad (expr cond) (stmts (indent + 2) then_s) in
    if else_s = [] then header ^ Printf.sprintf "%s}" pad
    else
      header
      ^ Printf.sprintf "%s} else {\n%s%s}" pad (stmts (indent + 2) else_s) pad
  | Ast.Swhile (cond, body) ->
    Printf.sprintf "%swhile (%s) {\n%s%s}" pad (expr cond) (stmts (indent + 2) body) pad
  | Ast.Sreturn None -> pad ^ "return;"
  | Ast.Sreturn (Some e) -> Printf.sprintf "%sreturn %s;" pad (expr e)
  | Ast.Sbreak -> pad ^ "break;"
  | Ast.Scontinue -> pad ^ "continue;"
  | Ast.Sblock body -> Printf.sprintf "%s{\n%s%s}" pad (stmts (indent + 2) body) pad

and stmts indent body =
  String.concat "" (List.map (fun s -> stmt ~indent s ^ "\n") body)

let global { Ast.gname; gty; ginit } =
  let base, suffix =
    match gty with
    | Ast.Tarray (elem, n) -> (ty elem, Printf.sprintf "[%d]" n)
    | _ -> (ty gty, "")
  in
  let init =
    match ginit with
    | Ast.Init_none -> ""
    | Ast.Init_int v -> Printf.sprintf " = %d" v
    | Ast.Init_string s -> Printf.sprintf " = \"%s\"" (escape_string s)
    | Ast.Init_array vs ->
      Printf.sprintf " = {%s}" (String.concat ", " (List.map string_of_int vs))
  in
  Printf.sprintf "%s %s%s%s;" base gname suffix init

let func { Ast.fname; ret; params; body } =
  let params_text =
    if params = [] then "void"
    else String.concat ", " (List.map (fun (t, n) -> Printf.sprintf "%s %s" (ty t) n) params)
  in
  Printf.sprintf "%s %s(%s) {\n%s}" (ty ret) fname params_text (stmts 2 body)

let program decls =
  decls
  |> List.map (function Ast.Dglobal g -> global g | Ast.Dfunc f -> func f)
  |> String.concat "\n\n"
  |> fun body -> body ^ "\n"
