(** Divergence alarms raised by the monitor.

    Any divergence between variants is interpreted as an attack
    (Section 1: "instead of using a majority vote we interpret any
    divergence in behavior as a security violation"). The alarm reason
    records which check failed, for the attack-matrix reporting. *)

type reason =
  | Variant_fault of { variant : int; fault : Nv_vm.Cpu.fault }
      (** One variant entered an alarm state (segfault, bad tag...) —
          the detection path of address partitioning and tagging. *)
  | Variant_halted of { variant : int }
      (** A variant executed [halt] instead of exiting via the kernel. *)
  | Syscall_mismatch of { numbers : int array }
      (** Variants trapped on different system calls. *)
  | Arg_mismatch of { syscall : int; arg_index : int; values : int array }
      (** A (canonicalized) argument differed across variants; for UID
          arguments the values are post-[R^-1], so this is the paper's
          core detection point for corrupted UIDs. *)
  | String_mismatch of {
      syscall : int;
      arg_index : int;
      lengths : int array;
      digests : int array;
    }
      (** A string argument's bytes differed across variants. Carries
          per-variant lengths and FNV-1a digests (never the raw
          contents, which may hold secrets) so the diagnostic
          distinguishes divergent contents from divergent lengths. *)
  | Output_mismatch of { syscall : int; fd : int }
      (** Variants tried to write different bytes to a shared
          descriptor (e.g. a UID leaking into a log message). *)
  | Cond_mismatch of { values : int array }
      (** [cond_chk] saw different truth values (Table 2). *)
  | Exit_mismatch of { statuses : int array }
  | Signal_delivery_failed of { variant : int; detail : string }
      (** An asynchronous-event handler misbehaved during delivery
          (made a system call, faulted, or looped). *)

val pp : Format.formatter -> reason -> unit

val to_string : reason -> string

val short_label : reason -> string
(** One-word class for tables: ["fault"], ["halt"], ["syscall"],
    ["arg"], ["string"], ["output"], ["cond"], ["exit"]. *)

val divergent_indices : int array -> int list
(** Indices whose value disagrees with the modal (majority) value,
    ties broken toward index 0's value — so a two-variant mismatch
    implicates variant 1. With N=2 the monitor can only prove
    disagreement, not which side is at fault; the forensics bundle
    lists every index differing from the majority. *)

val to_json : reason -> Nv_util.Metrics.Json.value
(** Structured rendering for forensics bundles: always ["class"] and
    ["message"], plus reason-specific fields — for mismatches the
    syscall number and name, the per-variant canonical values and a
    ["divergent_variants"] list ({!divergent_indices}). *)
