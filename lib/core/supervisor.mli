(** Self-healing recovery on top of the monitor: checkpoint, rollback,
    resume.

    The paper's framework is fail-stop — any divergence halts the
    system. Follow-on N-variant work (DMON, dMVX; see PAPERS.md)
    recovers instead: roll the variants back to a known-good state,
    shed the offending input, and keep serving. This module implements
    that discipline over {!Monitor.snapshot}/{!Monitor.restore}:

    - a checkpoint of every variant plus the kernel is taken at
      {!Monitor.Blocked_on_accept} boundaries, every
      [checkpoint_interval] rendezvous;
    - on {!Monitor.Alarm} the system is rolled back to the last
      checkpoint, live connections (including the one that carried the
      attack) are dropped, and the accept loop resumes;
    - a restart budget — at most [max_recoveries] rollbacks per
      [recovery_window] rendezvous — bounds deterministic crash loops,
      degrading to the paper's fail-stop behaviour once exhausted.

    Recovery is bit-deterministic: sequential and parallel
    ([NV_PARALLEL]) executions take identical checkpoints, roll back at
    identical points and produce identical metrics. *)

type config = {
  checkpoint_interval : int;
      (** rendezvous between checkpoints (at accept boundaries); >= 1 *)
  max_recoveries : int;  (** rollbacks allowed per window; >= 0 *)
  recovery_window : int;  (** window length in rendezvous; >= 1 *)
}

val default_config : config
(** Checkpoint at every accept boundary; at most 8 recoveries per
    100_000 rendezvous. *)

type t

val create : ?config:config -> Monitor.t -> t
(** Wrap a monitor. Takes the initial checkpoint immediately (the
    pre-run entry state), so recovery is defined from the first
    quantum. Registers [supervisor.recoveries],
    [supervisor.dropped_connections], [supervisor.checkpoints] and
    [supervisor.failstop] counters in the monitor's registry. Raises
    [Invalid_argument] on an out-of-range config. *)

val run : ?fuel:int -> t -> Monitor.outcome
(** Like {!Monitor.run}, but alarms are absorbed while the restart
    budget lasts: on alarm the system rolls back to the last
    checkpoint (dropping live connections) and resumes. Returns
    {!Monitor.Alarm} only once the budget is exhausted — from then on
    the supervisor is fail-stop ({!exhausted}). Checkpoints are taken
    when the system parks on accept. *)

val monitor : t -> Monitor.t
val config : t -> config

val recoveries : t -> int
(** Rollbacks performed so far ([supervisor.recoveries]). *)

val dropped_connections : t -> int
(** Live connections closed by rollbacks
    ([supervisor.dropped_connections]). *)

val checkpoints : t -> int
(** Checkpoints taken, including the initial one
    ([supervisor.checkpoints]). *)

val last_alarm : t -> Alarm.reason option
(** The most recent alarm absorbed or surfaced, if any. *)

type recovery_record = {
  rr_rendezvous : int;  (** rendezvous count when the alarm fired *)
  rr_alarm : Alarm.reason;
  rr_dropped : int;  (** live connections closed by the rollback *)
  rr_forensics : Nv_util.Metrics.Json.value option;
      (** the monitor's post-mortem bundle, captured before the
          rollback erased the divergent state *)
}

val recovery_log : t -> recovery_record list
(** Every rollback performed, oldest first, each carrying the alarm it
    absorbed and the forensics bundle snapshotted at that alarm.
    Fail-stopped alarms are not in the log (they were not recovered);
    their bundle remains available via {!Monitor.forensics}. *)

val exhausted : t -> bool
(** Whether the restart budget has been exhausted (the supervisor has
    degraded to fail-stop). *)
