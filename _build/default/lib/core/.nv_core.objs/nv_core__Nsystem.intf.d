lib/core/nsystem.mli: Monitor Nv_os Nv_vm Variation
