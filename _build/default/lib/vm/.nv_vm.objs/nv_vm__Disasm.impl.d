lib/vm/disasm.ml: Buffer Format Isa Memory Printf
