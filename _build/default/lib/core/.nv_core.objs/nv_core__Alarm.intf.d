lib/core/alarm.mli: Format Nv_vm
