exception Error of { line : int; message : string }

let fail line fmt = Printf.ksprintf (fun message -> raise (Error { line; message })) fmt

(* ------------------------------------------------------------------ *)
(* Tokenizing                                                          *)
(* ------------------------------------------------------------------ *)

let strip_comment line =
  match String.index_opt line ';' with
  | Some i -> String.sub line 0 i
  | None -> line

(* Split a statement into tokens. Commas act as whitespace; a quoted
   string is one token (with its quotes). *)
let tokenize lineno line =
  let n = String.length line in
  let tokens = ref [] in
  let buf = Buffer.create 16 in
  let flush () =
    if Buffer.length buf > 0 then begin
      tokens := Buffer.contents buf :: !tokens;
      Buffer.clear buf
    end
  in
  let rec scan i =
    if i >= n then flush ()
    else begin
      match line.[i] with
      | ' ' | '\t' | ',' ->
        flush ();
        scan (i + 1)
      | '"' ->
        flush ();
        let rec str j =
          if j >= n then fail lineno "unterminated string literal"
          else if line.[j] = '"' then j
          else if line.[j] = '\\' && j + 1 < n then begin
            (match line.[j + 1] with
            | 'n' -> Buffer.add_char buf '\n'
            | 't' -> Buffer.add_char buf '\t'
            | 'r' -> Buffer.add_char buf '\r'
            | '0' -> Buffer.add_char buf '\000'
            | c -> Buffer.add_char buf c);
            str (j + 2)
          end
          else begin
            Buffer.add_char buf line.[j];
            str (j + 1)
          end
        in
        let close = str (i + 1) in
        tokens := ("\"" ^ Buffer.contents buf) :: !tokens;
        Buffer.clear buf;
        scan (close + 1)
      | c ->
        Buffer.add_char buf c;
        scan (i + 1)
    end
  in
  scan 0;
  List.rev !tokens

(* ------------------------------------------------------------------ *)
(* Operand parsing                                                     *)
(* ------------------------------------------------------------------ *)

let parse_int lineno s =
  let parse s = try Some (int_of_string s) with Failure _ -> None in
  match parse s with
  | Some v -> v
  | None -> fail lineno "invalid number %S" s

let parse_reg lineno s =
  let bad () = fail lineno "invalid register %S" s in
  if String.length s < 2 || s.[0] <> 'r' then bad ();
  match int_of_string_opt (String.sub s 1 (String.length s - 1)) with
  | Some r when r >= 0 && r <= 15 -> r
  | Some _ | None -> bad ()

(* [rN], [rN+off], [rN-off] *)
let parse_mem lineno s =
  let n = String.length s in
  if n < 4 || s.[0] <> '[' || s.[n - 1] <> ']' then
    fail lineno "invalid memory operand %S" s;
  let inner = String.sub s 1 (n - 2) in
  let split_at idx =
    let reg = parse_reg lineno (String.sub inner 0 idx) in
    let off = parse_int lineno (String.sub inner idx (String.length inner - idx)) in
    (reg, off)
  in
  match String.index_opt inner '+' with
  | Some i -> split_at i
  | None -> (
    (* A '-' that is not the leading character separates reg and offset. *)
    match String.index_from_opt inner 1 '-' with
    | Some i -> split_at i
    | None -> (parse_reg lineno inner, 0))

type operand_token = Oreg of int | Oimm of int | Olabel of string

let parse_operand lineno s =
  if String.length s = 0 then fail lineno "empty operand"
  else if s.[0] = '#' then Oimm (parse_int lineno (String.sub s 1 (String.length s - 1)))
  else if s.[0] = 'r' && String.length s <= 3 && int_of_string_opt (String.sub s 1 (String.length s - 1)) <> None
  then Oreg (parse_reg lineno s)
  else Olabel s

(* ------------------------------------------------------------------ *)
(* First pass: statements                                              *)
(* ------------------------------------------------------------------ *)

type pending_instr = {
  lineno : int;
  build : resolve:(string -> int) -> Image.item;
}

type section = Text | Data

let binops =
  [
    ("add", Isa.Add); ("sub", Isa.Sub); ("mul", Isa.Mul); ("div", Isa.Div);
    ("mod", Isa.Mod); ("and", Isa.And); ("or", Isa.Or); ("xor", Isa.Xor);
    ("shl", Isa.Shl); ("shr", Isa.Shr); ("sar", Isa.Sar);
  ]

let conds =
  [
    ("eq", Isa.Eq); ("ne", Isa.Ne); ("lt", Isa.Lt); ("le", Isa.Le);
    ("gt", Isa.Gt); ("ge", Isa.Ge); ("ltu", Isa.Ltu); ("leu", Isa.Leu);
    ("gtu", Isa.Gtu); ("geu", Isa.Geu);
  ]

let prefixed prefix s =
  let np = String.length prefix in
  if String.length s > np && String.sub s 0 np = prefix then
    Some (String.sub s np (String.length s - np))
  else None

let assemble source =
  let lines = String.split_on_char '\n' source in
  let section = ref Text in
  let instrs : pending_instr list ref = ref [] in
  let instr_count = ref 0 in
  let data_buf = Buffer.create 256 in
  let code_labels : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let data_labels : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let entry_label = ref None in
  let define_label lineno name =
    if Hashtbl.mem code_labels name || Hashtbl.mem data_labels name then
      fail lineno "duplicate label %S" name;
    match !section with
    | Text -> Hashtbl.add code_labels name (!instr_count * Isa.instr_size)
    | Data -> Hashtbl.add data_labels name (Buffer.length data_buf)
  in
  let emit lineno build =
    if !section <> Text then fail lineno "instruction outside .text";
    instrs := { lineno; build } :: !instrs;
    incr instr_count
  in
  let plain instr = fun ~resolve:_ -> Image.{ instr; relocate = false } in
  let process_instr lineno mnemonic args =
    let reg i = parse_reg lineno (List.nth args i) in
    let nargs = List.length args in
    let need n = if nargs <> n then fail lineno "%s expects %d operands" mnemonic n in
    let operand i =
      match parse_operand lineno (List.nth args i) with
      | Oreg r -> `Plain (Isa.Reg r)
      | Oimm v -> `Plain (Isa.Imm (Word.of_signed v))
      | Olabel _ -> fail lineno "label operand not allowed here (use la)"
    in
    let label_target i k =
      let name = List.nth args i in
      emit lineno (fun ~resolve -> Image.{ instr = k (resolve name); relocate = true })
    in
    match mnemonic with
    | "nop" -> need 0; emit lineno (plain Isa.Nop)
    | "halt" -> need 0; emit lineno (plain Isa.Halt)
    | "ret" -> need 0; emit lineno (plain Isa.Ret)
    | "syscall" -> need 0; emit lineno (plain Isa.Syscall)
    | "push" -> need 1; emit lineno (plain (Isa.Push (reg 0)))
    | "pop" -> need 1; emit lineno (plain (Isa.Pop (reg 0)))
    | "jmpr" -> need 1; emit lineno (plain (Isa.Jmpr (reg 0)))
    | "callr" -> need 1; emit lineno (plain (Isa.Callr (reg 0)))
    | "jmp" -> need 1; label_target 0 (fun a -> Isa.Jmp a)
    | "call" -> need 1; label_target 0 (fun a -> Isa.Call a)
    | "mov" ->
      need 2;
      let rd = reg 0 in
      let (`Plain o) = operand 1 in
      emit lineno (plain (Isa.Mov (rd, o)))
    | "la" ->
      need 2;
      let rd = reg 0 in
      let name = List.nth args 1 in
      emit lineno (fun ~resolve ->
          Image.{ instr = Isa.Mov (rd, Isa.Imm (resolve name)); relocate = true })
    | "ld" | "ldb" ->
      need 2;
      let rd = reg 0 in
      let rs, off = parse_mem lineno (List.nth args 1) in
      let instr =
        if mnemonic = "ld" then Isa.Load (rd, rs, off) else Isa.Loadb (rd, rs, off)
      in
      emit lineno (plain instr)
    | "st" | "stb" ->
      need 2;
      let rd, off = parse_mem lineno (List.nth args 0) in
      let rs = reg 1 in
      let instr =
        if mnemonic = "st" then Isa.Store (rd, off, rs) else Isa.Storeb (rd, off, rs)
      in
      emit lineno (plain instr)
    | _ -> (
      match List.assoc_opt mnemonic binops with
      | Some op ->
        need 3;
        let rd = reg 0 and rs = reg 1 in
        let (`Plain o) = operand 2 in
        emit lineno (plain (Isa.Binop (op, rd, rs, o)))
      | None -> (
        match prefixed "set" mnemonic with
        | Some cc when List.mem_assoc cc conds ->
          need 3;
          let c = List.assoc cc conds in
          let rd = reg 0 and rs = reg 1 in
          let (`Plain o) = operand 2 in
          emit lineno (plain (Isa.Setcc (c, rd, rs, o)))
        | Some cc -> fail lineno "unknown condition %S" cc
        | None -> (
          match prefixed "br" mnemonic with
          | Some cc when List.mem_assoc cc conds ->
            need 3;
            let c = List.assoc cc conds in
            let rs = reg 0 and rt = reg 1 in
            let name = List.nth args 2 in
            emit lineno (fun ~resolve ->
                Image.{ instr = Isa.Br (c, rs, rt, resolve name); relocate = true })
          | Some cc -> fail lineno "unknown condition %S" cc
          | None -> fail lineno "unknown mnemonic %S" mnemonic)))
  in
  let process_data lineno directive args =
    if !section <> Data then fail lineno "data directive outside .data";
    match directive with
    | ".word" ->
      List.iter
        (fun a ->
          let w = Word.of_signed (parse_int lineno a) in
          for i = 0 to 3 do
            Buffer.add_char data_buf (Char.chr (Word.byte w i))
          done)
        args
    | ".byte" ->
      List.iter
        (fun a -> Buffer.add_char data_buf (Char.chr (parse_int lineno a land 0xFF)))
        args
    | ".space" -> (
      match args with
      | [ n ] ->
        let n = parse_int lineno n in
        if n < 0 then fail lineno ".space expects a non-negative size";
        Buffer.add_string data_buf (String.make n '\000')
      | _ -> fail lineno ".space expects one operand")
    | ".asciz" -> (
      match args with
      | [ s ] when String.length s > 0 && s.[0] = '"' ->
        Buffer.add_string data_buf (String.sub s 1 (String.length s - 1));
        Buffer.add_char data_buf '\000'
      | _ -> fail lineno ".asciz expects one string literal")
    | _ -> fail lineno "unknown data directive %S" directive
  in
  List.iteri
    (fun idx raw ->
      let lineno = idx + 1 in
      let line = strip_comment raw in
      let tokens = tokenize lineno line in
      (* Peel off any leading labels. *)
      let rec peel tokens =
        match tokens with
        | t :: rest when String.length t > 1 && t.[String.length t - 1] = ':' ->
          define_label lineno (String.sub t 0 (String.length t - 1));
          peel rest
        | _ -> tokens
      in
      match peel tokens with
      | [] -> ()
      | ".text" :: _ -> section := Text
      | ".data" :: _ -> section := Data
      | ".entry" :: [ name ] -> entry_label := Some (lineno, name)
      | ".entry" :: _ -> fail lineno ".entry expects one label"
      | directive :: args when String.length directive > 0 && directive.[0] = '.' ->
        process_data lineno directive args
      | mnemonic :: args -> process_instr lineno mnemonic args)
    lines;
  let instrs = Array.of_list (List.rev !instrs) in
  let code_bytes = Array.length instrs * Isa.instr_size in
  let data_off = (code_bytes + 15) land lnot 15 in
  let resolve_from lineno name =
    match Hashtbl.find_opt code_labels name with
    | Some off -> off
    | None -> (
      match Hashtbl.find_opt data_labels name with
      | Some off -> data_off + off
      | None -> fail lineno "undefined label %S" name)
  in
  let code =
    Array.map
      (fun { lineno; build } -> build ~resolve:(resolve_from lineno))
      instrs
  in
  let entry_offset =
    match !entry_label with
    | None -> 0
    | Some (lineno, name) -> (
      match Hashtbl.find_opt code_labels name with
      | Some off -> off
      | None -> fail lineno "entry label %S is not a code label" name)
  in
  let symbols =
    Hashtbl.fold (fun name off acc -> (name, off) :: acc) code_labels []
    @ Hashtbl.fold (fun name off acc -> (name, data_off + off) :: acc) data_labels []
  in
  Image.
    {
      code;
      data = Bytes.of_string (Buffer.contents data_buf);
      bss_size = 0;
      entry_offset;
      symbols;
    }
