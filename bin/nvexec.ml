(* nvexec: run a mini-C program as an N-variant system.

   The moral equivalent of the paper's `nvexec prog1 prog2` launcher
   (Section 3.1), except the variants are generated automatically from
   one source file by the UID transformer. *)

open Cmdliner

let variations =
  [
    ("single", Nv_core.Variation.single);
    ("replicated", Nv_core.Variation.replicated);
    ("address-partition", Nv_core.Variation.address_partition);
    ("instruction-tagging", Nv_core.Variation.instruction_tagging);
    ("uid-diversity", Nv_core.Variation.uid_diversity);
    ("full-diversity", Nv_core.Variation.full_diversity);
    ("uid-diversity-3", Nv_core.Variation.uid_diversity_n 3);
    ("uid-diversity-4", Nv_core.Variation.uid_diversity_n 4);
    ("full-diversity-3", Nv_core.Variation.full_diversity_n 3);
    ("full-diversity-4", Nv_core.Variation.full_diversity_n 4);
    ("seeded-diversity-3", Nv_core.Variation.seeded_diversity ~seed:0xB007 3);
    ("rotation-diversity-3", Nv_core.Variation.rotation_diversity 3);
    ("add-diversity-3", Nv_core.Variation.add_diversity 3);
  ]

let variation_arg =
  let doc =
    Printf.sprintf "Variation to deploy: %s."
      (String.concat ", " (List.map fst variations))
  in
  Arg.(
    value
    & opt (enum variations) Nv_core.Variation.uid_diversity
    & info [ "v"; "variation" ] ~docv:"VARIATION" ~doc)

let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE.mc" ~doc:"mini-C source file")

let trace_arg =
  Arg.(
    value & flag
    & info [ "trace" ]
        ~doc:
          "Enable the flight recorder and print the coordinator ring (every \
           syscall rendezvous, deferred flush and alarm) when the run ends.")

let trace_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-out" ] ~docv:"FILE"
        ~doc:
          "Enable the flight recorder and write the whole session (one lane \
           per variant, plus coordinator and kernel lanes) to $(docv) as \
           Chrome trace-event JSON, loadable in Perfetto or \
           chrome://tracing. If the run raised an alarm, the forensics \
           bundle (alarm class, per-variant registers, credential \
           snapshots, ring tails) is attached under a top-level \
           $(b,forensics) key.")

let fuel_arg =
  Arg.(
    value & opt int 50_000_000
    & info [ "fuel" ] ~docv:"N" ~doc:"Guest instruction budget across all variants.")

let no_runtime_arg =
  Arg.(
    value & flag
    & info [ "no-runtime" ] ~doc:"Do not prepend the mini-C runtime library.")

let metrics_arg =
  Arg.(
    value
    & opt (some (enum [ ("text", `Text); ("json", `Json) ])) None
    & info [ "metrics" ] ~docv:"FORMAT"
        ~doc:
          "Dump the system's metrics registry to stderr before exiting, as \
           $(b,text) (one metric per line) or $(b,json).")

let parallel_arg =
  Arg.(
    value
    & opt (enum [ ("on", true); ("off", false) ]) (Nv_util.Dompool.env_default ())
    & info [ "parallel" ] ~docv:"on|off"
        ~doc:
          "Run each variant's quantum on its own domain between rendezvous \
           points ($(b,on)) or step variants sequentially ($(b,off)). Defaults \
           to the $(b,NV_PARALLEL) environment variable (1 = on). Outcomes are \
           identical either way; only wall-clock time differs.")

let engine_arg =
  Arg.(
    value
    & opt
        (enum
           [
             ("reference", Nv_vm.Memory.Reference);
             ("icache", Nv_vm.Memory.Icache);
             ("block", Nv_vm.Memory.Block);
           ])
        (Nv_vm.Memory.default_engine ())
    & info [ "engine" ] ~docv:"ENGINE"
        ~doc:
          "Execution tier for every variant: $(b,reference) (byte-at-a-time \
           decoder), $(b,icache) (predecoded instruction cache) or $(b,block) \
           (basic-block superinstruction compiler). All three are \
           observationally identical — same outcomes, alarms and instruction \
           counts — so pinning a tier is for differential debugging and \
           performance comparison. Defaults to the $(b,NV_ENGINE) environment \
           variable, falling back to $(b,icache).")

let recover_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "recover" ] ~docv:"N"
        ~doc:
          "Attach a recovery supervisor: on an alarm, roll the variants and \
           kernel back to the last accept-boundary checkpoint, drop the \
           offending connection and resume, allowing at most $(docv) \
           rollbacks per budget window before degrading to fail-stop.")

let mode_arg =
  Arg.(
    value
    & opt
        (enum
           [
             ("cc-calls", Nv_transform.Uid_transform.Cc_calls);
             ("user-space", Nv_transform.Uid_transform.User_space);
           ])
        Nv_transform.Uid_transform.Cc_calls
    & info [ "mode" ] ~docv:"MODE"
        ~doc:"Comparison exposure mode: cc-calls (detection syscalls) or user-space.")

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let run variation file trace trace_out fuel no_runtime mode metrics parallel engine
    recover =
  let source = read_file file in
  let source = if no_runtime then source else Nv_minic.Runtime.with_runtime source in
  match Nv_transform.Uid_transform.transform_source ~mode ~variation source with
  | Error message ->
    Printf.eprintf "nvexec: %s\n" message;
    exit 2
  | Ok (images, report) -> (
    Format.printf "variation: %a; transformation: %a@." Nv_core.Variation.pp variation
      Nv_transform.Uid_transform.pp_report report;
    let recover =
      Option.map
        (fun n -> { Nv_core.Supervisor.default_config with max_recoveries = n })
        recover
    in
    let sys = Nv_core.Nsystem.create ~parallel ~engine ?recover ~variation images in
    let monitor = Nv_core.Nsystem.monitor sys in
    let session = Nv_core.Monitor.trace_session monitor in
    if trace || trace_out <> None then Nv_util.Trace.set_enabled session true;
    let dump_trace () =
      if trace then
        List.iter
          (fun ring ->
            if Nv_util.Trace.ring_name ring = "coordinator" then
              List.iter
                (fun e ->
                  Format.printf "%a@."
                    (Nv_util.Trace.pp_event ~syscall_name:Nv_os.Syscall.name)
                    e)
                (Nv_util.Trace.events ring))
          (Nv_util.Trace.rings session);
      match trace_out with
      | None -> ()
      | Some path ->
        let extra =
          match Nv_core.Monitor.forensics monitor with
          | Some bundle -> [ ("forensics", bundle) ]
          | None -> []
        in
        let json =
          Nv_util.Trace.to_chrome ~syscall_name:Nv_os.Syscall.name ~extra session
        in
        let oc = open_out path in
        output_string oc (Nv_util.Metrics.Json.to_string json);
        output_char oc '\n';
        close_out oc
    in
    let dump_metrics () =
      (match Nv_core.Nsystem.supervisor sys with
      | Some sup when Nv_core.Supervisor.recoveries sup > 0 ->
        Format.printf "[supervisor: %d recoveries, %d connections dropped%s]@."
          (Nv_core.Supervisor.recoveries sup)
          (Nv_core.Supervisor.dropped_connections sup)
          (if Nv_core.Supervisor.exhausted sup then "; budget exhausted" else "")
      | Some _ | None -> ());
      match metrics with
      | None -> ()
      | Some format ->
        Nv_util.Metrics.dump ~format (Nv_core.Nsystem.metrics sys) stderr
    in
    match Nv_core.Nsystem.run ~fuel sys with
    | Nv_core.Monitor.Exited status ->
      let kernel = Nv_core.Nsystem.kernel sys in
      print_string (Nv_os.Kernel.stdout_contents kernel);
      prerr_string (Nv_os.Kernel.stderr_contents kernel);
      Format.printf "[exited %d; %d instructions; %d rendezvous]@." status
        (Nv_core.Monitor.instructions_retired monitor)
        (Nv_core.Monitor.rendezvous_count monitor);
      dump_trace ();
      dump_metrics ();
      exit (if status land 0xFF = status then status else 1)
    | Nv_core.Monitor.Alarm reason ->
      Format.printf "ALARM: %a@." Nv_core.Alarm.pp reason;
      dump_trace ();
      dump_metrics ();
      exit 3
    | Nv_core.Monitor.Blocked_on_accept ->
      print_endline "server blocked on accept with no client; stopping";
      dump_trace ();
      dump_metrics ();
      exit 4
    | Nv_core.Monitor.Out_of_fuel ->
      print_endline "out of fuel";
      dump_trace ();
      dump_metrics ();
      exit 5)

let cmd =
  let doc = "run a mini-C program as an N-variant system" in
  Cmd.v
    (Cmd.info "nvexec" ~doc)
    Term.(
      const run $ variation_arg $ file_arg $ trace_arg $ trace_out_arg $ fuel_arg
      $ no_runtime_arg $ mode_arg $ metrics_arg $ parallel_arg $ engine_arg
      $ recover_arg)

let () = exit (Cmd.eval cmd)
