lib/os/cred.ml: Format Nv_vm
