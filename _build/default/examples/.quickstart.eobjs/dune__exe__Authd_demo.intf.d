examples/authd_demo.mli:
