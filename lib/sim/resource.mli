(** FIFO service resources for queueing models.

    A resource has [capacity] concurrent service slots (a CPU core count
    or a number of NIC lanes). Jobs submitted with {!serve} wait in FIFO
    order for a free slot, hold it for their service duration, then run
    their completion callback. Utilization accounting supports the
    throughput/latency reports for Table 3. *)

type t

val create : Engine.t -> name:string -> capacity:int -> t
(** Raises [Invalid_argument] if [capacity < 1]. Reports
    [jobs_completed], [busy_time_s], and [queue_high_water] into the
    engine's metrics registry under ["sim.resource.<name>"]. *)

val name : t -> string

val serve : t -> duration:float -> (unit -> unit) -> unit
(** [serve t ~duration k] enqueues a job that needs [duration] seconds
    of a slot; [k] fires at completion. Raises [Invalid_argument] on a
    negative duration. *)

val busy : t -> int
(** Slots currently in service. *)

val queue_length : t -> int
(** Jobs waiting for a slot. *)

val busy_time : t -> float
(** Slot-seconds of service delivered so far: completed jobs in full
    plus, for each job still in service, only the share elapsed up to
    the engine clock. *)

val utilization : t -> float
(** [busy_time / (capacity * now)]; 0 when the clock is at 0. Never
    exceeds 1.0, even with jobs in flight at the reading instant. *)
