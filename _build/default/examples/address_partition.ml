(* Figure 1: two-variant address-space partitioning.

     dune exec examples/address_partition.exe

   The same image is loaded at 0x00010000 (variant 0) and 0x80010000
   (variant 1); every absolute address embedded in the code is
   relocated. On normal input the variants are semantically equivalent;
   an input that injects an absolute address can be valid in at most
   one variant - the other takes a memory fault the monitor observes. *)

module Variation = Nv_core.Variation
module Monitor = Nv_core.Monitor
module Nsystem = Nv_core.Nsystem

let program =
  {|int cell = 7;
    int main(void) {
      int *p = &cell;       // legitimate pointer: relocated per variant
      return *p;
    }|}

let attack_program =
  Printf.sprintf
    {|int main(void) {
        int *p = (int*)0x%X;  // absolute address injected by an attacker
        return *p;
      }|}
    (Variation.low_base + 64)

let dump sys =
  let monitor = Nsystem.monitor sys in
  for i = 0 to Monitor.variant_count monitor - 1 do
    let loaded = Monitor.loaded monitor i in
    let layout = loaded.Nv_vm.Image.layout in
    Format.printf "variant %d loaded at base 0x%08X:@." i layout.Nv_vm.Image.base;
    print_string
      (Nv_vm.Disasm.region loaded.Nv_vm.Image.memory ~start:layout.Nv_vm.Image.code_start
         ~count:5)
  done

let run_and_report sys =
  match Nsystem.run sys with
  | Monitor.Exited status -> Format.printf "-> both variants exited %d (equivalent)@." status
  | Monitor.Alarm reason -> Format.printf "-> ALARM: %a@." Nv_core.Alarm.pp reason
  | Monitor.Blocked_on_accept -> print_endline "-> blocked"
  | Monitor.Out_of_fuel -> print_endline "-> fuel exhausted"

let build source =
  Nsystem.of_one_image ~variation:Variation.address_partition
    (Nv_minic.Codegen.compile_source source)

let () =
  print_endline "== normal program: same behaviour at disjoint bases ==";
  let sys = build program in
  dump sys;
  run_and_report sys;
  print_endline "\n== attack: dereference of an injected absolute address ==";
  Format.printf "the attacker hardcodes 0x%08X (valid only in variant 0)@."
    (Variation.low_base + 64);
  run_and_report (build attack_program);
  print_endline
    "\nThe partition bit cannot be 0 and 1 at once: any injected absolute\n\
     address faults in at least one variant, and the monitor reports it."
