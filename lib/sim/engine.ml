module Metrics = Nv_util.Metrics

type t = {
  mutable clock : float;
  mutable seq : int;
  queue : (unit -> unit) Heap.t;
  metrics : Metrics.t;
  events_executed : Metrics.counter;
  queue_high_water : Metrics.gauge;
}

let create ?metrics () =
  let metrics = match metrics with Some m -> m | None -> Metrics.create () in
  let scope = Metrics.scope metrics "sim.engine" in
  {
    clock = 0.0;
    seq = 0;
    queue = Heap.create ();
    metrics;
    events_executed = Metrics.counter scope "events_executed";
    queue_high_water = Metrics.gauge scope "queue_high_water";
  }

let now t = t.clock

let metrics t = t.metrics

let schedule_at t ~time f =
  if time < t.clock then invalid_arg "Engine.schedule_at: time in the past";
  t.seq <- t.seq + 1;
  Heap.push t.queue ~key:time ~seq:t.seq f;
  Metrics.max_gauge t.queue_high_water (float_of_int (Heap.size t.queue))

let schedule_after t ~delay f =
  if delay < 0.0 then invalid_arg "Engine.schedule_after: negative delay";
  schedule_at t ~time:(t.clock +. delay) f

let step t =
  match Heap.pop t.queue with
  | None -> false
  | Some (time, _, f) ->
    t.clock <- time;
    Metrics.incr t.events_executed;
    (try f ()
     with e ->
       let bt = Printexc.get_raw_backtrace () in
       Logs.warn ~src:Nv_util.Logsrc.engine (fun m ->
           m "event at t=%.6f raised %s" time (Printexc.to_string e));
       Printexc.raise_with_backtrace e bt);
    true

let run ?until t =
  let continue () =
    match until with
    | None -> not (Heap.is_empty t.queue)
    | Some horizon -> (
      match Heap.peek t.queue with
      | None -> false
      | Some (time, _, _) -> time <= horizon)
  in
  while continue () do
    ignore (step t)
  done;
  match until with
  | Some horizon when t.clock < horizon -> t.clock <- horizon
  | Some _ | None -> ()

let pending t = Heap.size t.queue
