lib/os/socket.mli:
