(** Variation configurations: how each variant of an N-variant system
    is diversified.

    A {!variant_spec} fixes, for one variant, its load base (the
    address-space-partitioning dimension), its instruction tag (the
    instruction-set-tagging dimension) and its UID reexpression function
    (this paper's data-diversity dimension). A {!t} bundles the variant
    specs with the set of unshared trusted files. The predefined
    configurations correspond to the evaluation's Table 3 columns and
    the attack-matrix experiments; {!composed} builds arbitrary N >= 3
    compositions of the three axes, and {!portfolio} lists every
    shipped data-diversity configuration whose all-pairs disjointness
    the test suite certifies. *)

type variant_spec = {
  index : int;
  base : int;  (** segment load base *)
  tag : int;  (** expected instruction tag *)
  uid : Reexpression.t;
}

type t = {
  name : string;
  variants : variant_spec array;
  unshared_paths : string list;
      (** trusted files opened per-variant as [path-<i>] *)
}

val count : t -> int

val low_base : int
(** 0x00010000 — variant 0's load base. *)

val high_base : int
(** 0x80010000 — variant 1's base under address partitioning: the high
    address bit is the partition bit. *)

val default_segment_size : int
(** [1 lsl 20] — the per-variant segment size {!Monitor.create}
    assumes by default; staggered bases are validated against it. *)

(** One diversity axis of a composed configuration. [Address] staggers
    load bases (variant 0 at {!low_base}, variant [i >= 1] at
    [high_base + (i-1) * segment_size]); [Tagging] gives variant [i]
    instruction tag [i + 1]; [Uid fam] assigns variant [i] the
    reexpression [fam.(i)]. *)
type axis = Address | Tagging | Uid of Reexpression.t array

val composed : ?name:string -> ?segment_size:int -> ?unshared:string list ->
  n:int -> axis list -> t
(** Compose diversity axes over [n] variants. When [Address] is
    present the staggered bases are validated: every segment must fit
    the 32-bit space and no two may overlap ([Invalid_argument]
    otherwise). [unshared] defaults to [/etc/passwd] and [/etc/group]
    when a [Uid] axis is present, empty otherwise. Raises
    [Invalid_argument] if a [Uid] family has fewer than [n] entries or
    [n < 1]. *)

val single : t
(** One variant, no diversity: the unprotected baseline
    (Configurations 1 and 2 of Table 3 when paired with the plain
    runner semantics). *)

val replicated : t
(** Two identical variants (same base, no data diversity): isolates the
    cost of redundant execution alone. *)

val address_partition : t
(** Two variants at disjoint bases (Figure 1; Configuration 3 of
    Table 3). *)

val extended_partition : ?offset:int -> unit -> t
(** Bruschi et al.'s extension (Table 1 row 2): variant 1 is loaded at
    [high_base + offset] (default offset 0x4240), so corresponding
    absolute addresses differ in their {e low} bytes too. This makes
    partial (byte-granularity) overwrites of stored addresses
    detectable with high probability, where plain partitioning only
    breaks attacks that inject complete addresses (Section 2.3's
    discussion). Raises [Invalid_argument] unless [offset] is a
    multiple of the word size (stack alignment must agree across
    variants for pointer canonicalization to hold). *)

val instruction_tagging : t
(** Two variants with distinct instruction tags. *)

val uid_diversity : t
(** The paper's UID variation (Configuration 4): address partitioning
    {e plus} UID reexpression in variant 1 {e plus} unshared
    [/etc/passwd] and [/etc/group]. Composed exactly as in the paper,
    where Configuration 4 is Configuration 3 with the UID variation
    added. *)

val full_diversity : t
(** Composition of all three dimensions (the Section 7 future-work
    direction): address partitioning + instruction tagging + UID
    reexpression + unshared files, in two variants. *)

val uid_diversity_n : ?segment_size:int -> int -> t
(** An [n]-variant UID deployment: variant 0 canonical, variants
    [1..n-1] at staggered bases with {e per-variant} XOR keys
    ({!Reexpression.uid_for_variant}), so pairwise disjointness holds
    for {e every} variant pair — the earlier shared-key form only kept
    the argument for pairs involving variant 0. Staggered bases are
    validated against [segment_size] (default
    {!default_segment_size}): raises [Invalid_argument] on overlap or
    32-bit overflow, or for [n < 1]. *)

val full_diversity_n : int -> t
(** [n]-variant composition of all three axes: staggered bases,
    distinct instruction tags, the certified rotation+XOR UID family
    ({!Reexpression.rotation_family}), unshared files. The rotation
    component also closes the XOR axis's documented bit-31 escape —
    a rotation moves the one bit a 31-bit XOR key cannot touch, so
    bit-31 faults diverge after the rotated variants decode. *)

val seeded_diversity : seed:int -> int -> t
(** [n] variants whose XOR masks are drawn per boot from [seed]
    ({!Reexpression.xor_family}): an attacker who learned the key
    material of one boot (or read the paper) holds nothing valid for
    the next. *)

val rotation_diversity : int -> t
(** [n] variants on the rotation axis composed with certified XOR keys
    ({!Reexpression.rotation_family}). *)

val add_diversity : int -> t
(** [n] variants with additive reexpression mod 2^31
    ({!Reexpression.add_family}). *)

val rotation_only : int -> t
(** [n] variants with {e bare} rotations — deliberately not pairwise
    disjoint (every rotation fixes 0): the attack matrix's
    demonstration that a single axis alone is defeated by a
    zero-injection. Not part of {!portfolio}. *)

val shared_key : int -> t
(** The pre-fix configuration this PR's tentpole removes: every
    variant >= 1 shares variant 1's key, so an attack fooling two
    non-zero variants identically goes undetected. Kept only as the
    regression target of the attack matrix and tests. Not part of
    {!portfolio}. *)

val portfolio : (string * t) list
(** Every shipped data-diversity configuration, by name. The test
    suite asserts, for each entry, the inverse property of every
    variant and {!Reexpression.all_pairs_disjoint} across all variant
    pairs. *)

val pp : Format.formatter -> t -> unit
