lib/core/variation.ml: Array Format Printf Reexpression
