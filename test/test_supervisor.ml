(* Recovery-layer suite: snapshot/rollback correctness, the
   supervisor's checkpoint/budget discipline, recovered attack
   verdicts, and the fault-injection campaign.

   The headline test is the pinned self-healing scenario from the
   recovery design: an attacked httpd raises an alarm, the supervisor
   rolls back to the last accept-boundary checkpoint, the attack
   connection is dropped, and at least one subsequent benign request is
   served byte-identically to the pre-attack baseline, with
   [supervisor.recoveries] = 1. Every scenario is driven differentially
   under sequential and parallel stepping (the test_parallel.ml
   pattern): transcripts and full fingerprints — including the
   supervisor's metrics — must be bit-identical in both modes. *)

module Alarm = Nv_core.Alarm
module Monitor = Nv_core.Monitor
module Nsystem = Nv_core.Nsystem
module Supervisor = Nv_core.Supervisor
module Deploy = Nv_httpd.Deploy
module Http = Nv_httpd.Http
module Campaign = Nv_attacks.Campaign
module Faultgen = Nv_attacks.Faultgen
module Payloads = Nv_attacks.Payloads
module Cpu = Nv_vm.Cpu
module Memory = Nv_vm.Memory
module Image = Nv_vm.Image
module Metrics = Nv_util.Metrics

(* ------------------------------------------------------------------ *)
(* Harness (mirrors test_parallel.ml)                                  *)
(* ------------------------------------------------------------------ *)

let outcome_str = function
  | Monitor.Exited n -> Printf.sprintf "exited %d" n
  | Monitor.Alarm reason -> Format.asprintf "alarm %a" Alarm.pp reason
  | Monitor.Blocked_on_accept -> "blocked-on-accept"
  | Monitor.Out_of_fuel -> "out-of-fuel"

let serve_str = function
  | Nsystem.Served response -> "served:" ^ String.escaped response
  | Nsystem.Stopped outcome -> "stopped:" ^ outcome_str outcome

(* Per-variant CPU/memory state only — what snapshot/restore must roll
   back. Metrics are deliberately excluded here because they are
   monotonic across rollbacks. *)
let variant_state sys =
  let monitor = Nsystem.monitor sys in
  let b = Buffer.create 1024 in
  for i = 0 to Monitor.variant_count monitor - 1 do
    let { Image.cpu; memory; _ } = Monitor.loaded monitor i in
    Buffer.add_string b
      (Printf.sprintf "v%d pc=%d retired=%d regs=" i (Cpu.pc cpu)
         (Cpu.instructions_retired cpu));
    for r = 0 to 15 do
      Buffer.add_string b (Printf.sprintf "%d," (Cpu.reg cpu r))
    done;
    let base = Memory.base memory and size = Memory.size memory in
    Buffer.add_string b
      (Printf.sprintf " mem=%s\n"
         (Digest.to_hex (Digest.bytes (Memory.load_bytes memory ~addr:base ~len:size))))
  done;
  Buffer.contents b

let fingerprint sys = variant_state sys ^ Metrics.to_text (Nsystem.metrics sys)

let assert_equivalent ~what ~build ~drive =
  let seq_sys = build ~parallel:false in
  let par_sys = build ~parallel:true in
  Alcotest.(check bool) (what ^ ": parallel flag") true
    (Monitor.parallel (Nsystem.monitor par_sys)
    && not (Monitor.parallel (Nsystem.monitor seq_sys)));
  let seq_log = drive seq_sys in
  let par_log = drive par_sys in
  Alcotest.(check string) (what ^ ": transcript") seq_log par_log;
  Alcotest.(check string) (what ^ ": final state") (fingerprint seq_sys)
    (fingerprint par_sys)

let build_deploy ?recover ~parallel () =
  match Deploy.build ~parallel ?recover Deploy.Two_variant_uid with
  | Ok sys -> sys
  | Error e -> Alcotest.fail e

let supervisor_of sys = Option.get (Nsystem.supervisor sys)
let benign = Http.get "/"
let attack_request = Http.get (Payloads.null_overflow_url ())

let expect_200 what = function
  | Nsystem.Served raw -> (
    match Http.parse_response raw with
    | Ok { Http.status = 200; _ } -> raw
    | Ok { Http.status; _ } -> Alcotest.failf "%s: status %d" what status
    | Error e -> Alcotest.failf "%s: bad response: %s" what e)
  | Nsystem.Stopped outcome -> Alcotest.failf "%s: %s" what (outcome_str outcome)

(* ------------------------------------------------------------------ *)
(* Snapshot / restore units                                            *)
(* ------------------------------------------------------------------ *)

let test_snapshot_replay () =
  (* A checkpoint taken at an accept park can be restored repeatedly,
     and each replay of the same request is byte-identical: CPU,
     memory, kernel (fds, VFS, log file) all roll back. *)
  let sys = build_deploy ~parallel:false () in
  let monitor = Nsystem.monitor sys in
  (match Nsystem.run sys with
  | Monitor.Blocked_on_accept -> ()
  | outcome -> Alcotest.failf "expected accept park, got %s" (outcome_str outcome));
  let snap = Monitor.snapshot monitor in
  let state0 = variant_state sys in
  let first = expect_200 "first serve" (Nsystem.serve sys benign) in
  Alcotest.(check bool) "serving changed variant state" true
    (variant_state sys <> state0);
  Alcotest.(check int) "no live connections at park" 0 (Monitor.restore monitor snap);
  Alcotest.(check string) "variant state rolled back" state0 (variant_state sys);
  let again = expect_200 "replayed serve" (Nsystem.serve sys benign) in
  Alcotest.(check string) "replay is byte-identical" first again;
  (* The same snapshot is restorable a second time. *)
  ignore (Monitor.restore monitor snap : int);
  let third = expect_200 "second replay" (Nsystem.serve sys benign) in
  Alcotest.(check string) "second replay identical" first third

let test_snapshot_preserves_metrics () =
  (* Counters are monotonic: restore must not rewind the registry. *)
  let sys = build_deploy ~parallel:false () in
  let monitor = Nsystem.monitor sys in
  ignore (Nsystem.run sys : Monitor.outcome);
  let snap = Monitor.snapshot monitor in
  ignore (expect_200 "serve" (Nsystem.serve sys benign));
  let retired_before = Metrics.find_counter (Nsystem.metrics sys) "vm.instructions" in
  ignore (Monitor.restore monitor snap : int);
  let retired_after = Metrics.find_counter (Nsystem.metrics sys) "vm.instructions" in
  Alcotest.(check bool) "instruction counter not rolled back" true
    (retired_before = retired_after && retired_before <> Some 0)

(* ------------------------------------------------------------------ *)
(* The supervisor                                                      *)
(* ------------------------------------------------------------------ *)

let test_config_validation () =
  let monitor_of sys = Nsystem.monitor sys in
  let sys = build_deploy ~parallel:false () in
  let check_invalid what config =
    Alcotest.(check bool) what true
      (try
         ignore (Supervisor.create ~config (monitor_of sys) : Supervisor.t);
         false
       with Invalid_argument _ -> true)
  in
  check_invalid "zero interval"
    { Supervisor.default_config with checkpoint_interval = 0 };
  check_invalid "negative budget" { Supervisor.default_config with max_recoveries = -1 };
  check_invalid "zero window" { Supervisor.default_config with recovery_window = 0 }

(* The pinned integration scenario, driven in both stepping modes. *)
let test_attack_recovery_integration () =
  assert_equivalent ~what:"null-overflow recovery"
    ~build:(fun ~parallel ->
      build_deploy ~recover:Supervisor.default_config ~parallel ())
    ~drive:(fun sys ->
      let b = Buffer.create 4096 in
      let record tag s = Buffer.add_string b (Printf.sprintf "%s=%s\n" tag s) in
      let sup = supervisor_of sys in
      let baseline = expect_200 "pre-attack benign" (Nsystem.serve sys benign) in
      record "benign" (String.escaped baseline);
      Alcotest.(check int) "no recovery yet" 0 (Supervisor.recoveries sup);
      record "attack" (serve_str (Nsystem.serve sys attack_request));
      record "traversal" (serve_str (Nsystem.serve sys (Http.get Payloads.traversal_url)));
      (* The attack raised exactly one alarm; the supervisor absorbed
         it, dropping the connection that carried the overflow. *)
      Alcotest.(check int) "one recovery" 1 (Supervisor.recoveries sup);
      Alcotest.(check bool) "attack connection dropped" true
        (Supervisor.dropped_connections sup >= 1);
      Alcotest.(check (option int)) "supervisor.recoveries metric" (Some 1)
        (Metrics.find_counter (Nsystem.metrics sys) "supervisor.recoveries");
      Alcotest.(check bool) "budget not exhausted" false (Supervisor.exhausted sup);
      Alcotest.(check bool) "alarm recorded" true (Supervisor.last_alarm sup <> None);
      (* Self-healing: the next benign request is served exactly as
         before the attack. *)
      let after = expect_200 "post-recovery benign" (Nsystem.serve sys benign) in
      Alcotest.(check string) "post-recovery response intact" baseline after;
      record "recoveries" (string_of_int (Supervisor.recoveries sup));
      record "dropped" (string_of_int (Supervisor.dropped_connections sup));
      record "checkpoints" (string_of_int (Supervisor.checkpoints sup));
      Buffer.contents b)

let test_budget_exhaustion () =
  assert_equivalent ~what:"budget exhaustion"
    ~build:(fun ~parallel ->
      build_deploy
        ~recover:{ Supervisor.default_config with max_recoveries = 2 }
        ~parallel ())
    ~drive:(fun sys ->
      let b = Buffer.create 4096 in
      let record tag s = Buffer.add_string b (Printf.sprintf "%s=%s\n" tag s) in
      let sup = supervisor_of sys in
      ignore (expect_200 "benign" (Nsystem.serve sys benign));
      (* Two attacks are absorbed; the third exceeds the budget and the
         supervisor degrades to the paper's fail-stop. *)
      for i = 1 to 2 do
        record
          (Printf.sprintf "attack%d" i)
          (serve_str (Nsystem.serve sys attack_request));
        Alcotest.(check int) "recovery count" i (Supervisor.recoveries sup)
      done;
      (match Nsystem.serve sys attack_request with
      | Nsystem.Stopped (Monitor.Alarm reason) ->
        record "attack3" (Format.asprintf "failstop %a" Alarm.pp reason)
      | other -> Alcotest.failf "expected fail-stop, got %s" (serve_str other));
      Alcotest.(check bool) "exhausted" true (Supervisor.exhausted sup);
      Alcotest.(check int) "recoveries capped" 2 (Supervisor.recoveries sup);
      Alcotest.(check (option int)) "supervisor.failstop metric" (Some 1)
        (Metrics.find_counter (Nsystem.metrics sys) "supervisor.failstop");
      (* Once exhausted the supervisor stays fail-stop. *)
      record "after" (outcome_str (Nsystem.run sys));
      Alcotest.(check bool) "still exhausted" true (Supervisor.exhausted sup);
      Buffer.contents b)

let test_window_purges_budget () =
  (* A tiny recovery window: each attack's rollback stamp has aged out
     of the window by the time the next attack lands (a request is many
     rendezvous long), so a 1-recovery budget keeps absorbing. *)
  let sys =
    build_deploy
      ~recover:{ Supervisor.checkpoint_interval = 1; max_recoveries = 1; recovery_window = 2 }
      ~parallel:false ()
  in
  let sup = supervisor_of sys in
  let baseline = expect_200 "benign" (Nsystem.serve sys benign) in
  for i = 1 to 3 do
    (match Nsystem.serve sys attack_request with
    | Nsystem.Served _ -> ()
    | Nsystem.Stopped outcome ->
      Alcotest.failf "attack %d not absorbed: %s" i (outcome_str outcome));
    Alcotest.(check int) "recoveries" i (Supervisor.recoveries sup)
  done;
  Alcotest.(check bool) "never exhausted" false (Supervisor.exhausted sup);
  Alcotest.(check string) "still serving" baseline
    (expect_200 "post" (Nsystem.serve sys benign))

let test_zero_budget_is_failstop () =
  (* max_recoveries = 0: the very first alarm surfaces, exactly like an
     unsupervised monitor. *)
  let sys =
    build_deploy
      ~recover:{ Supervisor.default_config with max_recoveries = 0 }
      ~parallel:false ()
  in
  let sup = supervisor_of sys in
  ignore (expect_200 "benign" (Nsystem.serve sys benign));
  (match Nsystem.serve sys attack_request with
  | Nsystem.Stopped (Monitor.Alarm _) -> ()
  | other -> Alcotest.failf "expected alarm, got %s" (serve_str other));
  Alcotest.(check int) "no recoveries" 0 (Supervisor.recoveries sup);
  Alcotest.(check bool) "exhausted immediately" true (Supervisor.exhausted sup)

let test_rollback_to_initial () =
  (* A huge checkpoint interval leaves only the initial (pre-run entry)
     checkpoint: recovery restarts the server from scratch — startup
     code reruns, the log file is re-emptied — and serving resumes. *)
  assert_equivalent ~what:"rollback to initial"
    ~build:(fun ~parallel ->
      build_deploy
        ~recover:{ Supervisor.default_config with checkpoint_interval = 1_000_000 }
        ~parallel ())
    ~drive:(fun sys ->
      let b = Buffer.create 4096 in
      let sup = supervisor_of sys in
      let baseline = expect_200 "benign" (Nsystem.serve sys benign) in
      Buffer.add_string b (String.escaped baseline);
      Buffer.add_string b (serve_str (Nsystem.serve sys attack_request));
      Alcotest.(check int) "one recovery" 1 (Supervisor.recoveries sup);
      Alcotest.(check int) "only the initial checkpoint" 1 (Supervisor.checkpoints sup);
      (* The restored world is the boot world, so the next response
         matches the very first request since boot. *)
      let after = expect_200 "post" (Nsystem.serve sys benign) in
      Alcotest.(check string) "reboot-identical response" baseline after;
      Buffer.add_string b (String.escaped after);
      Buffer.contents b)

let test_out_of_fuel_passthrough () =
  let sys = build_deploy ~recover:Supervisor.default_config ~parallel:false () in
  match Nsystem.run ~fuel:5 sys with
  | Monitor.Out_of_fuel -> ()
  | outcome -> Alcotest.failf "expected out-of-fuel, got %s" (outcome_str outcome)

(* ------------------------------------------------------------------ *)
(* Campaign verdicts under recovery                                    *)
(* ------------------------------------------------------------------ *)

let find_attack name =
  match Campaign.find name with
  | Some a -> a
  | None -> Alcotest.failf "attack %s not registered" name

let test_run_attack_recovered () =
  let attack = find_attack "uid-null-overflow" in
  match
    Campaign.run_attack ~parallel:false ~recover:Supervisor.default_config attack
      Deploy.Two_variant_uid
  with
  | Ok (Campaign.Recovered { recoveries; last_alarm }) ->
    Alcotest.(check bool) "at least one rollback" true (recoveries >= 1);
    Alcotest.(check bool) "alarm retained" true (last_alarm <> None);
    Alcotest.(check string) "label" "RECOVERED"
      (Campaign.verdict_label (Campaign.Recovered { recoveries; last_alarm }))
  | Ok verdict -> Alcotest.failf "expected RECOVERED, got %s" (Campaign.verdict_label verdict)
  | Error e -> Alcotest.fail e

let test_run_attack_benign_not_recovered () =
  (* The control row must stay "no effect" even with a supervisor: no
     alarm, no rollback, no RECOVERED upgrade. *)
  let attack = find_attack "baseline-request" in
  match
    Campaign.run_attack ~parallel:false ~recover:Supervisor.default_config attack
      Deploy.Two_variant_uid
  with
  | Ok Campaign.No_effect -> ()
  | Ok verdict -> Alcotest.failf "expected no effect, got %s" (Campaign.verdict_label verdict)
  | Error e -> Alcotest.fail e

(* ------------------------------------------------------------------ *)
(* Fault injection                                                     *)
(* ------------------------------------------------------------------ *)

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec at i = i + n <= h && (String.sub haystack i n = needle || at (i + 1)) in
  at 0

let test_faultgen_describe () =
  List.iter
    (fun (fault, needle) ->
      let s = Faultgen.describe fault in
      Alcotest.(check bool) ("describe: " ^ s) true
        (String.length s > 0 && contains s needle))
    [
      (Faultgen.Flip_register { variant = 1; reg = 4; bit = 7 }, "r4");
      (Faultgen.Flip_memory_bit { variant = 0; offset = 12; bit = 3 }, "byte 12");
      (Faultgen.Corrupt_syscall_arg { variant = 1; bit = 0 }, "syscall");
      (Faultgen.Drop_input_byte { variant = 0; index = 2 }, "byte 2");
    ]

let test_faultgen_inject_validation () =
  let sys = build_deploy ~parallel:false () in
  ignore (Nsystem.run sys : Monitor.outcome);
  let check_invalid what fault =
    Alcotest.(check bool) what true
      (try
         Faultgen.inject sys fault;
         false
       with Invalid_argument _ -> true)
  in
  check_invalid "variant out of range"
    (Faultgen.Flip_register { variant = 2; reg = 0; bit = 0 });
  check_invalid "register out of range"
    (Faultgen.Flip_register { variant = 0; reg = 16; bit = 0 });
  check_invalid "register bit out of range"
    (Faultgen.Flip_register { variant = 0; reg = 0; bit = 32 });
  check_invalid "memory bit out of range"
    (Faultgen.Flip_memory_bit { variant = 0; offset = 0; bit = 8 });
  check_invalid "negative offset"
    (Faultgen.Flip_memory_bit { variant = 0; offset = -1; bit = 0 });
  check_invalid "negative input index"
    (Faultgen.Drop_input_byte { variant = 0; index = -1 })

let test_syscall_arg_fault_detected () =
  (* Without a supervisor a corrupted pending-syscall argument is an
     Arg divergence at the next rendezvous: fail-stop. *)
  let sys = build_deploy ~parallel:false () in
  (match Nsystem.run sys with
  | Monitor.Blocked_on_accept -> ()
  | outcome -> Alcotest.failf "expected park, got %s" (outcome_str outcome));
  Faultgen.inject sys (Faultgen.Corrupt_syscall_arg { variant = 0; bit = 3 });
  match Nsystem.serve sys benign with
  | Nsystem.Stopped (Monitor.Alarm _) -> ()
  | other -> Alcotest.failf "expected alarm, got %s" (serve_str other)

let test_syscall_arg_fault_recovered () =
  (* With a supervisor the same fault is absorbed: the alarm fires at
     the accept rendezvous itself, before the pending connection is
     accepted, so the rollback restores the register, keeps the
     connection queued, and the request is then served normally. *)
  let sys = build_deploy ~recover:Supervisor.default_config ~parallel:false () in
  let sup = supervisor_of sys in
  let baseline = expect_200 "benign" (Nsystem.serve sys benign) in
  ignore (Nsystem.run sys : Monitor.outcome);
  Faultgen.inject sys (Faultgen.Corrupt_syscall_arg { variant = 0; bit = 3 });
  let response = expect_200 "faulted serve" (Nsystem.serve sys benign) in
  Alcotest.(check string) "served correctly after rollback" baseline response;
  Alcotest.(check int) "one recovery" 1 (Supervisor.recoveries sup);
  Alcotest.(check int) "queued connection survived rollback" 0
    (Supervisor.dropped_connections sup)

let report_str r =
  Format.asprintf "%a" Faultgen.pp_report r

let test_faultgen_campaign_deterministic () =
  (* The default PRNG campaign is reproducible, identical under both
     stepping modes, and its counts are consistent. *)
  let run parallel =
    match
      Faultgen.run_campaign ~seed:7 ~recover:Supervisor.default_config ~parallel
        Deploy.Two_variant_uid
    with
    | Ok report -> report
    | Error e -> Alcotest.fail e
  in
  let seq = run false in
  let par = run true in
  Alcotest.(check string) "seq == par" (report_str seq) (report_str par);
  Alcotest.(check string) "same seed reproduces" (report_str seq) (report_str (run false));
  Alcotest.(check bool) "faults were injected" true (seq.Faultgen.injected >= 1);
  Alcotest.(check int) "counts add up" seq.Faultgen.injected
    (seq.Faultgen.recovered + seq.Faultgen.failstop + seq.Faultgen.clean
   + seq.Faultgen.corrupted + seq.Faultgen.crashed);
  Alcotest.(check int) "nothing crashed" 0 seq.Faultgen.crashed

let test_faultgen_explicit_faults () =
  (* A hand-picked always-diverging fault list under recovery: every
     fault is detected and absorbed. *)
  match
    Faultgen.run_campaign
      ~faults:
        [
          Faultgen.Corrupt_syscall_arg { variant = 0; bit = 2 };
          Faultgen.Corrupt_syscall_arg { variant = 1; bit = 5 };
        ]
      ~recover:Supervisor.default_config ~parallel:false Deploy.Two_variant_uid
  with
  | Error e -> Alcotest.fail e
  | Ok report ->
    Alcotest.(check int) "injected" 2 report.Faultgen.injected;
    Alcotest.(check int) "recovered" 2 report.Faultgen.recovered

let test_faultgen_without_supervisor_failstops () =
  (* The same diverging fault with no supervisor: the campaign records
     a fail-stop and ends. *)
  match
    Faultgen.run_campaign
      ~faults:[ Faultgen.Corrupt_syscall_arg { variant = 0; bit = 2 } ]
      ~parallel:false Deploy.Two_variant_uid
  with
  | Error e -> Alcotest.fail e
  | Ok report ->
    Alcotest.(check int) "injected" 1 report.Faultgen.injected;
    Alcotest.(check int) "failstop" 1 report.Faultgen.failstop;
    Alcotest.(check int) "recovered" 0 report.Faultgen.recovered

let () =
  Alcotest.run "nv_supervisor"
    [
      ( "snapshot",
        [
          Alcotest.test_case "replay determinism" `Quick test_snapshot_replay;
          Alcotest.test_case "metrics monotonic" `Quick test_snapshot_preserves_metrics;
        ] );
      ( "supervisor",
        [
          Alcotest.test_case "config validation" `Quick test_config_validation;
          Alcotest.test_case "attack recovery (pinned)" `Quick
            test_attack_recovery_integration;
          Alcotest.test_case "budget exhaustion" `Quick test_budget_exhaustion;
          Alcotest.test_case "window purges budget" `Quick test_window_purges_budget;
          Alcotest.test_case "zero budget is fail-stop" `Quick test_zero_budget_is_failstop;
          Alcotest.test_case "rollback to initial" `Quick test_rollback_to_initial;
          Alcotest.test_case "out-of-fuel passthrough" `Quick test_out_of_fuel_passthrough;
        ] );
      ( "campaign",
        [
          Alcotest.test_case "null-overflow recovered" `Quick test_run_attack_recovered;
          Alcotest.test_case "baseline stays no-effect" `Quick
            test_run_attack_benign_not_recovered;
        ] );
      ( "faultgen",
        [
          Alcotest.test_case "describe" `Quick test_faultgen_describe;
          Alcotest.test_case "inject validation" `Quick test_faultgen_inject_validation;
          Alcotest.test_case "syscall-arg fault detected" `Quick
            test_syscall_arg_fault_detected;
          Alcotest.test_case "syscall-arg fault recovered" `Quick
            test_syscall_arg_fault_recovered;
          Alcotest.test_case "campaign deterministic" `Quick
            test_faultgen_campaign_deterministic;
          Alcotest.test_case "explicit faults recovered" `Quick
            test_faultgen_explicit_faults;
          Alcotest.test_case "no supervisor fail-stops" `Quick
            test_faultgen_without_supervisor_failstops;
        ] );
    ]
