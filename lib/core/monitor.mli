(** The N-variant monitor: syscall-boundary rendezvous, input
    replication, equivalence checking, and reexpression at the kernel
    interface.

    This is the OCaml analogue of the paper's modified Linux kernel
    (Section 3.1): variants are synchronized at system calls; the
    monitor checks that all variants make the same call with equivalent
    (canonicalized) arguments, performs input system calls once and
    replicates the result, performs output system calls once after
    checking the variants agree on the bytes, applies [R_i^-1] to
    UID-typed arguments before checking and the kernel call, applies
    [R_i] to UID-typed results per variant, and implements the Table 2
    detection system calls. Unshared-file I/O is performed per variant
    by the kernel.

    Canonicalization (Section 2.1's normal-equivalence function):
    pointer arguments are compared as segment-relative offsets, UID
    arguments as [R_i^-1] images. *)

type outcome =
  | Exited of int
  | Alarm of Alarm.reason
  | Blocked_on_accept
      (** every variant is parked on [accept]; connect a client and
          call {!run} again *)
  | Out_of_fuel

type event = {
  ev_syscall : int;
  ev_raw_args : int array array;  (** [variant][arg 0..4] as trapped *)
  ev_note : string;  (** human-readable canonicalization summary *)
}
(** One rendezvous, for the Figure 2 trace demo. *)

type t

val create :
  ?metrics:Nv_util.Metrics.t ->
  ?parallel:bool ->
  ?engine:Nv_vm.Memory.engine ->
  ?segment_size:int ->
  ?stack_size:int ->
  kernel:Nv_os.Kernel.t ->
  variation:Variation.t ->
  Nv_vm.Image.t array ->
  t
(** [create ~kernel ~variation images] loads [images.(i)] according to
    [variation.variants.(i)] (base, tag) and registers the variation's
    unshared paths with the kernel. [images] must have exactly one
    image per variant (pass the same image several times for
    non-data-diversity variations); the kernel must have been created
    with a matching [~variants] count. Default segment size 1 MiB.
    [metrics] is the registry the monitor reports into; by default it
    shares the kernel's, so one registry covers the whole system.

    [parallel] selects domain-parallel variant execution: for the
    duration of each {!run} call every variant is pinned to its own
    long-lived domain, communicating with the coordinator over bounded
    lock-free SPSC rings ({!Nv_util.Spsc}) — no pool handoff or join
    per rendezvous. Parallel mode is bit-deterministic — identical
    outcomes, alarms, final registers/memory, and metric values as
    sequential mode (enforced by [test/test_parallel.ml]). Defaults to
    the [NV_PARALLEL] environment variable
    ({!Nv_util.Dompool.env_default}).

    [engine] pins every variant segment's execution tier
    ({!Nv_vm.Memory.engine}); when omitted, segments keep their
    creation default ([NV_ENGINE] or the icache). *)

val kernel : t -> Nv_os.Kernel.t

val parallel : t -> bool
(** Whether {!run} pins each variant to its own domain. *)

(** Size of the per-syscall-number metric-handle fast path; every
    [Nv_os.Syscall] number must stay below this. *)
val syscall_slots : int
val variation : t -> Variation.t
val variant_count : t -> int

val loaded : t -> int -> Nv_vm.Image.loaded
(** The loaded instance of variant [i] (used by attack payload
    builders to resolve symbol addresses). *)

val run : ?fuel:int -> t -> outcome
(** Execute until exit, alarm, accept-block, or the fuel budget (total
    guest instructions across all variants, default 50 million) is
    exhausted. Resumable after [Blocked_on_accept].

    Execution uses relaxed monitoring (in both sequential and parallel
    mode, so their behaviour stays identical): {e sensitive} syscalls
    ({!Nv_os.Syscall.sensitivity}) are full rendezvous points — every
    variant arrives, canonical arguments are compared, and the
    coordinator performs the kernel call once as the leader,
    replicating results — while {e relaxed} calls (register-only
    credential reads and the Table 2 detection calls) are executed
    locally by each variant, which posts a canonicalized record and
    continues without waiting. The coordinator cross-checks the
    accumulated records at the next rendezvous, raising the same alarm
    classes with identical payloads, metric counters and trace events
    as eager per-call rendezvous would have. *)

val instructions_retired : t -> int
(** Total instructions across all variants — the redundant-computation
    cost that Table 3's saturated-throughput halving comes from. *)

val rendezvous_count : t -> int
(** Syscall rendezvous points so far (each costs one monitor check). *)

val metrics : t -> Nv_util.Metrics.t
(** The registry this monitor reports into (shared with its kernel by
    default). Monitor metrics: [monitor.rendezvous],
    [monitor.calls.<name>], [monitor.checks.performed],
    [monitor.checks.failed], [monitor.alarms.<label>],
    [monitor.latency_instr.<name>] (histogram of retired instructions
    between rendezvous), [monitor.input_bytes_replicated],
    [monitor.output_writes_checked], [monitor.signals_delivered],
    [monitor.relaxed_checks] (positions cross-checked from deferred
    records rather than an eager rendezvous) and
    [monitor.deferred_batch_size] (histogram of how many deferred
    checks settled per flush boundary). *)

type stats = {
  st_rendezvous : int;
  st_instructions : int array;  (** retired, per variant *)
  st_calls : (string * int) list;  (** rendezvous per syscall name, sorted *)
  st_checks_performed : int;
      (** equivalence checks evaluated (argument, output, exit, cond,
          syscall-number) *)
  st_checks_failed : int;  (** checks that raised an alarm *)
  st_input_bytes_replicated : int;
      (** bytes of shared input performed once and copied to every
          variant *)
  st_output_writes_checked : int;
      (** shared writes whose bytes were compared across variants *)
  st_signals_delivered : int;
  st_relaxed_checks : int;
      (** rendezvous positions settled from deferred relaxed-call
          records instead of an eager stop-the-world rendezvous *)
}

val stats : t -> stats
(** Aggregate counters since creation — a thin view over {!metrics},
    the observability surface the operator of an N-variant deployment
    would watch. *)

val set_tracer : t -> (event -> unit) -> unit
(** Install a rendezvous observer (Figure 2 demo). *)

(** {1 Flight recorder}

    Every monitor owns a disabled {!Nv_util.Trace} session with one
    ring per variant (tid [0..n-1]; owned by that variant's domain
    while it is released, so recording is lock-free), a coordinator
    ring (tid [n]: full and relaxed rendezvous, deferred-flush
    boundaries, dispatch breadcrumbs, alarms) and a kernel ring (tid
    [n+1]: every kernel dispatch). Timestamps are retired-instruction
    counts — the variant's own for its ring, the all-variant total for
    the coordinator and kernel — so sequential and parallel runs of
    the same program record bit-identical streams. Enable with
    [Trace.set_enabled (trace_session t) true]; when disabled every
    recording site costs one atomic load and allocates nothing. *)

val trace_session : t -> Nv_util.Trace.t

val forensics : t -> Nv_util.Metrics.Json.value option
(** The post-mortem bundle captured by the most recent alarm (any
    alarm, whether or not the recorder is enabled): alarm class and
    payload including the divergent variant(s), syscall number and
    mismatched canonical argument values; rendezvous count; canonical
    and per-variant reexpressed credentials; each variant's pc,
    register file and retired count; and the tail of every trace ring
    (empty rings when the recorder was off). *)

(** {1 Asynchronous events (signals)}

    Section 3.1 flags scheduling divergence from asynchronous signal
    delivery as an open issue of the framework ("if a signal is
    delivered to variants at different points in their execution, their
    behaviors may diverge. This leads to a false attack detection"),
    and credits Bruschi et al. with steps toward simultaneous delivery.
    Both deliveries are implemented here:

    - {!Immediate} models a naive kernel: the handler is forced into
      each variant once that variant has retired a fixed number of
      further instructions. When data diversity makes the variants'
      instruction streams drift (e.g. while parsing different-length
      unshared files), the same count lands at {e different logical
      points} and normal equivalence can break — the false-detection
      hazard, reproducible on demand.
    - {!At_rendezvous} is the synchronized discipline: delivery is
      deferred to the next syscall rendezvous, where every variant is
      at an equivalent state, so handlers run in lockstep.

    Handler contract: a handler is a guest function of no arguments
    that mutates globals and returns; it must not make system calls
    (delivery is a synchronous monitor-driven subroutine execution,
    outside the lockstep protocol). A handler that traps raises a
    {!Alarm.Signal_delivery_failed} alarm. *)

type signal_mode =
  | Immediate of { after_instructions : int }
      (** deliver once the variant has retired this many further
          instructions *)
  | At_rendezvous  (** deliver at the next syscall rendezvous *)

val post_signal : t -> handler:string -> mode:signal_mode -> (unit, string) result
(** Queue one asynchronous event for every variant. Fails if [handler]
    is not a symbol of every variant's image, or if a signal is already
    pending. *)

val signal_pending : t -> bool

(** {1 Checkpointing}

    The state captured is exactly what rendezvous-determinism depends
    on: every variant's CPU + memory ({!Nv_vm.Image.snapshot}) and the
    kernel ({!Nv_os.Kernel.snapshot}). Metrics are {e not} rolled back
    (counters stay monotonic); the listener's pending-accept queue is
    preserved so connections queued after the checkpoint are still
    served. Take snapshots only while the system is parked at a
    rendezvous boundary ({!Blocked_on_accept} or before the first
    {!run}) — the supervisor enforces this. *)

type snapshot

val snapshot : t -> snapshot

val restore : t -> snapshot -> int
(** Roll every variant and the kernel back to [snap]; returns the
    number of live connections dropped. Any pending signal is
    discarded and the latency baseline re-anchored. A snapshot may be
    restored any number of times. *)

val set_input_fault : t -> (variant:int -> string -> string) option -> unit
(** Install (or clear) a fault-injection hook on replicated input:
    when set, each shared read's bytes pass through the hook per
    variant, and each variant receives its own possibly-perturbed copy
    with its own byte count. Used by [Nv_attacks.Faultgen]. *)
