lib/util/logsrc.mli: Logs
