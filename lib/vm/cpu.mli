(** Fetch-decode-execute engine for one guest variant.

    A CPU owns a register file, a program counter, and a {!Memory.t}
    segment. It executes until it {e traps}: on [Syscall] (control
    returns to the monitor, which implements the kernel boundary of the
    N-variant framework), on [Halt], on a memory/decoding fault, or when
    the supplied fuel runs out.

    The [expected_tag] implements the instruction-set-tagging variation:
    every fetched instruction's tag byte must equal it. *)

type fault = Block.fault =
  | Segfault of { addr : int; access : Memory.access }
      (** Access outside the variant's segment — the alarm state of
          address-space partitioning. *)
  | Bad_tag of { addr : int; found : int; expected : int }
      (** Instruction-tag mismatch — the alarm state of instruction-set
          tagging. *)
  | Bad_instruction of { addr : int }
  | Division_fault of { addr : int }
  | Stack_fault of { addr : int }  (** push/pop outside the segment *)

type trap = Block.trap =
  | Syscall_trap  (** [Syscall] executed; ABI registers hold the call. *)
  | Halt_trap
  | Fault_trap of fault

type outcome =
  | Trapped of trap
  | Out_of_fuel

type t

val create : ?expected_tag:int -> Memory.t -> pc:int -> sp:int -> t
(** Fresh CPU with all registers zero except [r13 = sp]. *)

val memory : t -> Memory.t
val pc : t -> int
val set_pc : t -> int -> unit

val reg : t -> int -> Word.t
(** Raises [Invalid_argument] for indices outside [\[0,15\]]. *)

val set_reg : t -> int -> Word.t -> unit

val sp_index : int
(** 13. *)

val fp_index : int
(** 12. *)

val instructions_retired : t -> int
(** Total instructions executed since creation; the service-demand
    measure that drives the Table 3 performance model. *)

val expected_tag : t -> int

type snapshot
(** Architectural state checkpoint: all 16 registers, the pc, and the
    retired-instruction count (restored too, so fuel accounting and
    instruction-count fingerprints roll back with the machine state). *)

val snapshot : t -> snapshot
val restore : t -> snapshot -> unit

val step : t -> trap option
(** Execute one instruction. [None] means normal advancement. After a
    [Syscall_trap] the pc already points at the next instruction, so
    calling {!step} again resumes after the syscall. A fault leaves the
    pc at the faulting instruction. *)

val run : t -> fuel:int -> outcome
(** Execute until a trap or until [fuel] instructions have retired.
    The execution tier is the segment's {!Memory.engine}: under
    [Block] the hot path runs whole compiled basic blocks (see
    {!Block}), falling back to {!step} whenever no block is
    dispatchable; under [Reference]/[Icache] it single-steps. All
    three tiers retire the same instructions, trap at the same pcs,
    and never overrun [fuel]. *)

val block_stats : t -> int * int * int
(** [(compiled, hits, invalidations)] for the block engine: blocks
    compiled, dispatches served from the cache, and registered blocks
    invalidated by stores or rollbacks. All zero until the first
    block-engine {!run}. *)

val pp_fault : Format.formatter -> fault -> unit
val pp_trap : Format.formatter -> trap -> unit
