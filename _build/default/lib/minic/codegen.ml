exception Error of string

let fail fmt = Printf.ksprintf (fun m -> raise (Error m)) fmt

module Isa = Nv_vm.Isa
module Word = Nv_vm.Word
module Image = Nv_vm.Image
module Syscall = Nv_os.Syscall

let r0 = 0
let r1 = 1
let fp = Nv_vm.Cpu.fp_index
let sp = Nv_vm.Cpu.sp_index
let scratch = 15

(* ------------------------------------------------------------------ *)
(* Emission state with label/global backpatching                       *)
(* ------------------------------------------------------------------ *)

type fixup_target =
  | To_label of int  (** code label id *)
  | To_global of string  (** symbol in the data region *)
  | To_string of int  (** interned string id *)
  | To_frame of int ref  (** function frame size, known after the body *)

type cg = {
  mutable code_rev : (Image.item * fixup_target option) list;
  mutable ninstr : int;
  labels : (int, int) Hashtbl.t;  (* label id -> instruction index *)
  mutable next_label : int;
  data : Buffer.t;  (* initialized globals, then the string table *)
  global_offsets : (string, int) Hashtbl.t;  (* offset within data *)
  strings : (string, int) Hashtbl.t;  (* literal -> string id *)
  mutable string_list : string list;  (* reversed; id = position *)
  func_labels : (string, int) Hashtbl.t;
}

let new_label cg =
  let l = cg.next_label in
  cg.next_label <- l + 1;
  l

let place_label cg l = Hashtbl.replace cg.labels l cg.ninstr

let emit cg instr =
  cg.code_rev <- (Image.{ instr; relocate = false }, None) :: cg.code_rev;
  cg.ninstr <- cg.ninstr + 1

let emit_fix cg instr target =
  cg.code_rev <- (Image.{ instr; relocate = true }, Some target) :: cg.code_rev;
  cg.ninstr <- cg.ninstr + 1

let intern_string cg s =
  match Hashtbl.find_opt cg.strings s with
  | Some id -> id
  | None ->
    let id = List.length cg.string_list in
    Hashtbl.add cg.strings s id;
    cg.string_list <- s :: cg.string_list;
    id

(* ------------------------------------------------------------------ *)
(* Frame environment                                                   *)
(* ------------------------------------------------------------------ *)

type slot = Local of int  (** fp-relative offset *) | Param of int | Global_var of string

type fenv = {
  cg : cg;
  global_types : (string, Ast.ty) Hashtbl.t;
  mutable scopes : (string * (slot * Ast.ty)) list list;
  mutable next_slot : int;  (* bytes of locals currently live *)
  mutable max_slot : int;
  mutable break_labels : int list;
  mutable continue_labels : int list;
  epilogue : int;
}

let push_scope env = env.scopes <- [] :: env.scopes

let pop_scope env saved_slot =
  (match env.scopes with [] -> () | _ :: rest -> env.scopes <- rest);
  env.next_slot <- saved_slot

let declare env name slot ty =
  match env.scopes with
  | [] -> fail "internal: no scope"
  | scope :: rest -> env.scopes <- ((name, (slot, ty)) :: scope) :: rest

let local_size = function
  | Ast.Tarray (Ast.Tchar, n) -> (n + 3) land lnot 3
  | Ast.Tarray (_, n) -> 4 * n
  | _ -> 4

let alloc_local env ty =
  env.next_slot <- env.next_slot + local_size ty;
  env.max_slot <- max env.max_slot env.next_slot;
  Local (-env.next_slot)

let lookup env name =
  let rec search = function
    | [] -> (
      match Hashtbl.find_opt env.global_types name with
      | Some ty -> Some (Global_var name, ty)
      | None -> None)
    | scope :: rest -> (
      match List.assoc_opt name scope with Some s -> Some s | None -> search rest)
  in
  search env.scopes

let elem_size = function Ast.Tchar -> 1 | _ -> 4

let pointee = function
  | Ast.Tptr t -> t
  | Ast.Tarray (t, _) -> t
  | ty -> fail "internal: not a pointer type %s" (Pretty.ty ty)

let is_char_ty = function Ast.Tchar -> true | _ -> false

(* ------------------------------------------------------------------ *)
(* Expressions                                                         *)
(* ------------------------------------------------------------------ *)

let cond_of_binop = function
  | Ast.Eq -> Isa.Eq
  | Ast.Ne -> Isa.Ne
  | Ast.Lt -> Isa.Lt
  | Ast.Le -> Isa.Le
  | Ast.Gt -> Isa.Gt
  | Ast.Ge -> Isa.Ge
  | _ -> fail "internal: not a comparison"

let alu_of_binop = function
  | Ast.Add -> Isa.Add
  | Ast.Sub -> Isa.Sub
  | Ast.Mul -> Isa.Mul
  | Ast.Div -> Isa.Div
  | Ast.Mod -> Isa.Mod
  | Ast.Band -> Isa.And
  | Ast.Bor -> Isa.Or
  | Ast.Bxor -> Isa.Xor
  | Ast.Shl -> Isa.Shl
  | Ast.Shr -> Isa.Shr
  | _ -> fail "internal: not an ALU operation"

let syscall_number name =
  match name with
  | "sys_exit" -> Syscall.sys_exit
  | "sys_read" -> Syscall.sys_read
  | "sys_write" -> Syscall.sys_write
  | "sys_open" -> Syscall.sys_open
  | "sys_close" -> Syscall.sys_close
  | "sys_accept" -> Syscall.sys_accept
  | "getuid" -> Syscall.sys_getuid
  | "geteuid" -> Syscall.sys_geteuid
  | "setuid" -> Syscall.sys_setuid
  | "seteuid" -> Syscall.sys_seteuid
  | "getgid" -> Syscall.sys_getgid
  | "getegid" -> Syscall.sys_getegid
  | "setgid" -> Syscall.sys_setgid
  | "setegid" -> Syscall.sys_setegid
  | "uid_value" -> Syscall.sys_uid_value
  | "cond_chk" -> Syscall.sys_cond_chk
  | "cc_eq" -> Syscall.sys_cc_eq
  | "cc_neq" -> Syscall.sys_cc_neq
  | "cc_lt" -> Syscall.sys_cc_lt
  | "cc_leq" -> Syscall.sys_cc_leq
  | "cc_gt" -> Syscall.sys_cc_gt
  | "cc_geq" -> Syscall.sys_cc_geq
  | _ -> -1

let is_builtin name = syscall_number name >= 0

(* Every gen_* leaves its result in r0 and preserves nothing else;
   intermediate values are kept on the guest stack. *)
let rec gen_expr env (te : Tast.texpr) =
  let cg = env.cg in
  match te.Tast.e with
  | Tast.Tint_lit v -> emit cg (Isa.Mov (r0, Isa.Imm (Word.of_signed v)))
  | Tast.Tchar_lit c -> emit cg (Isa.Mov (r0, Isa.Imm (Char.code c)))
  | Tast.Tstr_lit s ->
    let id = intern_string cg s in
    emit_fix cg (Isa.Mov (r0, Isa.Imm 0)) (To_string id)
  | Tast.Tvar name -> (
    match lookup env name with
    | None -> fail "internal: unresolved variable %s" name
    | Some (slot, ty) -> (
      match ty with
      | Ast.Tarray _ -> gen_slot_addr env slot
      | _ -> gen_slot_load env slot ty))
  | Tast.Tunop (Ast.Neg, a) ->
    gen_expr env a;
    emit cg (Isa.Mov (r1, Isa.Reg r0));
    emit cg (Isa.Mov (r0, Isa.Imm 0));
    emit cg (Isa.Binop (Isa.Sub, r0, r0, Isa.Reg r1))
  | Tast.Tunop (Ast.Lnot, a) ->
    gen_expr env a;
    emit cg (Isa.Setcc (Isa.Eq, r0, r0, Isa.Imm 0))
  | Tast.Tunop (Ast.Bnot, a) ->
    gen_expr env a;
    emit cg (Isa.Binop (Isa.Xor, r0, r0, Isa.Imm Word.max_value))
  | Tast.Tbinop (Ast.Land, a, b) ->
    let short = new_label cg in
    let done_ = new_label cg in
    gen_expr env a;
    emit cg (Isa.Mov (scratch, Isa.Imm 0));
    emit_fix cg (Isa.Br (Isa.Eq, r0, scratch, 0)) (To_label short);
    gen_expr env b;
    emit cg (Isa.Setcc (Isa.Ne, r0, r0, Isa.Imm 0));
    emit_fix cg (Isa.Jmp 0) (To_label done_);
    place_label cg short;
    emit cg (Isa.Mov (r0, Isa.Imm 0));
    place_label cg done_
  | Tast.Tbinop (Ast.Lor, a, b) ->
    let short = new_label cg in
    let done_ = new_label cg in
    gen_expr env a;
    emit cg (Isa.Mov (scratch, Isa.Imm 0));
    emit_fix cg (Isa.Br (Isa.Ne, r0, scratch, 0)) (To_label short);
    gen_expr env b;
    emit cg (Isa.Setcc (Isa.Ne, r0, r0, Isa.Imm 0));
    emit_fix cg (Isa.Jmp 0) (To_label done_);
    place_label cg short;
    emit cg (Isa.Mov (r0, Isa.Imm 1));
    place_label cg done_
  | Tast.Tbinop (op, a, b) when Ast.is_comparison op ->
    gen_two env a b;
    emit cg (Isa.Setcc (cond_of_binop op, r0, r0, Isa.Reg r1))
  | Tast.Tbinop ((Ast.Add | Ast.Sub) as op, a, b) -> (
    (* Pointer arithmetic scales the integer operand. *)
    match (a.Tast.ty, b.Tast.ty) with
    | (Ast.Tptr _ | Ast.Tarray _), (Ast.Tint | Ast.Tchar) ->
      gen_two env a b;
      let size = elem_size (pointee a.Tast.ty) in
      if size > 1 then emit cg (Isa.Binop (Isa.Mul, r1, r1, Isa.Imm size));
      emit cg (Isa.Binop (alu_of_binop op, r0, r0, Isa.Reg r1))
    | (Ast.Tint | Ast.Tchar), (Ast.Tptr _ | Ast.Tarray _) ->
      gen_two env a b;
      let size = elem_size (pointee b.Tast.ty) in
      if size > 1 then emit cg (Isa.Binop (Isa.Mul, r0, r0, Isa.Imm size));
      emit cg (Isa.Binop (alu_of_binop op, r0, r0, Isa.Reg r1))
    | _ ->
      gen_two env a b;
      emit cg (Isa.Binop (alu_of_binop op, r0, r0, Isa.Reg r1)))
  | Tast.Tbinop (op, a, b) ->
    gen_two env a b;
    emit cg (Isa.Binop (alu_of_binop op, r0, r0, Isa.Reg r1))
  | Tast.Tassign (lv, rhs) -> gen_assign env lv rhs
  | Tast.Tcall (name, args) -> gen_call env name args
  | Tast.Tindex (base, idx) ->
    gen_index_addr env base idx;
    gen_load_through env (pointee base.Tast.ty)
  | Tast.Tderef ptr ->
    gen_expr env ptr;
    gen_load_through env (pointee ptr.Tast.ty)
  | Tast.Taddr_of lv -> gen_lvalue_addr env lv
  | Tast.Tcast (ty, a) ->
    gen_expr env a;
    if is_char_ty ty then emit cg (Isa.Binop (Isa.And, r0, r0, Isa.Imm 0xFF))

(* Evaluate a then b, leaving a in r0 and b in r1. *)
and gen_two env a b =
  let cg = env.cg in
  gen_expr env a;
  emit cg (Isa.Push r0);
  gen_expr env b;
  emit cg (Isa.Mov (r1, Isa.Reg r0));
  emit cg (Isa.Pop r0)

(* r0 holds an address; load the value it points to. *)
and gen_load_through env elem_ty =
  let cg = env.cg in
  if is_char_ty elem_ty then emit cg (Isa.Loadb (r0, r0, 0))
  else emit cg (Isa.Load (r0, r0, 0))

and gen_slot_addr env slot =
  let cg = env.cg in
  match slot with
  | Local off | Param off ->
    emit cg (Isa.Mov (r0, Isa.Reg fp));
    emit cg (Isa.Binop (Isa.Add, r0, r0, Isa.Imm (Word.of_signed off)))
  | Global_var name -> emit_fix cg (Isa.Mov (r0, Isa.Imm 0)) (To_global name)

and gen_slot_load env slot ty =
  let cg = env.cg in
  match slot with
  | Local off | Param off ->
    if is_char_ty ty then emit cg (Isa.Loadb (r0, fp, off))
    else emit cg (Isa.Load (r0, fp, off))
  | Global_var name ->
    emit_fix cg (Isa.Mov (r0, Isa.Imm 0)) (To_global name);
    gen_load_through env ty

and gen_index_addr env base idx =
  let cg = env.cg in
  gen_expr env base;
  emit cg (Isa.Push r0);
  gen_expr env idx;
  let size = elem_size (pointee base.Tast.ty) in
  if size > 1 then emit cg (Isa.Binop (Isa.Mul, r0, r0, Isa.Imm size));
  emit cg (Isa.Mov (r1, Isa.Reg r0));
  emit cg (Isa.Pop r0);
  emit cg (Isa.Binop (Isa.Add, r0, r0, Isa.Reg r1))

and gen_lvalue_addr env (tlv : Tast.tlvalue) =
  match tlv.Tast.lv with
  | Tast.TLvar name -> (
    match lookup env name with
    | None -> fail "internal: unresolved variable %s" name
    | Some (slot, _) -> gen_slot_addr env slot)
  | Tast.TLindex (base, idx) -> gen_index_addr env base idx
  | Tast.TLderef ptr -> gen_expr env ptr

and gen_assign env tlv rhs =
  let cg = env.cg in
  (* Fast path: direct store to a scalar local/param slot. *)
  match tlv.Tast.lv with
  | Tast.TLvar name when (match lookup env name with
                          | Some ((Local _ | Param _), _) -> true
                          | _ -> false) ->
    let slot, ty = Option.get (lookup env name) in
    let off = match slot with Local o | Param o -> o | Global_var _ -> assert false in
    gen_expr env rhs;
    if is_char_ty ty then emit cg (Isa.Storeb (fp, off, r0))
    else emit cg (Isa.Store (fp, off, r0))
  | _ ->
    gen_lvalue_addr env tlv;
    emit cg (Isa.Push r0);
    gen_expr env rhs;
    emit cg (Isa.Pop r1);
    if is_char_ty tlv.Tast.lv_ty then emit cg (Isa.Storeb (r1, 0, r0))
    else emit cg (Isa.Store (r1, 0, r0))

and gen_call env name args =
  let cg = env.cg in
  if is_builtin name then begin
    (* Arguments land in r1..r5; the syscall number in r0. *)
    List.iter
      (fun arg ->
        gen_expr env arg;
        emit cg (Isa.Push r0))
      args;
    let n = List.length args in
    for i = n downto 1 do
      emit cg (Isa.Pop i)
    done;
    emit cg (Isa.Mov (r0, Isa.Imm (syscall_number name)));
    emit cg Isa.Syscall
  end
  else begin
    List.iter
      (fun arg ->
        gen_expr env arg;
        emit cg (Isa.Push r0))
      args;
    let label =
      match Hashtbl.find_opt cg.func_labels name with
      | Some l -> l
      | None -> fail "internal: call to unknown function %s" name
    in
    emit_fix cg (Isa.Call 0) (To_label label);
    let n = List.length args in
    if n > 0 then emit cg (Isa.Binop (Isa.Add, sp, sp, Isa.Imm (4 * n)))
  end

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)
(* ------------------------------------------------------------------ *)

let gen_condition_branch env cond ~on_false =
  let cg = env.cg in
  gen_expr env cond;
  emit cg (Isa.Mov (scratch, Isa.Imm 0));
  emit_fix cg (Isa.Br (Isa.Eq, r0, scratch, 0)) (To_label on_false)

let rec gen_stmt env (stmt : Tast.tstmt) =
  let cg = env.cg in
  match stmt with
  | Tast.TSexpr e -> gen_expr env e
  | Tast.TSdecl (ty, name, init) -> (
    let slot = alloc_local env ty in
    declare env name slot ty;
    match init with
    | None -> ()
    | Some rhs ->
      let off = match slot with Local o -> o | Param _ | Global_var _ -> assert false in
      gen_expr env rhs;
      if is_char_ty ty then emit cg (Isa.Storeb (fp, off, r0))
      else emit cg (Isa.Store (fp, off, r0)))
  | Tast.TSif (cond, then_s, else_s) ->
    let else_label = new_label cg in
    let end_label = new_label cg in
    gen_condition_branch env cond ~on_false:else_label;
    gen_block env then_s;
    if else_s = [] then place_label cg else_label
    else begin
      emit_fix cg (Isa.Jmp 0) (To_label end_label);
      place_label cg else_label;
      gen_block env else_s
    end;
    if else_s <> [] then place_label cg end_label
  | Tast.TSwhile (cond, body) ->
    let top = new_label cg in
    let exit = new_label cg in
    place_label cg top;
    gen_condition_branch env cond ~on_false:exit;
    env.break_labels <- exit :: env.break_labels;
    env.continue_labels <- top :: env.continue_labels;
    gen_block env body;
    env.break_labels <- List.tl env.break_labels;
    env.continue_labels <- List.tl env.continue_labels;
    emit_fix cg (Isa.Jmp 0) (To_label top);
    place_label cg exit
  | Tast.TSreturn e ->
    (match e with Some e -> gen_expr env e | None -> ());
    emit_fix cg (Isa.Jmp 0) (To_label env.epilogue)
  | Tast.TSbreak -> (
    match env.break_labels with
    | label :: _ -> emit_fix cg (Isa.Jmp 0) (To_label label)
    | [] -> fail "internal: break outside loop")
  | Tast.TScontinue -> (
    match env.continue_labels with
    | label :: _ -> emit_fix cg (Isa.Jmp 0) (To_label label)
    | [] -> fail "internal: continue outside loop")
  | Tast.TSblock body -> gen_block env body

and gen_block env body =
  let saved = env.next_slot in
  push_scope env;
  List.iter (gen_stmt env) body;
  pop_scope env saved

(* ------------------------------------------------------------------ *)
(* Globals and whole-program assembly                                  *)
(* ------------------------------------------------------------------ *)

let put_word buf v =
  let w = Word.of_signed v in
  for i = 0 to 3 do
    Buffer.add_char buf (Char.chr (Word.byte w i))
  done

let layout_globals cg (globals : Ast.global list) =
  List.iter
    (fun { Ast.gname; gty; ginit } ->
      Hashtbl.replace cg.global_offsets gname (Buffer.length cg.data);
      match (gty, ginit) with
      | _, Ast.Init_int v -> put_word cg.data v
      | Ast.Tarray (Ast.Tchar, n), Ast.Init_string s ->
        Buffer.add_string cg.data s;
        Buffer.add_string cg.data (String.make (((n + 3) land lnot 3) - String.length s) '\000')
      | Ast.Tarray (_, n), Ast.Init_array vs ->
        List.iter (put_word cg.data) vs;
        for _ = List.length vs + 1 to n do
          put_word cg.data 0
        done
      | Ast.Tarray (Ast.Tchar, n), Ast.Init_none ->
        Buffer.add_string cg.data (String.make ((n + 3) land lnot 3) '\000')
      | Ast.Tarray (_, n), Ast.Init_none ->
        for _ = 1 to n do
          put_word cg.data 0
        done
      | _, Ast.Init_none -> put_word cg.data 0
      | _, _ -> fail "invalid initializer for global %s" gname)
    globals

let compile (prog : Tast.tprogram) =
  let cg =
    {
      code_rev = [];
      ninstr = 0;
      labels = Hashtbl.create 64;
      next_label = 0;
      data = Buffer.create 1024;
      global_offsets = Hashtbl.create 32;
      strings = Hashtbl.create 32;
      string_list = [];
      func_labels = Hashtbl.create 16;
    }
  in
  layout_globals cg prog.Tast.tglobals;
  let global_types = Hashtbl.create 32 in
  List.iter
    (fun { Ast.gname; gty; _ } -> Hashtbl.replace global_types gname gty)
    prog.Tast.tglobals;
  (match List.find_opt (fun f -> f.Tast.fname = "main") prog.Tast.tfuncs with
  | None -> fail "program has no main function"
  | Some f when f.Tast.params <> [] -> fail "main must take no parameters"
  | Some _ -> ());
  List.iter
    (fun f -> Hashtbl.replace cg.func_labels f.Tast.fname (new_label cg))
    prog.Tast.tfuncs;
  (* Entry stub: call main, then exit with its result. *)
  emit_fix cg (Isa.Call 0) (To_label (Hashtbl.find cg.func_labels "main"));
  emit cg (Isa.Mov (r1, Isa.Reg r0));
  emit cg (Isa.Mov (r0, Isa.Imm Syscall.sys_exit));
  emit cg Isa.Syscall;
  emit cg Isa.Halt;
  (* Function bodies. *)
  List.iter
    (fun f ->
      place_label cg (Hashtbl.find cg.func_labels f.Tast.fname);
      let epilogue = new_label cg in
      let env =
        {
          cg;
          global_types;
          scopes = [ [] ];
          next_slot = 0;
          max_slot = 0;
          break_labels = [];
          continue_labels = [];
          epilogue;
        }
      in
      let nparams = List.length f.Tast.params in
      List.iteri
        (fun i (ty, name) -> declare env name (Param (8 + (4 * (nparams - 1 - i)))) ty)
        f.Tast.params;
      emit cg (Isa.Push fp);
      emit cg (Isa.Mov (fp, Isa.Reg sp));
      let frame = ref 0 in
      emit_fix cg (Isa.Binop (Isa.Sub, sp, sp, Isa.Imm 0)) (To_frame frame);
      (* Default result for functions that fall off the end. *)
      emit cg (Isa.Mov (r0, Isa.Imm 0));
      List.iter (gen_stmt env) f.Tast.body;
      frame := (env.max_slot + 3) land lnot 3;
      place_label cg epilogue;
      emit cg (Isa.Mov (sp, Isa.Reg fp));
      emit cg (Isa.Pop fp);
      emit cg Isa.Ret)
    prog.Tast.tfuncs;
  (* String table goes after the globals in the data region. *)
  let string_offsets =
    let strings = List.rev cg.string_list in
    List.map
      (fun s ->
        let off = Buffer.length cg.data in
        Buffer.add_string cg.data s;
        Buffer.add_char cg.data '\000';
        off)
      strings
  in
  let code_bytes = cg.ninstr * Isa.instr_size in
  let data_off = (code_bytes + 15) land lnot 15 in
  let items = Array.make cg.ninstr Image.{ instr = Isa.Nop; relocate = false } in
  let resolve_label l =
    match Hashtbl.find_opt cg.labels l with
    | Some idx -> idx * Isa.instr_size
    | None -> fail "internal: unplaced label %d" l
  in
  List.iteri
    (fun rev_i (item, fixup) ->
      let i = cg.ninstr - 1 - rev_i in
      let item =
        match fixup with
        | None -> item
        | Some target -> (
          let patch_imm value relocate =
            let instr =
              match item.Image.instr with
              | Isa.Mov (rd, Isa.Imm _) -> Isa.Mov (rd, Isa.Imm value)
              | Isa.Binop (op, rd, rs, Isa.Imm _) -> Isa.Binop (op, rd, rs, Isa.Imm value)
              | Isa.Br (c, rs, rt, _) -> Isa.Br (c, rs, rt, value)
              | Isa.Jmp _ -> Isa.Jmp value
              | Isa.Call _ -> Isa.Call value
              | other ->
                fail "internal: fixup on %s" (Format.asprintf "%a" Isa.pp other)
            in
            Image.{ instr; relocate }
          in
          match target with
          | To_label l -> patch_imm (resolve_label l) true
          | To_global name -> (
            match Hashtbl.find_opt cg.global_offsets name with
            | Some off -> patch_imm (data_off + off) true
            | None -> fail "internal: unknown global %s" name)
          | To_string id -> patch_imm (data_off + List.nth string_offsets id) true
          | To_frame size -> patch_imm !size false)
      in
      items.(i) <- item)
    cg.code_rev;
  let symbols =
    Hashtbl.fold
      (fun name off acc -> (name, data_off + off) :: acc)
      cg.global_offsets []
    |> List.sort compare
  in
  let func_symbols =
    Hashtbl.fold
      (fun name label acc -> (name, resolve_label label) :: acc)
      cg.func_labels []
    |> List.sort compare
  in
  Image.
    {
      code = items;
      data = Buffer.to_bytes cg.data;
      bss_size = 0;
      entry_offset = 0;
      symbols = symbols @ func_symbols;
    }

let compile_source source =
  let ast = Parser.parse source in
  match Typecheck.check ast with
  | Error (err :: _) -> fail "%s" (Format.asprintf "%a" Typecheck.pp_error err)
  | Error [] -> fail "typecheck failed"
  | Ok tprog -> compile tprog
