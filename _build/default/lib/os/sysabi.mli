(** Marshalling between the VM's syscall trap state and kernel calls.

    The guest ABI puts the syscall number in [r0] and up to five
    arguments in [r1]..[r5]; the result is written back to [r0]. These
    helpers are shared by the single-variant runner and the N-variant
    monitor. *)

type raw = { number : int; args : Nv_vm.Word.t array }
(** A trapped syscall as it appears in the registers; [args] always has
    five entries. *)

val of_cpu : Nv_vm.Cpu.t -> raw
(** Read the call out of a CPU stopped on [Syscall_trap]. *)

val set_result : Nv_vm.Cpu.t -> Nv_vm.Word.t -> unit
(** Deliver the result into [r0]. *)

val retry_syscall : Nv_vm.Cpu.t -> unit
(** Rewind the pc to the trapping [syscall] instruction so that
    resuming re-issues it (used to park a process on [accept] until a
    connection arrives). *)

val max_path : int
(** Longest path the kernel will read from guest memory (4096). *)

val read_string : Nv_vm.Memory.t -> addr:Nv_vm.Word.t -> string
(** NUL-terminated string at [addr], truncated at {!max_path} bytes.
    Raises [Nv_vm.Memory.Fault] on an unmapped pointer. *)

val read_bytes : Nv_vm.Memory.t -> addr:Nv_vm.Word.t -> len:int -> string

val write_bytes : Nv_vm.Memory.t -> addr:Nv_vm.Word.t -> string -> unit
