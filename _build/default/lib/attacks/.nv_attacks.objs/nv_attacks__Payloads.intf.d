lib/attacks/payloads.mli: Nv_core Nv_vm
