(** In-memory virtual filesystem with Unix-style permission bits.

    Paths are absolute, [/]-separated. Each file and directory carries
    an owner UID, a group GID and a mode ([0o644]-style). Permission
    checks follow the usual owner/group/other rules, with effective UID
    0 bypassing them. *)

type t

(** Paths are normalized before resolution: ["."] components are
    dropped and [".."] pops one level (stopping at the root), so
    ["/var/www/../../secret/x"] resolves to ["/secret/x"]. *)

type error = Enoent | Eacces | Eisdir | Enotdir | Eexist

val error_to_string : error -> string

type attrs = { mode : int; owner : Cred.uid; group : Cred.gid }

(* Setup interface: no permission checks; used to populate the image of
   the world before the simulation starts. *)

val create : unit -> t
(** Filesystem containing only the root directory (mode [0o755],
    owned by root). *)

val mkdir_p : t -> ?attrs:attrs -> string -> unit
(** Create a directory chain. Existing components are left untouched.
    Raises [Invalid_argument] if a file is in the way. *)

val install : t -> ?attrs:attrs -> path:string -> string -> unit
(** Create or replace a file with the given content (default attrs:
    [0o644], root/root). Parent directories are created as needed. *)

val remove : t -> string -> (unit, error) result
(** Unlink a file (setup/maintenance interface, no permission checks).
    [Enoent] if missing, [Eisdir] for a directory. *)

(* Runtime interface: permission-checked. *)

type access = Read_access | Write_access

val open_file :
  t -> cred:Cred.t -> path:string -> access:access -> (unit, error) result
(** Check that [cred] may open [path] for [access]. *)

val read_file : t -> cred:Cred.t -> path:string -> (string, error) result

val append_file : t -> cred:Cred.t -> path:string -> string -> (unit, error) result

val truncate_file : t -> cred:Cred.t -> path:string -> (unit, error) result

(* Unchecked accessors used by the kernel once an open has succeeded. *)

val contents : t -> path:string -> (string, error) result
val set_contents : t -> path:string -> string -> (unit, error) result
val append_contents : t -> path:string -> string -> (unit, error) result

val size : t -> path:string -> (int, error) result
(** File length in bytes without materializing the content; [Eisdir]
    on a directory. *)

val read_range : t -> path:string -> pos:int -> len:int -> (string, error) result
(** Bytes [\[pos, pos+len)] of a file, clamped to the file bounds (so
    reads at or past EOF yield [""]). One path resolution per call —
    the kernel's chunked read path uses this so scanning a fleet-scale
    passwd file costs one lookup and one small copy per chunk. *)

val exists : t -> string -> bool
val is_dir : t -> string -> bool
val stat : t -> string -> (attrs, error) result
val list_dir : t -> string -> (string list, error) result
(** Sorted entry names. *)

val dump_files : t -> (string * string * attrs) list
(** Every regular file as [(absolute path, content, attrs)], sorted by
    path (a deterministic walk). Used by kernel checkpointing. *)
