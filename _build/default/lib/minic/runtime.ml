let source =
  {|
// ---- mini-C runtime library ----

int strlen(char *s) {
  int n = 0;
  while (s[n] != '\0') {
    n = n + 1;
  }
  return n;
}

// Unbounded copy, exactly like libc strcpy. The case-study server's
// vulnerability flows through here.
int strcpy(char *dst, char *src) {
  int i = 0;
  while (src[i] != '\0') {
    dst[i] = src[i];
    i = i + 1;
  }
  dst[i] = '\0';
  return i;
}

int strncpy(char *dst, char *src, int n) {
  int i = 0;
  while (i < n - 1 && src[i] != '\0') {
    dst[i] = src[i];
    i = i + 1;
  }
  dst[i] = '\0';
  return i;
}

int strcmp(char *a, char *b) {
  int i = 0;
  while (a[i] != '\0' && a[i] == b[i]) {
    i = i + 1;
  }
  if (a[i] < b[i]) { return -1; }
  if (a[i] > b[i]) { return 1; }
  return 0;
}

int strncmp(char *a, char *b, int n) {
  int i = 0;
  while (i < n) {
    if (a[i] != b[i]) {
      if (a[i] < b[i]) { return -1; }
      return 1;
    }
    if (a[i] == '\0') { return 0; }
    i = i + 1;
  }
  return 0;
}

int memcpy(char *dst, char *src, int n) {
  int i = 0;
  while (i < n) {
    dst[i] = src[i];
    i = i + 1;
  }
  return n;
}

int memset(char *dst, int c, int n) {
  int i = 0;
  while (i < n) {
    dst[i] = (char)c;
    i = i + 1;
  }
  return n;
}

int atoi(char *s) {
  int v = 0;
  int i = 0;
  int neg = 0;
  if (s[0] == '-') {
    neg = 1;
    i = 1;
  }
  while (s[i] >= '0' && s[i] <= '9') {
    v = v * 10 + (s[i] - '0');
    i = i + 1;
  }
  if (neg) { return -v; }
  return v;
}

// Render v in decimal into buf; returns the length.
int itoa(int v, char *buf) {
  char tmp[16];
  int i = 0;
  int n = 0;
  if (v == 0) {
    buf[0] = '0';
    buf[1] = '\0';
    return 1;
  }
  if (v < 0) {
    buf[n] = '-';
    n = n + 1;
    v = -v;
  }
  while (v > 0) {
    tmp[i] = (char)('0' + v % 10);
    v = v / 10;
    i = i + 1;
  }
  while (i > 0) {
    i = i - 1;
    buf[n] = tmp[i];
    n = n + 1;
  }
  buf[n] = '\0';
  return n;
}

int write_str(int fd, char *s) {
  return sys_write(fd, s, strlen(s));
}

int write_int(int fd, int v) {
  char buf[16];
  itoa(v, buf);
  return write_str(fd, buf);
}

int starts_with(char *s, char *prefix) {
  int i = 0;
  while (prefix[i] != '\0') {
    if (s[i] != prefix[i]) { return 0; }
    i = i + 1;
  }
  return 1;
}

// Index of c in s at or after from, or -1.
int find_char(char *s, int from, char c) {
  int i = from;
  while (s[i] != '\0') {
    if (s[i] == c) { return i; }
    i = i + 1;
  }
  return -1;
}

char __pw_buf[2048];
char __pw_field[64];

// getpwnam(name)->pw_uid, reading /etc/passwd through the kernel.
// When /etc/passwd is registered unshared, each variant parses its
// own diversified copy, so the value is already in the variant's
// representation; the cast marks that representation boundary.
uid_t getpwnam_uid(char *name) {
  int fd = sys_open("/etc/passwd", 0);
  if (fd < 0) { return (uid_t)(-1); }
  // One stdio-style buffered read (the file fits); drain any excess
  // into a scratch buffer so every variant sees EOF.
  int total = sys_read(fd, __pw_buf, 2047);
  if (total < 0) { total = 0; }
  char extra[8];
  int more = sys_read(fd, extra, 7);
  while (more > 0) { more = sys_read(fd, extra, 7); }
  sys_close(fd);
  __pw_buf[total] = '\0';
  int pos = 0;
  while (pos < total) {
    // Each line: name:x:uid:gid:gecos:home:shell
    int colon = find_char(__pw_buf, pos, ':');
    if (colon < 0) { return (uid_t)(-1); }
    int len = colon - pos;
    int matches = 0;
    if (strncmp(name, &__pw_buf[pos], len) == 0 && name[len] == '\0') {
      matches = 1;
    }
    if (matches) {
      int f2 = find_char(__pw_buf, colon + 1, ':');
      if (f2 < 0) { return (uid_t)(-1); }
      int f3 = find_char(__pw_buf, f2 + 1, ':');
      if (f3 < 0) { return (uid_t)(-1); }
      int j = 0;
      int k = f2 + 1;
      while (k < f3 && j < 63) {
        __pw_field[j] = __pw_buf[k];
        j = j + 1;
        k = k + 1;
      }
      __pw_field[j] = '\0';
      return (uid_t)atoi(__pw_field);
    }
    int eol = find_char(__pw_buf, pos, '\n');
    if (eol < 0) { return (uid_t)(-1); }
    pos = eol + 1;
  }
  return (uid_t)(-1);
}

// ---- end runtime ----
|}

let with_runtime program = source ^ program

let function_names =
  [
    "strlen"; "strcpy"; "strncpy"; "strcmp"; "strncmp"; "memcpy"; "memset"; "atoi";
    "itoa"; "write_str"; "write_int"; "starts_with"; "find_char"; "getpwnam_uid";
  ]
