lib/vm/memory.ml: Buffer Bytes Char String Word
