lib/core/alarm.ml: Array Format Nv_os Nv_vm String
