lib/core/nsystem.ml: Array List Monitor Nv_os Printf Reexpression Variation
