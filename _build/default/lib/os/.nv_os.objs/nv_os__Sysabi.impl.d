lib/os/sysabi.ml: Array Bytes Nv_vm String
