lib/attacks/payloads.ml: Buffer Char List Nv_core Nv_httpd Nv_os Nv_vm Printf String
