lib/os/passwd.mli: Cred
