(** Open-loop fleet benchmark: measured per-request demands from a real
    N-variant server, replayed through {!Nv_sim.Fleet} at fleet scale.

    Where {!Webbench} models a fixed set of closed-loop clients against
    a single replica, this driver feeds an {!Nv_sim.Arrivals} process
    into a load-balanced fleet of replicas and authenticates every
    request against a large synthetic passwd population through the
    indexed {!Nv_os.Passwd} lookups — so the per-request UID work that
    the paper's diversity scheme multiplies stays O(log n) even at a
    million users. Fully deterministic for a fixed seed, independently
    of [NV_PARALLEL] (the measured demand samples are themselves
    bit-deterministic across sequential and parallel monitors). *)

type spec = {
  replicas : int;
  arrival : Nv_sim.Arrivals.model;
  duration_s : float;
  users : int;  (** synthetic passwd entries behind the LB *)
  attacks_per_10k : int;  (** per-mille-ish attack mix driving alarms *)
}

type result = {
  fleet : Nv_sim.Fleet.report;
  population : int;  (** total passwd entries (samples + synthetic) *)
  lookups : int;  (** indexed UID lookups performed (one per arrival) *)
  comparisons : int;  (** total key comparisons those lookups spent *)
  comparisons_per_lookup : float;
  mean_service_s : float;  (** mean per-request core demand *)
}

val population : ?seed:int -> users:int -> unit -> Nv_os.Passwd.entry list
(** {!Nv_os.Passwd.sample} followed by [users] generated entries — the
    same layout {!Nv_core.Nsystem.standard_vfs} installs. *)

val passwd_world :
  entries:Nv_os.Passwd.entry list ->
  variation:Nv_core.Variation.t ->
  Nv_os.Vfs.t * int array
(** Install the canonical [/etc/passwd] plus the per-variant unshared
    reexpressed copies [/etc/passwd-0..], using the {e deployed
    variation's} per-variant UID reexpression (not a hardcoded
    default family), into a fresh VFS. Returns the VFS and the
    byte size of each variant file — at a million users these are the
    ~40 MB unshared files the fleet's replicas would carry. *)

val mean_service_s :
  ?cost:Cost_model.t -> variants:int -> Measure.sample array -> float
(** Mean core demand per request under the cost model — what a rate
    choice should be calibrated against. *)

val run :
  ?seed:int ->
  ?cost:Cost_model.t ->
  ?fleet:Nv_sim.Fleet.config ->
  ?metrics:Nv_util.Metrics.t ->
  ?trace:Nv_util.Trace.t ->
  ?entries:Nv_os.Passwd.entry list ->
  variants:int ->
  samples:Measure.sample array ->
  spec ->
  result
(** Replay [samples] (cycled, as in {!Webbench}) through the fleet
    described by [spec]. [fleet] supplies the non-[spec] knobs (pool
    sizes, health-check timings — defaults {!Nv_sim.Fleet.default});
    [spec.replicas], [spec.arrival], [spec.duration_s] and [seed]
    override it. Each arrival performs one indexed [find_uid] against
    the passwd population ([entries] when given — lets a caller
    generate a million-entry population once and reuse it across
    arrival models — else {!population} of [spec.users]); the
    comparisons it spends are charged to that request's service time.
    [trace] is handed to {!Nv_sim.Fleet.run} for flight-recorder rings.
    Raises [Invalid_argument] on empty [samples]. *)
