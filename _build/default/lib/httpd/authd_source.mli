(** The second case-study guest: an authentication daemon in the shape
    of Chen et al.'s sshd example (the paper's motivating reference for
    non-control-data attacks).

    Protocol (one line per connection): ["LOGIN <user>"]. The daemon
    resolves the user's UID from [/etc/passwd] (through unshared files
    under the UID variation), checks it against a {e uid_t array} of
    administrator UIDs, and answers ["ADMIN"], ["OK"], ["NOUSER"] or
    ["BAD"].

    The planted vulnerability: the username is [strcpy]ed into a fixed
    32-byte buffer that sits directly before the [admins] array — an
    overflowing username rewrites administrator UIDs. Because the
    array's initializer is reexpressed per variant (the [Init_array]
    path of the transformer), the same attack bytes decode differently
    in each variant and the membership comparison's [cc_eq] detects the
    corruption. *)

val source : string
(** Full program text (runtime library included). *)

val login : string -> string
(** [login user] renders the request line. *)

val overflow_login : target_uid:Nv_vm.Word.t -> string
(** A LOGIN request whose username overflows [namebuf] and rewrites
    [admins\[0\]] with [target_uid] (which must have NUL-free low bytes
    followed by zeros, e.g. 1000). Raises [Invalid_argument] if the
    uid cannot travel through [strcpy]. *)

val name_buffer_size : int
(** 32. *)
