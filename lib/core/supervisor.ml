module Metrics = Nv_util.Metrics
module Trace = Nv_util.Trace

type config = {
  checkpoint_interval : int;
  max_recoveries : int;
  recovery_window : int;
}

let default_config =
  { checkpoint_interval = 1; max_recoveries = 8; recovery_window = 100_000 }

type recovery_record = {
  rr_rendezvous : int;
  rr_alarm : Alarm.reason;
  rr_dropped : int;
  rr_forensics : Metrics.Json.value option;
}

type t = {
  monitor : Monitor.t;
  config : config;
  mutable checkpoint : Monitor.snapshot;
  mutable checkpoint_rv : int;  (* rendezvous count at the checkpoint *)
  mutable recovery_stamps : int list;  (* rendezvous counts, newest first *)
  mutable last_alarm : Alarm.reason option;
  mutable exhausted : bool;
  mutable recovery_records : recovery_record list;  (* newest first *)
  trace_ring : Trace.ring;
  recoveries_c : Metrics.counter;
  dropped_c : Metrics.counter;
  checkpoints_c : Metrics.counter;
  failstop_c : Metrics.counter;
}

let create ?(config = default_config) monitor =
  if config.checkpoint_interval < 1 then
    invalid_arg "Supervisor.create: checkpoint_interval must be >= 1";
  if config.max_recoveries < 0 then
    invalid_arg "Supervisor.create: max_recoveries must be >= 0";
  if config.recovery_window < 1 then
    invalid_arg "Supervisor.create: recovery_window must be >= 1";
  let scope = Metrics.scope (Monitor.metrics monitor) "supervisor" in
  let t =
    {
      monitor;
      config;
      (* The initial checkpoint is the pre-run entry state, so recovery
         is defined from the very first quantum. *)
      checkpoint = Monitor.snapshot monitor;
      checkpoint_rv = Monitor.rendezvous_count monitor;
      recovery_stamps = [];
      last_alarm = None;
      exhausted = false;
      recovery_records = [];
      (* The supervisor lane sits past the monitor's variant /
         coordinator / kernel tids; it only records on the
         coordinating domain, between [Monitor.run] calls. *)
      trace_ring =
        Trace.ring
          (Monitor.trace_session monitor)
          ~name:"supervisor" ~pid:0
          ~tid:(Monitor.variant_count monitor + 2);
      recoveries_c = Metrics.counter scope "recoveries";
      dropped_c = Metrics.counter scope "dropped_connections";
      checkpoints_c = Metrics.counter scope "checkpoints";
      failstop_c = Metrics.counter scope "failstop";
    }
  in
  Metrics.incr t.checkpoints_c;
  (if Trace.enabled_ring t.trace_ring then
     Trace.record t.trace_ring
       ~ts:(Monitor.instructions_retired monitor)
       (Trace.Checkpoint { rendezvous = t.checkpoint_rv }));
  t

let monitor t = t.monitor

let config t = t.config

let recoveries t = Metrics.counter_value t.recoveries_c

let dropped_connections t = Metrics.counter_value t.dropped_c

let checkpoints t = Metrics.counter_value t.checkpoints_c

let last_alarm t = t.last_alarm

let exhausted t = t.exhausted

let recovery_log t = List.rev t.recovery_records

let record_event t kind =
  if Trace.enabled_ring t.trace_ring then
    Trace.record t.trace_ring ~ts:(Monitor.instructions_retired t.monitor) kind

(* Checkpoints are only taken at [Blocked_on_accept]: every variant is
   parked at an equivalent rendezvous boundary with its pc rewound to
   the accept instruction, so a restore resumes the accept loop with no
   half-performed syscall in flight. *)
let maybe_checkpoint t =
  let now = Monitor.rendezvous_count t.monitor in
  if now - t.checkpoint_rv >= t.config.checkpoint_interval then begin
    t.checkpoint <- Monitor.snapshot t.monitor;
    t.checkpoint_rv <- now;
    Metrics.incr t.checkpoints_c;
    record_event t (Trace.Checkpoint { rendezvous = now })
  end

(* The restart budget: at most [max_recoveries] rollbacks within any
   [recovery_window] rendezvous. A deterministic crash loop (an alarm
   that recovery cannot clear, e.g. one raised before any connection
   is accepted) burns through the budget and degrades to fail-stop
   rather than looping forever. *)
let budget_available t ~now =
  t.recovery_stamps <-
    List.filter (fun s -> now - s < t.config.recovery_window) t.recovery_stamps;
  List.length t.recovery_stamps < t.config.max_recoveries

let run ?fuel t =
  let rec go () =
    match Monitor.run ?fuel t.monitor with
    | Monitor.Blocked_on_accept ->
      maybe_checkpoint t;
      Monitor.Blocked_on_accept
    | Monitor.Alarm reason ->
      t.last_alarm <- Some reason;
      let now = Monitor.rendezvous_count t.monitor in
      if t.exhausted || not (budget_available t ~now) then begin
        t.exhausted <- true;
        Metrics.incr t.failstop_c;
        record_event t (Trace.Failstop { rendezvous = now });
        Logs.warn ~src:Nv_util.Logsrc.supervisor (fun m ->
            m "supervisor: recovery budget exhausted, failing stop on %a" Alarm.pp
              reason);
        Monitor.Alarm reason
      end
      else begin
        (* The forensics bundle was captured by the monitor at the
           alarm, before the rollback below erases the divergent
           state; attach it to the recovery record. *)
        let forensics = Monitor.forensics t.monitor in
        let dropped = Monitor.restore t.monitor t.checkpoint in
        t.recovery_stamps <- now :: t.recovery_stamps;
        t.recovery_records <-
          {
            rr_rendezvous = now;
            rr_alarm = reason;
            rr_dropped = dropped;
            rr_forensics = forensics;
          }
          :: t.recovery_records;
        Metrics.incr t.recoveries_c;
        Metrics.add t.dropped_c dropped;
        record_event t (Trace.Rollback { rendezvous = t.checkpoint_rv; dropped });
        Logs.info ~src:Nv_util.Logsrc.supervisor (fun m ->
            m "supervisor: rolled back to checkpoint (%d connection%s dropped) on %a"
              dropped
              (if dropped = 1 then "" else "s")
              Alarm.pp reason);
        go ()
      end
    | (Monitor.Exited _ | Monitor.Out_of_fuel) as outcome -> outcome
  in
  go ()
