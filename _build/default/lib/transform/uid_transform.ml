open Nv_minic
module Reexpression = Nv_core.Reexpression
module Variation = Nv_core.Variation

type mode = Cc_calls | User_space

type report = {
  constants : int;
  explications : int;
  uid_value_calls : int;
  cc_calls : int;
  cond_chks : int;
  reversed_comparisons : int;
  log_scrubs : int;
}

let empty_report =
  {
    constants = 0;
    explications = 0;
    uid_value_calls = 0;
    cc_calls = 0;
    cond_chks = 0;
    reversed_comparisons = 0;
    log_scrubs = 0;
  }

let total_changes r =
  r.constants + r.uid_value_calls + r.cc_calls + r.cond_chks + r.reversed_comparisons
  + r.log_scrubs

let pp_report ppf r =
  Format.fprintf ppf
    "constants=%d (explicated %d) uid_value=%d cc=%d cond_chk=%d reversed=%d log-scrubs=%d \
     total=%d"
    r.constants r.explications r.uid_value_calls r.cc_calls r.cond_chks
    r.reversed_comparisons r.log_scrubs (total_changes r)

(* Mutable counters threaded through a pass. *)
type counters = {
  mutable n_constants : int;
  mutable n_explications : int;
  mutable n_uid_value : int;
  mutable n_cc : int;
  mutable n_cond_chk : int;
  mutable n_scrub : int;
  mutable n_reversible : int;  (* user-space comparisons kept in place *)
}

let fresh_counters () =
  {
    n_constants = 0;
    n_explications = 0;
    n_uid_value = 0;
    n_cc = 0;
    n_cond_chk = 0;
    n_scrub = 0;
    n_reversible = 0;
  }

let cc_name = function
  | Ast.Eq -> "cc_eq"
  | Ast.Ne -> "cc_neq"
  | Ast.Lt -> "cc_lt"
  | Ast.Le -> "cc_leq"
  | Ast.Gt -> "cc_gt"
  | Ast.Ge -> "cc_geq"
  | _ -> invalid_arg "cc_name: not a comparison"

let is_uid_ty = function Ast.Tuid -> true | _ -> false

(* Functions whose signature mentions uid_t (user-defined ones matter
   for the uid_value exposure rule). *)
let signature_mentions_uid (f : Tast.tfunc) =
  is_uid_ty f.Tast.ret || List.exists (fun (ty, _) -> is_uid_ty ty) f.Tast.params

(* Log sinks: functions that turn a value into observable output bytes
   (directly, or by rendering it into a buffer that is later written).
   A [(int)uid] cast passed to one of these is a UID leaking into
   shared output — the Section 4 log problem — and is scrubbed. *)
let is_log_sink name =
  match name with
  | "write_int" | "write_str" | "sys_write" | "itoa" -> true
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Taint: which variables carry UID-derived data                       *)
(* ------------------------------------------------------------------ *)

module StrSet = Set.Make (String)

let rec expr_mentions_uid ~tainted (e : Tast.texpr) =
  let recurse = expr_mentions_uid ~tainted in
  if is_uid_ty e.Tast.ty then true
  else begin
    match e.Tast.e with
    | Tast.Tvar name -> StrSet.mem name tainted
    | Tast.Tint_lit _ | Tast.Tchar_lit _ | Tast.Tstr_lit _ -> false
    | Tast.Tunop (_, a) | Tast.Tcast (_, a) | Tast.Tderef a -> recurse a
    | Tast.Tbinop (_, a, b) | Tast.Tindex (a, b) -> recurse a || recurse b
    | Tast.Tassign (lv, a) -> lvalue_mentions_uid ~tainted lv || recurse a
    | Tast.Tcall (name, args) ->
      (match name with
      | "cc_eq" | "cc_neq" | "cc_lt" | "cc_leq" | "cc_gt" | "cc_geq" | "uid_value" -> true
      | _ -> List.exists recurse args)
    | Tast.Taddr_of lv -> lvalue_mentions_uid ~tainted lv
  end

and lvalue_mentions_uid ~tainted (lv : Tast.tlvalue) =
  if is_uid_ty lv.Tast.lv_ty then true
  else begin
    match lv.Tast.lv with
    | Tast.TLvar name -> StrSet.mem name tainted
    | Tast.TLindex (a, b) ->
      expr_mentions_uid ~tainted a || expr_mentions_uid ~tainted b
    | Tast.TLderef a -> expr_mentions_uid ~tainted a
  end

(* Fixpoint over the function body: a variable assigned from a
   UID-mentioning expression becomes tainted. *)
let taint_of_func (f : Tast.tfunc) =
  let tainted = ref StrSet.empty in
  let changed = ref true in
  let note_assign name rhs =
    if expr_mentions_uid ~tainted:!tainted rhs && not (StrSet.mem name !tainted) then begin
      tainted := StrSet.add name !tainted;
      changed := true
    end
  in
  let rec scan_expr (e : Tast.texpr) =
    (match e.Tast.e with
    | Tast.Tassign ({ lv = Tast.TLvar name; _ }, rhs) -> note_assign name rhs
    | _ -> ());
    match e.Tast.e with
    | Tast.Tint_lit _ | Tast.Tchar_lit _ | Tast.Tstr_lit _ | Tast.Tvar _ -> ()
    | Tast.Tunop (_, a) | Tast.Tcast (_, a) | Tast.Tderef a -> scan_expr a
    | Tast.Tbinop (_, a, b) | Tast.Tindex (a, b) ->
      scan_expr a;
      scan_expr b
    | Tast.Tassign (lv, a) ->
      scan_lvalue lv;
      scan_expr a
    | Tast.Tcall (_, args) -> List.iter scan_expr args
    | Tast.Taddr_of lv -> scan_lvalue lv
  and scan_lvalue (lv : Tast.tlvalue) =
    match lv.Tast.lv with
    | Tast.TLvar _ -> ()
    | Tast.TLindex (a, b) ->
      scan_expr a;
      scan_expr b
    | Tast.TLderef a -> scan_expr a
  in
  let rec scan_stmt = function
    | Tast.TSexpr e -> scan_expr e
    | Tast.TSdecl (_, name, init) ->
      Option.iter
        (fun rhs ->
          scan_expr rhs;
          note_assign name rhs)
        init
    | Tast.TSif (c, a, b) ->
      scan_expr c;
      List.iter scan_stmt a;
      List.iter scan_stmt b
    | Tast.TSwhile (c, body) ->
      scan_expr c;
      List.iter scan_stmt body
    | Tast.TSreturn e -> Option.iter scan_expr e
    | Tast.TSbreak | Tast.TScontinue -> ()
    | Tast.TSblock body -> List.iter scan_stmt body
  in
  while !changed do
    changed := false;
    List.iter scan_stmt f.Tast.body
  done;
  !tainted

(* ------------------------------------------------------------------ *)
(* Instrumentation                                                     *)
(* ------------------------------------------------------------------ *)

let mk = Tast.mk

let int_expr kind = mk kind Ast.Tint

(* A condition expression coerced to something cond_chk accepts. *)
let as_int_condition (cond : Tast.texpr) =
  match cond.Tast.ty with
  | Ast.Tint -> cond
  | Ast.Tchar -> { cond with Tast.ty = Ast.Tint }
  | Ast.Tptr _ ->
    int_expr (Tast.Tbinop (Ast.Ne, cond, mk (Tast.Tint_lit 0) cond.Tast.ty))
  | Ast.Tuid | Ast.Tvoid | Ast.Tarray _ ->
    (* uid conditions were explicated before this point *)
    int_expr (Tast.Tcast (Ast.Tint, cond))

type ctx = {
  counters : counters;
  mode : mode;
  scrub_logs : bool;
  uid_sig_funcs : StrSet.t;  (* user functions whose signature mentions uid_t *)
  tainted : StrSet.t;
}

let is_already_exposed (e : Tast.texpr) =
  match e.Tast.e with Tast.Tcall ("uid_value", _) -> true | _ -> false

(* Single bottom-up rewriting of an expression. *)
let rec rw_expr ctx (e : Tast.texpr) : Tast.texpr =
  let e =
    match e.Tast.e with
    | Tast.Tint_lit _ | Tast.Tchar_lit _ | Tast.Tstr_lit _ | Tast.Tvar _ -> e
    | Tast.Tunop (Ast.Lnot, a) when is_uid_ty a.Tast.ty ->
      (* !uid  ==>  uid == 0   (explication; Section 3.3) *)
      let a = rw_expr ctx a in
      ctx.counters.n_explications <- ctx.counters.n_explications + 1;
      expose_comparison ctx Ast.Eq a (Tast.uid_constant 0)
    | Tast.Tunop (op, a) -> { e with Tast.e = Tast.Tunop (op, rw_expr ctx a) }
    | Tast.Tbinop (op, a, b) when Ast.is_comparison op && is_uid_ty a.Tast.ty ->
      let a = rw_expr ctx a in
      let b = rw_expr ctx b in
      expose_comparison ctx op a b
    | Tast.Tbinop ((Ast.Land | Ast.Lor) as op, a, b) ->
      let a = explicate_condition ctx (rw_expr ctx a) in
      let b = explicate_condition ctx (rw_expr ctx b) in
      { e with Tast.e = Tast.Tbinop (op, a, b) }
    | Tast.Tbinop (op, a, b) ->
      { e with Tast.e = Tast.Tbinop (op, rw_expr ctx a, rw_expr ctx b) }
    | Tast.Tassign (lv, rhs) ->
      { e with Tast.e = Tast.Tassign (rw_lvalue ctx lv, rw_expr ctx rhs) }
    | Tast.Tcall (name, args) ->
      let args = List.map (rw_expr ctx) args in
      let args =
        if StrSet.mem name ctx.uid_sig_funcs && ctx.mode = Cc_calls then
          (* Expose single UID values passed to user functions:
             getpwname(uid) ==> getpwname(uid_value(uid)). *)
          List.map
            (fun (arg : Tast.texpr) ->
              if is_uid_ty arg.Tast.ty && not (is_already_exposed arg) then begin
                ctx.counters.n_uid_value <- ctx.counters.n_uid_value + 1;
                mk (Tast.Tcall ("uid_value", [ arg ])) Ast.Tuid
              end
              else arg)
            args
        else args
      in
      let args =
        if ctx.scrub_logs && is_log_sink name then List.map (scrub_log_arg ctx) args
        else args
      in
      { e with Tast.e = Tast.Tcall (name, args) }
    | Tast.Tindex (a, b) -> { e with Tast.e = Tast.Tindex (rw_expr ctx a, rw_expr ctx b) }
    | Tast.Tderef a -> { e with Tast.e = Tast.Tderef (rw_expr ctx a) }
    | Tast.Taddr_of lv -> { e with Tast.e = Tast.Taddr_of (rw_lvalue ctx lv) }
    | Tast.Tcast (ty, a) -> { e with Tast.e = Tast.Tcast (ty, rw_expr ctx a) }
  in
  e

and rw_lvalue ctx (lv : Tast.tlvalue) =
  match lv.Tast.lv with
  | Tast.TLvar _ -> lv
  | Tast.TLindex (a, b) -> { lv with Tast.lv = Tast.TLindex (rw_expr ctx a, rw_expr ctx b) }
  | Tast.TLderef a -> { lv with Tast.lv = Tast.TLderef (rw_expr ctx a) }

(* A UID comparison site: either a cc_* detection call (Cc_calls mode)
   or left as a user-space comparison (User_space mode; the reexpress
   step may reverse it). Both operands are uid-typed after coercion. *)
and expose_comparison ctx op a b =
  match ctx.mode with
  | Cc_calls ->
    ctx.counters.n_cc <- ctx.counters.n_cc + 1;
    int_expr (Tast.Tcall (cc_name op, [ a; b ]))
  | User_space ->
    ctx.counters.n_reversible <- ctx.counters.n_reversible + 1;
    int_expr (Tast.Tbinop (op, a, b))

(* A bare uid value in a condition position: make the implied
   comparison with 0 explicit. *)
and explicate_condition ctx (cond : Tast.texpr) =
  if is_uid_ty cond.Tast.ty then begin
    ctx.counters.n_explications <- ctx.counters.n_explications + 1;
    expose_comparison ctx Ast.Ne cond (Tast.uid_constant 0)
  end
  else cond

(* Remove a UID payload from log output (the Section 4 workaround for
   Apache's error messages): a (int)uid cast argument to an output
   function is replaced by the constant 0. *)
and scrub_log_arg ctx (arg : Tast.texpr) =
  match arg.Tast.e with
  | Tast.Tcast (Ast.Tint, inner) when is_uid_ty inner.Tast.ty ->
    ctx.counters.n_scrub <- ctx.counters.n_scrub + 1;
    int_expr (Tast.Tint_lit 0)
  | _ -> arg

(* Should a (rewritten) condition be wrapped in cond_chk? Top-level
   detection calls are already checked by the monitor. *)
let needs_cond_chk ctx (cond : Tast.texpr) =
  let already_checked =
    match cond.Tast.e with
    | Tast.Tcall (("cc_eq" | "cc_neq" | "cc_lt" | "cc_leq" | "cc_gt" | "cc_geq"
                  | "cond_chk"), _) ->
      true
    | _ -> false
  in
  (not already_checked) && expr_mentions_uid ~tainted:ctx.tainted cond

let wrap_cond_chk ctx cond =
  (* The Section 5 user-space alternative relies on the existing
     syscall-boundary monitoring alone: no detection calls at all. *)
  if ctx.mode = Cc_calls && needs_cond_chk ctx cond then begin
    ctx.counters.n_cond_chk <- ctx.counters.n_cond_chk + 1;
    int_expr (Tast.Tcall ("cond_chk", [ as_int_condition cond ]))
  end
  else cond

let rec rw_stmt ctx ~ret_uid (stmt : Tast.tstmt) : Tast.tstmt =
  match stmt with
  | Tast.TSexpr e -> Tast.TSexpr (rw_expr ctx e)
  | Tast.TSdecl (ty, name, init) -> Tast.TSdecl (ty, name, Option.map (rw_expr ctx) init)
  | Tast.TSif (cond, a, b) ->
    let cond = wrap_cond_chk ctx (explicate_condition ctx (rw_expr ctx cond)) in
    Tast.TSif (cond, List.map (rw_stmt ctx ~ret_uid) a, List.map (rw_stmt ctx ~ret_uid) b)
  | Tast.TSwhile (cond, body) ->
    let cond = wrap_cond_chk ctx (explicate_condition ctx (rw_expr ctx cond)) in
    Tast.TSwhile (cond, List.map (rw_stmt ctx ~ret_uid) body)
  | Tast.TSreturn (Some e) ->
    let e = rw_expr ctx e in
    let e =
      (* Expose UID return values of user functions to the monitor. *)
      if ret_uid && ctx.mode = Cc_calls && is_uid_ty e.Tast.ty && not (is_already_exposed e)
      then begin
        ctx.counters.n_uid_value <- ctx.counters.n_uid_value + 1;
        mk (Tast.Tcall ("uid_value", [ e ])) Ast.Tuid
      end
      else e
    in
    Tast.TSreturn (Some e)
  | Tast.TSreturn None -> Tast.TSreturn None
  | Tast.TSbreak -> Tast.TSbreak
  | Tast.TScontinue -> Tast.TScontinue
  | Tast.TSblock body -> Tast.TSblock (List.map (rw_stmt ctx ~ret_uid) body)

(* Count the constant sites the reexpress step will rewrite. *)
let count_uid_constants (prog : Tast.tprogram) =
  let count = ref 0 in
  let rec scan_expr (e : Tast.texpr) =
    (match Tast.uid_constant_value e with Some _ -> incr count | None -> ());
    match e.Tast.e with
    | Tast.Tint_lit _ | Tast.Tchar_lit _ | Tast.Tstr_lit _ | Tast.Tvar _ -> ()
    | Tast.Tunop (_, a) | Tast.Tderef a -> scan_expr a
    | Tast.Tcast (_, a) -> (
      (* Don't descend into the literal of a uid constant itself. *)
      match Tast.uid_constant_value e with Some _ -> () | None -> scan_expr a)
    | Tast.Tbinop (_, a, b) | Tast.Tindex (a, b) ->
      scan_expr a;
      scan_expr b
    | Tast.Tassign (lv, a) ->
      scan_lvalue lv;
      scan_expr a
    | Tast.Tcall (_, args) -> List.iter scan_expr args
    | Tast.Taddr_of lv -> scan_lvalue lv
  and scan_lvalue (lv : Tast.tlvalue) =
    match lv.Tast.lv with
    | Tast.TLvar _ -> ()
    | Tast.TLindex (a, b) ->
      scan_expr a;
      scan_expr b
    | Tast.TLderef a -> scan_expr a
  in
  let rec scan_stmt = function
    | Tast.TSexpr e -> scan_expr e
    | Tast.TSdecl (_, _, init) -> Option.iter scan_expr init
    | Tast.TSif (c, a, b) ->
      scan_expr c;
      List.iter scan_stmt a;
      List.iter scan_stmt b
    | Tast.TSwhile (c, body) ->
      scan_expr c;
      List.iter scan_stmt body
    | Tast.TSreturn e -> Option.iter scan_expr e
    | Tast.TSbreak | Tast.TScontinue -> ()
    | Tast.TSblock body -> List.iter scan_stmt body
  in
  List.iter (fun f -> List.iter scan_stmt f.Tast.body) prog.Tast.tfuncs;
  (* Global uid_t initializers are also reexpressed constants. *)
  List.iter
    (fun { Ast.gty; ginit; _ } ->
      match (gty, ginit) with
      | Ast.Tuid, Ast.Init_int _ -> incr count
      | Ast.Tarray (Ast.Tuid, _), Ast.Init_array vs -> count := !count + List.length vs
      | _ -> ())
    prog.Tast.tglobals;
  !count

let instrument ?(mode = Cc_calls) ?(scrub_logs = true) (prog : Tast.tprogram) =
  let counters = fresh_counters () in
  let uid_sig_funcs =
    List.fold_left
      (fun acc f -> if signature_mentions_uid f then StrSet.add f.Tast.fname acc else acc)
      StrSet.empty prog.Tast.tfuncs
  in
  let tfuncs =
    List.map
      (fun f ->
        let ctx =
          { counters; mode; scrub_logs; uid_sig_funcs; tainted = taint_of_func f }
        in
        let ret_uid = is_uid_ty f.Tast.ret in
        { f with Tast.body = List.map (rw_stmt ctx ~ret_uid) f.Tast.body })
      prog.Tast.tfuncs
  in
  let instrumented = { prog with Tast.tfuncs } in
  counters.n_constants <- count_uid_constants instrumented;
  ( instrumented,
    {
      constants = counters.n_constants;
      explications = counters.n_explications;
      uid_value_calls = counters.n_uid_value;
      cc_calls = counters.n_cc;
      cond_chks = counters.n_cond_chk;
      (* In user-space mode these are comparison sites left in place;
         transform_source zeroes this when no variant actually reverses. *)
      reversed_comparisons = counters.n_reversible;
      log_scrubs = counters.n_scrub;
    } )

(* ------------------------------------------------------------------ *)
(* Per-variant reexpression                                            *)
(* ------------------------------------------------------------------ *)

(* Does [f] reverse the unsigned order of the low 31 bits? Probing two
   points suffices for the xor-with-constant family used here. *)
let order_reversing (f : Reexpression.t) =
  let a = f.Reexpression.encode 0 and b = f.Reexpression.encode 1 in
  Nv_vm.Word.lt_unsigned b a

let reverse_cmp = function
  | Ast.Lt -> Ast.Gt
  | Ast.Le -> Ast.Ge
  | Ast.Gt -> Ast.Lt
  | Ast.Ge -> Ast.Le
  | other -> other

let reexpress ?(mode = Cc_calls) ~f (prog : Tast.tprogram) =
  let encode = f.Reexpression.encode in
  let reverse = mode = User_space && order_reversing f in
  let rec rw_expr (e : Tast.texpr) : Tast.texpr =
    match Tast.uid_constant_value e with
    | Some v -> Tast.uid_constant (encode (Nv_vm.Word.of_signed v))
    | None -> (
      match e.Tast.e with
      | Tast.Tint_lit _ | Tast.Tchar_lit _ | Tast.Tstr_lit _ | Tast.Tvar _ -> e
      | Tast.Tunop (op, a) -> { e with Tast.e = Tast.Tunop (op, rw_expr a) }
      | Tast.Tbinop (op, a, b) when reverse && Ast.is_comparison op && is_uid_ty a.Tast.ty
        ->
        { e with Tast.e = Tast.Tbinop (reverse_cmp op, rw_expr a, rw_expr b) }
      | Tast.Tbinop (op, a, b) -> { e with Tast.e = Tast.Tbinop (op, rw_expr a, rw_expr b) }
      | Tast.Tassign (lv, a) -> { e with Tast.e = Tast.Tassign (rw_lvalue lv, rw_expr a) }
      | Tast.Tcall (name, args) -> { e with Tast.e = Tast.Tcall (name, List.map rw_expr args) }
      | Tast.Tindex (a, b) -> { e with Tast.e = Tast.Tindex (rw_expr a, rw_expr b) }
      | Tast.Tderef a -> { e with Tast.e = Tast.Tderef (rw_expr a) }
      | Tast.Taddr_of lv -> { e with Tast.e = Tast.Taddr_of (rw_lvalue lv) }
      | Tast.Tcast (ty, a) -> { e with Tast.e = Tast.Tcast (ty, rw_expr a) })
  and rw_lvalue (lv : Tast.tlvalue) =
    match lv.Tast.lv with
    | Tast.TLvar _ -> lv
    | Tast.TLindex (a, b) -> { lv with Tast.lv = Tast.TLindex (rw_expr a, rw_expr b) }
    | Tast.TLderef a -> { lv with Tast.lv = Tast.TLderef (rw_expr a) }
  in
  let rec rw_stmt = function
    | Tast.TSexpr e -> Tast.TSexpr (rw_expr e)
    | Tast.TSdecl (ty, name, init) -> Tast.TSdecl (ty, name, Option.map rw_expr init)
    | Tast.TSif (c, a, b) -> Tast.TSif (rw_expr c, List.map rw_stmt a, List.map rw_stmt b)
    | Tast.TSwhile (c, body) -> Tast.TSwhile (rw_expr c, List.map rw_stmt body)
    | Tast.TSreturn e -> Tast.TSreturn (Option.map rw_expr e)
    | Tast.TSbreak -> Tast.TSbreak
    | Tast.TScontinue -> Tast.TScontinue
    | Tast.TSblock body -> Tast.TSblock (List.map rw_stmt body)
  in
  let tglobals =
    List.map
      (fun g ->
        match (g.Ast.gty, g.Ast.ginit) with
        | Ast.Tuid, Ast.Init_int v ->
          { g with Ast.ginit = Ast.Init_int (encode (Nv_vm.Word.of_signed v)) }
        | Ast.Tarray (Ast.Tuid, _), Ast.Init_array vs ->
          {
            g with
            Ast.ginit = Ast.Init_array (List.map (fun v -> encode (Nv_vm.Word.of_signed v)) vs);
          }
        | _ -> g)
      prog.Tast.tglobals
  in
  {
    Tast.tglobals;
    tfuncs = List.map (fun f -> { f with Tast.body = List.map rw_stmt f.Tast.body }) prog.Tast.tfuncs;
  }

(* ------------------------------------------------------------------ *)
(* End to end                                                          *)
(* ------------------------------------------------------------------ *)

let check_source source =
  match Typecheck.check (Parser.parse source) with
  | Ok t -> Ok t
  | Error (e :: _) -> Error (Format.asprintf "%a" Typecheck.pp_error e)
  | Error [] -> Error "typecheck failed"
  | exception Parser.Error { line; message } ->
    Error (Printf.sprintf "parse error at line %d: %s" line message)
  | exception Lexer.Error { line; message } ->
    Error (Printf.sprintf "lexical error at line %d: %s" line message)

let transform_source ?mode ?scrub_logs ~variation source =
  match check_source source with
  | Error _ as e -> e
  | Ok tprog -> (
    let instrumented, report = instrument ?mode ?scrub_logs tprog in
    let any_reversing = ref false in
    match
      Array.map
        (fun spec ->
          let f = spec.Variation.uid in
          if (match mode with Some User_space -> true | _ -> false) && order_reversing f
          then any_reversing := true;
          Codegen.compile (reexpress ?mode ~f instrumented))
        variation.Variation.variants
    with
    | exception Codegen.Error message -> Error message
    | images ->
      let report =
        if !any_reversing then report else { report with reversed_comparisons = 0 }
      in
      Ok (images, report))

let variant_source ?mode ~f source =
  match check_source source with
  | Error _ as e -> e
  | Ok tprog ->
    let instrumented, _ = instrument ?mode tprog in
    Ok (Pretty.program (Tast.erase (reexpress ?mode ~f instrumented)))
