lib/vm/asm.mli: Image
