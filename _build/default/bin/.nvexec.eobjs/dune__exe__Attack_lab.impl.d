bin/attack_lab.ml: Arg Cmd Cmdliner Format List Nv_attacks Nv_httpd Printf Term
