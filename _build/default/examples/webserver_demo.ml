(* The full case-study deployment: the mini-C web server under the
   2-variant UID variation, with the transformed variant source shown
   the way the paper presents its Apache diffs, plus a short load run.

     dune exec examples/webserver_demo.exe *)

module Deploy = Nv_httpd.Deploy
module Ut = Nv_transform.Uid_transform

let show_source_excerpt () =
  print_endline "== what the transformation does to the server (variant 1 view) ==";
  let snippet =
    {|uid_t worker_uid = 33;
      int main(void) {
        if (!getuid()) {
          if (seteuid(worker_uid) != 0) { return 1; }
          if (geteuid() < worker_uid) { return 2; }
        }
        return 0;
      }|}
  in
  print_endline "--- original ---";
  print_endline snippet;
  (match Ut.variant_source ~f:(Nv_core.Reexpression.uid_for_variant 1) snippet with
  | Ok text ->
    print_endline "--- variant 1 (reexpressed constants, detection calls) ---";
    print_endline text
  | Error e -> print_endline ("transform failed: " ^ e));
  match Deploy.transform_report () with
  | Ok report ->
    Format.printf "full server transformation: %a@." Ut.pp_report report
  | Error e -> print_endline e

let serve_some () =
  print_endline "\n== serve a few requests under configuration 4 ==";
  match Deploy.build Deploy.Two_variant_uid with
  | Error e -> print_endline ("build failed: " ^ e)
  | Ok sys ->
    List.iter
      (fun path ->
        match Nv_core.Nsystem.serve sys (Nv_httpd.Http.get path) with
        | Nv_core.Nsystem.Served raw -> (
          match Nv_httpd.Http.parse_response raw with
          | Ok r ->
            Format.printf "GET %-22s -> %d (%d bytes)@." path r.Nv_httpd.Http.status
              (String.length r.Nv_httpd.Http.body)
          | Error e -> Format.printf "GET %s -> bad response: %s@." path e)
        | Nv_core.Nsystem.Stopped _ -> Format.printf "GET %s -> server stopped@." path)
      [ "/"; "/news.html"; "/large.html"; "/missing.html"; "/../../secret/shadow" ];
    (match
       Nv_os.Vfs.contents (Nv_os.Kernel.vfs (Nv_core.Nsystem.kernel sys))
         ~path:"/var/log/httpd.log"
     with
    | Ok log ->
      print_endline "access log (shared file, written once per request):";
      print_string log
    | Error _ -> ())

let short_benchmark () =
  print_endline "\n== a short Table 3 style measurement ==";
  match Nv_workload.Table3.run ~requests:15 () with
  | Ok rows -> print_string (Nv_workload.Table3.render rows)
  | Error e -> print_endline ("benchmark failed: " ^ e)

let () =
  show_source_excerpt ();
  serve_some ();
  short_benchmark ()
