lib/vm/isa.mli: Bytes Format Word
