(** Data reexpression functions (Section 2 / Table 1 of the paper).

    A reexpression function [R] maps canonical data values to a
    variant's concrete representation; its inverse [R^-1] sits in front
    of the target interpreter (here: the kernel's UID-bearing system
    calls). The N-variant security argument needs two properties:

    - {b inverse}: for all x, [decode (encode x) = x];
    - {b disjointness} (pairwise, between the variants' functions):
      for all x, [decode_0 x <> decode_1 x] — so a single concrete
      value injected identically into all variants can never be valid
      in more than one of them. *)

type t = {
  name : string;
  encode : Nv_vm.Word.t -> Nv_vm.Word.t;  (** R *)
  decode : Nv_vm.Word.t -> Nv_vm.Word.t;  (** R^-1 *)
}

val identity : t
(** Variant 0's function in the paper's UID variation. *)

val xor_key : key:Nv_vm.Word.t -> t
(** [R(u) = u ^ key]; self-inverse. The paper uses [key = 0x7FFFFFFF]
    rather than [0xFFFFFFFF] because the kernel treats negative UIDs
    specially — leaving the high bit unflipped, a weakness the attack
    matrix (experiment X2) reproduces. *)

val paper_uid_key : Nv_vm.Word.t
(** [0x7FFFFFFF]. *)

val uid_for_variant : int -> t
(** The paper's UID variation: variant 0 identity, every other variant
    [xor_key ~key:paper_uid_key]. (The paper only uses two variants;
    for n > 1 we reuse variant 1's function, which preserves the
    pairwise-disjointness argument only for variant pairs (0, i).) *)

val inverse_holds : t -> Nv_vm.Word.t -> bool
(** Check the inverse property at one point. *)

val disjoint_at : t -> t -> Nv_vm.Word.t -> bool
(** Check the disjointness property of two variants' functions at one
    point: [decode_0 x <> decode_1 x]. *)

(** {1 Table 1} *)

type table1_row = {
  variation : string;
  target_type : string;
  r0 : string;
  r1 : string;
  r0_inv : string;
  r1_inv : string;
}

val table1 : table1_row list
(** The four rows of Table 1 (address-space partitioning, extended
    partitioning, instruction-set tagging, and this paper's UID
    variation), for the bench harness to print. *)
