lib/transform/uid_transform.mli: Format Nv_core Nv_minic Nv_vm
