lib/minic/pretty.ml: Ast Buffer List Printf String
