(* fleetsim: open-loop fleet serving simulation.

   Builds one of the Table 3 server configurations, measures its real
   per-request demands, then replays them through the simulated load
   balancer (Nv_sim.Fleet) at fleet scale: open-loop arrivals, keep-alive
   connection pools, Supervisor-fed replica health, and a million-entry
   passwd population behind indexed UID lookups. *)

open Cmdliner

let configs = List.map (fun c -> (Nv_httpd.Deploy.name c, c)) Nv_httpd.Deploy.all

let config_arg =
  let doc =
    Printf.sprintf "Server configuration to profile: %s."
      (String.concat ", " (List.map fst configs))
  in
  Arg.(
    value
    & opt (enum configs) Nv_httpd.Deploy.Two_variant_uid
    & info [ "config" ] ~docv:"CONFIG" ~doc)

let replicas_arg =
  Arg.(value & opt int 4 & info [ "replicas" ] ~docv:"N" ~doc:"Replicas behind the balancer.")

let rate_arg =
  Arg.(
    value & opt float 400.0
    & info [ "rate" ] ~docv:"REQ/S" ~doc:"Long-run open-loop arrival rate.")

let arrival_arg =
  Arg.(
    value
    & opt (enum [ ("poisson", `Poisson); ("bursty", `Bursty); ("diurnal", `Diurnal) ]) `Poisson
    & info [ "arrival" ] ~docv:"MODEL"
        ~doc:"Arrival process: $(b,poisson), $(b,bursty) or $(b,diurnal).")

let burst_mean_arg =
  Arg.(
    value & opt float 16.0
    & info [ "burst-mean" ] ~docv:"N" ~doc:"Mean burst size for the bursty model.")

let amplitude_arg =
  Arg.(
    value & opt float 0.6
    & info [ "amplitude" ] ~docv:"A"
        ~doc:"Day/night swing for the diurnal model, in [0,1].")

let duration_arg =
  Arg.(value & opt float 20.0 & info [ "duration" ] ~docv:"S" ~doc:"Simulated horizon in seconds.")

let users_arg =
  Arg.(
    value & opt int 1_000_000
    & info [ "users" ] ~docv:"N"
        ~doc:"Synthetic passwd population authenticated per request via the indexed lookup.")

let guest_users_arg =
  Arg.(
    value & opt int 0
    & info [ "guest-users" ] ~docv:"N"
        ~doc:
          "Extra passwd entries installed in the profiled server's own world (kept \
           small: the guest rescans /etc/passwd at startup).")

let attacks_arg =
  Arg.(
    value & opt int 0
    & info [ "attacks-per-10k" ] ~docv:"N"
        ~doc:"Attack requests per 10000, each raising a divergence alarm at its replica.")

let seed_arg = Arg.(value & opt int 11 & info [ "seed" ] ~docv:"N" ~doc:"PRNG seed.")

let parallel_arg =
  Arg.(
    value
    & opt (enum [ ("on", true); ("off", false) ]) (Nv_util.Dompool.env_default ())
    & info [ "parallel" ] ~docv:"on|off"
        ~doc:
          "Profile the server with parallel variant execution ($(b,on)) or \
           sequentially ($(b,off)). Defaults to $(b,NV_PARALLEL). The fleet \
           report is bit-identical either way.")

let engine_arg =
  Arg.(
    value
    & opt
        (enum
           [
             ("reference", Nv_vm.Memory.Reference);
             ("icache", Nv_vm.Memory.Icache);
             ("block", Nv_vm.Memory.Block);
           ])
        (Nv_vm.Memory.default_engine ())
    & info [ "engine" ] ~docv:"ENGINE"
        ~doc:
          "Execution tier the profiled server runs under: $(b,reference), \
           $(b,icache) or $(b,block). The fleet report derives from \
           engine-independent instruction counts, so this only changes \
           profiling wall-clock time. Defaults to $(b,NV_ENGINE), falling \
           back to $(b,icache).")

let metrics_arg =
  Arg.(
    value
    & opt (some (enum [ ("text", `Text); ("json", `Json) ])) None
    & info [ "metrics" ] ~docv:"FORMAT"
        ~doc:"Dump the fleet engine's metrics registry to stderr before exiting.")

let trace_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-out" ] ~docv:"FILE"
        ~doc:
          "Enable the fleet flight recorder and write the session to $(docv) \
           as Chrome trace-event JSON (one process row per replica plus the \
           balancer, timestamped in simulated microseconds), loadable in \
           Perfetto or chrome://tracing.")

let log_level_arg =
  let levels =
    [
      ("quiet", None);
      ("error", Some Logs.Error);
      ("warning", Some Logs.Warning);
      ("info", Some Logs.Info);
      ("debug", Some Logs.Debug);
    ]
  in
  Arg.(
    value
    & opt (enum levels) (Some Logs.Warning)
    & info [ "log-level" ] ~docv:"LEVEL"
        ~doc:
          "Verbosity of the structured log sources (nv.fleet replica health \
           and fail-stops, nv.engine event exceptions, nv.supervisor \
           rollbacks): $(b,quiet), $(b,error), $(b,warning), $(b,info) or \
           $(b,debug). $(b,warning) (the default) reports replica fail-stops; \
           $(b,info) adds recovery detail.")

let run config replicas rate arrival burst_mean amplitude duration users guest_users
    attacks seed parallel engine metrics trace_out log_level =
  (match log_level with
  | None -> ()
  | Some level -> Nv_util.Logsrc.setup ~level ());
  let arrival =
    match arrival with
    | `Poisson -> Nv_sim.Arrivals.Poisson { rate }
    | `Bursty -> Nv_sim.Arrivals.Bursty { rate; burst_mean; intra_gap_s = 0.0005 }
    | `Diurnal ->
      Nv_sim.Arrivals.Diurnal { rate; amplitude; period_s = duration /. 2.0 }
  in
  let built = Nv_httpd.Deploy.build ~parallel ~engine ~users:guest_users config in
  match built with
  | Error message ->
    Printf.eprintf "fleetsim: %s\n" message;
    exit 2
  | Ok sys -> (
    match Nv_workload.Measure.profile ~requests:12 ~seed sys with
    | Error message ->
      Printf.eprintf "fleetsim: profile failed: %s\n" message;
      exit 2
    | Ok samples ->
      (* Drop the startup-heavy first request for steady-state demands. *)
      let samples = Array.sub samples 1 (Array.length samples - 1) in
      let variants =
        Nv_core.Variation.count (Nv_httpd.Deploy.variation config)
      in
      let spec =
        {
          Nv_workload.Openload.replicas;
          arrival;
          duration_s = duration;
          users;
          attacks_per_10k = attacks;
        }
      in
      let registry = Nv_util.Metrics.create () in
      let entries = Nv_workload.Openload.population ~seed ~users () in
      let trace =
        Option.map
          (fun _ ->
            let session = Nv_util.Trace.create () in
            Nv_util.Trace.set_enabled session true;
            session)
          trace_out
      in
      let result =
        Nv_workload.Openload.run ~seed ~metrics:registry ?trace ~entries ~variants
          ~samples spec
      in
      (match (trace_out, trace) with
      | Some path, Some session ->
        let oc = open_out path in
        output_string oc (Nv_util.Metrics.Json.to_string (Nv_util.Trace.to_chrome session));
        output_char oc '\n';
        close_out oc
      | _ -> ());
      let _vfs, sizes =
        Nv_workload.Openload.passwd_world ~entries
          ~variation:(Nv_httpd.Deploy.variation config)
      in
      let r = result.Nv_workload.Openload.fleet in
      Format.printf "fleet: %d replicas, %s arrivals at %.0f req/s, %.1f s horizon (%s)@."
        replicas r.Nv_sim.Fleet.model rate duration (Nv_httpd.Deploy.name config);
      Format.printf "population: %d passwd entries; unshared variant files:%t@."
        result.Nv_workload.Openload.population (fun ppf ->
          Array.iteri (fun i n -> Format.fprintf ppf " /etc/passwd-%d=%dB" i n) sizes);
      Format.printf "demand: %.3f ms/request mean over %d measured samples@."
        (1000.0 *. result.Nv_workload.Openload.mean_service_s)
        (Array.length samples);
      Format.printf
        "traffic: %d arrivals, %d completed, %d rejected, %d dropped, %d in flight@."
        r.Nv_sim.Fleet.arrivals r.Nv_sim.Fleet.completed r.Nv_sim.Fleet.rejected
        r.Nv_sim.Fleet.dropped r.Nv_sim.Fleet.in_flight;
      Format.printf "latency: p50 %.2f ms, p99 %.2f ms, p999 %.2f ms (mean %.2f ms)@."
        r.Nv_sim.Fleet.latency_p50_ms r.Nv_sim.Fleet.latency_p99_ms
        r.Nv_sim.Fleet.latency_p999_ms r.Nv_sim.Fleet.latency_mean_ms;
      Format.printf "goodput: %.1f req/s, %.1f KB/s@." r.Nv_sim.Fleet.goodput_rps
        (r.Nv_sim.Fleet.goodput_bytes_per_s /. 1024.0);
      Format.printf
        "slo: availability %.5f, error budget used %.2f; %d alarms, %d recoveries, %d \
         fail-stops@."
        r.Nv_sim.Fleet.availability r.Nv_sim.Fleet.error_budget_used
        r.Nv_sim.Fleet.alarms r.Nv_sim.Fleet.recoveries r.Nv_sim.Fleet.failstops;
      Format.printf "pool: %d hits, %d misses; uid lookups: %d at %.1f comparisons each@."
        r.Nv_sim.Fleet.pool_hits r.Nv_sim.Fleet.pool_misses
        result.Nv_workload.Openload.lookups
        result.Nv_workload.Openload.comparisons_per_lookup;
      (match metrics with
      | None -> ()
      | Some format -> Nv_util.Metrics.dump ~format registry stderr);
      exit 0)

let cmd =
  let doc = "simulate a fleet of N-variant replicas under open-loop load" in
  Cmd.v
    (Cmd.info "fleetsim" ~doc)
    Term.(
      const run $ config_arg $ replicas_arg $ rate_arg $ arrival_arg $ burst_mean_arg
      $ amplitude_arg $ duration_arg $ users_arg $ guest_users_arg $ attacks_arg
      $ seed_arg $ parallel_arg $ engine_arg $ metrics_arg $ trace_out_arg
      $ log_level_arg)

let () = exit (Cmd.eval cmd)
