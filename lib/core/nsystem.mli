(** Whole-system assembly: filesystem world, kernel, monitor.

    [Nsystem] wires together everything a deployment needs: a VFS
    populated with the trusted UID-bearing files ({e and} their
    reexpressed per-variant copies for the variation's unshared paths),
    a kernel with the right variant count, and a monitor running one
    loaded image per variant. *)

type t

val standard_vfs : ?users:int -> variation:Variation.t -> unit -> Nv_os.Vfs.t
(** A small realistic world:
    - [/etc/passwd], [/etc/group] from {!Nv_os.Passwd.sample}, with
      [users] extra synthetic entries ({!Nv_os.Passwd.generate})
      appended after the samples when given (default 0);
    - for each unshared path of the variation, diversified copies
      [path-i] produced with variant [i]'s reexpression function;
    - [/secret/shadow] readable only by root (mode 0600) — the target
      the UID-corruption attack tries to reach;
    - an empty world-writable [/var/log/httpd.log]. *)

val create :
  ?vfs:Nv_os.Vfs.t ->
  ?parallel:bool ->
  ?engine:Nv_vm.Memory.engine ->
  ?segment_size:int ->
  ?recover:Supervisor.config ->
  variation:Variation.t ->
  Nv_vm.Image.t array ->
  t
(** Build the system. [images], [parallel] and [engine] as in
    {!Monitor.create}. When [vfs] is omitted, {!standard_vfs} is used.
    When [recover] is given, a {!Supervisor} with that config wraps the
    monitor: {!run} and {!serve} then roll back and resume on alarms
    instead of fail-stopping, until the restart budget is exhausted. *)

val of_one_image :
  ?vfs:Nv_os.Vfs.t ->
  ?parallel:bool ->
  ?engine:Nv_vm.Memory.engine ->
  ?segment_size:int ->
  ?recover:Supervisor.config ->
  variation:Variation.t ->
  Nv_vm.Image.t ->
  t
(** Same image replicated to every variant — correct for every
    variation except data diversity, whose variant 1 runs transformed
    code. *)

val kernel : t -> Nv_os.Kernel.t
val monitor : t -> Monitor.t

val supervisor : t -> Supervisor.t option
(** The recovery supervisor, when the system was built with
    [?recover]. *)

val variation : t -> Variation.t

val metrics : t -> Nv_util.Metrics.t
(** The system-wide registry (monitor and kernel report into the same
    one). Dump it with {!Nv_util.Metrics.dump}. *)

val connect : t -> Nv_os.Socket.conn
(** Open a client connection to the guest server's listener. *)

val run : ?fuel:int -> t -> Monitor.outcome
(** Step the whole system: {!Supervisor.run} when a supervisor is
    attached, {!Monitor.run} otherwise. *)

type serve_result =
  | Served of string  (** the response bytes the client received *)
  | Stopped of Monitor.outcome
      (** the system alarmed, exited, or ran out of fuel mid-request *)

val serve : ?fuel:int -> t -> string -> serve_result
(** [serve t request] drives one full client interaction against a
    server guest: run until the system parks on [accept], connect a
    client, send [request], run until the system parks on [accept]
    again (response complete) or stops, and return what the client
    received. This is the workhorse of the attack campaign and the
    WebBench-style load generator. *)
