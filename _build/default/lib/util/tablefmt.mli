(** Plain-text table rendering for benchmark reports.

    Produces aligned, boxed tables similar to the ones in the paper, so
    the bench harness can print "Table 3"-style output directly. *)

type align = Left | Right

val render :
  ?align:align array ->
  header:string list ->
  rows:string list list ->
  unit ->
  string
(** [render ~header ~rows ()] lays out the table with column widths fit
    to content. [align] gives per-column alignment (default: first
    column left, the rest right). Rows shorter than the header are
    padded with empty cells; longer rows raise [Invalid_argument]. *)

val print :
  ?align:align array -> header:string list -> rows:string list list -> unit -> unit
(** [render] followed by [print_string] and a flush. *)
