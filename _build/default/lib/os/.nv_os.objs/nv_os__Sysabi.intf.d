lib/os/sysabi.mli: Nv_vm
