lib/minic/runtime.ml:
