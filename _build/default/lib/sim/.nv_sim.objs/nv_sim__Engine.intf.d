lib/sim/engine.mli:
