type var_id = { scope : string option; name : string }

module VarSet = Set.Make (struct
  type t = var_id

  let compare = compare
end)

module StrSet = Set.Make (String)

(* Built-in knowledge: which builtins return UIDs and which parameter
   positions expect UIDs. *)
let builtin_uid_returning =
  StrSet.of_list [ "getuid"; "geteuid"; "getgid"; "getegid"; "uid_value" ]

let builtin_uid_params name =
  match name with
  | "setuid" | "seteuid" | "setgid" | "setegid" | "uid_value" -> [ 0 ]
  | "cc_eq" | "cc_neq" | "cc_lt" | "cc_leq" | "cc_gt" | "cc_geq" -> [ 0; 1 ]
  | _ -> []

type state = {
  mutable uid_vars : VarSet.t;
  mutable uid_returning : StrSet.t;  (* user functions returning UIDs *)
  mutable uid_params : (string * int, unit) Hashtbl.t;  (* (func, position) *)
  mutable changed : bool;
}

let add_var st v =
  if not (VarSet.mem v st.uid_vars) then begin
    st.uid_vars <- VarSet.add v st.uid_vars;
    st.changed <- true
  end

let add_returning st f =
  if not (StrSet.mem f st.uid_returning) then begin
    st.uid_returning <- StrSet.add f st.uid_returning;
    st.changed <- true
  end

let add_param st f i =
  if not (Hashtbl.mem st.uid_params (f, i)) then begin
    Hashtbl.replace st.uid_params (f, i) ();
    st.changed <- true
  end

(* Resolve a name in function [scope]: locals/params shadow globals.
   We approximate scoping by name (mini-C guests in this repo do not
   shadow globals with locals of a different role). *)
let resolve ~scope ~locals name =
  if StrSet.mem name locals then { scope = Some scope; name } else { scope = None; name }

let rec is_uid_expr st ~scope ~locals (e : Ast.expr) =
  match e with
  | Ast.Var name -> VarSet.mem (resolve ~scope ~locals name) st.uid_vars
  | Ast.Call (f, _) -> StrSet.mem f builtin_uid_returning || StrSet.mem f st.uid_returning
  | Ast.Cast (Ast.Tuid, _) -> true
  | Ast.Assign (_, rhs) -> is_uid_expr st ~scope ~locals rhs
  | Ast.Int_lit _ | Ast.Char_lit _ | Ast.Str_lit _ | Ast.Unop _ | Ast.Binop _
  | Ast.Index _ | Ast.Deref _ | Ast.Addr_of _ | Ast.Cast _ ->
    false

let mark_if_var st ~scope ~locals (e : Ast.expr) =
  match e with
  | Ast.Var name -> add_var st (resolve ~scope ~locals name)
  | _ -> ()

let rec walk_expr st ~scope ~locals (e : Ast.expr) =
  let recurse e = walk_expr st ~scope ~locals e in
  let uid e = is_uid_expr st ~scope ~locals e in
  match e with
  | Ast.Int_lit _ | Ast.Char_lit _ | Ast.Str_lit _ | Ast.Var _ -> ()
  | Ast.Unop (_, a) -> recurse a
  | Ast.Binop (op, a, b) ->
    recurse a;
    recurse b;
    if Ast.is_comparison op then begin
      (* Comparison against a UID makes the other side a UID variable. *)
      if uid a then mark_if_var st ~scope ~locals b;
      if uid b then mark_if_var st ~scope ~locals a
    end
  | Ast.Assign (lv, rhs) ->
    walk_lvalue st ~scope ~locals lv;
    recurse rhs;
    if uid rhs then begin
      match lv with
      | Ast.Lvar name -> add_var st (resolve ~scope ~locals name)
      | Ast.Lindex _ | Ast.Lderef _ -> ()
    end;
    (* Flow in the other direction too: storing into a known-UID
       variable marks a variable source. *)
    (match lv with
    | Ast.Lvar name when VarSet.mem (resolve ~scope ~locals name) st.uid_vars ->
      mark_if_var st ~scope ~locals rhs
    | _ -> ())
  | Ast.Call (f, args) ->
    List.iter recurse args;
    (* Known UID parameter positions make the argument a UID... *)
    let positions =
      builtin_uid_params f
      @ List.filter_map
          (fun i -> if Hashtbl.mem st.uid_params (f, i) then Some i else None)
          (List.mapi (fun i _ -> i) args)
    in
    List.iter
      (fun i ->
        match List.nth_opt args i with
        | Some arg -> mark_if_var st ~scope ~locals arg
        | None -> ())
      positions;
    (* ...and a UID argument makes the user function's parameter a UID. *)
    List.iteri (fun i arg -> if uid arg then add_param st f i) args
  | Ast.Index (a, b) ->
    recurse a;
    recurse b
  | Ast.Deref a -> recurse a
  | Ast.Addr_of lv -> walk_lvalue st ~scope ~locals lv
  | Ast.Cast (_, a) -> recurse a

and walk_lvalue st ~scope ~locals = function
  | Ast.Lvar _ -> ()
  | Ast.Lindex (a, b) ->
    walk_expr st ~scope ~locals a;
    walk_expr st ~scope ~locals b
  | Ast.Lderef a -> walk_expr st ~scope ~locals a

let rec walk_stmt st ~scope ~locals (stmt : Ast.stmt) =
  match stmt with
  | Ast.Sexpr e ->
    walk_expr st ~scope ~locals e;
    locals
  | Ast.Sdecl (ty, name, init) ->
    let locals = StrSet.add name locals in
    (match init with
    | Some e ->
      walk_expr st ~scope ~locals e;
      if ty = Ast.Tuid then add_var st { scope = Some scope; name }
      else if is_uid_expr st ~scope ~locals e then
        add_var st { scope = Some scope; name }
    | None -> if ty = Ast.Tuid then add_var st { scope = Some scope; name });
    locals
  | Ast.Sif (c, a, b) ->
    walk_expr st ~scope ~locals c;
    ignore (walk_stmts st ~scope ~locals a);
    ignore (walk_stmts st ~scope ~locals b);
    locals
  | Ast.Swhile (c, body) ->
    walk_expr st ~scope ~locals c;
    ignore (walk_stmts st ~scope ~locals body);
    locals
  | Ast.Sreturn (Some e) ->
    walk_expr st ~scope ~locals e;
    if is_uid_expr st ~scope ~locals e then add_returning st scope;
    locals
  | Ast.Sreturn None | Ast.Sbreak | Ast.Scontinue -> locals
  | Ast.Sblock body ->
    ignore (walk_stmts st ~scope ~locals body);
    locals

and walk_stmts st ~scope ~locals stmts =
  List.fold_left (fun locals stmt -> walk_stmt st ~scope ~locals stmt) locals stmts

let run_fixpoint program =
  let st =
    {
      uid_vars = VarSet.empty;
      uid_returning = StrSet.empty;
      uid_params = Hashtbl.create 16;
      changed = true;
    }
  in
  (* Declared uid_t variables and uid_t-returning functions seed the
     analysis. *)
  List.iter
    (fun { Ast.gname; gty; _ } ->
      if gty = Ast.Tuid then st.uid_vars <- VarSet.add { scope = None; name = gname } st.uid_vars)
    (Ast.globals program);
  List.iter
    (fun f ->
      if f.Ast.ret = Ast.Tuid then st.uid_returning <- StrSet.add f.Ast.fname st.uid_returning;
      List.iteri
        (fun i (ty, name) ->
          if ty = Ast.Tuid then begin
            Hashtbl.replace st.uid_params (f.Ast.fname, i) ();
            st.uid_vars <-
              VarSet.add { scope = Some f.Ast.fname; name } st.uid_vars
          end)
        f.Ast.params)
    (Ast.funcs program);
  let iterations = ref 0 in
  while st.changed && !iterations < 100 do
    st.changed <- false;
    incr iterations;
    List.iter
      (fun f ->
        let scope = f.Ast.fname in
        let locals = StrSet.of_list (List.map snd f.Ast.params) in
        (* Inferred parameter positions become UID variables, and a
           parameter variable inferred to be a UID makes the position a
           UID sink, so call-site arguments get marked too. *)
        List.iteri
          (fun i (_, name) ->
            if Hashtbl.mem st.uid_params (scope, i) then
              add_var st { scope = Some scope; name };
            if VarSet.mem { scope = Some scope; name } st.uid_vars then
              add_param st scope i)
          f.Ast.params;
        ignore (walk_stmts st ~scope ~locals f.Ast.body))
      (Ast.funcs program)
  done;
  st

(* Variables already declared uid_t are not interesting output. *)
let declared_uid program =
  let declared = ref VarSet.empty in
  List.iter
    (fun { Ast.gname; gty; _ } ->
      if gty = Ast.Tuid then declared := VarSet.add { scope = None; name = gname } !declared)
    (Ast.globals program);
  let rec scan_stmt scope = function
    | Ast.Sdecl (Ast.Tuid, name, _) ->
      declared := VarSet.add { scope = Some scope; name } !declared
    | Ast.Sdecl _ | Ast.Sexpr _ | Ast.Sreturn _ | Ast.Sbreak | Ast.Scontinue -> ()
    | Ast.Sif (_, a, b) ->
      List.iter (scan_stmt scope) a;
      List.iter (scan_stmt scope) b
    | Ast.Swhile (_, body) | Ast.Sblock body -> List.iter (scan_stmt scope) body
  in
  List.iter
    (fun f ->
      List.iter
        (fun (ty, name) ->
          if ty = Ast.Tuid then
            declared := VarSet.add { scope = Some f.Ast.fname; name } !declared)
        f.Ast.params;
      List.iter (scan_stmt f.Ast.fname) f.Ast.body)
    (Ast.funcs program);
  !declared

let infer program =
  let st = run_fixpoint program in
  let declared = declared_uid program in
  VarSet.diff st.uid_vars declared |> VarSet.elements

let apply program =
  let st = run_fixpoint program in
  let inferred = st.uid_vars in
  let is_uid scope name = VarSet.mem { scope; name } inferred in
  let rec rewrite_stmt scope = function
    | Ast.Sdecl (Ast.Tint, name, init) when is_uid (Some scope) name ->
      Ast.Sdecl (Ast.Tuid, name, init)
    | Ast.Sdecl _ as s -> s
    | Ast.Sexpr _ as s -> s
    | Ast.Sif (c, a, b) ->
      Ast.Sif (c, List.map (rewrite_stmt scope) a, List.map (rewrite_stmt scope) b)
    | Ast.Swhile (c, body) -> Ast.Swhile (c, List.map (rewrite_stmt scope) body)
    | Ast.Sblock body -> Ast.Sblock (List.map (rewrite_stmt scope) body)
    | (Ast.Sreturn _ | Ast.Sbreak | Ast.Scontinue) as s -> s
  in
  List.map
    (function
      | Ast.Dglobal ({ Ast.gname; gty = Ast.Tint; _ } as g) when is_uid None gname ->
        Ast.Dglobal { g with Ast.gty = Ast.Tuid }
      | Ast.Dglobal _ as d -> d
      | Ast.Dfunc f ->
        let params =
          List.mapi
            (fun i (ty, name) ->
              if ty = Ast.Tint
                 && (Hashtbl.mem st.uid_params (f.Ast.fname, i)
                    || is_uid (Some f.Ast.fname) name)
              then (Ast.Tuid, name)
              else (ty, name))
            f.Ast.params
        in
        let ret =
          if f.Ast.ret = Ast.Tint && StrSet.mem f.Ast.fname st.uid_returning then Ast.Tuid
          else f.Ast.ret
        in
        Ast.Dfunc { f with Ast.params; ret; body = List.map (rewrite_stmt f.Ast.fname) f.Ast.body })
    program
