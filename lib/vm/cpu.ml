(* The fault/trap types live in [Block] (which sits below this module
   in the dependency order); the equations keep [Cpu.Segfault] etc.
   valid for every existing user. *)
type fault = Block.fault =
  | Segfault of { addr : int; access : Memory.access }
  | Bad_tag of { addr : int; found : int; expected : int }
  | Bad_instruction of { addr : int }
  | Division_fault of { addr : int }
  | Stack_fault of { addr : int }

type trap = Block.trap = Syscall_trap | Halt_trap | Fault_trap of fault

type outcome = Trapped of trap | Out_of_fuel

type t = {
  memory : Memory.t;
  regs : int array;
  mutable pc : int;
  mutable retired : int;
  expected_tag : int;
  mutable blocks : Block.cache option;  (* lazily created on first block run *)
}

let sp_index = 13

let fp_index = 12

let create ?(expected_tag = 0) memory ~pc ~sp =
  let regs = Array.make 16 0 in
  regs.(sp_index) <- Word.mask sp;
  { memory; regs; pc; retired = 0; expected_tag; blocks = None }

let memory t = t.memory

let pc t = t.pc

let set_pc t pc = t.pc <- Word.mask pc

let check_reg i = if i < 0 || i > 15 then invalid_arg "Cpu.reg: index out of range"

let reg t i =
  check_reg i;
  t.regs.(i)

let set_reg t i w =
  check_reg i;
  t.regs.(i) <- Word.mask w

let instructions_retired t = t.retired

let expected_tag t = t.expected_tag

type snapshot = { snap_regs : int array; snap_pc : int; snap_retired : int }

let snapshot t =
  { snap_regs = Array.copy t.regs; snap_pc = t.pc; snap_retired = t.retired }

let restore t snap =
  Array.blit snap.snap_regs 0 t.regs 0 16;
  t.pc <- snap.snap_pc;
  t.retired <- snap.snap_retired

let operand_value t = function Isa.Reg r -> t.regs.(r) | Isa.Imm w -> w

(* Execute one already-decoded instruction. Factored out of [step] so
   the hot path allocates nothing on normal advancement. *)
let execute t instr next =
  match instr with
      | Isa.Nop ->
        t.pc <- next;
        None
      | Isa.Halt -> Some Halt_trap
      | Isa.Mov (rd, o) ->
        t.regs.(rd) <- operand_value t o;
        t.pc <- next;
        None
      | Isa.Load (rd, rs, off) ->
        t.regs.(rd) <- Memory.load_word t.memory (Word.mask (t.regs.(rs) + off));
        t.pc <- next;
        None
      | Isa.Store (rd, off, rs) ->
        Memory.store_word t.memory (Word.mask (t.regs.(rd) + off)) t.regs.(rs);
        t.pc <- next;
        None
      | Isa.Loadb (rd, rs, off) ->
        t.regs.(rd) <- Memory.load_byte t.memory (Word.mask (t.regs.(rs) + off));
        t.pc <- next;
        None
      | Isa.Storeb (rd, off, rs) ->
        Memory.store_byte t.memory (Word.mask (t.regs.(rd) + off)) t.regs.(rs);
        t.pc <- next;
        None
      | Isa.Binop (op, rd, rs, o) ->
        t.regs.(rd) <- Isa.eval_binop op t.regs.(rs) (operand_value t o);
        t.pc <- next;
        None
      | Isa.Setcc (cond, rd, rs, o) ->
        t.regs.(rd) <- (if Isa.eval_cond cond t.regs.(rs) (operand_value t o) then 1 else 0);
        t.pc <- next;
        None
      | Isa.Br (cond, rs, rt, target) ->
        t.pc <- (if Isa.eval_cond cond t.regs.(rs) t.regs.(rt) then target else next);
        None
      | Isa.Jmp target ->
        t.pc <- target;
        None
      | Isa.Jmpr rs ->
        t.pc <- t.regs.(rs);
        None
      | Isa.Call target ->
        let sp = Word.sub t.regs.(sp_index) 4 in
        Memory.store_word t.memory sp (Word.mask next);
        t.regs.(sp_index) <- sp;
        t.pc <- target;
        None
      | Isa.Callr rs ->
        let sp = Word.sub t.regs.(sp_index) 4 in
        Memory.store_word t.memory sp (Word.mask next);
        t.regs.(sp_index) <- sp;
        t.pc <- t.regs.(rs);
        None
      | Isa.Ret ->
        let sp = t.regs.(sp_index) in
        let target = Memory.load_word t.memory sp in
        t.regs.(sp_index) <- Word.add sp 4;
        t.pc <- target;
        None
      | Isa.Push rs ->
        let sp = Word.sub t.regs.(sp_index) 4 in
        Memory.store_word t.memory sp t.regs.(rs);
        t.regs.(sp_index) <- sp;
        t.pc <- next;
        None
      | Isa.Pop rd ->
        let sp = t.regs.(sp_index) in
        t.regs.(rd) <- Memory.load_word t.memory sp;
        t.regs.(sp_index) <- Word.add sp 4;
        t.pc <- next;
        None
  | Isa.Syscall ->
    t.pc <- next;
    Some Syscall_trap

let step t =
  let at = t.pc in
  match Memory.fetch_decoded t.memory at with
  | exception Memory.Fault { addr; access } -> Some (Fault_trap (Segfault { addr; access }))
  | Error _ -> Some (Fault_trap (Bad_instruction { addr = at }))
  | Ok (tag, instr) ->
    if tag <> t.expected_tag then
      Some (Fault_trap (Bad_tag { addr = at; found = tag; expected = t.expected_tag }))
    else begin
      t.retired <- t.retired + 1;
      match execute t instr (at + Isa.instr_size) with
      | exception Memory.Fault { addr; access } ->
        t.retired <- t.retired - 1;
        let fault =
          match instr with
          | Isa.Push _ | Isa.Pop _ | Isa.Call _ | Isa.Callr _ | Isa.Ret ->
            Stack_fault { addr }
          | Isa.Nop | Isa.Halt | Isa.Mov _ | Isa.Load _ | Isa.Store _ | Isa.Loadb _
          | Isa.Storeb _ | Isa.Binop _ | Isa.Setcc _ | Isa.Br _ | Isa.Jmp _
          | Isa.Jmpr _ | Isa.Syscall ->
            Segfault { addr; access }
        in
        Some (Fault_trap fault)
      | exception Division_by_zero ->
        t.retired <- t.retired - 1;
        Some (Fault_trap (Division_fault { addr = at }))
      | result -> result
    end

let run_stepping t ~fuel =
  let rec loop remaining =
    if remaining <= 0 then Out_of_fuel
    else begin
      match step t with None -> loop (remaining - 1) | Some trap -> Trapped trap
    end
  in
  loop fuel

let block_cache t =
  match t.blocks with
  | Some c -> c
  | None ->
    let c = Block.create t.memory t.regs ~expected_tag:t.expected_tag in
    t.blocks <- Some c;
    c

(* Block-engine run loop: execute whole compiled blocks when one is
   dispatchable from the current pc within the remaining fuel, and
   fall back to the stepping interpreter for exactly one instruction
   otherwise (unaligned pc, undecodable or wrong-tag entry — the step
   raises the precise fault — or a block longer than the fuel left, so
   a sliced [run ~fuel] retires exactly [fuel] instructions before
   reporting [Out_of_fuel]). *)
let run_blocks t ~fuel =
  let cache = block_cache t in
  let st = Block.scratch cache in
  let rec loop remaining =
    if remaining <= 0 then Out_of_fuel
    else begin
      match Block.find cache ~pc:t.pc ~remaining with
      | None -> (
        match step t with None -> loop (remaining - 1) | Some trap -> Trapped trap)
      | Some cb ->
        st.Block.st_budget <- remaining;
        Block.exec cb st;
        t.retired <- t.retired + st.Block.st_retired;
        t.pc <- st.Block.st_pc;
        (match st.Block.st_trap with
        | None -> loop (remaining - st.Block.st_retired)
        | Some trap -> Trapped trap)
    end
  in
  loop fuel

let run t ~fuel =
  match Memory.engine t.memory with
  | Memory.Block -> run_blocks t ~fuel
  | Memory.Reference | Memory.Icache -> run_stepping t ~fuel

let block_stats t =
  match t.blocks with
  | None -> (0, 0, Memory.block_invalidations t.memory)
  | Some c ->
    (Block.compiled_blocks c, Block.hits c, Memory.block_invalidations t.memory)

let pp_fault ppf = function
  | Segfault { addr; access } ->
    let access_name =
      match access with
      | Memory.Read -> "read"
      | Memory.Write -> "write"
      | Memory.Execute -> "execute"
    in
    Format.fprintf ppf "segfault (%s at 0x%08X)" access_name addr
  | Bad_tag { addr; found; expected } ->
    Format.fprintf ppf "bad instruction tag at 0x%08X (found %d, expected %d)" addr found
      expected
  | Bad_instruction { addr } -> Format.fprintf ppf "illegal instruction at 0x%08X" addr
  | Division_fault { addr } -> Format.fprintf ppf "division by zero at 0x%08X" addr
  | Stack_fault { addr } -> Format.fprintf ppf "stack fault at 0x%08X" addr

let pp_trap ppf = function
  | Syscall_trap -> Format.pp_print_string ppf "syscall"
  | Halt_trap -> Format.pp_print_string ppf "halt"
  | Fault_trap fault -> Format.fprintf ppf "fault: %a" pp_fault fault
