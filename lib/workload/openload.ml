module Fleet = Nv_sim.Fleet
module Passwd = Nv_os.Passwd
module Vfs = Nv_os.Vfs
module Reexpression = Nv_core.Reexpression
module Prng = Nv_util.Prng

type spec = {
  replicas : int;
  arrival : Nv_sim.Arrivals.model;
  duration_s : float;
  users : int;
  attacks_per_10k : int;
}

type result = {
  fleet : Fleet.report;
  population : int;
  lookups : int;
  comparisons : int;
  comparisons_per_lookup : float;
  mean_service_s : float;
}

let population ?seed ~users () = Passwd.sample @ Passwd.generate ?seed users

let passwd_world ~entries ~variation =
  let vfs = Vfs.create () in
  Vfs.mkdir_p vfs "/etc";
  Vfs.install vfs ~path:"/etc/passwd" (Passwd.serialize entries);
  let variants = Nv_core.Variation.count variation in
  let sizes =
    Array.init variants (fun i ->
        (* The deployed variation's own per-variant spec, not a
           hardcoded default family: under seeded or rotation configs
           the two encodings disagree on every uid. *)
        let spec = variation.Nv_core.Variation.variants.(i) in
        let f = spec.Nv_core.Variation.uid.Reexpression.encode in
        let diversified =
          List.map (fun e -> { e with Passwd.uid = f e.Passwd.uid; gid = f e.Passwd.gid }) entries
        in
        let path = Printf.sprintf "/etc/passwd-%d" i in
        Vfs.install vfs ~path (Passwd.serialize diversified);
        match Vfs.size vfs ~path with Ok n -> n | Error _ -> 0)
  in
  (vfs, sizes)

let mean_service_s ?(cost = Cost_model.default) ~variants samples =
  if Array.length samples = 0 then invalid_arg "Openload.mean_service_s: no samples";
  let total =
    Array.fold_left
      (fun acc s ->
        acc
        +. Cost_model.cpu_seconds cost ~instructions:s.Measure.instructions
             ~rendezvous:s.Measure.rendezvous ~variants)
      0.0 samples
  in
  total /. float_of_int (Array.length samples)

(* Charge the indexed uid lookup to the request at a nominal cost per
   key comparison — microscopic next to the monitor rendezvous cost,
   which is the point: with the linear scan it would be ~n/2 of these
   per request. *)
let comparison_cost_s = 2.0e-8

let run ?(seed = 11) ?(cost = Cost_model.default) ?(fleet = Fleet.default) ?metrics
    ?trace ?entries ~variants ~samples spec =
  if Array.length samples = 0 then invalid_arg "Openload.run: no samples";
  let entries =
    match entries with Some e -> e | None -> population ~seed ~users:spec.users ()
  in
  let idx = Passwd.index entries in
  let uids = Array.of_list (List.map (fun e -> e.Passwd.uid) entries) in
  let prng = Prng.create ~seed in
  let cursor = ref (Prng.int prng (Array.length samples)) in
  let lookups = ref 0 in
  let service_sum = ref 0.0 in
  let next_request () =
    let sample = samples.(!cursor mod Array.length samples) in
    incr cursor;
    let uid = Prng.pick prng uids in
    let before = Passwd.comparisons idx in
    (match Passwd.find_uid idx uid with
    | Some _ -> ()
    | None -> invalid_arg "Openload.run: generated uid missing from index");
    let spent = Passwd.comparisons idx - before in
    incr lookups;
    let service_s =
      Cost_model.cpu_seconds cost ~instructions:sample.Measure.instructions
        ~rendezvous:sample.Measure.rendezvous ~variants
      +. (float_of_int spent *. comparison_cost_s)
    in
    service_sum := !service_sum +. service_s;
    {
      Fleet.service_s;
      response_bytes = sample.Measure.response_bytes;
      attack = Prng.int prng 10_000 < spec.attacks_per_10k;
    }
  in
  let config =
    {
      fleet with
      Fleet.replicas = spec.replicas;
      arrival = spec.arrival;
      duration_s = spec.duration_s;
      seed;
    }
  in
  let report = Fleet.run ?metrics ?trace config ~next_request in
  let comparisons = Passwd.comparisons idx in
  {
    fleet = report;
    population = List.length entries;
    lookups = !lookups;
    comparisons;
    comparisons_per_lookup =
      (if !lookups = 0 then 0.0 else float_of_int comparisons /. float_of_int !lookups);
    mean_service_s =
      (if !lookups = 0 then 0.0 else !service_sum /. float_of_int !lookups);
  }
