lib/os/socket.ml: Buffer Queue String
