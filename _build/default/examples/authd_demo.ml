(* The second case study: authd, an sshd-shaped login daemon (the
   service class Chen et al.'s non-control-data paper attacked).

     dune exec examples/authd_demo.exe

   The daemon keeps a uid_t array of administrators next to an
   overflowable username buffer. One malicious LOGIN line rewrites
   admins[0] with an ordinary user's UID - promotion to administrator
   without touching any control data. *)

module Variation = Nv_core.Variation
module Nsystem = Nv_core.Nsystem
module Monitor = Nv_core.Monitor
module Authd = Nv_httpd.Authd_source

let ask sys line =
  match Nsystem.serve sys line with
  | Nsystem.Served response -> Printf.printf "  %-42s -> %s\n" (String.trim line) (String.trim response)
  | Nsystem.Stopped (Monitor.Alarm reason) ->
    Format.printf "  %-42s -> ALARM: %a@." (String.trim line) Nv_core.Alarm.pp reason
  | Nsystem.Stopped _ -> Printf.printf "  %-42s -> (daemon stopped)\n" (String.trim line)

let scenario name sys =
  Printf.printf "\n=== %s ===\n" name;
  ask sys (Authd.login "alice");
  ask sys (Authd.login "root");
  Printf.printf "  -- attacker sends the overflowing LOGIN --\n";
  ask sys (Authd.overflow_login ~target_uid:1000);
  ask sys (Authd.login "alice")

let () =
  print_endline "authd: LOGIN <user> -> ADMIN | OK | NOUSER | BAD";
  scenario "unprotected single process"
    (Nsystem.of_one_image ~variation:Variation.single
       (Nv_minic.Codegen.compile_source Authd.source));
  (match
     Nv_transform.Uid_transform.transform_source ~variation:Variation.uid_diversity
       Authd.source
   with
  | Ok (images, _) ->
    scenario "2-variant UID data diversity"
      (Nsystem.create ~variation:Variation.uid_diversity images)
  | Error e -> print_endline ("transform failed: " ^ e));
  print_endline
    "\nOn the baseline, alice silently became an administrator. Under the UID\n\
     variation the corrupted array entry decodes differently in each variant,\n\
     and the membership check's cc_eq rendezvous raises the alarm."
