examples/uid_attack.mli:
