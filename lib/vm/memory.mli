(** Byte-addressable segmented guest memory.

    A segment maps the absolute address range [\[base, base + size)] to a
    backing byte array. Any access outside the segment raises
    {!Fault}; this is how address-space partitioning turns an injected
    absolute address into a detectable failure: an address that is
    mapped in variant 0's segment is unmapped in variant 1's.

    Words are stored little-endian. *)

type t

type access = Read | Write | Execute

exception Fault of { addr : int; access : access }
(** Raised on any access outside [\[base, base+size)]. *)

val create : base:int -> size:int -> t
(** Fresh zeroed segment. [base] and [size] must be non-negative and
    [base + size <= 2^32], otherwise [Invalid_argument]. *)

val base : t -> int
val size : t -> int

val in_range : t -> int -> bool
(** Whether an absolute address falls inside the segment. *)

val to_offset : t -> int -> int
(** Canonicalize an absolute address to a segment-relative offset (the
    paper's canonicalization function for address partitioning). Raises
    [Fault] if out of range. *)

type snapshot
(** A checkpoint of a segment's bytes (the base/size geometry is not
    captured; a snapshot can only be restored into the segment it was
    taken from, or one with the same size). *)

val snapshot : t -> snapshot
(** Copy of the full segment contents. *)

val restore : t -> snapshot -> unit
(** Overwrite the segment with the snapshot bytes and invalidate the
    whole decoded-instruction cache (the rollback may change code
    bytes, so every cached decode is suspect). Raises
    [Invalid_argument] on a segment-size mismatch. *)

val load_byte : t -> int -> int
val store_byte : t -> int -> int -> unit

val load_word : t -> int -> Word.t
(** Little-endian 32-bit load; all four bytes must be in range. *)

val store_word : t -> int -> Word.t -> unit

val load_bytes : t -> addr:int -> len:int -> bytes
val store_bytes : t -> addr:int -> bytes -> unit

val load_cstring : t -> addr:int -> max_len:int -> string
(** Read a NUL-terminated string starting at [addr]; stops at NUL or
    after [max_len] bytes (whichever comes first; the NUL is not
    included). Faults if it runs off the segment before terminating. *)

val store_cstring : t -> addr:int -> string -> unit
(** Write the string followed by a NUL byte. The whole destination
    range is validated before any byte is written, so a faulting store
    leaves guest memory untouched. *)

val exec_byte : t -> int -> int
(** Like {!load_byte} but faults carry [Execute] access, used by the
    CPU's fetch path so traces distinguish fetch faults. *)

(** {1 Decoded instruction fetch}

    The segment keeps a lazily filled cache of decoded instructions,
    one slot per [Isa.instr_size]-aligned window. Every store
    ({!store_byte}, {!store_word}, {!store_bytes}, {!store_cstring})
    invalidates exactly the slots it overlaps, so self-modifying code
    and injected code are re-decoded (and re-tag-checked) on their next
    fetch — attack detection is byte-for-byte identical to the uncached
    decoder. *)

val fetch_decoded : t -> int -> (int * Isa.t, Isa.decode_error) result
(** Decode the instruction at an absolute address, returning
    [(tag, instruction)] from the cache when possible. Raises {!Fault}
    with [Execute] access (at the first out-of-range byte) when the
    [Isa.instr_size]-byte window is not fully mapped. Unaligned
    addresses (relative to the segment base) are decoded without
    caching. *)

val fetch_reference : t -> int -> (int * Isa.t, Isa.decode_error) result
(** The uncached reference fetch path: byte-at-a-time Execute-checked
    loads plus a fresh decode. Used by differential tests and the
    [hostperf] benchmark as the pre-cache baseline; semantics are
    identical to {!fetch_decoded}. *)

val set_icache_enabled : t -> bool -> unit
(** Enable (default) or disable the decode cache; disabling routes
    {!fetch_decoded} through {!fetch_reference}. *)
