(* Tests for the authd case study: protocol behaviour, UID-array
   reexpression, and the admin-list corruption attack (the sshd-shaped
   scenario of Chen et al. that motivates the paper). *)

module Variation = Nv_core.Variation
module Monitor = Nv_core.Monitor
module Nsystem = Nv_core.Nsystem
module Alarm = Nv_core.Alarm
module Authd = Nv_httpd.Authd_source

let build variation =
  match
    Nv_transform.Uid_transform.transform_source ~variation Authd.source
  with
  | Ok (images, _) -> Nsystem.create ~variation images
  | Error e -> Alcotest.fail e

let build_plain variation =
  Nsystem.of_one_image ~variation (Nv_minic.Codegen.compile_source Authd.source)

let ask sys request =
  match Nsystem.serve sys request with
  | Nsystem.Served response -> `Response (String.trim response)
  | Nsystem.Stopped (Monitor.Alarm reason) -> `Alarm reason
  | Nsystem.Stopped outcome ->
    Alcotest.failf "authd stopped: %s"
      (match outcome with
      | Monitor.Exited n -> Printf.sprintf "exit %d" n
      | Monitor.Out_of_fuel -> "fuel"
      | _ -> "?")

let expect_response expected result =
  match result with
  | `Response got -> Alcotest.(check string) "response" expected got
  | `Alarm reason -> Alcotest.failf "unexpected alarm: %a" Alarm.pp reason

(* ------------------------------------------------------------------ *)
(* Protocol                                                            *)
(* ------------------------------------------------------------------ *)

let protocol_checks sys =
  expect_response "ADMIN" (ask sys (Authd.login "root"));
  expect_response "ADMIN" (ask sys (Authd.login "www"));
  expect_response "OK" (ask sys (Authd.login "alice"));
  expect_response "OK" (ask sys (Authd.login "bob"));
  expect_response "NOUSER" (ask sys (Authd.login "mallory"));
  expect_response "BAD" (ask sys "HELO\n")

let test_protocol_single () = protocol_checks (build_plain Variation.single)

let test_protocol_uid_diversity () = protocol_checks (build Variation.uid_diversity)

let test_protocol_full_diversity () = protocol_checks (build Variation.full_diversity)

let test_many_sessions_stable () =
  let sys = build Variation.uid_diversity in
  for _ = 1 to 10 do
    expect_response "OK" (ask sys (Authd.login "alice"));
    expect_response "ADMIN" (ask sys (Authd.login "root"))
  done

(* ------------------------------------------------------------------ *)
(* UID array reexpression                                              *)
(* ------------------------------------------------------------------ *)

let test_admins_array_reexpressed () =
  let sys = build Variation.uid_diversity in
  (* Force loading/start so symbols resolve. *)
  expect_response "OK" (ask sys (Authd.login "alice"));
  let stored variant index =
    let loaded = Monitor.loaded (Nsystem.monitor sys) variant in
    Nv_vm.Memory.load_word loaded.Nv_vm.Image.memory
      (Nv_vm.Image.abs_symbol loaded "admins" + (4 * index))
  in
  (* Variant 0 canonical, variant 1 XORed - the Init_array path. *)
  Alcotest.(check int) "v0 admins[0]" 0 (stored 0 0);
  Alcotest.(check int) "v0 admins[1]" 33 (stored 0 1);
  Alcotest.(check int) "v1 admins[0]" 0x7FFFFFFF (stored 1 0);
  Alcotest.(check int) "v1 admins[1]" (33 lxor 0x7FFFFFFF) (stored 1 1)

(* ------------------------------------------------------------------ *)
(* The admin-list corruption attack                                    *)
(* ------------------------------------------------------------------ *)

let alice_uid = 1000

let test_overflow_escalates_on_baseline () =
  let sys = build_plain Variation.single in
  expect_response "OK" (ask sys (Authd.login "alice"));
  (* The overflowing login itself fails the lookup... *)
  expect_response "NOUSER" (ask sys (Authd.overflow_login ~target_uid:alice_uid));
  (* ...but has rewritten admins[0]: alice is now an administrator. *)
  expect_response "ADMIN" (ask sys (Authd.login "alice"))

let test_overflow_escalates_under_address_partition () =
  let sys = build_plain Variation.address_partition in
  expect_response "NOUSER" (ask sys (Authd.overflow_login ~target_uid:alice_uid));
  expect_response "ADMIN" (ask sys (Authd.login "alice"))

let test_overflow_detected_under_uid_diversity () =
  let sys = build Variation.uid_diversity in
  expect_response "NOUSER" (ask sys (Authd.overflow_login ~target_uid:alice_uid));
  (* The corrupted array entry decodes differently per variant: the
     membership check's cc_eq raises the alarm before any verdict. *)
  match ask sys (Authd.login "alice") with
  | `Alarm (Alarm.Arg_mismatch { syscall; _ }) ->
    Alcotest.(check string) "at cc_eq" "cc_eq" (Nv_os.Syscall.name syscall)
  | `Alarm reason -> Alcotest.failf "wrong alarm: %a" Alarm.pp reason
  | `Response r -> Alcotest.failf "not detected; authd answered %S" r

let test_overflow_login_validation () =
  Alcotest.(check bool) "uid with NUL low byte rejected" true
    (try
       ignore (Authd.overflow_login ~target_uid:0x100);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "uid with high bytes rejected" true
    (try
       ignore (Authd.overflow_login ~target_uid:0x10000);
       false
     with Invalid_argument _ -> true)

let () =
  Alcotest.run "nv_authd"
    [
      ( "protocol",
        [
          Alcotest.test_case "single" `Quick test_protocol_single;
          Alcotest.test_case "uid diversity" `Quick test_protocol_uid_diversity;
          Alcotest.test_case "full diversity" `Quick test_protocol_full_diversity;
          Alcotest.test_case "many sessions" `Quick test_many_sessions_stable;
        ] );
      ( "reexpression",
        [ Alcotest.test_case "admins array" `Quick test_admins_array_reexpressed ] );
      ( "attack",
        [
          Alcotest.test_case "escalates on baseline" `Quick test_overflow_escalates_on_baseline;
          Alcotest.test_case "escalates under address partition" `Quick
            test_overflow_escalates_under_address_partition;
          Alcotest.test_case "detected under uid diversity" `Quick
            test_overflow_detected_under_uid_diversity;
          Alcotest.test_case "payload validation" `Quick test_overflow_login_validation;
        ] );
    ]
