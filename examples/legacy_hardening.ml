(* Hardening a legacy program that never used uid_t.

     dune exec examples/legacy_hardening.exe

   Section 4 of the paper: "If the programmer did not use uid_t data
   type to declare the variables, they could be inferred using dataflow
   analysis by seeing which variables stored the result of functions
   returning a known uid value (e.g., getuid) or were passed as a
   parameter to a function expecting a user id (e.g., setuid)" - citing
   Splint. This example runs that full pipeline:

     untyped legacy source
       -> Uid_infer.infer / apply   (recover the UID variables)
       -> Uid_transform             (instrument + reexpress)
       -> 2-variant deployment      (protected) *)

module Variation = Nv_core.Variation
module Monitor = Nv_core.Monitor
module Nsystem = Nv_core.Nsystem

(* A legacy daemon: UIDs are plain ints everywhere. Note this program
   does not even typecheck under the strict uid_t discipline (setuid
   expects uid_t), which is exactly why the inference step exists. *)
let legacy_source =
  {|int service_account = 33;

    int drop_to(int who) {
      if (seteuid(who) != 0) { return 0; }
      return 1;
    }

    int main(void) {
      int fd = sys_accept(3);
      sys_close(fd);
      if (!drop_to(service_account)) { return 1; }
      return 0;
    }|}

let () =
  print_endline "== 1. the legacy source (no uid_t anywhere) ==";
  print_endline legacy_source;

  print_endline "\n== 2. dataflow inference recovers the UID variables ==";
  let ast = Nv_minic.Parser.parse legacy_source in
  List.iter
    (fun { Nv_minic.Uid_infer.scope; name } ->
      match scope with
      | None -> Printf.printf "  global %s is a UID\n" name
      | Some f -> Printf.printf "  %s's %s is a UID\n" f name)
    (Nv_minic.Uid_infer.infer ast);

  print_endline "\n== 3. rewrite declarations and re-typecheck ==";
  let typed_ast = Nv_minic.Uid_infer.apply ast in
  print_endline (Nv_minic.Pretty.program typed_ast);

  print_endline "== 4. transform and deploy as a 2-variant system ==";
  let source = Nv_minic.Pretty.program typed_ast in
  let images, report =
    match
      Nv_transform.Uid_transform.transform_source ~variation:Variation.uid_diversity source
    with
    | Ok result -> result
    | Error e -> failwith e
  in
  Format.printf "transformation: %a@." Nv_transform.Uid_transform.pp_report report;
  let sys = Nsystem.create ~variation:Variation.uid_diversity images in
  (match Nsystem.run sys with
  | Monitor.Blocked_on_accept -> ()
  | _ -> failwith "unexpected");
  ignore (Nsystem.connect sys);
  (match Nsystem.run sys with
  | Monitor.Exited 0 -> print_endline "normal input: exited 0 (protection is transparent)"
  | _ -> failwith "unexpected");

  print_endline "\n== 5. and it detects corruption ==";
  let sys = Nsystem.create ~variation:Variation.uid_diversity images in
  (match Nsystem.run sys with
  | Monitor.Blocked_on_accept -> ()
  | _ -> failwith "unexpected");
  for i = 0 to 1 do
    let loaded = Monitor.loaded (Nsystem.monitor sys) i in
    Nv_vm.Memory.store_word loaded.Nv_vm.Image.memory
      (Nv_vm.Image.abs_symbol loaded "service_account")
      0
  done;
  ignore (Nsystem.connect sys);
  match Nsystem.run sys with
  | Monitor.Alarm reason -> Format.printf "ALARM: %a@." Nv_core.Alarm.pp reason
  | _ -> print_endline "NOT DETECTED (unexpected)"
