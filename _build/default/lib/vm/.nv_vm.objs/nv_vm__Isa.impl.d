lib/vm/isa.ml: Bytes Char Format Word
