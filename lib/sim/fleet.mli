(** Simulated load balancer over a fleet of N-variant replicas.

    Open-loop traffic from an {!Arrivals} generator is spread across
    [replicas] simulated N-variant servers. Each replica has a bounded
    keep-alive connection pool, a fixed number of service cores, and a
    health state machine fed by the Supervisor-style alarm semantics of
    the monitored replicas it models:

    - a divergence alarm rolls the replica back: every live connection
      (in service, queued, or mid-transfer) is dropped;
    - within the recovery budget ([max_recoveries] alarms per sliding
      [recovery_window_s]) the replica pauses for [recovery_pause_s] and
      rejoins;
    - past the budget it fail-stops: the balancer drains it, and after
      [restart_s] it re-enters through a probation phase of
      [probe_successes] health probes before taking traffic again.

    The run is fully deterministic for a fixed [seed] and request
    stream; the SLO report (p50/p99/p999 latency, goodput, error budget)
    is published into the engine's metrics registry under ["fleet"]. *)

type request = {
  service_s : float;  (** core seconds the replica spends on it *)
  response_bytes : int;
  attack : bool;  (** triggers a divergence alarm at the rendezvous *)
}

type config = {
  replicas : int;
  cores : int;  (** service cores per replica *)
  pool_size : int;  (** keep-alive connections per replica *)
  queue_limit : int;  (** waiting requests per replica before shedding *)
  conn_setup_s : float;  (** handshake cost when no idle connection *)
  rtt_s : float;
  bandwidth_bytes_per_s : float;
  arrival : Arrivals.model;
  duration_s : float;
  recovery_pause_s : float;
  max_recoveries : int;
  recovery_window_s : float;
  restart_s : float;
  probe_interval_s : float;
  probe_successes : int;
  slo_target : float;  (** availability objective, e.g. 0.999 *)
  seed : int;
}

val default : config
(** 4 replicas x 2 cores, Poisson at 400 req/s for 20 s, 99.9%% SLO. *)

type report = {
  model : string;  (** arrival model name *)
  duration_s : float;
  arrivals : int;
  completed : int;
  rejected : int;  (** shed: queue full or no healthy replica *)
  dropped : int;  (** connections torn down by alarms and fail-stops *)
  in_flight : int;  (** still open when the horizon hit *)
  alarms : int;
  recoveries : int;
  failstops : int;
  probes : int;
  pool_hits : int;
  pool_misses : int;
  goodput_rps : float;
  goodput_bytes_per_s : float;
  latency_mean_ms : float;
  latency_p50_ms : float;
  latency_p99_ms : float;
  latency_p999_ms : float;
  availability : float;  (** completed / (completed + errors) *)
  error_budget_used : float;
      (** errors as a fraction of the (1 - slo_target) allowance; > 1
          means the budget is blown *)
  replica_completed : int array;
  replica_dropped : int array;
  replica_utilization : float array;  (** delivered core-seconds share *)
  transitions : (float * int * string) list;
      (** health transitions: time, replica id, new state — one of
          ["recovering"], ["up"], ["down"], ["probation"] *)
}

val run :
  ?metrics:Nv_util.Metrics.t ->
  ?trace:Nv_util.Trace.t ->
  config ->
  next_request:(unit -> request) ->
  report
(** Simulate [config.duration_s] seconds of open-loop load. The request
    stream comes from [next_request], called once per arrival in arrival
    order (so a seeded closure keeps the whole run deterministic).
    [trace] registers flight-recorder rings in the given session — a
    balancer ring (pid 0: shedding decisions) and one per replica (pid
    [id+1]: health transitions and divergence alarms), timestamped in
    simulated microseconds; when the session is enabled the [trace.*]
    gauges are published into the engine registry at the end of the
    run. Raises [Invalid_argument] on a non-positive fleet dimension, a
    negative cost parameter, or an [slo_target] outside (0,1). *)
