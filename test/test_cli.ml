(* Smoke tests for the command-line executables. Test binaries run
   with the build directory for this folder as their cwd, so the
   executables are reachable at ../bin and ../bench. *)

let run_capture command =
  let output_file = Filename.temp_file "nvcli" ".out" in
  let status = Sys.command (Printf.sprintf "%s > %s 2>&1" command output_file) in
  let ic = open_in_bin output_file in
  let n = in_channel_length ic in
  let output = really_input_string ic n in
  close_in ic;
  Sys.remove output_file;
  (status, output)

let write_temp_program source =
  let path = Filename.temp_file "nvcli" ".mc" in
  let oc = open_out path in
  output_string oc source;
  close_out oc;
  path

let contains haystack needle =
  let n = String.length needle in
  let rec scan i =
    i + n <= String.length haystack && (String.sub haystack i n = needle || scan (i + 1))
  in
  scan 0

let hello_program =
  {|int main(void) {
      write_str(1, "hello from the guest\n");
      return 0;
    }|}

let uid_program =
  {|uid_t worker = 33;
    int main(void) {
      if (seteuid(worker) != 0) { return 1; }
      return 0;
    }|}

let test_minicc_run () =
  let path = write_temp_program hello_program in
  let status, output = run_capture (Printf.sprintf "../bin/minicc.exe %s" path) in
  Sys.remove path;
  Alcotest.(check int) "exit 0" 0 status;
  Alcotest.(check bool) "guest stdout" true (contains output "hello from the guest")

let test_minicc_ast () =
  let path = write_temp_program uid_program in
  let status, output =
    run_capture (Printf.sprintf "../bin/minicc.exe -a ast --no-runtime %s" path)
  in
  Sys.remove path;
  Alcotest.(check int) "exit 0" 0 status;
  Alcotest.(check bool) "uid_t kept" true (contains output "uid_t worker = 33;")

let test_minicc_variant_source () =
  let path = write_temp_program uid_program in
  let status, output =
    run_capture (Printf.sprintf "../bin/minicc.exe -a variant-source --no-runtime %s" path)
  in
  Sys.remove path;
  Alcotest.(check int) "exit 0" 0 status;
  Alcotest.(check bool) "constant reexpressed" true
    (contains output (string_of_int (33 lxor 0x7FFFFFFF)))

let test_minicc_rejects_bad_program () =
  let path = write_temp_program "int main(void) { return missing; }" in
  let status, _ = run_capture (Printf.sprintf "../bin/minicc.exe --no-runtime %s" path) in
  Sys.remove path;
  Alcotest.(check bool) "nonzero exit" true (status <> 0)

let test_nvexec_uid_diversity () =
  let path = write_temp_program uid_program in
  let status, output =
    run_capture (Printf.sprintf "../bin/nvexec.exe -v uid-diversity %s" path)
  in
  Sys.remove path;
  Alcotest.(check int) "exit 0" 0 status;
  Alcotest.(check bool) "reports variation" true (contains output "uid-diversity")

let test_nvexec_trace () =
  let path = write_temp_program uid_program in
  let status, output =
    run_capture (Printf.sprintf "../bin/nvexec.exe -v uid-diversity --trace %s" path)
  in
  Sys.remove path;
  Alcotest.(check int) "exit 0" 0 status;
  Alcotest.(check bool) "seteuid traced" true (contains output "[seteuid]")

(* The Table 2 attack as a standalone guest: the strcpy NUL terminator
   and 'A' bytes overrun buf into the adjacent worker UID word, so
   both variants hold the same raw (un-reexpressed) value and the
   first detection call on it diverges. *)
let overflow_program =
  {|char buf[8];
    uid_t worker = 33;
    int main(void) {
      strcpy(buf, "AAAAAAAAAAAA");
      if (worker == 0) { return 2; }
      if (seteuid(worker) != 0) { return 1; }
      return 0;
    }|}

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let test_nvexec_trace_out () =
  let path = write_temp_program overflow_program in
  let trace_path = Filename.temp_file "nvcli" ".json" in
  let status, output =
    run_capture
      (Printf.sprintf "../bin/nvexec.exe -v uid-diversity --trace-out %s %s" trace_path
         path)
  in
  Sys.remove path;
  let trace = read_file trace_path in
  Sys.remove trace_path;
  Alcotest.(check int) "alarm exit code" 3 status;
  Alcotest.(check bool) "alarm reported" true (contains output "ALARM: cc_eq");
  (* Valid JSON (parse with the same parser the library emits for),
     Chrome trace-event shaped, divergence visible in the final
     events, forensics attached. *)
  (match Nv_util.Metrics.Json.of_string trace with
  | Error e -> Alcotest.failf "trace-out is not valid JSON: %s" e
  | Ok json ->
    Alcotest.(check bool) "has traceEvents" true
      (Nv_util.Metrics.Json.member "traceEvents" json <> None);
    Alcotest.(check bool) "has forensics" true
      (Nv_util.Metrics.Json.member "forensics" json <> None));
  Alcotest.(check bool) "divergence rendezvous in events" true
    (contains trace "rendezvous:cc_eq");
  Alcotest.(check bool) "alarm instant in events" true (contains trace "alarm:arg");
  Alcotest.(check bool) "mismatched canonical value kept" true
    (contains trace "0x41414141")

let test_attack_lab_list () =
  let status, output = run_capture "../bin/attack_lab.exe --list" in
  Alcotest.(check int) "exit 0" 0 status;
  Alcotest.(check bool) "lists overflow attack" true (contains output "uid-null-overflow");
  Alcotest.(check bool) "lists injection" true (contains output "stack-code-injection")

let test_attack_lab_single_cell () =
  let status, output =
    run_capture "../bin/attack_lab.exe --attack uid-null-overflow --config config4"
  in
  Alcotest.(check int) "exit 0 (not escalated)" 0 status;
  Alcotest.(check bool) "detected" true (contains output "DETECTED")

let test_attack_lab_forensics () =
  let out_path = Filename.temp_file "nvcli" ".json" in
  let status, output =
    run_capture
      (Printf.sprintf
         "../bin/attack_lab.exe --attack uid-null-overflow --config config4 \
          --forensics %s"
         out_path)
  in
  let dump = read_file out_path in
  Sys.remove out_path;
  Alcotest.(check int) "exit 0" 0 status;
  Alcotest.(check bool) "cell verdict printed" true (contains output "DETECTED");
  Alcotest.(check bool) "forensics bundle written" true (contains dump "\"forensics\"");
  Alcotest.(check bool) "alarm class in bundle" true (contains dump "\"class\":\"arg\"")

let test_bench_table1 () =
  let status, output = run_capture "../bench/main.exe table1" in
  Alcotest.(check int) "exit 0" 0 status;
  Alcotest.(check bool) "prints the table" true (contains output "UID Variation (this paper)");
  Alcotest.(check bool) "checks properties" true (contains output "disjointness 100000/100000")

let test_bench_unknown_report () =
  let status, _ = run_capture "../bench/main.exe nonsense" in
  Alcotest.(check bool) "nonzero" true (status <> 0)

let test_nvexec_metrics_dump () =
  let path = write_temp_program uid_program in
  let status, output =
    run_capture (Printf.sprintf "../bin/nvexec.exe -v uid-diversity --metrics text %s" path)
  in
  Sys.remove path;
  Alcotest.(check int) "exit 0" 0 status;
  Alcotest.(check bool) "rendezvous counter" true (contains output "monitor.rendezvous");
  Alcotest.(check bool) "check counter" true (contains output "monitor.checks.performed");
  Alcotest.(check bool) "relaxed-check counter" true
    (contains output "monitor.relaxed_checks");
  Alcotest.(check bool) "deferred-batch histogram" true
    (contains output "monitor.deferred_batch_size");
  Alcotest.(check bool) "kernel counter" true (contains output "kernel.syscalls")

let test_bench_results_json () =
  let json_path = Filename.temp_file "nvcli" ".json" in
  let status, _ = run_capture (Printf.sprintf "../bench/main.exe bench %s" json_path) in
  Alcotest.(check int) "exit 0" 0 status;
  let ic = open_in_bin json_path in
  let n = in_channel_length ic in
  let json = really_input_string ic n in
  close_in ic;
  Sys.remove json_path;
  Alcotest.(check bool) "per-config throughput" true (contains json "throughput_kb_s");
  Alcotest.(check bool) "monitor check counters" true (contains json "checks_performed");
  Alcotest.(check bool) "all configs present" true (contains json "config4");
  Alcotest.(check bool) "fleet row present" true (contains json "\"fleet\"");
  Alcotest.(check bool) "fleet tail latency" true (contains json "latency_p999_ms");
  Alcotest.(check bool) "fleet error budget" true (contains json "error_budget_used")

let test_fleetsim_smoke () =
  let status, output =
    run_capture
      "../bin/fleetsim.exe --replicas 2 --rate 150 --duration 2 --users 5000 \
       --attacks-per-10k 5 --seed 7"
  in
  Alcotest.(check int) "exit 0" 0 status;
  Alcotest.(check bool) "fleet header" true (contains output "fleet: 2 replicas");
  Alcotest.(check bool) "population line" true (contains output "5005 passwd entries");
  Alcotest.(check bool) "latency line" true (contains output "latency: p50");
  Alcotest.(check bool) "slo line" true (contains output "availability")

let test_fleetsim_trace_and_log_level () =
  let trace_path = Filename.temp_file "nvcli" ".json" in
  let status, output =
    run_capture
      (Printf.sprintf
         "../bin/fleetsim.exe --replicas 2 --rate 150 --duration 2 --users 5000 \
          --attacks-per-10k 50 --seed 7 --log-level info --trace-out %s"
         trace_path)
  in
  let trace = read_file trace_path in
  Sys.remove trace_path;
  Alcotest.(check int) "exit 0" 0 status;
  Alcotest.(check bool) "fleet header" true (contains output "fleet: 2 replicas");
  (match Nv_util.Metrics.Json.of_string trace with
  | Error e -> Alcotest.failf "fleet trace-out is not valid JSON: %s" e
  | Ok json ->
    Alcotest.(check bool) "has traceEvents" true
      (Nv_util.Metrics.Json.member "traceEvents" json <> None));
  Alcotest.(check bool) "replica health transitions traced" true
    (contains trace "health:");
  Alcotest.(check bool) "replica lanes named" true (contains trace "replica 0")

let test_fleetsim_deterministic_across_parallel () =
  let invoke parallel =
    run_capture
      (Printf.sprintf
         "../bin/fleetsim.exe --replicas 2 --rate 150 --duration 2 --users 5000 \
          --seed 7 --parallel %s"
         parallel)
  in
  let status_seq, seq = invoke "off" in
  let status_par, par = invoke "on" in
  Alcotest.(check int) "seq exit 0" 0 status_seq;
  Alcotest.(check int) "par exit 0" 0 status_par;
  Alcotest.(check string) "identical fleet reports" seq par

let () =
  Alcotest.run "nv_cli"
    [
      ( "minicc",
        [
          Alcotest.test_case "run" `Quick test_minicc_run;
          Alcotest.test_case "ast" `Quick test_minicc_ast;
          Alcotest.test_case "variant source" `Quick test_minicc_variant_source;
          Alcotest.test_case "rejects bad program" `Quick test_minicc_rejects_bad_program;
        ] );
      ( "nvexec",
        [
          Alcotest.test_case "uid diversity" `Quick test_nvexec_uid_diversity;
          Alcotest.test_case "trace" `Quick test_nvexec_trace;
          Alcotest.test_case "trace-out" `Quick test_nvexec_trace_out;
          Alcotest.test_case "metrics dump" `Quick test_nvexec_metrics_dump;
        ] );
      ( "attack_lab",
        [
          Alcotest.test_case "list" `Quick test_attack_lab_list;
          Alcotest.test_case "single cell" `Quick test_attack_lab_single_cell;
          Alcotest.test_case "forensics dump" `Quick test_attack_lab_forensics;
        ] );
      ( "bench",
        [
          Alcotest.test_case "table1" `Quick test_bench_table1;
          Alcotest.test_case "unknown report" `Quick test_bench_unknown_report;
          Alcotest.test_case "bench results json" `Quick test_bench_results_json;
        ] );
      ( "fleetsim",
        [
          Alcotest.test_case "smoke" `Quick test_fleetsim_smoke;
          Alcotest.test_case "trace-out and log-level" `Quick
            test_fleetsim_trace_and_log_level;
          Alcotest.test_case "seq/par identical" `Quick
            test_fleetsim_deterministic_across_parallel;
        ] );
    ]
