examples/unshared_files.ml: Array Format List Nv_core Nv_minic Nv_os Nv_transform Nv_vm Printf String
