(** Byte-addressable segmented guest memory.

    A segment maps the absolute address range [\[base, base + size)] to a
    backing byte array. Any access outside the segment raises
    {!Fault}; this is how address-space partitioning turns an injected
    absolute address into a detectable failure: an address that is
    mapped in variant 0's segment is unmapped in variant 1's.

    Words are stored little-endian. *)

type t

type access = Read | Write | Execute

exception Fault of { addr : int; access : access }
(** Raised on any access outside [\[base, base+size)]. *)

val create : base:int -> size:int -> t
(** Fresh zeroed segment. [base] and [size] must be non-negative and
    [base + size <= 2^32], otherwise [Invalid_argument]. *)

val base : t -> int
val size : t -> int

val in_range : t -> int -> bool
(** Whether an absolute address falls inside the segment. *)

val to_offset : t -> int -> int
(** Canonicalize an absolute address to a segment-relative offset (the
    paper's canonicalization function for address partitioning). Raises
    [Fault] if out of range. *)

type snapshot
(** A checkpoint of a segment's bytes (the base/size geometry is not
    captured; a snapshot can only be restored into the segment it was
    taken from, or one with the same size). *)

val snapshot : t -> snapshot
(** Copy of the full segment contents. *)

val restore : t -> snapshot -> unit
(** Overwrite the segment with the snapshot bytes and invalidate the
    whole decoded-instruction cache and every registered compiled
    block (the rollback may change code bytes, so every cached decode
    is suspect). The slot array itself is kept and bulk-reset rather
    than reallocated, so recovery-heavy campaigns do not churn the
    major heap. Raises [Invalid_argument] on a segment-size
    mismatch. *)

val load_byte : t -> int -> int
val store_byte : t -> int -> int -> unit

val load_word : t -> int -> Word.t
(** Little-endian 32-bit load; all four bytes must be in range. *)

val store_word : t -> int -> Word.t -> unit

val load_bytes : t -> addr:int -> len:int -> bytes
val store_bytes : t -> addr:int -> bytes -> unit

val load_cstring : t -> addr:int -> max_len:int -> string
(** Read a NUL-terminated string starting at [addr]; stops at NUL or
    after [max_len] bytes (whichever comes first; the NUL is not
    included). Faults if it runs off the segment before terminating. *)

val store_cstring : t -> addr:int -> string -> unit
(** Write the string followed by a NUL byte. The whole destination
    range is validated before any byte is written, so a faulting store
    leaves guest memory untouched. *)

val exec_byte : t -> int -> int
(** Like {!load_byte} but faults carry [Execute] access, used by the
    CPU's fetch path so traces distinguish fetch faults. *)

(** {1 Decoded instruction fetch}

    The segment keeps a lazily filled cache of decoded instructions,
    one slot per [Isa.instr_size]-aligned window. Every store
    ({!store_byte}, {!store_word}, {!store_bytes}, {!store_cstring})
    invalidates exactly the slots it overlaps, so self-modifying code
    and injected code are re-decoded (and re-tag-checked) on their next
    fetch — attack detection is byte-for-byte identical to the uncached
    decoder. *)

val fetch_decoded : t -> int -> (int * Isa.t, Isa.decode_error) result
(** Decode the instruction at an absolute address, returning
    [(tag, instruction)] from the cache when possible. Raises {!Fault}
    with [Execute] access (at the first out-of-range byte) when the
    [Isa.instr_size]-byte window is not fully mapped. Unaligned
    addresses (relative to the segment base) are decoded without
    caching. *)

val fetch_reference : t -> int -> (int * Isa.t, Isa.decode_error) result
(** The uncached reference fetch path: byte-at-a-time Execute-checked
    loads plus a fresh decode. Used by differential tests and the
    [hostperf] benchmark as the pre-cache baseline; semantics are
    identical to {!fetch_decoded}. *)

(** {1 Execution engine selection}

    The VM has three execution tiers sharing one observable semantics:
    the byte-at-a-time {!fetch_reference} decoder, the predecoded
    icache, and the basic-block compiler (see [Block]). The segment
    records which tier its CPU should run; [Block] implies the icache
    for fetches that fall outside a compiled block. *)

type engine = Reference | Icache | Block

val set_engine : t -> engine -> unit

val engine : t -> engine

val engine_of_string : string -> engine option
(** Parses ["reference" | "icache" | "block"]. *)

val engine_to_string : engine -> string

val default_engine : unit -> engine
(** The engine newly created segments start in: [NV_ENGINE] when set to
    a recognized name, otherwise {!Icache}. *)

val set_icache_enabled : t -> bool -> unit
(** Compatibility toggle predating {!set_engine}: [true] selects
    {!Icache}, [false] selects {!Reference}. *)

(** {1 Compiled-block registry}

    The block compiler registers each compiled block's slot span here;
    every store whose range intersects a registered span flips the
    block's shared validity cell, so self-modifying and injected code
    always re-enter the decoder (and the tag check) on their next
    dispatch. *)

val max_block_slots : int
(** Upper bound on a registered block's span in slots; bounds the
    store-path back-scan. *)

val register_block : t -> slot:int -> slots:int -> bool ref
(** Register a block spanning [slots] instruction slots starting at
    entry slot [slot], replacing (and invalidating) any block
    previously registered at that entry. Returns the shared validity
    cell: it stays [true] until a store intersects the span, the
    segment is {!restore}d, or the entry is re-registered. *)

val block_invalidations : t -> int
(** How many registered blocks have been invalidated by stores or
    rollbacks since the segment was created. *)

(** {1 Raw access for the block compiler}

    Compiled blocks inline their guest loads and stores directly over
    the backing bytes; anything out of range falls back to
    {!load_word}/{!store_word} for the exact fault. These two values
    exist only for that fast path — all other clients go through the
    checked accessors above. *)

val bytes : t -> Bytes.t
(** The live backing store. The reference is stable for the lifetime of
    the segment ({!restore} blits in place); offset [o] maps to address
    [base + o]. Callers that write through it must follow with
    {!invalidate_window}. *)

val invalidate_window : t -> int -> int -> unit
(** [invalidate_window t off len] performs the store-side cache
    maintenance for a write of [len] bytes at segment offset [off]:
    drops overlapped icache slots and invalidates intersecting
    registered blocks. O(1) — two compares — for stores outside the
    decoded region. *)
