type 'a entry = { key : float; seq : int; value : 'a }

(* Slots hold [Some entry] below [len] and [None] above it, so popped
   values (closures, in the engine's case) become unreachable as soon
   as they leave the heap instead of lingering in vacated slots for
   the heap's lifetime. *)
type 'a t = { mutable data : 'a entry option array; mutable len : int }

let create () = { data = [||]; len = 0 }

let is_empty t = t.len = 0

let size t = t.len

let less a b = a.key < b.key || (a.key = b.key && a.seq < b.seq)

let get t i = match t.data.(i) with Some e -> e | None -> assert false

let grow t =
  let capacity = Array.length t.data in
  if t.len = capacity then begin
    let new_capacity = max 16 (2 * capacity) in
    let data = Array.make new_capacity None in
    Array.blit t.data 0 data 0 t.len;
    t.data <- data
  end

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if less (get t i) (get t parent) then begin
      let tmp = t.data.(i) in
      t.data.(i) <- t.data.(parent);
      t.data.(parent) <- tmp;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let left = (2 * i) + 1 and right = (2 * i) + 2 in
  let smallest = ref i in
  if left < t.len && less (get t left) (get t !smallest) then smallest := left;
  if right < t.len && less (get t right) (get t !smallest) then smallest := right;
  if !smallest <> i then begin
    let tmp = t.data.(i) in
    t.data.(i) <- t.data.(!smallest);
    t.data.(!smallest) <- tmp;
    sift_down t !smallest
  end

let push t ~key ~seq value =
  grow t;
  t.data.(t.len) <- Some { key; seq; value };
  t.len <- t.len + 1;
  sift_up t (t.len - 1)

(* Halve the backing array when occupancy drops below a quarter, so a
   burst of scheduled events does not pin its high-water capacity for
   the rest of a long run. *)
let shrink t =
  let capacity = Array.length t.data in
  if capacity > 16 && t.len * 4 < capacity then
    t.data <- Array.sub t.data 0 (max 16 (capacity / 2))

let pop t =
  if t.len = 0 then None
  else begin
    let root = get t 0 in
    t.len <- t.len - 1;
    if t.len > 0 then begin
      t.data.(0) <- t.data.(t.len);
      t.data.(t.len) <- None;
      sift_down t 0
    end
    else t.data.(0) <- None;
    shrink t;
    Some (root.key, root.seq, root.value)
  end

let peek t =
  if t.len = 0 then None
  else begin
    let root = get t 0 in
    Some (root.key, root.seq, root.value)
  end
