(** A small two-pass textual assembler.

    Used by tests, examples, and attack payload construction to build
    {!Image.t} values without going through the mini-C compiler.

    Syntax (one statement per line; [;] starts a comment):

    {v
    .text                     ; switch to code section (default)
    .data                     ; switch to data section
    .entry main               ; entry label (default: first instruction)
    main:                     ; label (code or data, per section)
      mov r1, #42             ; immediate move (also: mov r1, r2)
      la r1, greeting         ; load address of a label (relocated)
      ld r1, [r2+4]           ; word load / st, ldb, stb likewise
      add r1, r2, #1          ; add sub mul div mod and or xor shl shr sar
      seteq r1, r2, r3        ; set<cc>, cc in eq ne lt le gt ge ltu leu gtu geu
      breq r1, r2, main       ; br<cc> rs, rt, label
      jmp main
      call main
      jmpr r1
      callr r1
      push r1
      pop r1
      ret
      syscall
      halt
      nop
    .data
    greeting: .asciz "hello"  ; NUL-terminated string
    table: .word 1 2 3        ; 32-bit words
    buf: .space 64            ; zeroed bytes
    bytes: .byte 1 2 255      ; raw bytes
    v}

    Numbers may be decimal (optionally negative) or [0x]-prefixed hex. *)

exception Error of { line : int; message : string }

val assemble : string -> Image.t
(** Assemble a full program source. Raises {!Error} on any syntactic or
    semantic problem (unknown mnemonic, undefined or duplicate label,
    register out of range...). *)
