lib/vm/image.ml: Array Bytes Cpu Isa List Memory Printf Word
