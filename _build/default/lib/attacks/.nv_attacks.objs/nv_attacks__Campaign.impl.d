lib/attacks/campaign.ml: Array Format List Nv_core Nv_httpd Nv_os Nv_util Payloads Printf String
