(* The benchmark / experiment harness.

   Every table and figure of the paper's evaluation has (a) a report
   generator that regenerates the artifact from this reproduction, and
   (b) a Bechamel micro-benchmark measuring its harness kernel.

     dune exec bench/main.exe              all reports (Tables 1-3,
                                           Figures 1-2, X1-X3)
     dune exec bench/main.exe -- table3    one report
     dune exec bench/main.exe -- micro     Bechamel measurements *)

module Word = Nv_vm.Word
module Variation = Nv_core.Variation
module Reexpression = Nv_core.Reexpression
module Monitor = Nv_core.Monitor
module Nsystem = Nv_core.Nsystem
module Deploy = Nv_httpd.Deploy
module Ut = Nv_transform.Uid_transform

let section title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

module Json = Nv_util.Metrics.Json

(* BENCH_results.json is shared by the deterministic [bench] and
   [matrix] reports and the wall-clock [hostperf] report: each updates
   its own top-level keys and preserves the others', so one file
   carries the pinned counters, the detection-coverage table and the
   perf trajectory. *)
let read_json_obj path =
  if Sys.file_exists path then begin
    let ic = open_in_bin path in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    match Json.of_string s with Ok (Json.Obj fields) -> fields | Ok _ | Error _ -> []
  end
  else []

let update_json_obj path updates =
  let keep =
    List.filter (fun (k, _) -> not (List.mem_assoc k updates)) (read_json_obj path)
  in
  let oc = open_out path in
  output_string oc (Json.to_string (Json.Obj (keep @ updates)));
  output_char oc '\n';
  close_out oc

(* ------------------------------------------------------------------ *)
(* Table 1: reexpression functions and their properties                *)
(* ------------------------------------------------------------------ *)

let report_table1 () =
  section "Table 1: Reexpression Functions";
  Nv_util.Tablefmt.print
    ~align:[| Nv_util.Tablefmt.Left; Nv_util.Tablefmt.Left; Nv_util.Tablefmt.Left;
              Nv_util.Tablefmt.Left |]
    ~header:[ "Variation"; "Target Type"; "Reexpression"; "Inverse" ]
    ~rows:
      (List.map
         (fun r ->
           [
             r.Reexpression.variation;
             r.Reexpression.target_type;
             r.Reexpression.r0 ^ " ; " ^ r.Reexpression.r1;
             r.Reexpression.r0_inv ^ " ; " ^ r.Reexpression.r1_inv;
           ])
         Reexpression.table1)
    ();
  (* Verify the UID row's two obligations at many points. *)
  let prng = Nv_util.Prng.create ~seed:2008 in
  let r0 = Reexpression.uid_for_variant 0 in
  let r1 = Reexpression.uid_for_variant 1 in
  let trials = 100_000 in
  let inverse_ok = ref 0 and disjoint_ok = ref 0 in
  for _ = 1 to trials do
    let x = Word.mask (Int64.to_int (Nv_util.Prng.bits64 prng)) in
    if Reexpression.inverse_holds r0 x && Reexpression.inverse_holds r1 x then
      incr inverse_ok;
    if Reexpression.disjoint_at r0 r1 x then incr disjoint_ok
  done;
  Printf.printf
    "UID variation properties over %d random words: inverse %d/%d, disjointness %d/%d\n"
    trials !inverse_ok trials !disjoint_ok trials;
  let stored0 = r0.Reexpression.encode 33 lxor 0x80000000 in
  let stored1 = r1.Reexpression.encode 33 lxor 0x80000000 in
  Printf.printf
    "known weakness: flipping only bit 31 of both stored values decodes to 0x%08X in \
     both variants (undetectable)\n"
    (r0.Reexpression.decode stored0);
  assert (r0.Reexpression.decode stored0 = r1.Reexpression.decode stored1);
  (* The portfolio: every shipped variation passes the machine-checked
     witnesses — inverse + declared form per variant, all-pairs
     disjointness across variants. *)
  print_newline ();
  Printf.printf "portfolio witnesses (selfcheck per variant, all-pairs disjointness):\n";
  List.iter
    (fun (name, v) ->
      let specs =
        Array.map (fun s -> s.Variation.uid) v.Variation.variants
      in
      Array.iter
        (fun spec ->
          match Reexpression.selfcheck spec with
          | Ok () -> ()
          | Error x -> failwith (Printf.sprintf "%s: selfcheck failed at 0x%08X" name x))
        specs;
      (match Reexpression.all_pairs_disjoint specs with
      | Ok () -> ()
      | Error (i, j, _) ->
        failwith (Printf.sprintf "%s: variants %d/%d not disjoint" name i j));
      Printf.printf "  %-22s %d variants: inverse OK, all pairs PROVEN disjoint\n" name
        (Variation.count v))
    Variation.portfolio;
  (* And the regression the per-variant keys fix: the pre-fix shared
     key loses disjointness for the (1, 2) pair. *)
  (match
     Reexpression.all_pairs_disjoint
       (Array.map (fun s -> s.Variation.uid) (Variation.shared_key 3).Variation.variants)
   with
  | Error (1, 2, Some x) ->
    Printf.printf
      "  %-22s REFUTED: pre-fix shared key collides on pair (1,2) at 0x%08X\n"
      "uid-shared-key-3" x
  | _ -> failwith "shared_key 3 unexpectedly passed the disjointness witness")

(* ------------------------------------------------------------------ *)
(* Table 2: detection system calls                                     *)
(* ------------------------------------------------------------------ *)

let table2_demo_source =
  {|int main(void) {
      uid_t me = getuid();
      uid_t checked = uid_value(me);
      int same_path = cond_chk(1);
      if (cc_eq(me, checked) == 0) { return 1; }
      if (cc_neq(me, checked) == 1) { return 2; }
      if (cc_lt(me, checked) == 1) { return 3; }
      if (cc_leq(me, checked) == 0) { return 4; }
      if (cc_gt(me, checked) == 1) { return 5; }
      if (cc_geq(me, checked) == 0) { return 6; }
      if (same_path == 0) { return 7; }
      return 0;
    }|}

let run_table2_demo () =
  let sys =
    Nsystem.of_one_image ~variation:Variation.uid_diversity
      (Nv_minic.Codegen.compile_source table2_demo_source)
  in
  let events = ref [] in
  Monitor.set_tracer (Nsystem.monitor sys) (fun e ->
      if Nv_os.Syscall.is_detection_call e.Monitor.ev_syscall then
        events := (Nv_os.Syscall.name e.Monitor.ev_syscall, e.Monitor.ev_note) :: !events);
  let outcome = Nsystem.run sys in
  (outcome, List.rev !events)

let report_table2 () =
  section "Table 2: Detection System Calls";
  Nv_util.Tablefmt.print
    ~align:[| Nv_util.Tablefmt.Left; Nv_util.Tablefmt.Left |]
    ~header:[ "Function Signature"; "Description" ]
    ~rows:
      [
        [ "uid_t uid_value(uid_t)";
          "Compares parameter value (across variants) and returns passed value." ];
        [ "bool cond_chk(bool)"; "Checks conditional value given between variants is the same." ];
        [ "bool cc_eq(uid_t, uid_t) .. cc_geq"; "Compares parameters and returns the truth value." ];
      ]
    ();
  let outcome, events = run_table2_demo () in
  Printf.printf "live demo under the 2-variant UID variation (exit %s):\n"
    (match outcome with
    | Monitor.Exited n -> string_of_int n
    | Monitor.Alarm r -> "ALARM " ^ Nv_core.Alarm.to_string r
    | _ -> "?");
  List.iter (fun (name, note) -> Printf.printf "  %-10s %s\n" name note) events

(* ------------------------------------------------------------------ *)
(* Table 3: performance                                                *)
(* ------------------------------------------------------------------ *)

let report_table3 () =
  section "Table 3: Performance Results (simulated testbed)";
  match Nv_workload.Table3.run ~requests:40 () with
  | Error e -> Printf.printf "FAILED: %s\n" e
  | Ok rows ->
    print_string (Nv_workload.Table3.render rows);
    print_newline ();
    print_endline "Shape comparison against the published Table 3 (relative to config1 or";
    print_endline "config3, as the paper reports):";
    let cell config f =
      let row = List.find (fun r -> r.Nv_workload.Table3.config = config) rows in
      f row.Nv_workload.Table3.cell
    in
    let ratios label ours paper =
      Printf.printf "  %-42s ours %+6.1f%%  paper %+6.1f%%\n" label (100. *. ours)
        (100. *. paper)
    in
    let sat c = cell c (fun x -> x.Nv_workload.Table3.sat.Nv_workload.Webbench.throughput_kb_s) in
    let unsat c = cell c (fun x -> x.Nv_workload.Table3.unsat.Nv_workload.Webbench.throughput_kb_s) in
    let lat_sat c = cell c (fun x -> x.Nv_workload.Table3.sat.Nv_workload.Webbench.latency_ms) in
    let lat_unsat c = cell c (fun x -> x.Nv_workload.Table3.unsat.Nv_workload.Webbench.latency_ms) in
    let c1 = Deploy.Unmodified_single and c2 = Deploy.Transformed_single in
    let c3 = Deploy.Two_variant_address and c4 = Deploy.Two_variant_uid in
    ratios "config2 vs 1, unsat throughput" ((unsat c2 -. unsat c1) /. unsat c1) (-0.037);
    ratios "config3 vs 1, unsat throughput" ((unsat c3 -. unsat c1) /. unsat c1) (-0.122);
    ratios "config3 vs 1, unsat latency" ((lat_unsat c3 -. lat_unsat c1) /. lat_unsat c1) 0.129;
    ratios "config3 vs 1, sat throughput" ((sat c3 -. sat c1) /. sat c1) (-0.563);
    ratios "config3 vs 1, sat latency" ((lat_sat c3 -. lat_sat c1) /. lat_sat c1) 1.289;
    ratios "config4 vs 3, unsat throughput" ((unsat c4 -. unsat c3) /. unsat c3) (-0.011);
    ratios "config4 vs 3, sat throughput" ((sat c4 -. sat c3) /. sat c3) (-0.045);
    ratios "config4 vs 3, sat latency" ((lat_sat c4 -. lat_sat c3) /. lat_sat c3) 0.030

(* ------------------------------------------------------------------ *)
(* Figure 1: two-variant address partitioning                          *)
(* ------------------------------------------------------------------ *)

let figure1_attack_source =
  Printf.sprintf "int main(void) { int *p = (int*)0x%X; return *p; }"
    (Variation.low_base + 64)

let run_figure1 () =
  let image = Nv_minic.Codegen.compile_source figure1_attack_source in
  let benign =
    Nsystem.run (Nsystem.of_one_image ~variation:Variation.single image)
  in
  let partitioned =
    Nsystem.run (Nsystem.of_one_image ~variation:Variation.address_partition image)
  in
  (benign, partitioned)

let report_figure1 () =
  section "Figure 1: Two-Variant Address Partitioning";
  Printf.printf
    "attack input: dereference of the absolute address 0x%08X (valid in variant 0's \
     partition only)\n"
    (Variation.low_base + 64);
  let benign, partitioned = run_figure1 () in
  (match benign with
  | Monitor.Exited _ ->
    Printf.printf
      "  single process      : proceeds (the injected address is dereferenced) - attack \
       lands\n"
  | _ -> Printf.printf "  single process      : unexpected\n");
  match partitioned with
  | Monitor.Alarm reason ->
    Printf.printf "  2-variant partition : ALARM - %s\n" (Nv_core.Alarm.to_string reason)
  | _ -> Printf.printf "  2-variant partition : unexpected\n"

(* ------------------------------------------------------------------ *)
(* Figure 2: data diversity at the interpreter boundaries              *)
(* ------------------------------------------------------------------ *)

let run_figure2 collect =
  match Deploy.build Deploy.Two_variant_uid with
  | Error e -> failwith e
  | Ok sys ->
    Monitor.set_tracer (Nsystem.monitor sys) collect;
    (match Nsystem.serve sys (Nv_httpd.Http.get "/") with
    | Nsystem.Served _ -> ()
    | Nsystem.Stopped _ -> failwith "figure2: serving failed");
    sys

let report_figure2 () =
  section "Figure 2: N-Variant System with Data Diversity (request trace)";
  print_endline
    "one request through the case-study server under the UID variation;\n\
     every rendezvous shows the canonicalization the monitor performed:";
  let events = ref [] in
  let sys = run_figure2 (fun e -> events := e :: !events) in
  let interesting = [ "open"; "read"; "seteuid"; "geteuid"; "cc_eq"; "write"; "uid_value" ] in
  List.iteri
    (fun i e ->
      let name = Nv_os.Syscall.name e.Monitor.ev_syscall in
      if List.mem name interesting && i < 40 then
        Printf.printf "  [%s] %s\n" name e.Monitor.ev_note)
    (List.rev !events);
  let stats = Monitor.stats (Nsystem.monitor sys) in
  Printf.printf
    "monitor counters: %d rendezvous; %s instructions; %d input bytes replicated; %d \
     output writes checked\n"
    stats.Monitor.st_rendezvous
    (String.concat "+"
       (Array.to_list (Array.map string_of_int stats.Monitor.st_instructions)))
    stats.Monitor.st_input_bytes_replicated stats.Monitor.st_output_writes_checked

(* ------------------------------------------------------------------ *)
(* X1: transformation change counts (the paper's 73 Apache changes)    *)
(* ------------------------------------------------------------------ *)

let report_changes () =
  section "X1: Source Transformation Change Counts (vs. the paper's Apache study)";
  match Deploy.transform_report () with
  | Error e -> Printf.printf "FAILED: %s\n" e
  | Ok r ->
    Nv_util.Tablefmt.print
      ~header:[ "category"; "this server"; "paper (Apache)" ]
      ~rows:
        [
          [ "reexpressed UID constants"; string_of_int r.Ut.constants; "15" ];
          [ "uid_value exposures"; string_of_int r.Ut.uid_value_calls; "16" ];
          [ "comparison exposures (cc_*)"; string_of_int r.Ut.cc_calls; "22" ];
          [ "conditional checks (cond_chk)"; string_of_int r.Ut.cond_chks; "20" ];
          [ "log scrubs"; string_of_int r.Ut.log_scrubs; "1 (manual)" ];
          [ "total"; string_of_int (Ut.total_changes r); "73" ];
        ]
      ();
    print_endline
      "(our server is ~20x smaller than Apache; the point is the same categories\n\
       appear, found fully automatically)"

(* ------------------------------------------------------------------ *)
(* X2: attack matrix                                                   *)
(* ------------------------------------------------------------------ *)

let report_matrix ?(path = "BENCH_results.json") () =
  section "X2: Attack Class x Configuration Detection Matrix";
  let matrix = Nv_attacks.Campaign.run_matrix () in
  print_string (Nv_attacks.Campaign.render_matrix matrix);
  print_endline
    "expected story: UID corruption defeats every deployment except the diversified\n\
     ones; the bit-31 row reproduces the paper's admitted reexpression-key escape\n\
     (closed by the rotation component of composed3/composed4); the guessed-key row\n\
     escalates wherever non-zero variants share one fixed key (config4's published\n\
     key, sharedkey3's pre-fix bug) and is caught by per-variant and per-boot keys;\n\
     the zero-injection row defeats bare rotations (rotonly3) but no composition;\n\
     code injection is stopped by the address partition.";
  let composed_undetected =
    List.filter
      (fun (_, config, _) ->
        List.mem config [ Deploy.Composed_three; Deploy.Composed_four ])
      (Nv_attacks.Campaign.undetected_cells matrix)
  in
  Printf.printf "undetected cells in the composed3/composed4 columns: %d\n"
    (List.length composed_undetected);
  update_json_obj path
    [ ("attack_matrix", Nv_attacks.Campaign.matrix_json matrix) ];
  Printf.printf "attack_matrix written to %s\n" path;
  section "X2b: Same Matrix Under the Recovery Supervisor";
  let recovered =
    Nv_attacks.Campaign.run_matrix ~recover:Nv_core.Supervisor.default_config ()
  in
  print_string (Nv_attacks.Campaign.render_matrix recovered);
  print_endline
    "recovered-vs-halted: every DETECTED cell above should flip to RECOVERED -\n\
     the supervisor rolls back to the last accept-boundary checkpoint, drops the\n\
     attack connection and keeps serving instead of fail-stopping."

(* ------------------------------------------------------------------ *)
(* X3: ablation - cc_* syscalls vs user-space comparisons              *)
(* ------------------------------------------------------------------ *)

let profile_mode mode =
  match Deploy.build ~mode Deploy.Two_variant_uid with
  | Error e -> Error e
  | Ok sys -> (
    match Nv_workload.Measure.profile ~requests:30 sys with
    | Error e -> Error e
    | Ok samples ->
      let steady = Array.sub samples 1 (Array.length samples - 1) in
      Ok
        ( Nv_workload.Measure.mean_demand steady,
          Nv_workload.Webbench.run ~variants:2 ~samples:steady Nv_workload.Webbench.saturated
        ))

(* How quickly is the null-overflow corruption detected in each mode?
   Measured in syscall rendezvous between the corrupting request's
   arrival and the alarm. *)
let detection_latency mode =
  match Deploy.build ~mode Deploy.Two_variant_uid with
  | Error e -> Error e
  | Ok sys -> (
    match Nsystem.run sys with
    | Monitor.Blocked_on_accept -> (
      let monitor = Nsystem.monitor sys in
      let before = Monitor.rendezvous_count monitor in
      let conn = Nsystem.connect sys in
      Nv_os.Socket.client_send conn
        (Nv_httpd.Http.get ("/" ^ String.make 63 'A'));
      Nv_os.Socket.client_close conn;
      match Nsystem.run sys with
      | Monitor.Alarm reason ->
        Ok (Monitor.rendezvous_count monitor - before, Nv_core.Alarm.short_label reason)
      | _ -> Error "overflow not detected")
    | _ -> Error "server did not start")

let report_ablation () =
  section "X3: Ablation - detection syscalls (cc_*) vs user-space comparisons";
  (match (detection_latency Ut.Cc_calls, detection_latency Ut.User_space) with
  | Ok (n_cc, _), Ok (n_us, _) ->
    Printf.printf
      "detection latency of the UID null-overflow (rendezvous from request to alarm):\n\
      \  cc_* mode: %d    user-space mode: %d\n\n"
      n_cc n_us
  | Error e, _ | _, Error e -> Printf.printf "latency measurement failed: %s\n" e);
  match (profile_mode Ut.Cc_calls, profile_mode Ut.User_space) with
  | Ok (d_cc, r_cc), Ok (d_us, r_us) ->
    Nv_util.Tablefmt.print
      ~header:[ "mode"; "rendezvous/req"; "sat KB/s"; "sat ms" ]
      ~rows:
        [
          [
            "cc_* syscalls (paper design)";
            string_of_int d_cc.Nv_workload.Measure.rendezvous;
            Printf.sprintf "%.0f" r_cc.Nv_workload.Webbench.throughput_kb_s;
            Printf.sprintf "%.2f" r_cc.Nv_workload.Webbench.latency_ms;
          ];
          [
            "user-space (reversed operators)";
            string_of_int d_us.Nv_workload.Measure.rendezvous;
            Printf.sprintf "%.0f" r_us.Nv_workload.Webbench.throughput_kb_s;
            Printf.sprintf "%.2f" r_us.Nv_workload.Webbench.latency_ms;
          ];
        ]
      ();
    print_endline
      "the user-space mode trades a few syscalls per request for coarser detection:\n\
       corrupted comparisons only surface at the next real UID-bearing kernel call\n\
       (Section 5's discussion of detection precision vs. cost)."
  | Error e, _ | _, Error e -> Printf.printf "FAILED: %s\n" e

(* ------------------------------------------------------------------ *)
(* BENCH_results.json: machine-readable per-configuration results      *)
(* ------------------------------------------------------------------ *)

let json_of_webbench (r : Nv_workload.Webbench.result) =
  Json.Obj
    [
      ("requests", Json.Num (float_of_int r.Nv_workload.Webbench.requests_completed));
      ("throughput_kb_s", Json.Num r.Nv_workload.Webbench.throughput_kb_s);
      ("latency_ms", Json.Num r.Nv_workload.Webbench.latency_ms);
      ("latency_p50_ms", Json.Num r.Nv_workload.Webbench.latency_p50_ms);
      ("latency_p99_ms", Json.Num r.Nv_workload.Webbench.latency_p99_ms);
      ("cpu_utilization", Json.Num r.Nv_workload.Webbench.cpu_utilization);
      ("rendezvous", Json.Num (float_of_int r.Nv_workload.Webbench.rendezvous_total));
    ]

let bench_requests = 12

(* ------------------------------------------------------------------ *)
(* fleet: open-loop serving at a million-user population               *)
(* ------------------------------------------------------------------ *)

let fleet_users = 1_000_000

let fleet_seed = 11

let fleet_replicas = 8

let fleet_spec arrival =
  {
    Nv_workload.Openload.replicas = fleet_replicas;
    arrival;
    duration_s = 30.0;
    users = fleet_users;
    attacks_per_10k = 2;
  }

let fleet_arrivals =
  let rate = 2000.0 in
  [
    Nv_sim.Arrivals.Poisson { rate };
    Nv_sim.Arrivals.Bursty { rate; burst_mean = 16.0; intra_gap_s = 0.0005 };
    Nv_sim.Arrivals.Diurnal { rate; amplitude = 0.6; period_s = 15.0 };
  ]

let json_of_fleet (result : Nv_workload.Openload.result) =
  let r = result.Nv_workload.Openload.fleet in
  let num n = Json.Num (float_of_int n) in
  Json.Obj
    [
      ("model", Json.Str r.Nv_sim.Fleet.model);
      ("arrivals", num r.Nv_sim.Fleet.arrivals);
      ("completed", num r.Nv_sim.Fleet.completed);
      ("rejected", num r.Nv_sim.Fleet.rejected);
      ("dropped", num r.Nv_sim.Fleet.dropped);
      ("in_flight", num r.Nv_sim.Fleet.in_flight);
      ("alarms", num r.Nv_sim.Fleet.alarms);
      ("recoveries", num r.Nv_sim.Fleet.recoveries);
      ("failstops", num r.Nv_sim.Fleet.failstops);
      ("pool_hits", num r.Nv_sim.Fleet.pool_hits);
      ("pool_misses", num r.Nv_sim.Fleet.pool_misses);
      ("goodput_rps", Json.Num r.Nv_sim.Fleet.goodput_rps);
      ("goodput_kb_s", Json.Num (r.Nv_sim.Fleet.goodput_bytes_per_s /. 1024.0));
      ("latency_mean_ms", Json.Num r.Nv_sim.Fleet.latency_mean_ms);
      ("latency_p50_ms", Json.Num r.Nv_sim.Fleet.latency_p50_ms);
      ("latency_p99_ms", Json.Num r.Nv_sim.Fleet.latency_p99_ms);
      ("latency_p999_ms", Json.Num r.Nv_sim.Fleet.latency_p999_ms);
      ("availability", Json.Num r.Nv_sim.Fleet.availability);
      ("error_budget_used", Json.Num r.Nv_sim.Fleet.error_budget_used);
      ("uid_lookups", num result.Nv_workload.Openload.lookups);
      ( "comparisons_per_lookup",
        Json.Num result.Nv_workload.Openload.comparisons_per_lookup );
    ]

let report_fleet ?(path = "BENCH_results.json") () =
  section
    (Printf.sprintf "FLEET: open-loop serving, %d N-variant replicas, %d-user population"
       fleet_replicas fleet_users);
  match Deploy.build Deploy.Two_variant_uid with
  | Error e -> Printf.printf "  FAILED (%s)\n" e
  | Ok sys -> (
    match Nv_workload.Measure.profile ~requests:bench_requests ~seed:fleet_seed sys with
    | Error e -> Printf.printf "  profile FAILED (%s)\n" e
    | Ok samples ->
      let samples = Array.sub samples 1 (Array.length samples - 1) in
      let variants = Variation.count (Deploy.variation Deploy.Two_variant_uid) in
      let entries =
        Nv_workload.Openload.population ~seed:fleet_seed ~users:fleet_users ()
      in
      let _vfs, sizes =
        Nv_workload.Openload.passwd_world ~entries
          ~variation:(Deploy.variation Deploy.Two_variant_uid)
      in
      Printf.printf "  unshared variant files:";
      Array.iteri (fun i n -> Printf.printf " /etc/passwd-%d %d B" i n) sizes;
      print_newline ();
      let rows =
        List.map
          (fun arrival ->
            let result =
              Nv_workload.Openload.run ~seed:fleet_seed ~entries ~variants ~samples
                (fleet_spec arrival)
            in
            let r = result.Nv_workload.Openload.fleet in
            Printf.printf
              "  %-8s %6d reqs: p50 %.2f ms, p99 %.2f ms, p999 %.2f ms, %.0f req/s, \
               avail %.5f, budget %.2f, %.1f cmp/lookup\n"
              r.Nv_sim.Fleet.model r.Nv_sim.Fleet.arrivals r.Nv_sim.Fleet.latency_p50_ms
              r.Nv_sim.Fleet.latency_p99_ms r.Nv_sim.Fleet.latency_p999_ms
              r.Nv_sim.Fleet.goodput_rps r.Nv_sim.Fleet.availability
              r.Nv_sim.Fleet.error_budget_used
              result.Nv_workload.Openload.comparisons_per_lookup;
            json_of_fleet result)
          fleet_arrivals
      in
      update_json_obj path
        [
          ( "fleet",
            Json.Obj
              [
                ("population", Json.Num (float_of_int (List.length entries)));
                ("replicas", Json.Num (float_of_int fleet_replicas));
                ( "variant_file_bytes",
                  Json.List
                    (Array.to_list (Array.map (fun n -> Json.Num (float_of_int n)) sizes))
                );
                ("rows", Json.List rows);
              ] );
        ];
      Printf.printf "wrote %s (fleet rows)\n" path)

let bench_config config =
  match Deploy.build config with
  | Error e -> Error e
  | Ok sys -> (
    match Nv_workload.Measure.profile ~requests:bench_requests sys with
    | Error e -> Error e
    | Ok samples ->
      (* Monitor/kernel counters accumulated over the profiled requests
         (real guest execution, not the queueing simulation). *)
      let reg = Nsystem.metrics sys in
      let counter name =
        Json.Num
          (float_of_int (Option.value ~default:0 (Nv_util.Metrics.find_counter reg name)))
      in
      let variants = Nv_core.Variation.count (Deploy.variation config) in
      let steady = Array.sub samples 1 (Array.length samples - 1) in
      let demand = Nv_workload.Measure.mean_demand steady in
      let unsat =
        Nv_workload.Webbench.run ~variants ~samples:steady Nv_workload.Webbench.unsaturated
      in
      let sat =
        Nv_workload.Webbench.run ~variants ~samples:steady Nv_workload.Webbench.saturated
      in
      Ok
        ( unsat,
          sat,
          Json.Obj
            [
              ("config", Json.Str (Deploy.name config));
              ("description", Json.Str (Deploy.description config));
              ("variants", Json.Num (float_of_int variants));
              ("requests_profiled", Json.Num (float_of_int bench_requests));
              ( "demand",
                Json.Obj
                  [
                    ( "instructions",
                      Json.Num (float_of_int demand.Nv_workload.Measure.instructions) );
                    ( "rendezvous",
                      Json.Num (float_of_int demand.Nv_workload.Measure.rendezvous) );
                    ( "response_bytes",
                      Json.Num (float_of_int demand.Nv_workload.Measure.response_bytes) );
                  ] );
              ( "monitor",
                Json.Obj
                  [
                    ("rendezvous", counter "monitor.rendezvous");
                    ("checks_performed", counter "monitor.checks.performed");
                    ("checks_failed", counter "monitor.checks.failed");
                    ("kernel_syscalls", counter "kernel.syscalls");
                    ("input_bytes_replicated", counter "monitor.input_bytes_replicated");
                    ("output_writes_checked", counter "monitor.output_writes_checked");
                  ] );
              ("unsaturated", json_of_webbench unsat);
              ("saturated", json_of_webbench sat);
              ("metrics", Nv_util.Metrics.to_json_value reg);
            ] ))

let report_bench ?(path = "BENCH_results.json") () =
  section "BENCH: per-configuration results (JSON)";
  (* The four configurations are independent systems: measure them on
     the domain pool when NV_PARALLEL=1. bench_config is pure in the
     host world (each call builds its own system), so the parallel
     results are the ones the sequential loop would print. *)
  let cells =
    let configs = Array.of_list Deploy.all in
    if Nv_util.Dompool.env_default () then
      Nv_util.Dompool.map_array (Nv_util.Dompool.global ()) bench_config configs
    else Array.map bench_config configs
  in
  let configs =
    List.filter_map
      (fun (config, cell) ->
        match cell with
        | Error e ->
          Printf.printf "  %s: FAILED (%s)\n" (Deploy.name config) e;
          None
        | Ok (unsat, sat, json) ->
          Printf.printf "  %s: unsat %s | sat %s\n" (Deploy.name config)
            (Format.asprintf "%a" Nv_workload.Webbench.pp_result unsat)
            (Format.asprintf "%a" Nv_workload.Webbench.pp_result sat);
          Some json)
      (List.combine Deploy.all (Array.to_list cells))
  in
  update_json_obj path
    [
      ("source", Json.Str "nvariant bench harness");
      ("requests_per_config", Json.Num (float_of_int bench_requests));
      ("configurations", Json.List configs);
    ];
  Printf.printf "wrote %s (%d configurations)\n" path (List.length configs);
  (* The acceptance row for fleet-scale serving rides along with bench. *)
  report_fleet ~path ()

(* ------------------------------------------------------------------ *)
(* hostperf: host wall-clock guest-MIPS                                *)
(* ------------------------------------------------------------------ *)

(* Unlike every other report, hostperf measures the *host* cost of
   running the guest: wall-clock guest-MIPS across the three execution
   tiers — reference decode, predecoded icache, and the basic-block
   compiler — for a pure interpreter microbench and for the full
   2-variant monitored server. *)

let hostperf_loop_iters = 150_000

let hostperf_program =
  Printf.sprintf
    {|
      .data
      cell: .word 0
      .text
      la r6, cell
      mov r1, #0
      mov r2, #%d
    loop:
      add r1, r1, #1
      ld r3, [r6]
      add r3, r3, r1
      st [r6], r3
      and r4, r3, #0xFF
      brlt r1, r2, loop
      halt
    |}
    hostperf_loop_iters

let mips instructions seconds = float_of_int instructions /. max seconds 1e-9 /. 1e6

(* Best of [reps] runs, to shed warm-up and scheduler noise. Also
   returns the block engine's (compiled, hits, invalidations) counters
   from the last run — all zero for the stepping tiers. *)
let interp_hostperf ~engine ~reps =
  let image = Nv_vm.Asm.assemble hostperf_program in
  let instructions = ref 0 in
  let best = ref 0. in
  let stats = ref (0, 0, 0) in
  for _ = 1 to reps do
    let loaded = Nv_vm.Image.load image ~base:0x1000 ~size:(1 lsl 20) ~tag:0 in
    Nv_vm.Memory.set_engine loaded.Nv_vm.Image.memory engine;
    let t0 = Unix.gettimeofday () in
    (match Nv_vm.Cpu.run loaded.Nv_vm.Image.cpu ~fuel:10_000_000 with
    | Nv_vm.Cpu.Trapped Nv_vm.Cpu.Halt_trap -> ()
    | _ -> failwith "hostperf: interpreter microbench did not halt");
    let dt = Unix.gettimeofday () -. t0 in
    instructions := Nv_vm.Cpu.instructions_retired loaded.Nv_vm.Image.cpu;
    stats := Nv_vm.Cpu.block_stats loaded.Nv_vm.Image.cpu;
    best := Float.max !best (mips !instructions dt)
  done;
  (!instructions, !best, !stats)

let monitor_hostperf ?(trace = false) ~engine ~requests () =
  match Deploy.build Deploy.Two_variant_uid with
  | Error e -> failwith e
  | Ok sys ->
    let monitor = Nsystem.monitor sys in
    for i = 0 to Monitor.variant_count monitor - 1 do
      Nv_vm.Memory.set_engine (Monitor.loaded monitor i).Nv_vm.Image.memory engine
    done;
    if trace then Nv_util.Trace.set_enabled (Monitor.trace_session monitor) true;
    let instr0 = Monitor.instructions_retired monitor in
    let t0 = Unix.gettimeofday () in
    for _ = 1 to requests do
      match Nsystem.serve sys (Nv_httpd.Http.get "/") with
      | Nsystem.Served _ -> ()
      | Nsystem.Stopped _ -> failwith "hostperf: monitored request failed"
    done;
    let dt = Unix.gettimeofday () -. t0 in
    let instructions = Monitor.instructions_retired monitor - instr0 in
    (instructions, mips instructions dt)

(* Host cost of the flight recorder on the same monitored server:
   plain baseline vs. disabled (the guarded call sites cost one atomic
   load each) vs. enabled (events recorded into the rings). The three
   configurations are measured interleaved so host-load drift between
   phases cancels out of the ratios, and the disabled/baseline gate
   ratio is the *best* pairwise ratio across reps: scheduler noise on
   a loaded host easily fakes a several-percent slowdown in any single
   pair, but a real regression in the guarded call sites shows up in
   every pair, so only a unanimously-slow disabled path fails the
   2% budget. *)
let trace_hostperf ~reps ~requests =
  let instructions = ref 0 in
  let plain = ref 0. in
  let off = ref 0. in
  let on_ = ref 0. in
  let best_off_ratio = ref 0. in
  for _ = 1 to reps do
    let instr, plain_m = monitor_hostperf ~engine:Nv_vm.Memory.Icache ~requests () in
    instructions := instr;
    plain := Float.max !plain plain_m;
    let _, off_m =
      monitor_hostperf ~trace:false ~engine:Nv_vm.Memory.Icache ~requests ()
    in
    off := Float.max !off off_m;
    best_off_ratio := Float.max !best_off_ratio (off_m /. plain_m);
    let _, on_m = monitor_hostperf ~trace:true ~engine:Nv_vm.Memory.Icache ~requests () in
    on_ := Float.max !on_ on_m
  done;
  (!instructions, !plain, !off, !on_, !best_off_ratio)

(* Microbench for domain-parallel variant execution: an outer loop of
   cond_chk detection calls (syscall 21) separated by pure compute
   spins. cond_chk is a relaxed call, so under the pinned-domain engine
   each variant posts its record and keeps running — the variants
   free-run concurrently all the way to exit (the one sensitive call),
   where the deferred batch is cross-checked. Sequential mode performs
   the identical checks inline on one domain, so the speedup column
   isolates what pinning buys. *)
let parperf_rendezvous = 40

let parperf_spin = 25_000

let parperf_program =
  Printf.sprintf
    {|
      .text
      mov r7, #0
      mov r8, #%d
    outer:
      mov r5, #0
      mov r6, #%d
    inner:
      add r5, r5, #1
      brlt r5, r6, inner
      mov r0, #21
      mov r1, #1
      syscall
      add r7, r7, #1
      brlt r7, r8, outer
      mov r0, #0
      mov r1, #0
      syscall
    |}
    parperf_rendezvous parperf_spin

let parallel_hostperf ~variants ~parallel ~reps =
  let image = Nv_vm.Asm.assemble parperf_program in
  let instructions = ref 0 in
  let relaxed = ref 0 in
  let best = ref 0. in
  for _ = 1 to reps do
    let sys =
      Nsystem.of_one_image ~parallel ~variation:(Variation.uid_diversity_n variants)
        image
    in
    let t0 = Unix.gettimeofday () in
    (match Nsystem.run sys with
    | Monitor.Exited 0 -> ()
    | _ -> failwith "hostperf: parallel microbench did not exit cleanly");
    let dt = Unix.gettimeofday () -. t0 in
    let monitor = Nsystem.monitor sys in
    instructions := Monitor.instructions_retired monitor;
    relaxed := (Monitor.stats monitor).Monitor.st_relaxed_checks;
    best := Float.max !best (mips !instructions dt)
  done;
  (!instructions, !relaxed, !best)

let report_hostperf ?(path = "BENCH_results.json") () =
  section "HOSTPERF: host wall-clock guest-MIPS (interpreter and 2-variant monitor)";
  let interp_instr, interp_ref, _ =
    interp_hostperf ~engine:Nv_vm.Memory.Reference ~reps:3
  in
  let _, interp_fast, _ = interp_hostperf ~engine:Nv_vm.Memory.Icache ~reps:3 in
  let block_instr, interp_block, (block_compiled, block_hits, block_invalidations) =
    interp_hostperf ~engine:Nv_vm.Memory.Block ~reps:3
  in
  (* The three tiers must retire the identical instruction stream; a
     drift here means the block engine changed observable semantics. *)
  if block_instr <> interp_instr then
    failwith
      (Printf.sprintf "hostperf: engines disagree on retired instructions (%d vs %d)"
         interp_instr block_instr);
  let requests = 40 in
  (* Best of 3 fresh systems each, like the interpreter rows: the
     trace-overhead gate compares against mon_fast, so a single noisy
     measurement here would show up as phantom recorder cost. *)
  let best_of reps f =
    let instructions = ref 0 in
    let best = ref 0. in
    for _ = 1 to reps do
      let instr, m = f () in
      instructions := instr;
      best := Float.max !best m
    done;
    (!instructions, !best)
  in
  let mon_instr, mon_ref =
    best_of 3 (fun () -> monitor_hostperf ~engine:Nv_vm.Memory.Reference ~requests ())
  in
  let _, mon_fast =
    best_of 3 (fun () -> monitor_hostperf ~engine:Nv_vm.Memory.Icache ~requests ())
  in
  let mon_block_instr, mon_block =
    best_of 3 (fun () -> monitor_hostperf ~engine:Nv_vm.Memory.Block ~requests ())
  in
  if mon_block_instr <> mon_instr then
    failwith
      (Printf.sprintf
         "hostperf: monitor engines disagree on retired instructions (%d vs %d)" mon_instr
         mon_block_instr);
  let interp_speedup = interp_fast /. interp_ref in
  let mon_speedup = mon_fast /. mon_ref in
  let block_vs_icache = interp_block /. interp_fast in
  let mon_block_vs_icache = mon_block /. mon_fast in
  Nv_util.Tablefmt.print
    ~header:
      [
        "configuration"; "guest instructions"; "reference MIPS"; "icache MIPS";
        "block MIPS"; "block vs icache";
      ]
    ~rows:
      [
        [
          "interpreter microbench"; string_of_int interp_instr;
          Printf.sprintf "%.2f" interp_ref; Printf.sprintf "%.2f" interp_fast;
          Printf.sprintf "%.2f" interp_block; Printf.sprintf "%.2fx" block_vs_icache;
        ];
        [
          Printf.sprintf "2-variant monitor (%d requests)" requests;
          string_of_int mon_instr; Printf.sprintf "%.2f" mon_ref;
          Printf.sprintf "%.2f" mon_fast; Printf.sprintf "%.2f" mon_block;
          Printf.sprintf "%.2fx" mon_block_vs_icache;
        ];
      ]
    ();
  Printf.printf "interpreter guest-MIPS speedup vs. reference decoder: %.2fx (target >= 3x)\n"
    interp_speedup;
  Printf.printf
    "block engine vs. icache: %.2fx on the microbench (target >= 2x); %d blocks \
     compiled, %d cache hits, %d invalidations\n"
    block_vs_icache block_compiled block_hits block_invalidations;
  let host_cores = Domain.recommended_domain_count () in
  let par_variants = [ 2; 4 ] in
  let par_rows =
    List.map
      (fun variants ->
        let instr, relaxed, seq_mips = parallel_hostperf ~variants ~parallel:false ~reps:3 in
        let _, _, par_mips = parallel_hostperf ~variants ~parallel:true ~reps:3 in
        (variants, instr, relaxed, seq_mips, par_mips, par_mips /. seq_mips))
      par_variants
  in
  Nv_util.Tablefmt.print
    ~header:
      [
        "configuration"; "guest instructions"; "relaxed checks"; "sequential MIPS";
        "parallel MIPS"; "speedup";
      ]
    ~rows:
      (List.map
         (fun (variants, instr, relaxed, seq_mips, par_mips, speedup) ->
           [
             Printf.sprintf "%d-variant relaxed microbench" variants;
             string_of_int instr; string_of_int relaxed;
             Printf.sprintf "%.2f" seq_mips; Printf.sprintf "%.2f" par_mips;
             Printf.sprintf "%.2fx" speedup;
           ])
         par_rows)
    ();
  Printf.printf
    "engine: one pinned domain per variant; host has %d core(s) (parallel speedup\n\
     needs a multi-core host — on one core both modes run the same relaxed protocol)\n"
    host_cores;
  let trace_instr, trace_plain, trace_off, trace_on, best_off_ratio =
    trace_hostperf ~reps:5 ~requests:120
  in
  let disabled_frac = best_off_ratio -. 1.0 in
  Nv_util.Tablefmt.print
    ~header:
      [
        "flight recorder"; "guest instructions"; "baseline MIPS"; "disabled MIPS";
        "enabled MIPS"; "ratio";
      ]
    ~rows:
      [
        [
          "2-variant monitor (120 requests)"; string_of_int trace_instr;
          Printf.sprintf "%.2f" trace_plain; Printf.sprintf "%.2f" trace_off;
          Printf.sprintf "%.2f" trace_on;
          Printf.sprintf "%.3fx" (trace_on /. trace_off);
        ];
      ]
    ();
  Printf.printf
    "flight recorder disabled vs. plain monitor: %+.2f%% best pair (target: within 2%%)\n"
    (100.0 *. disabled_frac);
  let mode name instructions ref_mips fast_mips speedup =
    ( name,
      Json.Obj
        [
          ("instructions", Json.Num (float_of_int instructions));
          ("reference_mips", Json.Num ref_mips);
          ("cached_mips", Json.Num fast_mips);
          ("speedup", Json.Num speedup);
        ] )
  in
  let par_mode (variants, instructions, relaxed, seq_mips, par_mips, speedup) =
    ( Printf.sprintf "parallel_%dvariant" variants,
      Json.Obj
        [
          ("instructions", Json.Num (float_of_int instructions));
          ("relaxed_checks", Json.Num (float_of_int relaxed));
          ("sequential_mips", Json.Num seq_mips);
          ("parallel_mips", Json.Num par_mips);
          ("speedup", Json.Num speedup);
          ("engine_workers", Json.Num (float_of_int variants));
          ("host_cores", Json.Num (float_of_int host_cores));
        ] )
  in
  update_json_obj path
    [
      ( "hostperf",
        Json.Obj
          ([
             mode "interpreter" interp_instr interp_ref interp_fast interp_speedup;
             mode "monitor_2variant" mon_instr mon_ref mon_fast mon_speedup;
             ( "block",
               Json.Obj
                 [
                   ("instructions", Json.Num (float_of_int block_instr));
                   ("mips", Json.Num interp_block);
                   ("icache_mips", Json.Num interp_fast);
                   ("reference_mips", Json.Num interp_ref);
                   ("speedup_vs_icache", Json.Num block_vs_icache);
                   ("speedup_vs_reference", Json.Num (interp_block /. interp_ref));
                   ("monitor_mips", Json.Num mon_block);
                   ("monitor_speedup_vs_icache", Json.Num mon_block_vs_icache);
                   ("compiled_blocks", Json.Num (float_of_int block_compiled));
                   ("block_hits", Json.Num (float_of_int block_hits));
                   ("invalidations", Json.Num (float_of_int block_invalidations));
                 ] );
             ( "trace_overhead",
               Json.Obj
                 [
                   ("instructions", Json.Num (float_of_int trace_instr));
                   ("baseline_mips", Json.Num trace_plain);
                   ("disabled_mips", Json.Num trace_off);
                   ("enabled_mips", Json.Num trace_on);
                   ("enabled_over_disabled", Json.Num (trace_on /. trace_off));
                   ("disabled_vs_monitor_frac", Json.Num disabled_frac);
                 ] );
           ]
          @ List.map par_mode par_rows) );
    ];
  Printf.printf "updated %s (hostperf)\n" path

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: one Test.make per table/figure           *)
(* ------------------------------------------------------------------ *)

let bechamel_tests () =
  let open Bechamel in
  let table3_samples =
    lazy
      (match Deploy.build Deploy.Two_variant_uid with
      | Error e -> failwith e
      | Ok sys -> (
        match Nv_workload.Measure.profile ~requests:10 sys with
        | Error e -> failwith e
        | Ok samples -> samples))
  in
  let figure2_system =
    lazy (match Deploy.build Deploy.Two_variant_uid with Ok s -> s | Error e -> failwith e)
  in
  let httpd_tprog =
    lazy
      (match
         Nv_minic.Typecheck.check (Nv_minic.Parser.parse (Nv_httpd.Httpd_source.source ()))
       with
      | Ok t -> t
      | Error _ -> failwith "typecheck failed")
  in
  [
    Test.make ~name:"table1/reexpression-properties"
      (Staged.stage (fun () ->
           let r0 = Reexpression.uid_for_variant 0 in
           let r1 = Reexpression.uid_for_variant 1 in
           for x = 0 to 4095 do
             assert (Reexpression.inverse_holds r1 x);
             assert (Reexpression.disjoint_at r0 r1 x)
           done));
    Test.make ~name:"table2/detection-syscall-roundtrip"
      (Staged.stage (fun () ->
           match run_table2_demo () with
           | Monitor.Exited 0, _ -> ()
           | _ -> failwith "table2 demo failed"));
    Test.make ~name:"table3/webbench-simulation"
      (Staged.stage (fun () ->
           let samples = Lazy.force table3_samples in
           ignore
             (Nv_workload.Webbench.run ~variants:2 ~samples Nv_workload.Webbench.saturated)));
    Test.make ~name:"figure1/address-partition-detection"
      (Staged.stage (fun () ->
           match run_figure1 () with
           | _, Monitor.Alarm _ -> ()
           | _ -> failwith "figure1 attack not detected"));
    Test.make ~name:"figure2/monitored-request"
      (Staged.stage (fun () ->
           let sys = Lazy.force figure2_system in
           match Nsystem.serve sys (Nv_httpd.Http.get "/") with
           | Nsystem.Served _ -> ()
           | Nsystem.Stopped _ -> failwith "serve failed"));
    Test.make ~name:"x1/httpd-transformation"
      (Staged.stage (fun () ->
           let t = Lazy.force httpd_tprog in
           let instrumented, _ = Ut.instrument t in
           ignore (Ut.reexpress ~f:(Reexpression.uid_for_variant 1) instrumented)));
    Test.make ~name:"x2/uid-overflow-detection"
      (Staged.stage (fun () ->
           let attack = Option.get (Nv_attacks.Campaign.find "uid-null-overflow") in
           match Nv_attacks.Campaign.run_attack attack Deploy.Two_variant_uid with
           | Ok (Nv_attacks.Campaign.Detected _) -> ()
           | _ -> failwith "x2 cell changed"));
    Test.make ~name:"x3/user-space-mode-roundtrip"
      (Staged.stage (fun () ->
           let t = Lazy.force httpd_tprog in
           let instrumented, _ = Ut.instrument ~mode:Ut.User_space t in
           ignore (Ut.reexpress ~mode:Ut.User_space ~f:(Reexpression.uid_for_variant 1) instrumented)));
  ]

let run_micro () =
  section "Bechamel micro-benchmarks (one per table/figure)";
  let open Bechamel in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 1.0) ~kde:None () in
  let instance = Toolkit.Instance.monotonic_clock in
  let tests = bechamel_tests () in
  let results =
    List.map
      (fun test ->
        let raw = Benchmark.all cfg [ instance ] (Test.make_grouped ~name:"g" [ test ]) in
        let ols =
          Analyze.all
            (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |])
            instance raw
        in
        (test, ols))
      tests
  in
  Nv_util.Tablefmt.print
    ~header:[ "experiment harness"; "time per run" ]
    ~rows:
      (List.concat_map
         (fun (_test, ols) ->
           Hashtbl.fold
             (fun name result acc ->
               let estimate =
                 match Analyze.OLS.estimates result with
                 | Some (x :: _) ->
                   if x > 1e9 then Printf.sprintf "%.2f s" (x /. 1e9)
                   else if x > 1e6 then Printf.sprintf "%.2f ms" (x /. 1e6)
                   else if x > 1e3 then Printf.sprintf "%.2f us" (x /. 1e3)
                   else Printf.sprintf "%.0f ns" x
                 | Some [] | None -> "n/a"
               in
               [ name; estimate ] :: acc)
             ols [])
         results)
    ()

(* ------------------------------------------------------------------ *)
(* Entry point                                                         *)
(* ------------------------------------------------------------------ *)

let reports =
  [
    ("table1", report_table1);
    ("table2", report_table2);
    ("table3", report_table3);
    ("figure1", report_figure1);
    ("figure2", report_figure2);
    ("table-changes", report_changes);
    ("matrix", fun () -> report_matrix ());
    ("ablation", report_ablation);
    ("bench", fun () -> report_bench ());
    ("fleet", fun () -> report_fleet ());
    ("hostperf", fun () -> report_hostperf ());
  ]

let () =
  match Array.to_list Sys.argv with
  | [ _ ] | [ _; "all" ] ->
    List.iter (fun (_, f) -> f ()) reports;
    run_micro ()
  | [ _; "micro" ] -> run_micro ()
  | [ _; "bench"; path ] -> report_bench ~path ()
  | [ _; "fleet"; path ] -> report_fleet ~path ()
  | [ _; "hostperf"; path ] -> report_hostperf ~path ()
  | [ _; "matrix"; path ] -> report_matrix ~path ()
  | [ _; name ] -> (
    match List.assoc_opt name reports with
    | Some f -> f ()
    | None ->
      Printf.eprintf "unknown report %S; available: %s, micro, all\n" name
        (String.concat ", " (List.map fst reports));
      exit 2)
  | _ ->
    prerr_endline
      "usage: main.exe [report|micro|all] | bench [path] | fleet [path] | hostperf \
       [path] | matrix [path]";
    exit 2
