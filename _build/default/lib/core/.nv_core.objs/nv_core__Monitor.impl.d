lib/core/monitor.ml: Alarm Array Format Fun Hashtbl List Logs Nv_os Nv_util Nv_vm Option Printf Reexpression String Variation
