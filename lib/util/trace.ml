type kind =
  | Quantum_begin
  | Quantum_end of { retired : int }
  | Syscall_enter of { number : int; args : int array }
  | Syscall_exit of { number : int; result : int }
  | Rendezvous of { number : int; relaxed : bool }
  | Deferred_flush of { batch : int }
  | Signal of { handler : string; immediate : bool }
  | Kernel_call of { name : string; seq : int }
  | Checkpoint of { rendezvous : int }
  | Rollback of { rendezvous : int; dropped : int }
  | Failstop of { rendezvous : int }
  | Health of { replica : int; state : string }
  | Shed of { replica : int }
  | Alarm of { label : string }
  | Note of string

type event = { ts : int; kind : kind }

type t = {
  on : bool Atomic.t;
  capacity : int;
  mutable ring_list : ring list; (* reverse registration order *)
}

and ring = {
  rg_name : string;
  rg_pid : int;
  rg_tid : int;
  rg_session : t;
  buf : event array;
  mutable start : int; (* index of the oldest retained event *)
  mutable len : int;
  mutable rg_dropped : int;
}

let dummy_event = { ts = 0; kind = Quantum_begin }

let create ?(capacity = 1024) () =
  if capacity <= 0 then invalid_arg "Trace.create: capacity must be positive";
  { on = Atomic.make false; capacity; ring_list = [] }

let set_enabled t flag = Atomic.set t.on flag
let enabled t = Atomic.get t.on
let enabled_ring r = Atomic.get r.rg_session.on

let ring t ~name ~pid ~tid =
  let r =
    {
      rg_name = name;
      rg_pid = pid;
      rg_tid = tid;
      rg_session = t;
      buf = Array.make t.capacity dummy_event;
      start = 0;
      len = 0;
      rg_dropped = 0;
    }
  in
  t.ring_list <- r :: t.ring_list;
  r

let record r ~ts kind =
  if Atomic.get r.rg_session.on then begin
    let cap = Array.length r.buf in
    let ev = { ts; kind } in
    if r.len < cap then begin
      r.buf.((r.start + r.len) mod cap) <- ev;
      r.len <- r.len + 1
    end
    else begin
      r.buf.(r.start) <- ev;
      r.start <- (r.start + 1) mod cap;
      r.rg_dropped <- r.rg_dropped + 1
    end
  end

let note r ~ts text = record r ~ts (Note text)

let events r =
  let cap = Array.length r.buf in
  List.init r.len (fun i -> r.buf.((r.start + i) mod cap))

let dropped r = r.rg_dropped
let recorded r = r.len + r.rg_dropped
let ring_name r = r.rg_name
let rings t = List.rev t.ring_list

let clear t =
  List.iter
    (fun r ->
      r.start <- 0;
      r.len <- 0;
      r.rg_dropped <- 0;
      Array.fill r.buf 0 (Array.length r.buf) dummy_event)
    t.ring_list

let publish t metrics =
  let scope = Metrics.scope metrics "trace" in
  let rs = rings t in
  Metrics.set_gauge (Metrics.gauge scope "rings") (float_of_int (List.length rs));
  let sum f = List.fold_left (fun acc r -> acc + f r) 0 rs in
  Metrics.set_gauge (Metrics.gauge scope "events") (float_of_int (sum recorded));
  Metrics.set_gauge (Metrics.gauge scope "dropped") (float_of_int (sum dropped))

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)

let default_syscall_name n = Printf.sprintf "sys#%d" n

let pp_event ?(syscall_name = default_syscall_name) ppf ev =
  match ev.kind with
  | Quantum_begin -> Format.fprintf ppf "[quantum] begin"
  | Quantum_end { retired } -> Format.fprintf ppf "[quantum] end (retired %d)" retired
  | Syscall_enter { number; args } ->
      Format.fprintf ppf "[%s] enter(%s)" (syscall_name number)
        (String.concat ", " (Array.to_list (Array.map string_of_int args)))
  | Syscall_exit { number; result } ->
      Format.fprintf ppf "[%s] exit = %d" (syscall_name number) result
  | Rendezvous { number; relaxed } ->
      Format.fprintf ppf "[%s] rendezvous (%s)" (syscall_name number)
        (if relaxed then "relaxed" else "full")
  | Deferred_flush { batch } ->
      Format.fprintf ppf "[flush] %d deferred record(s) cross-checked" batch
  | Signal { handler; immediate } ->
      Format.fprintf ppf "[signal] %s delivered (%s)" handler
        (if immediate then "immediate" else "at rendezvous")
  | Kernel_call { name; seq } -> Format.fprintf ppf "[%s] kernel dispatch #%d" name seq
  | Checkpoint { rendezvous } ->
      Format.fprintf ppf "[supervisor] checkpoint @ rendezvous %d" rendezvous
  | Rollback { rendezvous; dropped } ->
      Format.fprintf ppf "[supervisor] rollback to rendezvous %d (%d connection(s) dropped)"
        rendezvous dropped
  | Failstop { rendezvous } ->
      Format.fprintf ppf "[supervisor] fail-stop @ rendezvous %d" rendezvous
  | Health { replica; state } -> Format.fprintf ppf "[replica %d] %s" replica state
  | Shed { replica } ->
      if replica < 0 then Format.fprintf ppf "[balancer] shed (no replica available)"
      else Format.fprintf ppf "[balancer] shed (replica %d)" replica
  | Alarm { label } -> Format.fprintf ppf "[alarm] %s" label
  | Note s -> Format.pp_print_string ppf s

(* ------------------------------------------------------------------ *)
(* JSON sinks                                                          *)

open Metrics.Json

let num i = Num (float_of_int i)
let args_list args = List (Array.to_list (Array.map (fun a -> num a) args))

(* One event as a Chrome trace-event record. [ph] "B"/"E" pairs give
   Perfetto real duration slices; instants use thread scope. *)
let chrome_record ~syscall_name ~pid ~tid ev =
  let base ph name extra =
    Obj
      ([
         ("name", Str name);
         ("ph", Str ph);
         ("ts", num ev.ts);
         ("pid", num pid);
         ("tid", num tid);
       ]
      @ extra)
  in
  let instant name fields =
    base "i" name (("s", Str "t") :: (if fields = [] then [] else [ ("args", Obj fields) ]))
  in
  match ev.kind with
  | Quantum_begin -> base "B" "quantum" []
  | Quantum_end { retired } -> base "E" "quantum" [ ("args", Obj [ ("retired", num retired) ]) ]
  | Syscall_enter { number; args } ->
      base "B" (syscall_name number) [ ("args", Obj [ ("args", args_list args) ]) ]
  | Syscall_exit { number; result } ->
      base "E" (syscall_name number) [ ("args", Obj [ ("result", num result) ]) ]
  | Rendezvous { number; relaxed } ->
      instant ("rendezvous:" ^ syscall_name number) [ ("relaxed", Bool relaxed) ]
  | Deferred_flush { batch } -> instant "deferred_flush" [ ("batch", num batch) ]
  | Signal { handler; immediate } ->
      instant ("signal:" ^ handler) [ ("immediate", Bool immediate) ]
  | Kernel_call { name; seq } -> instant ("kernel:" ^ name) [ ("seq", num seq) ]
  | Checkpoint { rendezvous } -> instant "checkpoint" [ ("rendezvous", num rendezvous) ]
  | Rollback { rendezvous; dropped } ->
      instant "rollback" [ ("rendezvous", num rendezvous); ("dropped", num dropped) ]
  | Failstop { rendezvous } -> instant "failstop" [ ("rendezvous", num rendezvous) ]
  | Health { replica; state } -> instant ("health:" ^ state) [ ("replica", num replica) ]
  | Shed { replica } -> instant "shed" [ ("replica", num replica) ]
  | Alarm { label } -> instant ("alarm:" ^ label) []
  | Note s -> instant s []

let to_chrome ?(syscall_name = default_syscall_name) ?(extra = []) t =
  let rs = rings t in
  let seen_pids = Hashtbl.create 8 in
  let metadata =
    List.concat_map
      (fun r ->
        let process =
          if Hashtbl.mem seen_pids r.rg_pid then []
          else begin
            Hashtbl.add seen_pids r.rg_pid ();
            [
              Obj
                [
                  ("name", Str "process_name");
                  ("ph", Str "M");
                  ("pid", num r.rg_pid);
                  ("args", Obj [ ("name", Str (Printf.sprintf "replica %d" r.rg_pid)) ]);
                ];
            ]
          end
        in
        process
        @ [
            Obj
              [
                ("name", Str "thread_name");
                ("ph", Str "M");
                ("pid", num r.rg_pid);
                ("tid", num r.rg_tid);
                ("args", Obj [ ("name", Str r.rg_name) ]);
              ];
          ])
      rs
  in
  let body =
    List.concat_map
      (fun r ->
        List.map (chrome_record ~syscall_name ~pid:r.rg_pid ~tid:r.rg_tid) (events r))
      rs
  in
  Obj
    ([ ("traceEvents", List (metadata @ body)); ("displayTimeUnit", Str "ms") ] @ extra)

let event_to_json ?(syscall_name = default_syscall_name) ev =
  let kind, fields =
    match ev.kind with
    | Quantum_begin -> ("quantum_begin", [])
    | Quantum_end { retired } -> ("quantum_end", [ ("retired", num retired) ])
    | Syscall_enter { number; args } ->
        ( "syscall_enter",
          [
            ("number", num number);
            ("syscall", Str (syscall_name number));
            ("args", args_list args);
          ] )
    | Syscall_exit { number; result } ->
        ( "syscall_exit",
          [
            ("number", num number);
            ("syscall", Str (syscall_name number));
            ("result", num result);
          ] )
    | Rendezvous { number; relaxed } ->
        ( "rendezvous",
          [
            ("number", num number);
            ("syscall", Str (syscall_name number));
            ("relaxed", Bool relaxed);
          ] )
    | Deferred_flush { batch } -> ("deferred_flush", [ ("batch", num batch) ])
    | Signal { handler; immediate } ->
        ("signal", [ ("handler", Str handler); ("immediate", Bool immediate) ])
    | Kernel_call { name; seq } -> ("kernel_call", [ ("syscall", Str name); ("seq", num seq) ])
    | Checkpoint { rendezvous } -> ("checkpoint", [ ("rendezvous", num rendezvous) ])
    | Rollback { rendezvous; dropped } ->
        ("rollback", [ ("rendezvous", num rendezvous); ("dropped", num dropped) ])
    | Failstop { rendezvous } -> ("failstop", [ ("rendezvous", num rendezvous) ])
    | Health { replica; state } ->
        ("health", [ ("replica", num replica); ("state", Str state) ])
    | Shed { replica } -> ("shed", [ ("replica", num replica) ])
    | Alarm { label } -> ("alarm", [ ("label", Str label) ])
    | Note s -> ("note", [ ("text", Str s) ])
  in
  Obj (("kind", Str kind) :: ("ts", num ev.ts) :: fields)

let ring_events_json ?(syscall_name = default_syscall_name) ?last r =
  let evs = events r in
  let evs =
    match last with
    | None -> evs
    | Some n ->
        let len = List.length evs in
        if len <= n then evs else List.filteri (fun i _ -> i >= len - n) evs
  in
  Obj
    [
      ("name", Str r.rg_name);
      ("pid", num r.rg_pid);
      ("tid", num r.rg_tid);
      ("dropped", num r.rg_dropped);
      ("events", List (List.map (event_to_json ~syscall_name) evs));
    ]
