lib/vm/cpu.ml: Array Bytes Char Format Isa Memory Word
