lib/vm/word.mli: Format
