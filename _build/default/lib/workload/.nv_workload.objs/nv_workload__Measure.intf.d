lib/workload/measure.mli: Format Nv_core
