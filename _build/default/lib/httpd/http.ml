type response = { status : int; content_length : int option; body : string }

let get path = Printf.sprintf "GET %s HTTP/1.0\r\n\r\n" path

let find_sub haystack needle from =
  let n = String.length needle in
  let h = String.length haystack in
  let rec scan i = if i + n > h then None else if String.sub haystack i n = needle then Some i else scan (i + 1) in
  scan from

let parse_response raw =
  match find_sub raw "\r\n\r\n" 0 with
  | None -> Error "no header/body separator"
  | Some sep -> (
    let header = String.sub raw 0 sep in
    let body = String.sub raw (sep + 4) (String.length raw - sep - 4) in
    let lines = String.split_on_char '\n' header |> List.map String.trim in
    match lines with
    | [] -> Error "empty header"
    | status_line :: rest -> (
      match String.split_on_char ' ' status_line with
      | _http :: code :: _ -> (
        match int_of_string_opt code with
        | None -> Error ("bad status code: " ^ code)
        | Some status ->
          let content_length =
            List.find_map
              (fun line ->
                match String.index_opt line ':' with
                | Some i
                  when String.lowercase_ascii (String.sub line 0 i) = "content-length" ->
                  int_of_string_opt
                    (String.trim (String.sub line (i + 1) (String.length line - i - 1)))
                | _ -> None)
              rest
          in
          Ok { status; content_length; body })
      | _ -> Error ("malformed status line: " ^ status_line)))
