(* Tests for nv_os: Cred, Passwd, Vfs, Socket, Kernel (incl. unshared files). *)

open Nv_os

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

(* ------------------------------------------------------------------ *)
(* Cred                                                                *)
(* ------------------------------------------------------------------ *)

let test_cred_superuser () =
  Alcotest.(check bool) "root" true (Cred.is_root Cred.superuser)

let test_cred_setuid_root_drops_all () =
  match Cred.setuid Cred.superuser 33 with
  | Ok c ->
    Alcotest.(check int) "ruid" 33 c.Cred.ruid;
    Alcotest.(check int) "euid" 33 c.Cred.euid;
    Alcotest.(check bool) "no longer root" false (Cred.is_root c)
  | Error _ -> Alcotest.fail "root setuid should succeed"

let test_cred_setuid_unprivileged () =
  let user = Cred.of_user ~uid:1000 ~gid:1000 in
  (match Cred.setuid user 0 with
  | Error Cred.Eperm -> ()
  | Ok _ -> Alcotest.fail "unprivileged setuid(0) must fail");
  match Cred.setuid user 1000 with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "setuid to own uid allowed"

let test_cred_seteuid_toggle () =
  (* The privilege-drop dance: root drops to worker, then regains. *)
  match Cred.seteuid Cred.superuser 33 with
  | Error _ -> Alcotest.fail "drop failed"
  | Ok dropped -> (
    Alcotest.(check bool) "dropped" false (Cred.is_root dropped);
    match Cred.seteuid dropped 0 with
    | Ok regained -> Alcotest.(check bool) "regained" true (Cred.is_root regained)
    | Error _ -> Alcotest.fail "regain failed (real uid still 0)")

let test_cred_seteuid_ordinary_user_cannot_escalate () =
  let user = Cred.of_user ~uid:1000 ~gid:1000 in
  match Cred.seteuid user 0 with
  | Error Cred.Eperm -> ()
  | Ok _ -> Alcotest.fail "must fail"

let test_cred_setgid () =
  (match Cred.setgid Cred.superuser 33 with
  | Ok c -> Alcotest.(check int) "egid" 33 c.Cred.egid
  | Error _ -> Alcotest.fail "root setgid");
  let user = Cred.of_user ~uid:1000 ~gid:1000 in
  match Cred.setgid user 0 with
  | Error Cred.Eperm -> ()
  | Ok _ -> Alcotest.fail "must fail"

(* ------------------------------------------------------------------ *)
(* Passwd                                                              *)
(* ------------------------------------------------------------------ *)

let test_passwd_roundtrip () =
  let text = Passwd.serialize Passwd.sample in
  match Passwd.parse text with
  | Ok entries ->
    Alcotest.(check int) "count" (List.length Passwd.sample) (List.length entries);
    Alcotest.(check string) "reserialize" text (Passwd.serialize entries)
  | Error e -> Alcotest.fail e

let test_passwd_lookup () =
  (match Passwd.lookup Passwd.sample "www" with
  | Some e -> Alcotest.(check int) "www uid" 33 e.Passwd.uid
  | None -> Alcotest.fail "www missing");
  Alcotest.(check bool) "missing user" true (Passwd.lookup Passwd.sample "mallory" = None);
  match Passwd.lookup_uid Passwd.sample 1000 with
  | Some e -> Alcotest.(check string) "alice" "alice" e.Passwd.name
  | None -> Alcotest.fail "uid 1000 missing"

let test_passwd_parse_errors () =
  (match Passwd.parse "not a passwd line" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "should reject");
  match Passwd.parse "a:x:notanumber:0:g:h:s" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "should reject bad uid"

let test_passwd_reexpress () =
  let f u = Nv_vm.Word.logxor u 0x7FFFFFFF in
  let text = Passwd.serialize Passwd.sample in
  match Passwd.reexpress ~f text with
  | Error e -> Alcotest.fail e
  | Ok text' -> (
    match Passwd.parse text' with
    | Error e -> Alcotest.fail e
    | Ok entries ->
      let root = Option.get (Passwd.lookup entries "root") in
      Alcotest.(check int) "root reexpressed" 0x7FFFFFFF root.Passwd.uid;
      let www = Option.get (Passwd.lookup entries "www") in
      Alcotest.(check int) "www reexpressed" (33 lxor 0x7FFFFFFF) www.Passwd.uid;
      (* Names and shells untouched. *)
      Alcotest.(check string) "name" "www" www.Passwd.name)

let test_passwd_group_roundtrip () =
  let text = Passwd.serialize_group Passwd.sample_groups in
  match Passwd.parse_group text with
  | Ok groups ->
    Alcotest.(check int) "count" 4 (List.length groups);
    let users = List.find (fun g -> g.Passwd.group_name = "users") groups in
    Alcotest.(check (list string)) "members" [ "alice"; "bob" ] users.Passwd.members
  | Error e -> Alcotest.fail e

let prop_passwd_reexpress_involution =
  QCheck.Test.make ~name:"reexpress with xor key twice is identity" ~count:100
    QCheck.(list_of_size (QCheck.Gen.int_range 1 5) (int_bound 0xFFFF))
    (fun uids ->
      let entries =
        List.mapi
          (fun i uid ->
            Passwd.
              {
                name = Printf.sprintf "u%d" i; uid; gid = uid; gecos = ""; home = "/";
                shell = "/bin/sh";
              })
          uids
      in
      let text = Passwd.serialize entries in
      let f u = Nv_vm.Word.logxor u 0x7FFFFFFF in
      match Passwd.reexpress ~f text with
      | Error _ -> false
      | Ok once -> (
        match Passwd.reexpress ~f once with Error _ -> false | Ok twice -> twice = text))

(* ------------------------------------------------------------------ *)
(* Passwd index                                                        *)
(* ------------------------------------------------------------------ *)

let entry_of ~name ~uid =
  Passwd.{ name; uid; gid = uid; gecos = ""; home = "/"; shell = "/bin/sh" }

let prop_index_agrees_with_linear =
  (* The indexed lookups must return exactly what the linear scans
     return — including first-match semantics under duplicate names and
     duplicate uids (small ranges force collisions). *)
  QCheck.Test.make ~name:"index agrees with linear lookup/lookup_uid" ~count:200
    QCheck.(
      pair
        (list_of_size (QCheck.Gen.int_range 0 40) (pair (int_bound 7) (int_bound 9)))
        (pair (int_bound 7) (int_bound 9)))
    (fun (raw, (probe_name, probe_uid)) ->
      let entries =
        List.map (fun (n, u) -> entry_of ~name:(Printf.sprintf "u%d" n) ~uid:u) raw
      in
      let idx = Passwd.index entries in
      let name = Printf.sprintf "u%d" probe_name in
      Passwd.find idx name = Passwd.lookup entries name
      && Passwd.find_uid idx probe_uid = Passwd.lookup_uid entries probe_uid
      && List.for_all
           (fun e ->
             Passwd.find idx e.Passwd.name = Passwd.lookup entries e.Passwd.name
             && Passwd.find_uid idx e.Passwd.uid = Passwd.lookup_uid entries e.Passwd.uid)
           entries)

let test_index_sublinear () =
  (* Pinned: per-lookup comparisons stay within 2 log2 n + 4 as the
     population grows — the linear scan this replaced spent ~n/2. *)
  List.iter
    (fun n ->
      let entries = Passwd.generate ~seed:5 n in
      let idx = Passwd.index entries in
      let before = Passwd.comparisons idx in
      List.iter
        (fun e -> ignore (Passwd.find_uid idx e.Passwd.uid))
        entries;
      let per_lookup =
        float_of_int (Passwd.comparisons idx - before) /. float_of_int n
      in
      let bound = (2.0 *. (log (float_of_int n) /. log 2.0)) +. 4.0 in
      if per_lookup > bound then
        Alcotest.failf "n=%d: %.1f comparisons/lookup exceeds %.1f" n per_lookup bound)
    [ 1_000; 4_000; 16_000 ]

let test_index_size_and_misses () =
  let entries = Passwd.sample @ Passwd.generate ~seed:3 100 in
  let idx = Passwd.index entries in
  Alcotest.(check int) "distinct uids" (List.length entries) (Passwd.index_size idx);
  Alcotest.(check bool) "missing name" true (Passwd.find idx "mallory" = None);
  Alcotest.(check bool) "missing uid" true (Passwd.find_uid idx 999_999_999 = None)

let test_generate_deterministic () =
  let a = Passwd.generate ~seed:9 500 in
  let b = Passwd.generate ~seed:9 500 in
  Alcotest.(check bool) "same seed, same population" true (a = b);
  let c = Passwd.generate ~seed:10 500 in
  Alcotest.(check bool) "different seed differs" true (a <> c);
  Alcotest.(check bool) "uids start above sample" true
    (List.for_all (fun e -> e.Passwd.uid >= 10_000) a)

(* ------------------------------------------------------------------ *)
(* Vfs                                                                 *)
(* ------------------------------------------------------------------ *)

let world () =
  let fs = Vfs.create () in
  Vfs.mkdir_p fs "/etc";
  Vfs.install fs ~path:"/etc/passwd" "root:x:0:0:r:/root:/bin/sh\n";
  Vfs.install fs
    ~attrs:{ Vfs.mode = 0o600; owner = 0; group = 0 }
    ~path:"/etc/shadow" "secret\n";
  Vfs.install fs
    ~attrs:{ Vfs.mode = 0o644; owner = 1000; group = 1000 }
    ~path:"/home/alice/notes.txt" "hello\n";
  fs

let test_vfs_read () =
  let fs = world () in
  let alice = Cred.of_user ~uid:1000 ~gid:1000 in
  (match Vfs.read_file fs ~cred:alice ~path:"/etc/passwd" with
  | Ok content -> Alcotest.(check bool) "readable" true (String.length content > 0)
  | Error _ -> Alcotest.fail "passwd is world readable");
  match Vfs.read_file fs ~cred:alice ~path:"/etc/shadow" with
  | Error Vfs.Eacces -> ()
  | _ -> Alcotest.fail "shadow must be denied"

let test_vfs_root_bypasses () =
  let fs = world () in
  match Vfs.read_file fs ~cred:Cred.superuser ~path:"/etc/shadow" with
  | Ok content -> Alcotest.(check string) "shadow" "secret\n" content
  | Error _ -> Alcotest.fail "root reads everything"

let test_vfs_owner_write () =
  let fs = world () in
  let alice = Cred.of_user ~uid:1000 ~gid:1000 in
  (match Vfs.append_file fs ~cred:alice ~path:"/home/alice/notes.txt" "more\n" with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "owner writes own file");
  let bob = Cred.of_user ~uid:1001 ~gid:1001 in
  match Vfs.append_file fs ~cred:bob ~path:"/home/alice/notes.txt" "x" with
  | Error Vfs.Eacces -> ()
  | _ -> Alcotest.fail "other write denied"

let test_vfs_enoent_and_eisdir () =
  let fs = world () in
  (match Vfs.read_file fs ~cred:Cred.superuser ~path:"/nope" with
  | Error Vfs.Enoent -> ()
  | _ -> Alcotest.fail "ENOENT expected");
  match Vfs.read_file fs ~cred:Cred.superuser ~path:"/etc" with
  | Error Vfs.Eisdir -> ()
  | _ -> Alcotest.fail "EISDIR expected"

let test_vfs_list_dir () =
  let fs = world () in
  match Vfs.list_dir fs "/etc" with
  | Ok entries -> Alcotest.(check (list string)) "sorted" [ "passwd"; "shadow" ] entries
  | Error _ -> Alcotest.fail "listable"

let test_vfs_install_replaces () =
  let fs = world () in
  Vfs.install fs ~path:"/etc/passwd" "new\n";
  match Vfs.contents fs ~path:"/etc/passwd" with
  | Ok c -> Alcotest.(check string) "replaced" "new\n" c
  | Error _ -> Alcotest.fail "exists"

let test_vfs_stat () =
  let fs = world () in
  match Vfs.stat fs "/etc/shadow" with
  | Ok attrs -> Alcotest.(check int) "mode" 0o600 attrs.Vfs.mode
  | Error _ -> Alcotest.fail "stat"

let test_vfs_truncate () =
  let fs = world () in
  (match Vfs.truncate_file fs ~cred:Cred.superuser ~path:"/etc/passwd" with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "truncate");
  match Vfs.contents fs ~path:"/etc/passwd" with
  | Ok c -> Alcotest.(check string) "empty" "" c
  | Error _ -> Alcotest.fail "exists"

let test_vfs_remove () =
  let fs = world () in
  (match Vfs.remove fs "/etc/passwd" with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "remove should succeed");
  (match Vfs.contents fs ~path:"/etc/passwd" with
  | Error Vfs.Enoent -> ()
  | _ -> Alcotest.fail "file should be gone");
  (match Vfs.remove fs "/etc/passwd" with
  | Error Vfs.Enoent -> ()
  | _ -> Alcotest.fail "ENOENT expected");
  match Vfs.remove fs "/etc" with
  | Error Vfs.Eisdir -> ()
  | _ -> Alcotest.fail "EISDIR expected"

let test_vfs_dump_files () =
  let fs = world () in
  let files = Vfs.dump_files fs in
  Alcotest.(check (list string))
    "paths sorted"
    [ "/etc/passwd"; "/etc/shadow"; "/home/alice/notes.txt" ]
    (List.map (fun (p, _, _) -> p) files);
  let _, content, attrs = List.find (fun (p, _, _) -> p = "/etc/shadow") files in
  Alcotest.(check string) "content" "secret\n" content;
  Alcotest.(check int) "mode" 0o600 attrs.Vfs.mode

let test_vfs_traversal_normalization () =
  let fs = world () in
  let read path =
    match Vfs.read_file fs ~cred:Cred.superuser ~path with
    | Ok c -> Some c
    | Error _ -> None
  in
  let passwd = read "/etc/passwd" in
  Alcotest.(check bool) "plain" true (passwd <> None);
  Alcotest.(check bool) "dot segments" true (read "/etc/./passwd" = passwd);
  Alcotest.(check bool) "up and down" true (read "/etc/../etc/passwd" = passwd);
  Alcotest.(check bool) "lexical pop of missing component" true
    (read "/nowhere/../etc/passwd" = passwd);
  Alcotest.(check bool) "cannot climb above root" true
    (read "/../../../../etc/passwd" = passwd);
  Alcotest.(check bool) "docroot escape resolves" true
    (read "/home/alice/../../etc/passwd" = passwd)

let prop_vfs_dotdot_bounded =
  QCheck.Test.make ~name:"any number of leading .. stays at the root" ~count:50
    QCheck.(int_range 1 30)
    (fun n ->
      let fs = world () in
      let prefix = String.concat "" (List.init n (fun _ -> "/..")) in
      match Vfs.read_file fs ~cred:Cred.superuser ~path:(prefix ^ "/etc/passwd") with
      | Ok _ -> true
      | Error _ -> false)

(* ------------------------------------------------------------------ *)
(* Socket                                                              *)
(* ------------------------------------------------------------------ *)

let test_socket_basic_exchange () =
  let listener = Socket.make_listener () in
  let client = Socket.connect listener in
  Socket.client_send client "GET /";
  Alcotest.(check int) "pending" 1 (Socket.pending listener);
  match Socket.accept listener with
  | None -> Alcotest.fail "accept"
  | Some server ->
    Alcotest.(check int) "same conn" (Socket.conn_id client) (Socket.conn_id server);
    Alcotest.(check string) "request" "GET /" (Socket.server_read server ~max:100);
    Alcotest.(check string) "empty now" "" (Socket.server_read server ~max:100);
    ignore (Socket.server_write server "200 OK");
    Alcotest.(check string) "response" "200 OK" (Socket.client_recv client)

let test_socket_eof () =
  let listener = Socket.make_listener () in
  let client = Socket.connect listener in
  let server = Option.get (Socket.accept listener) in
  Socket.client_send client "x";
  Socket.client_close client;
  Alcotest.(check bool) "not EOF with data" false (Socket.server_at_eof server);
  ignore (Socket.server_read server ~max:10);
  Alcotest.(check bool) "EOF after drain" true (Socket.server_at_eof server)

let test_socket_partial_reads () =
  let listener = Socket.make_listener () in
  let client = Socket.connect listener in
  let server = Option.get (Socket.accept listener) in
  Socket.client_send client "abcdef";
  Alcotest.(check string) "first 3" "abc" (Socket.server_read server ~max:3);
  Alcotest.(check string) "rest" "def" (Socket.server_read server ~max:10)

let test_socket_send_after_close_rejected () =
  let listener = Socket.make_listener () in
  let client = Socket.connect listener in
  Socket.client_close client;
  Alcotest.(check bool) "raises" true
    (try
       Socket.client_send client "x";
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Kernel                                                              *)
(* ------------------------------------------------------------------ *)

let make_kernel ?(variants = 2) () =
  let fs = Vfs.create () in
  Vfs.mkdir_p fs "/etc";
  Vfs.install fs ~path:"/etc/motd" "welcome\n";
  Vfs.install fs ~path:"/etc/passwd" (Passwd.serialize Passwd.sample);
  let xor u = Nv_vm.Word.logxor u 0x7FFFFFFF in
  let base = Passwd.serialize Passwd.sample in
  Vfs.install fs ~path:"/etc/passwd-0" base;
  (match Passwd.reexpress ~f:xor base with
  | Ok diversified -> Vfs.install fs ~path:"/etc/passwd-1" diversified
  | Error e -> failwith e);
  Vfs.install fs
    ~attrs:{ Vfs.mode = 0o600; owner = 0; group = 0 }
    ~path:"/secret/shadow" "top-secret\n";
  Vfs.install fs ~attrs:{ Vfs.mode = 0o666; owner = 0; group = 0 } ~path:"/var/log/app.log" "";
  Kernel.create ~variants fs

let test_kernel_open_read_close () =
  let k = make_kernel () in
  let fd = Kernel.sys_open k ~path:"/etc/motd" ~flags:Syscall.o_rdonly in
  Alcotest.(check bool) "fd >= 3" true (fd >= 3);
  (match Kernel.sys_read k ~fd ~len:100 with
  | n, Kernel.Shared_data data ->
    Alcotest.(check int) "count" 8 n;
    Alcotest.(check string) "data" "welcome\n" data
  | _ -> Alcotest.fail "expected shared data");
  (* Subsequent read is at EOF. *)
  (match Kernel.sys_read k ~fd ~len:100 with
  | 0, Kernel.Shared_data "" -> ()
  | _ -> Alcotest.fail "EOF expected");
  Alcotest.(check int) "close" 0 (Kernel.sys_close k ~fd)

let test_kernel_open_missing () =
  let k = make_kernel () in
  Alcotest.(check int) "-1" (Nv_vm.Word.of_signed (-1))
    (Kernel.sys_open k ~path:"/nope" ~flags:Syscall.o_rdonly)

let test_kernel_permission_enforced () =
  let k = make_kernel () in
  (* Root can open the protected file... *)
  let fd = Kernel.sys_open k ~path:"/secret/shadow" ~flags:Syscall.o_rdonly in
  Alcotest.(check bool) "root opens" true (fd >= 3);
  ignore (Kernel.sys_close k ~fd);
  (* ...but after dropping privileges the open fails. *)
  ignore (Kernel.sys_seteuid k ~uid:33);
  Alcotest.(check int) "denied" (Nv_vm.Word.of_signed (-1))
    (Kernel.sys_open k ~path:"/secret/shadow" ~flags:Syscall.o_rdonly);
  (* Regain and retry. *)
  ignore (Kernel.sys_seteuid k ~uid:0);
  Alcotest.(check bool) "regained" true
    (Kernel.sys_open k ~path:"/secret/shadow" ~flags:Syscall.o_rdonly >= 3)

let test_kernel_unshared_passwd () =
  let k = make_kernel () in
  Kernel.register_unshared k "/etc/passwd";
  Alcotest.(check bool) "registered" true (Kernel.is_unshared k "/etc/passwd");
  let fd = Kernel.sys_open k ~path:"/etc/passwd" ~flags:Syscall.o_rdonly in
  Alcotest.(check bool) "opened" true (fd >= 3);
  match Kernel.sys_read k ~fd ~len:4096 with
  | n, Kernel.Per_variant chunks ->
    Alcotest.(check int) "two variants" 2 (Array.length chunks);
    Alcotest.(check bool) "non-empty" true (n > 0);
    Alcotest.(check bool) "different bytes" true (chunks.(0) <> chunks.(1));
    (* Variant 0 sees canonical uids, variant 1 sees reexpressed. *)
    let parse c = Result.get_ok (Passwd.parse c) in
    let root0 = Option.get (Passwd.lookup (parse chunks.(0)) "root") in
    let root1 = Option.get (Passwd.lookup (parse chunks.(1)) "root") in
    Alcotest.(check int) "v0 root" 0 root0.Passwd.uid;
    Alcotest.(check int) "v1 root" 0x7FFFFFFF root1.Passwd.uid
  | _ -> Alcotest.fail "expected per-variant data"

let test_kernel_unshared_missing_copy () =
  let k = make_kernel () in
  Kernel.register_unshared k "/etc/motd";
  (* No /etc/motd-0 and /etc/motd-1 exist. *)
  Alcotest.(check int) "open fails" (Nv_vm.Word.of_signed (-1))
    (Kernel.sys_open k ~path:"/etc/motd" ~flags:Syscall.o_rdonly)

let test_kernel_shared_open_of_registered_other_path () =
  let k = make_kernel () in
  Kernel.register_unshared k "/etc/passwd";
  (* Other paths remain shared. *)
  let fd = Kernel.sys_open k ~path:"/etc/motd" ~flags:Syscall.o_rdonly in
  match Kernel.sys_read k ~fd ~len:10 with
  | _, Kernel.Shared_data _ -> ()
  | _ -> Alcotest.fail "motd is shared"

let test_kernel_accept_flow () =
  let k = make_kernel () in
  Alcotest.(check int) "EAGAIN when idle" Kernel.eagain (Kernel.sys_accept k ~fd:Kernel.listen_fd);
  let conn = Kernel.connect k in
  Socket.client_send conn "ping";
  let fd = Kernel.sys_accept k ~fd:Kernel.listen_fd in
  Alcotest.(check bool) "fd" true (fd >= 3);
  (match Kernel.sys_read k ~fd ~len:16 with
  | 4, Kernel.Shared_data "ping" -> ()
  | _ -> Alcotest.fail "request bytes");
  ignore (Kernel.sys_write k ~fd ~data:(Kernel.Shared_data "pong"));
  Alcotest.(check string) "reply" "pong" (Socket.client_recv conn);
  ignore (Kernel.sys_close k ~fd);
  Alcotest.(check bool) "server closed" true (Socket.server_closed conn)

let test_kernel_write_log_file () =
  let k = make_kernel () in
  let fd = Kernel.sys_open k ~path:"/var/log/app.log" ~flags:Syscall.o_append in
  Alcotest.(check bool) "opened" true (fd >= 3);
  ignore (Kernel.sys_write k ~fd ~data:(Kernel.Shared_data "line1\n"));
  ignore (Kernel.sys_write k ~fd ~data:(Kernel.Shared_data "line2\n"));
  match Vfs.contents (Kernel.vfs k) ~path:"/var/log/app.log" with
  | Ok c -> Alcotest.(check string) "appended" "line1\nline2\n" c
  | Error _ -> Alcotest.fail "log exists"

let test_kernel_wronly_truncates () =
  let k = make_kernel () in
  let fd = Kernel.sys_open k ~path:"/etc/motd" ~flags:Syscall.o_wronly in
  ignore (Kernel.sys_write k ~fd ~data:(Kernel.Shared_data "fresh"));
  match Vfs.contents (Kernel.vfs k) ~path:"/etc/motd" with
  | Ok c -> Alcotest.(check string) "truncated+written" "fresh" c
  | Error _ -> Alcotest.fail "motd exists"

let test_kernel_write_readonly_fd_fails () =
  let k = make_kernel () in
  let fd = Kernel.sys_open k ~path:"/etc/motd" ~flags:Syscall.o_rdonly in
  Alcotest.(check int) "-1" (-1) (Kernel.sys_write k ~fd ~data:(Kernel.Shared_data "x"))

let test_kernel_stdout_capture () =
  let k = make_kernel () in
  ignore (Kernel.sys_write k ~fd:1 ~data:(Kernel.Shared_data "out"));
  ignore (Kernel.sys_write k ~fd:2 ~data:(Kernel.Shared_data "err"));
  Alcotest.(check string) "stdout" "out" (Kernel.stdout_contents k);
  Alcotest.(check string) "stderr" "err" (Kernel.stderr_contents k)

let test_kernel_setuid_family () =
  let k = make_kernel () in
  Alcotest.(check int) "getuid root" 0 (Kernel.sys_getuid k);
  Alcotest.(check int) "setgid" 0 (Kernel.sys_setgid k ~gid:33);
  Alcotest.(check int) "getgid" 33 (Kernel.sys_getgid k);
  Alcotest.(check int) "seteuid ok" 0 (Kernel.sys_seteuid k ~uid:33);
  Alcotest.(check int) "geteuid" 33 (Kernel.sys_geteuid k);
  Alcotest.(check int) "getuid still 0" 0 (Kernel.sys_getuid k);
  (* Regain effective root (real uid is still 0), then drop all ids. *)
  Alcotest.(check int) "regain" 0 (Kernel.sys_seteuid k ~uid:0);
  Alcotest.(check int) "setuid drops" 0 (Kernel.sys_setuid k ~uid:33);
  (* Once fully dropped, escalation fails. *)
  Alcotest.(check int) "seteuid(0) fails" (Nv_vm.Word.of_signed (-1))
    (Kernel.sys_seteuid k ~uid:0)

let test_kernel_exit () =
  let k = make_kernel () in
  Alcotest.(check bool) "running" true (Kernel.exit_status k = None);
  ignore (Kernel.sys_exit k ~status:3);
  Alcotest.(check bool) "exited 3" true (Kernel.exit_status k = Some 3)

let test_kernel_bad_fd () =
  let k = make_kernel () in
  Alcotest.(check int) "close bad" (Nv_vm.Word.of_signed (-1)) (Kernel.sys_close k ~fd:40);
  match Kernel.sys_read k ~fd:40 ~len:10 with
  | -1, Kernel.Shared_data "" -> ()
  | _ -> Alcotest.fail "read bad fd"

let test_kernel_fd_reuse () =
  let k = make_kernel () in
  let fd1 = Kernel.sys_open k ~path:"/etc/motd" ~flags:Syscall.o_rdonly in
  ignore (Kernel.sys_close k ~fd:fd1);
  let fd2 = Kernel.sys_open k ~path:"/etc/motd" ~flags:Syscall.o_rdonly in
  Alcotest.(check int) "lowest fd reused" fd1 fd2

let test_kernel_fd_exhaustion () =
  let fs = Vfs.create () in
  Vfs.install fs ~path:"/f" "x";
  let k = Kernel.create ~fd_limit:6 ~variants:1 fs in
  (* fd 3 is the preopened listener, so opens start at 4. *)
  let fd1 = Kernel.sys_open k ~path:"/f" ~flags:0 in
  let fd2 = Kernel.sys_open k ~path:"/f" ~flags:0 in
  Alcotest.(check (pair int int)) "two fds" (4, 5) (fd1, fd2);
  Alcotest.(check int) "exhausted" (Nv_vm.Word.of_signed (-1))
    (Kernel.sys_open k ~path:"/f" ~flags:0)

(* A failed unshared open must not have truncated any per-variant copy
   (regression: the old code truncated copies one by one before
   discovering a later copy was missing, leaving the diversified files
   diverged). *)
let test_kernel_unshared_open_no_partial_truncate () =
  let k = make_kernel () in
  Kernel.register_unshared k "/etc/notes";
  Vfs.install (Kernel.vfs k) ~path:"/etc/notes-0" "keep me";
  (* /etc/notes-1 does not exist, so the open must fail as a whole. *)
  Alcotest.(check int) "open fails" (Nv_vm.Word.of_signed (-1))
    (Kernel.sys_open k ~path:"/etc/notes" ~flags:Syscall.o_wronly);
  match Vfs.contents (Kernel.vfs k) ~path:"/etc/notes-0" with
  | Ok c -> Alcotest.(check string) "variant 0 copy not truncated" "keep me" c
  | Error _ -> Alcotest.fail "variant 0 copy should still exist"

(* The preopened listener slot must never be freed (regression: close
   used to free it, letting the next open reallocate fd 3 while accept
   traffic still queued). *)
let test_kernel_listener_fd_reserved () =
  let k = make_kernel () in
  Alcotest.(check int) "close listener fails" (Nv_vm.Word.of_signed (-1))
    (Kernel.sys_close k ~fd:Kernel.listen_fd);
  let fd = Kernel.sys_open k ~path:"/etc/motd" ~flags:Syscall.o_rdonly in
  Alcotest.(check bool) "listener slot not reallocated" true (fd > Kernel.listen_fd);
  let conn = Kernel.connect k in
  Socket.client_send conn "ping";
  Alcotest.(check bool) "accept still works" true
    (Kernel.sys_accept k ~fd:Kernel.listen_fd > Kernel.listen_fd)

(* A vanished backing file is an I/O error, not end-of-file
   (regression: read_desc mapped VFS errors to "", indistinguishable
   from EOF). *)
let test_kernel_read_error_not_eof () =
  let k = make_kernel () in
  let fd = Kernel.sys_open k ~path:"/etc/motd" ~flags:Syscall.o_rdonly in
  (match Vfs.remove (Kernel.vfs k) "/etc/motd" with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "remove");
  match Kernel.sys_read k ~fd ~len:10 with
  | -1, Kernel.Shared_data "" -> ()
  | n, _ -> Alcotest.fail (Printf.sprintf "expected -1, got %d" n)

(* An unshared read that fails on one copy must fail whole with no
   position advanced on any copy. *)
let test_kernel_unshared_read_error_no_partial_pos () =
  let k = make_kernel () in
  Kernel.register_unshared k "/etc/passwd";
  let fd = Kernel.sys_open k ~path:"/etc/passwd" ~flags:Syscall.o_rdonly in
  let first =
    match Kernel.sys_read k ~fd ~len:10 with
    | _, Kernel.Per_variant chunks -> chunks
    | _ -> Alcotest.fail "per-variant read expected"
  in
  let saved = Result.get_ok (Vfs.contents (Kernel.vfs k) ~path:"/etc/passwd-1") in
  (match Vfs.remove (Kernel.vfs k) "/etc/passwd-1" with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "remove");
  (match Kernel.sys_read k ~fd ~len:10 with
  | -1, Kernel.Shared_data "" -> ()
  | _ -> Alcotest.fail "error expected while a copy is missing");
  Vfs.install (Kernel.vfs k) ~path:"/etc/passwd-1" saved;
  match Kernel.sys_read k ~fd ~len:10 with
  | _, Kernel.Per_variant chunks ->
    let full0 = Result.get_ok (Vfs.contents (Kernel.vfs k) ~path:"/etc/passwd-0") in
    (* If the failed read had advanced variant 0's position, this
       concatenation would have a hole. *)
    Alcotest.(check string) "variant 0 continues seamlessly" (String.sub full0 0 20)
      (first.(0) ^ chunks.(0))
  | _ -> Alcotest.fail "per-variant read expected"

(* An unshared write that cannot succeed on every copy must fail with
   no bytes written anywhere. *)
let test_kernel_unshared_write_no_partial () =
  let k = make_kernel () in
  Kernel.register_unshared k "/var/cache";
  Vfs.install (Kernel.vfs k) ~path:"/var/cache-0" "a";
  Vfs.install (Kernel.vfs k) ~path:"/var/cache-1" "b";
  let fd = Kernel.sys_open k ~path:"/var/cache" ~flags:Syscall.o_append in
  Alcotest.(check bool) "opened" true (fd >= 3);
  (match Vfs.remove (Kernel.vfs k) "/var/cache-1" with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "remove");
  Alcotest.(check int) "write fails" (-1)
    (Kernel.sys_write k ~fd ~data:(Kernel.Shared_data "X"));
  match Vfs.contents (Kernel.vfs k) ~path:"/var/cache-0" with
  | Ok c -> Alcotest.(check string) "variant 0 copy untouched" "a" c
  | Error _ -> Alcotest.fail "variant 0 copy should still exist"

(* ------------------------------------------------------------------ *)
(* Syscall metadata                                                    *)
(* ------------------------------------------------------------------ *)

let test_syscall_signatures () =
  (match Syscall.signature Syscall.sys_read with
  | Some { Syscall.name = "read"; args = [ Syscall.Int; Syscall.Ptr_out; Syscall.Len ]; _ } ->
    ()
  | _ -> Alcotest.fail "read signature");
  (match Syscall.signature Syscall.sys_seteuid with
  | Some { Syscall.args = [ Syscall.Uid ]; ret = Syscall.Ret_int; _ } -> ()
  | _ -> Alcotest.fail "seteuid signature");
  match Syscall.signature Syscall.sys_getuid with
  | Some { Syscall.ret = Syscall.Ret_uid; _ } -> ()
  | _ -> Alcotest.fail "getuid returns uid"

let test_syscall_names () =
  Alcotest.(check string) "uid_value" "uid_value" (Syscall.name Syscall.sys_uid_value);
  Alcotest.(check string) "unknown" "sys#99" (Syscall.name 99)

let test_syscall_detection_range () =
  Alcotest.(check bool) "uid_value" true (Syscall.is_detection_call Syscall.sys_uid_value);
  Alcotest.(check bool) "cc_geq" true (Syscall.is_detection_call Syscall.sys_cc_geq);
  Alcotest.(check bool) "read not" false (Syscall.is_detection_call Syscall.sys_read)

let test_vfs_size_and_read_range () =
  let fs = world () in
  (match Vfs.size fs ~path:"/home/alice/notes.txt" with
  | Ok n -> Alcotest.(check int) "size" 6 n
  | Error e -> Alcotest.failf "size: %s" (Vfs.error_to_string e));
  (match Vfs.size fs ~path:"/etc" with
  | Error Vfs.Eisdir -> ()
  | Ok _ | Error _ -> Alcotest.fail "size of a directory should be Eisdir");
  (match Vfs.read_range fs ~path:"/home/alice/notes.txt" ~pos:1 ~len:3 with
  | Ok s -> Alcotest.(check string) "middle slice" "ell" s
  | Error e -> Alcotest.failf "read_range: %s" (Vfs.error_to_string e));
  (match Vfs.read_range fs ~path:"/home/alice/notes.txt" ~pos:4 ~len:100 with
  | Ok s -> Alcotest.(check string) "clamped at EOF" "o\n" s
  | Error e -> Alcotest.failf "read_range: %s" (Vfs.error_to_string e));
  match Vfs.read_range fs ~path:"/home/alice/notes.txt" ~pos:100 ~len:4 with
  | Ok s -> Alcotest.(check string) "past EOF is empty" "" s
  | Error e -> Alcotest.failf "read_range: %s" (Vfs.error_to_string e)

let () =
  Alcotest.run "nv_os"
    [
      ( "cred",
        [
          Alcotest.test_case "superuser" `Quick test_cred_superuser;
          Alcotest.test_case "setuid root drops all" `Quick test_cred_setuid_root_drops_all;
          Alcotest.test_case "setuid unprivileged" `Quick test_cred_setuid_unprivileged;
          Alcotest.test_case "seteuid toggle" `Quick test_cred_seteuid_toggle;
          Alcotest.test_case "no escalation" `Quick
            test_cred_seteuid_ordinary_user_cannot_escalate;
          Alcotest.test_case "setgid" `Quick test_cred_setgid;
        ] );
      ( "passwd",
        [
          Alcotest.test_case "roundtrip" `Quick test_passwd_roundtrip;
          Alcotest.test_case "lookup" `Quick test_passwd_lookup;
          Alcotest.test_case "parse errors" `Quick test_passwd_parse_errors;
          Alcotest.test_case "reexpress" `Quick test_passwd_reexpress;
          Alcotest.test_case "group roundtrip" `Quick test_passwd_group_roundtrip;
        ]
        @ qsuite [ prop_passwd_reexpress_involution ] );
      ( "passwd-index",
        [
          Alcotest.test_case "sublinear lookups" `Quick test_index_sublinear;
          Alcotest.test_case "size and misses" `Quick test_index_size_and_misses;
          Alcotest.test_case "generate deterministic" `Quick test_generate_deterministic;
        ]
        @ qsuite [ prop_index_agrees_with_linear ] );
      ( "vfs",
        [
          Alcotest.test_case "read perms" `Quick test_vfs_read;
          Alcotest.test_case "root bypasses" `Quick test_vfs_root_bypasses;
          Alcotest.test_case "owner write" `Quick test_vfs_owner_write;
          Alcotest.test_case "enoent/eisdir" `Quick test_vfs_enoent_and_eisdir;
          Alcotest.test_case "list dir" `Quick test_vfs_list_dir;
          Alcotest.test_case "install replaces" `Quick test_vfs_install_replaces;
          Alcotest.test_case "stat" `Quick test_vfs_stat;
          Alcotest.test_case "truncate" `Quick test_vfs_truncate;
          Alcotest.test_case "remove" `Quick test_vfs_remove;
          Alcotest.test_case "dump files" `Quick test_vfs_dump_files;
          Alcotest.test_case "size and read_range" `Quick test_vfs_size_and_read_range;
          Alcotest.test_case "traversal normalization" `Quick
            test_vfs_traversal_normalization;
        ]
        @ qsuite [ prop_vfs_dotdot_bounded ] );
      ( "socket",
        [
          Alcotest.test_case "basic exchange" `Quick test_socket_basic_exchange;
          Alcotest.test_case "EOF" `Quick test_socket_eof;
          Alcotest.test_case "partial reads" `Quick test_socket_partial_reads;
          Alcotest.test_case "send after close" `Quick test_socket_send_after_close_rejected;
        ] );
      ( "kernel",
        [
          Alcotest.test_case "open/read/close" `Quick test_kernel_open_read_close;
          Alcotest.test_case "open missing" `Quick test_kernel_open_missing;
          Alcotest.test_case "permissions" `Quick test_kernel_permission_enforced;
          Alcotest.test_case "unshared passwd" `Quick test_kernel_unshared_passwd;
          Alcotest.test_case "unshared missing copy" `Quick test_kernel_unshared_missing_copy;
          Alcotest.test_case "other paths stay shared" `Quick
            test_kernel_shared_open_of_registered_other_path;
          Alcotest.test_case "accept flow" `Quick test_kernel_accept_flow;
          Alcotest.test_case "log append" `Quick test_kernel_write_log_file;
          Alcotest.test_case "wronly truncates" `Quick test_kernel_wronly_truncates;
          Alcotest.test_case "readonly write fails" `Quick test_kernel_write_readonly_fd_fails;
          Alcotest.test_case "stdout capture" `Quick test_kernel_stdout_capture;
          Alcotest.test_case "setuid family" `Quick test_kernel_setuid_family;
          Alcotest.test_case "exit" `Quick test_kernel_exit;
          Alcotest.test_case "bad fd" `Quick test_kernel_bad_fd;
          Alcotest.test_case "fd reuse" `Quick test_kernel_fd_reuse;
          Alcotest.test_case "fd exhaustion" `Quick test_kernel_fd_exhaustion;
          Alcotest.test_case "unshared open: no partial truncate" `Quick
            test_kernel_unshared_open_no_partial_truncate;
          Alcotest.test_case "listener fd reserved" `Quick test_kernel_listener_fd_reserved;
          Alcotest.test_case "read error is not EOF" `Quick test_kernel_read_error_not_eof;
          Alcotest.test_case "unshared read error: no partial pos" `Quick
            test_kernel_unshared_read_error_no_partial_pos;
          Alcotest.test_case "unshared write: no partial" `Quick
            test_kernel_unshared_write_no_partial;
        ] );
      ( "syscall",
        [
          Alcotest.test_case "signatures" `Quick test_syscall_signatures;
          Alcotest.test_case "names" `Quick test_syscall_names;
          Alcotest.test_case "detection range" `Quick test_syscall_detection_range;
        ] );
    ]
