(** Process-wide metrics: counters, gauges, histograms.

    A {!t} is a registry of named metrics. Names are dot-separated
    paths built from {!scope}s (e.g. ["monitor.calls.read"]); a metric
    is created on first use and shared by every later lookup of the
    same name. All registries are independent: each N-variant system
    gets its own so concurrent systems in one process (tests, the
    bench harness) do not pollute each other, while {!global} serves
    code that wants one process-wide registry.

    The registry is deterministic — no wall-clock time, no randomness —
    so metric output is reproducible for a fixed workload. Timers are
    driven by an explicit clock function (simulated seconds, retired
    instructions, ...), never the host clock. *)

type t
(** A metric registry. *)

val create : unit -> t

val global : t
(** The shared process-wide registry. *)

(** {1 Scopes} *)

type scope
(** A name prefix inside a registry ("monitor", "kernel.io", ...). *)

val scope : t -> string -> scope
val sub : scope -> string -> scope
val registry : scope -> t

(** {1 Counters} *)

type counter

val counter : scope -> string -> counter
(** Get or create. Raises [Invalid_argument] if the name is already a
    metric of another kind. *)

val incr : counter -> unit
val add : counter -> int -> unit
val counter_value : counter -> int

(** {1 Gauges} *)

type gauge

val gauge : scope -> string -> gauge
val set_gauge : gauge -> float -> unit

val max_gauge : gauge -> float -> unit
(** Raise the gauge to the given value if it is higher (high-water
    marks). *)

val gauge_value : gauge -> float

(** {1 Histograms} *)

type histogram

val histogram : scope -> string -> histogram
val observe : histogram -> float -> unit
val histogram_count : histogram -> int
val histogram_sum : histogram -> float

val histogram_percentile : histogram -> float -> float
(** Percentile over the retained samples: a 4096-slot uniform reservoir
    maintained with Vitter's Algorithm R (exact until the reservoir
    fills). The replacement PRNG is seeded from the metric's full name,
    so a fixed observation sequence always yields the same estimate.
    Returns [0.] for an empty histogram. *)

val histogram_p999 : histogram -> float
(** [histogram_percentile h 99.9] — the tail-latency figure fleet SLO
    reports are built on. *)

(** {1 Timers}

    A timer observes elapsed "time" on an explicit monotonic clock
    into a histogram. The clock is any non-decreasing float source:
    [Engine.now], instructions retired, bytes processed. Deltas are
    clamped at zero so a (buggy) non-monotonic clock can never record
    negative durations. *)

type timer

val timer : scope -> string -> clock:(unit -> float) -> timer
(** The underlying histogram is registered under the given name. *)

val timer_histogram : timer -> histogram

val start : timer -> unit -> unit
(** [start tm] samples the clock and returns a stop function; calling
    it observes [max 0 (clock () - start)]. Each stop observes once. *)

val time : timer -> (unit -> 'a) -> 'a
(** Run a thunk under {!start}/stop (the observation happens even if
    the thunk raises). *)

(** {1 Lookup} *)

val find_counter : t -> string -> int option
(** Value of the counter with this exact full name, if any. *)

val find_gauge : t -> string -> float option

val counters_under : t -> prefix:string -> (string * int) list
(** All counters whose full name starts with [prefix], as
    [(name-without-prefix, value)], sorted by name. *)

(** {1 Export} *)

module Json : sig
  type value =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | List of value list
    | Obj of (string * value) list

  val to_string : value -> string
  (** Compact rendering; integral [Num]s print without a decimal
      point. *)

  val of_string : string -> (value, string) result
  (** Parser for the subset this module emits (all of JSON except
      [\uXXXX] escapes). *)

  val member : string -> value -> value option
  (** Field lookup in an [Obj]; [None] elsewhere. *)
end

val to_json_value : t -> Json.value
(** [{"counters": {..}, "gauges": {..}, "histograms": {name: {count,
    sum, min, max, p50, p90, p99}}}], keys sorted. *)

val to_json : t -> string

val to_text : t -> string
(** One metric per line, sorted by name:
    [counter monitor.rendezvous 12]. *)

val dump : ?format:[ `Text | `Json ] -> t -> out_channel -> unit
(** Write {!to_text} (default) or {!to_json} plus a final newline. *)
