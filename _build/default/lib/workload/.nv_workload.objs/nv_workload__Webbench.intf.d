lib/workload/webbench.mli: Cost_model Format Measure
