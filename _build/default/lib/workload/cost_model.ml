type t = {
  ns_per_instruction : float;
  syscall_ns : float;
  check_ns_per_variant : float;
  rtt_s : float;
  bandwidth_bytes_per_s : float;
}

(* Calibrated so that Configuration 1 unsaturated sits near the
   paper's operating point (~1 MB/s, ~6 ms); see EXPERIMENTS.md. *)
let default =
  {
    ns_per_instruction = 60.0;
    syscall_ns = 9000.0;
    check_ns_per_variant = 2500.0;
    rtt_s = 0.004;
    bandwidth_bytes_per_s = 11.0e6;
  }

let cpu_seconds t ~instructions ~rendezvous ~variants =
  let instr = float_of_int instructions *. t.ns_per_instruction in
  (* The framework's syscall wrappers run once per variant (each
     variant enters the kernel and is parked at the rendezvous), so
     kernel-entry cost scales with the variant count. *)
  let syscalls = float_of_int (rendezvous * variants) *. t.syscall_ns in
  let checks =
    float_of_int rendezvous *. t.check_ns_per_variant *. float_of_int (max 0 (variants - 1))
  in
  (instr +. syscalls +. checks) *. 1e-9

let wire_seconds t ~bytes = float_of_int bytes /. t.bandwidth_bytes_per_s
