lib/os/kernel.mli: Cred Socket Vfs
