(* Tests for nv_transform: instrumentation counts, per-variant
   reexpression, both comparison-exposure modes, and end-to-end normal
   equivalence / detection of transformed programs with UID constants. *)

open Nv_transform
module Ut = Uid_transform
module Variation = Nv_core.Variation
module Reexpression = Nv_core.Reexpression
module Monitor = Nv_core.Monitor
module Nsystem = Nv_core.Nsystem
module Alarm = Nv_core.Alarm
module Image = Nv_vm.Image
module Memory = Nv_vm.Memory

let check_tprog source =
  match Nv_minic.Typecheck.check (Nv_minic.Parser.parse source) with
  | Ok t -> t
  | Error (e :: _) -> Alcotest.failf "type error: %a" Nv_minic.Typecheck.pp_error e
  | Error [] -> Alcotest.fail "typecheck failed"

let contains haystack needle =
  let n = String.length needle in
  let rec scan i =
    i + n <= String.length haystack && (String.sub haystack i n = needle || scan (i + 1))
  in
  scan 0

(* ------------------------------------------------------------------ *)
(* Instrumentation accounting                                          *)
(* ------------------------------------------------------------------ *)

let test_explication_of_negated_uid () =
  let t = check_tprog "int main(void) { if (!getuid()) { return 1; } return 0; }" in
  let _, report = Ut.instrument t in
  Alcotest.(check int) "one explication" 1 report.Ut.explications;
  (* The explicated comparison becomes a cc_eq call... *)
  Alcotest.(check int) "one cc" 1 report.Ut.cc_calls;
  (* ...and the explicit 0 becomes a reexpressible constant. *)
  Alcotest.(check int) "one constant" 1 report.Ut.constants

let test_bare_uid_condition_explicated () =
  let t = check_tprog "int main(void) { if (getuid()) { return 1; } return 0; }" in
  let _, report = Ut.instrument t in
  Alcotest.(check int) "explicated" 1 report.Ut.explications;
  Alcotest.(check int) "cc_neq inserted" 1 report.Ut.cc_calls

let test_comparison_exposure_counts () =
  let t =
    check_tprog
      {|int main(void) {
          uid_t a = getuid();
          uid_t b = geteuid();
          if (a == b) { return 1; }
          if (a < b) { return 2; }
          if (a >= b) { return 3; }
          return 0;
        }|}
  in
  let _, report = Ut.instrument t in
  Alcotest.(check int) "three cc calls" 3 report.Ut.cc_calls;
  (* cc-called conditions are already checked: no cond_chk on top. *)
  Alcotest.(check int) "no cond_chk" 0 report.Ut.cond_chks

let test_cond_chk_on_tainted_condition () =
  let t =
    check_tprog
      {|int main(void) {
          uid_t a = getuid();
          int ok = cc_eq(a, a);
          if (ok) { return 0; }
          return 1;
        }|}
  in
  let _, report = Ut.instrument t in
  Alcotest.(check int) "cond_chk on tainted int" 1 report.Ut.cond_chks

let test_untainted_conditions_untouched () =
  let t =
    check_tprog
      {|int main(void) {
          int n = 5;
          while (n > 0) { n = n - 1; }
          if (n == 0) { return 0; }
          return 1;
        }|}
  in
  let _, report = Ut.instrument t in
  Alcotest.(check int) "no cond_chk" 0 report.Ut.cond_chks;
  Alcotest.(check int) "no cc" 0 report.Ut.cc_calls;
  Alcotest.(check int) "no constants" 0 report.Ut.constants

let test_uid_value_on_user_function_args () =
  let t =
    check_tprog
      {|int audit(uid_t who) { return (int)0; }
        int main(void) {
          uid_t me = getuid();
          audit(me);
          return 0;
        }|}
  in
  let _, report = Ut.instrument t in
  Alcotest.(check int) "uid_value wraps the argument" 1 report.Ut.uid_value_calls

let test_uid_value_on_uid_returns () =
  let t =
    check_tprog
      {|uid_t pick(void) {
          uid_t me = getuid();
          return me;
        }
        int main(void) { pick(); return 0; }|}
  in
  let _, report = Ut.instrument t in
  Alcotest.(check int) "uid_value wraps the return" 1 report.Ut.uid_value_calls

let test_builtin_args_not_double_wrapped () =
  (* setuid's argument is already checked by the monitor; no uid_value. *)
  let t = check_tprog "int main(void) { return seteuid(getuid()); }" in
  let _, report = Ut.instrument t in
  Alcotest.(check int) "no uid_value" 0 report.Ut.uid_value_calls

let test_log_scrubbing () =
  let source =
    Nv_minic.Runtime.with_runtime
      {|int main(void) {
          write_int(1, (int)getuid());
          return 0;
        }|}
  in
  let t = check_tprog source in
  let _, report = Ut.instrument t in
  Alcotest.(check int) "one scrub" 1 report.Ut.log_scrubs;
  let _, report_off = Ut.instrument ~scrub_logs:false t in
  Alcotest.(check int) "scrubbing off" 0 report_off.Ut.log_scrubs

let test_total_changes () =
  let r =
    {
      Ut.constants = 15; explications = 3; uid_value_calls = 16; cc_calls = 22;
      cond_chks = 20; reversed_comparisons = 0; log_scrubs = 0;
    }
  in
  (* The paper's Apache total: 73 changes. *)
  Alcotest.(check int) "73" 73 (Ut.total_changes r)

(* ------------------------------------------------------------------ *)
(* Per-variant reexpression                                            *)
(* ------------------------------------------------------------------ *)

let test_variant_source_shows_reexpressed_constant () =
  let source = "uid_t worker = 33; int main(void) { return seteuid(worker); }" in
  match Ut.variant_source ~f:(Reexpression.uid_for_variant 1) source with
  | Error e -> Alcotest.fail e
  | Ok text ->
    Alcotest.(check bool) "33 reexpressed" true
      (contains text (string_of_int (33 lxor 0x7FFFFFFF)));
    Alcotest.(check bool) "plain 33 gone" false (contains text " 33;")

let test_variant0_source_unchanged_constants () =
  let source = "uid_t worker = 33; int main(void) { return seteuid(worker); }" in
  match Ut.variant_source ~f:(Reexpression.uid_for_variant 0) source with
  | Error e -> Alcotest.fail e
  | Ok text -> Alcotest.(check bool) "33 kept" true (contains text "33")

let test_reexpress_involution () =
  let t = check_tprog "int main(void) { uid_t u = 33; if (u == 33) { return 1; } return 0; }" in
  let instrumented, _ = Ut.instrument t in
  let f = Reexpression.uid_for_variant 1 in
  let once = Ut.reexpress ~f instrumented in
  let twice = Ut.reexpress ~f once in
  Alcotest.(check bool) "involution" true (twice = instrumented)

(* ------------------------------------------------------------------ *)
(* End-to-end: transformed programs under the monitor                  *)
(* ------------------------------------------------------------------ *)

let build ?mode ~variation source =
  match Ut.transform_source ?mode ~variation (Nv_minic.Runtime.with_runtime source) with
  | Ok (images, report) -> (images, report)
  | Error e -> Alcotest.fail e

let expect_exit expected outcome =
  match outcome with
  | Monitor.Exited status -> Alcotest.(check int) "exit status" expected status
  | Monitor.Alarm reason -> Alcotest.failf "unexpected alarm: %a" Alarm.pp reason
  | Monitor.Blocked_on_accept -> Alcotest.fail "unexpected accept block"
  | Monitor.Out_of_fuel -> Alcotest.fail "out of fuel"

(* The privilege-drop pattern with explicit UID constants - exactly
   what required transformation in the paper's Apache study. *)
let privilege_drop_source =
  {|uid_t worker_uid = 33;
    int main(void) {
      if (getuid() != 0) { return 1; }
      if (seteuid(worker_uid) != 0) { return 2; }
      if (geteuid() != worker_uid) { return 3; }
      if (seteuid(0) != 0) { return 4; }
      if (!geteuid()) { return 0; }
      return 5;
    }|}

let test_e2e_constants_normal_equivalence () =
  let images, report = build ~variation:Variation.uid_diversity privilege_drop_source in
  Alcotest.(check bool) "constants found" true (report.Ut.constants >= 4);
  let sys = Nsystem.create ~variation:Variation.uid_diversity images in
  expect_exit 0 (Nsystem.run sys)

let test_e2e_user_space_mode () =
  let images, _ = build ~mode:Ut.User_space ~variation:Variation.uid_diversity privilege_drop_source in
  let sys = Nsystem.create ~variation:Variation.uid_diversity images in
  expect_exit 0 (Nsystem.run sys)

let test_e2e_inequalities_user_space_reversed () =
  let source =
    {|uid_t lo = 10;
      uid_t hi = 1000;
      int main(void) {
        if (lo < hi) { return 0; }
        return 1;
      }|}
  in
  let images, report = build ~mode:Ut.User_space ~variation:Variation.uid_diversity source in
  Alcotest.(check int) "variant 1 comparisons reversed" 1 report.Ut.reversed_comparisons;
  let sys = Nsystem.create ~variation:Variation.uid_diversity images in
  expect_exit 0 (Nsystem.run sys)

let test_e2e_inequalities_cc_mode () =
  let source =
    {|uid_t lo = 10;
      uid_t hi = 1000;
      int main(void) {
        if (lo < hi) { return 0; }
        return 1;
      }|}
  in
  let images, report = build ~variation:Variation.uid_diversity source in
  Alcotest.(check int) "cc_lt used" 1 report.Ut.cc_calls;
  Alcotest.(check int) "no reversal needed" 0 report.Ut.reversed_comparisons;
  let sys = Nsystem.create ~variation:Variation.uid_diversity images in
  expect_exit 0 (Nsystem.run sys)

let test_e2e_getpwnam_with_constants () =
  (* Full path: unshared passwd parse + constant comparison + privilege
     drop, transformed. *)
  let source =
    {|int main(void) {
        uid_t www = getpwnam_uid("www");
        if (www == (uid_t)(-1)) { return 1; }
        if (www != 33) { return 2; }
        if (seteuid(www) != 0) { return 3; }
        int fd = sys_open("/secret/shadow", 0);
        if (fd >= 0) { return 4; }
        return 0;
      }|}
  in
  let images, _ = build ~variation:Variation.uid_diversity source in
  let sys = Nsystem.create ~variation:Variation.uid_diversity images in
  expect_exit 0 (Nsystem.run sys)

let test_e2e_detects_constant_corruption () =
  (* Corrupt the stored worker_uid with the same concrete value in both
     variants mid-run: the transformed system alarms at the seteuid. *)
  let source =
    {|uid_t worker_uid = 33;
      int main(void) {
        int fd = sys_accept(3);
        sys_close(fd);
        if (seteuid(worker_uid) != 0) { return 1; }
        return 0;
      }|}
  in
  let images, _ = build ~variation:Variation.uid_diversity source in
  let sys = Nsystem.create ~variation:Variation.uid_diversity images in
  (match Nsystem.run sys with
  | Monitor.Blocked_on_accept -> ()
  | _ -> Alcotest.fail "expected block");
  let monitor = Nsystem.monitor sys in
  for i = 0 to 1 do
    let loaded = Monitor.loaded monitor i in
    Memory.store_word loaded.Image.memory (Image.abs_symbol loaded "worker_uid") 0
  done;
  ignore (Nsystem.connect sys);
  match Nsystem.run sys with
  | Monitor.Alarm (Alarm.Arg_mismatch _) -> ()
  | other ->
    Alcotest.failf "expected alarm, got %s"
      (match other with
      | Monitor.Exited n -> Printf.sprintf "exit %d" n
      | Monitor.Alarm r -> Alarm.to_string r
      | Monitor.Blocked_on_accept -> "blocked"
      | Monitor.Out_of_fuel -> "fuel")

let test_e2e_cc_catches_comparison_corruption () =
  (* Even a pure comparison (no kernel UID call) is exposed: corrupting
     the value flips nothing observable in user space - the cc_eq
     rendezvous catches the mismatched canonicals. *)
  let source =
    {|uid_t admin = 0;
      int main(void) {
        int fd = sys_accept(3);
        sys_close(fd);
        if (geteuid() == admin) { return 0; }
        return 1;
      }|}
  in
  let images, _ = build ~variation:Variation.uid_diversity source in
  let sys = Nsystem.create ~variation:Variation.uid_diversity images in
  (match Nsystem.run sys with
  | Monitor.Blocked_on_accept -> ()
  | _ -> Alcotest.fail "expected block");
  let monitor = Nsystem.monitor sys in
  for i = 0 to 1 do
    let loaded = Monitor.loaded monitor i in
    Memory.store_word loaded.Image.memory (Image.abs_symbol loaded "admin") 1000
  done;
  ignore (Nsystem.connect sys);
  match Nsystem.run sys with
  | Monitor.Alarm (Alarm.Arg_mismatch { syscall; _ }) ->
    Alcotest.(check string) "detected at cc_eq" "cc_eq" (Nv_os.Syscall.name syscall)
  | other ->
    Alcotest.failf "expected cc_eq alarm, got %s"
      (match other with
      | Monitor.Exited n -> Printf.sprintf "exit %d" n
      | Monitor.Alarm r -> Alarm.to_string r
      | Monitor.Blocked_on_accept -> "blocked"
      | Monitor.Out_of_fuel -> "fuel")

let test_e2e_log_scrub_prevents_false_output_divergence () =
  (* With scrubbing on (default), logging a UID no longer diverges. *)
  let source =
    {|int main(void) {
        write_str(1, "euid is ");
        write_int(1, (int)geteuid());
        write_str(1, "\n");
        return 0;
      }|}
  in
  let images, report = build ~variation:Variation.uid_diversity source in
  Alcotest.(check int) "scrubbed" 1 report.Ut.log_scrubs;
  let sys = Nsystem.create ~variation:Variation.uid_diversity images in
  expect_exit 0 (Nsystem.run sys)

let test_transform_source_error_paths () =
  (match Ut.transform_source ~variation:Variation.uid_diversity "int main(" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "parse error expected");
  match Ut.transform_source ~variation:Variation.uid_diversity "int main(void) { return x; }" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "type error expected"

let () =
  Alcotest.run "nv_transform"
    [
      ( "instrumentation",
        [
          Alcotest.test_case "explication of !uid" `Quick test_explication_of_negated_uid;
          Alcotest.test_case "bare uid condition" `Quick test_bare_uid_condition_explicated;
          Alcotest.test_case "comparison exposure" `Quick test_comparison_exposure_counts;
          Alcotest.test_case "cond_chk on tainted" `Quick test_cond_chk_on_tainted_condition;
          Alcotest.test_case "untainted untouched" `Quick test_untainted_conditions_untouched;
          Alcotest.test_case "uid_value on args" `Quick test_uid_value_on_user_function_args;
          Alcotest.test_case "uid_value on returns" `Quick test_uid_value_on_uid_returns;
          Alcotest.test_case "builtins not wrapped" `Quick test_builtin_args_not_double_wrapped;
          Alcotest.test_case "log scrubbing" `Quick test_log_scrubbing;
          Alcotest.test_case "total changes" `Quick test_total_changes;
        ] );
      ( "reexpression",
        [
          Alcotest.test_case "variant source constants" `Quick
            test_variant_source_shows_reexpressed_constant;
          Alcotest.test_case "variant 0 unchanged" `Quick test_variant0_source_unchanged_constants;
          Alcotest.test_case "involution" `Quick test_reexpress_involution;
        ] );
      ( "end-to-end",
        [
          Alcotest.test_case "constants normal equivalence" `Quick
            test_e2e_constants_normal_equivalence;
          Alcotest.test_case "user-space mode" `Quick test_e2e_user_space_mode;
          Alcotest.test_case "inequalities reversed (user-space)" `Quick
            test_e2e_inequalities_user_space_reversed;
          Alcotest.test_case "inequalities via cc (default)" `Quick test_e2e_inequalities_cc_mode;
          Alcotest.test_case "getpwnam with constants" `Quick test_e2e_getpwnam_with_constants;
          Alcotest.test_case "detects constant corruption" `Quick
            test_e2e_detects_constant_corruption;
          Alcotest.test_case "cc catches comparison corruption" `Quick
            test_e2e_cc_catches_comparison_corruption;
          Alcotest.test_case "log scrub prevents divergence" `Quick
            test_e2e_log_scrub_prevents_false_output_divergence;
          Alcotest.test_case "error paths" `Quick test_transform_source_error_paths;
        ] );
    ]
