lib/core/monitor.mli: Alarm Nv_os Nv_vm Variation
