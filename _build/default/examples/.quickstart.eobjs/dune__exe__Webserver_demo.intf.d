examples/webserver_demo.mli:
