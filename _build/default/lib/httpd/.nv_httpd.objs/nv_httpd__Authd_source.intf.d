lib/httpd/authd_source.mli: Nv_vm
