(* Tests for nv_core: reexpression properties (Table 1), variations,
   the monitor's normal-equivalence and detection behaviour (Sections
   2.2/2.3), detection syscalls (Table 2), and unshared files (3.4). *)

open Nv_core
module Word = Nv_vm.Word
module Cpu = Nv_vm.Cpu
module Memory = Nv_vm.Memory
module Image = Nv_vm.Image
module Kernel = Nv_os.Kernel
module Socket = Nv_os.Socket
module Vfs = Nv_os.Vfs

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let full_word_gen =
  QCheck.map
    (fun (hi, lo) -> Word.mask ((hi lsl 16) lor lo))
    QCheck.(pair (int_bound 0xFFFF) (int_bound 0xFFFF))

(* ------------------------------------------------------------------ *)
(* Reexpression properties                                             *)
(* ------------------------------------------------------------------ *)

let test_reexpr_identity () =
  Alcotest.(check int) "encode" 42 (Reexpression.identity.Reexpression.encode 42);
  Alcotest.(check int) "decode" 42 (Reexpression.identity.Reexpression.decode 42)

let test_reexpr_paper_values () =
  let r1 = Reexpression.uid_for_variant 1 in
  (* In variant 1, 0x7FFFFFFF represents root (Section 3.2). *)
  Alcotest.(check int) "root encodes to key" 0x7FFFFFFF (r1.Reexpression.encode 0);
  Alcotest.(check int) "key decodes to root" 0 (r1.Reexpression.decode 0x7FFFFFFF);
  Alcotest.(check int) "www" (33 lxor 0x7FFFFFFF) (r1.Reexpression.encode 33)

let prop_reexpr_inverse =
  QCheck.Test.make ~name:"inverse property holds for both variants" ~count:1000
    full_word_gen
    (fun x ->
      Reexpression.inverse_holds (Reexpression.uid_for_variant 0) x
      && Reexpression.inverse_holds (Reexpression.uid_for_variant 1) x)

let prop_reexpr_disjoint =
  QCheck.Test.make ~name:"disjointness: R0^-1(x) <> R1^-1(x) for every x" ~count:1000
    full_word_gen
    (fun x ->
      Reexpression.disjoint_at (Reexpression.uid_for_variant 0)
        (Reexpression.uid_for_variant 1) x)

let test_reexpr_high_bit_weakness () =
  (* The paper's admitted weakness: the key leaves bit 31 unflipped, so
     an attack that flips only the high bit of the stored value in both
     variants decodes to the same (wrong) canonical value. *)
  let r0 = Reexpression.uid_for_variant 0 in
  let r1 = Reexpression.uid_for_variant 1 in
  let canonical = 33 in
  let stored0 = r0.Reexpression.encode canonical in
  let stored1 = r1.Reexpression.encode canonical in
  let flipped0 = Word.logxor stored0 Word.high_bit in
  let flipped1 = Word.logxor stored1 Word.high_bit in
  Alcotest.(check int) "decoded equal: escape" (r0.Reexpression.decode flipped0)
    (r1.Reexpression.decode flipped1)

let test_reexpr_table1_complete () =
  (* The paper's four rows plus the portfolio's four (per-variant
     keys, seeded masks, rotation+XOR, addition mod 2^31). *)
  Alcotest.(check int) "eight rows" 8 (List.length Reexpression.table1);
  let paper_uid = List.nth Reexpression.table1 3 in
  Alcotest.(check string) "uid row" "UID" paper_uid.Reexpression.target_type;
  List.iteri
    (fun i row ->
      if i >= 4 then
        Alcotest.(check string)
          (Printf.sprintf "portfolio row %d targets UID" i)
          "UID" row.Reexpression.target_type)
    Reexpression.table1

(* ------------------------------------------------------------------ *)
(* Variations                                                          *)
(* ------------------------------------------------------------------ *)

let test_variation_shapes () =
  Alcotest.(check int) "single" 1 (Variation.count Variation.single);
  Alcotest.(check int) "uid-diversity" 2 (Variation.count Variation.uid_diversity);
  let v = Variation.uid_diversity in
  Alcotest.(check bool) "passwd unshared" true
    (List.mem "/etc/passwd" v.Variation.unshared_paths);
  Alcotest.(check bool) "bases disjoint" true
    (v.Variation.variants.(0).Variation.base <> v.Variation.variants.(1).Variation.base);
  let t = Variation.instruction_tagging in
  Alcotest.(check bool) "tags disjoint" true
    (t.Variation.variants.(0).Variation.tag <> t.Variation.variants.(1).Variation.tag)

(* ------------------------------------------------------------------ *)
(* Portfolio-wide diversity properties                                 *)
(* ------------------------------------------------------------------ *)

let uid_specs_of v = Array.map (fun s -> s.Variation.uid) v.Variation.variants

let prop_portfolio_inverse =
  QCheck.Test.make ~name:"portfolio: inverse holds for every shipped config" ~count:500
    full_word_gen
    (fun x ->
      List.for_all
        (fun (_, v) ->
          Array.for_all (fun r -> Reexpression.inverse_holds r x) (uid_specs_of v))
        Variation.portfolio)

let prop_portfolio_all_pairs_disjoint =
  QCheck.Test.make ~name:"portfolio: all pairs pointwise disjoint" ~count:500
    full_word_gen
    (fun x ->
      List.for_all
        (fun (_, v) ->
          let rs = uid_specs_of v in
          let n = Array.length rs in
          let ok = ref true in
          for i = 0 to n - 1 do
            for j = i + 1 to n - 1 do
              if not (Reexpression.disjoint_at rs.(i) rs.(j) x) then ok := false
            done
          done;
          !ok)
        Variation.portfolio)

let prop_shared_key_regression =
  (* The pre-fix bug, kept as an executable negative: every variant
     >= 1 shared variant 1's key, so pair (1, 2) decodes EVERY word
     identically — a value injected into both is valid in both. The
     all-pairs property above is what rules this out of the shipped
     portfolio. *)
  QCheck.Test.make ~name:"pre-fix shared-key family: pair (1,2) never disjoint"
    ~count:500 full_word_gen
    (fun x ->
      let rs = uid_specs_of (Variation.shared_key 3) in
      not (Reexpression.disjoint_at rs.(1) rs.(2) x))

let prop_constructor_inverse =
  QCheck.Test.make ~name:"new constructors: inverse holds" ~count:500 full_word_gen
    (fun x ->
      List.for_all
        (fun r -> Reexpression.inverse_holds r x)
        [
          Reexpression.rotate ~k:7;
          Reexpression.rot_xor ~k:3 ~key:0x005A5A5A;
          Reexpression.add_mod31 ~offset:0x01000001;
          Reexpression.xor_key ~key:0x01234567;
        ])

let test_portfolio_witnesses () =
  (* The machine-checkable counterpart of the qcheck sampling above:
     selfcheck (inverse + declared form) for every variant, and the
     GF(2)/offset decision procedure proving every pair disjoint. *)
  List.iter
    (fun (name, v) ->
      let rs = uid_specs_of v in
      Array.iter
        (fun r ->
          match Reexpression.selfcheck r with
          | Ok () -> ()
          | Error x ->
            Alcotest.failf "%s: selfcheck of %s failed at 0x%08X" name
              r.Reexpression.name x)
        rs;
      match Reexpression.all_pairs_disjoint rs with
      | Ok () -> ()
      | Error (i, j, _) ->
        Alcotest.failf "%s: pair (%d, %d) not proven disjoint" name i j)
    Variation.portfolio

let test_shared_key_witness_refuted () =
  (* Regression for the N>2 disjointness bug: the solver must refute
     the shared-key family at pair (1, 2) with a concrete collision. *)
  let rs = uid_specs_of (Variation.shared_key 3) in
  match Reexpression.all_pairs_disjoint rs with
  | Ok () -> Alcotest.fail "shared-key family wrongly certified disjoint"
  | Error (i, j, witness) -> (
    Alcotest.(check (pair int int)) "offending pair" (1, 2) (i, j);
    match witness with
    | Some x ->
      Alcotest.(check bool) "collision verified by evaluation" false
        (Reexpression.disjoint_at rs.(1) rs.(2) x)
    | None -> Alcotest.fail "expected a concrete collision witness")

let test_rotation_only_refuted () =
  (* Bare rotations all fix 0: the single-axis family must not pass. *)
  match Reexpression.all_pairs_disjoint (Reexpression.rotation_only_family 3) with
  | Ok () -> Alcotest.fail "bare rotations wrongly certified disjoint"
  | Error _ -> ()

let test_disjointness_verdicts () =
  let open Reexpression in
  (match disjointness (uid_for_variant 1) (uid_for_variant 2) with
  | Proven -> ()
  | _ -> Alcotest.fail "distinct XOR keys must be proven disjoint");
  (match disjointness (rotate ~k:1) (rotate ~k:2) with
  | Refuted x ->
    Alcotest.(check bool) "refutation verified" false
      (disjoint_at (rotate ~k:1) (rotate ~k:2) x)
  | _ -> Alcotest.fail "bare rotations must be refuted");
  (match disjointness (add_mod31 ~offset:5) (add_mod31 ~offset:5) with
  | Refuted _ -> ()
  | _ -> Alcotest.fail "equal offsets must be refuted");
  match disjointness (add_mod31 ~offset:1) (add_mod31 ~offset:2) with
  | Proven -> ()
  | _ -> Alcotest.fail "distinct offsets must be proven disjoint"

let test_composed_shapes () =
  let v = Variation.full_diversity_n 3 in
  Alcotest.(check int) "three variants" 3 (Variation.count v);
  Array.iteri
    (fun i s ->
      Alcotest.(check int) (Printf.sprintf "variant %d index" i) i s.Variation.index;
      Alcotest.(check int) (Printf.sprintf "variant %d tag" i) (i + 1) s.Variation.tag)
    v.Variation.variants;
  let bases = Array.map (fun s -> s.Variation.base) v.Variation.variants in
  Alcotest.(check bool) "bases pairwise distinct" true
    (bases.(0) <> bases.(1) && bases.(1) <> bases.(2) && bases.(0) <> bases.(2));
  Alcotest.(check bool) "passwd unshared" true
    (List.mem "/etc/passwd" v.Variation.unshared_paths);
  let plain = Variation.composed ~n:2 [] in
  Alcotest.(check string) "plain name" "composed-plain-2" plain.Variation.name;
  Alcotest.(check bool) "no unshared files without a uid axis" true
    (plain.Variation.unshared_paths = [])

let test_uid_diversity_n_validation () =
  Alcotest.check_raises "overlap"
    (Invalid_argument "Variation.uid_diversity_n: variant 0 and 1 segments overlap")
    (fun () -> ignore (Variation.uid_diversity_n ~segment_size:0x8000_0001 2));
  Alcotest.check_raises "overflow"
    (Invalid_argument
       "Variation.uid_diversity_n: variant 2 segment overflows the 32-bit address space")
    (fun () -> ignore (Variation.uid_diversity_n ~segment_size:0x4000_0000 3));
  Alcotest.check_raises "positive size"
    (Invalid_argument "Variation.uid_diversity_n: segment size must be positive")
    (fun () -> ignore (Variation.uid_diversity_n ~segment_size:0 3))

let test_alarm_divergent_indices () =
  Alcotest.(check (list int)) "majority of three" [ 2 ]
    (Alarm.divergent_indices [| 5; 5; 7 |]);
  Alcotest.(check (list int)) "minority first" [ 0 ]
    (Alarm.divergent_indices [| 9; 4; 4 |]);
  Alcotest.(check (list int)) "all distinct ties toward variant 0" [ 1; 2 ]
    (Alarm.divergent_indices [| 1; 2; 3 |]);
  Alcotest.(check (list int)) "four variants, split pair" [ 2; 3 ]
    (Alarm.divergent_indices [| 8; 8; 1; 2 |]);
  Alcotest.(check (list int)) "agreement" [] (Alarm.divergent_indices [| 6; 6; 6 |])

(* ------------------------------------------------------------------ *)
(* Monitor plumbing helpers                                            *)
(* ------------------------------------------------------------------ *)

let compile source = Nv_minic.Codegen.compile_source (Nv_minic.Runtime.with_runtime source)

let compile_bare source = Nv_minic.Codegen.compile_source source

let system ?vfs ~variation source =
  Nsystem.of_one_image ?vfs ~variation (compile source)

let expect_exit expected outcome =
  match outcome with
  | Monitor.Exited status -> Alcotest.(check int) "exit status" expected status
  | Monitor.Alarm reason -> Alcotest.failf "unexpected alarm: %a" Alarm.pp reason
  | Monitor.Blocked_on_accept -> Alcotest.fail "unexpected accept block"
  | Monitor.Out_of_fuel -> Alcotest.fail "out of fuel"

let expect_alarm pred outcome =
  match outcome with
  | Monitor.Alarm reason ->
    if not (pred reason) then Alcotest.failf "wrong alarm: %a" Alarm.pp reason
  | Monitor.Exited status -> Alcotest.failf "exited %d instead of alarming" status
  | Monitor.Blocked_on_accept -> Alcotest.fail "blocked instead of alarming"
  | Monitor.Out_of_fuel -> Alcotest.fail "out of fuel"

(* ------------------------------------------------------------------ *)
(* Normal equivalence (Section 2.2)                                    *)
(* ------------------------------------------------------------------ *)

let uid_dance_source =
  {|int main(void) {
      uid_t me = getuid();
      if (seteuid(me) != 0) { return 1; }
      uid_t e = geteuid();
      if (cc_eq(me, e) == 0) { return 2; }
      return 0;
    }|}

let test_normal_equivalence_replicated () =
  expect_exit 0 (Nsystem.run (system ~variation:Variation.replicated uid_dance_source))

let test_normal_equivalence_address_partition () =
  expect_exit 0 (Nsystem.run (system ~variation:Variation.address_partition uid_dance_source))

let test_normal_equivalence_tagging () =
  expect_exit 0 (Nsystem.run (system ~variation:Variation.instruction_tagging uid_dance_source))

let test_normal_equivalence_uid_diversity () =
  (* Constant-free UID flows work without source transformation: the
     reexpression happens entirely at the kernel boundary. *)
  expect_exit 0 (Nsystem.run (system ~variation:Variation.uid_diversity uid_dance_source))

let test_uid_values_differ_inside_variants () =
  (* getuid really does give each variant a different concrete value. *)
  let source = {|uid_t stash;
                 int main(void) { stash = getuid(); return 0; }|} in
  let sys = system ~variation:Variation.uid_diversity source in
  expect_exit 0 (Nsystem.run sys);
  let value i =
    let loaded = Monitor.loaded (Nsystem.monitor sys) i in
    Memory.load_word loaded.Image.memory (Image.abs_symbol loaded "stash")
  in
  Alcotest.(check int) "variant 0 canonical root" 0 (value 0);
  Alcotest.(check int) "variant 1 reexpressed root" 0x7FFFFFFF (value 1)

let test_unshared_passwd_normal_equivalence () =
  (* getpwnam through the unshared /etc/passwd: each variant parses its
     own diversified copy and arrives at the same canonical UID at the
     kernel boundary. *)
  let source =
    {|int main(void) {
        uid_t www = getpwnam_uid("www");
        if (seteuid(www) != 0) { return 1; }
        int fd = sys_open("/secret/shadow", 0);
        if (fd >= 0) { return 2; }
        return 0;
      }|}
  in
  expect_exit 0 (Nsystem.run (system ~variation:Variation.uid_diversity source))

let test_shared_io_replicated_once () =
  let source =
    {|int main(void) {
        int fd = sys_open("/etc/group", 0);
        if (fd < 0) { return 1; }
        char buf[256];
        int n = sys_read(fd, buf, 255);
        sys_close(fd);
        if (n <= 0) { return 2; }
        return 0;
      }|}
  in
  let sys = system ~variation:Variation.address_partition source in
  expect_exit 0 (Nsystem.run sys);
  (* /etc/group is shared under plain address partitioning: exactly one
     kernel open+read+close. *)
  Alcotest.(check bool) "io performed once" true (Kernel.syscalls_executed (Nsystem.kernel sys) > 0)

let test_server_roundtrip_through_monitor () =
  let source =
    {|int main(void) {
        int fd = sys_accept(3);
        char buf[64];
        int n = sys_read(fd, buf, 63);
        buf[n] = '\0';
        write_str(fd, "echo:");
        write_str(fd, buf);
        sys_close(fd);
        return 0;
      }|}
  in
  let sys = system ~variation:Variation.uid_diversity source in
  (match Nsystem.run sys with
  | Monitor.Blocked_on_accept -> ()
  | _ -> Alcotest.fail "expected accept block");
  let conn = Nsystem.connect sys in
  Socket.client_send conn "ping";
  expect_exit 0 (Nsystem.run sys);
  Alcotest.(check string) "response produced once" "echo:ping" (Socket.client_recv conn)

(* ------------------------------------------------------------------ *)
(* Detection (Section 2.3)                                             *)
(* ------------------------------------------------------------------ *)

(* Simulate the effect of a data corruption attack: the same concrete
   bytes land in both variants' memory (the attacker sends one input,
   which the framework replicates). We poke the value directly to keep
   these tests focused on the monitor; end-to-end exploit delivery is
   covered by the nv_attacks tests. *)
let poke_uid_global sys ~name ~value =
  let monitor = Nsystem.monitor sys in
  for i = 0 to Monitor.variant_count monitor - 1 do
    let loaded = Monitor.loaded monitor i in
    Memory.store_word loaded.Image.memory (Image.abs_symbol loaded name) value
  done

let stash_then_seteuid =
  {|uid_t stash;
    int main(void) {
      stash = getuid();
      int fd = sys_accept(3);
      sys_close(fd);
      if (seteuid(stash) != 0) { return 1; }
      return 0;
    }|}

let run_with_midpoint_poke ~variation ~poke source =
  let sys = system ~variation source in
  (match Nsystem.run sys with
  | Monitor.Blocked_on_accept -> ()
  | _ -> Alcotest.fail "expected accept block");
  poke sys;
  ignore (Nsystem.connect sys);
  Nsystem.run sys

let test_detect_uid_corruption_via_seteuid () =
  let outcome =
    run_with_midpoint_poke ~variation:Variation.uid_diversity
      ~poke:(fun sys -> poke_uid_global sys ~name:"stash" ~value:0)
      stash_then_seteuid
  in
  expect_alarm
    (function Alarm.Arg_mismatch { syscall; _ } -> syscall = Nv_os.Syscall.sys_seteuid | _ -> false)
    outcome

let test_no_detection_without_data_diversity () =
  (* The same corruption under plain address partitioning sails through:
     both variants decode the same 0 and the attacker becomes root. *)
  let outcome =
    run_with_midpoint_poke ~variation:Variation.address_partition
      ~poke:(fun sys -> poke_uid_global sys ~name:"stash" ~value:0)
      stash_then_seteuid
  in
  expect_exit 0 outcome

let test_detect_uid_value_exposure () =
  (* uid_value (Table 2) detects corruption even before any real
     UID-bearing kernel call runs. *)
  let source =
    {|uid_t stash;
      int main(void) {
        stash = getuid();
        int fd = sys_accept(3);
        sys_close(fd);
        uid_t checked = uid_value(stash);
        if (cc_eq(checked, stash) == 0) { return 1; }
        return 0;
      }|}
  in
  let outcome =
    run_with_midpoint_poke ~variation:Variation.uid_diversity
      ~poke:(fun sys -> poke_uid_global sys ~name:"stash" ~value:0)
      source
  in
  expect_alarm
    (function
      | Alarm.Arg_mismatch { syscall; _ } -> syscall = Nv_os.Syscall.sys_uid_value
      | _ -> false)
    outcome

let test_uid_value_returns_passed_value () =
  let source =
    {|int main(void) {
        uid_t me = getuid();
        uid_t same = uid_value(me);
        if (cc_eq(me, same) == 0) { return 1; }
        return 0;
      }|}
  in
  expect_exit 0 (Nsystem.run (system ~variation:Variation.uid_diversity source))

let test_detect_partial_overwrite_low_byte () =
  (* Byte-level partial overwrite (Section 2.3): flipping the low byte
     of both variants' stored UID decodes to different values. *)
  let poke sys =
    let monitor = Nsystem.monitor sys in
    for i = 0 to Monitor.variant_count monitor - 1 do
      let loaded = Monitor.loaded monitor i in
      let addr = Image.abs_symbol loaded "stash" in
      Memory.store_byte loaded.Image.memory addr 0x00
    done
  in
  let outcome =
    run_with_midpoint_poke ~variation:Variation.uid_diversity ~poke stash_then_seteuid
  in
  expect_alarm (function Alarm.Arg_mismatch _ -> true | _ -> false) outcome

let test_high_bit_overwrite_escapes () =
  (* The documented weakness end-to-end: setting the high bit of the
     stored word in both variants decodes identically, so no alarm. The
     kernel then rejects the out-of-range UID, but the attack is not
     *detected* - exactly the paper's caveat. *)
  let poke sys =
    let monitor = Nsystem.monitor sys in
    for i = 0 to Monitor.variant_count monitor - 1 do
      let loaded = Monitor.loaded monitor i in
      let addr = Image.abs_symbol loaded "stash" in
      let current = Memory.load_word loaded.Image.memory addr in
      Memory.store_word loaded.Image.memory addr (Word.logxor current Word.high_bit)
    done
  in
  let outcome =
    run_with_midpoint_poke ~variation:Variation.uid_diversity ~poke stash_then_seteuid
  in
  (* No Arg_mismatch alarm: the seteuid succeeds or fails identically in
     both variants (euid 0x80000000 is simply a non-root uid here). *)
  expect_exit 0 outcome

let test_detect_cond_divergence () =
  let source =
    {|int flag;
      int main(void) {
        int fd = sys_accept(3);
        sys_close(fd);
        if (cond_chk(flag == 0)) { return 0; }
        return 1;
      }|}
  in
  (* Simulate divergence: the variants end up with different data. *)
  let poke sys =
    let loaded = Monitor.loaded (Nsystem.monitor sys) 1 in
    Memory.store_word loaded.Image.memory (Image.abs_symbol loaded "flag") 1
  in
  let outcome =
    run_with_midpoint_poke ~variation:Variation.uid_diversity ~poke source
  in
  expect_alarm (function Alarm.Cond_mismatch _ -> true | _ -> false) outcome

let test_detect_syscall_divergence () =
  (* Without cond_chk, a UID-dependent branch reaches different
     syscalls; the monitor flags the syscall-number mismatch. *)
  let source =
    {|int main(void) {
        int raw = (int)getuid();
        int fd = sys_accept(3);
        sys_close(fd);
        if (raw < 1000) {
          sys_close(0);
        } else {
          sys_open("/etc/passwd", 0);
        }
        return 0;
      }|}
  in
  let sys = system ~variation:Variation.uid_diversity source in
  (match Nsystem.run sys with
  | Monitor.Blocked_on_accept -> ()
  | _ -> Alcotest.fail "expected accept block");
  ignore (Nsystem.connect sys);
  expect_alarm (function Alarm.Syscall_mismatch _ -> true | _ -> false) (Nsystem.run sys)

let test_detect_output_divergence_uid_in_log () =
  (* The paper's Apache log-file complication: writing the raw UID value
     to a shared log diverges, because each variant holds a different
     concrete representation. *)
  let source =
    {|int main(void) {
        write_int(1, (int)getuid());
        return 0;
      }|}
  in
  (* Detection may fire on the length argument (the decimal renderings
     have different lengths) or on the bytes themselves. *)
  expect_alarm
    (function
      | Alarm.Output_mismatch { fd = 1; _ } -> true
      | Alarm.Arg_mismatch { syscall; _ } -> syscall = Nv_os.Syscall.sys_write
      | _ -> false)
    (Nsystem.run (system ~variation:Variation.uid_diversity source))

let test_detect_absolute_address_attack () =
  (* Figure 1: an injected absolute address is valid in at most one
     variant; the other segfaults. *)
  let source =
    Printf.sprintf "int main(void) { int *p = (int*)0x%X; return *p; }" Variation.low_base
  in
  expect_alarm
    (function
      | Alarm.Variant_fault { variant = 1; fault = Cpu.Segfault _ } -> true | _ -> false)
    (Nsystem.run (system ~variation:Variation.address_partition source))

let test_single_variant_not_protected_by_address_partition () =
  (* The same absolute dereference under the single-variant baseline
     succeeds (reads some code bytes). *)
  let source =
    Printf.sprintf "int main(void) { int *p = (int*)0x%X; if (*p != 0) { return 0; } return 0; }"
      Variation.low_base
  in
  expect_exit 0 (Nsystem.run (system ~variation:Variation.single source))

let test_detect_tag_corruption () =
  (* Code injection under instruction tagging: overwriting an
     instruction's tag byte (as injected code would) faults the variant
     whose expected tag no longer matches. *)
  let source = "int main(void) { int fd = sys_accept(3); sys_close(fd); return 0; }" in
  let sys = system ~variation:Variation.instruction_tagging source in
  (match Nsystem.run sys with
  | Monitor.Blocked_on_accept -> ()
  | _ -> Alcotest.fail "expected accept block");
  (* Corrupt the same code offset in both variants with tag value 1:
     valid for variant 0 (tag 1), invalid for variant 1 (tag 2). *)
  let monitor = Nsystem.monitor sys in
  for i = 0 to 1 do
    let loaded = Monitor.loaded monitor i in
    let layout = loaded.Image.layout in
    let pc = Cpu.pc loaded.Image.cpu in
    let offset = pc - layout.Image.base in
    ignore offset;
    Memory.store_byte loaded.Image.memory pc 1
  done;
  ignore (Nsystem.connect sys);
  expect_alarm
    (function
      | Alarm.Variant_fault { variant = 1; fault = Cpu.Bad_tag _ } -> true | _ -> false)
    (Nsystem.run sys)

let test_exit_mismatch_detected () =
  let source =
    {|int main(void) {
        int fd = sys_accept(3);
        sys_close(fd);
        return (int)getuid();
      }|}
  in
  (* Variant 0 exits 0, variant 1 exits 0x7FFFFFFF: caught at exit. *)
  let sys = system ~variation:Variation.uid_diversity source in
  (match Nsystem.run sys with
  | Monitor.Blocked_on_accept -> ()
  | _ -> Alcotest.fail "expected accept block");
  ignore (Nsystem.connect sys);
  expect_alarm (function Alarm.Exit_mismatch _ -> true | _ -> false) (Nsystem.run sys)

(* ------------------------------------------------------------------ *)
(* Asynchronous events (Section 3.1's scheduling-divergence hazard)    *)
(* ------------------------------------------------------------------ *)

let signal_program =
  {|int sigcount = 0;
    int on_signal(void) {
      sigcount = sigcount + 1;
      return 0;
    }
    int main(void) {
      int fd = sys_accept(3);
      sys_close(fd);
      uid_t me = getuid();
      if (seteuid(me) != 0) { return 9; }
      // compute stretch so a fixed-count delivery lands mid-run
      int spin = 0;
      while (spin < 300) { spin++; }
      return sigcount;
    }|}

let start_blocked sys =
  match Nsystem.run sys with
  | Monitor.Blocked_on_accept -> ()
  | _ -> Alcotest.fail "expected accept block"

let test_signal_at_rendezvous_delivered () =
  let sys = system ~variation:Variation.uid_diversity signal_program in
  start_blocked sys;
  (match
     Monitor.post_signal (Nsystem.monitor sys) ~handler:"on_signal"
       ~mode:Monitor.At_rendezvous
   with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  Alcotest.(check bool) "pending" true (Monitor.signal_pending (Nsystem.monitor sys));
  ignore (Nsystem.connect sys);
  (* Both variants run the handler exactly once, in lockstep; the
     program exits with the handler's counter. *)
  expect_exit 1 (Nsystem.run sys);
  Alcotest.(check bool) "consumed" false (Monitor.signal_pending (Nsystem.monitor sys))

let test_signal_immediate_aligned_variants () =
  (* Without data-divergent parsing, the variants' instruction streams
     are aligned and a fixed-count delivery lands at the same logical
     point: no false alarm. *)
  let sys = system ~variation:Variation.uid_diversity signal_program in
  start_blocked sys;
  (match
     Monitor.post_signal (Nsystem.monitor sys) ~handler:"on_signal"
       ~mode:(Monitor.Immediate { after_instructions = 200 })
   with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  ignore (Nsystem.connect sys);
  expect_exit 1 (Nsystem.run sys)

let divergent_signal_program =
  (* getpwnam parses per-variant unshared files of different lengths,
     so the variants' instruction counts drift; a snapshot of the
     handler's counter taken "at the same instruction count" is then
     taken at different logical points. *)
  {|int sigcount = 0;
    int on_signal(void) {
      sigcount = sigcount + 1;
      return 0;
    }
    int main(void) {
      int fd = sys_accept(3);
      sys_close(fd);
      uid_t www = getpwnam_uid("www");
      int snapshot = sigcount;
      if (cond_chk(snapshot == 0)) {
        if (seteuid(www) != 0) { return 9; }
        return 0;
      }
      return 1;
    }|}

let run_divergent mode =
  let sys = system ~variation:Variation.uid_diversity divergent_signal_program in
  start_blocked sys;
  (match Monitor.post_signal (Nsystem.monitor sys) ~handler:"on_signal" ~mode with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  ignore (Nsystem.connect sys);
  Nsystem.run sys

let test_signal_immediate_false_detection_exists () =
  (* The Section 3.1 hazard: for some delivery points, naive
     fixed-count delivery breaks normal equivalence and triggers a
     false detection. *)
  let rec scan after =
    if after > 6000 then Alcotest.fail "no delivery point caused a false detection"
    else begin
      match run_divergent (Monitor.Immediate { after_instructions = after }) with
      | Monitor.Alarm _ -> ()
      | _ -> scan (after + 100)
    end
  in
  scan 100

let test_signal_at_rendezvous_never_false_alarms () =
  (* The synchronized discipline is immune regardless of when the
     signal is posted: delivery always happens at equivalent states. *)
  match run_divergent Monitor.At_rendezvous with
  | Monitor.Exited _ -> ()
  | Monitor.Alarm reason -> Alcotest.failf "false alarm: %a" Alarm.pp reason
  | _ -> Alcotest.fail "unexpected outcome"

let test_signal_handler_syscall_rejected () =
  let source =
    {|int bad_handler(void) {
        sys_close(0);
        return 0;
      }
      int main(void) {
        int fd = sys_accept(3);
        sys_close(fd);
        return 0;
      }|}
  in
  let sys = system ~variation:Variation.uid_diversity source in
  start_blocked sys;
  (match
     Monitor.post_signal (Nsystem.monitor sys) ~handler:"bad_handler"
       ~mode:Monitor.At_rendezvous
   with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  ignore (Nsystem.connect sys);
  match Nsystem.run sys with
  | Monitor.Alarm (Alarm.Signal_delivery_failed { detail; _ }) ->
    Alcotest.(check string) "reason" "handler made a system call" detail
  | _ -> Alcotest.fail "expected delivery failure"

let test_signal_post_validation () =
  let sys = system ~variation:Variation.uid_diversity signal_program in
  start_blocked sys;
  let monitor = Nsystem.monitor sys in
  (match Monitor.post_signal monitor ~handler:"nonexistent" ~mode:Monitor.At_rendezvous with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "unknown handler accepted");
  (match Monitor.post_signal monitor ~handler:"on_signal" ~mode:Monitor.At_rendezvous with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  match Monitor.post_signal monitor ~handler:"on_signal" ~mode:Monitor.At_rendezvous with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "double post accepted"

(* ------------------------------------------------------------------ *)
(* Tracing, counters, plumbing                                         *)
(* ------------------------------------------------------------------ *)

let test_tracer_sees_rendezvous () =
  let events = ref [] in
  let sys = system ~variation:Variation.uid_diversity uid_dance_source in
  Monitor.set_tracer (Nsystem.monitor sys) (fun e -> events := e :: !events);
  expect_exit 0 (Nsystem.run sys);
  let names =
    List.rev_map (fun e -> Nv_os.Syscall.name e.Monitor.ev_syscall) !events
  in
  Alcotest.(check bool) "getuid traced" true (List.mem "getuid" names);
  Alcotest.(check bool) "seteuid traced" true (List.mem "seteuid" names);
  Alcotest.(check bool) "cc_eq traced" true (List.mem "cc_eq" names);
  Alcotest.(check bool) "rendezvous counted" true
    (Monitor.rendezvous_count (Nsystem.monitor sys) >= List.length names)

let test_instruction_accounting () =
  let sys = system ~variation:Variation.uid_diversity uid_dance_source in
  expect_exit 0 (Nsystem.run sys);
  let monitor = Nsystem.monitor sys in
  let total = Monitor.instructions_retired monitor in
  let v0 = Cpu.instructions_retired (Monitor.loaded monitor 0).Image.cpu in
  let v1 = Cpu.instructions_retired (Monitor.loaded monitor 1).Image.cpu in
  Alcotest.(check int) "sum" total (v0 + v1);
  Alcotest.(check bool) "both ran" true (v0 > 0 && v1 > 0)

let test_monitor_create_validations () =
  let image = compile_bare "int main(void) { return 0; }" in
  let vfs = Nsystem.standard_vfs ~variation:Variation.uid_diversity () in
  let kernel = Kernel.create ~variants:1 vfs in
  Alcotest.(check bool) "image count mismatch" true
    (try
       ignore (Monitor.create ~kernel ~variation:Variation.uid_diversity [| image |]);
       false
     with Invalid_argument _ -> true)

let test_standard_vfs_contents () =
  let vfs = Nsystem.standard_vfs ~variation:Variation.uid_diversity () in
  List.iter
    (fun path ->
      Alcotest.(check bool) (path ^ " exists") true (Vfs.exists vfs path))
    [ "/etc/passwd"; "/etc/passwd-0"; "/etc/passwd-1"; "/etc/group"; "/etc/group-0";
      "/etc/group-1"; "/secret/shadow"; "/var/log/httpd.log" ];
  (* Variant 1's copy carries reexpressed UIDs. *)
  match Vfs.contents vfs ~path:"/etc/passwd-1" with
  | Ok text -> (
    match Nv_os.Passwd.parse text with
    | Ok entries ->
      let root = Option.get (Nv_os.Passwd.lookup entries "root") in
      Alcotest.(check int) "reexpressed root" 0x7FFFFFFF root.Nv_os.Passwd.uid
    | Error e -> Alcotest.fail e)
  | Error _ -> Alcotest.fail "passwd-1 missing"

let test_monitor_stats () =
  let sys = system ~variation:Variation.uid_diversity uid_dance_source in
  expect_exit 0 (Nsystem.run sys);
  let stats = Monitor.stats (Nsystem.monitor sys) in
  Alcotest.(check int) "rendezvous matches counter" stats.Monitor.st_rendezvous
    (Monitor.rendezvous_count (Nsystem.monitor sys));
  Alcotest.(check int) "two variants" 2 (Array.length stats.Monitor.st_instructions);
  Alcotest.(check bool) "getuid in histogram" true
    (List.mem_assoc "getuid" stats.Monitor.st_calls);
  Alcotest.(check bool) "seteuid in histogram" true
    (List.mem_assoc "seteuid" stats.Monitor.st_calls);
  let total_calls = List.fold_left (fun acc (_, n) -> acc + n) 0 stats.Monitor.st_calls in
  Alcotest.(check int) "histogram sums to rendezvous" stats.Monitor.st_rendezvous total_calls;
  Alcotest.(check int) "no signals" 0 stats.Monitor.st_signals_delivered

let test_syscall_numbers_fit_fast_path () =
  (* Every defined syscall must fit the monitor's per-number
     metric-handle cache; a number >= syscall_slots would silently
     fall back to the slow by-name lookup on every rendezvous. *)
  List.iter
    (fun (number, { Nv_os.Syscall.name; _ }) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s (#%d) within [0, %d)" name number Monitor.syscall_slots)
        true
        (number >= 0 && number < Monitor.syscall_slots))
    Nv_os.Syscall.all

let test_out_of_fuel () =
  let sys = system ~variation:Variation.replicated "int main(void) { while (1) {} return 0; }" in
  match Nsystem.run ~fuel:10_000 sys with
  | Monitor.Out_of_fuel -> ()
  | _ -> Alcotest.fail "expected fuel exhaustion"

let () =
  Alcotest.run "nv_core"
    [
      ( "reexpression",
        [
          Alcotest.test_case "identity" `Quick test_reexpr_identity;
          Alcotest.test_case "paper values" `Quick test_reexpr_paper_values;
          Alcotest.test_case "high-bit weakness" `Quick test_reexpr_high_bit_weakness;
          Alcotest.test_case "table1 rows" `Quick test_reexpr_table1_complete;
          Alcotest.test_case "disjointness verdicts" `Quick test_disjointness_verdicts;
          Alcotest.test_case "rotation-only refuted" `Quick test_rotation_only_refuted;
        ]
        @ qsuite [ prop_reexpr_inverse; prop_reexpr_disjoint; prop_constructor_inverse ] );
      ( "portfolio",
        [
          Alcotest.test_case "witnesses" `Quick test_portfolio_witnesses;
          Alcotest.test_case "shared-key refuted (N>2 regression)" `Quick
            test_shared_key_witness_refuted;
        ]
        @ qsuite
            [
              prop_portfolio_inverse;
              prop_portfolio_all_pairs_disjoint;
              prop_shared_key_regression;
            ] );
      ( "variation",
        [
          Alcotest.test_case "shapes" `Quick test_variation_shapes;
          Alcotest.test_case "composed shapes" `Quick test_composed_shapes;
          Alcotest.test_case "base validation" `Quick test_uid_diversity_n_validation;
        ] );
      ( "alarm",
        [
          Alcotest.test_case "divergent indices majority" `Quick
            test_alarm_divergent_indices;
        ] );
      ( "normal-equivalence",
        [
          Alcotest.test_case "replicated" `Quick test_normal_equivalence_replicated;
          Alcotest.test_case "address partition" `Quick
            test_normal_equivalence_address_partition;
          Alcotest.test_case "instruction tagging" `Quick test_normal_equivalence_tagging;
          Alcotest.test_case "uid diversity" `Quick test_normal_equivalence_uid_diversity;
          Alcotest.test_case "uid values differ inside variants" `Quick
            test_uid_values_differ_inside_variants;
          Alcotest.test_case "unshared passwd" `Quick test_unshared_passwd_normal_equivalence;
          Alcotest.test_case "shared io once" `Quick test_shared_io_replicated_once;
          Alcotest.test_case "server roundtrip" `Quick test_server_roundtrip_through_monitor;
        ] );
      ( "detection",
        [
          Alcotest.test_case "uid corruption via seteuid" `Quick
            test_detect_uid_corruption_via_seteuid;
          Alcotest.test_case "no detection without data diversity" `Quick
            test_no_detection_without_data_diversity;
          Alcotest.test_case "uid_value exposure" `Quick test_detect_uid_value_exposure;
          Alcotest.test_case "uid_value returns value" `Quick test_uid_value_returns_passed_value;
          Alcotest.test_case "partial overwrite low byte" `Quick
            test_detect_partial_overwrite_low_byte;
          Alcotest.test_case "high-bit overwrite escapes" `Quick test_high_bit_overwrite_escapes;
          Alcotest.test_case "cond divergence" `Quick test_detect_cond_divergence;
          Alcotest.test_case "syscall divergence" `Quick test_detect_syscall_divergence;
          Alcotest.test_case "uid in log output" `Quick test_detect_output_divergence_uid_in_log;
          Alcotest.test_case "absolute address attack" `Quick test_detect_absolute_address_attack;
          Alcotest.test_case "single variant unprotected" `Quick
            test_single_variant_not_protected_by_address_partition;
          Alcotest.test_case "tag corruption" `Quick test_detect_tag_corruption;
          Alcotest.test_case "exit mismatch" `Quick test_exit_mismatch_detected;
        ] );
      ( "signals",
        [
          Alcotest.test_case "at-rendezvous delivered" `Quick
            test_signal_at_rendezvous_delivered;
          Alcotest.test_case "immediate, aligned variants" `Quick
            test_signal_immediate_aligned_variants;
          Alcotest.test_case "immediate false detection exists" `Quick
            test_signal_immediate_false_detection_exists;
          Alcotest.test_case "at-rendezvous never false alarms" `Quick
            test_signal_at_rendezvous_never_false_alarms;
          Alcotest.test_case "handler syscall rejected" `Quick
            test_signal_handler_syscall_rejected;
          Alcotest.test_case "post validation" `Quick test_signal_post_validation;
        ] );
      ( "plumbing",
        [
          Alcotest.test_case "tracer" `Quick test_tracer_sees_rendezvous;
          Alcotest.test_case "instruction accounting" `Quick test_instruction_accounting;
          Alcotest.test_case "create validations" `Quick test_monitor_create_validations;
          Alcotest.test_case "standard vfs" `Quick test_standard_vfs_contents;
          Alcotest.test_case "monitor stats" `Quick test_monitor_stats;
          Alcotest.test_case "syscall numbers fit fast path" `Quick
            test_syscall_numbers_fit_fast_path;
          Alcotest.test_case "out of fuel" `Quick test_out_of_fuel;
        ] );
    ]
