(* Section 3.4: unshared files. Trusted external data (/etc/passwd)
   must reach each variant in that variant's data representation; the
   kernel resolves an open of a registered unshared path to a
   per-variant diversified copy, and each variant performs its own I/O
   on its own file.

     dune exec examples/unshared_files.exe *)

module Variation = Nv_core.Variation
module Monitor = Nv_core.Monitor
module Nsystem = Nv_core.Nsystem
module Vfs = Nv_os.Vfs

let program =
  {|uid_t found;
    int main(void) {
      found = getpwnam_uid("www");
      if (seteuid(found) != 0) { return 1; }
      return 0;
    }|}

let () =
  let variation = Variation.uid_diversity in
  let vfs = Nsystem.standard_vfs ~variation () in
  print_endline "== the diversified passwd copies ==";
  List.iter
    (fun path ->
      match Vfs.contents vfs ~path with
      | Ok text ->
        Format.printf "--- %s ---@.%s" path
          (String.concat "\n"
             (List.filteri (fun i _ -> i < 3) (String.split_on_char '\n' text))
          ^ "\n...\n")
      | Error _ -> Format.printf "%s missing@." path)
    [ "/etc/passwd-0"; "/etc/passwd-1" ];
  print_endline "== run getpwnam(\"www\") through the monitor ==";
  let images, _ =
    match
      Nv_transform.Uid_transform.transform_source ~variation
        (Nv_minic.Runtime.with_runtime program)
    with
    | Ok result -> result
    | Error e -> failwith e
  in
  let sys = Nsystem.create ~vfs ~variation images in
  Monitor.set_tracer (Nsystem.monitor sys) (fun e ->
      match Nv_os.Syscall.name e.Monitor.ev_syscall with
      | ("open" | "read" | "seteuid") as name ->
        Format.printf "  [%s] %s@." name e.Monitor.ev_note
      | _ -> ());
  (match Nsystem.run sys with
  | Monitor.Exited 0 -> print_endline "exited 0"
  | other ->
    Format.printf "unexpected: %s@."
      (match other with
      | Monitor.Alarm r -> Nv_core.Alarm.to_string r
      | Monitor.Exited n -> Printf.sprintf "exit %d" n
      | _ -> "?"));
  print_endline "== the concrete values each variant parsed ==";
  for i = 0 to 1 do
    let loaded = Monitor.loaded (Nsystem.monitor sys) i in
    let value =
      Nv_vm.Memory.load_word loaded.Nv_vm.Image.memory
        (Nv_vm.Image.abs_symbol loaded "found")
    in
    Format.printf "variant %d parsed uid 0x%08X (canonical %d)@." i value
      ((Variation.uid_diversity.Variation.variants.(i)).Variation.uid
         .Nv_core.Reexpression.decode value)
  done;
  print_endline
    "\nBoth variants called seteuid with equivalent canonical values even\n\
     though their concrete file contents, parse lengths and register values\n\
     all differed - reexpression happened in the data, not on the read path."
