type align = Left | Right

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else begin
    let fill = String.make (width - n) ' ' in
    match align with Left -> s ^ fill | Right -> fill ^ s
  end

let render ?align ~header ~rows () =
  let ncols = List.length header in
  let normalize row =
    let n = List.length row in
    if n > ncols then invalid_arg "Tablefmt.render: row wider than header";
    row @ List.init (ncols - n) (fun _ -> "")
  in
  let rows = List.map normalize rows in
  let aligns =
    match align with
    | Some a when Array.length a = ncols -> a
    | Some _ -> invalid_arg "Tablefmt.render: align length mismatch"
    | None -> Array.init ncols (fun i -> if i = 0 then Left else Right)
  in
  let widths = Array.of_list (List.map String.length header) in
  List.iter
    (fun row ->
      List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)) row)
    rows;
  let buf = Buffer.create 256 in
  let sep =
    "+"
    ^ String.concat "+"
        (Array.to_list (Array.map (fun w -> String.make (w + 2) '-') widths))
    ^ "+"
  in
  let emit_row row =
    Buffer.add_char buf '|';
    List.iteri
      (fun i cell ->
        Buffer.add_char buf ' ';
        Buffer.add_string buf (pad aligns.(i) widths.(i) cell);
        Buffer.add_string buf " |")
      row;
    Buffer.add_char buf '\n'
  in
  Buffer.add_string buf (sep ^ "\n");
  emit_row header;
  Buffer.add_string buf (sep ^ "\n");
  List.iter emit_row rows;
  Buffer.add_string buf (sep ^ "\n");
  Buffer.contents buf

let print ?align ~header ~rows () =
  print_string (render ?align ~header ~rows ());
  flush stdout
