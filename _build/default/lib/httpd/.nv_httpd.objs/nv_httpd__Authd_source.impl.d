lib/httpd/authd_source.ml: Char Nv_minic Nv_vm Printf String
