(** User/group identities and process credentials.

    UID and GID values are 32-bit words ({!Nv_vm.Word.t}); [0] is root.
    These are the {e canonical} (un-reexpressed) values: the kernel side
    of the data-diversity boundary always works on canonical UIDs, and
    the monitor applies the per-variant reexpression functions when
    values cross into or out of a variant. *)

type uid = Nv_vm.Word.t
type gid = Nv_vm.Word.t

val root : uid
(** 0. *)

type t = { ruid : uid; euid : uid; rgid : gid; egid : gid }
(** Real and effective user/group ids of a process. *)

val superuser : t
(** All ids 0. *)

val of_user : uid:uid -> gid:gid -> t
(** Credentials of an ordinary login: real = effective. *)

val is_root : t -> bool
(** Effective UID is root. *)

type setid_error = Eperm

val setuid : t -> uid -> (t, setid_error) result
(** POSIX [setuid]: root may set all three of real/effective; an
    unprivileged process may only set the effective UID to its real
    UID. *)

val seteuid : t -> uid -> (t, setid_error) result
(** POSIX [seteuid]: root (by real or effective id) may set any
    effective UID; others only their real UID. Privilege-drop servers
    use this to toggle between root and the worker identity. *)

val setgid : t -> gid -> (t, setid_error) result
val setegid : t -> gid -> (t, setid_error) result

val pp : Format.formatter -> t -> unit
