(* Tests for nv_vm: Word, Memory, Isa, Cpu, Asm, Image, Disasm. *)

open Nv_vm

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

(* ------------------------------------------------------------------ *)
(* Word                                                                *)
(* ------------------------------------------------------------------ *)

let full_word_gen =
  (* Cover the full 32-bit range including high-bit values. *)
  QCheck.map
    (fun (hi, lo) -> Word.mask ((hi lsl 16) lor lo))
    QCheck.(pair (int_bound 0xFFFF) (int_bound 0xFFFF))

let test_word_mask () =
  Alcotest.(check int) "wraps" 0 (Word.mask 0x1_0000_0000);
  Alcotest.(check int) "negative" 0xFFFFFFFF (Word.mask (-1))

let test_word_signed_roundtrip () =
  Alcotest.(check int) "positive" 5 (Word.to_signed 5);
  Alcotest.(check int) "negative one" (-1) (Word.to_signed 0xFFFFFFFF);
  Alcotest.(check int) "min int32" (-0x80000000) (Word.to_signed 0x80000000)

let test_word_arith () =
  Alcotest.(check int) "add wraps" 0 (Word.add 0xFFFFFFFF 1);
  Alcotest.(check int) "sub wraps" 0xFFFFFFFF (Word.sub 0 1);
  Alcotest.(check int) "mul wraps" (Word.mask (0x10000 * 0x10000)) (Word.mul 0x10000 0x10000)

let test_word_div_signed () =
  Alcotest.(check int) "7/2" 3 (Word.div_signed 7 2);
  Alcotest.(check int) "-7/2" (Word.of_signed (-3)) (Word.div_signed (Word.of_signed (-7)) 2);
  Alcotest.(check int) "rem sign" (Word.of_signed (-1))
    (Word.rem_signed (Word.of_signed (-7)) 2);
  Alcotest.check_raises "div zero" Division_by_zero (fun () ->
      ignore (Word.div_signed 1 0))

let test_word_shifts () =
  Alcotest.(check int) "shl" 0x10 (Word.shift_left 1 4);
  Alcotest.(check int) "shl masks amount" 2 (Word.shift_left 1 33);
  Alcotest.(check int) "shr logical" 0x7FFFFFFF (Word.shift_right_logical 0xFFFFFFFE 1);
  Alcotest.(check int) "sar keeps sign" 0xFFFFFFFF (Word.shift_right_arith 0xFFFFFFFF 1)

let test_word_compare () =
  Alcotest.(check bool) "signed lt" true (Word.lt_signed 0xFFFFFFFF 0);
  Alcotest.(check bool) "unsigned not lt" false (Word.lt_unsigned 0xFFFFFFFF 0)

let test_word_bytes () =
  let w = 0xAABBCCDD in
  Alcotest.(check int) "byte 0" 0xDD (Word.byte w 0);
  Alcotest.(check int) "byte 3" 0xAA (Word.byte w 3);
  Alcotest.(check int) "set byte" 0xAA11CCDD (Word.set_byte w 2 0x11);
  Alcotest.check_raises "bad index" (Invalid_argument "Word.byte: index out of range")
    (fun () -> ignore (Word.byte w 4))

let prop_word_xor_involution =
  QCheck.Test.make ~name:"xor with a key is an involution" ~count:500 full_word_gen
    (fun w -> Word.logxor (Word.logxor w 0x7FFFFFFF) 0x7FFFFFFF = w)

let prop_word_signed_roundtrip =
  QCheck.Test.make ~name:"of_signed (to_signed w) = w" ~count:500 full_word_gen
    (fun w -> Word.of_signed (Word.to_signed w) = w)

let prop_word_set_byte_get =
  QCheck.Test.make ~name:"set_byte then byte reads back" ~count:500
    QCheck.(triple full_word_gen (int_bound 3) (int_bound 255))
    (fun (w, i, b) -> Word.byte (Word.set_byte w i b) i = b)

(* ------------------------------------------------------------------ *)
(* Memory                                                              *)
(* ------------------------------------------------------------------ *)

let test_memory_bounds () =
  let m = Memory.create ~base:0x1000 ~size:0x100 in
  Alcotest.(check bool) "in range low" true (Memory.in_range m 0x1000);
  Alcotest.(check bool) "in range high" true (Memory.in_range m 0x10FF);
  Alcotest.(check bool) "below" false (Memory.in_range m 0xFFF);
  Alcotest.(check bool) "above" false (Memory.in_range m 0x1100)

let expect_fault f =
  match f () with
  | exception Memory.Fault _ -> ()
  | _ -> Alcotest.fail "expected Memory.Fault"

let test_memory_fault_on_oob () =
  let m = Memory.create ~base:0x1000 ~size:0x100 in
  expect_fault (fun () -> Memory.load_byte m 0xFFF);
  expect_fault (fun () -> Memory.store_byte m 0x1100 1);
  (* Word access straddling the end also faults. *)
  expect_fault (fun () -> Memory.load_word m 0x10FD)

let test_memory_word_roundtrip () =
  let m = Memory.create ~base:0 ~size:64 in
  Memory.store_word m 8 0xDEADBEEF;
  Alcotest.(check int) "word" 0xDEADBEEF (Memory.load_word m 8);
  (* Little-endian layout. *)
  Alcotest.(check int) "LE byte 0" 0xEF (Memory.load_byte m 8);
  Alcotest.(check int) "LE byte 3" 0xDE (Memory.load_byte m 11)

let test_memory_cstring () =
  let m = Memory.create ~base:0 ~size:64 in
  Memory.store_cstring m ~addr:4 "hello";
  Alcotest.(check string) "read back" "hello" (Memory.load_cstring m ~addr:4 ~max_len:32);
  Alcotest.(check string) "max_len truncates" "hel"
    (Memory.load_cstring m ~addr:4 ~max_len:3);
  Alcotest.(check int) "NUL written" 0 (Memory.load_byte m 9)

let test_memory_cstring_atomic_on_fault () =
  (* A cstring store that would run off the segment must fault on the
     first out-of-range byte *before* writing anything, not leave a
     partial string behind. *)
  let m = Memory.create ~base:0 ~size:8 in
  (try
     Memory.store_cstring m ~addr:4 "hello";
     Alcotest.fail "expected a fault"
   with Memory.Fault { addr; access = Memory.Write } ->
     Alcotest.(check int) "first out-of-range byte" 8 addr);
  for i = 0 to 7 do
    Alcotest.(check int) (Printf.sprintf "byte %d untouched" i) 0 (Memory.load_byte m i)
  done

let test_memory_bytes_blit () =
  let m = Memory.create ~base:0x100 ~size:32 in
  Memory.store_bytes m ~addr:0x104 (Bytes.of_string "abcd");
  Alcotest.(check string) "blit back" "abcd"
    (Bytes.to_string (Memory.load_bytes m ~addr:0x104 ~len:4))

let test_memory_to_offset () =
  let m = Memory.create ~base:0x80000000 ~size:0x1000 in
  Alcotest.(check int) "canonical offset" 0x10 (Memory.to_offset m 0x80000010);
  expect_fault (fun () -> Memory.to_offset m 0x10)

let test_memory_create_invalid () =
  Alcotest.check_raises "too big"
    (Invalid_argument "Memory.create: segment outside the 32-bit address space")
    (fun () -> ignore (Memory.create ~base:0xFFFFFFFF ~size:0x100))

let prop_memory_byte_roundtrip =
  QCheck.Test.make ~name:"byte store/load roundtrip" ~count:300
    QCheck.(pair (int_bound 63) (int_bound 255))
    (fun (off, v) ->
      let m = Memory.create ~base:0x2000 ~size:64 in
      Memory.store_byte m (0x2000 + off) v;
      Memory.load_byte m (0x2000 + off) = v)

let prop_memory_word_roundtrip =
  QCheck.Test.make ~name:"word store/load roundtrip" ~count:300
    QCheck.(pair (int_bound 60) full_word_gen)
    (fun (off, w) ->
      let m = Memory.create ~base:0 ~size:64 in
      Memory.store_word m off w;
      Memory.load_word m off = w)

(* ------------------------------------------------------------------ *)
(* Isa encode/decode                                                   *)
(* ------------------------------------------------------------------ *)

let instr_gen : Isa.t QCheck.Gen.t =
  let open QCheck.Gen in
  let reg = int_bound 15 in
  let word = map Word.mask (int_bound 0xFFFFFF) in
  let operand = oneof [ map (fun r -> Isa.Reg r) reg; map (fun w -> Isa.Imm w) word ] in
  let binop =
    oneofl
      [ Isa.Add; Isa.Sub; Isa.Mul; Isa.Div; Isa.Mod; Isa.And; Isa.Or; Isa.Xor;
        Isa.Shl; Isa.Shr; Isa.Sar ]
  in
  let cond =
    oneofl
      [ Isa.Eq; Isa.Ne; Isa.Lt; Isa.Le; Isa.Gt; Isa.Ge; Isa.Ltu; Isa.Leu; Isa.Gtu;
        Isa.Geu ]
  in
  let offset = map (fun x -> x - 2048) (int_bound 4096) in
  oneof
    [
      return Isa.Nop;
      return Isa.Halt;
      return Isa.Ret;
      return Isa.Syscall;
      map2 (fun rd o -> Isa.Mov (rd, o)) reg operand;
      map3 (fun rd rs off -> Isa.Load (rd, rs, off)) reg reg offset;
      map3 (fun rd off rs -> Isa.Store (rd, off, rs)) reg offset reg;
      map3 (fun rd rs off -> Isa.Loadb (rd, rs, off)) reg reg offset;
      map3 (fun rd off rs -> Isa.Storeb (rd, off, rs)) reg offset reg;
      (let* op = binop in
       let* rd = reg in
       let* rs = reg in
       let* o = operand in
       return (Isa.Binop (op, rd, rs, o)));
      (let* c = cond in
       let* rd = reg in
       let* rs = reg in
       let* o = operand in
       return (Isa.Setcc (c, rd, rs, o)));
      (let* c = cond in
       let* rs = reg in
       let* rt = reg in
       let* w = word in
       return (Isa.Br (c, rs, rt, w)));
      map (fun w -> Isa.Jmp w) word;
      map (fun r -> Isa.Jmpr r) reg;
      map (fun w -> Isa.Call w) word;
      map (fun r -> Isa.Callr r) reg;
      map (fun r -> Isa.Push r) reg;
      map (fun r -> Isa.Pop r) reg;
    ]

let arbitrary_instr = QCheck.make ~print:(Format.asprintf "%a" Isa.pp) instr_gen

let prop_isa_roundtrip =
  QCheck.Test.make ~name:"encode/decode roundtrip preserves instruction" ~count:1000
    QCheck.(pair arbitrary_instr (int_bound 255))
    (fun (instr, tag) ->
      match Isa.decode (Isa.encode ~tag instr) with
      | Ok (tag', instr') -> tag' = tag && instr' = instr
      | Error _ -> false)

let test_isa_encode_size () =
  Alcotest.(check int) "8 bytes" 8 (Bytes.length (Isa.encode ~tag:0 Isa.Nop));
  Alcotest.(check int) "instr_size" 8 Isa.instr_size

let test_isa_tag_in_byte0 () =
  let b = Isa.encode ~tag:7 Isa.Halt in
  Alcotest.(check int) "tag byte" 7 (Char.code (Bytes.get b 0))

let test_isa_bad_register () =
  Alcotest.check_raises "register range" (Invalid_argument "Isa.encode: register out of range")
    (fun () -> ignore (Isa.encode ~tag:0 (Isa.Push 16)))

let test_isa_bad_opcode_decode () =
  let b = Bytes.make 8 '\000' in
  Bytes.set b 1 (Char.chr 200);
  match Isa.decode b with
  | Error (Isa.Bad_opcode 200) -> ()
  | _ -> Alcotest.fail "expected Bad_opcode"

let test_isa_eval_cond () =
  Alcotest.(check bool) "signed lt" true (Isa.eval_cond Isa.Lt 0xFFFFFFFF 0);
  Alcotest.(check bool) "unsigned gtu" true (Isa.eval_cond Isa.Gtu 0xFFFFFFFF 0);
  Alcotest.(check bool) "eq" true (Isa.eval_cond Isa.Eq 5 5);
  Alcotest.(check bool) "le" true (Isa.eval_cond Isa.Le 5 5);
  Alcotest.(check bool) "ge" true (Isa.eval_cond Isa.Ge 5 5)

let prop_isa_cond_total_order =
  QCheck.Test.make ~name:"lt/eq/gt trichotomy (signed)" ~count:500
    QCheck.(pair full_word_gen full_word_gen)
    (fun (a, b) ->
      let lt = Isa.eval_cond Isa.Lt a b in
      let eq = Isa.eval_cond Isa.Eq a b in
      let gt = Isa.eval_cond Isa.Gt a b in
      List.length (List.filter Fun.id [ lt; eq; gt ]) = 1)

(* ------------------------------------------------------------------ *)
(* Cpu via assembled programs                                          *)
(* ------------------------------------------------------------------ *)

let load_asm ?(tag = 0) ?(base = 0x1000) ?(size = 0x10000) source =
  Image.load (Asm.assemble source) ~base ~size ~tag

let run_to_halt ?(fuel = 100_000) loaded =
  match Cpu.run loaded.Image.cpu ~fuel with
  | Cpu.Trapped Cpu.Halt_trap -> ()
  | Cpu.Trapped trap -> Alcotest.failf "unexpected trap: %a" Cpu.pp_trap trap
  | Cpu.Out_of_fuel -> Alcotest.fail "out of fuel"

let test_cpu_arith_program () =
  let loaded =
    load_asm {|
      mov r1, #6
      mov r2, #7
      mul r3, r1, r2
      halt
    |}
  in
  run_to_halt loaded;
  Alcotest.(check int) "6*7" 42 (Cpu.reg loaded.Image.cpu 3)

let test_cpu_loop_program () =
  (* Sum 1..10 with a branch loop. *)
  let loaded =
    load_asm {|
      mov r1, #0      ; sum
      mov r2, #1      ; i
      mov r3, #10     ; limit
    loop:
      add r1, r1, r2
      add r2, r2, #1
      brle r2, r3, loop
      halt
    |}
  in
  run_to_halt loaded;
  Alcotest.(check int) "sum 1..10" 55 (Cpu.reg loaded.Image.cpu 1)

let test_cpu_call_ret () =
  let loaded =
    load_asm {|
      mov r1, #5
      call double
      halt
    double:
      add r1, r1, r1
      ret
    |}
  in
  run_to_halt loaded;
  Alcotest.(check int) "doubled" 10 (Cpu.reg loaded.Image.cpu 1)

let test_cpu_memory_program () =
  let loaded =
    load_asm {|
      .data
      cell: .word 11
      .text
      la r1, cell
      ld r2, [r1]
      add r2, r2, #1
      st [r1], r2
      ld r3, [r1+0]
      halt
    |}
  in
  run_to_halt loaded;
  Alcotest.(check int) "incremented" 12 (Cpu.reg loaded.Image.cpu 3)

let test_cpu_push_pop () =
  let loaded =
    load_asm {|
      mov r1, #123
      push r1
      mov r1, #0
      pop r2
      halt
    |}
  in
  run_to_halt loaded;
  Alcotest.(check int) "popped" 123 (Cpu.reg loaded.Image.cpu 2)

let test_cpu_syscall_trap_resume () =
  let loaded =
    load_asm {|
      mov r0, #9
      syscall
      mov r3, #1
      halt
    |}
  in
  let cpu = loaded.Image.cpu in
  (match Cpu.run cpu ~fuel:100 with
  | Cpu.Trapped Cpu.Syscall_trap -> ()
  | other ->
    Alcotest.failf "expected syscall trap, got %s"
      (match other with
      | Cpu.Trapped t -> Format.asprintf "%a" Cpu.pp_trap t
      | Cpu.Out_of_fuel -> "out of fuel"));
  Alcotest.(check int) "syscall number" 9 (Cpu.reg cpu 0);
  (* Resuming continues after the syscall instruction. *)
  (match Cpu.run cpu ~fuel:100 with
  | Cpu.Trapped Cpu.Halt_trap -> ()
  | _ -> Alcotest.fail "expected halt after resume");
  Alcotest.(check int) "resumed" 1 (Cpu.reg cpu 3)

let test_cpu_segfault_on_wild_store () =
  let loaded =
    load_asm {|
      mov r1, #0
      st [r1], r1
      halt
    |}
  in
  match Cpu.run loaded.Image.cpu ~fuel:100 with
  | Cpu.Trapped (Cpu.Fault_trap (Cpu.Segfault { addr = 0; access = Memory.Write })) -> ()
  | other ->
    Alcotest.failf "expected segfault, got %s"
      (match other with
      | Cpu.Trapped t -> Format.asprintf "%a" Cpu.pp_trap t
      | Cpu.Out_of_fuel -> "out of fuel")

let test_cpu_division_fault () =
  let loaded =
    load_asm {|
      mov r1, #1
      mov r2, #0
      div r3, r1, r2
      halt
    |}
  in
  match Cpu.run loaded.Image.cpu ~fuel:100 with
  | Cpu.Trapped (Cpu.Fault_trap (Cpu.Division_fault _)) -> ()
  | _ -> Alcotest.fail "expected division fault"

let test_cpu_out_of_fuel () =
  let loaded = load_asm {|
    loop: jmp loop
  |} in
  match Cpu.run loaded.Image.cpu ~fuel:10 with
  | Cpu.Out_of_fuel -> Alcotest.(check int) "retired" 10 (Cpu.instructions_retired loaded.Image.cpu)
  | _ -> Alcotest.fail "expected out of fuel"

let test_cpu_stack_fault_on_overflow () =
  (* A push once the stack pointer has left the segment reports a stack
     fault (the exhaustion signature distinguished from data faults). *)
  let image = Asm.assemble {|
      mov r13, #0x0FFC   ; stack pointer below the segment base
      push r1
      halt
    |} in
  let loaded = Image.load ~stack_size:256 image ~base:0x1000 ~size:0x1000 ~tag:0 in
  match Cpu.run loaded.Image.cpu ~fuel:100 with
  | Cpu.Trapped (Cpu.Fault_trap (Cpu.Stack_fault _)) -> ()
  | other ->
    Alcotest.failf "expected stack fault, got %s"
      (match other with
      | Cpu.Trapped t -> Format.asprintf "%a" Cpu.pp_trap t
      | Cpu.Out_of_fuel -> "out of fuel")

let test_cpu_bad_tag_fault () =
  (* Load with tag 1; a CPU expecting tag 1 runs fine, but flipping a
     tag byte in memory triggers Bad_tag at that instruction. *)
  let loaded = load_asm ~tag:1 {|
      mov r1, #1
      halt
    |} in
  let { Image.cpu; memory; layout } = loaded in
  (* Corrupt the tag of the second instruction. *)
  Memory.store_byte memory (layout.Image.code_start + Isa.instr_size) 0;
  match Cpu.run cpu ~fuel:10 with
  | Cpu.Trapped (Cpu.Fault_trap (Cpu.Bad_tag { found = 0; expected = 1; _ })) -> ()
  | _ -> Alcotest.fail "expected bad tag"

let test_cpu_indirect_jump () =
  let loaded =
    load_asm {|
      la r1, target
      jmpr r1
      halt            ; skipped
    target:
      mov r2, #77
      halt
    |}
  in
  run_to_halt loaded;
  Alcotest.(check int) "landed" 77 (Cpu.reg loaded.Image.cpu 2)

let test_cpu_byte_ops () =
  let loaded =
    load_asm {|
      .data
      buf: .space 8
      .text
      la r1, buf
      mov r2, #0x41
      stb [r1+2], r2
      ldb r3, [r1+2]
      halt
    |}
  in
  run_to_halt loaded;
  Alcotest.(check int) "byte" 0x41 (Cpu.reg loaded.Image.cpu 3)

(* ------------------------------------------------------------------ *)
(* Image / relocation: the address-partitioning property               *)
(* ------------------------------------------------------------------ *)

let sum_program = {|
    .data
    vals: .word 3 9 27
    .text
    la r1, vals
    mov r2, #0      ; acc
    mov r3, #0      ; i
    mov r4, #3
  loop:
    ld r5, [r1]
    add r2, r2, r5
    add r1, r1, #4
    add r3, r3, #1
    brlt r3, r4, loop
    halt
  |}

let test_image_same_behaviour_at_two_bases () =
  let image = Asm.assemble sum_program in
  let run base tag =
    let loaded = Image.load image ~base ~size:0x10000 ~tag in
    run_to_halt loaded;
    (Cpu.reg loaded.Image.cpu 2, Cpu.instructions_retired loaded.Image.cpu)
  in
  let v0 = run 0x1000 0 in
  let v1 = run 0x80001000 1 in
  Alcotest.(check (pair int int)) "normal equivalence" v0 v1;
  Alcotest.(check int) "sum" 39 (fst v0)

let test_image_absolute_address_disjoint () =
  (* An absolute pointer valid for variant 0 faults in variant 1. *)
  let image = Asm.assemble {|
      mov r1, #0x1000
      ld r2, [r1]
      halt
    |} in
  let l0 = Image.load image ~base:0x1000 ~size:0x10000 ~tag:0 in
  let l1 = Image.load image ~base:0x80001000 ~size:0x10000 ~tag:0 in
  (match Cpu.run l0.Image.cpu ~fuel:100 with
  | Cpu.Trapped Cpu.Halt_trap -> ()
  | _ -> Alcotest.fail "variant 0 should succeed");
  match Cpu.run l1.Image.cpu ~fuel:100 with
  | Cpu.Trapped (Cpu.Fault_trap (Cpu.Segfault _)) -> ()
  | _ -> Alcotest.fail "variant 1 should segfault"

let test_image_too_small () =
  let image = Asm.assemble sum_program in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Image.load image ~base:0 ~size:64 ~tag:0);
       false
     with Invalid_argument _ -> true)

let test_image_symbols () =
  let image = Asm.assemble sum_program in
  let loaded = Image.load image ~base:0x4000 ~size:0x10000 ~tag:0 in
  let addr = Image.abs_symbol loaded "vals" in
  Alcotest.(check bool) "symbol in data region" true
    (addr >= loaded.Image.layout.Image.data_start);
  Alcotest.(check int) "first word" 3 (Memory.load_word loaded.Image.memory addr)

let test_image_entry_label () =
  let image =
    Asm.assemble {|
      .entry start
      mov r1, #1      ; skipped: entry is below
      halt
    start:
      mov r1, #2
      halt
    |}
  in
  let loaded = Image.load image ~base:0x1000 ~size:0x8000 ~tag:0 in
  run_to_halt loaded;
  Alcotest.(check int) "entry used" 2 (Cpu.reg loaded.Image.cpu 1)

(* ------------------------------------------------------------------ *)
(* Asm error handling                                                  *)
(* ------------------------------------------------------------------ *)

let expect_asm_error source =
  match Asm.assemble source with
  | exception Asm.Error _ -> ()
  | _ -> Alcotest.fail "expected Asm.Error"

let test_asm_unknown_mnemonic () = expect_asm_error "frobnicate r1"
let test_asm_undefined_label () = expect_asm_error "jmp nowhere"
let test_asm_duplicate_label () = expect_asm_error "a:\n nop\na:\n nop"
let test_asm_bad_register () = expect_asm_error "mov r16, #1"
let test_asm_instruction_in_data () = expect_asm_error ".data\n nop"

let test_asm_string_escapes () =
  let image = Asm.assemble {|
    .data
    s: .asciz "a\nb"
  |} in
  let loaded = Image.load image ~base:0 ~size:0x8000 ~tag:0 in
  let addr = Image.abs_symbol loaded "s" in
  Alcotest.(check string) "escaped" "a\nb"
    (Memory.load_cstring loaded.Image.memory ~addr ~max_len:10)

let test_asm_negative_mem_offset () =
  let loaded =
    load_asm {|
      .data
      pair: .word 5 6
      .text
      la r1, pair
      add r1, r1, #4
      ld r2, [r1-4]
      halt
    |}
  in
  run_to_halt loaded;
  Alcotest.(check int) "negative offset load" 5 (Cpu.reg loaded.Image.cpu 2)

(* ------------------------------------------------------------------ *)
(* Disasm                                                              *)
(* ------------------------------------------------------------------ *)

let test_disasm_roundtrip () =
  let loaded = load_asm "mov r1, #42\nhalt" in
  let text =
    Disasm.region loaded.Image.memory ~start:loaded.Image.layout.Image.code_start ~count:2
  in
  let contains s sub =
    let n = String.length sub in
    let rec scan i = i + n <= String.length s && (String.sub s i n = sub || scan (i + 1)) in
    scan 0
  in
  Alcotest.(check bool) "mov shown" true (contains text "mov r1");
  Alcotest.(check bool) "halt shown" true (contains text "halt")

let test_disasm_unmapped () =
  let m = Memory.create ~base:0x1000 ~size:16 in
  match Disasm.instruction m ~addr:0 with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected error"

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "nv_vm"
    [
      ( "word",
        [
          Alcotest.test_case "mask" `Quick test_word_mask;
          Alcotest.test_case "signed roundtrip" `Quick test_word_signed_roundtrip;
          Alcotest.test_case "arith wraps" `Quick test_word_arith;
          Alcotest.test_case "signed division" `Quick test_word_div_signed;
          Alcotest.test_case "shifts" `Quick test_word_shifts;
          Alcotest.test_case "comparisons" `Quick test_word_compare;
          Alcotest.test_case "byte access" `Quick test_word_bytes;
        ]
        @ qsuite [ prop_word_xor_involution; prop_word_signed_roundtrip; prop_word_set_byte_get ]
      );
      ( "memory",
        [
          Alcotest.test_case "bounds" `Quick test_memory_bounds;
          Alcotest.test_case "faults" `Quick test_memory_fault_on_oob;
          Alcotest.test_case "word roundtrip LE" `Quick test_memory_word_roundtrip;
          Alcotest.test_case "cstring" `Quick test_memory_cstring;
          Alcotest.test_case "cstring atomic on fault" `Quick
            test_memory_cstring_atomic_on_fault;
          Alcotest.test_case "bytes blit" `Quick test_memory_bytes_blit;
          Alcotest.test_case "to_offset canonicalization" `Quick test_memory_to_offset;
          Alcotest.test_case "create invalid" `Quick test_memory_create_invalid;
        ]
        @ qsuite [ prop_memory_byte_roundtrip; prop_memory_word_roundtrip ] );
      ( "isa",
        [
          Alcotest.test_case "encode size" `Quick test_isa_encode_size;
          Alcotest.test_case "tag in byte 0" `Quick test_isa_tag_in_byte0;
          Alcotest.test_case "bad register" `Quick test_isa_bad_register;
          Alcotest.test_case "bad opcode decode" `Quick test_isa_bad_opcode_decode;
          Alcotest.test_case "eval_cond" `Quick test_isa_eval_cond;
        ]
        @ qsuite [ prop_isa_roundtrip; prop_isa_cond_total_order ] );
      ( "cpu",
        [
          Alcotest.test_case "arithmetic" `Quick test_cpu_arith_program;
          Alcotest.test_case "loop" `Quick test_cpu_loop_program;
          Alcotest.test_case "call/ret" `Quick test_cpu_call_ret;
          Alcotest.test_case "memory" `Quick test_cpu_memory_program;
          Alcotest.test_case "push/pop" `Quick test_cpu_push_pop;
          Alcotest.test_case "syscall trap and resume" `Quick test_cpu_syscall_trap_resume;
          Alcotest.test_case "segfault on wild store" `Quick test_cpu_segfault_on_wild_store;
          Alcotest.test_case "division fault" `Quick test_cpu_division_fault;
          Alcotest.test_case "out of fuel" `Quick test_cpu_out_of_fuel;
          Alcotest.test_case "stack fault" `Quick test_cpu_stack_fault_on_overflow;
          Alcotest.test_case "bad tag fault" `Quick test_cpu_bad_tag_fault;
          Alcotest.test_case "indirect jump" `Quick test_cpu_indirect_jump;
          Alcotest.test_case "byte ops" `Quick test_cpu_byte_ops;
        ] );
      ( "image",
        [
          Alcotest.test_case "same behaviour at two bases" `Quick
            test_image_same_behaviour_at_two_bases;
          Alcotest.test_case "absolute addresses disjoint" `Quick
            test_image_absolute_address_disjoint;
          Alcotest.test_case "too small" `Quick test_image_too_small;
          Alcotest.test_case "symbols" `Quick test_image_symbols;
          Alcotest.test_case "entry label" `Quick test_image_entry_label;
        ] );
      ( "asm",
        [
          Alcotest.test_case "unknown mnemonic" `Quick test_asm_unknown_mnemonic;
          Alcotest.test_case "undefined label" `Quick test_asm_undefined_label;
          Alcotest.test_case "duplicate label" `Quick test_asm_duplicate_label;
          Alcotest.test_case "bad register" `Quick test_asm_bad_register;
          Alcotest.test_case "instruction in .data" `Quick test_asm_instruction_in_data;
          Alcotest.test_case "string escapes" `Quick test_asm_string_escapes;
          Alcotest.test_case "negative memory offset" `Quick test_asm_negative_mem_offset;
        ] );
      ( "disasm",
        [
          Alcotest.test_case "roundtrip" `Quick test_disasm_roundtrip;
          Alcotest.test_case "unmapped" `Quick test_disasm_unmapped;
        ] );
    ]
