lib/minic/uid_infer.ml: Ast Hashtbl List Set String
