(** Discrete-event simulation engine.

    Time is a [float] in seconds. Events are callbacks scheduled at
    absolute or relative times; events at equal times fire in the order
    they were scheduled. The engine is single-threaded and
    deterministic. *)

type t

val create : ?metrics:Nv_util.Metrics.t -> unit -> t
(** Fresh engine with the clock at 0. Instruments the registry (a
    private one by default) under the ["sim.engine"] scope:
    [events_executed] (counter) and [queue_high_water] (gauge).
    Resources created on this engine add their own
    ["sim.resource.<name>"] metrics to the same registry. *)

val now : t -> float
(** Current simulated time in seconds. *)

val metrics : t -> Nv_util.Metrics.t
(** The registry this engine (and its resources) report into. *)

val schedule_at : t -> time:float -> (unit -> unit) -> unit
(** [schedule_at t ~time f] runs [f] when the clock reaches [time].
    Raises [Invalid_argument] if [time] is in the past. *)

val schedule_after : t -> delay:float -> (unit -> unit) -> unit
(** [schedule_after t ~delay f] is [schedule_at] at [now t +. delay].
    Raises [Invalid_argument] on a negative delay. *)

val run : ?until:float -> t -> unit
(** Process events in time order until the queue is empty, or until the
    clock would pass [until] (remaining events stay queued and the
    clock is set to [until]). *)

val step : t -> bool
(** Process a single event. Returns [false] when the queue is empty. *)

val pending : t -> int
(** Number of queued events. *)
