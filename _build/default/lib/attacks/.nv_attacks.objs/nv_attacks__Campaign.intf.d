lib/attacks/campaign.mli: Format Nv_core Nv_httpd
