module Metrics = Nv_util.Metrics
module Trace = Nv_util.Trace

type request = { service_s : float; response_bytes : int; attack : bool }

type config = {
  replicas : int;
  cores : int;
  pool_size : int;
  queue_limit : int;
  conn_setup_s : float;
  rtt_s : float;
  bandwidth_bytes_per_s : float;
  arrival : Arrivals.model;
  duration_s : float;
  recovery_pause_s : float;
  max_recoveries : int;
  recovery_window_s : float;
  restart_s : float;
  probe_interval_s : float;
  probe_successes : int;
  slo_target : float;
  seed : int;
}

let default =
  {
    replicas = 4;
    cores = 2;
    pool_size = 32;
    queue_limit = 64;
    conn_setup_s = 0.001;
    rtt_s = 0.004;
    bandwidth_bytes_per_s = 11.0 *. 1024.0 *. 1024.0;
    arrival = Arrivals.Poisson { rate = 400.0 };
    duration_s = 20.0;
    recovery_pause_s = 0.05;
    max_recoveries = 8;
    recovery_window_s = 10.0;
    restart_s = 1.0;
    probe_interval_s = 0.1;
    probe_successes = 3;
    slo_target = 0.999;
    seed = 2008;
  }

type report = {
  model : string;
  duration_s : float;
  arrivals : int;
  completed : int;
  rejected : int;
  dropped : int;
  in_flight : int;
  alarms : int;
  recoveries : int;
  failstops : int;
  probes : int;
  pool_hits : int;
  pool_misses : int;
  goodput_rps : float;
  goodput_bytes_per_s : float;
  latency_mean_ms : float;
  latency_p50_ms : float;
  latency_p99_ms : float;
  latency_p999_ms : float;
  availability : float;
  error_budget_used : float;
  replica_completed : int array;
  replica_dropped : int array;
  replica_utilization : float array;
  transitions : (float * int * string) list;
}

type health = Up | Recovering | Down | Probation of int

(* A request in flight through the balancer. *)
type pending = { req : request; t_arrival : float }

type replica = {
  id : int;
  mutable health : health;
  (* Bumped on every alarm: events scheduled for a previous epoch find
     their connection already torn down and count as drops. *)
  mutable epoch : int;
  mutable busy : int;  (* cores in service *)
  mutable conns : int;  (* open connections, idle + held *)
  mutable idle_conns : int;
  conn_queue : pending Queue.t;  (* waiting for a connection *)
  cpu_queue : pending Queue.t;  (* holding a connection, waiting for a core *)
  mutable completed : int;
  mutable dropped : int;
  mutable busy_s : float;  (* delivered (non-rolled-back) core seconds *)
  mutable recent_recoveries : float list;
}

type state = {
  cfg : config;
  engine : Engine.t;
  fleet : replica array;
  latency : Metrics.histogram;
  mutable arrivals : int;
  mutable completed : int;
  mutable rejected : int;
  mutable dropped : int;
  mutable alarms : int;
  mutable recoveries : int;
  mutable failstops : int;
  mutable probes : int;
  mutable pool_hits : int;
  mutable pool_misses : int;
  mutable goodput_bytes : int;
  mutable latency_sum : float;
  mutable transitions : (float * int * string) list;
  (* Flight recorder (optional): balancer ring at pid 0, one ring per
     replica at pid id+1. The simulation is single-domain, so the
     rings are trivially single-writer; timestamps are simulated
     microseconds. *)
  trace : fleet_trace option;
}

and fleet_trace = {
  tr_session : Trace.t;
  tr_balancer : Trace.ring;
  tr_replicas : Trace.ring array;
}

let validate cfg =
  if cfg.replicas < 1 then invalid_arg "Fleet: replicas must be >= 1";
  if cfg.cores < 1 then invalid_arg "Fleet: cores must be >= 1";
  if cfg.pool_size < 1 then invalid_arg "Fleet: pool_size must be >= 1";
  if cfg.queue_limit < 0 then invalid_arg "Fleet: queue_limit must be >= 0";
  if cfg.conn_setup_s < 0.0 || cfg.rtt_s < 0.0 then
    invalid_arg "Fleet: negative network cost";
  if cfg.bandwidth_bytes_per_s <= 0.0 then invalid_arg "Fleet: bandwidth must be positive";
  if cfg.duration_s <= 0.0 then invalid_arg "Fleet: duration must be positive";
  if cfg.recovery_pause_s < 0.0 || cfg.restart_s < 0.0 then
    invalid_arg "Fleet: negative recovery time";
  if cfg.max_recoveries < 0 then invalid_arg "Fleet: max_recoveries must be >= 0";
  if cfg.recovery_window_s <= 0.0 then invalid_arg "Fleet: recovery window must be positive";
  if cfg.probe_interval_s <= 0.0 then invalid_arg "Fleet: probe interval must be positive";
  if cfg.probe_successes < 1 then invalid_arg "Fleet: probe_successes must be >= 1";
  if cfg.slo_target <= 0.0 || cfg.slo_target >= 1.0 then
    invalid_arg "Fleet: slo_target must be in (0,1)"

let sim_us t = int_of_float (Engine.now t.engine *. 1e6)

let record_replica t (r : replica) kind =
  match t.trace with
  | None -> ()
  | Some tr ->
    if Trace.enabled tr.tr_session then Trace.record tr.tr_replicas.(r.id) ~ts:(sim_us t) kind

let record_balancer t kind =
  match t.trace with
  | None -> ()
  | Some tr ->
    if Trace.enabled tr.tr_session then Trace.record tr.tr_balancer ~ts:(sim_us t) kind

let transition t r label =
  t.transitions <- (Engine.now t.engine, r.id, label) :: t.transitions;
  record_replica t r (Trace.Health { replica = r.id; state = label })

let drop (t : state) (r : replica) (_ : pending) =
  t.dropped <- t.dropped + 1;
  r.dropped <- r.dropped + 1

(* Least-loaded healthy replica, lowest id on ties. Load counts held
   connections plus requests still waiting for one. *)
let pick_replica t =
  let best = ref None in
  Array.iter
    (fun r ->
      if r.health = Up then begin
        let load = r.conns - r.idle_conns + Queue.length r.conn_queue in
        match !best with
        | Some (_, best_load) when best_load <= load -> ()
        | _ -> best := Some (r, load)
      end)
    t.fleet;
  Option.map fst !best

let rec probe_loop t r =
  Engine.schedule_after t.engine ~delay:t.cfg.probe_interval_s (fun () ->
      match r.health with
      | Probation k ->
        t.probes <- t.probes + 1;
        if k + 1 >= t.cfg.probe_successes then begin
          r.health <- Up;
          r.recent_recoveries <- [];
          transition t r "up"
        end
        else begin
          r.health <- Probation (k + 1);
          probe_loop t r
        end
      | Up | Recovering | Down -> ())

let raise_alarm t r =
  let now = Engine.now t.engine in
  t.alarms <- t.alarms + 1;
  record_replica t r (Trace.Alarm { label = "divergence" });
  (* Rollback tears down every live connection: queued requests die here,
     in-service and mid-transfer ones when their stale events fire. *)
  Queue.iter (fun p -> drop t r p) r.conn_queue;
  Queue.iter (fun p -> drop t r p) r.cpu_queue;
  Queue.clear r.conn_queue;
  Queue.clear r.cpu_queue;
  r.busy <- 0;
  r.conns <- 0;
  r.idle_conns <- 0;
  r.epoch <- r.epoch + 1;
  r.recent_recoveries <-
    List.filter (fun ts -> ts > now -. t.cfg.recovery_window_s) r.recent_recoveries;
  if List.length r.recent_recoveries < t.cfg.max_recoveries then begin
    (* Within budget: checkpoint rollback, brief pause, back in rotation. *)
    r.recent_recoveries <- now :: r.recent_recoveries;
    t.recoveries <- t.recoveries + 1;
    r.health <- Recovering;
    transition t r "recovering";
    Engine.schedule_after t.engine ~delay:t.cfg.recovery_pause_s (fun () ->
        if r.health = Recovering then begin
          r.health <- Up;
          transition t r "up"
        end)
  end
  else begin
    (* Budget exhausted: fail-stop. The balancer drains the replica and
       only re-adds it after restart plus a clean probation streak. *)
    t.failstops <- t.failstops + 1;
    r.health <- Down;
    Logs.warn ~src:Nv_util.Logsrc.fleet (fun m ->
        m "replica %d fail-stopped at t=%.3fs (recovery budget exhausted)" r.id now);
    transition t r "down";
    Engine.schedule_after t.engine ~delay:t.cfg.restart_s (fun () ->
        r.health <- Probation 0;
        transition t r "probation";
        probe_loop t r)
  end

let rec release_conn t r =
  if Queue.is_empty r.conn_queue then r.idle_conns <- r.idle_conns + 1
  else begin
    (* Hand the freed connection straight to the next waiter. *)
    let p = Queue.pop r.conn_queue in
    t.pool_hits <- t.pool_hits + 1;
    transfer t r r.epoch p ~delay:(t.cfg.rtt_s /. 2.0)
  end

and transfer t r epoch p ~delay =
  Engine.schedule_after t.engine ~delay (fun () -> enqueue_cpu t r epoch p)

and enqueue_cpu t r epoch p =
  if epoch <> r.epoch then drop t r p
  else if r.busy < t.cfg.cores then start_service t r p
  else Queue.push p r.cpu_queue

and start_service t r p =
  r.busy <- r.busy + 1;
  let epoch = r.epoch in
  Engine.schedule_after t.engine ~delay:p.req.service_s (fun () ->
      service_done t r epoch p)

and service_done t r epoch p =
  if epoch <> r.epoch then drop t r p
  else if p.req.attack then begin
    (* The monitor catches the divergence at this rendezvous; the
       attacker's connection goes down with everyone else's. *)
    drop t r p;
    raise_alarm t r
  end
  else begin
    r.busy <- r.busy - 1;
    r.busy_s <- r.busy_s +. p.req.service_s;
    if r.busy < t.cfg.cores && not (Queue.is_empty r.cpu_queue) then
      start_service t r (Queue.pop r.cpu_queue);
    let wire =
      float_of_int p.req.response_bytes /. t.cfg.bandwidth_bytes_per_s
      +. (t.cfg.rtt_s /. 2.0)
    in
    Engine.schedule_after t.engine ~delay:wire (fun () -> deliver t r epoch p)
  end

and deliver t r epoch p =
  if epoch <> r.epoch then drop t r p
  else begin
    t.completed <- t.completed + 1;
    r.completed <- r.completed + 1;
    t.goodput_bytes <- t.goodput_bytes + p.req.response_bytes;
    let latency = Engine.now t.engine -. p.t_arrival in
    t.latency_sum <- t.latency_sum +. latency;
    Metrics.observe t.latency latency;
    release_conn t r
  end

let handle_arrival t req =
  t.arrivals <- t.arrivals + 1;
  let p = { req; t_arrival = Engine.now t.engine } in
  match pick_replica t with
  | None ->
    t.rejected <- t.rejected + 1;
    record_balancer t (Trace.Shed { replica = -1 })
  | Some r ->
    if r.idle_conns > 0 then begin
      r.idle_conns <- r.idle_conns - 1;
      t.pool_hits <- t.pool_hits + 1;
      transfer t r r.epoch p ~delay:(t.cfg.rtt_s /. 2.0)
    end
    else if r.conns < t.cfg.pool_size then begin
      r.conns <- r.conns + 1;
      t.pool_misses <- t.pool_misses + 1;
      transfer t r r.epoch p ~delay:(t.cfg.conn_setup_s +. (t.cfg.rtt_s /. 2.0))
    end
    else if Queue.length r.conn_queue >= t.cfg.queue_limit then begin
      t.rejected <- t.rejected + 1;
      record_balancer t (Trace.Shed { replica = r.id })
    end
    else Queue.push p r.conn_queue

let make_replica id =
  {
    id;
    health = Up;
    epoch = 0;
    busy = 0;
    conns = 0;
    idle_conns = 0;
    conn_queue = Queue.create ();
    cpu_queue = Queue.create ();
    completed = 0;
    dropped = 0;
    busy_s = 0.0;
    recent_recoveries = [];
  }

let publish (t : state) (report : report) =
  let s = Metrics.scope (Engine.metrics t.engine) "fleet" in
  let c name v = Metrics.add (Metrics.counter s name) v in
  let g name v = Metrics.set_gauge (Metrics.gauge s name) v in
  c "arrivals" report.arrivals;
  c "completed" report.completed;
  c "rejected" report.rejected;
  c "dropped" report.dropped;
  c "alarms" report.alarms;
  c "recoveries" report.recoveries;
  c "failstops" report.failstops;
  c "probes" report.probes;
  c "pool.hits" report.pool_hits;
  c "pool.misses" report.pool_misses;
  g "slo.latency_p50_ms" report.latency_p50_ms;
  g "slo.latency_p99_ms" report.latency_p99_ms;
  g "slo.latency_p999_ms" report.latency_p999_ms;
  g "slo.goodput_rps" report.goodput_rps;
  g "slo.availability" report.availability;
  g "slo.error_budget_used" report.error_budget_used

let run ?metrics ?trace cfg ~next_request =
  validate cfg;
  let engine = Engine.create ?metrics () in
  let trace =
    Option.map
      (fun session ->
        {
          tr_session = session;
          tr_balancer = Trace.ring session ~name:"balancer" ~pid:0 ~tid:0;
          tr_replicas =
            Array.init cfg.replicas (fun i ->
                Trace.ring session ~name:(Printf.sprintf "replica %d" i) ~pid:(i + 1) ~tid:0);
        })
      trace
  in
  let t =
    {
      cfg;
      engine;
      trace;
      fleet = Array.init cfg.replicas make_replica;
      latency = Metrics.histogram (Metrics.scope (Engine.metrics engine) "fleet") "latency_s";
      arrivals = 0;
      completed = 0;
      rejected = 0;
      dropped = 0;
      alarms = 0;
      recoveries = 0;
      failstops = 0;
      probes = 0;
      pool_hits = 0;
      pool_misses = 0;
      goodput_bytes = 0;
      latency_sum = 0.0;
      transitions = [];
    }
  in
  let arr = Arrivals.create ~seed:cfg.seed cfg.arrival in
  let rec schedule_arrival time =
    if time < cfg.duration_s then
      Engine.schedule_at engine ~time (fun () ->
          handle_arrival t (next_request ());
          schedule_arrival (Arrivals.next arr ~now:time))
  in
  schedule_arrival (Arrivals.next arr ~now:0.0);
  Engine.run ~until:cfg.duration_s engine;
  let errors = t.rejected + t.dropped in
  let finished = t.completed + errors in
  let pct p = Metrics.histogram_percentile t.latency p *. 1000.0 in
  let report =
    {
      model = Arrivals.model_name cfg.arrival;
      duration_s = cfg.duration_s;
      arrivals = t.arrivals;
      completed = t.completed;
      rejected = t.rejected;
      dropped = t.dropped;
      in_flight = t.arrivals - finished;
      alarms = t.alarms;
      recoveries = t.recoveries;
      failstops = t.failstops;
      probes = t.probes;
      pool_hits = t.pool_hits;
      pool_misses = t.pool_misses;
      goodput_rps = float_of_int t.completed /. cfg.duration_s;
      goodput_bytes_per_s = float_of_int t.goodput_bytes /. cfg.duration_s;
      latency_mean_ms =
        (if t.completed = 0 then 0.0
         else t.latency_sum /. float_of_int t.completed *. 1000.0);
      latency_p50_ms = pct 50.0;
      latency_p99_ms = pct 99.0;
      latency_p999_ms = pct 99.9;
      availability =
        (if finished = 0 then 1.0 else float_of_int t.completed /. float_of_int finished);
      error_budget_used =
        (if finished = 0 then 0.0
         else
           float_of_int errors
           /. ((1.0 -. cfg.slo_target) *. float_of_int finished));
      replica_completed = Array.map (fun (r : replica) -> r.completed) t.fleet;
      replica_dropped = Array.map (fun (r : replica) -> r.dropped) t.fleet;
      replica_utilization =
        Array.map
          (fun r -> r.busy_s /. (float_of_int cfg.cores *. cfg.duration_s))
          t.fleet;
      transitions = List.rev t.transitions;
    }
  in
  publish t report;
  (match t.trace with
  | Some tr when Trace.enabled tr.tr_session ->
    Trace.publish tr.tr_session (Engine.metrics engine)
  | Some _ | None -> ());
  report
