(** 32-bit machine words.

    Words are represented as OCaml [int]s in the range [\[0, 2^32)].
    All arithmetic wraps modulo 2^32, matching the guest machine's
    semantics. Signed operations interpret bit 31 as the sign. *)

type t = int
(** Always normalized: [0 <= w < 0x1_0000_0000]. *)

val mask : int -> t
(** Truncate an arbitrary [int] to 32 bits. *)

val max_value : t
(** [0xFFFFFFFF]. *)

val high_bit : t
(** [0x80000000], the address-space partition bit and UID sign bit. *)

val to_signed : t -> int
(** Two's-complement signed interpretation (range [-2^31, 2^31)). *)

val of_signed : int -> t
(** Inverse of {!to_signed}; also accepts any int and truncates. *)

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t

val div_signed : t -> t -> t
(** Truncated signed division. Raises [Division_by_zero]. *)

val rem_signed : t -> t -> t
(** Signed remainder (sign of the dividend). Raises [Division_by_zero]. *)

val logand : t -> t -> t
val logor : t -> t -> t
val logxor : t -> t -> t
val lognot : t -> t

val shift_left : t -> int -> t
(** Shift amount is masked to [0..31], like x86. *)

val shift_right_logical : t -> int -> t
val shift_right_arith : t -> int -> t

val lt_signed : t -> t -> bool
val lt_unsigned : t -> t -> bool

val byte : t -> int -> int
(** [byte w i] is byte [i] (0 = least significant) of [w], in
    [\[0,255\]]. Raises [Invalid_argument] unless [0 <= i < 4]. *)

val set_byte : t -> int -> int -> t
(** [set_byte w i b] replaces byte [i] with [b land 0xFF]. *)

val pp : Format.formatter -> t -> unit
(** Hex rendering, e.g. [0x7FFFFFFF]. *)
