type variant_spec = {
  index : int;
  base : int;
  tag : int;
  uid : Reexpression.t;
}

type t = { name : string; variants : variant_spec array; unshared_paths : string list }

let count t = Array.length t.variants

let low_base = 0x00010000

let high_base = 0x80010000

let plain_variant index base =
  { index; base; tag = 0; uid = Reexpression.identity }

let single =
  { name = "single"; variants = [| plain_variant 0 low_base |]; unshared_paths = [] }

let replicated =
  {
    name = "replicated";
    variants = [| plain_variant 0 low_base; plain_variant 1 low_base |];
    unshared_paths = [];
  }

let address_partition =
  {
    name = "address-partition";
    variants = [| plain_variant 0 low_base; plain_variant 1 high_base |];
    unshared_paths = [];
  }

let extended_partition ?(offset = 0x4240) () =
  (* The offset must preserve word alignment, or the two variants'
     stacks would sit at different segment offsets and every pointer
     canonicalization would spuriously diverge. *)
  if offset land 3 <> 0 then
    invalid_arg "Variation.extended_partition: offset must be word-aligned";
  {
    name = Printf.sprintf "extended-partition(+0x%X)" offset;
    variants = [| plain_variant 0 low_base; plain_variant 1 (high_base + offset) |];
    unshared_paths = [];
  }

let instruction_tagging =
  {
    name = "instruction-tagging";
    variants =
      [|
        { index = 0; base = low_base; tag = 1; uid = Reexpression.identity };
        { index = 1; base = low_base; tag = 2; uid = Reexpression.identity };
      |];
    unshared_paths = [];
  }

let uid_diversity =
  {
    name = "uid-diversity";
    variants =
      [|
        { index = 0; base = low_base; tag = 0; uid = Reexpression.uid_for_variant 0 };
        { index = 1; base = high_base; tag = 0; uid = Reexpression.uid_for_variant 1 };
      |];
    unshared_paths = [ "/etc/passwd"; "/etc/group" ];
  }

let full_diversity =
  {
    name = "full-diversity";
    variants =
      [|
        { index = 0; base = low_base; tag = 1; uid = Reexpression.uid_for_variant 0 };
        { index = 1; base = high_base; tag = 2; uid = Reexpression.uid_for_variant 1 };
      |];
    unshared_paths = [ "/etc/passwd"; "/etc/group" ];
  }

let uid_diversity_n n =
  if n < 1 then invalid_arg "Variation.uid_diversity_n: need at least one variant";
  {
    name = Printf.sprintf "uid-diversity-%d" n;
    variants =
      Array.init n (fun i ->
          let base = if i = 0 then low_base else high_base + ((i - 1) * 0x100000) in
          { index = i; base; tag = 0; uid = Reexpression.uid_for_variant i });
    unshared_paths = [ "/etc/passwd"; "/etc/group" ];
  }

let pp ppf t =
  Format.fprintf ppf "%s (%d variant%s)" t.name (count t)
    (if count t = 1 then "" else "s")
