(** Lexer for mini-C source text. *)

exception Error of { line : int; message : string }

val tokenize : string -> Token.t list
(** Produce the token stream (terminated by [Eof]). Handles [//] and
    [/* ... */] comments, decimal and [0x] hex integers, character
    literals with the usual escapes, and string literals. Raises
    {!Error} on malformed input. *)
