lib/minic/lexer.ml: Buffer List Printf String Token
