examples/legacy_hardening.mli:
