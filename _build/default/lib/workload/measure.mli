(** Per-request service-demand measurement.

    Drives real requests through a built system (guest code executing
    under the monitor) and records, for each request, the instructions
    retired across all variants, the syscall rendezvous count, and the
    request/response byte counts. These measured demands — not
    synthetic estimates — feed the Table 3 queueing simulation. *)

type sample = {
  instructions : int;  (** summed over variants *)
  rendezvous : int;
  request_bytes : int;
  response_bytes : int;
}

val pp_sample : Format.formatter -> sample -> unit

val profile :
  ?requests:int ->
  ?seed:int ->
  ?paths:string array ->
  Nv_core.Nsystem.t ->
  (sample array, string) result
(** [profile sys] serves [requests] (default 40) requests drawn
    deterministically from [paths] (default {!Nv_httpd.Site.request_mix})
    and returns one sample per request. The first sample additionally
    carries the server's startup work (passwd parsing); callers that
    want steady-state numbers can drop it. Fails if the system alarms
    or dies mid-profile. *)

val mean_demand : sample array -> sample
(** Arithmetic mean of each field (rounded). *)
