let monitor = Logs.Src.create "nv.monitor" ~doc:"N-variant monitor events"
let kernel = Logs.Src.create "nv.kernel" ~doc:"Simulated kernel syscalls"
let vm = Logs.Src.create "nv.vm" ~doc:"Virtual machine traps"
let workload = Logs.Src.create "nv.workload" ~doc:"Workload generator"
let supervisor = Logs.Src.create "nv.supervisor" ~doc:"Recovery supervisor checkpoints/rollbacks"
let fleet = Logs.Src.create "nv.fleet" ~doc:"Fleet balancer and replica health"
let engine = Logs.Src.create "nv.engine" ~doc:"Discrete-event simulation engine"

let setup ?(level = Logs.Warning) () =
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level (Some level)
