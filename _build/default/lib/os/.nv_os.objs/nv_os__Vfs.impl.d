lib/os/vfs.ml: Cred Hashtbl List String
