lib/core/variation.mli: Format Reexpression
