lib/workload/table3.ml: Array Cost_model List Measure Nv_core Nv_httpd Nv_util Printf Webbench
