type item = { instr : Isa.t; relocate : bool }

type t = {
  code : item array;
  data : Bytes.t;
  bss_size : int;
  entry_offset : int;
  symbols : (string * int) list;
}

let align16 n = (n + 15) land lnot 15

let data_offset t = align16 (Array.length t.code * Isa.instr_size)

let image_size t = data_offset t + Bytes.length t.data + t.bss_size

let symbol t name = List.assoc name t.symbols

type layout = {
  base : int;
  code_start : int;
  data_start : int;
  bss_end : int;
  stack_top : int;
  abs_symbols : (string * int) list;
}

type loaded = { cpu : Cpu.t; memory : Memory.t; layout : layout }

let rebase base instr =
  let shift w = Word.add w base in
  match instr with
  | Isa.Mov (rd, Isa.Imm w) -> Isa.Mov (rd, Isa.Imm (shift w))
  | Isa.Binop (op, rd, rs, Isa.Imm w) -> Isa.Binop (op, rd, rs, Isa.Imm (shift w))
  | Isa.Setcc (c, rd, rs, Isa.Imm w) -> Isa.Setcc (c, rd, rs, Isa.Imm (shift w))
  | Isa.Br (c, rs, rt, target) -> Isa.Br (c, rs, rt, shift target)
  | Isa.Jmp target -> Isa.Jmp (shift target)
  | Isa.Call target -> Isa.Call (shift target)
  | Isa.Nop | Isa.Halt | Isa.Mov _ | Isa.Load _ | Isa.Store _ | Isa.Loadb _
  | Isa.Storeb _ | Isa.Binop _ | Isa.Setcc _ | Isa.Jmpr _ | Isa.Callr _ | Isa.Ret
  | Isa.Push _ | Isa.Pop _ | Isa.Syscall ->
    invalid_arg "Image.load: relocation mark on an instruction without an address field"

let load ?(stack_size = 16 * 1024) t ~base ~size ~tag =
  let needed = image_size t + stack_size in
  if needed > size then
    invalid_arg
      (Printf.sprintf "Image.load: image needs %d bytes but segment has %d" needed size);
  let memory = Memory.create ~base ~size in
  Array.iteri
    (fun i { instr; relocate } ->
      let instr = if relocate then rebase base instr else instr in
      let encoded = Isa.encode ~tag instr in
      Memory.store_bytes memory ~addr:(base + (i * Isa.instr_size)) encoded)
    t.code;
  let data_start = base + data_offset t in
  Memory.store_bytes memory ~addr:data_start t.data;
  let bss_end = data_start + Bytes.length t.data + t.bss_size in
  (* Word-align the stack top. *)
  let stack_top = (base + size) land lnot 3 in
  let layout =
    {
      base;
      code_start = base;
      data_start;
      bss_end;
      stack_top;
      abs_symbols = List.map (fun (name, off) -> (name, base + off)) t.symbols;
    }
  in
  let cpu = Cpu.create ~expected_tag:tag memory ~pc:(base + t.entry_offset) ~sp:stack_top in
  { cpu; memory; layout }

let abs_symbol loaded name = List.assoc name loaded.layout.abs_symbols

type snapshot = { snap_cpu : Cpu.snapshot; snap_memory : Memory.snapshot }

let snapshot { cpu; memory; _ } =
  { snap_cpu = Cpu.snapshot cpu; snap_memory = Memory.snapshot memory }

let restore { cpu; memory; _ } snap =
  Cpu.restore cpu snap.snap_cpu;
  Memory.restore memory snap.snap_memory
