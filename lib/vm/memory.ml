type access = Read | Write | Execute

exception Fault of { addr : int; access : access }

(* One slot per [Isa.instr_size]-aligned window of the segment. A slot
   caches the full decode result (tag included) so the CPU's fetch path
   is an array load; stores into the window reset it to [Not_decoded]. *)
type icache_slot = Not_decoded | Cached of (int * Isa.t, Isa.decode_error) result

type t = {
  base : int;
  size : int;
  data : Bytes.t;
  mutable icache : icache_slot array option;  (* lazily created on first fetch *)
  mutable icache_enabled : bool;
}

let create ~base ~size =
  if base < 0 || size < 0 || base + size > 0x1_0000_0000 then
    invalid_arg "Memory.create: segment outside the 32-bit address space";
  { base; size; data = Bytes.make size '\000'; icache = None; icache_enabled = true }

let base t = t.base

let size t = t.size

let in_range t addr = addr >= t.base && addr < t.base + t.size

let check t addr access = if not (in_range t addr) then raise (Fault { addr; access })

(* Fault for a multi-byte access [addr, addr+len): report the first
   out-of-range byte, exactly as the historical byte-at-a-time loops
   did. *)
let fault_range t addr len access =
  let rec first i =
    if i >= len then assert false
    else if not (in_range t (addr + i)) then raise (Fault { addr = addr + i; access })
    else first (i + 1)
  in
  first 0

let to_offset t addr =
  check t addr Read;
  addr - t.base

(* ------------------------------------------------------------------ *)
(* Checkpointing                                                       *)
(* ------------------------------------------------------------------ *)

type snapshot = Bytes.t

let snapshot t = Bytes.copy t.data

let restore t snap =
  if Bytes.length snap <> t.size then
    invalid_arg "Memory.restore: snapshot is for a different segment size";
  Bytes.blit snap 0 t.data 0 t.size;
  (* The rolled-back bytes may differ anywhere in the segment, so the
     whole decode cache is invalid; drop it and let fetches refill it
     lazily, exactly as on first execution. *)
  t.icache <- None

(* ------------------------------------------------------------------ *)
(* Predecoded-instruction cache                                        *)
(* ------------------------------------------------------------------ *)

let set_icache_enabled t enabled = t.icache_enabled <- enabled

(* Slot index = offset / instr_size, as a shift on the (non-negative)
   validated offsets the hot paths pass in. *)
let instr_shift = 3

let () = assert (Isa.instr_size = 1 lsl instr_shift)

let invalidate_icache t off len =
  match t.icache with
  | None -> ()
  | Some cache ->
    let lo = off lsr instr_shift in
    let hi = min ((off + len - 1) lsr instr_shift) (Array.length cache - 1) in
    for i = lo to hi do
      cache.(i) <- Not_decoded
    done

let load_byte t addr =
  check t addr Read;
  Char.code (Bytes.get t.data (addr - t.base))

let store_byte t addr b =
  check t addr Write;
  let off = addr - t.base in
  Bytes.set t.data off (Char.chr (b land 0xFF));
  invalidate_icache t off 1

let exec_byte t addr =
  check t addr Execute;
  Char.code (Bytes.get t.data (addr - t.base))

let load_word t addr =
  let off = addr - t.base in
  if off < 0 || off + 4 > t.size then fault_range t addr 4 Read;
  Int32.to_int (Bytes.get_int32_le t.data off) land 0xFFFFFFFF

let store_word t addr w =
  let off = addr - t.base in
  if off < 0 || off + 4 > t.size then fault_range t addr 4 Write;
  Bytes.set_int32_le t.data off (Int32.of_int w);
  invalidate_icache t off 4

let load_bytes t ~addr ~len =
  if len < 0 then invalid_arg "Memory.load_bytes: negative length";
  check t addr Read;
  if len > 0 then check t (addr + len - 1) Read;
  Bytes.sub t.data (addr - t.base) len

let store_bytes t ~addr data =
  let len = Bytes.length data in
  check t addr Write;
  if len > 0 then check t (addr + len - 1) Write;
  let off = addr - t.base in
  Bytes.blit data 0 t.data off len;
  if len > 0 then invalidate_icache t off len

let load_cstring t ~addr ~max_len =
  if max_len <= 0 then ""
  else begin
    check t addr Read;
    let off = addr - t.base in
    (* The scan may stop at a NUL, at [max_len], or fault at the end of
       the segment — whichever comes first. *)
    let window_end = min (off + max_len) t.size in
    let rec find i = if i >= window_end then i else if Bytes.get t.data i = '\000' then i else find (i + 1) in
    let stop = find off in
    if stop >= window_end && window_end < off + max_len then
      (* Ran off the segment before a NUL or the length bound. *)
      raise (Fault { addr = t.base + t.size; access = Read });
    Bytes.sub_string t.data off (stop - off)
  end

let store_cstring t ~addr s =
  (* Validate the whole destination (string plus NUL) before touching
     guest memory, so a faulting store never leaves a partial write. *)
  let len = String.length s + 1 in
  let off = addr - t.base in
  if off < 0 || off + len > t.size then fault_range t addr len Write;
  Bytes.blit_string s 0 t.data off (String.length s);
  Bytes.set t.data (off + String.length s) '\000';
  invalidate_icache t off len

(* ------------------------------------------------------------------ *)
(* Decoded fetch                                                       *)
(* ------------------------------------------------------------------ *)

(* The pre-cache fetch path, kept as the differential-testing and
   benchmarking reference: byte-at-a-time Execute-checked loads into a
   fresh buffer, then a full decode. *)
let fetch_reference t addr =
  let b = Bytes.create Isa.instr_size in
  for i = 0 to Isa.instr_size - 1 do
    Bytes.set b i (Char.chr (exec_byte t (addr + i)))
  done;
  Isa.decode b

let fetch_decoded t addr =
  let off = addr - t.base in
  if
    (not t.icache_enabled)
    || off < 0
    || off + Isa.instr_size > t.size
    || off land (Isa.instr_size - 1) <> 0
  then
    (* Disabled, out of range (faults like the byte loop), or an
       unaligned fetch that would alias a cache slot: decode fresh. *)
    fetch_reference t addr
  else begin
    let cache =
      match t.icache with
      | Some c -> c
      | None ->
        let c = Array.make ((t.size + Isa.instr_size - 1) lsr instr_shift) Not_decoded in
        t.icache <- Some c;
        c
    in
    let idx = off lsr instr_shift in
    match cache.(idx) with
    | Cached r -> r
    | Not_decoded ->
      let r = Isa.decode_at t.data ~pos:off in
      cache.(idx) <- Cached r;
      r
  end
