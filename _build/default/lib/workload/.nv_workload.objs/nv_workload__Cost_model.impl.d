lib/workload/cost_model.ml:
