(* Unit and property tests for nv_util: Prng, Stats, Tablefmt. *)

open Nv_util

let check_float = Alcotest.(check (float 1e-9))

(* ------------------------------------------------------------------ *)
(* Prng                                                                *)
(* ------------------------------------------------------------------ *)

let test_prng_deterministic () =
  let a = Prng.create ~seed:42 in
  let b = Prng.create ~seed:42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.bits64 a) (Prng.bits64 b)
  done

let test_prng_seed_sensitivity () =
  let a = Prng.create ~seed:1 in
  let b = Prng.create ~seed:2 in
  Alcotest.(check bool) "different seeds differ" true (Prng.bits64 a <> Prng.bits64 b)

let test_prng_split_independent () =
  let parent = Prng.create ~seed:7 in
  let child = Prng.split parent in
  let c1 = Prng.bits64 child in
  (* Advancing the parent must not affect the child's future stream. *)
  let parent2 = Prng.create ~seed:7 in
  let child2 = Prng.split parent2 in
  Alcotest.(check int64) "split deterministic" c1 (Prng.bits64 child2)

let test_prng_int_bounds () =
  let t = Prng.create ~seed:3 in
  for _ = 1 to 1000 do
    let x = Prng.int t 17 in
    Alcotest.(check bool) "in [0,17)" true (x >= 0 && x < 17)
  done

let test_prng_int_invalid () =
  let t = Prng.create ~seed:3 in
  Alcotest.check_raises "bound 0" (Invalid_argument "Prng.int: bound must be positive")
    (fun () -> ignore (Prng.int t 0))

let test_prng_int_in () =
  let t = Prng.create ~seed:9 in
  for _ = 1 to 1000 do
    let x = Prng.int_in t (-5) 5 in
    Alcotest.(check bool) "in [-5,5]" true (x >= -5 && x <= 5)
  done

let test_prng_float_bounds () =
  let t = Prng.create ~seed:5 in
  for _ = 1 to 1000 do
    let x = Prng.float t 2.5 in
    Alcotest.(check bool) "in [0,2.5)" true (x >= 0.0 && x < 2.5)
  done

let test_prng_exponential_positive () =
  let t = Prng.create ~seed:11 in
  for _ = 1 to 500 do
    Alcotest.(check bool) "positive" true (Prng.exponential t ~mean:3.0 > 0.0)
  done

let test_prng_exponential_mean () =
  let t = Prng.create ~seed:13 in
  let n = 20000 in
  let acc = ref 0.0 in
  for _ = 1 to n do
    acc := !acc +. Prng.exponential t ~mean:4.0
  done;
  let mean = !acc /. float_of_int n in
  Alcotest.(check bool) "mean near 4" true (abs_float (mean -. 4.0) < 0.2)

let test_prng_pick () =
  let t = Prng.create ~seed:17 in
  let arr = [| "a"; "b"; "c" |] in
  for _ = 1 to 100 do
    let x = Prng.pick t arr in
    Alcotest.(check bool) "member" true (Array.exists (String.equal x) arr)
  done

let test_prng_shuffle_permutation () =
  let t = Prng.create ~seed:19 in
  let arr = Array.init 50 (fun i -> i) in
  Prng.shuffle t arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 50 (fun i -> i)) sorted

let prop_prng_int_uniformish =
  QCheck.Test.make ~name:"prng int covers all buckets" ~count:50
    QCheck.(int_range 1 1000)
    (fun seed ->
      let t = Prng.create ~seed in
      let buckets = Array.make 8 0 in
      for _ = 1 to 4000 do
        let i = Prng.int t 8 in
        buckets.(i) <- buckets.(i) + 1
      done;
      Array.for_all (fun c -> c > 0) buckets)

(* ------------------------------------------------------------------ *)
(* Stats                                                               *)
(* ------------------------------------------------------------------ *)

let test_stats_mean () =
  check_float "mean" 2.5 (Stats.mean [| 1.0; 2.0; 3.0; 4.0 |]);
  check_float "empty mean" 0.0 (Stats.mean [||])

let test_stats_stddev () =
  check_float "stddev" (sqrt 2.5) (Stats.stddev [| 1.0; 2.0; 3.0; 4.0; 5.0 |]);
  check_float "single" 0.0 (Stats.stddev [| 42.0 |])

let test_stats_percentile_exact () =
  let xs = [| 10.0; 20.0; 30.0; 40.0; 50.0 |] in
  check_float "p0" 10.0 (Stats.percentile xs 0.0);
  check_float "p50" 30.0 (Stats.percentile xs 50.0);
  check_float "p100" 50.0 (Stats.percentile xs 100.0)

let test_stats_percentile_interp () =
  let xs = [| 0.0; 10.0 |] in
  check_float "p25" 2.5 (Stats.percentile xs 25.0)

let test_stats_percentile_unsorted_input () =
  let xs = [| 50.0; 10.0; 40.0; 20.0; 30.0 |] in
  check_float "p50 of unsorted" 30.0 (Stats.percentile xs 50.0)

let test_stats_percentile_invalid () =
  Alcotest.check_raises "empty" (Invalid_argument "Stats.percentile: empty array")
    (fun () -> ignore (Stats.percentile [||] 50.0));
  Alcotest.check_raises "out of range"
    (Invalid_argument "Stats.percentile: p out of range") (fun () ->
      ignore (Stats.percentile [| 1.0 |] 101.0))

let test_stats_summarize () =
  let s = Stats.summarize [| 3.0; 1.0; 2.0 |] in
  Alcotest.(check int) "n" 3 s.Stats.n;
  check_float "min" 1.0 s.Stats.min;
  check_float "max" 3.0 s.Stats.max;
  check_float "p50" 2.0 s.Stats.p50

let test_stats_rejects_nan () =
  (* Regression: the polymorphic-compare sort treated NaN as orderable
     and silently produced garbage percentiles; now it is an error. *)
  Alcotest.check_raises "percentile" (Invalid_argument "Stats.percentile: NaN in input")
    (fun () -> ignore (Stats.percentile [| 1.0; nan; 3.0 |] 50.0));
  Alcotest.check_raises "summarize" (Invalid_argument "Stats.summarize: NaN in input")
    (fun () -> ignore (Stats.summarize [| nan |]))

let test_stats_orders_negatives_and_infinities () =
  (* Float.compare orders the full float line (minus NaN). *)
  let xs = [| infinity; -3.0; 0.0; neg_infinity; 2.0 |] in
  check_float "p0" neg_infinity (Stats.percentile xs 0.0);
  check_float "p50" 0.0 (Stats.percentile xs 50.0);
  check_float "p100" infinity (Stats.percentile xs 100.0)

let prop_stats_percentile_monotone =
  QCheck.Test.make ~name:"percentile is monotone in p" ~count:200
    QCheck.(pair (list_of_size (Gen.int_range 1 40) (float_range 0.0 100.0))
              (pair (float_range 0.0 100.0) (float_range 0.0 100.0)))
    (fun (xs, (p1, p2)) ->
      let xs = Array.of_list xs in
      let lo = min p1 p2 and hi = max p1 p2 in
      Stats.percentile xs lo <= Stats.percentile xs hi +. 1e-9)

let prop_stats_mean_between_min_max =
  QCheck.Test.make ~name:"mean within [min,max]" ~count:200
    QCheck.(list_of_size (Gen.int_range 1 40) (float_range (-50.0) 50.0))
    (fun xs ->
      let xs = Array.of_list xs in
      let s = Stats.summarize xs in
      s.Stats.min -. 1e-9 <= s.Stats.mean && s.Stats.mean <= s.Stats.max +. 1e-9)

(* ------------------------------------------------------------------ *)
(* Tablefmt                                                            *)
(* ------------------------------------------------------------------ *)

(* Minimal substring helper to avoid external deps in tests. *)
module Astring_contains = struct
  let contains haystack needle =
    let n = String.length needle and h = String.length haystack in
    let rec scan i = i + n <= h && (String.sub haystack i n = needle || scan (i + 1)) in
    n = 0 || scan 0
end

let test_table_basic () =
  let s =
    Tablefmt.render ~header:[ "name"; "value" ]
      ~rows:[ [ "alpha"; "1" ]; [ "beta"; "22" ] ]
      ()
  in
  Alcotest.(check bool) "has alpha" true (Astring_contains.contains s "alpha");
  Alcotest.(check bool) "has header" true (Astring_contains.contains s "value")

let test_table_pads_short_rows () =
  let s = Tablefmt.render ~header:[ "a"; "b"; "c" ] ~rows:[ [ "x" ] ] () in
  Alcotest.(check bool) "renders" true (String.length s > 0)

let test_table_rejects_wide_rows () =
  Alcotest.check_raises "too wide"
    (Invalid_argument "Tablefmt.render: row wider than header") (fun () ->
      ignore (Tablefmt.render ~header:[ "a" ] ~rows:[ [ "x"; "y" ] ] ()))

let test_table_alignment () =
  let s =
    Tablefmt.render
      ~align:[| Tablefmt.Right; Tablefmt.Left |]
      ~header:[ "n"; "s" ]
      ~rows:[ [ "1"; "ab" ] ]
      ()
  in
  Alcotest.(check bool) "renders with explicit align" true (String.length s > 0)

let test_table_align_mismatch () =
  Alcotest.check_raises "align mismatch"
    (Invalid_argument "Tablefmt.render: align length mismatch") (fun () ->
      ignore (Tablefmt.render ~align:[| Tablefmt.Left |] ~header:[ "a"; "b" ] ~rows:[] ()))

let test_table_equal_line_widths () =
  let s =
    Tablefmt.render ~header:[ "col"; "x" ] ~rows:[ [ "longer-cell"; "1" ] ] ()
  in
  let lines = String.split_on_char '\n' s |> List.filter (fun l -> l <> "") in
  let widths = List.map String.length lines in
  match widths with
  | [] -> Alcotest.fail "no lines"
  | w :: rest -> List.iter (fun w' -> Alcotest.(check int) "same width" w w') rest

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "nv_util"
    [
      ( "prng",
        [
          Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_prng_seed_sensitivity;
          Alcotest.test_case "split independent" `Quick test_prng_split_independent;
          Alcotest.test_case "int bounds" `Quick test_prng_int_bounds;
          Alcotest.test_case "int invalid" `Quick test_prng_int_invalid;
          Alcotest.test_case "int_in bounds" `Quick test_prng_int_in;
          Alcotest.test_case "float bounds" `Quick test_prng_float_bounds;
          Alcotest.test_case "exponential positive" `Quick test_prng_exponential_positive;
          Alcotest.test_case "exponential mean" `Slow test_prng_exponential_mean;
          Alcotest.test_case "pick member" `Quick test_prng_pick;
          Alcotest.test_case "shuffle permutation" `Quick test_prng_shuffle_permutation;
        ]
        @ qsuite [ prop_prng_int_uniformish ] );
      ( "stats",
        [
          Alcotest.test_case "mean" `Quick test_stats_mean;
          Alcotest.test_case "stddev" `Quick test_stats_stddev;
          Alcotest.test_case "percentile exact" `Quick test_stats_percentile_exact;
          Alcotest.test_case "percentile interpolation" `Quick test_stats_percentile_interp;
          Alcotest.test_case "percentile unsorted" `Quick test_stats_percentile_unsorted_input;
          Alcotest.test_case "percentile invalid" `Quick test_stats_percentile_invalid;
          Alcotest.test_case "summarize" `Quick test_stats_summarize;
          Alcotest.test_case "rejects NaN" `Quick test_stats_rejects_nan;
          Alcotest.test_case "orders negatives and infinities" `Quick
            test_stats_orders_negatives_and_infinities;
        ]
        @ qsuite [ prop_stats_percentile_monotone; prop_stats_mean_between_min_max ] );
      ( "tablefmt",
        [
          Alcotest.test_case "basic" `Quick test_table_basic;
          Alcotest.test_case "pads short rows" `Quick test_table_pads_short_rows;
          Alcotest.test_case "rejects wide rows" `Quick test_table_rejects_wide_rows;
          Alcotest.test_case "alignment" `Quick test_table_alignment;
          Alcotest.test_case "align mismatch" `Quick test_table_align_mismatch;
          Alcotest.test_case "equal line widths" `Quick test_table_equal_line_widths;
        ] );
    ]
