(* Worker-pool over OCaml 5 domains. One mutex guards the task queue,
   the stop flag and every promise state; [has_task] wakes idle
   workers, [progress] is broadcast on every promise completion so
   awaiting callers re-check their promise (and help with whatever is
   queued behind it).

   A task carries a [drop] alongside its [run]: [shutdown] drains the
   queue and drops every task that never started, settling its promise
   as [Dropped] so an awaiting caller raises instead of blocking on a
   promise that no domain will ever complete. *)

type task = Task : { run : unit -> unit; drop : unit -> unit } -> task

type t = {
  mutex : Mutex.t;
  has_task : Condition.t;
  progress : Condition.t;
  tasks : task Queue.t;
  mutable stop : bool;
  mutable domains : unit Domain.t list;
  size : int;
}

type 'a state =
  | Pending
  | Done of 'a
  | Raised of exn * Printexc.raw_backtrace
  | Dropped  (* never started: its pool was shut down first *)

type 'a promise = { pool : t; mutable state : 'a state }

let size t = t.size

let worker pool =
  let rec loop () =
    Mutex.lock pool.mutex;
    let rec next () =
      if pool.stop then None
      else
        match Queue.take_opt pool.tasks with
        | Some _ as task -> task
        | None ->
          Condition.wait pool.has_task pool.mutex;
          next ()
    in
    let task = next () in
    Mutex.unlock pool.mutex;
    match task with
    | None -> ()
    | Some (Task { run; _ }) ->
      run ();
      loop ()
  in
  loop ()

let create ~size =
  if size < 1 then invalid_arg "Dompool.create: size must be >= 1";
  let pool =
    {
      mutex = Mutex.create ();
      has_task = Condition.create ();
      progress = Condition.create ();
      tasks = Queue.create ();
      stop = false;
      domains = [];
      size;
    }
  in
  pool.domains <- List.init size (fun _ -> Domain.spawn (fun () -> worker pool));
  pool

let dropped_message = "Dompool.await: task dropped by shutdown"

let shutdown pool =
  Mutex.lock pool.mutex;
  pool.stop <- true;
  (* Settle every never-started task in the same critical section that
     sets [stop]: once any caller observes the pool as stopped, every
     queued promise is already [Dropped]. *)
  Queue.iter (fun (Task { drop; _ }) -> drop ()) pool.tasks;
  Queue.clear pool.tasks;
  Condition.broadcast pool.has_task;
  Condition.broadcast pool.progress;
  Mutex.unlock pool.mutex;
  List.iter Domain.join pool.domains;
  pool.domains <- []

let submit pool f =
  let p = { pool; state = Pending } in
  let run () =
    (* The task body runs unlocked; only the state write is guarded. *)
    let state =
      match f () with
      | v -> Done v
      | exception e -> Raised (e, Printexc.get_raw_backtrace ())
    in
    Mutex.lock pool.mutex;
    p.state <- state;
    Condition.broadcast pool.progress;
    Mutex.unlock pool.mutex
  in
  let drop () = p.state <- Dropped in
  Mutex.lock pool.mutex;
  if pool.stop then begin
    Mutex.unlock pool.mutex;
    invalid_arg "Dompool.submit: pool is shut down"
  end;
  Queue.add (Task { run; drop }) pool.tasks;
  Condition.signal pool.has_task;
  Mutex.unlock pool.mutex;
  p

(* Help-while-awaiting: as long as the promise is pending, pop and run
   queued tasks (any task — progress on the queue is progress towards
   the promise, which is either queued behind them or already running
   on a worker that will broadcast [progress] when it completes). *)
let await_result p =
  let pool = p.pool in
  let rec loop () =
    Mutex.lock pool.mutex;
    match p.state with
    | Done v ->
      Mutex.unlock pool.mutex;
      Ok v
    | Raised (e, bt) ->
      Mutex.unlock pool.mutex;
      Error (e, bt)
    | Dropped ->
      Mutex.unlock pool.mutex;
      Error (Invalid_argument dropped_message, Printexc.get_callstack 0)
    | Pending -> (
      match Queue.take_opt pool.tasks with
      | Some (Task { run; _ }) ->
        Mutex.unlock pool.mutex;
        run ();
        loop ()
      | None ->
        Condition.wait pool.progress pool.mutex;
        Mutex.unlock pool.mutex;
        loop ())
  in
  loop ()

let await p =
  match await_result p with
  | Ok v -> v
  | Error (e, bt) -> Printexc.raise_with_backtrace e bt

let map_array pool f xs =
  let n = Array.length xs in
  if n = 0 then [||]
  else begin
    let promises = Array.map (fun x -> submit pool (fun () -> f x)) xs in
    (* Await every task before raising anything: failure order must be
       the lowest index, not whichever domain lost the race. *)
    let results = Array.map await_result promises in
    Array.iter
      (function
        | Error (e, bt) -> Printexc.raise_with_backtrace e bt
        | Ok _ -> ())
      results;
    Array.map (function Ok v -> v | Error _ -> assert false) results
  end

(* The global pool is created lazily under its own mutex: nested users
   (pool tasks that themselves want the pool) may race to create it. *)
let global_mutex = Mutex.create ()

let global_pool = ref None

let default_size () = max 1 (Domain.recommended_domain_count () - 1)

let global () =
  Mutex.lock global_mutex;
  let pool =
    match !global_pool with
    | Some pool -> pool
    | None ->
      let pool = create ~size:(default_size ()) in
      global_pool := Some pool;
      pool
  in
  Mutex.unlock global_mutex;
  pool

let env_default () =
  match Sys.getenv_opt "NV_PARALLEL" with Some "1" -> true | Some _ | None -> false
