type reg = int

type operand = Reg of reg | Imm of Word.t

type binop = Add | Sub | Mul | Div | Mod | And | Or | Xor | Shl | Shr | Sar

type cond = Eq | Ne | Lt | Le | Gt | Ge | Ltu | Leu | Gtu | Geu

type t =
  | Nop
  | Halt
  | Mov of reg * operand
  | Load of reg * reg * int
  | Store of reg * int * reg
  | Loadb of reg * reg * int
  | Storeb of reg * int * reg
  | Binop of binop * reg * reg * operand
  | Setcc of cond * reg * reg * operand
  | Br of cond * reg * reg * Word.t
  | Jmp of Word.t
  | Jmpr of reg
  | Call of Word.t
  | Callr of reg
  | Ret
  | Push of reg
  | Pop of reg
  | Syscall

let instr_size = 8

let eval_cond cond a b =
  match cond with
  | Eq -> a = b
  | Ne -> a <> b
  | Lt -> Word.lt_signed a b
  | Le -> not (Word.lt_signed b a)
  | Gt -> Word.lt_signed b a
  | Ge -> not (Word.lt_signed a b)
  | Ltu -> Word.lt_unsigned a b
  | Leu -> not (Word.lt_unsigned b a)
  | Gtu -> Word.lt_unsigned b a
  | Geu -> not (Word.lt_unsigned a b)

let eval_binop op a b =
  match op with
  | Add -> Word.add a b
  | Sub -> Word.sub a b
  | Mul -> Word.mul a b
  | Div -> Word.div_signed a b
  | Mod -> Word.rem_signed a b
  | And -> Word.logand a b
  | Or -> Word.logor a b
  | Xor -> Word.logxor a b
  | Shl -> Word.shift_left a b
  | Shr -> Word.shift_right_logical a b
  | Sar -> Word.shift_right_arith a b

(* ------------------------------------------------------------------ *)
(* Binary encoding                                                     *)
(*                                                                     *)
(* byte 0: tag                                                         *)
(* byte 1: opcode                                                      *)
(* byte 2: (ra lsl 4) lor rb        -- two register fields             *)
(* byte 3: bit 7 = operand-is-immediate; bits 0-4 = binop/cond code    *)
(* bytes 4-7: 32-bit immediate, little-endian (or register index when  *)
(*            the operand flag is clear)                               *)
(* ------------------------------------------------------------------ *)

let op_nop = 0
let op_halt = 1
let op_mov = 2
let op_load = 3
let op_store = 4
let op_loadb = 5
let op_storeb = 6
let op_binop = 7
let op_setcc = 8
let op_br = 9
let op_jmp = 10
let op_jmpr = 11
let op_call = 12
let op_callr = 13
let op_ret = 14
let op_push = 15
let op_pop = 16
let op_syscall = 17

let binop_code = function
  | Add -> 0 | Sub -> 1 | Mul -> 2 | Div -> 3 | Mod -> 4 | And -> 5
  | Or -> 6 | Xor -> 7 | Shl -> 8 | Shr -> 9 | Sar -> 10

let binop_of_code = function
  | 0 -> Some Add | 1 -> Some Sub | 2 -> Some Mul | 3 -> Some Div
  | 4 -> Some Mod | 5 -> Some And | 6 -> Some Or | 7 -> Some Xor
  | 8 -> Some Shl | 9 -> Some Shr | 10 -> Some Sar | _ -> None

let cond_code = function
  | Eq -> 0 | Ne -> 1 | Lt -> 2 | Le -> 3 | Gt -> 4 | Ge -> 5
  | Ltu -> 6 | Leu -> 7 | Gtu -> 8 | Geu -> 9

let cond_of_code = function
  | 0 -> Some Eq | 1 -> Some Ne | 2 -> Some Lt | 3 -> Some Le
  | 4 -> Some Gt | 5 -> Some Ge | 6 -> Some Ltu | 7 -> Some Leu
  | 8 -> Some Gtu | 9 -> Some Geu | _ -> None

let imm_flag = 0x80

let check_reg r = if r < 0 || r > 15 then invalid_arg "Isa.encode: register out of range"

let check_tag tag = if tag < 0 || tag > 255 then invalid_arg "Isa.encode: tag out of range"

type decode_error = Bad_opcode of int | Bad_selector of int | Bad_register of int

let encode ~tag instr =
  check_tag tag;
  let b = Bytes.make instr_size '\000' in
  let set i v = Bytes.set b i (Char.chr (v land 0xFF)) in
  let set_imm w =
    let w = Word.mask w in
    set 4 (Word.byte w 0);
    set 5 (Word.byte w 1);
    set 6 (Word.byte w 2);
    set 7 (Word.byte w 3)
  in
  let set_regs ra rb =
    check_reg ra;
    check_reg rb;
    set 2 ((ra lsl 4) lor rb)
  in
  let set_operand = function
    | Reg r ->
      check_reg r;
      set_imm r
    | Imm w ->
      set 3 (Char.code (Bytes.get b 3) lor imm_flag);
      set_imm w
  in
  set 0 tag;
  (match instr with
  | Nop -> set 1 op_nop
  | Halt -> set 1 op_halt
  | Mov (rd, operand) ->
    set 1 op_mov;
    set_regs rd 0;
    set_operand operand
  | Load (rd, rs, off) ->
    set 1 op_load;
    set_regs rd rs;
    set_imm (Word.of_signed off)
  | Store (rd, off, rs) ->
    set 1 op_store;
    set_regs rd rs;
    set_imm (Word.of_signed off)
  | Loadb (rd, rs, off) ->
    set 1 op_loadb;
    set_regs rd rs;
    set_imm (Word.of_signed off)
  | Storeb (rd, off, rs) ->
    set 1 op_storeb;
    set_regs rd rs;
    set_imm (Word.of_signed off)
  | Binop (op, rd, rs, operand) ->
    set 1 op_binop;
    set_regs rd rs;
    set 3 (binop_code op);
    set_operand operand
  | Setcc (cond, rd, rs, operand) ->
    set 1 op_setcc;
    set_regs rd rs;
    set 3 (cond_code cond);
    set_operand operand
  | Br (cond, rs, rt, target) ->
    set 1 op_br;
    set_regs rs rt;
    set 3 (cond_code cond);
    set_imm target
  | Jmp target ->
    set 1 op_jmp;
    set_imm target
  | Jmpr rs ->
    set 1 op_jmpr;
    set_regs rs 0
  | Call target ->
    set 1 op_call;
    set_imm target
  | Callr rs ->
    set 1 op_callr;
    set_regs rs 0
  | Ret -> set 1 op_ret
  | Push rs ->
    set 1 op_push;
    set_regs rs 0
  | Pop rd ->
    set 1 op_pop;
    set_regs rd 0
  | Syscall -> set 1 op_syscall);
  b

let decode_at b ~pos =
  if pos < 0 || pos + instr_size > Bytes.length b then
    invalid_arg "Isa.decode_at: position out of range";
  let get i = Char.code (Bytes.get b (pos + i)) in
  let tag = get 0 in
  let opcode = get 1 in
  let ra = get 2 lsr 4 in
  let rb = get 2 land 0xF in
  let sel = get 3 in
  let imm = get 4 lor (get 5 lsl 8) lor (get 6 lsl 16) lor (get 7 lsl 24) in
  let simm = Word.to_signed imm in
  let operand () =
    if sel land imm_flag <> 0 then Ok (Imm imm)
    else if imm > 15 then Error (Bad_register imm)
    else Ok (Reg imm)
  in
  let with_operand k =
    match operand () with Ok o -> Ok (tag, k o) | Error e -> Error e
  in
  let with_binop k =
    match binop_of_code (sel land 0x1F) with
    | None -> Error (Bad_selector sel)
    | Some op -> (
      match operand () with Ok o -> Ok (tag, k op o) | Error e -> Error e)
  in
  let with_cond_operand k =
    match cond_of_code (sel land 0x1F) with
    | None -> Error (Bad_selector sel)
    | Some c -> (
      match operand () with Ok o -> Ok (tag, k c o) | Error e -> Error e)
  in
  match opcode with
  | o when o = op_nop -> Ok (tag, Nop)
  | o when o = op_halt -> Ok (tag, Halt)
  | o when o = op_mov -> with_operand (fun operand -> Mov (ra, operand))
  | o when o = op_load -> Ok (tag, Load (ra, rb, simm))
  | o when o = op_store -> Ok (tag, Store (ra, simm, rb))
  | o when o = op_loadb -> Ok (tag, Loadb (ra, rb, simm))
  | o when o = op_storeb -> Ok (tag, Storeb (ra, simm, rb))
  | o when o = op_binop -> with_binop (fun op operand -> Binop (op, ra, rb, operand))
  | o when o = op_setcc -> with_cond_operand (fun c operand -> Setcc (c, ra, rb, operand))
  | o when o = op_br -> (
    match cond_of_code (sel land 0x1F) with
    | None -> Error (Bad_selector sel)
    | Some c -> Ok (tag, Br (c, ra, rb, imm)))
  | o when o = op_jmp -> Ok (tag, Jmp imm)
  | o when o = op_jmpr -> Ok (tag, Jmpr ra)
  | o when o = op_call -> Ok (tag, Call imm)
  | o when o = op_callr -> Ok (tag, Callr ra)
  | o when o = op_ret -> Ok (tag, Ret)
  | o when o = op_push -> Ok (tag, Push ra)
  | o when o = op_pop -> Ok (tag, Pop ra)
  | o when o = op_syscall -> Ok (tag, Syscall)
  | o -> Error (Bad_opcode o)

let decode b =
  if Bytes.length b <> instr_size then invalid_arg "Isa.decode: wrong buffer size";
  decode_at b ~pos:0

(* ------------------------------------------------------------------ *)
(* Pretty printing                                                     *)
(* ------------------------------------------------------------------ *)

let pp_binop ppf op =
  let s =
    match op with
    | Add -> "add" | Sub -> "sub" | Mul -> "mul" | Div -> "div" | Mod -> "mod"
    | And -> "and" | Or -> "or" | Xor -> "xor" | Shl -> "shl" | Shr -> "shr"
    | Sar -> "sar"
  in
  Format.pp_print_string ppf s

let pp_cond ppf c =
  let s =
    match c with
    | Eq -> "eq" | Ne -> "ne" | Lt -> "lt" | Le -> "le" | Gt -> "gt" | Ge -> "ge"
    | Ltu -> "ltu" | Leu -> "leu" | Gtu -> "gtu" | Geu -> "geu"
  in
  Format.pp_print_string ppf s

let pp_operand ppf = function
  | Reg r -> Format.fprintf ppf "r%d" r
  | Imm w -> Format.fprintf ppf "#%a" Word.pp w

let pp ppf = function
  | Nop -> Format.pp_print_string ppf "nop"
  | Halt -> Format.pp_print_string ppf "halt"
  | Mov (rd, o) -> Format.fprintf ppf "mov r%d, %a" rd pp_operand o
  | Load (rd, rs, off) -> Format.fprintf ppf "ld r%d, [r%d%+d]" rd rs off
  | Store (rd, off, rs) -> Format.fprintf ppf "st [r%d%+d], r%d" rd off rs
  | Loadb (rd, rs, off) -> Format.fprintf ppf "ldb r%d, [r%d%+d]" rd rs off
  | Storeb (rd, off, rs) -> Format.fprintf ppf "stb [r%d%+d], r%d" rd off rs
  | Binop (op, rd, rs, o) ->
    Format.fprintf ppf "%a r%d, r%d, %a" pp_binop op rd rs pp_operand o
  | Setcc (c, rd, rs, o) ->
    Format.fprintf ppf "set%a r%d, r%d, %a" pp_cond c rd rs pp_operand o
  | Br (c, rs, rt, target) ->
    Format.fprintf ppf "br%a r%d, r%d, %a" pp_cond c rs rt Word.pp target
  | Jmp target -> Format.fprintf ppf "jmp %a" Word.pp target
  | Jmpr rs -> Format.fprintf ppf "jmpr r%d" rs
  | Call target -> Format.fprintf ppf "call %a" Word.pp target
  | Callr rs -> Format.fprintf ppf "callr r%d" rs
  | Ret -> Format.pp_print_string ppf "ret"
  | Push rs -> Format.fprintf ppf "push r%d" rs
  | Pop rd -> Format.fprintf ppf "pop r%d" rd
  | Syscall -> Format.pp_print_string ppf "syscall"
