(** Single-process execution of a compiled image against the simulated
    kernel — the {e unprotected baseline} of the paper's evaluation
    (Configurations 1 and 2 of Table 3 run exactly this way) and the
    harness used by the language tests.

    There is no replication and no reexpression here: UID-bearing
    syscalls pass values through unchanged, and the Table 2 detection
    calls degenerate to their obvious single-variant semantics
    ([uid_value] returns its argument, [cc_eq] compares, ...). *)

type outcome =
  | Exited of int
  | Faulted of Nv_vm.Cpu.fault
  | Blocked_on_accept
      (** [accept] found no pending connection; connect a client and
          call {!run} again to resume. *)
  | Out_of_fuel

type t

val create :
  ?base:int -> ?size:int -> ?tag:int -> Nv_vm.Image.t -> Nv_os.Kernel.t -> t
(** Load the image (defaults: base [0x10000], 1 MiB segment, tag 0)
    and attach it to the kernel. The kernel should have been created
    with [~variants:1]. *)

val kernel : t -> Nv_os.Kernel.t
val loaded : t -> Nv_vm.Image.loaded

val instructions_retired : t -> int
(** Guest instructions executed so far (the Table 3 service-demand
    metric). *)

val syscalls : t -> int
(** Syscall traps serviced so far. *)

val run : ?fuel:int -> t -> outcome
(** Execute until exit, fault, block, or fuel exhaustion (default fuel
    10 million instructions). Resumable after [Blocked_on_accept]. *)
