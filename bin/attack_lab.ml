(* attack_lab: run the attack campaign (experiment X2) from the
   command line. *)

open Cmdliner

let attack_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "a"; "attack" ] ~docv:"NAME"
        ~doc:"Run a single attack by name (default: all). Use --list to see names.")

let config_arg =
  let configs =
    List.map (fun c -> (Nv_httpd.Deploy.name c, c)) Nv_httpd.Deploy.matrix
  in
  Arg.(
    value
    & opt (some (enum configs)) None
    & info [ "c"; "config" ] ~docv:"CONFIG"
        ~doc:
          "Target configuration (default: the whole matrix - the four Table 3 \
           configurations plus the N=3/4 portfolio columns).")

let list_arg = Arg.(value & flag & info [ "list" ] ~doc:"List attacks and exit.")

let verbose_arg =
  Arg.(value & flag & info [ "verbose" ] ~doc:"Print detailed verdicts, not just labels.")

let parallel_arg =
  Arg.(
    value
    & opt (enum [ ("on", true); ("off", false) ]) (Nv_util.Dompool.env_default ())
    & info [ "parallel" ] ~docv:"on|off"
        ~doc:
          "Run independent attack/configuration cells (and each system's \
           variants) on a domain pool. Defaults to the $(b,NV_PARALLEL) \
           environment variable (1 = on). Verdicts are identical either way.")

let recover_arg =
  Arg.(
    value & flag
    & info [ "recover" ]
        ~doc:
          "Deploy each system with a recovery supervisor (default budget): \
           detected attacks roll back and the server keeps serving, so cells \
           report $(b,RECOVERED) instead of $(b,DETECTED).")

let forensics_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "forensics" ] ~docv:"FILE"
        ~doc:
          "Run one (attack, config) cell with the flight recorder enabled and \
           write its Chrome trace-event JSON — with the alarm post-mortem \
           bundle under a top-level $(b,forensics) key — to $(docv). \
           Requires $(b,--attack) and $(b,--config) to pin the cell.")

let run attack config list verbose parallel recover forensics =
  if list then begin
    List.iter
      (fun a ->
        Printf.printf "%-22s %s\n" a.Nv_attacks.Campaign.name
          a.Nv_attacks.Campaign.description)
      Nv_attacks.Campaign.attacks;
    exit 0
  end;
  let attacks =
    match attack with
    | None -> Nv_attacks.Campaign.attacks
    | Some name -> (
      match Nv_attacks.Campaign.find name with
      | Some a -> [ a ]
      | None ->
        Printf.eprintf "unknown attack %S (try --list)\n" name;
        exit 2)
  in
  let configs = match config with None -> Nv_httpd.Deploy.matrix | Some c -> [ c ] in
  let recover = if recover then Some Nv_core.Supervisor.default_config else None in
  (match forensics with
  | None -> ()
  | Some path -> (
    match (attacks, configs) with
    | [ a ], [ c ] -> (
      match Nv_attacks.Campaign.run_attack_traced ~parallel ?recover a c with
      | Error message ->
        Printf.eprintf "attack_lab: --forensics cell failed to build: %s\n" message;
        exit 2
      | Ok traced ->
        let oc = open_out path in
        output_string oc
          (Nv_util.Metrics.Json.to_string traced.Nv_attacks.Campaign.trace_json);
        output_char oc '\n';
        close_out oc;
        Format.printf "%s / %s: %a (forensics written to %s)@."
          a.Nv_attacks.Campaign.name (Nv_httpd.Deploy.name c)
          Nv_attacks.Campaign.pp_verdict traced.Nv_attacks.Campaign.verdict path;
        exit 0)
    | _ ->
      Printf.eprintf "attack_lab: --forensics needs --attack and --config to pin one cell\n";
      exit 2));
  let matrix = Nv_attacks.Campaign.run_matrix ~parallel ?recover ~attacks ~configs () in
  print_string (Nv_attacks.Campaign.render_matrix matrix);
  if verbose then
    List.iter
      (fun (a, cells) ->
        List.iter
          (fun (c, v) ->
            Format.printf "%s / %s: %a@." a.Nv_attacks.Campaign.name
              (Nv_httpd.Deploy.name c) Nv_attacks.Campaign.pp_verdict v)
          cells)
      matrix;
  (* Exit nonzero if a single-channel attack escalated against the UID
     variation: that would falsify the reproduction's headline claim.
     Key-compromise rows are exempt here - the paper's fixed published
     key is expected to lose to them; that is the portfolio's pitch. *)
  let headline_broken =
    List.exists
      (fun (a, cells) ->
        a.Nv_attacks.Campaign.name <> "baseline-request"
        && (not a.Nv_attacks.Campaign.assumes_keys)
        && List.exists
             (fun (c, v) ->
               c = Nv_httpd.Deploy.Two_variant_uid
               && match v with Nv_attacks.Campaign.Escalated _ -> true | _ -> false)
             cells)
      matrix
  in
  (* The composed columns gate on more: nothing may escalate or corrupt
     undetected there, key-compromise rows included. *)
  let composed_broken =
    List.filter
      (fun (_, config, _) ->
        List.mem config [ Nv_httpd.Deploy.Composed_three; Nv_httpd.Deploy.Composed_four ])
      (Nv_attacks.Campaign.undetected_cells matrix)
  in
  List.iter
    (fun (a, c, v) ->
      Printf.eprintf "attack_lab: composed column broken: %s x %s = %s\n"
        a.Nv_attacks.Campaign.name (Nv_httpd.Deploy.name c)
        (Nv_attacks.Campaign.verdict_label v))
    composed_broken;
  exit (if headline_broken || composed_broken <> [] then 1 else 0)

let cmd =
  let doc = "run data-corruption and code-injection attacks against the case-study server" in
  Cmd.v (Cmd.info "attack_lab" ~doc)
    Term.(
      const run $ attack_arg $ config_arg $ list_arg $ verbose_arg $ parallel_arg
      $ recover_arg $ forensics_arg)

let () = exit (Cmd.eval cmd)
