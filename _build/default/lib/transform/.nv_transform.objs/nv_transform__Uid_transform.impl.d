lib/transform/uid_transform.ml: Array Ast Codegen Format Lexer List Nv_core Nv_minic Nv_vm Option Parser Pretty Printf Set String Tast Typecheck
