type entry = {
  name : string;
  uid : Cred.uid;
  gid : Cred.gid;
  gecos : string;
  home : string;
  shell : string;
}

type group_entry = { group_name : string; gid : Cred.gid; members : string list }

let nonempty_lines text =
  String.split_on_char '\n' text |> List.filter (fun l -> String.trim l <> "")

let parse_uid_field line s =
  match int_of_string_opt s with
  | Some v when v >= 0 && v <= Nv_vm.Word.max_value -> Ok v
  | Some _ | None -> Error (Printf.sprintf "bad uid/gid field in %S" line)

let parse text =
  let parse_line line =
    match String.split_on_char ':' line with
    | [ name; _password; uid; gid; gecos; home; shell ] -> (
      match (parse_uid_field line uid, parse_uid_field line gid) with
      | Ok uid, Ok gid -> Ok { name; uid; gid; gecos; home; shell }
      | (Error _ as e), _ | _, (Error _ as e) -> e)
    | _ -> Error (Printf.sprintf "malformed passwd line %S" line)
  in
  let rec all acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest -> (
      match parse_line line with Ok e -> all (e :: acc) rest | Error _ as e -> e)
  in
  all [] (nonempty_lines text)

let serialize entries =
  entries
  |> List.map (fun e ->
         Printf.sprintf "%s:x:%d:%d:%s:%s:%s" e.name e.uid e.gid e.gecos e.home e.shell)
  |> String.concat "\n"
  |> fun body -> body ^ "\n"

let parse_group text =
  let parse_line line =
    match String.split_on_char ':' line with
    | [ group_name; _password; gid; members ] -> (
      match parse_uid_field line gid with
      | Ok gid ->
        let members =
          if members = "" then [] else String.split_on_char ',' members
        in
        Ok { group_name; gid; members }
      | Error _ as e -> e)
    | _ -> Error (Printf.sprintf "malformed group line %S" line)
  in
  let rec all acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest -> (
      match parse_line line with Ok e -> all (e :: acc) rest | Error _ as e -> e)
  in
  all [] (nonempty_lines text)

let serialize_group groups =
  groups
  |> List.map (fun g ->
         Printf.sprintf "%s:x:%d:%s" g.group_name g.gid (String.concat "," g.members))
  |> String.concat "\n"
  |> fun body -> body ^ "\n"

let lookup entries name = List.find_opt (fun e -> e.name = name) entries

let lookup_uid entries uid = List.find_opt (fun e -> e.uid = uid) entries

(* ------------------------------------------------------------------ *)
(* Indexed lookup                                                      *)
(* ------------------------------------------------------------------ *)

(* The linear scans above are fine for the five-entry sample database
   but O(n) per request once the population reaches fleet scale. The
   index keeps a hashtable by name and a uid-sorted array for binary
   search, preserving the first-match-in-file-order semantics of the
   scans (duplicate names/uids resolve to the earliest entry). *)

type index = {
  by_name : (string, entry) Hashtbl.t;
  by_uid : entry array;  (* uid-sorted, earliest file entry per uid *)
  mutable comparisons : int;
}

let index entries =
  let by_name = Hashtbl.create (max 16 (List.length entries)) in
  List.iter
    (fun e -> if not (Hashtbl.mem by_name e.name) then Hashtbl.add by_name e.name e)
    entries;
  let tagged = Array.of_list (List.mapi (fun i e -> (i, e)) entries) in
  Array.sort
    (fun (i1, e1) (i2, e2) ->
      match Int.compare e1.uid e2.uid with 0 -> Int.compare i1 i2 | c -> c)
    tagged;
  let keep = ref [] in
  Array.iter
    (fun (_, e) ->
      match !keep with
      | prev :: _ when prev.uid = e.uid -> ()
      | _ -> keep := e :: !keep)
    tagged;
  { by_name; by_uid = Array.of_list (List.rev !keep); comparisons = 0 }

let find idx name =
  idx.comparisons <- idx.comparisons + 1;
  Hashtbl.find_opt idx.by_name name

let find_uid idx uid =
  let a = idx.by_uid in
  let lo = ref 0 and hi = ref (Array.length a - 1) and found = ref None in
  while !found = None && !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    idx.comparisons <- idx.comparisons + 1;
    let c = Int.compare a.(mid).uid uid in
    if c = 0 then found := Some a.(mid)
    else if c < 0 then lo := mid + 1
    else hi := mid - 1
  done;
  !found

let index_size idx = Array.length idx.by_uid

let comparisons idx = idx.comparisons

(* ------------------------------------------------------------------ *)
(* Synthetic populations                                               *)
(* ------------------------------------------------------------------ *)

(* UIDs start above the sample database so a generated population can
   be appended to it without collisions. The list is emitted in a
   seed-determined shuffle so nothing downstream can accidentally rely
   on file order being uid order. *)
let generate_base_uid = 10_000

let generate ?(seed = 2008) n =
  if n < 0 then invalid_arg "Passwd.generate: negative population";
  let entries =
    Array.init n (fun i ->
        let name = Printf.sprintf "u%07d" i in
        {
          name;
          uid = generate_base_uid + i;
          gid = generate_base_uid + i;
          gecos = "synthetic user";
          home = "/home/" ^ name;
          shell = "/bin/sh";
        })
  in
  Nv_util.Prng.shuffle (Nv_util.Prng.create ~seed) entries;
  Array.to_list entries

let reexpress ~f text =
  match parse text with
  | Error _ as e -> e
  | Ok entries ->
    Ok (serialize (List.map (fun e -> { e with uid = f e.uid; gid = f e.gid }) entries))

let reexpress_group ~f text =
  match parse_group text with
  | Error _ as e -> e
  | Ok groups -> Ok (serialize_group (List.map (fun g -> { g with gid = f g.gid }) groups))

let sample =
  [
    { name = "root"; uid = 0; gid = 0; gecos = "root"; home = "/root"; shell = "/bin/sh" };
    {
      name = "daemon"; uid = 1; gid = 1; gecos = "daemon"; home = "/usr/sbin";
      shell = "/usr/sbin/nologin";
    };
    {
      name = "www"; uid = 33; gid = 33; gecos = "www data"; home = "/var/www";
      shell = "/usr/sbin/nologin";
    };
    {
      name = "alice"; uid = 1000; gid = 1000; gecos = "Alice"; home = "/home/alice";
      shell = "/bin/sh";
    };
    {
      name = "bob"; uid = 1001; gid = 1001; gecos = "Bob"; home = "/home/bob";
      shell = "/bin/sh";
    };
  ]

let sample_groups =
  [
    { group_name = "root"; gid = 0; members = [] };
    { group_name = "daemon"; gid = 1; members = [] };
    { group_name = "www"; gid = 33; members = [] };
    { group_name = "users"; gid = 100; members = [ "alice"; "bob" ] };
  ]
