lib/vm/word.ml: Format
