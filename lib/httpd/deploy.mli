(** Deployment of the case-study server in the four evaluation
    configurations of Table 3, plus the N=3/4 portfolio columns of the
    extended attack matrix. *)

type config =
  | Unmodified_single
      (** Configuration 1: untransformed server, one variant. *)
  | Transformed_single
      (** Configuration 2: UID-transformed server (detection calls
          inserted, identity reexpression), one variant — measures the
          cost of the code transformation alone. *)
  | Two_variant_address
      (** Configuration 3: two untransformed variants under
          address-space partitioning with the unshared-file-capable
          kernel — the redundant-execution baseline. *)
  | Two_variant_uid
      (** Configuration 4: the paper's UID variation — two variants,
          address partitioning, UID reexpression, unshared passwd. *)
  | Shared_key_three
      (** The pre-fix 3-variant deployment whose variants 1 and 2
          share one XOR key ({!Nv_core.Variation.shared_key}) — the
          regression column: the guessed-key injection escalates here
          undetected. *)
  | Rotation_only_three
      (** Three variants with bare rotations — not pairwise disjoint
          (every rotation fixes 0), so the zero-injection column
          demonstrates the single-axis defeat. *)
  | Seeded_three
      (** Three variants with per-boot seeded XOR masks (boot seed
          pinned for reproducibility). *)
  | Composed_three
      (** Three variants composing all axes: staggered bases, distinct
          instruction tags, per-variant UID keys. *)
  | Composed_four  (** The same composition over four variants. *)

val all : config list
(** The paper's four Table 3 configurations — the perf-bench set. *)

val extended : config list
(** The N=3/4 portfolio columns added by the extended attack matrix. *)

val matrix : config list
(** [all @ extended] — every column of the attack matrix. *)

val name : config -> string
(** "config1" .. "config4", then "sharedkey3", "rotonly3", "seeded3",
    "composed3", "composed4". *)

val description : config -> string

val variation : config -> Nv_core.Variation.t

val build :
  ?log_uid:bool ->
  ?mode:Nv_transform.Uid_transform.mode ->
  ?parallel:bool ->
  ?engine:Nv_vm.Memory.engine ->
  ?recover:Nv_core.Supervisor.config ->
  ?users:int ->
  config ->
  (Nv_core.Nsystem.t, string) result
(** Compile (and transform, for configurations 2 and 4) the server,
    populate the world (standard files + document root + diversified
    unshared copies), and assemble the system. Each call builds a fresh
    system. [parallel] and [engine] as in {!Nv_core.Monitor.create};
    [recover]
    attaches a recovery supervisor as in {!Nv_core.Nsystem.create};
    [users] appends that many synthetic passwd entries to the world as
    in {!Nv_core.Nsystem.standard_vfs} (keep it modest — the guest
    rescans [/etc/passwd] at startup). *)

val transform_report :
  ?log_uid:bool ->
  ?mode:Nv_transform.Uid_transform.mode ->
  unit ->
  (Nv_transform.Uid_transform.report, string) result
(** The change-count report of transforming the server source — the
    experiment X1 analogue of the paper's 73 Apache changes. *)
