module Cpu = Nv_vm.Cpu
module Word = Nv_vm.Word
module Memory = Nv_vm.Memory
module Image = Nv_vm.Image
module Kernel = Nv_os.Kernel
module Cred = Nv_os.Cred
module Syscall = Nv_os.Syscall
module Sysabi = Nv_os.Sysabi
module Metrics = Nv_util.Metrics
module Dompool = Nv_util.Dompool
module Spsc = Nv_util.Spsc
module Trace = Nv_util.Trace

type outcome = Exited of int | Alarm of Alarm.reason | Blocked_on_accept | Out_of_fuel

type event = { ev_syscall : int; ev_raw_args : int array array; ev_note : string }

type signal_mode = Immediate of { after_instructions : int } | At_rendezvous

type pending_signal = {
  handler : string;
  mode : signal_mode;
  baselines : int array;  (* instructions retired per variant at post time *)
  delivered : bool array;
}

(* A relaxed syscall, executed locally by a variant between rendezvous
   points and posted to the coordinator for deferred cross-checking.
   [rc_retired] is the variant's retired-instruction count at the call
   (the latency stream is reconstructed from these, exactly as an
   eager rendezvous would have observed it); [rc_c0]/[rc_c1] are the
   canonicalized (reexpression-decoded) argument images the coordinator
   compares; [rc_raw] carries the five raw argument registers only
   when a tracer is installed (the trace events must be identical to
   the eager engine's). *)
type relaxed_record = {
  rc_number : int;
  rc_retired : int;
  rc_a0 : int;
  rc_c0 : int;
  rc_c1 : int;
  rc_raw : int array;
}

(* Why a variant stopped running and handed control back to the
   coordinator. [A_syscall] (parked at a sensitive — or, with a
   rendezvous-synchronized signal pending, any — syscall trap) is the
   only arrival that persists across [run] calls: the call has not been
   dispatched yet, so the variant must not be re-released over it. *)
type arrival =
  | A_syscall
  | A_fault of Cpu.fault
  | A_halt
  | A_fuel
  | A_raised of exn * Printexc.raw_backtrace

(* Concurrency discipline (see docs/architecture.md, "Concurrency"):
   while released, each variant's [Image.loaded] (CPU, memory, icache)
   plus its own [delivered.(i)] slot are owned by the domain pinned to
   that variant; everything else — the kernel, the metrics registry,
   [t.signal], the tracer, the metric-handle caches, [canon_scratch],
   the [deferred] queues and [arrivals] — is only ever touched by the
   coordinator domain, between rounds. A released variant performs no
   [Metrics] mutation and never clears [t.signal]; the coordinator
   counts deliveries by diffing the [delivered] flags after the round
   and clears the signal itself. In parallel mode all cross-domain
   traffic flows through SPSC rings whose atomic operations order the
   plain reads/writes on either side. *)
type t = {
  kernel : Kernel.t;
  variation : Variation.t;
  variants : Image.loaded array;
  parallel : bool;  (* pin each variant to its own domain during run *)
  mutable tracer : (event -> unit) option;
  mutable signal : pending_signal option;
  (* Fault-injection hook: perturb the replicated bytes a shared read
     delivers to one variant (coordinator-only, like the tracer). *)
  mutable input_fault : (variant:int -> string -> string) option;
  metrics : Metrics.t;
  calls_scope : Metrics.scope;
  latency_scope : Metrics.scope;
  alarms_scope : Metrics.scope;
  rendezvous_c : Metrics.counter;
  checks_performed : Metrics.counter;
  checks_failed : Metrics.counter;
  input_bytes_replicated_c : Metrics.counter;
  output_writes_checked_c : Metrics.counter;
  signals_delivered_c : Metrics.counter;
  relaxed_checks_c : Metrics.counter;
  deferred_batch_h : Metrics.histogram;
  mutable last_rendezvous_instr : int;
  (* Relaxed-engine state (coordinator-owned): per-variant queues of
     posted-but-unchecked relaxed calls, the parked arrival per
     variant, and the size of the deferred batch flushed since the
     last flush boundary. *)
  deferred : relaxed_record Queue.t array;
  arrivals : arrival option array;
  mutable flush_batch : int;
  (* Hot-path caches: metric handles resolved per syscall number on
     first use (no hashtable lookup per rendezvous thereafter) and a
     scratch array reused by the canon_* argument checks. *)
  calls_by_number : Metrics.counter option array;
  latency_by_number : Metrics.histogram option array;
  canon_scratch : int array;
  (* Flight recorder: one ring per variant (owned by that variant's
     domain while it is released, like [Image.loaded]) plus a
     coordinator ring for rendezvous/flush/alarm events. Disabled by
     default; every recording site is gated on one atomic load. *)
  trace : Trace.t;
  trace_variants : Trace.ring array;
  trace_coord : Trace.ring;
  mutable forensics : Metrics.Json.value option;
}

(* One slot per syscall number; numbers outside the table fall back to
   a by-name lookup (they only occur on unknown-syscall attacks). *)
let syscall_slots = 32

let create ?metrics ?parallel ?engine
    ?(segment_size = Variation.default_segment_size)
    ?(stack_size = 64 * 1024) ~kernel ~variation images =
  let parallel =
    match parallel with Some b -> b | None -> Dompool.env_default ()
  in
  let n = Variation.count variation in
  if Array.length images <> n then
    invalid_arg "Monitor.create: need exactly one image per variant";
  if Kernel.variants kernel <> n then
    invalid_arg "Monitor.create: kernel variant count mismatch";
  List.iter (Kernel.register_unshared kernel) variation.Variation.unshared_paths;
  let variants =
    Array.mapi
      (fun i image ->
        let spec = variation.Variation.variants.(i) in
        let loaded =
          Image.load ~stack_size image ~base:spec.Variation.base ~size:segment_size
            ~tag:spec.Variation.tag
        in
        (* Every variant runs the same execution tier; unset, segments
           keep their creation default (NV_ENGINE or the icache). *)
        Option.iter (Memory.set_engine loaded.Image.memory) engine;
        loaded)
      images
  in
  let metrics = match metrics with Some m -> m | None -> Kernel.metrics kernel in
  let scope = Metrics.scope metrics "monitor" in
  let checks_scope = Metrics.sub scope "checks" in
  (* Chrome-export lanes: tid 0..n-1 = variants, n = coordinator,
     n+1 = kernel dispatch. The kernel runs on the coordinating domain
     only, timestamped by the total retired-instruction clock. *)
  let trace = Trace.create () in
  let trace_variants =
    Array.init n (fun i ->
        Trace.ring trace ~name:(Printf.sprintf "variant %d" i) ~pid:0 ~tid:i)
  in
  let trace_coord = Trace.ring trace ~name:"coordinator" ~pid:0 ~tid:n in
  let kernel_ring = Trace.ring trace ~name:"kernel" ~pid:0 ~tid:(n + 1) in
  Kernel.set_trace kernel ~ring:kernel_ring
    ~clock:(fun () ->
      Array.fold_left (fun acc v -> acc + Cpu.instructions_retired v.Image.cpu) 0 variants);
  {
    kernel;
    variation;
    variants;
    parallel;
    tracer = None;
    signal = None;
    input_fault = None;
    metrics;
    calls_scope = Metrics.sub scope "calls";
    latency_scope = Metrics.sub scope "latency_instr";
    alarms_scope = Metrics.sub scope "alarms";
    rendezvous_c = Metrics.counter scope "rendezvous";
    checks_performed = Metrics.counter checks_scope "performed";
    checks_failed = Metrics.counter checks_scope "failed";
    input_bytes_replicated_c = Metrics.counter scope "input_bytes_replicated";
    output_writes_checked_c = Metrics.counter scope "output_writes_checked";
    signals_delivered_c = Metrics.counter scope "signals_delivered";
    relaxed_checks_c = Metrics.counter scope "relaxed_checks";
    deferred_batch_h = Metrics.histogram scope "deferred_batch_size";
    last_rendezvous_instr = 0;
    deferred = Array.init n (fun _ -> Queue.create ());
    arrivals = Array.make n None;
    flush_batch = 0;
    calls_by_number = Array.make syscall_slots None;
    latency_by_number = Array.make syscall_slots None;
    canon_scratch = Array.make n 0;
    trace;
    trace_variants;
    trace_coord;
    forensics = None;
  }

(* Lazy per-number resolution keeps metric registration identical to
   the by-name path: a counter exists only once its syscall occurs. *)
let call_counter t n =
  if n >= 0 && n < syscall_slots then begin
    match t.calls_by_number.(n) with
    | Some c -> c
    | None ->
      let c = Metrics.counter t.calls_scope (Syscall.name n) in
      t.calls_by_number.(n) <- Some c;
      c
  end
  else Metrics.counter t.calls_scope (Syscall.name n)

let latency_histogram t n =
  if n >= 0 && n < syscall_slots then begin
    match t.latency_by_number.(n) with
    | Some h -> h
    | None ->
      let h = Metrics.histogram t.latency_scope (Syscall.name n) in
      t.latency_by_number.(n) <- Some h;
      h
  end
  else Metrics.histogram t.latency_scope (Syscall.name n)

let kernel t = t.kernel

let parallel t = t.parallel

let variation t = t.variation

let variant_count t = Array.length t.variants

let loaded t i = t.variants.(i)

let metrics t = t.metrics

let instructions_retired t =
  Array.fold_left (fun acc v -> acc + Cpu.instructions_retired v.Image.cpu) 0 t.variants

let rendezvous_count t = Metrics.counter_value t.rendezvous_c

type stats = {
  st_rendezvous : int;
  st_instructions : int array;
  st_calls : (string * int) list;
  st_checks_performed : int;
  st_checks_failed : int;
  st_input_bytes_replicated : int;
  st_output_writes_checked : int;
  st_signals_delivered : int;
  st_relaxed_checks : int;
}

let stats t =
  {
    st_rendezvous = Metrics.counter_value t.rendezvous_c;
    st_instructions =
      Array.map (fun v -> Cpu.instructions_retired v.Image.cpu) t.variants;
    st_calls = Metrics.counters_under t.metrics ~prefix:"monitor.calls.";
    st_checks_performed = Metrics.counter_value t.checks_performed;
    st_checks_failed = Metrics.counter_value t.checks_failed;
    st_input_bytes_replicated = Metrics.counter_value t.input_bytes_replicated_c;
    st_output_writes_checked = Metrics.counter_value t.output_writes_checked_c;
    st_signals_delivered = Metrics.counter_value t.signals_delivered_c;
    st_relaxed_checks = Metrics.counter_value t.relaxed_checks_c;
  }

let set_tracer t f = t.tracer <- Some f

let set_input_fault t f = t.input_fault <- f

let trace_session t = t.trace

let forensics t = t.forensics

let all_equal arr = Array.for_all (fun x -> x = arr.(0)) arr

(* The alarm raised as soon as checking fails; carries no resources. *)
exception Alarm_exn of Alarm.reason

(* A variant handed the kernel a bad pointer: equivalent to the fault
   the hardware would raise on copy_from_user. *)
exception Marshal_fault of { variant : int; fault : Cpu.fault }

(* Every equivalence check passes through here so the checks.performed /
   checks.failed pair stays consistent with the alarm stream. *)
let check t ~fail cond =
  Metrics.incr t.checks_performed;
  if not cond then begin
    Metrics.incr t.checks_failed;
    raise (Alarm_exn (fail ()))
  end

let uid_spec t i = t.variation.Variation.variants.(i).Variation.uid

(* FNV-1a, 32-bit: content digest for string-divergence diagnostics
   (never the raw bytes — they may hold secrets). *)
let fnv1a s =
  let h = ref 0x811C9DC5 in
  String.iter
    (fun c -> h := (!h lxor Char.code c) * 0x01000193 land 0xFFFFFFFF)
    s;
  !h

(* ------------------------------------------------------------------ *)
(* Argument canonicalization                                           *)
(* ------------------------------------------------------------------ *)

(* The canon_* checks write each variant's canonical value into the
   reused [canon_scratch] array (no allocation on the all-agree path);
   the scratch is only copied out when a mismatch alarm needs it. *)
let scratch_all_equal t =
  let scratch = t.canon_scratch in
  let ok = ref true in
  for i = 1 to Array.length scratch - 1 do
    if scratch.(i) <> scratch.(0) then ok := false
  done;
  !ok

let check_scratch t ~syscall ~index =
  check t
    ~fail:(fun () ->
      Alarm.Arg_mismatch { syscall; arg_index = index; values = Array.copy t.canon_scratch })
    (scratch_all_equal t)

(* Raw register argument [index] from each variant; must be identical. *)
let canon_int t ~raws ~syscall ~index =
  let scratch = t.canon_scratch in
  Array.iteri (fun i (r : Sysabi.raw) -> scratch.(i) <- r.Sysabi.args.(index)) raws;
  check_scratch t ~syscall ~index;
  scratch.(0)

(* UID argument: apply each variant's inverse reexpression, then check
   the canonical values agree (Section 3.5). *)
let canon_uid t ~raws ~syscall ~index =
  let scratch = t.canon_scratch in
  Array.iteri
    (fun i (r : Sysabi.raw) ->
      scratch.(i) <- (uid_spec t i).Reexpression.decode r.Sysabi.args.(index))
    raws;
  check_scratch t ~syscall ~index;
  scratch.(0)

(* Pointer argument: canonicalize to a segment offset per variant. *)
let canon_ptr t ~raws ~syscall ~index =
  let scratch = t.canon_scratch in
  Array.iteri
    (fun i (r : Sysabi.raw) ->
      let addr = r.Sysabi.args.(index) in
      let memory = t.variants.(i).Image.memory in
      match Memory.to_offset memory addr with
      | offset -> scratch.(i) <- offset
      | exception Memory.Fault { addr; access } ->
        raise (Marshal_fault { variant = i; fault = Cpu.Segfault { addr; access } }))
    raws;
  check_scratch t ~syscall ~index;
  Array.map (fun (r : Sysabi.raw) -> r.Sysabi.args.(index)) raws

(* NUL-terminated string argument: contents must be identical. The
   failure diagnostic carries per-variant lengths and content digests
   so divergent contents are distinguishable from divergent lengths. *)
let canon_string t ~raws ~syscall ~index =
  let _ = canon_ptr t ~raws ~syscall ~index in
  let strings =
    Array.mapi
      (fun i (r : Sysabi.raw) ->
        let memory = t.variants.(i).Image.memory in
        match Sysabi.read_string memory ~addr:r.Sysabi.args.(index) with
        | s -> s
        | exception Memory.Fault { addr; access } ->
          raise (Marshal_fault { variant = i; fault = Cpu.Segfault { addr; access } }))
      raws
  in
  check t
    ~fail:(fun () ->
      Alarm.String_mismatch
        {
          syscall;
          arg_index = index;
          lengths = Array.map String.length strings;
          digests = Array.map fnv1a strings;
        })
    (all_equal strings);
  strings.(0)

let deliver t per_variant_results =
  Array.iteri
    (fun i result -> Sysabi.set_result t.variants.(i).Image.cpu result)
    per_variant_results

let deliver_same t result =
  Array.iter (fun v -> Sysabi.set_result v.Image.cpu result) t.variants

(* Dispatch-time breadcrumbs go two ways: the legacy [set_tracer]
   callback (raw argument images included) and, when the flight
   recorder is on, a [Note] in the coordinator ring. Both run on the
   coordinating domain at points where every variant is parked, so the
   retired-total timestamp is mode-independent. *)
let trace t ~syscall ~raws note =
  (if Trace.enabled t.trace then
     Trace.note t.trace_coord ~ts:(instructions_retired t)
       (Printf.sprintf "[%s] %s" (Syscall.name syscall) note));
  match t.tracer with
  | None -> ()
  | Some f ->
    f
      {
        ev_syscall = syscall;
        ev_raw_args = Array.map (fun (r : Sysabi.raw) -> Array.copy r.Sysabi.args) raws;
        ev_note = note;
      }

(* ------------------------------------------------------------------ *)
(* Relaxed monitoring                                                  *)
(* ------------------------------------------------------------------ *)

(* The cc_eq .. cc_geq comparison on canonical values; shared between
   the eager dispatch path and the relaxed engine so both compute the
   identical result. *)
let cc_compute n a b =
  if n = Syscall.sys_cc_eq then a = b
  else if n = Syscall.sys_cc_neq then a <> b
  else if n = Syscall.sys_cc_lt then Word.lt_unsigned a b
  else if n = Syscall.sys_cc_leq then not (Word.lt_unsigned b a)
  else if n = Syscall.sys_cc_gt then Word.lt_unsigned b a
  else not (Word.lt_unsigned a b)

(* Execute a relaxed syscall locally for variant [i] and return the
   record the coordinator will cross-check later. Runs on the variant's
   domain: [cred] is the coordinator's snapshot of the kernel
   credentials (stable for the whole release — every credential
   mutation is a Sensitive call, which parks all variants first), and
   everything touched is variant-[i]-owned per the concurrency
   discipline. The result each variant computes is exactly what the
   eager dispatch would have delivered to it. *)
let relaxed_call t i ~cred ~trace_args n =
  let cpu = t.variants.(i).Image.cpu in
  let raw = Sysabi.of_cpu cpu in
  let spec = uid_spec t i in
  let a0 = raw.Sysabi.args.(0) in
  let result, c0, c1 =
    if n = Syscall.sys_getuid then (spec.Reexpression.encode cred.Cred.ruid, 0, 0)
    else if n = Syscall.sys_geteuid then (spec.Reexpression.encode cred.Cred.euid, 0, 0)
    else if n = Syscall.sys_getgid then (spec.Reexpression.encode cred.Cred.rgid, 0, 0)
    else if n = Syscall.sys_getegid then (spec.Reexpression.encode cred.Cred.egid, 0, 0)
    else if n = Syscall.sys_uid_value then (a0, spec.Reexpression.decode a0, 0)
    else if n = Syscall.sys_cond_chk then (a0, a0, 0)
    else begin
      (* cc_eq .. cc_geq: decode both UID arguments with this variant's
         own inverse; the coordinator checks the canonical values agree
         across variants at flush time. *)
      let a = spec.Reexpression.decode a0 in
      let b = spec.Reexpression.decode raw.Sysabi.args.(1) in
      ((if cc_compute n a b then 1 else 0), a, b)
    end
  in
  let rc_raw = if trace_args then Array.copy raw.Sysabi.args else [||] in
  (* Variant-ring recording: runs on whichever domain owns variant [i]
     right now (its pinned domain during a release, the coordinator on
     the hybrid-position path — never both). The canonical argument
     images and the result are deterministic, so sequential and
     parallel runs record the identical pair. *)
  (if Trace.enabled t.trace then begin
     let ring = t.trace_variants.(i) in
     let ts = Cpu.instructions_retired cpu in
     Trace.record ring ~ts (Trace.Syscall_enter { number = n; args = [| c0; c1 |] });
     Trace.record ring ~ts (Trace.Syscall_exit { number = n; result })
   end);
  Sysabi.set_result cpu result;
  {
    rc_number = n;
    rc_retired = Cpu.instructions_retired cpu;
    rc_a0 = a0;
    rc_c0 = c0;
    rc_c1 = c1;
    rc_raw;
  }

(* Cross-check one deferred position: the [i]-th record of every
   variant's queue, popped together. Metric and trace order replays the
   eager rendezvous exactly — rendezvous count, syscall-number check,
   per-call counter, latency observation (from the retired counts the
   variants recorded at the call, so the histogram is identical to what
   lockstep execution would have measured), then the argument checks —
   so a benign run is byte-for-byte indistinguishable from eager
   monitoring and a divergent one raises the same alarm with the same
   payload. Raises [Alarm_exn] on mismatch. *)
let flush_position t (records : relaxed_record array) =
  Metrics.incr t.rendezvous_c;
  let numbers = Array.map (fun r -> r.rc_number) records in
  Metrics.incr t.checks_performed;
  if not (all_equal numbers) then begin
    Metrics.incr t.checks_failed;
    raise (Alarm_exn (Alarm.Syscall_mismatch { numbers }))
  end;
  let syscall = numbers.(0) in
  let now = Array.fold_left (fun acc r -> acc + r.rc_retired) 0 records in
  if Trace.enabled t.trace then
    Trace.record t.trace_coord ~ts:now (Trace.Rendezvous { number = syscall; relaxed = true });
  Metrics.incr (call_counter t syscall);
  Metrics.observe
    (latency_histogram t syscall)
    (float_of_int (now - t.last_rendezvous_instr));
  t.last_rendezvous_instr <- now;
  let trace note =
    (if Trace.enabled t.trace then
       Trace.note t.trace_coord ~ts:now
         (Printf.sprintf "[%s] %s" (Syscall.name syscall) note));
    match t.tracer with
    | None -> ()
    | Some f ->
      f
        {
          ev_syscall = syscall;
          ev_raw_args = Array.map (fun r -> r.rc_raw) records;
          ev_note = note;
        }
  in
  let scratch = t.canon_scratch in
  (if
     syscall = Syscall.sys_getuid
     || syscall = Syscall.sys_geteuid
     || syscall = Syscall.sys_getgid
     || syscall = Syscall.sys_getegid
   then begin
     (* No arguments to check; replay the kernel read (and its metric)
        the eager path would have performed as leader. *)
     let k = t.kernel in
     let canonical =
       if syscall = Syscall.sys_getuid then Kernel.sys_getuid k
       else if syscall = Syscall.sys_geteuid then Kernel.sys_geteuid k
       else if syscall = Syscall.sys_getgid then Kernel.sys_getgid k
       else Kernel.sys_getegid k
     in
     trace
       (Format.asprintf "%s -> canonical %a, reexpressed per variant"
          (Syscall.name syscall) Word.pp canonical)
   end
   else if syscall = Syscall.sys_uid_value then begin
     Array.iteri (fun i r -> scratch.(i) <- r.rc_c0) records;
     check_scratch t ~syscall ~index:0;
     trace
       (Format.asprintf "uid_value: canonical %a equivalent in all variants" Word.pp
          scratch.(0))
   end
   else if syscall = Syscall.sys_cond_chk then begin
     let values = Array.map (fun r -> r.rc_a0) records in
     check t ~fail:(fun () -> Alarm.Cond_mismatch { values }) (all_equal values);
     trace (Printf.sprintf "cond_chk(%d): paths agree" values.(0))
   end
   else begin
     Array.iteri (fun i r -> scratch.(i) <- r.rc_c0) records;
     check_scratch t ~syscall ~index:0;
     let a = scratch.(0) in
     Array.iteri (fun i r -> scratch.(i) <- r.rc_c1) records;
     check_scratch t ~syscall ~index:1;
     let b = scratch.(0) in
     trace
       (Format.asprintf "%s(%a, %a) = %b on canonical values" (Syscall.name syscall)
          Word.pp a Word.pp b (cc_compute syscall a b))
   end);
  Metrics.incr t.relaxed_checks_c;
  t.flush_batch <- t.flush_batch + 1

(* Flush every complete position: while all queues are non-empty, pop
   one record per variant and cross-check them. Records are popped
   before [flush_position] can raise, so an alarming position is
   consumed — a re-run does not re-check it (the variants have long
   since moved past it). *)
let flush_prefix t =
  let rec go () =
    if Array.for_all (fun q -> not (Queue.is_empty q)) t.deferred then begin
      let records = Array.map Queue.pop t.deferred in
      flush_position t records;
      go ()
    end
  in
  match go () with () -> Ok () | exception Alarm_exn reason -> Error reason

(* A flush boundary (a full rendezvous, or [run] returning): the batch
   of relaxed checks settled since the previous boundary is observed
   into the histogram. *)
let flush_boundary t =
  if t.flush_batch > 0 then begin
    Metrics.observe t.deferred_batch_h (float_of_int t.flush_batch);
    (if Trace.enabled t.trace then
       Trace.record t.trace_coord ~ts:(instructions_retired t)
         (Trace.Deferred_flush { batch = t.flush_batch }));
    t.flush_batch <- 0
  end

(* ------------------------------------------------------------------ *)
(* Rendezvous dispatch                                                 *)
(* ------------------------------------------------------------------ *)

(* Returns [None] to keep running, [Some outcome] to stop. [now_instr]
   is the caller's already-computed total of retired instructions, so
   the dispatch path does not re-fold over the variants. *)
let dispatch t ~now_instr (raws : Sysabi.raw array) =
  let syscall = raws.(0).Sysabi.number in
  if Trace.enabled t.trace then
    Trace.record t.trace_coord ~ts:now_instr
      (Trace.Rendezvous { number = syscall; relaxed = false });
  Metrics.incr (call_counter t syscall);
  (* Per-syscall rendezvous latency, measured in retired guest
     instructions (all variants) since the previous rendezvous. *)
  Metrics.observe
    (latency_histogram t syscall)
    (float_of_int (now_instr - t.last_rendezvous_instr));
  t.last_rendezvous_instr <- now_instr;
  let k = t.kernel in
  let continue_ = None in
  match syscall with
  | n when n = Syscall.sys_exit ->
    let statuses = Array.map (fun (r : Sysabi.raw) -> Word.to_signed r.Sysabi.args.(0)) raws in
    check t ~fail:(fun () -> Alarm.Exit_mismatch { statuses }) (all_equal statuses);
    trace t ~syscall ~raws (Printf.sprintf "exit(%d) checked across variants" statuses.(0));
    ignore (Kernel.sys_exit k ~status:statuses.(0));
    Some (Exited statuses.(0))
  | n when n = Syscall.sys_read ->
    let fd = Word.to_signed (canon_int t ~raws ~syscall ~index:0) in
    (* For unshared descriptors each variant performs its own read on
       its own diversified file (Section 3.4), so buffer pointers are
       not required to canonicalize to the same offset — content
       lengths differ legitimately, and so may derived pointers. *)
    let bufs =
      if Kernel.fd_is_unshared k ~fd then
        Array.map (fun (r : Sysabi.raw) -> r.Sysabi.args.(1)) raws
      else canon_ptr t ~raws ~syscall ~index:1
    in
    let len = Word.to_signed (canon_int t ~raws ~syscall ~index:2) in
    let count, data = Kernel.sys_read k ~fd ~len in
    (match data with
    | Kernel.Shared_data bytes -> (
      Metrics.add t.input_bytes_replicated_c (max 0 count);
      match t.input_fault with
      | Some perturb when count > 0 ->
        (* Fault injection: each variant receives a possibly-perturbed
           copy of the replicated input, with its own byte count. *)
        trace t ~syscall ~raws
          (Printf.sprintf "read(%d): %d bytes replicated with fault injection" fd count);
        let chunks =
          Array.init (Array.length t.variants) (fun i -> perturb ~variant:i bytes)
        in
        Array.iteri
          (fun i buf ->
            if String.length chunks.(i) > 0 then begin
              try Sysabi.write_bytes t.variants.(i).Image.memory ~addr:buf chunks.(i)
              with Memory.Fault { addr; access } ->
                raise (Marshal_fault { variant = i; fault = Cpu.Segfault { addr; access } })
            end)
          bufs;
        deliver t (Array.map (fun c -> Word.mask (String.length c)) chunks)
      | Some _ | None ->
        trace t ~syscall ~raws
          (Printf.sprintf "read(%d): performed once, %d bytes replicated to all variants" fd
             count);
        Array.iteri
          (fun i buf ->
            if count > 0 then
              try Sysabi.write_bytes t.variants.(i).Image.memory ~addr:buf bytes
              with Memory.Fault { addr; access } ->
                raise (Marshal_fault { variant = i; fault = Cpu.Segfault { addr; access } }))
          bufs;
        deliver_same t (Word.of_signed count))
    | Kernel.Per_variant chunks ->
      trace t ~syscall ~raws
        (Printf.sprintf "read(%d): unshared file, each variant reads its own copy" fd);
      Array.iteri
        (fun i buf ->
          let bytes = chunks.(i) in
          if String.length bytes > 0 then begin
            try Sysabi.write_bytes t.variants.(i).Image.memory ~addr:buf bytes
            with Memory.Fault { addr; access } ->
              raise (Marshal_fault { variant = i; fault = Cpu.Segfault { addr; access } })
          end)
        bufs;
      deliver t (Array.map (fun c -> Word.mask (String.length c)) chunks));
    continue_
  | n when n = Syscall.sys_write ->
    let fd = Word.to_signed (canon_int t ~raws ~syscall ~index:0) in
    let unshared = Kernel.fd_is_unshared k ~fd in
    let bufs =
      if unshared then Array.map (fun (r : Sysabi.raw) -> r.Sysabi.args.(1)) raws
      else canon_ptr t ~raws ~syscall ~index:1
    in
    let lens =
      if unshared then
        Array.map (fun (r : Sysabi.raw) -> Word.to_signed r.Sysabi.args.(2)) raws
      else
        Array.make (Array.length raws) (Word.to_signed (canon_int t ~raws ~syscall ~index:2))
    in
    let chunks =
      Array.mapi
        (fun i buf ->
          try Sysabi.read_bytes t.variants.(i).Image.memory ~addr:buf ~len:lens.(i)
          with Memory.Fault { addr; access } ->
            raise (Marshal_fault { variant = i; fault = Cpu.Segfault { addr; access } }))
        bufs
    in
    if Kernel.fd_is_unshared k ~fd then begin
      trace t ~syscall ~raws "write: unshared file, each variant writes its own copy";
      deliver_same t (Word.of_signed (Kernel.sys_write k ~fd ~data:(Kernel.Per_variant chunks)))
    end
    else begin
      (if not (all_equal chunks) then
         Logs.warn ~src:Nv_util.Logsrc.monitor (fun m ->
             m "output divergence on fd %d" fd));
      check t
        ~fail:(fun () -> Alarm.Output_mismatch { syscall; fd })
        (all_equal chunks);
      Metrics.incr t.output_writes_checked_c;
      trace t ~syscall ~raws
        (Printf.sprintf "write(%d): bytes checked equal, performed once" fd);
      deliver_same t (Word.of_signed (Kernel.sys_write k ~fd ~data:(Kernel.Shared_data chunks.(0))))
    end;
    continue_
  | n when n = Syscall.sys_open ->
    let path = canon_string t ~raws ~syscall ~index:0 in
    let flags = Word.to_signed (canon_int t ~raws ~syscall ~index:1) in
    let note =
      if Kernel.is_unshared k path then
        Printf.sprintf "open(%S): unshared, variant i gets %s-i" path path
      else Printf.sprintf "open(%S): shared descriptor" path
    in
    trace t ~syscall ~raws note;
    deliver_same t (Word.of_signed (Kernel.sys_open k ~path ~flags));
    continue_
  | n when n = Syscall.sys_close ->
    let fd = Word.to_signed (canon_int t ~raws ~syscall ~index:0) in
    deliver_same t (Word.of_signed (Kernel.sys_close k ~fd));
    continue_
  | n when n = Syscall.sys_accept ->
    (* The listening-fd argument is checked across variants like any
       other descriptor argument — a corrupted fd in one variant is a
       divergence, not something to silently ignore. *)
    let listen_fd = Word.to_signed (canon_int t ~raws ~syscall ~index:0) in
    let fd = Kernel.sys_accept k ~fd:listen_fd in
    if fd = Kernel.eagain then begin
      Array.iter (fun v -> Sysabi.retry_syscall v.Image.cpu) t.variants;
      Some Blocked_on_accept
    end
    else begin
      trace t ~syscall ~raws
        (Printf.sprintf "accept(%d) -> fd %d for all variants" listen_fd fd);
      deliver_same t (Word.of_signed fd);
      continue_
    end
  | n when n = Syscall.sys_getuid || n = Syscall.sys_geteuid || n = Syscall.sys_getgid
           || n = Syscall.sys_getegid ->
    let canonical =
      if n = Syscall.sys_getuid then Kernel.sys_getuid k
      else if n = Syscall.sys_geteuid then Kernel.sys_geteuid k
      else if n = Syscall.sys_getgid then Kernel.sys_getgid k
      else Kernel.sys_getegid k
    in
    let per_variant =
      Array.init (Array.length t.variants) (fun i ->
          (uid_spec t i).Reexpression.encode canonical)
    in
    trace t ~syscall ~raws
      (Format.asprintf "%s -> canonical %a, reexpressed per variant" (Syscall.name n)
         Word.pp canonical);
    deliver t per_variant;
    continue_
  | n when n = Syscall.sys_setuid || n = Syscall.sys_seteuid || n = Syscall.sys_setgid
           || n = Syscall.sys_setegid ->
    let canonical = canon_uid t ~raws ~syscall ~index:0 in
    let result =
      if n = Syscall.sys_setuid then Kernel.sys_setuid k ~uid:canonical
      else if n = Syscall.sys_seteuid then Kernel.sys_seteuid k ~uid:canonical
      else if n = Syscall.sys_setgid then Kernel.sys_setgid k ~gid:canonical
      else Kernel.sys_setegid k ~gid:canonical
    in
    trace t ~syscall ~raws
      (Format.asprintf "%s: R_i^-1 applied, canonical %a agreed, performed once"
         (Syscall.name n) Word.pp canonical);
    deliver_same t (Word.of_signed result);
    continue_
  | n when n = Syscall.sys_uid_value ->
    (* Table 2: compare across variants (post-inverse), return the
       passed (still reexpressed) value to each variant. *)
    let canonical = canon_uid t ~raws ~syscall ~index:0 in
    trace t ~syscall ~raws
      (Format.asprintf "uid_value: canonical %a equivalent in all variants" Word.pp
         canonical);
    deliver t (Array.map (fun (r : Sysabi.raw) -> r.Sysabi.args.(0)) raws);
    continue_
  | n when n = Syscall.sys_cond_chk ->
    (* Table 2: condition values are plain booleans, identical in all
       variants or the variants are taking different paths. *)
    let values = Array.map (fun (r : Sysabi.raw) -> r.Sysabi.args.(0)) raws in
    check t ~fail:(fun () -> Alarm.Cond_mismatch { values }) (all_equal values);
    trace t ~syscall ~raws (Printf.sprintf "cond_chk(%d): paths agree" values.(0));
    deliver_same t values.(0);
    continue_
  | n when Syscall.is_detection_call n ->
    (* cc_eq .. cc_geq: both UID arguments are decoded and checked,
       then the comparison is computed once on canonical values. *)
    let a = canon_uid t ~raws ~syscall ~index:0 in
    let b = canon_uid t ~raws ~syscall ~index:1 in
    let result = cc_compute n a b in
    trace t ~syscall ~raws
      (Format.asprintf "%s(%a, %a) = %b on canonical values" (Syscall.name n) Word.pp a
         Word.pp b result);
    deliver_same t (if result then 1 else 0);
    continue_
  | _ ->
    trace t ~syscall ~raws "unknown syscall: -1 to all variants";
    deliver_same t (Word.of_signed (-1));
    continue_

(* ------------------------------------------------------------------ *)
(* Asynchronous event delivery                                         *)
(* ------------------------------------------------------------------ *)

(* The handler "returns" by jumping to this unmapped, recognizable
   address; the resulting execute fault marks completion. *)
let signal_return_address = 0xFFFFFFF4

let post_signal t ~handler ~mode =
  if t.signal <> None then Error "a signal is already pending"
  else if
    Array.exists
      (fun v -> not (List.mem_assoc handler v.Image.layout.Image.abs_symbols))
      t.variants
  then Error (Printf.sprintf "handler %S is not defined in every variant" handler)
  else begin
    t.signal <-
      Some
        {
          handler;
          mode;
          baselines = Array.map (fun v -> Cpu.instructions_retired v.Image.cpu) t.variants;
          delivered = Array.map (fun _ -> false) t.variants;
        };
    Ok ()
  end

let signal_pending t = t.signal <> None

(* Run the handler to completion in variant [i] as a synchronous
   subroutine, preserving the interrupted context. *)
let deliver_signal t i ~handler =
  let v = t.variants.(i) in
  let cpu = v.Image.cpu in
  (* Recorded at the injection point, before the handler runs: a
     failed delivery still leaves its attempt in the flight recorder.
     Writes variant [i]'s ring from whichever domain owns the variant
     at the delivery site (its own for Immediate, the coordinator for
     At_rendezvous — where every variant is parked). *)
  (if Trace.enabled t.trace then
     let immediate =
       match t.signal with Some { mode = Immediate _; _ } -> true | Some _ | None -> false
     in
     Trace.record t.trace_variants.(i) ~ts:(Cpu.instructions_retired cpu)
       (Trace.Signal { handler; immediate }));
  let failed detail =
    raise (Alarm_exn (Alarm.Signal_delivery_failed { variant = i; detail }))
  in
  let saved_regs = Array.init 16 (Cpu.reg cpu) in
  let saved_pc = Cpu.pc cpu in
  (match
     let sp = Word.sub (Cpu.reg cpu Cpu.sp_index) 4 in
     Memory.store_word v.Image.memory sp signal_return_address;
     Cpu.set_reg cpu Cpu.sp_index sp;
     Cpu.set_pc cpu (Image.abs_symbol v handler)
   with
  | () -> ()
  | exception Memory.Fault _ -> failed "no stack space for the handler frame"
  | exception Not_found -> failed "handler symbol vanished");
  (match Cpu.run cpu ~fuel:1_000_000 with
  | Cpu.Trapped (Cpu.Fault_trap (Cpu.Segfault { addr; access = Memory.Execute }))
    when addr = signal_return_address ->
    ()
  | Cpu.Trapped Cpu.Syscall_trap -> failed "handler made a system call"
  | Cpu.Trapped trap -> failed (Format.asprintf "handler trapped: %a" Cpu.pp_trap trap)
  | Cpu.Out_of_fuel -> failed "handler did not terminate");
  Array.iteri (fun r value -> Cpu.set_reg cpu r value) saved_regs;
  Cpu.set_pc cpu saved_pc

let clear_if_fully_delivered t =
  match t.signal with
  | Some s when Array.for_all Fun.id s.delivered -> t.signal <- None
  | Some _ | None -> ()

(* Run variant [i] to its next trap, honouring a pending Immediate
   signal: once the variant crosses its delivery threshold, the handler
   is injected and execution continues. Domain-safe per the discipline
   above: reads [t.signal] (stable across a quantum — only the
   coordinator writes it, between joins), writes only variant-[i]
   state and the variant's own [delivered.(i)] slot. *)
let run_variant_to_trap t i ~fuel =
  let cpu = t.variants.(i).Image.cpu in
  let rec go fuel =
    if fuel <= 0 then Cpu.Out_of_fuel
    else begin
      match t.signal with
      | Some ({ mode = Immediate { after_instructions }; _ } as s)
        when not s.delivered.(i) -> (
        let due = s.baselines.(i) + after_instructions - Cpu.instructions_retired cpu in
        if due <= 0 then begin
          deliver_signal t i ~handler:s.handler;
          s.delivered.(i) <- true;
          go fuel
        end
        else begin
          match Cpu.run cpu ~fuel:(min due fuel) with
          | Cpu.Out_of_fuel when due <= fuel ->
            (* Reached the delivery point without trapping. *)
            deliver_signal t i ~handler:s.handler;
            s.delivered.(i) <- true;
            go (fuel - due)
          | outcome -> outcome
        end)
      | Some _ | None -> Cpu.run cpu ~fuel
    end
  in
  go fuel

(* Release variant [i] for a multi-call stretch: run to the next trap,
   execute relaxed syscalls locally (posting a record through [emit]
   and continuing), and stop with an [arrival] at the first sensitive
   call, fault, halt, fuel exhaustion or exception. [fuel] is the whole
   round budget, an engine-defined cutoff identical in both execution
   modes (so where a variant stops — and therefore every downstream
   check — is mode-independent). Runs on the variant's domain in
   parallel mode; everything touched is variant-[i]-owned. *)
let run_variant_release t i ~fuel ~cred ~relaxed_ok ~trace_args ~emit =
  let cpu = t.variants.(i).Image.cpu in
  let start = Cpu.instructions_retired cpu in
  if Trace.enabled t.trace then
    Trace.record t.trace_variants.(i) ~ts:start Trace.Quantum_begin;
  let rec go () =
    let left = fuel - (Cpu.instructions_retired cpu - start) in
    if left <= 0 then A_fuel
    else begin
      match run_variant_to_trap t i ~fuel:left with
      | Cpu.Out_of_fuel -> A_fuel
      | Cpu.Trapped Cpu.Halt_trap -> A_halt
      | Cpu.Trapped (Cpu.Fault_trap fault) -> A_fault fault
      | Cpu.Trapped Cpu.Syscall_trap ->
        let n = (Sysabi.of_cpu cpu).Sysabi.number in
        if relaxed_ok && Syscall.is_relaxed n then begin
          emit (relaxed_call t i ~cred ~trace_args n);
          go ()
        end
        else A_syscall
      | exception e -> A_raised (e, Printexc.get_raw_backtrace ())
    end
  in
  let arrival = go () in
  (if Trace.enabled t.trace then
     let retired = Cpu.instructions_retired cpu in
     Trace.record t.trace_variants.(i) ~ts:retired (Trace.Quantum_end { retired }));
  arrival

(* ------------------------------------------------------------------ *)
(* Pinned-domain engine                                                *)
(* ------------------------------------------------------------------ *)

(* Spin-then-park doorbell. The waiter spins briefly on its poll, then
   publishes [asleep] and re-polls before blocking; a ringer makes its
   state visible (an SPSC push is an [Atomic] store) and then reads
   [asleep]. Sequential consistency of the two atomics closes the
   sleep/ring race: if the ringer misses [asleep], the waiter's re-poll
   is ordered after the ringer's push and sees the state change. *)
type doorbell = {
  db_mutex : Mutex.t;
  db_cond : Condition.t;
  db_asleep : bool Atomic.t;
}

let doorbell () =
  { db_mutex = Mutex.create (); db_cond = Condition.create (); db_asleep = Atomic.make false }

let bell_ring b =
  if Atomic.get b.db_asleep then begin
    Mutex.lock b.db_mutex;
    Condition.broadcast b.db_cond;
    Mutex.unlock b.db_mutex
  end

let bell_spins = 128

let bell_wait b poll =
  let rec spin k =
    if poll () then true
    else if k = 0 then false
    else begin
      Domain.cpu_relax ();
      spin (k - 1)
    end
  in
  if not (spin bell_spins) then begin
    Mutex.lock b.db_mutex;
    Atomic.set b.db_asleep true;
    while not (poll ()) do
      Condition.wait b.db_cond b.db_mutex
    done;
    Atomic.set b.db_asleep false;
    Mutex.unlock b.db_mutex
  end

(* Per-variant command/event channel between the coordinator and the
   variant's pinned domain. The command ring never holds more than one
   release plus the final stop; the event ring absorbs a burst of
   relaxed records before the producer has to wake the coordinator. *)
type cmd =
  | C_release of { fuel : int; cred : Cred.t; relaxed_ok : bool; trace_args : bool }
  | C_stop

type evt = E_record of relaxed_record | E_arrival of arrival

type link = {
  lk_cmd : cmd Spsc.t;
  lk_evt : evt Spsc.t;
  lk_bell : doorbell;  (* the variant domain parks here *)
}

let evt_ring_capacity = 512

(* Body of one pinned variant domain: park until a command arrives,
   run the release, stream records and the final arrival back, repeat
   until stopped. The only monitor state it touches is variant-[i]'s.

   Wakeup discipline: the coordinator only needs to hear about the
   {e arrival} (the round cannot end before it) and about back-pressure
   (a full event ring it must drain). A successfully-pushed record is
   silent — the coordinator will find it when the arrival wakes it —
   which keeps the hot path free of futex traffic. *)
let variant_domain t i link coord_bell =
  let push ~urgent evt =
    let rec go () =
      if Spsc.try_push link.lk_evt evt then begin
        if urgent then bell_ring coord_bell
      end
      else begin
        (* Ring full: make sure the consumer is awake, then park until
           it drains a slot. *)
        bell_ring coord_bell;
        bell_wait link.lk_bell (fun () ->
            Spsc.length link.lk_evt < Spsc.capacity link.lk_evt);
        go ()
      end
    in
    go ()
  in
  let rec serve () =
    bell_wait link.lk_bell (fun () -> Spsc.length link.lk_cmd > 0);
    match Spsc.try_pop link.lk_cmd with
    | None -> serve ()
    | Some C_stop -> ()
    | Some (C_release { fuel; cred; relaxed_ok; trace_args }) ->
      let emit rc = push ~urgent:false (E_record rc) in
      push ~urgent:true
        (E_arrival (run_variant_release t i ~fuel ~cred ~relaxed_ok ~trace_args ~emit));
      serve ()
  in
  serve ()

(* Coordinator side of one round: release the given variants on their
   domains, then drain their event rings — records into the deferred
   queues in production order, arrivals into [t.arrivals] — until every
   released variant has arrived. Popping a variant's arrival happens
   strictly after all its records (SPSC FIFO), so the queues are
   complete when the round ends. *)
let run_round_parallel t links coord_bell ~released ~fuel ~cred ~relaxed_ok ~trace_args =
  let n = Array.length links in
  let waiting = Array.make n false in
  let pending = ref 0 in
  Array.iter
    (fun i ->
      waiting.(i) <- true;
      incr pending;
      if not (Spsc.try_push links.(i).lk_cmd (C_release { fuel; cred; relaxed_ok; trace_args }))
      then assert false;
      bell_ring links.(i).lk_bell)
    released;
  let poll () =
    let any = ref false in
    for i = 0 to n - 1 do
      if waiting.(i) && Spsc.length links.(i).lk_evt > 0 then any := true
    done;
    !any
  in
  while !pending > 0 do
    let progress = ref false in
    for i = 0 to n - 1 do
      if waiting.(i) then begin
        (* A producer only parks on a full ring, and nothing but this
           loop drains it — so "full at drain start" is exactly the
           case where a wake may be owed afterwards. *)
        let was_full = Spsc.length links.(i).lk_evt >= Spsc.capacity links.(i).lk_evt in
        let drained = ref false in
        let continue_ = ref true in
        while !continue_ do
          match Spsc.try_pop links.(i).lk_evt with
          | None -> continue_ := false
          | Some (E_record rc) ->
            drained := true;
            Queue.add rc t.deferred.(i)
          | Some (E_arrival a) ->
            drained := true;
            t.arrivals.(i) <- Some a;
            waiting.(i) <- false;
            decr pending;
            continue_ := false
        done;
        if !drained then begin
          progress := true;
          if was_full then bell_ring links.(i).lk_bell
        end
      end
    done;
    if !pending > 0 && not !progress then bell_wait coord_bell poll
  done

(* Spawn one pinned domain per variant for the duration of [f]; domains
   are joined on every exit path. Domain spawn/join is per-[run], not
   per-rendezvous — the old engine paid a pool handoff per syscall. *)
let with_engine t f =
  if not t.parallel then f None
  else begin
    let coord_bell = doorbell () in
    let links =
      Array.map
        (fun _ ->
          {
            lk_cmd = Spsc.create ~capacity:2;
            lk_evt = Spsc.create ~capacity:evt_ring_capacity;
            lk_bell = doorbell ();
          })
        t.variants
    in
    let domains =
      Array.mapi
        (fun i link -> Domain.spawn (fun () -> variant_domain t i link coord_bell))
        links
    in
    Fun.protect
      ~finally:(fun () ->
        Array.iter
          (fun link ->
            if not (Spsc.try_push link.lk_cmd C_stop) then assert false;
            bell_ring link.lk_bell)
          links;
        Array.iter Domain.join domains)
      (fun () -> f (Some (links, coord_bell)))
  end

(* ------------------------------------------------------------------ *)
(* Lockstep execution                                                  *)
(* ------------------------------------------------------------------ *)

(* How many trailing events of each ring a forensics bundle keeps. *)
let forensics_tail = 32

(* The alarm post-mortem: alarm class and payload, rendezvous count,
   the canonical kernel credentials plus each variant's reexpressed
   view of them, every variant's register file / pc / retired count,
   and the tail of every flight-recorder ring. Built on the
   coordinator; in parallel mode every variant domain is parked when
   an alarm is classified, and its arrival was popped from the SPSC
   ring after its last ring write, so reading the rings here is
   ordered. *)
let build_forensics t reason =
  let open Metrics.Json in
  let num i = Num (float_of_int i) in
  let hex v = Str (Printf.sprintf "0x%08X" v) in
  let cred = Kernel.cred t.kernel in
  let cred_json =
    Obj
      [
        ("ruid", num cred.Cred.ruid);
        ("euid", num cred.Cred.euid);
        ("rgid", num cred.Cred.rgid);
        ("egid", num cred.Cred.egid);
      ]
  in
  let variant_json i v =
    let cpu = v.Image.cpu in
    let spec = uid_spec t i in
    Obj
      [
        ("variant", num i);
        ("pc", hex (Cpu.pc cpu));
        ("instructions_retired", num (Cpu.instructions_retired cpu));
        ("registers", List (List.init 16 (fun r -> hex (Cpu.reg cpu r))));
        ( "credentials_reexpressed",
          Obj
            [
              ("ruid", num (spec.Reexpression.encode cred.Cred.ruid));
              ("euid", num (spec.Reexpression.encode cred.Cred.euid));
            ] );
      ]
  in
  Obj
    [
      ("alarm", Alarm.to_json reason);
      ("rendezvous", num (Metrics.counter_value t.rendezvous_c));
      ("instructions_retired", num (instructions_retired t));
      ("credentials", cred_json);
      ("variants", List (Array.to_list (Array.mapi variant_json t.variants)));
      ( "rings",
        List
          (List.map
             (Trace.ring_events_json ~syscall_name:Syscall.name ~last:forensics_tail)
             (Trace.rings t.trace)) );
    ]

(* Every alarm leaving [run] passes through here so the per-reason
   alarm counters and the forensics post-mortem cover all production
   sites. *)
let alarmed t reason =
  Metrics.incr (Metrics.counter t.alarms_scope (Alarm.short_label reason));
  if Trace.enabled t.trace then
    Trace.record t.trace_coord ~ts:(instructions_retired t)
      (Trace.Alarm { label = Alarm.short_label reason });
  t.forensics <- Some (build_forensics t reason);
  Logs.info ~src:Nv_util.Logsrc.monitor (fun m -> m "alarm: %a" Alarm.pp reason);
  Alarm reason

(* The run loop: rounds of released execution separated by coordinator
   turns. Per round, every variant without a parked arrival is released
   for a multi-call stretch (inline when sequential, on its pinned
   domain when parallel — the protocol is otherwise identical, which is
   what makes seq==par bit-determinism hold); the coordinator then
   cross-checks every complete deferred position, handles exceptional
   arrivals in deterministic (lowest-index) order, and performs a full
   rendezvous once every variant is parked live at a sensitive call.

   [A_syscall] arrivals persist across [run] calls — the parked call
   has not been dispatched, so the variant must not be re-released over
   it; all other arrivals are transient. *)
let run ?(fuel = 50_000_000) t =
  let deadline = instructions_retired t + fuel in
  let n = Array.length t.variants in
  let finish outcome =
    flush_boundary t;
    if Trace.enabled t.trace then Trace.publish t.trace t.metrics;
    outcome
  in
  with_engine t @@ fun engine ->
  let rec loop () =
    let remaining = deadline - instructions_retired t in
    if remaining <= 0 then finish Out_of_fuel
    else begin
      (* Round parameters, fixed by the coordinator before any variant
         moves: identical in both modes and stable for the round. While
         an [At_rendezvous] signal is pending, relaxation is off — every
         trap is an arrival, so the delivery point is a full rendezvous
         in both modes. *)
      let relaxed_ok =
        match t.signal with Some { mode = At_rendezvous; _ } -> false | Some _ | None -> true
      in
      let trace_args = t.tracer <> None in
      let cred = Kernel.cred t.kernel in
      (* Snapshot the Immediate-delivery flags so deliveries performed
         inside the round can be counted after it. *)
      let delivered_before =
        match t.signal with Some s -> Array.copy s.delivered | None -> [||]
      in
      (match engine with
      | None ->
        for i = 0 to n - 1 do
          if t.arrivals.(i) = None then
            t.arrivals.(i) <-
              Some
                (run_variant_release t i ~fuel:remaining ~cred ~relaxed_ok ~trace_args
                   ~emit:(fun rc -> Queue.add rc t.deferred.(i)))
        done
      | Some (links, coord_bell) ->
        let released = ref [] in
        for i = n - 1 downto 0 do
          if t.arrivals.(i) = None then released := i :: !released
        done;
        run_round_parallel t links coord_bell ~released:(Array.of_list !released)
          ~fuel:remaining ~cred ~relaxed_ok ~trace_args);
      (* Coordinator-side signal bookkeeping for this round. *)
      (match t.signal with
      | Some s ->
        Array.iteri
          (fun i delivered ->
            if delivered && not delivered_before.(i) then
              Metrics.incr t.signals_delivered_c)
          s.delivered;
        clear_if_fully_delivered t
      | None -> ());
      let view =
        Array.map (function Some a -> a | None -> assert false) t.arrivals
      in
      for i = 0 to n - 1 do
        match t.arrivals.(i) with
        | Some A_syscall -> ()
        | Some _ | None -> t.arrivals.(i) <- None
      done;
      (* Settle every complete deferred position first: checks the
         variants already ran past happen before this round's failure
         is reported, exactly as lockstep execution would have ordered
         them. *)
      match flush_prefix t with
      | Error reason -> finish (alarmed t reason)
      | Ok () -> (
        (* Deterministic failure order: the lowest variant index wins,
           regardless of which domain finished first. *)
        let first_raised = ref None in
        Array.iter
          (fun a ->
            match (a, !first_raised) with
            | (A_raised (e, bt), None) -> first_raised := Some (e, bt)
            | _ -> ())
          view;
        match !first_raised with
        | Some (Alarm_exn reason, _) -> finish (alarmed t reason)
        | Some (e, bt) -> Printexc.raise_with_backtrace e bt
        | None ->
          if Array.exists (function A_fuel -> true | _ -> false) view then
            finish Out_of_fuel
          else begin
            (* Faults and halts are alarm states. *)
            let alarm = ref None in
            Array.iteri
              (fun i a ->
                if !alarm = None then begin
                  match a with
                  | A_fault fault ->
                    alarm := Some (Alarm.Variant_fault { variant = i; fault })
                  | A_halt -> alarm := Some (Alarm.Variant_halted { variant = i })
                  | A_syscall | A_fuel | A_raised _ -> ()
                end)
              view;
            match !alarm with
            | Some reason -> finish (alarmed t reason)
            | None ->
              (* Every variant is parked at a syscall. *)
              if Array.exists (fun q -> not (Queue.is_empty q)) t.deferred then begin
                (* Hybrid position: some variants recorded their next
                   call, the rest are parked live at theirs (the flush
                   drained every all-recorded position, so at least one
                   queue is empty). The per-variant syscall numbers come
                   from the record fronts or the live trap state. *)
                let numbers =
                  Array.mapi
                    (fun i q ->
                      match Queue.peek_opt q with
                      | Some rc -> rc.rc_number
                      | None -> (Sysabi.of_cpu t.variants.(i).Image.cpu).Sysabi.number)
                    t.deferred
                in
                if all_equal numbers then begin
                  (* Necessarily a relaxed number (records only hold
                     those): execute the live variants' calls on the
                     coordinator, completing the position, and flush. *)
                  Array.iteri
                    (fun i q ->
                      if Queue.is_empty q then begin
                        Queue.add (relaxed_call t i ~cred ~trace_args numbers.(0)) q;
                        t.arrivals.(i) <- None
                      end)
                    t.deferred;
                  match flush_prefix t with
                  | Error reason -> finish (alarmed t reason)
                  | Ok () -> loop ()
                end
                else begin
                  (* The variants disagree on what their next call even
                     is: the same syscall-number check a full rendezvous
                     performs, with the same metric effects. *)
                  Metrics.incr t.rendezvous_c;
                  Metrics.incr t.checks_performed;
                  Metrics.incr t.checks_failed;
                  finish (alarmed t (Alarm.Syscall_mismatch { numbers }))
                end
              end
              else begin
                (* Full rendezvous: every queue is flushed and every
                   variant is parked live at its next sensitive call. *)
                flush_boundary t;
                Metrics.incr t.rendezvous_c;
                (* Synchronized signal delivery: every variant is parked
                   at an equivalent rendezvous point (trapped, pc
                   already past the syscall instruction, trap context
                   preserved by the synchronous handler run), so
                   handlers execute in lockstep and the rendezvous then
                   proceeds normally. *)
                let delivery =
                  match t.signal with
                  | Some ({ mode = At_rendezvous; _ } as s) -> (
                    try
                      Array.iteri
                        (fun i _ ->
                          if not s.delivered.(i) then begin
                            deliver_signal t i ~handler:s.handler;
                            s.delivered.(i) <- true;
                            Metrics.incr t.signals_delivered_c
                          end)
                        t.variants;
                      clear_if_fully_delivered t;
                      Ok ()
                    with Alarm_exn reason -> Error reason)
                  | Some _ | None -> Ok ()
                in
                match delivery with
                | Error reason -> finish (alarmed t reason)
                | Ok () ->
                  let raws = Array.map (fun v -> Sysabi.of_cpu v.Image.cpu) t.variants in
                  let numbers = Array.map (fun (r : Sysabi.raw) -> r.Sysabi.number) raws in
                  Metrics.incr t.checks_performed;
                  if not (all_equal numbers) then begin
                    Metrics.incr t.checks_failed;
                    finish (alarmed t (Alarm.Syscall_mismatch { numbers }))
                  end
                  else begin
                    match dispatch t ~now_instr:(instructions_retired t) raws with
                    | None ->
                      Array.fill t.arrivals 0 n None;
                      loop ()
                    | Some outcome ->
                      Array.fill t.arrivals 0 n None;
                      finish outcome
                    | exception Alarm_exn reason -> finish (alarmed t reason)
                    | exception Marshal_fault { variant; fault } ->
                      finish (alarmed t (Alarm.Variant_fault { variant; fault }))
                  end
              end
          end)
    end
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* Checkpointing                                                       *)
(* ------------------------------------------------------------------ *)

type snapshot = {
  snap_images : Image.snapshot array;
  snap_kernel : Kernel.snapshot;
}

let snapshot t =
  {
    snap_images = Array.map Image.snapshot t.variants;
    snap_kernel = Kernel.snapshot t.kernel;
  }

let restore t snap =
  Array.iteri (fun i s -> Image.restore t.variants.(i) s) snap.snap_images;
  let dropped = Kernel.restore t.kernel snap.snap_kernel in
  (* A pending signal references pre-rollback execution baselines; it
     cannot survive the rollback. *)
  t.signal <- None;
  (* The relaxed-engine state references execution the rollback just
     erased: drain the deferred queues, clear every parked arrival and
     reset the batch accumulator so the restored monitor re-runs from
     the checkpoint with no residue. (Supervisor checkpoints are taken
     at entry and at [Blocked_on_accept] — both full-rendezvous states
     where the queues are empty and no arrival is parked — so nothing
     checkable is lost.) *)
  Array.iter Queue.clear t.deferred;
  Array.fill t.arrivals 0 (Array.length t.arrivals) None;
  t.flush_batch <- 0;
  (* The retired-instruction totals just jumped backwards with the CPU
     restore; re-anchor the latency baseline so the next rendezvous
     does not observe a negative interval. *)
  t.last_rendezvous_instr <- instructions_retired t;
  dropped
