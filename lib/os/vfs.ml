type error = Enoent | Eacces | Eisdir | Enotdir | Eexist

let error_to_string = function
  | Enoent -> "no such file or directory"
  | Eacces -> "permission denied"
  | Eisdir -> "is a directory"
  | Enotdir -> "not a directory"
  | Eexist -> "file exists"

type attrs = { mode : int; owner : Cred.uid; group : Cred.gid }

type node =
  | File of { mutable content : string; mutable attrs : attrs }
  | Dir of { entries : (string, node) Hashtbl.t; mutable attrs : attrs }

type t = { root : node }

let default_dir_attrs = { mode = 0o755; owner = 0; group = 0 }

let default_file_attrs = { mode = 0o644; owner = 0; group = 0 }

let create () = { root = Dir { entries = Hashtbl.create 16; attrs = default_dir_attrs } }

(* Split and normalize a path: "." is dropped, ".." pops (stopping at
   the root, as the kernel does). Traversal sequences are resolved
   here, which is what makes the case-study server's "GET
   /../secret/shadow" escape from its document root meaningful. *)
let components path =
  String.split_on_char '/' path
  |> List.filter (fun c -> c <> "" && c <> ".")
  |> List.fold_left
       (fun acc comp ->
         match (comp, acc) with
         | "..", [] -> []
         | "..", _ :: rest -> rest
         | _, _ -> comp :: acc)
       []
  |> List.rev

let rec lookup node = function
  | [] -> Ok node
  | name :: rest -> (
    match node with
    | File _ -> Error Enotdir
    | Dir { entries; _ } -> (
      match Hashtbl.find_opt entries name with
      | None -> Error Enoent
      | Some child -> lookup child rest))

let find t path = lookup t.root (components path)

(* ------------------------------------------------------------------ *)
(* Setup interface                                                     *)
(* ------------------------------------------------------------------ *)

let mkdir_p t ?(attrs = default_dir_attrs) path =
  let rec descend node = function
    | [] -> ()
    | name :: rest -> (
      match node with
      | File _ -> invalid_arg "Vfs.mkdir_p: path component is a file"
      | Dir { entries; _ } -> (
        match Hashtbl.find_opt entries name with
        | Some child -> descend child rest
        | None ->
          let child = Dir { entries = Hashtbl.create 8; attrs } in
          Hashtbl.add entries name child;
          descend child rest))
  in
  descend t.root (components path)

let split_parent path =
  match List.rev (components path) with
  | [] -> invalid_arg "Vfs: empty path"
  | name :: rev_parents -> (List.rev rev_parents, name)

let install t ?(attrs = default_file_attrs) ~path content =
  let parents, name = split_parent path in
  let rec descend node = function
    | [] -> (
      match node with
      | File _ -> invalid_arg "Vfs.install: parent is a file"
      | Dir { entries; _ } -> (
        match Hashtbl.find_opt entries name with
        | Some (File f) ->
          f.content <- content;
          f.attrs <- attrs
        | Some (Dir _) -> invalid_arg "Vfs.install: path is a directory"
        | None -> Hashtbl.add entries name (File { content; attrs })))
    | comp :: rest -> (
      match node with
      | File _ -> invalid_arg "Vfs.install: path component is a file"
      | Dir { entries; _ } -> (
        match Hashtbl.find_opt entries comp with
        | Some child -> descend child rest
        | None ->
          let child = Dir { entries = Hashtbl.create 8; attrs = default_dir_attrs } in
          Hashtbl.add entries comp child;
          descend child rest))
  in
  descend t.root parents

let remove t path =
  let parents, name = split_parent path in
  match lookup t.root parents with
  | Error _ as e -> e
  | Ok (File _) -> Error Enotdir
  | Ok (Dir { entries; _ }) -> (
    match Hashtbl.find_opt entries name with
    | None -> Error Enoent
    | Some (Dir _) -> Error Eisdir
    | Some (File _) ->
      Hashtbl.remove entries name;
      Ok ())

(* ------------------------------------------------------------------ *)
(* Permission checking                                                 *)
(* ------------------------------------------------------------------ *)

type access = Read_access | Write_access

let permits attrs (cred : Cred.t) access =
  if Cred.is_root cred then true
  else begin
    let bits =
      if cred.Cred.euid = attrs.owner then (attrs.mode lsr 6) land 7
      else if cred.Cred.egid = attrs.group then (attrs.mode lsr 3) land 7
      else attrs.mode land 7
    in
    match access with Read_access -> bits land 4 <> 0 | Write_access -> bits land 2 <> 0
  end

let node_attrs = function File { attrs; _ } -> attrs | Dir { attrs; _ } -> attrs

(* Walk the directory chain checking execute (search) permission on
   each directory, then apply the requested access check on the leaf. *)
let resolve_checked t ~cred ~path ~access =
  let rec walk node = function
    | [] -> Ok node
    | name :: rest -> (
      match node with
      | File _ -> Error Enotdir
      | Dir { entries; attrs } ->
        let search_ok =
          Cred.is_root cred
          ||
          let bits =
            if cred.Cred.euid = attrs.owner then (attrs.mode lsr 6) land 7
            else if cred.Cred.egid = attrs.group then (attrs.mode lsr 3) land 7
            else attrs.mode land 7
          in
          bits land 1 <> 0
        in
        if not search_ok then Error Eacces
        else begin
          match Hashtbl.find_opt entries name with
          | None -> Error Enoent
          | Some child -> walk child rest
        end)
  in
  match walk t.root (components path) with
  | Error _ as e -> e
  | Ok node ->
    if permits (node_attrs node) cred access then Ok node else Error Eacces

let open_file t ~cred ~path ~access =
  match resolve_checked t ~cred ~path ~access with
  | Error _ as e -> e
  | Ok (Dir _) -> Error Eisdir
  | Ok (File _) -> Ok ()

let read_file t ~cred ~path =
  match resolve_checked t ~cred ~path ~access:Read_access with
  | Error _ as e -> e
  | Ok (Dir _) -> Error Eisdir
  | Ok (File { content; _ }) -> Ok content

let append_file t ~cred ~path data =
  match resolve_checked t ~cred ~path ~access:Write_access with
  | Error _ as e -> e
  | Ok (Dir _) -> Error Eisdir
  | Ok (File f) ->
    f.content <- f.content ^ data;
    Ok ()

let truncate_file t ~cred ~path =
  match resolve_checked t ~cred ~path ~access:Write_access with
  | Error _ as e -> e
  | Ok (Dir _) -> Error Eisdir
  | Ok (File f) ->
    f.content <- "";
    Ok ()

(* ------------------------------------------------------------------ *)
(* Unchecked accessors                                                 *)
(* ------------------------------------------------------------------ *)

let contents t ~path =
  match find t path with
  | Error _ as e -> e
  | Ok (Dir _) -> Error Eisdir
  | Ok (File { content; _ }) -> Ok content

let set_contents t ~path content =
  match find t path with
  | Error _ as e -> e
  | Ok (Dir _) -> Error Eisdir
  | Ok (File f) ->
    f.content <- content;
    Ok ()

let append_contents t ~path data =
  match find t path with
  | Error _ as e -> e
  | Ok (Dir _) -> Error Eisdir
  | Ok (File f) ->
    f.content <- f.content ^ data;
    Ok ()

let size t ~path =
  match find t path with
  | Error _ as e -> e
  | Ok (Dir _) -> Error Eisdir
  | Ok (File { content; _ }) -> Ok (String.length content)

let read_range t ~path ~pos ~len =
  match find t path with
  | Error _ as e -> e
  | Ok (Dir _) -> Error Eisdir
  | Ok (File { content; _ }) ->
    let length = String.length content in
    let pos = Int.max 0 (Int.min pos length) in
    let n = Int.max 0 (Int.min len (length - pos)) in
    Ok (String.sub content pos n)

let exists t path = match find t path with Ok _ -> true | Error _ -> false

let is_dir t path = match find t path with Ok (Dir _) -> true | Ok (File _) | Error _ -> false

let stat t path =
  match find t path with Error _ as e -> e | Ok node -> Ok (node_attrs node)

let dump_files t =
  let rec walk prefix node acc =
    match node with
    | File { content; attrs } -> (prefix, content, attrs) :: acc
    | Dir { entries; _ } ->
      Hashtbl.fold (fun name child acc -> (name, child) :: acc) entries []
      |> List.sort (fun (a, _) (b, _) -> compare (a : string) b)
      |> List.fold_left (fun acc (name, child) -> walk (prefix ^ "/" ^ name) child acc) acc
  in
  List.rev (walk "" t.root [])

let list_dir t path =
  match find t path with
  | Error _ as e -> e
  | Ok (File _) -> Error Enotdir
  | Ok (Dir { entries; _ }) ->
    Ok (Hashtbl.fold (fun name _ acc -> name :: acc) entries [] |> List.sort compare)
