examples/legacy_hardening.ml: Format List Nv_core Nv_minic Nv_transform Nv_vm Printf
