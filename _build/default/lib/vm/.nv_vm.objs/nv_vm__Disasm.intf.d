lib/vm/disasm.mli: Isa Memory
