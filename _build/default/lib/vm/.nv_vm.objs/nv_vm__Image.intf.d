lib/vm/image.mli: Bytes Cpu Isa Memory
