(* Cross-library integration tests: the extended and composed
   variations, N > 2 deployments, failure injection, and
   misconfiguration fail-safety. *)

module Variation = Nv_core.Variation
module Reexpression = Nv_core.Reexpression
module Monitor = Nv_core.Monitor
module Nsystem = Nv_core.Nsystem
module Alarm = Nv_core.Alarm
module Image = Nv_vm.Image
module Memory = Nv_vm.Memory
module Vfs = Nv_os.Vfs
module Ut = Nv_transform.Uid_transform

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let compile source = Nv_minic.Codegen.compile_source (Nv_minic.Runtime.with_runtime source)

let expect_exit expected outcome =
  match outcome with
  | Monitor.Exited status -> Alcotest.(check int) "exit" expected status
  | Monitor.Alarm reason -> Alcotest.failf "unexpected alarm: %a" Alarm.pp reason
  | Monitor.Blocked_on_accept -> Alcotest.fail "blocked"
  | Monitor.Out_of_fuel -> Alcotest.fail "fuel"

let uid_dance =
  {|int main(void) {
      uid_t me = getuid();
      if (seteuid(me) != 0) { return 1; }
      return 0;
    }|}

(* ------------------------------------------------------------------ *)
(* Extended address-space partitioning (Table 1 row 2)                 *)
(* ------------------------------------------------------------------ *)

let test_extended_partition_normal_equivalence () =
  let sys =
    Nsystem.of_one_image ~variation:(Variation.extended_partition ()) (compile uid_dance)
  in
  expect_exit 0 (Nsystem.run sys)

let test_extended_partition_detects_absolute_address () =
  let source =
    Printf.sprintf "int main(void) { int *p = (int*)0x%X; return *p; }"
      (Variation.low_base + 32)
  in
  let sys =
    Nsystem.of_one_image ~variation:(Variation.extended_partition ())
      (Nv_minic.Codegen.compile_source source)
  in
  match Nsystem.run sys with
  | Monitor.Alarm (Alarm.Variant_fault _) -> ()
  | _ -> Alcotest.fail "expected variant fault"

let test_extended_partition_low_bytes_differ () =
  (* The property plain partitioning lacks: corresponding symbol
     addresses differ in their low bytes too, so partial address
     overwrites are (probabilistically) detectable. *)
  let image = compile "uid_t stash; int main(void) { stash = getuid(); return 0; }" in
  let check variation expect_differ =
    let sys = Nsystem.of_one_image ~variation image in
    let addr i = Image.abs_symbol (Monitor.loaded (Nsystem.monitor sys) i) "stash" in
    let low16 a = a land 0xFFFF in
    Alcotest.(check bool)
      (Printf.sprintf "%s low bytes differ=%b" variation.Variation.name expect_differ)
      expect_differ
      (low16 (addr 0) <> low16 (addr 1))
  in
  check Variation.address_partition false;
  check (Variation.extended_partition ()) true

let prop_extended_offsets_shift_symbols =
  QCheck.Test.make ~name:"extended partition shifts every symbol by the offset" ~count:20
    QCheck.(map (fun k -> 4 * k) (int_range 4 0x3FFF))
    (fun offset ->
      let image = compile "uid_t stash; int main(void) { stash = getuid(); return 0; }" in
      let sys =
        Nsystem.of_one_image ~variation:(Variation.extended_partition ~offset ()) image
      in
      let addr i = Image.abs_symbol (Monitor.loaded (Nsystem.monitor sys) i) "stash" in
      addr 1 - addr 0 = Variation.high_base + offset - Variation.low_base)

(* ------------------------------------------------------------------ *)
(* Full diversity: composition of all three dimensions                 *)
(* ------------------------------------------------------------------ *)

let build_transformed variation source =
  match Ut.transform_source ~variation (Nv_minic.Runtime.with_runtime source) with
  | Ok (images, _) -> Nsystem.create ~variation images
  | Error e -> Alcotest.fail e

let test_full_diversity_normal_equivalence () =
  let source =
    {|uid_t worker = 33;
      int main(void) {
        uid_t www = getpwnam_uid("www");
        if (www != worker) { return 1; }
        if (seteuid(worker) != 0) { return 2; }
        return 0;
      }|}
  in
  expect_exit 0 (Nsystem.run (build_transformed Variation.full_diversity source))

let test_full_diversity_detects_uid_corruption () =
  let source =
    {|uid_t worker = 33;
      int main(void) {
        int fd = sys_accept(3);
        sys_close(fd);
        if (seteuid(worker) != 0) { return 1; }
        return 0;
      }|}
  in
  let sys = build_transformed Variation.full_diversity source in
  (match Nsystem.run sys with
  | Monitor.Blocked_on_accept -> ()
  | _ -> Alcotest.fail "expected block");
  for i = 0 to 1 do
    let loaded = Monitor.loaded (Nsystem.monitor sys) i in
    Memory.store_word loaded.Image.memory (Image.abs_symbol loaded "worker") 0
  done;
  ignore (Nsystem.connect sys);
  match Nsystem.run sys with
  | Monitor.Alarm (Alarm.Arg_mismatch _) -> ()
  | _ -> Alcotest.fail "expected detection"

let test_full_diversity_detects_tag_corruption () =
  let sys = build_transformed Variation.full_diversity
      "int main(void) { int fd = sys_accept(3); sys_close(fd); return 0; }"
  in
  (match Nsystem.run sys with
  | Monitor.Blocked_on_accept -> ()
  | _ -> Alcotest.fail "expected block");
  (* Inject tag-1 code bytes at the same offset in both variants: valid
     for variant 0 (tag 1), a Bad_tag fault for variant 2 (tag 2). *)
  for i = 0 to 1 do
    let loaded = Monitor.loaded (Nsystem.monitor sys) i in
    let pc = Nv_vm.Cpu.pc loaded.Image.cpu in
    Memory.store_byte loaded.Image.memory pc 1
  done;
  ignore (Nsystem.connect sys);
  match Nsystem.run sys with
  | Monitor.Alarm (Alarm.Variant_fault { variant = 1; fault = Nv_vm.Cpu.Bad_tag _ }) -> ()
  | _ -> Alcotest.fail "expected tag fault in variant 1"

(* ------------------------------------------------------------------ *)
(* N > 2 variants                                                      *)
(* ------------------------------------------------------------------ *)

let test_three_variants_normal_equivalence () =
  let variation = Variation.uid_diversity_n 3 in
  let source =
    {|int main(void) {
        uid_t www = getpwnam_uid("www");
        if (seteuid(www) != 0) { return 1; }
        return 0;
      }|}
  in
  expect_exit 0 (Nsystem.run (build_transformed variation source))

let test_three_variants_detect_corruption () =
  let variation = Variation.uid_diversity_n 3 in
  let source =
    {|uid_t stash;
      int main(void) {
        stash = getuid();
        int fd = sys_accept(3);
        sys_close(fd);
        if (seteuid(stash) != 0) { return 1; }
        return 0;
      }|}
  in
  let sys = build_transformed variation source in
  (match Nsystem.run sys with
  | Monitor.Blocked_on_accept -> ()
  | _ -> Alcotest.fail "expected block");
  for i = 0 to 2 do
    let loaded = Monitor.loaded (Nsystem.monitor sys) i in
    Memory.store_word loaded.Image.memory (Image.abs_symbol loaded "stash") 0
  done;
  ignore (Nsystem.connect sys);
  match Nsystem.run sys with
  | Monitor.Alarm (Alarm.Arg_mismatch _) -> ()
  | _ -> Alcotest.fail "expected detection with three variants"

let test_three_variants_forensics_name_divergent () =
  (* Only variant 2's stored UID is corrupted: with N=3 the majority
     vote over the decoded argument vector pins the divergence on
     variant 2 — something the two-variant deployments can never do. *)
  let variation = Variation.full_diversity_n 3 in
  let source =
    {|uid_t stash;
      int main(void) {
        stash = getuid();
        int fd = sys_accept(3);
        sys_close(fd);
        if (seteuid(stash) != 0) { return 1; }
        return 0;
      }|}
  in
  let sys = build_transformed variation source in
  (match Nsystem.run sys with
  | Monitor.Blocked_on_accept -> ()
  | _ -> Alcotest.fail "expected block");
  let loaded = Monitor.loaded (Nsystem.monitor sys) 2 in
  Memory.store_word loaded.Image.memory (Image.abs_symbol loaded "stash") 0;
  ignore (Nsystem.connect sys);
  match Nsystem.run sys with
  | Monitor.Alarm (Alarm.Arg_mismatch { values; _ }) ->
    Alcotest.(check (list int)) "variant 2 implicated" [ 2 ]
      (Alarm.divergent_indices values)
  | _ -> Alcotest.fail "expected an argument mismatch naming variant 2"

(* ------------------------------------------------------------------ *)
(* Failure injection                                                   *)
(* ------------------------------------------------------------------ *)

let test_missing_unshared_copy_fails_consistently () =
  (* Deployment error: /etc/passwd-1 was never installed. The unshared
     open fails identically in every variant - degraded but consistent,
     no false alarm. *)
  let variation = Variation.uid_diversity in
  let vfs = Nsystem.standard_vfs ~variation () in
  Vfs.install vfs ~path:"/etc/passwd-1" "";
  (* An empty file parses to no entries: getpwnam misses in both. *)
  let source =
    {|int main(void) {
        uid_t www = getpwnam_uid("www");
        if (www == (uid_t)(-1)) { return 7; }
        return 0;
      }|}
  in
  match Ut.transform_source ~variation (Nv_minic.Runtime.with_runtime source) with
  | Error e -> Alcotest.fail e
  | Ok (images, _) -> (
    let sys = Nsystem.create ~vfs ~variation images in
    match Nsystem.run sys with
    | Monitor.Exited 7 ->
      (* Hmm: variant 0 finds www in its intact copy, variant 1 does
         not - they must diverge, not exit cleanly. *)
      Alcotest.fail "variants should diverge on asymmetric files"
    | Monitor.Alarm _ -> ()
    | Monitor.Exited n -> Alcotest.failf "unexpected exit %d" n
    | _ -> Alcotest.fail "unexpected outcome")

let test_wholly_missing_unshared_copies_fail_cleanly () =
  (* Both per-variant copies missing: open fails for every variant and
     the program handles it - consistent degradation. *)
  let variation = Variation.uid_diversity in
  let vfs = Vfs.create () in
  Vfs.mkdir_p vfs "/etc";
  (* No passwd files at all. *)
  let source =
    {|int main(void) {
        uid_t www = getpwnam_uid("www");
        if (www == (uid_t)(-1)) { return 7; }
        return 0;
      }|}
  in
  match Ut.transform_source ~variation (Nv_minic.Runtime.with_runtime source) with
  | Error e -> Alcotest.fail e
  | Ok (images, _) -> expect_exit 7 (Nsystem.run (Nsystem.create ~vfs ~variation images))

let test_fd_exhaustion_no_false_alarm () =
  let source =
    {|int main(void) {
        int opened = 0;
        int fd = sys_open("/etc/group", 0);
        while (fd >= 0) {
          opened = opened + 1;
          if (opened > 100) { return 99; }
          fd = sys_open("/etc/group", 0);
        }
        if (opened > 0) { return 0; }
        return 1;
      }|}
  in
  expect_exit 0 (Nsystem.run (build_transformed Variation.uid_diversity source))

let test_misconfigured_variant_fails_stop () =
  (* Deployment error: variant 1 was built with the wrong (identity)
     reexpression. The system must fail stop at the first UID crossing,
     not run with broken protection. *)
  let source = "int main(void) { if (seteuid(getuid()) != 0) { return 1; } return 0; }" in
  let tprog =
    match Nv_minic.Typecheck.check (Nv_minic.Parser.parse source) with
    | Ok t -> t
    | Error _ -> Alcotest.fail "typecheck"
  in
  let instrumented, _ = Ut.instrument tprog in
  (* Both images identity-reexpressed, deployed under uid_diversity. *)
  let wrong = Nv_minic.Codegen.compile (Ut.reexpress ~f:Reexpression.identity instrumented) in
  let sys = Nsystem.create ~variation:Variation.uid_diversity [| wrong; wrong |] in
  match Nsystem.run sys with
  | Monitor.Exited 0 ->
    (* getuid returns encoded values; identity program passes them back
       to seteuid; the monitor decodes - variant 1's value decodes
       wrongly only if it diverged... getuid->seteuid roundtrips
       R_i(u) -> R_i^-1 = u, so this specific flow is consistent. *)
    ()
  | Monitor.Alarm _ -> ()
  | _ -> Alcotest.fail "unexpected outcome"

let test_misconfigured_constants_alarm () =
  (* A UID constant that was not reexpressed in variant 1 is caught the
     moment it reaches the kernel interface. *)
  let source = "int main(void) { if (seteuid(33) != 0) { return 1; } return 0; }" in
  let tprog =
    match Nv_minic.Typecheck.check (Nv_minic.Parser.parse source) with
    | Ok t -> t
    | Error _ -> Alcotest.fail "typecheck"
  in
  let instrumented, _ = Ut.instrument tprog in
  let unreexpressed =
    Nv_minic.Codegen.compile (Ut.reexpress ~f:Reexpression.identity instrumented)
  in
  let sys =
    Nsystem.create ~variation:Variation.uid_diversity [| unreexpressed; unreexpressed |]
  in
  match Nsystem.run sys with
  | Monitor.Alarm (Alarm.Arg_mismatch _) -> ()
  | _ -> Alcotest.fail "misconfiguration must alarm"

(* ------------------------------------------------------------------ *)
(* End-to-end attack surface on the extended partition           *)
(* ------------------------------------------------------------------ *)

let test_code_injection_detected_under_extended_partition () =
  let variation = Variation.extended_partition () in
  let vfs = Nsystem.standard_vfs ~variation () in
  Nv_httpd.Site.install vfs;
  let image = Nv_minic.Codegen.compile_source (Nv_httpd.Httpd_source.source ()) in
  let sys = Nsystem.of_one_image ~vfs ~variation image in
  (match Nsystem.run sys with
  | Monitor.Blocked_on_accept -> ()
  | _ -> Alcotest.fail "server did not start");
  let request = Nv_attacks.Payloads.code_injection_request sys ~tag:0 in
  let conn = Nsystem.connect sys in
  Nv_os.Socket.client_send conn request;
  Nv_os.Socket.client_close conn;
  match Nsystem.run sys with
  | Monitor.Alarm (Alarm.Variant_fault _) -> ()
  | _ -> Alcotest.fail "expected variant fault"

(* ------------------------------------------------------------------ *)
(* Cross-configuration consistency: the same requests produce          *)
(* byte-identical responses under every deployment                     *)
(* ------------------------------------------------------------------ *)

let test_all_configs_serve_identically () =
  let requests =
    [ "/"; "/small.html"; "/news.html"; "/large.html"; "/missing.html"; "/style.css";
      "/docs.html"; "/" ]
  in
  let responses config =
    match Nv_httpd.Deploy.build config with
    | Error e -> Alcotest.fail e
    | Ok sys ->
      List.map
        (fun path ->
          match Nsystem.serve sys (Nv_httpd.Http.get path) with
          | Nsystem.Served raw -> raw
          | Nsystem.Stopped _ ->
            Alcotest.failf "%s stopped on %s" (Nv_httpd.Deploy.name config) path)
        requests
  in
  let reference = responses Nv_httpd.Deploy.Unmodified_single in
  List.iter
    (fun config ->
      let got = responses config in
      List.iter2
        (fun expected actual ->
          Alcotest.(check string)
            (Printf.sprintf "%s byte-identical" (Nv_httpd.Deploy.name config))
            expected actual)
        reference got)
    [ Nv_httpd.Deploy.Transformed_single; Nv_httpd.Deploy.Two_variant_address;
      Nv_httpd.Deploy.Two_variant_uid; Nv_httpd.Deploy.Seeded_three;
      Nv_httpd.Deploy.Composed_three; Nv_httpd.Deploy.Composed_four ]

let test_soak_config4 () =
  (* 120 requests through the full UID-variation deployment: no alarm,
     no drift, log grows linearly. *)
  let sys =
    match Nv_httpd.Deploy.build Nv_httpd.Deploy.Two_variant_uid with
    | Ok sys -> sys
    | Error e -> Alcotest.fail e
  in
  let prng = Nv_util.Prng.create ~seed:99 in
  for i = 1 to 120 do
    let path = Nv_util.Prng.pick prng Nv_httpd.Site.request_mix in
    match Nsystem.serve sys (Nv_httpd.Http.get path) with
    | Nsystem.Served raw -> (
      match Nv_httpd.Http.parse_response raw with
      | Ok { Nv_httpd.Http.status = 200; _ } -> ()
      | Ok r -> Alcotest.failf "request %d: status %d" i r.Nv_httpd.Http.status
      | Error e -> Alcotest.failf "request %d: %s" i e)
    | Nsystem.Stopped _ -> Alcotest.failf "request %d: stopped" i
  done;
  match
    Vfs.contents (Nv_os.Kernel.vfs (Nsystem.kernel sys)) ~path:"/var/log/httpd.log"
  with
  | Ok log ->
    let lines = List.length (String.split_on_char '\n' (String.trim log)) in
    Alcotest.(check int) "one log line per request" 120 lines
  | Error _ -> Alcotest.fail "log missing"

(* ------------------------------------------------------------------ *)
(* Transparency: protection must not change observable behaviour       *)
(* ------------------------------------------------------------------ *)

(* Generate small random-but-well-typed UID programs and check that the
   transformed 2-variant deployment produces exactly the exit status of
   the unprotected single-variant run - the normal-equivalence property
   as an executable program-level property. *)
let gen_uid_program =
  let open QCheck.Gen in
  let uid_const = oneofl [ 0; 1; 33; 1000; 1001; 65534 ] in
  let stmt =
    oneof
      [
        map (Printf.sprintf "  if (u == %d) { acc = acc + 1; }") uid_const;
        map (Printf.sprintf "  if (u < %d) { acc = acc + 2; }") uid_const;
        map (Printf.sprintf "  if (u >= %d) { acc = acc + 3; }") uid_const;
        map (Printf.sprintf "  if (seteuid(%d) == 0) { acc = acc + 5; }") uid_const;
        return "  u = geteuid();";
        return "  u = getuid();";
        return "  if (!u) { acc = acc + 7; }";
        map (Printf.sprintf "  v = %d;") uid_const;
        return "  if (cc_eq(u, v)) { acc = acc + 11; }";
        return "  if (seteuid(v) == 0) { acc = acc + 13; }";
      ]
  in
  let* n = int_range 1 12 in
  let* stmts = list_repeat n stmt in
  return
    (Printf.sprintf
       {|int main(void) {
  int acc = 0;
  uid_t u = getuid();
  uid_t v = 0;
%s
  return acc;
}|}
       (String.concat "\n" stmts))

let run_single source =
  let kernel = Nv_os.Kernel.create ~variants:1 (Nsystem.standard_vfs ~variation:Variation.single ()) in
  let image = Nv_minic.Codegen.compile_source source in
  match Nv_minic.Runner.run (Nv_minic.Runner.create image kernel) with
  | Nv_minic.Runner.Exited status -> Some status
  | _ -> None

let run_protected source =
  match Ut.transform_source ~variation:Variation.uid_diversity source with
  | Error _ -> None
  | Ok (images, _) -> (
    match Nsystem.run (Nsystem.create ~variation:Variation.uid_diversity images) with
    | Monitor.Exited status -> Some status
    | _ -> None)

let prop_protection_transparency =
  QCheck.Test.make ~name:"transformed 2-variant run matches unprotected run" ~count:60
    (QCheck.make ~print:(fun s -> s) gen_uid_program)
    (fun source ->
      match (run_single source, run_protected source) with
      | Some a, Some b -> a = b
      | _ -> false)

let () =
  Alcotest.run "nv_integration"
    [
      ( "extended-partition",
        [
          Alcotest.test_case "normal equivalence" `Quick
            test_extended_partition_normal_equivalence;
          Alcotest.test_case "detects absolute address" `Quick
            test_extended_partition_detects_absolute_address;
          Alcotest.test_case "low bytes differ" `Quick test_extended_partition_low_bytes_differ;
          Alcotest.test_case "code injection detected" `Quick
            test_code_injection_detected_under_extended_partition;
        ]
        @ qsuite [ prop_extended_offsets_shift_symbols ] );
      ( "full-diversity",
        [
          Alcotest.test_case "normal equivalence" `Quick test_full_diversity_normal_equivalence;
          Alcotest.test_case "uid corruption detected" `Quick
            test_full_diversity_detects_uid_corruption;
          Alcotest.test_case "tag corruption detected" `Quick
            test_full_diversity_detects_tag_corruption;
        ] );
      ( "n-variants",
        [
          Alcotest.test_case "three variants normal" `Quick test_three_variants_normal_equivalence;
          Alcotest.test_case "three variants detect" `Quick test_three_variants_detect_corruption;
          Alcotest.test_case "three variants forensics" `Quick
            test_three_variants_forensics_name_divergent;
        ] );
      ( "failure-injection",
        [
          Alcotest.test_case "asymmetric unshared copies diverge" `Quick
            test_missing_unshared_copy_fails_consistently;
          Alcotest.test_case "missing copies degrade cleanly" `Quick
            test_wholly_missing_unshared_copies_fail_cleanly;
          Alcotest.test_case "fd exhaustion" `Quick test_fd_exhaustion_no_false_alarm;
          Alcotest.test_case "misconfigured variant" `Quick test_misconfigured_variant_fails_stop;
          Alcotest.test_case "unreexpressed constants alarm" `Quick
            test_misconfigured_constants_alarm;
        ] );
      ( "consistency",
        [
          Alcotest.test_case "all configs serve identically" `Quick
            test_all_configs_serve_identically;
          Alcotest.test_case "config4 soak" `Slow test_soak_config4;
        ] );
      ("transparency", qsuite [ prop_protection_transparency ]);
    ]
