(** Simulated TCP connections between workload clients and the guest
    server.

    A {!conn} is a pair of byte streams. The client side writes the
    request with {!client_send} and reads the response with
    {!client_recv}; the server side reads and writes through kernel
    [read]/[write] syscalls on the fd returned by [accept]. *)

type conn

type listener
(** Pending-connection queue of a listening server. *)

val make_listener : unit -> listener

val connect : listener -> conn
(** Create a connection and enqueue it for [accept]. *)

val pending : listener -> int

val accept : listener -> conn option
(** Dequeue the oldest pending connection. *)

val conn_id : conn -> int
(** Unique id, for tracing. *)

(* Client side *)

val client_send : conn -> string -> unit
(** Append bytes to the server-bound stream. Raises [Invalid_argument]
    if the client already half-closed. *)

val client_close : conn -> unit
(** Half-close: the server sees EOF after draining buffered bytes. *)

val client_recv : conn -> string
(** Drain everything the server has written so far. *)

val server_closed : conn -> bool

(* Server side (used by the kernel) *)

val server_read : conn -> max:int -> string
(** Up to [max] buffered request bytes; [""] at EOF or when nothing is
    buffered. *)

val server_has_data : conn -> bool
val server_at_eof : conn -> bool

val server_write : conn -> string -> int
(** Append response bytes; returns the byte count written. *)

val server_close : conn -> unit
