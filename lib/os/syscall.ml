type number = int

let sys_exit = 0
let sys_read = 1
let sys_write = 2
let sys_open = 3
let sys_close = 4
let sys_accept = 5
let sys_getuid = 6
let sys_geteuid = 7
let sys_setuid = 8
let sys_seteuid = 9
let sys_getgid = 10
let sys_getegid = 11
let sys_setgid = 12
let sys_setegid = 13
let sys_uid_value = 20
let sys_cond_chk = 21
let sys_cc_eq = 22
let sys_cc_neq = 23
let sys_cc_lt = 24
let sys_cc_leq = 25
let sys_cc_gt = 26
let sys_cc_geq = 27

let o_rdonly = 0
let o_wronly = 1
let o_append = 2

type arg_kind = Int | Uid | Ptr_string | Ptr_out | Ptr_in | Len

type ret_kind = Ret_int | Ret_uid

type sensitivity = Sensitive | Relaxed

type signature = {
  name : string;
  args : arg_kind list;
  ret : ret_kind;
  sens : sensitivity;
}

(* Relaxed calls are exactly the register-only calls whose result is a
   pure function of the credential state and the calling variant's own
   reexpression spec: the kernel is read, never written, and no memory
   is marshalled. Everything that performs I/O, mutates kernel state,
   or can park the process must keep the full rendezvous. *)
let table =
  [
    (0, { name = "exit"; args = [ Int ]; ret = Ret_int; sens = Sensitive });
    (1, { name = "read"; args = [ Int; Ptr_out; Len ]; ret = Ret_int; sens = Sensitive });
    (2, { name = "write"; args = [ Int; Ptr_in; Len ]; ret = Ret_int; sens = Sensitive });
    (3, { name = "open"; args = [ Ptr_string; Int ]; ret = Ret_int; sens = Sensitive });
    (4, { name = "close"; args = [ Int ]; ret = Ret_int; sens = Sensitive });
    (5, { name = "accept"; args = [ Int ]; ret = Ret_int; sens = Sensitive });
    (6, { name = "getuid"; args = []; ret = Ret_uid; sens = Relaxed });
    (7, { name = "geteuid"; args = []; ret = Ret_uid; sens = Relaxed });
    (8, { name = "setuid"; args = [ Uid ]; ret = Ret_int; sens = Sensitive });
    (9, { name = "seteuid"; args = [ Uid ]; ret = Ret_int; sens = Sensitive });
    (10, { name = "getgid"; args = []; ret = Ret_uid; sens = Relaxed });
    (11, { name = "getegid"; args = []; ret = Ret_uid; sens = Relaxed });
    (12, { name = "setgid"; args = [ Uid ]; ret = Ret_int; sens = Sensitive });
    (13, { name = "setegid"; args = [ Uid ]; ret = Ret_int; sens = Sensitive });
    (20, { name = "uid_value"; args = [ Uid ]; ret = Ret_uid; sens = Relaxed });
    (21, { name = "cond_chk"; args = [ Int ]; ret = Ret_int; sens = Relaxed });
    (22, { name = "cc_eq"; args = [ Uid; Uid ]; ret = Ret_int; sens = Relaxed });
    (23, { name = "cc_neq"; args = [ Uid; Uid ]; ret = Ret_int; sens = Relaxed });
    (24, { name = "cc_lt"; args = [ Uid; Uid ]; ret = Ret_int; sens = Relaxed });
    (25, { name = "cc_leq"; args = [ Uid; Uid ]; ret = Ret_int; sens = Relaxed });
    (26, { name = "cc_gt"; args = [ Uid; Uid ]; ret = Ret_int; sens = Relaxed });
    (27, { name = "cc_geq"; args = [ Uid; Uid ]; ret = Ret_int; sens = Relaxed });
  ]

let all = table

let signature n = List.assoc_opt n table

let name n =
  match signature n with Some { name; _ } -> name | None -> Printf.sprintf "sys#%d" n

let sensitivity n =
  match signature n with Some { sens; _ } -> sens | None -> Sensitive

let is_relaxed n = sensitivity n = Relaxed

let is_detection_call n = n >= 20 && n <= 27
