type entry = {
  name : string;
  uid : Cred.uid;
  gid : Cred.gid;
  gecos : string;
  home : string;
  shell : string;
}

type group_entry = { group_name : string; gid : Cred.gid; members : string list }

let nonempty_lines text =
  String.split_on_char '\n' text |> List.filter (fun l -> String.trim l <> "")

let parse_uid_field line s =
  match int_of_string_opt s with
  | Some v when v >= 0 && v <= Nv_vm.Word.max_value -> Ok v
  | Some _ | None -> Error (Printf.sprintf "bad uid/gid field in %S" line)

let parse text =
  let parse_line line =
    match String.split_on_char ':' line with
    | [ name; _password; uid; gid; gecos; home; shell ] -> (
      match (parse_uid_field line uid, parse_uid_field line gid) with
      | Ok uid, Ok gid -> Ok { name; uid; gid; gecos; home; shell }
      | (Error _ as e), _ | _, (Error _ as e) -> e)
    | _ -> Error (Printf.sprintf "malformed passwd line %S" line)
  in
  let rec all acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest -> (
      match parse_line line with Ok e -> all (e :: acc) rest | Error _ as e -> e)
  in
  all [] (nonempty_lines text)

let serialize entries =
  entries
  |> List.map (fun e ->
         Printf.sprintf "%s:x:%d:%d:%s:%s:%s" e.name e.uid e.gid e.gecos e.home e.shell)
  |> String.concat "\n"
  |> fun body -> body ^ "\n"

let parse_group text =
  let parse_line line =
    match String.split_on_char ':' line with
    | [ group_name; _password; gid; members ] -> (
      match parse_uid_field line gid with
      | Ok gid ->
        let members =
          if members = "" then [] else String.split_on_char ',' members
        in
        Ok { group_name; gid; members }
      | Error _ as e -> e)
    | _ -> Error (Printf.sprintf "malformed group line %S" line)
  in
  let rec all acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest -> (
      match parse_line line with Ok e -> all (e :: acc) rest | Error _ as e -> e)
  in
  all [] (nonempty_lines text)

let serialize_group groups =
  groups
  |> List.map (fun g ->
         Printf.sprintf "%s:x:%d:%s" g.group_name g.gid (String.concat "," g.members))
  |> String.concat "\n"
  |> fun body -> body ^ "\n"

let lookup entries name = List.find_opt (fun e -> e.name = name) entries

let lookup_uid entries uid = List.find_opt (fun e -> e.uid = uid) entries

let reexpress ~f text =
  match parse text with
  | Error _ as e -> e
  | Ok entries ->
    Ok (serialize (List.map (fun e -> { e with uid = f e.uid; gid = f e.gid }) entries))

let reexpress_group ~f text =
  match parse_group text with
  | Error _ as e -> e
  | Ok groups -> Ok (serialize_group (List.map (fun g -> { g with gid = f g.gid }) groups))

let sample =
  [
    { name = "root"; uid = 0; gid = 0; gecos = "root"; home = "/root"; shell = "/bin/sh" };
    {
      name = "daemon"; uid = 1; gid = 1; gecos = "daemon"; home = "/usr/sbin";
      shell = "/usr/sbin/nologin";
    };
    {
      name = "www"; uid = 33; gid = 33; gecos = "www data"; home = "/var/www";
      shell = "/usr/sbin/nologin";
    };
    {
      name = "alice"; uid = 1000; gid = 1000; gecos = "Alice"; home = "/home/alice";
      shell = "/bin/sh";
    };
    {
      name = "bob"; uid = 1001; gid = 1001; gecos = "Bob"; home = "/home/bob";
      shell = "/bin/sh";
    };
  ]

let sample_groups =
  [
    { group_name = "root"; gid = 0; members = [] };
    { group_name = "daemon"; gid = 1; members = [] };
    { group_name = "www"; gid = 33; members = [] };
    { group_name = "users"; gid = 100; members = [ "alice"; "bob" ] };
  ]
