(* Tests for the flight recorder (Nv_util.Trace): ring semantics, the
   zero-cost disabled path, seq-vs-par stream identity, and the alarm
   forensics bundle attached to campaign verdicts. *)

module Trace = Nv_util.Trace
module Json = Nv_util.Metrics.Json
module Metrics = Nv_util.Metrics
module Monitor = Nv_core.Monitor
module Nsystem = Nv_core.Nsystem
module Variation = Nv_core.Variation
module Syscall = Nv_os.Syscall
module Campaign = Nv_attacks.Campaign
module Deploy = Nv_httpd.Deploy

(* ------------------------------------------------------------------ *)
(* Ring semantics                                                      *)
(* ------------------------------------------------------------------ *)

let test_ring_overflow_drops_oldest () =
  let t = Trace.create ~capacity:4 () in
  Trace.set_enabled t true;
  let r = Trace.ring t ~name:"x" ~pid:0 ~tid:0 in
  for i = 1 to 10 do
    Trace.record r ~ts:i (Trace.Kernel_call { name = "k"; seq = i })
  done;
  Alcotest.(check (list int))
    "retains the most recent tail" [ 7; 8; 9; 10 ]
    (List.map (fun e -> e.Trace.ts) (Trace.events r));
  Alcotest.(check int) "dropped counts evictions" 6 (Trace.dropped r);
  Alcotest.(check int) "recorded counts everything" 10 (Trace.recorded r);
  Trace.clear t;
  Alcotest.(check (list int)) "clear empties" [] (List.map (fun e -> e.Trace.ts) (Trace.events r));
  Alcotest.(check int) "clear resets drops" 0 (Trace.dropped r)

let test_disabled_records_nothing () =
  let t = Trace.create () in
  let r = Trace.ring t ~name:"x" ~pid:0 ~tid:0 in
  Trace.record r ~ts:1 Trace.Quantum_begin;
  Trace.note r ~ts:2 "hello";
  Alcotest.(check int) "nothing recorded" 0 (Trace.recorded r);
  Trace.set_enabled t true;
  Trace.record r ~ts:3 Trace.Quantum_begin;
  Alcotest.(check int) "recording after enable" 1 (Trace.recorded r)

let test_disabled_allocates_nothing () =
  (* The contract every instrumented hot path relies on: a guarded
     call site against a disabled session costs one atomic load and
     allocates nothing (the event constructor sits inside the guard). *)
  let t = Trace.create () in
  let r = Trace.ring t ~name:"x" ~pid:0 ~tid:0 in
  let site i =
    if Trace.enabled t then
      Trace.record r ~ts:i (Trace.Syscall_enter { number = 9; args = [| i; i + 1 |] })
  in
  site 0;
  let w0 = Gc.minor_words () in
  for i = 1 to 50_000 do
    site i
  done;
  let w1 = Gc.minor_words () in
  (* Allow a few words of slop for the Gc.minor_words boxes themselves;
     anything per-iteration would be tens of thousands of words. *)
  Alcotest.(check bool)
    (Printf.sprintf "no per-record allocation (%.0f words)" (w1 -. w0))
    true
    (w1 -. w0 < 100.0)

(* ------------------------------------------------------------------ *)
(* Sinks                                                               *)
(* ------------------------------------------------------------------ *)

let test_chrome_export_shape () =
  let t = Trace.create () in
  Trace.set_enabled t true;
  let v = Trace.ring t ~name:"variant 0" ~pid:0 ~tid:0 in
  let c = Trace.ring t ~name:"coordinator" ~pid:0 ~tid:1 in
  Trace.record v ~ts:0 Trace.Quantum_begin;
  Trace.record v ~ts:5 (Trace.Syscall_enter { number = 9; args = [| 33 |] });
  Trace.record v ~ts:5 (Trace.Syscall_exit { number = 9; result = 0 });
  Trace.record v ~ts:9 (Trace.Quantum_end { retired = 9 });
  Trace.record c ~ts:9 (Trace.Rendezvous { number = 9; relaxed = false });
  let json = Trace.to_chrome ~syscall_name:Syscall.name ~extra:[ ("marker", Json.Bool true) ] t in
  (* Round-trip through the parser: the export must be valid JSON. *)
  (match Json.of_string (Json.to_string json) with
  | Error e -> Alcotest.failf "chrome export does not parse: %s" e
  | Ok _ -> ());
  Alcotest.(check (option bool)) "extra key kept" (Some true)
    (match Json.member "marker" json with Some (Json.Bool b) -> Some b | _ -> None);
  match Json.member "traceEvents" json with
  | Some (Json.List evs) ->
    let phases =
      List.filter_map
        (fun e ->
          match (Json.member "ph" e, Json.member "name" e) with
          | Some (Json.Str ph), Some (Json.Str name) -> Some (ph, name)
          | _ -> None)
        evs
    in
    Alcotest.(check bool) "has metadata rows" true
      (List.mem ("M", "thread_name") phases);
    Alcotest.(check bool) "syscall duration pair" true
      (List.mem ("B", "seteuid") phases && List.mem ("E", "seteuid") phases);
    Alcotest.(check bool) "rendezvous instant" true
      (List.mem ("i", "rendezvous:seteuid") phases)
  | _ -> Alcotest.fail "no traceEvents list"

(* ------------------------------------------------------------------ *)
(* Seq == par stream identity                                          *)
(* ------------------------------------------------------------------ *)

(* A seed-parameterized guest exercising every stream source: relaxed
   getuid-family reads, detection calls from transformed comparisons,
   full rendezvous (seteuid, exit), and deferred flush boundaries. *)
let program seed =
  Printf.sprintf
    {|uid_t worker = %d;
      int main(void) {
        int i = 0;
        int acc = 0;
        while (i < %d) {
          uid_t u = geteuid();
          if (u == 0) { acc = acc + 2; } else { acc = acc + 1; }
          i = i + 1;
        }
        if (seteuid(worker) != 0) { return 1; }
        if (worker == %d) { return 2; }
        return %d;
      }|}
    ((seed * 7 mod 90) + 1)
    ((seed mod 4) + 2)
    (seed mod 2)
    (seed mod 3)

let transform seed =
  match
    Nv_transform.Uid_transform.transform_source ~variation:Variation.uid_diversity
      (Nv_minic.Runtime.with_runtime (program seed))
  with
  | Ok (images, _report) -> images
  | Error e -> Alcotest.failf "transform failed for seed %d: %s" seed e

(* Every ring of a session, fingerprinted event by event (timestamps
   included) so two sessions can be compared for exact identity. *)
let stream_fingerprint session =
  List.map
    (fun ring ->
      let events =
        List.map
          (fun e ->
            Printf.sprintf "%d:%s" e.Trace.ts
              (Format.asprintf "%a" (Trace.pp_event ~syscall_name:Syscall.name) e))
          (Trace.events ring)
      in
      (Trace.ring_name ring, Trace.dropped ring, events))
    (Trace.rings session)

let run_traced ~parallel images =
  let sys =
    Nsystem.create ~parallel ~variation:Variation.uid_diversity images
  in
  let monitor = Nsystem.monitor sys in
  Trace.set_enabled (Monitor.trace_session monitor) true;
  let outcome =
    match Nsystem.run ~fuel:200_000 sys with
    | Monitor.Exited n -> Printf.sprintf "exited %d" n
    | Monitor.Alarm reason -> Format.asprintf "alarm %a" Nv_core.Alarm.pp reason
    | Monitor.Blocked_on_accept -> "blocked"
    | Monitor.Out_of_fuel -> "out-of-fuel"
  in
  (outcome, stream_fingerprint (Monitor.trace_session monitor))

let test_seq_par_identical_streams () =
  for seed = 1 to 10 do
    let images = transform seed in
    let seq_outcome, seq_streams = run_traced ~parallel:false images in
    let par_outcome, par_streams = run_traced ~parallel:true (transform seed) in
    Alcotest.(check string)
      (Printf.sprintf "seed %d outcome" seed)
      seq_outcome par_outcome;
    List.iter2
      (fun (name, sdrop, sevs) (name', pdrop, pevs) ->
        Alcotest.(check string) (Printf.sprintf "seed %d ring name" seed) name name';
        Alcotest.(check int)
          (Printf.sprintf "seed %d ring %s dropped" seed name)
          sdrop pdrop;
        Alcotest.(check (list string))
          (Printf.sprintf "seed %d ring %s events" seed name)
          sevs pevs)
      seq_streams par_streams
  done

(* ------------------------------------------------------------------ *)
(* Forensics bundle                                                    *)
(* ------------------------------------------------------------------ *)

let str_member name json =
  match Json.member name json with Some (Json.Str s) -> Some s | _ -> None

let num_member name json =
  match Json.member name json with
  | Some (Json.Num n) -> Some (int_of_float n)
  | _ -> None

let test_forensics_bundle_pinned () =
  (* The acceptance scenario: the Table 2 null-terminator overflow
     against the 2-variant UID configuration. The bundle must identify
     the diverging variant, the detection syscall, and the mismatched
     canonical argument; the trace's final coordinator events must
     include the divergence rendezvous and the alarm. *)
  let attack =
    match Campaign.find "uid-null-overflow" with
    | Some a -> a
    | None -> Alcotest.fail "uid-null-overflow attack missing"
  in
  match Campaign.run_attack_traced attack Deploy.Two_variant_uid with
  | Error e -> Alcotest.failf "build failed: %s" e
  | Ok { Campaign.verdict; forensics; trace_json } ->
    (match verdict with
    | Campaign.Detected (Nv_core.Alarm.Arg_mismatch _) -> ()
    | v -> Alcotest.failf "expected Detected Arg_mismatch, got %s" (Campaign.verdict_label v));
    let bundle =
      match forensics with Some b -> b | None -> Alcotest.fail "no forensics bundle"
    in
    let alarm =
      match Json.member "alarm" bundle with
      | Some a -> a
      | None -> Alcotest.fail "bundle has no alarm"
    in
    Alcotest.(check (option string)) "alarm class" (Some "arg") (str_member "class" alarm);
    Alcotest.(check (option int)) "detection syscall number"
      (Some Syscall.sys_cc_eq) (num_member "syscall" alarm);
    Alcotest.(check (option string)) "detection syscall name" (Some "cc_eq")
      (str_member "syscall_name" alarm);
    Alcotest.(check (option int)) "mismatched argument index" (Some 0)
      (num_member "arg_index" alarm);
    (match Json.member "values" alarm with
    | Some (Json.List [ Json.Str v0; Json.Str v1 ]) ->
      Alcotest.(check bool)
        (Printf.sprintf "canonical values differ (%s vs %s)" v0 v1)
        true (v0 <> v1)
    | _ -> Alcotest.fail "alarm has no per-variant canonical values");
    (match Json.member "divergent_variants" alarm with
    | Some (Json.List [ Json.Num v ]) ->
      Alcotest.(check int) "diverging variant identified" 1 (int_of_float v)
    | _ -> Alcotest.fail "no divergent_variants");
    (* Per-variant machine state is present. *)
    (match Json.member "variants" bundle with
    | Some (Json.List (v0 :: _)) ->
      Alcotest.(check bool) "variant snapshot has registers" true
        (Json.member "registers" v0 <> None);
      Alcotest.(check bool) "variant snapshot has credentials" true
        (Json.member "credentials_reexpressed" v0 <> None)
    | _ -> Alcotest.fail "no variant snapshots");
    (* Ring tails are attached, and the coordinator tail ends with the
       divergence rendezvous followed by the alarm. *)
    let rings =
      match Json.member "rings" bundle with
      | Some (Json.List rs) -> rs
      | _ -> Alcotest.fail "no ring tails"
    in
    let coord =
      match
        List.find_opt (fun r -> str_member "name" r = Some "coordinator") rings
      with
      | Some r -> r
      | None -> Alcotest.fail "no coordinator ring tail"
    in
    let coord_kinds =
      match Json.member "events" coord with
      | Some (Json.List evs) -> List.filter_map (str_member "kind") evs
      | _ -> Alcotest.fail "coordinator tail has no events"
    in
    let rec last2 = function
      | [ a; b ] -> (a, b)
      | _ :: tl -> last2 tl
      | [] -> Alcotest.fail "coordinator tail empty"
    in
    let k1, k2 = last2 coord_kinds in
    Alcotest.(check string) "penultimate coordinator event" "rendezvous" k1;
    Alcotest.(check string) "final coordinator event" "alarm" k2;
    (* And the Chrome export both parses and ends on the same story. *)
    (match Json.of_string (Json.to_string trace_json) with
    | Error e -> Alcotest.failf "trace json does not parse: %s" e
    | Ok _ -> ());
    (match Json.member "traceEvents" trace_json with
    | Some (Json.List evs) when evs <> [] ->
      let names = List.filter_map (str_member "name") evs in
      Alcotest.(check bool) "divergence rendezvous exported" true
        (List.mem "rendezvous:cc_eq" names);
      Alcotest.(check bool) "alarm exported" true (List.mem "alarm:arg" names)
    | _ -> Alcotest.fail "trace json has no events");
    Alcotest.(check bool) "forensics attached to chrome export" true
      (Json.member "forensics" trace_json <> None)

(* ------------------------------------------------------------------ *)
(* Supervisor recovery records carry forensics                         *)
(* ------------------------------------------------------------------ *)

let test_recovery_log_forensics () =
  let attack =
    match Campaign.find "uid-null-overflow" with
    | Some a -> a
    | None -> Alcotest.fail "uid-null-overflow attack missing"
  in
  let recover = Nv_core.Supervisor.default_config in
  match Campaign.run_attack_traced ~recover attack Deploy.Two_variant_uid with
  | Error e -> Alcotest.failf "build failed: %s" e
  | Ok { Campaign.verdict; _ } ->
    (match verdict with
    | Campaign.Recovered _ -> ()
    | v -> Alcotest.failf "expected Recovered, got %s" (Campaign.verdict_label v))

let test_metrics_published () =
  let t = Trace.create () in
  Trace.set_enabled t true;
  let r = Trace.ring t ~name:"x" ~pid:0 ~tid:0 in
  Trace.record r ~ts:1 Trace.Quantum_begin;
  let reg = Metrics.create () in
  Trace.publish t reg;
  let gauge name =
    match Metrics.to_json_value reg with
    | Json.Obj groups -> (
      match List.assoc_opt "gauges" groups with
      | Some (Json.Obj fields) -> (
        match List.assoc_opt name fields with
        | Some (Json.Num n) -> Some (int_of_float n)
        | _ -> None)
      | _ -> None)
    | _ -> None
  in
  Alcotest.(check (option int)) "trace.rings" (Some 1) (gauge "trace.rings");
  Alcotest.(check (option int)) "trace.events" (Some 1) (gauge "trace.events");
  Alcotest.(check (option int)) "trace.dropped" (Some 0) (gauge "trace.dropped")

let () =
  Alcotest.run "nv_trace"
    [
      ( "ring",
        [
          Alcotest.test_case "overflow drops oldest" `Quick test_ring_overflow_drops_oldest;
          Alcotest.test_case "disabled records nothing" `Quick test_disabled_records_nothing;
          Alcotest.test_case "disabled allocates nothing" `Quick
            test_disabled_allocates_nothing;
          Alcotest.test_case "metrics published" `Quick test_metrics_published;
        ] );
      ( "sinks",
        [ Alcotest.test_case "chrome export shape" `Quick test_chrome_export_shape ] );
      ( "determinism",
        [
          Alcotest.test_case "seq == par streams" `Quick test_seq_par_identical_streams;
        ] );
      ( "forensics",
        [
          Alcotest.test_case "pinned overflow bundle" `Quick test_forensics_bundle_pinned;
          Alcotest.test_case "recovery absorbs with log" `Quick test_recovery_log_forensics;
        ] );
    ]
