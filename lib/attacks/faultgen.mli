(** Deterministic fault injection against a deployed system — the test
    generator for the recovery layer.

    Where {!Campaign} drives semantic attacks through the input
    channel, [Faultgen] models low-level corruption: a flipped register
    or memory bit in one variant, a corrupted syscall argument, a byte
    lost from one variant's replicated input. Divergence-based
    detection should catch each of these at the next rendezvous, and a
    {!Nv_core.Supervisor} should absorb the alarm and keep serving. *)

type fault =
  | Flip_register of { variant : int; reg : int; bit : int }
      (** XOR bit [bit] (0..31) of register [reg] (0..15). *)
  | Flip_memory_bit of { variant : int; offset : int; bit : int }
      (** XOR bit [bit] (0..7) of one byte of the variant's
          initialized-data/bss region; [offset] is folded into the
          region ([offset mod region size]). *)
  | Corrupt_syscall_arg of { variant : int; bit : int }
      (** XOR bit [bit] of the first argument (r1) of the syscall the
          parked variant is about to re-execute. *)
  | Drop_input_byte of { variant : int; index : int }
      (** One-shot: remove byte [index] from the bytes the next
          sufficiently long shared read replicates to [variant]
          (installed via {!Nv_core.Monitor.set_input_fault}). *)

val describe : fault -> string

val inject : Nv_core.Nsystem.t -> fault -> unit
(** Apply the fault to a system parked on accept. Raises
    [Invalid_argument] on out-of-range fields. [Drop_input_byte] only
    installs the hook; clear it with
    [Monitor.set_input_fault m None] after the probe. *)

val random_fault : Nv_util.Prng.t -> variants:int -> fault
(** Draw one fault uniformly across the four kinds (deterministic in
    the PRNG state). *)

type report = {
  injected : int;
  recovered : int;  (** alarm absorbed, subsequent benign request byte-identical *)
  failstop : int;  (** alarm surfaced (no supervisor, or budget exhausted) *)
  clean : int;  (** fault had no observable effect *)
  corrupted : int;  (** response diverged from baseline without an alarm *)
  crashed : int;  (** server exited or ran out of fuel *)
}

val pp_report : Format.formatter -> report -> unit

val run_campaign :
  ?seed:int ->
  ?faults:fault list ->
  ?recover:Nv_core.Supervisor.config ->
  ?parallel:bool ->
  Nv_httpd.Deploy.config ->
  (report, string) result
(** Build the configuration fresh (with a supervisor when [recover] is
    given), pin the healthy [GET /] response as baseline, then inject
    each fault while parked on accept and probe. Faults default to 12
    drawn from a PRNG seeded with [seed] (default 42), so the campaign
    is reproducible and identical under sequential and parallel
    execution. Fail-stop and crash outcomes are terminal: the campaign
    stops early with the counts so far. *)
