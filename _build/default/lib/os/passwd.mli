(** The [/etc/passwd] and [/etc/group] file formats, and generation of
    the diversified (reexpressed) copies used as unshared files.

    Section 3.4 of the paper keeps one reexpressed copy of each trusted
    UID-bearing file per variant ([/etc/passwd-0], [/etc/passwd-1]...)
    rather than reexpressing on the read path, which would hand the
    attacker a reusable transformation oracle. *)

type entry = {
  name : string;
  uid : Cred.uid;
  gid : Cred.gid;
  gecos : string;
  home : string;
  shell : string;
}

type group_entry = { group_name : string; gid : Cred.gid; members : string list }

val parse : string -> (entry list, string) result
(** Parse passwd-format text ([name:x:uid:gid:gecos:home:shell] lines;
    blank lines ignored). The error carries the first offending line. *)

val serialize : entry list -> string

val parse_group : string -> (group_entry list, string) result
(** [name:x:gid:member,member...] lines. *)

val serialize_group : group_entry list -> string

val lookup : entry list -> string -> entry option
(** Find an entry by user name. *)

val lookup_uid : entry list -> Cred.uid -> entry option

val reexpress : f:(Cred.uid -> Cred.uid) -> string -> (string, string) result
(** Apply a UID reexpression function to every UID and GID field of a
    passwd-format file, leaving everything else byte-identical. This is
    how the per-variant unshared copies are produced. *)

val reexpress_group : f:(Cred.uid -> Cred.uid) -> string -> (string, string) result

val sample : entry list
(** A small realistic passwd database: root, daemon, www (the server
    worker), and two ordinary users. Used by tests, examples and the
    case study. *)

val sample_groups : group_entry list
