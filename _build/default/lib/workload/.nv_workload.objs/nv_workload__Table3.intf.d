lib/workload/table3.mli: Cost_model Measure Nv_httpd Webbench
