(** Data reexpression functions (Section 2 / Table 1 of the paper).

    A reexpression function [R] maps canonical data values to a
    variant's concrete representation; its inverse [R^-1] sits in front
    of the target interpreter (here: the kernel's UID-bearing system
    calls). The N-variant security argument needs two properties:

    - {b inverse}: for all x, [decode (encode x) = x];
    - {b disjointness} (pairwise, between the variants' functions):
      for all x, [decode_i x <> decode_j x] — so a single concrete
      value injected identically into all variants can never be valid
      in more than one of them.

    Disjointness must hold for {e every} variant pair, not just pairs
    involving variant 0: an attack that fools variants 1 and 2
    identically while diverging only from variant 0 would otherwise be
    caught only by luck of the majority vote. Each constructor here
    records its algebraic {!form} so {!disjointness} can decide the
    property exactly rather than by sampling. *)

(** The algebraic shape of a reexpression, the handle the machine
    checker works on. [Linear { rot; key }] is
    [encode x = rol rot x ^ key] — over GF(2) both rotation and XOR
    are linear, so collisions between two [Linear] decodes reduce to a
    32-variable linear system that Gaussian elimination decides
    exactly. [Add31 c] adds [c] modulo [2^31] to the low 31 bits (bit
    31 — the kernel's UID sign bit — passes through). [Opaque] admits
    only sampled refutation. *)
type form =
  | Linear of { rot : int; key : Nv_vm.Word.t }
  | Add31 of Nv_vm.Word.t
  | Opaque

type t = {
  name : string;
  form : form;
  encode : Nv_vm.Word.t -> Nv_vm.Word.t;  (** R *)
  decode : Nv_vm.Word.t -> Nv_vm.Word.t;  (** R^-1 *)
}

val identity : t
(** Variant 0's function in the paper's UID variation. *)

val xor_key : key:Nv_vm.Word.t -> t
(** [R(u) = u ^ key]; self-inverse. The paper uses [key = 0x7FFFFFFF]
    rather than [0xFFFFFFFF] because the kernel treats negative UIDs
    specially — leaving the high bit unflipped, a weakness the attack
    matrix (experiment X2) reproduces. *)

val rotate : k:int -> t
(** [R(u) = rol(u, k)]. A pure rotation is {e never} pointwise
    disjoint from another rotation (0 and 0xFFFFFFFF are fixed points
    of every rotation), so this constructor only earns its keep
    composed with an XOR key — the attack matrix's rotation-only
    column demonstrates the defeat. *)

val rot_xor : k:int -> key:Nv_vm.Word.t -> t
(** [R(u) = rol(u, k) ^ key]: the rotation axis composed with a key.
    Disjointness against other [Linear] forms is decidable (and
    decided) by {!disjointness}. *)

val add_mod31 : offset:Nv_vm.Word.t -> t
(** [R(u) = bit31(u) || (u + offset mod 2^31)]: additive reexpression
    over the kernel's non-negative UID range. Two [Add31] functions
    are pairwise disjoint iff their offsets differ mod [2^31]. *)

val paper_uid_key : Nv_vm.Word.t
(** [0x7FFFFFFF]. *)

val variant_key : int -> Nv_vm.Word.t
(** The per-variant XOR key of the default UID variation: 0 for
    variant 0, {!paper_uid_key} for variant 1 (the paper's published
    two-variant deployment, pinned by Table 1), and fixed-seed derived
    pairwise-distinct 31-bit keys for variants 2 and up. Raises
    [Invalid_argument] on a negative index. *)

val uid_for_variant : int -> t
(** The UID variation, per-variant: variant 0 identity, variant [i]
    [xor_key ~key:(variant_key i)]. Distinct XOR keys are pairwise
    disjoint by construction, so the security argument holds for
    {e every} variant pair — not just pairs involving variant 0, which
    is all the earlier shared-key generalization gave. *)

val inverse_holds : t -> Nv_vm.Word.t -> bool
(** Check the inverse property at one point. *)

val disjoint_at : t -> t -> Nv_vm.Word.t -> bool
(** Check the disjointness property of two variants' functions at one
    point: [decode_i x <> decode_j x]. *)

(** {1 Machine-checkable witnesses} *)

(** Outcome of a disjointness decision. [Proven] covers all [2^32]
    words; [Refuted x] carries a concrete collision
    ([decode_a x = decode_b x]) verified by evaluation; [Unknown]
    means the forms admit no exact decision and sampling found no
    collision. *)
type verdict = Proven | Refuted of Nv_vm.Word.t | Unknown

val disjointness : t -> t -> verdict
(** Decide pointwise disjointness. [Linear]/[Linear] pairs reduce to a
    GF(2) linear system (exact: [Proven] or [Refuted]); [Add31]/[Add31]
    compare offsets; any pair involving [Opaque] falls back to a
    deterministic sampled search. *)

val selfcheck : t -> (unit, Nv_vm.Word.t) result
(** Verify over a structured + pseudo-random probe set that the
    inverse property holds and that [encode] matches the declared
    {!form}; [Error x] carries the first failing word. *)

val all_pairs_disjoint : t array -> (unit, int * int * Nv_vm.Word.t option) result
(** [Proven] for every pair, or the first offending pair [(i, j)] with
    the collision word when the verdict was [Refuted]. *)

(** {1 Families}

    Each family assigns variant [i] its reexpression function and
    certifies all-pairs disjointness before returning (raising
    [Invalid_argument] otherwise — which no shipped family does). *)

val xor_family : seed:int -> int -> t array
(** Per-boot masks: variant 0 identity, variants [1..n-1] XOR keys
    drawn from a {!Nv_util.Prng} stream seeded by the deployment —
    pairwise distinct, nonzero, bit 31 clear. A fresh seed each boot
    defeats attacks that replay a key learned from the binary or a
    previous boot. *)

val rotation_family : ?seed:int -> int -> t array
(** Variant [i] is [rot_xor ~k:i ~key:ki] with [ki] found greedily and
    certified [Proven] against every earlier variant by the GF(2)
    solver. At most 32 variants. *)

val rotation_only_family : int -> t array
(** Variant [i] is the bare [rotate ~k:i] — deliberately {e not}
    disjoint (every rotation fixes 0), shipped so the attack matrix
    can demonstrate the single-axis defeat. Not certified. *)

val add_family : ?stride:int -> int -> t array
(** Variant [i] is [add_mod31 ~offset:(i * stride)] (default stride
    0x01000001); offsets are pairwise distinct mod [2^31]. *)

(** {1 Table 1} *)

type table1_row = {
  variation : string;
  target_type : string;
  r0 : string;
  r1 : string;
  r0_inv : string;
  r1_inv : string;
}

val table1 : table1_row list
(** The four rows of Table 1 (address-space partitioning, extended
    partitioning, instruction-set tagging, and this paper's UID
    variation), extended with this repo's portfolio rows (per-variant
    keys, per-boot seeded masks, rotation+XOR, addition mod 2^31), for
    the bench harness to print. *)
