bin/attack_lab.mli:
