(** Deployment of the case-study server in the four evaluation
    configurations of Table 3. *)

type config =
  | Unmodified_single
      (** Configuration 1: untransformed server, one variant. *)
  | Transformed_single
      (** Configuration 2: UID-transformed server (detection calls
          inserted, identity reexpression), one variant — measures the
          cost of the code transformation alone. *)
  | Two_variant_address
      (** Configuration 3: two untransformed variants under
          address-space partitioning with the unshared-file-capable
          kernel — the redundant-execution baseline. *)
  | Two_variant_uid
      (** Configuration 4: the paper's UID variation — two variants,
          address partitioning, UID reexpression, unshared passwd. *)

val all : config list

val name : config -> string
(** "config1" .. "config4". *)

val description : config -> string

val variation : config -> Nv_core.Variation.t

val build :
  ?log_uid:bool ->
  ?mode:Nv_transform.Uid_transform.mode ->
  ?parallel:bool ->
  ?engine:Nv_vm.Memory.engine ->
  ?recover:Nv_core.Supervisor.config ->
  ?users:int ->
  config ->
  (Nv_core.Nsystem.t, string) result
(** Compile (and transform, for configurations 2 and 4) the server,
    populate the world (standard files + document root + diversified
    unshared copies), and assemble the system. Each call builds a fresh
    system. [parallel] and [engine] as in {!Nv_core.Monitor.create};
    [recover]
    attaches a recovery supervisor as in {!Nv_core.Nsystem.create};
    [users] appends that many synthetic passwd entries to the world as
    in {!Nv_core.Nsystem.standard_vfs} (keep it modest — the guest
    rescans [/etc/passwd] at startup). *)

val transform_report :
  ?log_uid:bool ->
  ?mode:Nv_transform.Uid_transform.mode ->
  unit ->
  (Nv_transform.Uid_transform.report, string) result
(** The change-count report of transforming the server source — the
    experiment X1 analogue of the paper's 73 Apache changes. *)
