(** The attack campaign: every attack class against every deployment
    configuration — experiment X2, the evidence behind the paper's
    detection claims (and its admitted high-bit escape).

    Each cell of the matrix builds a fresh system, drives the attack
    through the public input channel (plus direct memory fault
    injection for the bit-level rows), and classifies the outcome. *)

type verdict =
  | Escalated of string
      (** The attacker read the protected file; payload excerpt kept
          as evidence. *)
  | Corrupted_undetected
      (** The stored UID changed and the system kept serving without
          an alarm — an integrity violation the monitor missed (the
          expected result for the high-bit row under the XOR key). *)
  | Detected of Nv_core.Alarm.reason
      (** The monitor raised an alarm before the attack took effect. *)
  | Crashed of string
      (** The (single-variant) server died without escalation. *)
  | Recovered of { recoveries : int; last_alarm : Nv_core.Alarm.reason option }
      (** A supervisor absorbed the alarm(s): the attack was detected,
          the system rolled back and kept serving, and the probe saw a
          healthy server (only produced under [?recover]). *)
  | No_effect
      (** Server still healthy, UID intact, nothing leaked. *)

val verdict_label : verdict -> string
(** Short cell text: "ESCALATED", "CORRUPTED", "DETECTED",
    "CRASHED", "RECOVERED", "no effect". *)

val pp_verdict : Format.formatter -> verdict -> unit

type attack = {
  name : string;
  description : string;
  assumes_keys : bool;
      (** The attack computes per-variant values from {e guessed}
          reexpression keys — a strictly stronger, key-compromise
          threat model than the paper's single-channel attacker.
          Deployments with fixed published keys (including the paper's
          own two-variant configuration) are expected to lose to it;
          per-boot seeded and per-variant keys are what defeat it, so
          headline gates on the single-channel rows must exempt it. *)
  run : Nv_core.Nsystem.t -> verdict;
}

val attacks : attack list
(** The matrix rows:
    - [baseline-request]: a benign request (control row);
    - [uid-null-overflow]: 64-byte URL, NUL terminator zeroes the UID
      low byte → canonical root, then [..] traversal;
    - [uid-partial-byte]: 65-byte URL, one attacker byte into the UID;
    - [uid-three-bytes]: 67-byte URL, the three low-order UID bytes
      replaced (the Section 2.3 partial-overwrite granularity);
    - [uid-bit-set-low]: hardware fault forcing bit 0 of the stored
      word in every variant;
    - [uid-bit-set-high]: hardware fault forcing bit 31 — the paper's
      reexpression-key escape;
    - [uid-guessed-key-injection]: key-compromise fault writing each
      variant's guess of [encode 0] under the {e published shared
      key} — escalates undetected wherever all non-zero variants
      share that key (the pre-fix [uid_diversity_n] bug's regression
      row) and is caught by per-variant or per-boot keys;
    - [uid-zero-injection]: blind zeroing fault (same bytes in every
      variant) — defeats any reexpression family with a common fixed
      point at 0, e.g. bare rotations;
    - [stack-code-injection]: stack smash redirecting the return into
      machine code carried by the request. *)

val find : string -> attack option

val run_attack :
  ?parallel:bool ->
  ?recover:Nv_core.Supervisor.config ->
  attack ->
  Nv_httpd.Deploy.config ->
  (verdict, string) result
(** Build the configuration fresh and run one attack. [parallel] as in
    {!Nv_core.Monitor.create}. With [recover] the system carries a
    recovery supervisor; an attack it absorbs (rollback, connection
    dropped, server healthy afterwards) classifies as {!Recovered}
    instead of halting as {!Detected}. *)

type traced = {
  verdict : verdict;
  forensics : Nv_util.Metrics.Json.value option;
      (** The monitor's alarm post-mortem (alarm class, per-variant
          registers, credential snapshots, flight-recorder ring
          tails), when the run alarmed at least once. Under [?recover]
          this is the latest alarm's bundle; the full per-rollback
          history is on {!Nv_core.Supervisor.recovery_log}. *)
  trace_json : Nv_util.Metrics.Json.value;
      (** Chrome trace-event export of the whole run's flight-recorder
          rings ({!Nv_util.Trace.to_chrome}), with the forensics
          bundle attached under an ["forensics"] top-level key when
          present. Load it in Perfetto or chrome://tracing. *)
}

val run_attack_traced :
  ?parallel:bool ->
  ?recover:Nv_core.Supervisor.config ->
  attack ->
  Nv_httpd.Deploy.config ->
  (traced, string) result
(** {!run_attack} with the system's flight recorder enabled for the
    whole run: same verdict, plus the alarm forensics bundle and a
    Perfetto-loadable trace of every ring (variants, coordinator,
    kernel, and supervisor when [?recover] is given). *)

type matrix = (attack * (Nv_httpd.Deploy.config * verdict) list) list

val run_matrix :
  ?parallel:bool ->
  ?recover:Nv_core.Supervisor.config ->
  ?attacks:attack list ->
  ?configs:Nv_httpd.Deploy.config list ->
  unit ->
  matrix
(** Every attack against every configuration (default:
    {!Nv_httpd.Deploy.matrix} — the four Table 3 columns plus the
    N=3/4 portfolio columns). Cells are independent (each builds a
    fresh system); under [parallel] (default: [NV_PARALLEL]) they run
    concurrently on the shared domain pool, with results reassembled
    in deterministic matrix order. [recover] as in {!run_attack}
    (recovered-vs-halted comparison). *)

val render_matrix : matrix -> string
(** Table: attacks as rows, configurations as columns. *)

val undetected_cells : matrix -> (attack * Nv_httpd.Deploy.config * verdict) list
(** The cells where the attacker won without an alarm ({!Escalated} or
    {!Corrupted_undetected}), control row excluded — the list CI gates
    on being empty for the composed columns. *)

val matrix_json : matrix -> Nv_util.Metrics.Json.value
(** The detection-coverage table as JSON:
    [{"cells": {attack: {config: label}}, "undetected": [...]}] — the
    object the bench writes under ["attack_matrix"] in
    BENCH_results.json. *)
