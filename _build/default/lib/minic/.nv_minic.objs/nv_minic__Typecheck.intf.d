lib/minic/typecheck.mli: Ast Format Tast
