lib/vm/memory.mli: Word
