module Word = Nv_vm.Word
module Isa = Nv_vm.Isa
module Image = Nv_vm.Image
module Memory = Nv_vm.Memory
module Syscall = Nv_os.Syscall
module Monitor = Nv_core.Monitor
module Nsystem = Nv_core.Nsystem

let shadow_marker = "$6$salt$"

let url_size = Nv_httpd.Httpd_source.url_buffer_size

let null_overflow_url () = "/" ^ String.make (url_size - 1) 'A'

let partial_overwrite_url ~low_byte =
  "/" ^ String.make (url_size - 1) 'A' ^ String.make 1 low_byte

let three_byte_overwrite_url ~low_bytes =
  if String.length low_bytes <> 3 then invalid_arg "three_byte_overwrite_url: need 3 bytes";
  if String.contains low_bytes '\000' then
    invalid_arg "three_byte_overwrite_url: NUL cannot travel through strcpy";
  "/" ^ String.make (url_size - 1) 'A' ^ low_bytes

let traversal_url = "/../../secret/shadow"

let uid_symbol_addr loaded = Image.abs_symbol loaded "worker_uid"

let flip_stored_uid_bit ~bit ~value sys =
  if bit < 0 || bit > 31 then invalid_arg "flip_stored_uid_bit: bit out of range";
  let monitor = Nsystem.monitor sys in
  for i = 0 to Monitor.variant_count monitor - 1 do
    let loaded = Monitor.loaded monitor i in
    let addr = uid_symbol_addr loaded in
    let current = Memory.load_word loaded.Image.memory addr in
    let mask = 1 lsl bit in
    let updated = if value then current lor mask else current land lnot mask land Word.max_value in
    Memory.store_word loaded.Image.memory addr updated
  done

let inject_stored_uid ~value sys =
  let monitor = Nsystem.monitor sys in
  for i = 0 to Monitor.variant_count monitor - 1 do
    let loaded = Monitor.loaded monitor i in
    Memory.store_word loaded.Image.memory (uid_symbol_addr loaded)
      (Word.mask (value i))
  done

let read_stored_uid sys ~variant =
  let loaded = Monitor.loaded (Nsystem.monitor sys) variant in
  Memory.load_word loaded.Image.memory (uid_symbol_addr loaded)

(* ------------------------------------------------------------------ *)
(* Stack smash + code injection                                        *)
(* ------------------------------------------------------------------ *)

(* check_auth's frame: [int q] at fp-4, [char token[32]] at fp-36, so
   the copied token reaches the saved frame pointer after 36 bytes and
   the return address after 40. The return address's high byte is 0x00
   for variant-0 addresses (base 0x00010000), conveniently supplied by
   strcpy's terminating NUL. *)
let filler_to_saved_fp = 36

let conn_fd = 4 (* fds 0-2 plus the listener at 3 are preopened; the first accept yields 4 *)

let encode_instrs ~tag instrs =
  let buf = Buffer.create (List.length instrs * Isa.instr_size) in
  List.iter (fun i -> Buffer.add_bytes buf (Isa.encode ~tag i)) instrs;
  Buffer.contents buf

let shellcode ~tag ~path_addr ~scratch_addr =
  encode_instrs ~tag
    [
      (* fd = open(path, O_RDONLY) *)
      Isa.Mov (1, Isa.Imm path_addr);
      Isa.Mov (2, Isa.Imm 0);
      Isa.Mov (0, Isa.Imm Syscall.sys_open);
      Isa.Syscall;
      (* n = read(fd, scratch, 256) *)
      Isa.Mov (1, Isa.Reg 0);
      Isa.Mov (2, Isa.Imm scratch_addr);
      Isa.Mov (3, Isa.Imm 256);
      Isa.Mov (0, Isa.Imm Syscall.sys_read);
      Isa.Syscall;
      (* write(conn, scratch, n) *)
      Isa.Mov (3, Isa.Reg 0);
      Isa.Mov (1, Isa.Imm conn_fd);
      Isa.Mov (2, Isa.Imm scratch_addr);
      Isa.Mov (0, Isa.Imm Syscall.sys_write);
      Isa.Syscall;
      (* exit(0) *)
      Isa.Mov (1, Isa.Imm 0);
      Isa.Mov (0, Isa.Imm Syscall.sys_exit);
      Isa.Syscall;
    ]

let code_injection_request sys ~tag =
  let loaded = Monitor.loaded (Nsystem.monitor sys) 0 in
  let reqbuf_addr = Image.abs_symbol loaded "reqbuf" in
  (* Lay the injected code at a fixed offset past the request line, and
     the path string and scratch area after it. Bump the offset if any
     address byte the URL must carry would be zero or a space. *)
  let usable_byte b = b <> 0x00 && b <> Char.code ' ' in
  let choose_offset () =
    let rec scan off =
      if off > 256 then invalid_arg "code_injection_request: no usable offset";
      let addr = reqbuf_addr + off in
      if usable_byte (Word.byte addr 0) && usable_byte (Word.byte addr 1) then off
      else scan (off + 8)
    in
    scan 96
  in
  let code_offset = choose_offset () in
  let code_addr = reqbuf_addr + code_offset in
  let code_len = 17 * Isa.instr_size in
  let path_offset = code_offset + code_len in
  let path_addr = reqbuf_addr + path_offset in
  let scratch_addr = reqbuf_addr + 640 in
  let code = shellcode ~tag ~path_addr ~scratch_addr in
  assert (String.length code = code_len);
  (* URL: query-string token = filler + fake saved fp + the low three
     bytes of the code address (the fourth byte, 0x00, comes from the
     copy's terminator). *)
  let token =
    String.make filler_to_saved_fp 'B'
    ^ "FPFP"
    ^ Printf.sprintf "%c%c%c"
        (Char.chr (Word.byte code_addr 0))
        (Char.chr (Word.byte code_addr 1))
        (Char.chr (Word.byte code_addr 2))
  in
  assert (Word.byte code_addr 3 = 0);
  let request_line = Printf.sprintf "GET /x?%s HTTP/1.0\r\n" token in
  let line_len = String.length request_line in
  if line_len > code_offset then invalid_arg "code_injection_request: request line too long";
  let padding = String.make (code_offset - line_len) 'P' in
  request_line ^ padding ^ code ^ "/secret/shadow\000"
