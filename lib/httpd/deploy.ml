module Variation = Nv_core.Variation
module Nsystem = Nv_core.Nsystem
module Ut = Nv_transform.Uid_transform

type config =
  | Unmodified_single
  | Transformed_single
  | Two_variant_address
  | Two_variant_uid
  | Shared_key_three
  | Rotation_only_three
  | Seeded_three
  | Composed_three
  | Composed_four

let all = [ Unmodified_single; Transformed_single; Two_variant_address; Two_variant_uid ]

let extended =
  [ Shared_key_three; Rotation_only_three; Seeded_three; Composed_three; Composed_four ]

let matrix = all @ extended

let name = function
  | Unmodified_single -> "config1"
  | Transformed_single -> "config2"
  | Two_variant_address -> "config3"
  | Two_variant_uid -> "config4"
  | Shared_key_three -> "sharedkey3"
  | Rotation_only_three -> "rotonly3"
  | Seeded_three -> "seeded3"
  | Composed_three -> "composed3"
  | Composed_four -> "composed4"

let description = function
  | Unmodified_single -> "Unmodified httpd, single process"
  | Transformed_single -> "UID-transformed httpd, single process"
  | Two_variant_address -> "2-variant address-space partitioning"
  | Two_variant_uid -> "2-variant UID data diversity"
  | Shared_key_three -> "3-variant UID diversity, pre-fix shared key (vulnerable)"
  | Rotation_only_three -> "3-variant bare-rotation reexpression (single axis, vulnerable)"
  | Seeded_three -> "3-variant per-boot seeded XOR masks"
  | Composed_three -> "3-variant composed diversity (bases + tags + rotation/XOR keys)"
  | Composed_four -> "4-variant composed diversity (bases + tags + rotation/XOR keys)"

(* The seeded column must be reproducible across the bench, the CLI
   and the tests, so the "boot" seed is pinned here; a real deployment
   would draw it at startup. *)
let seeded_boot_seed = 0xB007

let variation = function
  | Unmodified_single -> Variation.single
  | Transformed_single -> Variation.single
  | Two_variant_address -> Variation.address_partition
  | Two_variant_uid -> Variation.uid_diversity
  | Shared_key_three -> Variation.shared_key 3
  | Rotation_only_three -> Variation.rotation_only 3
  | Seeded_three -> Variation.seeded_diversity ~seed:seeded_boot_seed 3
  | Composed_three -> Variation.full_diversity_n 3
  | Composed_four -> Variation.full_diversity_n 4

let world ?users variation =
  let vfs = Nsystem.standard_vfs ?users ~variation () in
  Site.install vfs;
  vfs

let build ?(log_uid = true) ?mode ?parallel ?engine ?recover ?users config =
  let variation = variation config in
  let vfs = world ?users variation in
  let source = Httpd_source.source ~log_uid () in
  match config with
  | Unmodified_single | Two_variant_address ->
    (match Nv_minic.Codegen.compile_source source with
    | image -> Ok (Nsystem.of_one_image ~vfs ?parallel ?engine ?recover ~variation image)
    | exception Nv_minic.Codegen.Error message -> Error message)
  | Transformed_single | Two_variant_uid | Shared_key_three | Rotation_only_three
  | Seeded_three | Composed_three | Composed_four -> (
    match Ut.transform_source ?mode ~variation source with
    | Error _ as e -> e
    | Ok (images, _report) ->
      Ok (Nsystem.create ~vfs ?parallel ?engine ?recover ~variation images))

let transform_report ?(log_uid = true) ?mode () =
  let source = Httpd_source.source ~log_uid () in
  match Ut.transform_source ?mode ~variation:Variation.uid_diversity source with
  | Error _ as e -> e
  | Ok (_images, report) -> Ok report
