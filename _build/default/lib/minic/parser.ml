exception Error of { line : int; message : string }

let fail line fmt = Printf.ksprintf (fun message -> raise (Error { line; message })) fmt

type state = { mutable tokens : Token.t list }

let peek st =
  match st.tokens with
  | [] -> Token.{ kind = Eof; line = 0 }
  | tok :: _ -> tok

let advance st =
  match st.tokens with
  | [] -> ()
  | _ :: rest -> st.tokens <- rest

let next st =
  let tok = peek st in
  advance st;
  tok

let expect st kind =
  let tok = peek st in
  if tok.Token.kind = kind then advance st
  else
    fail tok.Token.line "expected %s but found %s" (Token.describe kind)
      (Token.describe tok.Token.kind)

let expect_ident st =
  let tok = next st in
  match tok.Token.kind with
  | Token.Ident name -> name
  | other -> fail tok.Token.line "expected identifier but found %s" (Token.describe other)

(* ------------------------------------------------------------------ *)
(* Types                                                               *)
(* ------------------------------------------------------------------ *)

let base_type_of_kind = function
  | Token.Kw_int -> Some Ast.Tint
  | Token.Kw_char -> Some Ast.Tchar
  | Token.Kw_void -> Some Ast.Tvoid
  | Token.Kw_uid_t | Token.Kw_gid_t -> Some Ast.Tuid
  | _ -> None

let starts_type st = base_type_of_kind (peek st).Token.kind <> None

let parse_type st =
  let tok = next st in
  match base_type_of_kind tok.Token.kind with
  | None -> fail tok.Token.line "expected a type but found %s" (Token.describe tok.Token.kind)
  | Some base ->
    let rec stars ty =
      if (peek st).Token.kind = Token.Star then begin
        advance st;
        stars (Ast.Tptr ty)
      end
      else ty
    in
    stars base

(* ------------------------------------------------------------------ *)
(* Expressions                                                         *)
(* ------------------------------------------------------------------ *)

let lvalue_of_expr line = function
  | Ast.Var name -> Ast.Lvar name
  | Ast.Index (e, i) -> Ast.Lindex (e, i)
  | Ast.Deref e -> Ast.Lderef e
  | Ast.Int_lit _ | Ast.Char_lit _ | Ast.Str_lit _ | Ast.Unop _ | Ast.Binop _
  | Ast.Assign _ | Ast.Call _ | Ast.Addr_of _ | Ast.Cast _ ->
    fail line "expression is not assignable"

let incr_sugar line op e =
  let lv = lvalue_of_expr line e in
  let delta = Ast.Int_lit 1 in
  let op = match op with `Incr -> Ast.Add | `Decr -> Ast.Sub in
  Ast.Assign (lv, Ast.Binop (op, e, delta))

let rec parse_expr_st st = parse_assignment st

and parse_assignment st =
  let lhs = parse_lor st in
  match (peek st).Token.kind with
  | Token.Assign ->
    let line = (peek st).Token.line in
    advance st;
    let rhs = parse_assignment st in
    Ast.Assign (lvalue_of_expr line lhs, rhs)
  | _ -> lhs

and parse_binop_level st ops parse_next =
  let rec loop lhs =
    match List.assoc_opt (peek st).Token.kind ops with
    | Some op ->
      advance st;
      let rhs = parse_next st in
      loop (Ast.Binop (op, lhs, rhs))
    | None -> lhs
  in
  loop (parse_next st)

and parse_lor st = parse_binop_level st [ (Token.Or_or, Ast.Lor) ] parse_land

and parse_land st = parse_binop_level st [ (Token.And_and, Ast.Land) ] parse_bor

and parse_bor st = parse_binop_level st [ (Token.Pipe, Ast.Bor) ] parse_bxor

and parse_bxor st = parse_binop_level st [ (Token.Caret, Ast.Bxor) ] parse_band

and parse_band st = parse_binop_level st [ (Token.Amp, Ast.Band) ] parse_equality

and parse_equality st =
  parse_binop_level st [ (Token.Eq, Ast.Eq); (Token.Ne, Ast.Ne) ] parse_relational

and parse_relational st =
  parse_binop_level st
    [ (Token.Lt, Ast.Lt); (Token.Le, Ast.Le); (Token.Gt, Ast.Gt); (Token.Ge, Ast.Ge) ]
    parse_shift

and parse_shift st =
  parse_binop_level st [ (Token.Shl, Ast.Shl); (Token.Shr, Ast.Shr) ] parse_additive

and parse_additive st =
  parse_binop_level st [ (Token.Plus, Ast.Add); (Token.Minus, Ast.Sub) ] parse_multiplicative

and parse_multiplicative st =
  parse_binop_level st
    [ (Token.Star, Ast.Mul); (Token.Slash, Ast.Div); (Token.Percent, Ast.Mod) ]
    parse_unary

and parse_unary st =
  let tok = peek st in
  match tok.Token.kind with
  | Token.Minus -> (
    advance st;
    (* Fold negated literals so -5 parses as the literal -5. *)
    match parse_unary st with
    | Ast.Int_lit v -> Ast.Int_lit (-v)
    | e -> Ast.Unop (Ast.Neg, e))
  | Token.Bang ->
    advance st;
    Ast.Unop (Ast.Lnot, parse_unary st)
  | Token.Tilde ->
    advance st;
    Ast.Unop (Ast.Bnot, parse_unary st)
  | Token.Star ->
    advance st;
    Ast.Deref (parse_unary st)
  | Token.Amp ->
    advance st;
    let line = (peek st).Token.line in
    let e = parse_unary st in
    Ast.Addr_of (lvalue_of_expr line e)
  | Token.Plus_plus ->
    advance st;
    let e = parse_unary st in
    incr_sugar tok.Token.line `Incr e
  | Token.Minus_minus ->
    advance st;
    let e = parse_unary st in
    incr_sugar tok.Token.line `Decr e
  | Token.Lparen -> (
    (* Cast if a type keyword follows the parenthesis. *)
    match st.tokens with
    | { Token.kind = Token.Lparen; _ } :: { Token.kind = after; _ } :: _
      when base_type_of_kind after <> None ->
      advance st;
      let ty = parse_type st in
      expect st Token.Rparen;
      Ast.Cast (ty, parse_unary st)
    | _ -> parse_postfix st)
  | _ -> parse_postfix st

and parse_postfix st =
  let rec loop e =
    let tok = peek st in
    match tok.Token.kind with
    | Token.Lbracket ->
      advance st;
      let idx = parse_expr_st st in
      expect st Token.Rbracket;
      loop (Ast.Index (e, idx))
    | Token.Plus_plus ->
      advance st;
      loop (incr_sugar tok.Token.line `Incr e)
    | Token.Minus_minus ->
      advance st;
      loop (incr_sugar tok.Token.line `Decr e)
    | _ -> e
  in
  loop (parse_primary st)

and parse_primary st =
  let tok = next st in
  match tok.Token.kind with
  | Token.Int_lit v -> Ast.Int_lit v
  | Token.Char_lit c -> Ast.Char_lit c
  | Token.Str_lit s -> Ast.Str_lit s
  | Token.Ident name ->
    if (peek st).Token.kind = Token.Lparen then begin
      advance st;
      let args = parse_args st in
      expect st Token.Rparen;
      Ast.Call (name, args)
    end
    else Ast.Var name
  | Token.Lparen ->
    let e = parse_expr_st st in
    expect st Token.Rparen;
    e
  | other -> fail tok.Token.line "expected an expression but found %s" (Token.describe other)

and parse_args st =
  if (peek st).Token.kind = Token.Rparen then []
  else begin
    let rec loop acc =
      let arg = parse_expr_st st in
      if (peek st).Token.kind = Token.Comma then begin
        advance st;
        loop (arg :: acc)
      end
      else List.rev (arg :: acc)
    in
    loop []
  end

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)
(* ------------------------------------------------------------------ *)

(* Does a statement list contain a [continue] that would bind to the
   current loop level? (Used to reject continue in desugared for.) *)
let rec has_toplevel_continue stmts = List.exists stmt_has_continue stmts

and stmt_has_continue = function
  | Ast.Scontinue -> true
  | Ast.Sif (_, then_s, else_s) ->
    has_toplevel_continue then_s || has_toplevel_continue else_s
  | Ast.Sblock body -> has_toplevel_continue body
  | Ast.Swhile _ (* continue binds to the inner loop *)
  | Ast.Sexpr _ | Ast.Sdecl _ | Ast.Sreturn _ | Ast.Sbreak ->
    false

(* A branch that parsed as a single block is flattened to its body so
   that pretty-printing followed by reparsing is stable. *)
let flatten_branch = function [ Ast.Sblock body ] -> body | stmts -> stmts

let rec parse_stmt st : Ast.stmt list =
  let tok = peek st in
  match tok.Token.kind with
  | Token.Semi ->
    advance st;
    []
  | Token.Lbrace -> [ Ast.Sblock (parse_block st) ]
  | Token.Kw_if ->
    advance st;
    expect st Token.Lparen;
    let cond = parse_expr_st st in
    expect st Token.Rparen;
    let then_s = flatten_branch (parse_stmt st) in
    let else_s =
      if (peek st).Token.kind = Token.Kw_else then begin
        advance st;
        flatten_branch (parse_stmt st)
      end
      else []
    in
    [ Ast.Sif (cond, then_s, else_s) ]
  | Token.Kw_while ->
    advance st;
    expect st Token.Lparen;
    let cond = parse_expr_st st in
    expect st Token.Rparen;
    let body = flatten_branch (parse_stmt st) in
    [ Ast.Swhile (cond, body) ]
  | Token.Kw_for ->
    advance st;
    expect st Token.Lparen;
    let init =
      if (peek st).Token.kind = Token.Semi then []
      else if starts_type st then parse_decl_stmt st
      else [ Ast.Sexpr (parse_expr_st st) ]
    in
    expect st Token.Semi;
    let cond =
      if (peek st).Token.kind = Token.Semi then Ast.Int_lit 1 else parse_expr_st st
    in
    expect st Token.Semi;
    let step =
      if (peek st).Token.kind = Token.Rparen then [] else [ Ast.Sexpr (parse_expr_st st) ]
    in
    expect st Token.Rparen;
    let body = flatten_branch (parse_stmt st) in
    if has_toplevel_continue body then
      fail tok.Token.line "continue inside a for loop is not supported";
    [ Ast.Sblock (init @ [ Ast.Swhile (cond, body @ step) ]) ]
  | Token.Kw_return ->
    advance st;
    if (peek st).Token.kind = Token.Semi then begin
      advance st;
      [ Ast.Sreturn None ]
    end
    else begin
      let e = parse_expr_st st in
      expect st Token.Semi;
      [ Ast.Sreturn (Some e) ]
    end
  | Token.Kw_break ->
    advance st;
    expect st Token.Semi;
    [ Ast.Sbreak ]
  | Token.Kw_continue ->
    advance st;
    expect st Token.Semi;
    [ Ast.Scontinue ]
  | _ when starts_type st ->
    let decl = parse_decl_stmt st in
    expect st Token.Semi;
    decl
  | _ ->
    let e = parse_expr_st st in
    expect st Token.Semi;
    [ Ast.Sexpr e ]

(* [type name ([n])? (= expr)?] without the trailing semicolon (shared
   between plain declarations and for-loop initializers). *)
and parse_decl_stmt st =
  let ty = parse_type st in
  let name = expect_ident st in
  let ty =
    if (peek st).Token.kind = Token.Lbracket then begin
      advance st;
      let tok = next st in
      match tok.Token.kind with
      | Token.Int_lit size when size > 0 ->
        expect st Token.Rbracket;
        Ast.Tarray (ty, size)
      | _ -> fail tok.Token.line "expected a positive array size"
    end
    else ty
  in
  let init =
    if (peek st).Token.kind = Token.Assign then begin
      advance st;
      Some (parse_expr_st st)
    end
    else None
  in
  [ Ast.Sdecl (ty, name, init) ]

and parse_block st =
  expect st Token.Lbrace;
  let rec loop acc =
    if (peek st).Token.kind = Token.Rbrace then begin
      advance st;
      List.rev acc
    end
    else loop (List.rev_append (parse_stmt st) acc)
  in
  loop []

(* ------------------------------------------------------------------ *)
(* Top level                                                           *)
(* ------------------------------------------------------------------ *)

let parse_global_init st line =
  match (next st).Token.kind with
  | Token.Int_lit v -> Ast.Init_int v
  | Token.Minus -> (
    match (next st).Token.kind with
    | Token.Int_lit v -> Ast.Init_int (-v)
    | other -> fail line "expected integer after '-' but found %s" (Token.describe other))
  | Token.Char_lit c -> Ast.Init_int (Char.code c)
  | Token.Str_lit s -> Ast.Init_string s
  | Token.Lbrace ->
    let rec loop acc =
      match (next st).Token.kind with
      | Token.Int_lit v ->
        let acc = v :: acc in
        (match (next st).Token.kind with
        | Token.Comma -> loop acc
        | Token.Rbrace -> List.rev acc
        | other -> fail line "expected ',' or '}' but found %s" (Token.describe other))
      | other -> fail line "expected integer but found %s" (Token.describe other)
    in
    Ast.Init_array (loop [])
  | other -> fail line "invalid global initializer: %s" (Token.describe other)

let parse_decl st =
  let line = (peek st).Token.line in
  let ty = parse_type st in
  let name = expect_ident st in
  if (peek st).Token.kind = Token.Lparen then begin
    (* Function definition. *)
    advance st;
    let params =
      match (peek st).Token.kind with
      | Token.Rparen -> []
      | Token.Kw_void when (match st.tokens with
                            | _ :: { Token.kind = Token.Rparen; _ } :: _ -> true
                            | _ -> false) ->
        advance st;
        []
      | _ ->
        let rec loop acc =
          let pty = parse_type st in
          let pname = expect_ident st in
          let acc = (pty, pname) :: acc in
          if (peek st).Token.kind = Token.Comma then begin
            advance st;
            loop acc
          end
          else List.rev acc
        in
        loop []
    in
    expect st Token.Rparen;
    let body = parse_block st in
    Ast.Dfunc { Ast.fname = name; ret = ty; params; body }
  end
  else begin
    let ty =
      if (peek st).Token.kind = Token.Lbracket then begin
        advance st;
        let tok = next st in
        match tok.Token.kind with
        | Token.Int_lit size when size > 0 ->
          expect st Token.Rbracket;
          Ast.Tarray (ty, size)
        | _ -> fail tok.Token.line "expected a positive array size"
      end
      else ty
    in
    let init =
      if (peek st).Token.kind = Token.Assign then begin
        advance st;
        parse_global_init st line
      end
      else Ast.Init_none
    in
    expect st Token.Semi;
    Ast.Dglobal { Ast.gname = name; gty = ty; ginit = init }
  end

let parse source =
  let st = { tokens = Lexer.tokenize source } in
  let rec loop acc =
    if (peek st).Token.kind = Token.Eof then List.rev acc
    else loop (parse_decl st :: acc)
  in
  loop []

let parse_expr source =
  let st = { tokens = Lexer.tokenize source } in
  let e = parse_expr_st st in
  (match (peek st).Token.kind with
  | Token.Eof -> ()
  | other -> fail (peek st).Token.line "trailing tokens: %s" (Token.describe other));
  e
