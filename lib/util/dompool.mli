(** A small persistent pool of worker domains.

    A pool owns a fixed set of domains created once at {!create}; work
    is handed over with {!submit} (mutex + condition rendezvous, no
    per-task [Domain.spawn]) and collected with {!await}. An awaiting
    caller helps drain the task queue while its own promise is pending,
    so a pool task may itself submit to and await on the same pool
    without deadlock — nested parallelism (e.g. an attack campaign cell
    whose monitor also fans out variant quanta) degrades gracefully to
    the caller running the work inline.

    Worker exceptions are captured together with their backtrace and
    re-raised on the awaiting caller, so a pool does not change which
    exceptions a computation can raise — only which domain runs it.
    {!map_array} waits for {e every} task to finish before re-raising
    the lowest-index exception, making failure order deterministic
    regardless of scheduling. *)

type t
(** A pool of worker domains. *)

val create : size:int -> t
(** [create ~size] spawns [size] worker domains ([size >= 1] or
    [Invalid_argument]). *)

val size : t -> int
(** Number of worker domains (excluding helping callers). *)

val shutdown : t -> unit
(** Stop the workers and join their domains. Queued tasks that have
    not started are dropped; {!await} on their promises raises
    [Invalid_argument "Dompool.await: task dropped by shutdown"]
    instead of blocking forever. Submitting to a shut-down pool raises
    [Invalid_argument]. *)

val global : unit -> t
(** The shared process-wide pool, created on first use with
    [max 1 (Domain.recommended_domain_count () - 1)] workers (the
    calling domain itself is the extra effective worker, since awaiting
    callers help). Never shut down explicitly; worker domains block on
    an idle condition and do not prevent process exit. *)

type 'a promise
(** The future result of a submitted task. *)

val submit : t -> (unit -> 'a) -> 'a promise
(** Enqueue a task. It runs on some worker domain (or on a caller
    helping while it awaits). *)

val await : 'a promise -> 'a
(** Wait for the task to finish, helping with queued work meanwhile.
    Re-raises the task's exception (with its backtrace) if it failed;
    raises [Invalid_argument] if the task was dropped by {!shutdown}
    before it started. *)

val map_array : t -> ('a -> 'b) -> 'a array -> 'b array
(** [map_array pool f xs] runs [f xs.(i)] for every [i] on the pool and
    returns the results in order. All tasks are run to completion even
    when some raise; afterwards the exception of the {e lowest} failed
    index is re-raised with its original backtrace. [f] must therefore
    tolerate running concurrently with itself on other elements. *)

val env_default : unit -> bool
(** The process-wide parallelism default: [true] iff the [NV_PARALLEL]
    environment variable is set to ["1"]. Read on every call (not
    cached) so tests can flip it. *)
