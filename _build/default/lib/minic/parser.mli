(** Recursive-descent parser for mini-C.

    Notable deviations from C, chosen to keep the guest language small
    while still expressing the paper's case study:
    - declarations are [type name], with [*] suffixes on the type;
    - [x++]/[x--] (and the prefix forms) are sugar for [x = x + 1] /
      [x = x - 1] and evaluate to the {e new} value;
    - [for] loops are desugared to [while]; [continue] inside a [for]
      body is rejected at parse time because the desugaring would skip
      the step expression;
    - a global array initializer is a brace list of integers. *)

exception Error of { line : int; message : string }

val parse : string -> Ast.program
(** Lex and parse a full translation unit. Raises {!Error} (or
    {!Lexer.Error}) on malformed input. *)

val parse_expr : string -> Ast.expr
(** Parse a single expression (used by tests and the transformer's
    unit tests). *)
