lib/os/vfs.mli: Cred
