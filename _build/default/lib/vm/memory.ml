type access = Read | Write | Execute

exception Fault of { addr : int; access : access }

type t = { base : int; size : int; data : Bytes.t }

let create ~base ~size =
  if base < 0 || size < 0 || base + size > 0x1_0000_0000 then
    invalid_arg "Memory.create: segment outside the 32-bit address space";
  { base; size; data = Bytes.make size '\000' }

let base t = t.base

let size t = t.size

let in_range t addr = addr >= t.base && addr < t.base + t.size

let check t addr access = if not (in_range t addr) then raise (Fault { addr; access })

let to_offset t addr =
  check t addr Read;
  addr - t.base

let load_byte t addr =
  check t addr Read;
  Char.code (Bytes.get t.data (addr - t.base))

let store_byte t addr b =
  check t addr Write;
  Bytes.set t.data (addr - t.base) (Char.chr (b land 0xFF))

let exec_byte t addr =
  check t addr Execute;
  Char.code (Bytes.get t.data (addr - t.base))

let load_word t addr =
  let b0 = load_byte t addr in
  let b1 = load_byte t (addr + 1) in
  let b2 = load_byte t (addr + 2) in
  let b3 = load_byte t (addr + 3) in
  b0 lor (b1 lsl 8) lor (b2 lsl 16) lor (b3 lsl 24)

let store_word t addr w =
  store_byte t addr (Word.byte w 0);
  store_byte t (addr + 1) (Word.byte w 1);
  store_byte t (addr + 2) (Word.byte w 2);
  store_byte t (addr + 3) (Word.byte w 3)

let load_bytes t ~addr ~len =
  if len < 0 then invalid_arg "Memory.load_bytes: negative length";
  check t addr Read;
  if len > 0 then check t (addr + len - 1) Read;
  Bytes.sub t.data (addr - t.base) len

let store_bytes t ~addr data =
  let len = Bytes.length data in
  check t addr Write;
  if len > 0 then check t (addr + len - 1) Write;
  Bytes.blit data 0 t.data (addr - t.base) len

let load_cstring t ~addr ~max_len =
  let buf = Buffer.create 32 in
  let rec scan i =
    if i >= max_len then ()
    else begin
      let b = load_byte t (addr + i) in
      if b <> 0 then begin
        Buffer.add_char buf (Char.chr b);
        scan (i + 1)
      end
    end
  in
  scan 0;
  Buffer.contents buf

let store_cstring t ~addr s =
  String.iteri (fun i c -> store_byte t (addr + i) (Char.code c)) s;
  store_byte t (addr + String.length s) 0
