(* Quickstart: protect a privilege-dropping program with the paper's
   UID data-diversity variation in a few lines.

     dune exec examples/quickstart.exe

   The program below stores its worker UID in a global. We (1) run it
   as a 2-variant system on normal input, (2) simulate a non-control
   data attack that overwrites the stored UID with the same concrete
   value in both variants (which is all an attacker can do: the
   framework replicates one input stream), and (3) watch the monitor
   catch the corruption at the kernel's UID interface. *)

module Variation = Nv_core.Variation
module Monitor = Nv_core.Monitor
module Nsystem = Nv_core.Nsystem
module Alarm = Nv_core.Alarm

let guest_program =
  {|uid_t worker_uid = 33;
    int main(void) {
      int fd = sys_accept(3);      // wait for one client
      sys_close(fd);
      if (seteuid(worker_uid) != 0) { return 1; }
      if (geteuid() != worker_uid) { return 2; }
      return 0;
    }|}

let () =
  print_endline "== 1. transform the source for each variant ==";
  let images, report =
    match
      Nv_transform.Uid_transform.transform_source ~variation:Variation.uid_diversity
        guest_program
    with
    | Ok result -> result
    | Error e -> failwith e
  in
  Format.printf "transformation report: %a@."
    Nv_transform.Uid_transform.pp_report report;

  print_endline "\n== 2. normal input: the variants stay equivalent ==";
  let sys = Nsystem.create ~variation:Variation.uid_diversity images in
  (match Nsystem.run sys with
  | Monitor.Blocked_on_accept -> print_endline "server is waiting for a client..."
  | _ -> failwith "unexpected");
  ignore (Nsystem.connect sys);
  (match Nsystem.run sys with
  | Monitor.Exited 0 -> print_endline "exited 0: privilege drop worked in both variants"
  | other ->
    Format.printf "unexpected: %s@."
      (match other with
      | Monitor.Exited n -> Printf.sprintf "exit %d" n
      | Monitor.Alarm r -> Alarm.to_string r
      | _ -> "?"));

  print_endline "\n== 3. attack: same concrete value written into both variants ==";
  let sys = Nsystem.create ~variation:Variation.uid_diversity images in
  (match Nsystem.run sys with
  | Monitor.Blocked_on_accept -> ()
  | _ -> failwith "unexpected");
  (* The attacker wants root: worker_uid := 0, identically everywhere. *)
  for i = 0 to 1 do
    let loaded = Monitor.loaded (Nsystem.monitor sys) i in
    let addr = Nv_vm.Image.abs_symbol loaded "worker_uid" in
    Nv_vm.Memory.store_word loaded.Nv_vm.Image.memory addr 0;
    Format.printf "variant %d: wrote 0x00000000 over worker_uid at 0x%08X@." i addr
  done;
  ignore (Nsystem.connect sys);
  (match Nsystem.run sys with
  | Monitor.Alarm reason -> Format.printf "ALARM: %a@." Alarm.pp reason
  | other ->
    Format.printf "NOT DETECTED: %s@."
      (match other with
      | Monitor.Exited n -> Printf.sprintf "exit %d" n
      | _ -> "?"));
  print_endline
    "\nThe same value 0 decodes to uid 0 in variant 0 but to uid 0x7FFFFFFF in\n\
     variant 1 - the disjointness property guarantees the mismatch."
