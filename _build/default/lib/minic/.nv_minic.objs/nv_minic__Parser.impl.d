lib/minic/parser.ml: Ast Char Lexer List Printf Token
