bin/minicc.mli:
