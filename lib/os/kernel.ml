module Metrics = Nv_util.Metrics

let err = Nv_vm.Word.of_signed (-1)

let eagain = Nv_vm.Word.of_signed (-2)

let listen_fd = 3

type file_desc = {
  path : string;
  mutable pos : int;
  writable : bool;
  append : bool;
}

type desc =
  | Dnull
  | Dcapture of Buffer.t
  | Dfile of file_desc
  | Dconn of Socket.conn
  | Dlistener

type slot = Free | Shared of desc | Unshared of desc array

type data = Shared_data of string | Per_variant of string array

type t = {
  vfs : Vfs.t;
  variants : int;
  mutable cred : Cred.t;
  fds : slot array;
  listener : Socket.listener;
  stdout : Buffer.t;
  stderr : Buffer.t;
  unshared_paths : (string, unit) Hashtbl.t;
  mutable exit_status : int option;
  mutable syscalls : int;
  mutable open_fds : int;
  metrics : Metrics.t;
  calls_scope : Metrics.scope;
  syscalls_c : Metrics.counter;
  shared_bytes_in : Metrics.counter;
  shared_bytes_out : Metrics.counter;
  unshared_bytes_in : Metrics.counter;
  unshared_bytes_out : Metrics.counter;
  fds_open : Metrics.gauge;
  fds_high_water : Metrics.gauge;
  mutable trace : (Nv_util.Trace.ring * (unit -> int)) option;
}

let create ?metrics ?(fd_limit = 64) ~variants vfs =
  if variants < 1 then invalid_arg "Kernel.create: need at least one variant";
  if fd_limit <= listen_fd then invalid_arg "Kernel.create: fd_limit too small";
  let metrics = match metrics with Some m -> m | None -> Metrics.create () in
  let scope = Metrics.scope metrics "kernel" in
  let io_scope = Metrics.sub scope "io" in
  let fds_scope = Metrics.sub scope "fds" in
  let stdout = Buffer.create 256 in
  let stderr = Buffer.create 256 in
  let fds = Array.make fd_limit Free in
  fds.(0) <- Shared Dnull;
  fds.(1) <- Shared (Dcapture stdout);
  fds.(2) <- Shared (Dcapture stderr);
  fds.(listen_fd) <- Shared Dlistener;
  let t =
    {
      vfs;
      variants;
      cred = Cred.superuser;
      fds;
      listener = Socket.make_listener ();
      stdout;
      stderr;
      unshared_paths = Hashtbl.create 8;
      exit_status = None;
      syscalls = 0;
      open_fds = 4;
      metrics;
      calls_scope = Metrics.sub scope "calls";
      syscalls_c = Metrics.counter scope "syscalls";
      shared_bytes_in = Metrics.counter io_scope "shared_bytes_in";
      shared_bytes_out = Metrics.counter io_scope "shared_bytes_out";
      unshared_bytes_in = Metrics.counter io_scope "unshared_bytes_in";
      unshared_bytes_out = Metrics.counter io_scope "unshared_bytes_out";
      fds_open = Metrics.gauge fds_scope "open";
      fds_high_water = Metrics.gauge fds_scope "high_water";
      trace = None;
    }
  in
  Metrics.set_gauge t.fds_open (float_of_int t.open_fds);
  Metrics.max_gauge t.fds_high_water (float_of_int t.open_fds);
  t

let vfs t = t.vfs

let variants t = t.variants

let metrics t = t.metrics

let cred t = t.cred

let set_cred t cred = t.cred <- cred

let listener t = t.listener

let connect t = Socket.connect t.listener

let register_unshared t path = Hashtbl.replace t.unshared_paths path ()

let is_unshared t path = Hashtbl.mem t.unshared_paths path

let stdout_contents t = Buffer.contents t.stdout

let stderr_contents t = Buffer.contents t.stderr

let exit_status t = t.exit_status

let syscalls_executed t = t.syscalls

let set_trace t ~ring ~clock = t.trace <- Some (ring, clock)

let count t name =
  t.syscalls <- t.syscalls + 1;
  Metrics.incr t.syscalls_c;
  Metrics.incr (Metrics.counter t.calls_scope name);
  match t.trace with
  | None -> ()
  | Some (ring, clock) ->
      if Nv_util.Trace.enabled_ring ring then
        Nv_util.Trace.record ring ~ts:(clock ())
          (Nv_util.Trace.Kernel_call { name; seq = t.syscalls })

let fd_delta t delta =
  t.open_fds <- t.open_fds + delta;
  Metrics.set_gauge t.fds_open (float_of_int t.open_fds);
  Metrics.max_gauge t.fds_high_water (float_of_int t.open_fds)

let alloc_fd t =
  let rec scan i =
    if i >= Array.length t.fds then None
    else begin
      match t.fds.(i) with Free -> Some i | Shared _ | Unshared _ -> scan (i + 1)
    end
  in
  scan 3

let slot t fd = if fd < 0 || fd >= Array.length t.fds then Free else t.fds.(fd)

(* ------------------------------------------------------------------ *)
(* Syscalls                                                            *)
(* ------------------------------------------------------------------ *)

let sys_exit t ~status =
  count t "exit";
  t.exit_status <- Some status;
  0

let variant_path path i = Printf.sprintf "%s-%d" path i

let open_access flags =
  if flags land (Syscall.o_wronly lor Syscall.o_append) <> 0 then Vfs.Write_access
  else Vfs.Read_access

(* Validation and descriptor construction are separate steps: a
   multi-path (unshared) open must not truncate any per-variant copy
   until every copy has been validated, or a partial failure leaves
   the diversified files diverged. *)
let check_open t path access =
  match Vfs.open_file t.vfs ~cred:t.cred ~path ~access with
  | Ok () -> true
  | Error _ -> false

let make_desc t path flags access =
  let writable = access = Vfs.Write_access in
  let append = flags land Syscall.o_append <> 0 in
  if writable && not append then ignore (Vfs.set_contents t.vfs ~path "");
  Dfile { path; pos = 0; writable; append }

let sys_open t ~path ~flags =
  count t "open";
  match alloc_fd t with
  | None -> err
  | Some fd ->
    let access = open_access flags in
    if is_unshared t path then begin
      let paths = Array.init t.variants (variant_path path) in
      if Array.for_all (fun p -> check_open t p access) paths then begin
        t.fds.(fd) <- Unshared (Array.map (fun p -> make_desc t p flags access) paths);
        fd_delta t 1;
        fd
      end
      else err
    end
    else if check_open t path access then begin
      t.fds.(fd) <- Shared (make_desc t path flags access);
      fd_delta t 1;
      fd
    end
    else err

let sys_close t ~fd =
  count t "close";
  match slot t fd with
  | Free -> err
  | Shared Dlistener ->
    (* The preopened listener slot is reserved: freeing it would let
       [alloc_fd] hand the canonical listen fd to a regular file while
       accept traffic still queues, wedging the server forever. *)
    err
  | Shared (Dconn conn) ->
    Socket.server_close conn;
    t.fds.(fd) <- Free;
    fd_delta t (-1);
    0
  | Shared _ | Unshared _ ->
    t.fds.(fd) <- Free;
    fd_delta t (-1);
    0

(* Whether a read on [desc] can be performed at all — used to validate
   every branch of an unshared read before any descriptor position
   advances. *)
let desc_readable t = function
  | Dnull | Dcapture _ | Dlistener | Dconn _ -> true
  | Dfile f -> Result.is_ok (Vfs.size t.vfs ~path:f.path)

let read_desc t desc len =
  match desc with
  | Dnull -> Ok ""
  | Dcapture _ -> Ok ""
  | Dlistener -> Ok ""
  | Dconn conn -> Ok (Socket.server_read conn ~max:len)
  | Dfile f -> (
    (* One path resolution and one chunk-sized copy per call: guests
       scan fleet-scale passwd variants in small reads, so the read
       path must not touch the whole backing string each time. *)
    match Vfs.read_range t.vfs ~path:f.path ~pos:f.pos ~len with
    | Error _ ->
      (* A vanished backing file is an I/O error, not end-of-file. *)
      Error ()
    | Ok data ->
      f.pos <- f.pos + String.length data;
      Ok data)

let sys_read t ~fd ~len =
  count t "read";
  let len = max 0 len in
  match slot t fd with
  | Free -> (Nv_vm.Word.to_signed err, Shared_data "")
  | Shared desc -> (
    match read_desc t desc len with
    | Error () -> (Nv_vm.Word.to_signed err, Shared_data "")
    | Ok data ->
      Metrics.add t.shared_bytes_in (String.length data);
      (String.length data, Shared_data data))
  | Unshared descs ->
    if not (Array.for_all (desc_readable t) descs) then
      (* Error on any copy fails the whole call before any copy's
         position advances, so the variants stay in step. *)
      (Nv_vm.Word.to_signed err, Shared_data "")
    else begin
      let chunks =
        Array.map
          (fun desc ->
            match read_desc t desc len with Ok data -> data | Error () -> assert false)
          descs
      in
      Array.iter (fun c -> Metrics.add t.unshared_bytes_in (String.length c)) chunks;
      let n = if Array.length chunks > 0 then String.length chunks.(0) else 0 in
      (n, Per_variant chunks)
    end

(* Whether a write on [desc] can succeed — used to validate every
   branch of an unshared write before any bytes are persisted, so a
   partial failure cannot leave the diversified copies diverged. *)
let desc_writable t = function
  | Dnull | Dcapture _ | Dconn _ -> true
  | Dlistener -> false
  | Dfile f -> f.writable && Result.is_ok (Vfs.size t.vfs ~path:f.path)

let write_desc t desc bytes =
  match desc with
  | Dnull -> String.length bytes
  | Dlistener -> Nv_vm.Word.to_signed err
  | Dcapture buf ->
    Buffer.add_string buf bytes;
    String.length bytes
  | Dconn conn -> Socket.server_write conn bytes
  | Dfile f ->
    if not f.writable then Nv_vm.Word.to_signed err
    else begin
      match Vfs.append_contents t.vfs ~path:f.path bytes with
      | Error _ -> Nv_vm.Word.to_signed err
      | Ok () -> String.length bytes
    end

let write_unshared t descs chunk_of =
  if not (Array.for_all (desc_writable t) descs) then Nv_vm.Word.to_signed err
  else begin
    let results = Array.mapi (fun i desc -> write_desc t desc (chunk_of i)) descs in
    Array.iter (fun r -> if r > 0 then Metrics.add t.unshared_bytes_out r) results;
    Array.fold_left min max_int results
  end

let sys_write t ~fd ~data =
  count t "write";
  match (slot t fd, data) with
  | (Free, _) -> Nv_vm.Word.to_signed err
  | (Shared desc, Shared_data bytes) ->
    let result = write_desc t desc bytes in
    if result > 0 then Metrics.add t.shared_bytes_out result;
    result
  | (Shared desc, Per_variant chunks) ->
    (* Variants wrote different bytes to a shared descriptor; the
       monitor should have raised an alarm before getting here, but we
       fail safe by writing variant 0's bytes. *)
    let result = write_desc t desc (if Array.length chunks > 0 then chunks.(0) else "") in
    if result > 0 then Metrics.add t.shared_bytes_out result;
    result
  | (Unshared descs, Per_variant chunks) when Array.length chunks = Array.length descs ->
    write_unshared t descs (fun i -> chunks.(i))
  | (Unshared descs, Shared_data bytes) -> write_unshared t descs (fun _ -> bytes)
  | (Unshared _, Per_variant _) -> Nv_vm.Word.to_signed err

let sys_accept t ~fd =
  count t "accept";
  match slot t fd with
  | Shared Dlistener -> (
    match Socket.accept t.listener with
    | None -> eagain
    | Some conn -> (
      match alloc_fd t with
      | None -> err
      | Some fd ->
        t.fds.(fd) <- Shared (Dconn conn);
        fd_delta t 1;
        fd))
  | Free | Shared _ | Unshared _ -> err

let sys_getuid t =
  count t "getuid";
  t.cred.Cred.ruid

let sys_geteuid t =
  count t "geteuid";
  t.cred.Cred.euid

let sys_getgid t =
  count t "getgid";
  t.cred.Cred.rgid

let sys_getegid t =
  count t "getegid";
  t.cred.Cred.egid

let apply_setid t result =
  match result with
  | Ok cred ->
    t.cred <- cred;
    0
  | Error Cred.Eperm -> err

let sys_setuid t ~uid =
  count t "setuid";
  apply_setid t (Cred.setuid t.cred uid)

let sys_seteuid t ~uid =
  count t "seteuid";
  apply_setid t (Cred.seteuid t.cred uid)

let sys_setgid t ~gid =
  count t "setgid";
  apply_setid t (Cred.setgid t.cred gid)

let sys_setegid t ~gid =
  count t "setegid";
  apply_setid t (Cred.setegid t.cred gid)

let fd_is_unshared t ~fd =
  match slot t fd with Unshared _ -> true | Free | Shared _ -> false

let conn_of_fd t ~fd =
  match slot t fd with
  | Shared (Dconn conn) -> Some conn
  | Free | Shared _ | Unshared _ -> None

(* ------------------------------------------------------------------ *)
(* Checkpointing                                                       *)
(* ------------------------------------------------------------------ *)

type snapshot = {
  snap_cred : Cred.t;
  snap_fds : slot array;
  snap_files : (string * string * Vfs.attrs) list;
  snap_stdout : int;
  snap_stderr : int;
  snap_exit : int option;
}

let copy_desc = function
  | Dnull -> Dnull
  (* Capture descriptors alias the kernel's own stdout/stderr buffers,
     whose lengths are checkpointed separately. *)
  | Dcapture buf -> Dcapture buf
  | Dfile f -> Dfile { f with pos = f.pos }
  | Dlistener -> Dlistener
  | Dconn conn -> Dconn conn

(* Connections are live protocol state shared with the outside world;
   they cannot be rolled back, so a checkpoint records their slots as
   free and [restore] closes whatever connections are open. *)
let copy_slot = function
  | Free -> Free
  | Shared (Dconn _) -> Free
  | Shared desc -> Shared (copy_desc desc)
  | Unshared descs -> Unshared (Array.map copy_desc descs)

let snapshot t =
  {
    snap_cred = t.cred;
    snap_fds = Array.map copy_slot t.fds;
    snap_files = Vfs.dump_files t.vfs;
    snap_stdout = Buffer.length t.stdout;
    snap_stderr = Buffer.length t.stderr;
    snap_exit = t.exit_status;
  }

let restore t snap =
  let dropped = ref 0 in
  Array.iter
    (fun s ->
      match s with
      | Shared (Dconn conn) ->
        Socket.server_close conn;
        incr dropped
      | Free | Shared _ | Unshared _ -> ())
    t.fds;
  (* Deep-copy again on the way back so the snapshot stays pristine and
     can be restored any number of times. *)
  Array.iteri (fun i s -> t.fds.(i) <- copy_slot s) snap.snap_fds;
  t.cred <- snap.snap_cred;
  t.exit_status <- snap.snap_exit;
  (* Reinstate checkpointed file contents and attributes (re-creating
     removed files). Files created after the checkpoint are left in
     place; the fd table restore drops any descriptor for them. *)
  List.iter
    (fun (path, content, attrs) -> Vfs.install t.vfs ~attrs ~path content)
    snap.snap_files;
  if Buffer.length t.stdout >= snap.snap_stdout then
    Buffer.truncate t.stdout snap.snap_stdout;
  if Buffer.length t.stderr >= snap.snap_stderr then
    Buffer.truncate t.stderr snap.snap_stderr;
  t.open_fds <-
    Array.fold_left
      (fun acc s -> match s with Free -> acc | Shared _ | Unshared _ -> acc + 1)
      0 t.fds;
  Metrics.set_gauge t.fds_open (float_of_int t.open_fds);
  !dropped
