lib/core/reexpression.ml: Fun Nv_vm Printf
