lib/sim/heap.mli:
