module Cpu = Nv_vm.Cpu
module Word = Nv_vm.Word
module Memory = Nv_vm.Memory
module Image = Nv_vm.Image
module Kernel = Nv_os.Kernel
module Syscall = Nv_os.Syscall
module Sysabi = Nv_os.Sysabi
module Metrics = Nv_util.Metrics
module Dompool = Nv_util.Dompool

type outcome = Exited of int | Alarm of Alarm.reason | Blocked_on_accept | Out_of_fuel

type event = { ev_syscall : int; ev_raw_args : int array array; ev_note : string }

type signal_mode = Immediate of { after_instructions : int } | At_rendezvous

type pending_signal = {
  handler : string;
  mode : signal_mode;
  baselines : int array;  (* instructions retired per variant at post time *)
  delivered : bool array;
}

(* Concurrency discipline (see docs/architecture.md, "Concurrency"):
   between two rendezvous points each variant's [Image.loaded] (CPU,
   memory, icache) plus its own [delivered.(i)] slot are owned by the
   domain running that variant's quantum; everything else — the kernel,
   the metrics registry, [t.signal], the tracer, the metric-handle
   caches and [canon_scratch] — is only ever touched by the
   coordinator domain, after the join. A quantum therefore performs no
   [Metrics] mutation and never clears [t.signal]; the coordinator
   counts deliveries by diffing the [delivered] flags across the join
   and clears the signal itself. *)
type t = {
  kernel : Kernel.t;
  variation : Variation.t;
  variants : Image.loaded array;
  pool : Dompool.t option;  (* Some = run quanta on worker domains *)
  mutable tracer : (event -> unit) option;
  mutable signal : pending_signal option;
  (* Fault-injection hook: perturb the replicated bytes a shared read
     delivers to one variant (coordinator-only, like the tracer). *)
  mutable input_fault : (variant:int -> string -> string) option;
  metrics : Metrics.t;
  calls_scope : Metrics.scope;
  latency_scope : Metrics.scope;
  alarms_scope : Metrics.scope;
  rendezvous_c : Metrics.counter;
  checks_performed : Metrics.counter;
  checks_failed : Metrics.counter;
  input_bytes_replicated_c : Metrics.counter;
  output_writes_checked_c : Metrics.counter;
  signals_delivered_c : Metrics.counter;
  mutable last_rendezvous_instr : int;
  (* Hot-path caches: metric handles resolved per syscall number on
     first use (no hashtable lookup per rendezvous thereafter) and a
     scratch array reused by the canon_* argument checks. *)
  calls_by_number : Metrics.counter option array;
  latency_by_number : Metrics.histogram option array;
  canon_scratch : int array;
}

(* One slot per syscall number; numbers outside the table fall back to
   a by-name lookup (they only occur on unknown-syscall attacks). *)
let syscall_slots = 32

let create ?metrics ?parallel ?pool ?(segment_size = 1 lsl 20)
    ?(stack_size = 64 * 1024) ~kernel ~variation images =
  let parallel =
    match parallel with Some b -> b | None -> Dompool.env_default ()
  in
  let pool =
    if not parallel then None
    else Some (match pool with Some p -> p | None -> Dompool.global ())
  in
  let n = Variation.count variation in
  if Array.length images <> n then
    invalid_arg "Monitor.create: need exactly one image per variant";
  if Kernel.variants kernel <> n then
    invalid_arg "Monitor.create: kernel variant count mismatch";
  List.iter (Kernel.register_unshared kernel) variation.Variation.unshared_paths;
  let variants =
    Array.mapi
      (fun i image ->
        let spec = variation.Variation.variants.(i) in
        Image.load ~stack_size image ~base:spec.Variation.base ~size:segment_size
          ~tag:spec.Variation.tag)
      images
  in
  let metrics = match metrics with Some m -> m | None -> Kernel.metrics kernel in
  let scope = Metrics.scope metrics "monitor" in
  let checks_scope = Metrics.sub scope "checks" in
  {
    kernel;
    variation;
    variants;
    pool;
    tracer = None;
    signal = None;
    input_fault = None;
    metrics;
    calls_scope = Metrics.sub scope "calls";
    latency_scope = Metrics.sub scope "latency_instr";
    alarms_scope = Metrics.sub scope "alarms";
    rendezvous_c = Metrics.counter scope "rendezvous";
    checks_performed = Metrics.counter checks_scope "performed";
    checks_failed = Metrics.counter checks_scope "failed";
    input_bytes_replicated_c = Metrics.counter scope "input_bytes_replicated";
    output_writes_checked_c = Metrics.counter scope "output_writes_checked";
    signals_delivered_c = Metrics.counter scope "signals_delivered";
    last_rendezvous_instr = 0;
    calls_by_number = Array.make syscall_slots None;
    latency_by_number = Array.make syscall_slots None;
    canon_scratch = Array.make n 0;
  }

(* Lazy per-number resolution keeps metric registration identical to
   the by-name path: a counter exists only once its syscall occurs. *)
let call_counter t n =
  if n >= 0 && n < syscall_slots then begin
    match t.calls_by_number.(n) with
    | Some c -> c
    | None ->
      let c = Metrics.counter t.calls_scope (Syscall.name n) in
      t.calls_by_number.(n) <- Some c;
      c
  end
  else Metrics.counter t.calls_scope (Syscall.name n)

let latency_histogram t n =
  if n >= 0 && n < syscall_slots then begin
    match t.latency_by_number.(n) with
    | Some h -> h
    | None ->
      let h = Metrics.histogram t.latency_scope (Syscall.name n) in
      t.latency_by_number.(n) <- Some h;
      h
  end
  else Metrics.histogram t.latency_scope (Syscall.name n)

let kernel t = t.kernel

let parallel t = Option.is_some t.pool

let variation t = t.variation

let variant_count t = Array.length t.variants

let loaded t i = t.variants.(i)

let metrics t = t.metrics

let instructions_retired t =
  Array.fold_left (fun acc v -> acc + Cpu.instructions_retired v.Image.cpu) 0 t.variants

let rendezvous_count t = Metrics.counter_value t.rendezvous_c

type stats = {
  st_rendezvous : int;
  st_instructions : int array;
  st_calls : (string * int) list;
  st_checks_performed : int;
  st_checks_failed : int;
  st_input_bytes_replicated : int;
  st_output_writes_checked : int;
  st_signals_delivered : int;
}

let stats t =
  {
    st_rendezvous = Metrics.counter_value t.rendezvous_c;
    st_instructions =
      Array.map (fun v -> Cpu.instructions_retired v.Image.cpu) t.variants;
    st_calls = Metrics.counters_under t.metrics ~prefix:"monitor.calls.";
    st_checks_performed = Metrics.counter_value t.checks_performed;
    st_checks_failed = Metrics.counter_value t.checks_failed;
    st_input_bytes_replicated = Metrics.counter_value t.input_bytes_replicated_c;
    st_output_writes_checked = Metrics.counter_value t.output_writes_checked_c;
    st_signals_delivered = Metrics.counter_value t.signals_delivered_c;
  }

let set_tracer t f = t.tracer <- Some f

let set_input_fault t f = t.input_fault <- f

let all_equal arr = Array.for_all (fun x -> x = arr.(0)) arr

(* The alarm raised as soon as checking fails; carries no resources. *)
exception Alarm_exn of Alarm.reason

(* A variant handed the kernel a bad pointer: equivalent to the fault
   the hardware would raise on copy_from_user. *)
exception Marshal_fault of { variant : int; fault : Cpu.fault }

(* Every equivalence check passes through here so the checks.performed /
   checks.failed pair stays consistent with the alarm stream. *)
let check t ~fail cond =
  Metrics.incr t.checks_performed;
  if not cond then begin
    Metrics.incr t.checks_failed;
    raise (Alarm_exn (fail ()))
  end

let uid_spec t i = t.variation.Variation.variants.(i).Variation.uid

(* FNV-1a, 32-bit: content digest for string-divergence diagnostics
   (never the raw bytes — they may hold secrets). *)
let fnv1a s =
  let h = ref 0x811C9DC5 in
  String.iter
    (fun c -> h := (!h lxor Char.code c) * 0x01000193 land 0xFFFFFFFF)
    s;
  !h

(* ------------------------------------------------------------------ *)
(* Argument canonicalization                                           *)
(* ------------------------------------------------------------------ *)

(* The canon_* checks write each variant's canonical value into the
   reused [canon_scratch] array (no allocation on the all-agree path);
   the scratch is only copied out when a mismatch alarm needs it. *)
let scratch_all_equal t =
  let scratch = t.canon_scratch in
  let ok = ref true in
  for i = 1 to Array.length scratch - 1 do
    if scratch.(i) <> scratch.(0) then ok := false
  done;
  !ok

let check_scratch t ~syscall ~index =
  check t
    ~fail:(fun () ->
      Alarm.Arg_mismatch { syscall; arg_index = index; values = Array.copy t.canon_scratch })
    (scratch_all_equal t)

(* Raw register argument [index] from each variant; must be identical. *)
let canon_int t ~raws ~syscall ~index =
  let scratch = t.canon_scratch in
  Array.iteri (fun i (r : Sysabi.raw) -> scratch.(i) <- r.Sysabi.args.(index)) raws;
  check_scratch t ~syscall ~index;
  scratch.(0)

(* UID argument: apply each variant's inverse reexpression, then check
   the canonical values agree (Section 3.5). *)
let canon_uid t ~raws ~syscall ~index =
  let scratch = t.canon_scratch in
  Array.iteri
    (fun i (r : Sysabi.raw) ->
      scratch.(i) <- (uid_spec t i).Reexpression.decode r.Sysabi.args.(index))
    raws;
  check_scratch t ~syscall ~index;
  scratch.(0)

(* Pointer argument: canonicalize to a segment offset per variant. *)
let canon_ptr t ~raws ~syscall ~index =
  let scratch = t.canon_scratch in
  Array.iteri
    (fun i (r : Sysabi.raw) ->
      let addr = r.Sysabi.args.(index) in
      let memory = t.variants.(i).Image.memory in
      match Memory.to_offset memory addr with
      | offset -> scratch.(i) <- offset
      | exception Memory.Fault { addr; access } ->
        raise (Marshal_fault { variant = i; fault = Cpu.Segfault { addr; access } }))
    raws;
  check_scratch t ~syscall ~index;
  Array.map (fun (r : Sysabi.raw) -> r.Sysabi.args.(index)) raws

(* NUL-terminated string argument: contents must be identical. The
   failure diagnostic carries per-variant lengths and content digests
   so divergent contents are distinguishable from divergent lengths. *)
let canon_string t ~raws ~syscall ~index =
  let _ = canon_ptr t ~raws ~syscall ~index in
  let strings =
    Array.mapi
      (fun i (r : Sysabi.raw) ->
        let memory = t.variants.(i).Image.memory in
        match Sysabi.read_string memory ~addr:r.Sysabi.args.(index) with
        | s -> s
        | exception Memory.Fault { addr; access } ->
          raise (Marshal_fault { variant = i; fault = Cpu.Segfault { addr; access } }))
      raws
  in
  check t
    ~fail:(fun () ->
      Alarm.String_mismatch
        {
          syscall;
          arg_index = index;
          lengths = Array.map String.length strings;
          digests = Array.map fnv1a strings;
        })
    (all_equal strings);
  strings.(0)

let deliver t per_variant_results =
  Array.iteri
    (fun i result -> Sysabi.set_result t.variants.(i).Image.cpu result)
    per_variant_results

let deliver_same t result =
  Array.iter (fun v -> Sysabi.set_result v.Image.cpu result) t.variants

let trace t ~syscall ~raws note =
  match t.tracer with
  | None -> ()
  | Some f ->
    f
      {
        ev_syscall = syscall;
        ev_raw_args = Array.map (fun (r : Sysabi.raw) -> Array.copy r.Sysabi.args) raws;
        ev_note = note;
      }

(* ------------------------------------------------------------------ *)
(* Rendezvous dispatch                                                 *)
(* ------------------------------------------------------------------ *)

(* Returns [None] to keep running, [Some outcome] to stop. [now_instr]
   is the caller's already-computed total of retired instructions, so
   the dispatch path does not re-fold over the variants. *)
let dispatch t ~now_instr (raws : Sysabi.raw array) =
  let syscall = raws.(0).Sysabi.number in
  Metrics.incr (call_counter t syscall);
  (* Per-syscall rendezvous latency, measured in retired guest
     instructions (all variants) since the previous rendezvous. *)
  Metrics.observe
    (latency_histogram t syscall)
    (float_of_int (now_instr - t.last_rendezvous_instr));
  t.last_rendezvous_instr <- now_instr;
  let k = t.kernel in
  let continue_ = None in
  match syscall with
  | n when n = Syscall.sys_exit ->
    let statuses = Array.map (fun (r : Sysabi.raw) -> Word.to_signed r.Sysabi.args.(0)) raws in
    check t ~fail:(fun () -> Alarm.Exit_mismatch { statuses }) (all_equal statuses);
    trace t ~syscall ~raws (Printf.sprintf "exit(%d) checked across variants" statuses.(0));
    ignore (Kernel.sys_exit k ~status:statuses.(0));
    Some (Exited statuses.(0))
  | n when n = Syscall.sys_read ->
    let fd = Word.to_signed (canon_int t ~raws ~syscall ~index:0) in
    (* For unshared descriptors each variant performs its own read on
       its own diversified file (Section 3.4), so buffer pointers are
       not required to canonicalize to the same offset — content
       lengths differ legitimately, and so may derived pointers. *)
    let bufs =
      if Kernel.fd_is_unshared k ~fd then
        Array.map (fun (r : Sysabi.raw) -> r.Sysabi.args.(1)) raws
      else canon_ptr t ~raws ~syscall ~index:1
    in
    let len = Word.to_signed (canon_int t ~raws ~syscall ~index:2) in
    let count, data = Kernel.sys_read k ~fd ~len in
    (match data with
    | Kernel.Shared_data bytes -> (
      Metrics.add t.input_bytes_replicated_c (max 0 count);
      match t.input_fault with
      | Some perturb when count > 0 ->
        (* Fault injection: each variant receives a possibly-perturbed
           copy of the replicated input, with its own byte count. *)
        trace t ~syscall ~raws
          (Printf.sprintf "read(%d): %d bytes replicated with fault injection" fd count);
        let chunks =
          Array.init (Array.length t.variants) (fun i -> perturb ~variant:i bytes)
        in
        Array.iteri
          (fun i buf ->
            if String.length chunks.(i) > 0 then begin
              try Sysabi.write_bytes t.variants.(i).Image.memory ~addr:buf chunks.(i)
              with Memory.Fault { addr; access } ->
                raise (Marshal_fault { variant = i; fault = Cpu.Segfault { addr; access } })
            end)
          bufs;
        deliver t (Array.map (fun c -> Word.mask (String.length c)) chunks)
      | Some _ | None ->
        trace t ~syscall ~raws
          (Printf.sprintf "read(%d): performed once, %d bytes replicated to all variants" fd
             count);
        Array.iteri
          (fun i buf ->
            if count > 0 then
              try Sysabi.write_bytes t.variants.(i).Image.memory ~addr:buf bytes
              with Memory.Fault { addr; access } ->
                raise (Marshal_fault { variant = i; fault = Cpu.Segfault { addr; access } }))
          bufs;
        deliver_same t (Word.of_signed count))
    | Kernel.Per_variant chunks ->
      trace t ~syscall ~raws
        (Printf.sprintf "read(%d): unshared file, each variant reads its own copy" fd);
      Array.iteri
        (fun i buf ->
          let bytes = chunks.(i) in
          if String.length bytes > 0 then begin
            try Sysabi.write_bytes t.variants.(i).Image.memory ~addr:buf bytes
            with Memory.Fault { addr; access } ->
              raise (Marshal_fault { variant = i; fault = Cpu.Segfault { addr; access } })
          end)
        bufs;
      deliver t (Array.map (fun c -> Word.mask (String.length c)) chunks));
    continue_
  | n when n = Syscall.sys_write ->
    let fd = Word.to_signed (canon_int t ~raws ~syscall ~index:0) in
    let unshared = Kernel.fd_is_unshared k ~fd in
    let bufs =
      if unshared then Array.map (fun (r : Sysabi.raw) -> r.Sysabi.args.(1)) raws
      else canon_ptr t ~raws ~syscall ~index:1
    in
    let lens =
      if unshared then
        Array.map (fun (r : Sysabi.raw) -> Word.to_signed r.Sysabi.args.(2)) raws
      else
        Array.make (Array.length raws) (Word.to_signed (canon_int t ~raws ~syscall ~index:2))
    in
    let chunks =
      Array.mapi
        (fun i buf ->
          try Sysabi.read_bytes t.variants.(i).Image.memory ~addr:buf ~len:lens.(i)
          with Memory.Fault { addr; access } ->
            raise (Marshal_fault { variant = i; fault = Cpu.Segfault { addr; access } }))
        bufs
    in
    if Kernel.fd_is_unshared k ~fd then begin
      trace t ~syscall ~raws "write: unshared file, each variant writes its own copy";
      deliver_same t (Word.of_signed (Kernel.sys_write k ~fd ~data:(Kernel.Per_variant chunks)))
    end
    else begin
      (if not (all_equal chunks) then
         Logs.warn ~src:Nv_util.Logsrc.monitor (fun m ->
             m "output divergence on fd %d" fd));
      check t
        ~fail:(fun () -> Alarm.Output_mismatch { syscall; fd })
        (all_equal chunks);
      Metrics.incr t.output_writes_checked_c;
      trace t ~syscall ~raws
        (Printf.sprintf "write(%d): bytes checked equal, performed once" fd);
      deliver_same t (Word.of_signed (Kernel.sys_write k ~fd ~data:(Kernel.Shared_data chunks.(0))))
    end;
    continue_
  | n when n = Syscall.sys_open ->
    let path = canon_string t ~raws ~syscall ~index:0 in
    let flags = Word.to_signed (canon_int t ~raws ~syscall ~index:1) in
    let note =
      if Kernel.is_unshared k path then
        Printf.sprintf "open(%S): unshared, variant i gets %s-i" path path
      else Printf.sprintf "open(%S): shared descriptor" path
    in
    trace t ~syscall ~raws note;
    deliver_same t (Word.of_signed (Kernel.sys_open k ~path ~flags));
    continue_
  | n when n = Syscall.sys_close ->
    let fd = Word.to_signed (canon_int t ~raws ~syscall ~index:0) in
    deliver_same t (Word.of_signed (Kernel.sys_close k ~fd));
    continue_
  | n when n = Syscall.sys_accept ->
    (* The listening-fd argument is checked across variants like any
       other descriptor argument — a corrupted fd in one variant is a
       divergence, not something to silently ignore. *)
    let listen_fd = Word.to_signed (canon_int t ~raws ~syscall ~index:0) in
    let fd = Kernel.sys_accept k ~fd:listen_fd in
    if fd = Kernel.eagain then begin
      Array.iter (fun v -> Sysabi.retry_syscall v.Image.cpu) t.variants;
      Some Blocked_on_accept
    end
    else begin
      trace t ~syscall ~raws
        (Printf.sprintf "accept(%d) -> fd %d for all variants" listen_fd fd);
      deliver_same t (Word.of_signed fd);
      continue_
    end
  | n when n = Syscall.sys_getuid || n = Syscall.sys_geteuid || n = Syscall.sys_getgid
           || n = Syscall.sys_getegid ->
    let canonical =
      if n = Syscall.sys_getuid then Kernel.sys_getuid k
      else if n = Syscall.sys_geteuid then Kernel.sys_geteuid k
      else if n = Syscall.sys_getgid then Kernel.sys_getgid k
      else Kernel.sys_getegid k
    in
    let per_variant =
      Array.init (Array.length t.variants) (fun i ->
          (uid_spec t i).Reexpression.encode canonical)
    in
    trace t ~syscall ~raws
      (Format.asprintf "%s -> canonical %a, reexpressed per variant" (Syscall.name n)
         Word.pp canonical);
    deliver t per_variant;
    continue_
  | n when n = Syscall.sys_setuid || n = Syscall.sys_seteuid || n = Syscall.sys_setgid
           || n = Syscall.sys_setegid ->
    let canonical = canon_uid t ~raws ~syscall ~index:0 in
    let result =
      if n = Syscall.sys_setuid then Kernel.sys_setuid k ~uid:canonical
      else if n = Syscall.sys_seteuid then Kernel.sys_seteuid k ~uid:canonical
      else if n = Syscall.sys_setgid then Kernel.sys_setgid k ~gid:canonical
      else Kernel.sys_setegid k ~gid:canonical
    in
    trace t ~syscall ~raws
      (Format.asprintf "%s: R_i^-1 applied, canonical %a agreed, performed once"
         (Syscall.name n) Word.pp canonical);
    deliver_same t (Word.of_signed result);
    continue_
  | n when n = Syscall.sys_uid_value ->
    (* Table 2: compare across variants (post-inverse), return the
       passed (still reexpressed) value to each variant. *)
    let canonical = canon_uid t ~raws ~syscall ~index:0 in
    trace t ~syscall ~raws
      (Format.asprintf "uid_value: canonical %a equivalent in all variants" Word.pp
         canonical);
    deliver t (Array.map (fun (r : Sysabi.raw) -> r.Sysabi.args.(0)) raws);
    continue_
  | n when n = Syscall.sys_cond_chk ->
    (* Table 2: condition values are plain booleans, identical in all
       variants or the variants are taking different paths. *)
    let values = Array.map (fun (r : Sysabi.raw) -> r.Sysabi.args.(0)) raws in
    check t ~fail:(fun () -> Alarm.Cond_mismatch { values }) (all_equal values);
    trace t ~syscall ~raws (Printf.sprintf "cond_chk(%d): paths agree" values.(0));
    deliver_same t values.(0);
    continue_
  | n when Syscall.is_detection_call n ->
    (* cc_eq .. cc_geq: both UID arguments are decoded and checked,
       then the comparison is computed once on canonical values. *)
    let a = canon_uid t ~raws ~syscall ~index:0 in
    let b = canon_uid t ~raws ~syscall ~index:1 in
    let result =
      if n = Syscall.sys_cc_eq then a = b
      else if n = Syscall.sys_cc_neq then a <> b
      else if n = Syscall.sys_cc_lt then Word.lt_unsigned a b
      else if n = Syscall.sys_cc_leq then not (Word.lt_unsigned b a)
      else if n = Syscall.sys_cc_gt then Word.lt_unsigned b a
      else not (Word.lt_unsigned a b)
    in
    trace t ~syscall ~raws
      (Format.asprintf "%s(%a, %a) = %b on canonical values" (Syscall.name n) Word.pp a
         Word.pp b result);
    deliver_same t (if result then 1 else 0);
    continue_
  | _ ->
    trace t ~syscall ~raws "unknown syscall: -1 to all variants";
    deliver_same t (Word.of_signed (-1));
    continue_

(* ------------------------------------------------------------------ *)
(* Asynchronous event delivery                                         *)
(* ------------------------------------------------------------------ *)

(* The handler "returns" by jumping to this unmapped, recognizable
   address; the resulting execute fault marks completion. *)
let signal_return_address = 0xFFFFFFF4

let post_signal t ~handler ~mode =
  if t.signal <> None then Error "a signal is already pending"
  else if
    Array.exists
      (fun v -> not (List.mem_assoc handler v.Image.layout.Image.abs_symbols))
      t.variants
  then Error (Printf.sprintf "handler %S is not defined in every variant" handler)
  else begin
    t.signal <-
      Some
        {
          handler;
          mode;
          baselines = Array.map (fun v -> Cpu.instructions_retired v.Image.cpu) t.variants;
          delivered = Array.map (fun _ -> false) t.variants;
        };
    Ok ()
  end

let signal_pending t = t.signal <> None

(* Run the handler to completion in variant [i] as a synchronous
   subroutine, preserving the interrupted context. *)
let deliver_signal t i ~handler =
  let v = t.variants.(i) in
  let cpu = v.Image.cpu in
  let failed detail =
    raise (Alarm_exn (Alarm.Signal_delivery_failed { variant = i; detail }))
  in
  let saved_regs = Array.init 16 (Cpu.reg cpu) in
  let saved_pc = Cpu.pc cpu in
  (match
     let sp = Word.sub (Cpu.reg cpu Cpu.sp_index) 4 in
     Memory.store_word v.Image.memory sp signal_return_address;
     Cpu.set_reg cpu Cpu.sp_index sp;
     Cpu.set_pc cpu (Image.abs_symbol v handler)
   with
  | () -> ()
  | exception Memory.Fault _ -> failed "no stack space for the handler frame"
  | exception Not_found -> failed "handler symbol vanished");
  (match Cpu.run cpu ~fuel:1_000_000 with
  | Cpu.Trapped (Cpu.Fault_trap (Cpu.Segfault { addr; access = Memory.Execute }))
    when addr = signal_return_address ->
    ()
  | Cpu.Trapped Cpu.Syscall_trap -> failed "handler made a system call"
  | Cpu.Trapped trap -> failed (Format.asprintf "handler trapped: %a" Cpu.pp_trap trap)
  | Cpu.Out_of_fuel -> failed "handler did not terminate");
  Array.iteri (fun r value -> Cpu.set_reg cpu r value) saved_regs;
  Cpu.set_pc cpu saved_pc

let clear_if_fully_delivered t =
  match t.signal with
  | Some s when Array.for_all Fun.id s.delivered -> t.signal <- None
  | Some _ | None -> ()

(* Run variant [i] to its next trap, honouring a pending Immediate
   signal: once the variant crosses its delivery threshold, the handler
   is injected and execution continues. Domain-safe per the discipline
   above: reads [t.signal] (stable across a quantum — only the
   coordinator writes it, between joins), writes only variant-[i]
   state and the variant's own [delivered.(i)] slot. *)
let run_variant_to_trap t i ~fuel =
  let cpu = t.variants.(i).Image.cpu in
  let rec go fuel =
    if fuel <= 0 then Cpu.Out_of_fuel
    else begin
      match t.signal with
      | Some ({ mode = Immediate { after_instructions }; _ } as s)
        when not s.delivered.(i) -> (
        let due = s.baselines.(i) + after_instructions - Cpu.instructions_retired cpu in
        if due <= 0 then begin
          deliver_signal t i ~handler:s.handler;
          s.delivered.(i) <- true;
          go fuel
        end
        else begin
          match Cpu.run cpu ~fuel:(min due fuel) with
          | Cpu.Out_of_fuel when due <= fuel ->
            (* Reached the delivery point without trapping. *)
            deliver_signal t i ~handler:s.handler;
            s.delivered.(i) <- true;
            go (fuel - due)
          | outcome -> outcome
        end)
      | Some _ | None -> Cpu.run cpu ~fuel
    end
  in
  go fuel

(* A quantum's result, with exceptions reified so that the parallel
   path can join every variant and then fail deterministically. *)
type quantum =
  | Q_trap of Cpu.trap
  | Q_fuel
  | Q_raised of exn * Printexc.raw_backtrace

let run_variant_quantum t i ~fuel =
  match run_variant_to_trap t i ~fuel with
  | Cpu.Trapped trap -> Q_trap trap
  | Cpu.Out_of_fuel -> Q_fuel
  | exception e -> Q_raised (e, Printexc.get_raw_backtrace ())

(* ------------------------------------------------------------------ *)
(* Lockstep execution                                                  *)
(* ------------------------------------------------------------------ *)

(* Every alarm leaving [run] passes through here so the per-reason
   alarm counters cover all production sites. *)
let alarmed t reason =
  Metrics.incr (Metrics.counter t.alarms_scope (Alarm.short_label reason));
  Logs.info ~src:Nv_util.Logsrc.monitor (fun m -> m "alarm: %a" Alarm.pp reason);
  Alarm reason

let run ?(fuel = 50_000_000) t =
  let deadline = instructions_retired t + fuel in
  let indices = Array.init (Array.length t.variants) Fun.id in
  (* [now] is the retired-instruction total entering the iteration; it
     is recomputed exactly once per iteration (after the variants run)
     and threaded through, instead of folding over the variants both
     here and in [dispatch]. *)
  let rec loop now =
    let remaining = deadline - now in
    if remaining <= 0 then Out_of_fuel
    else begin
      (* Snapshot the Immediate-delivery flags so deliveries performed
         inside the quanta can be counted after the join. *)
      let delivered_before =
        match t.signal with Some s -> Array.copy s.delivered | None -> [||]
      in
      (* Run each variant to its next trap — on worker domains when a
         pool is attached, inline otherwise. Both paths run every
         variant's quantum to completion (even when one raises), so
         the machine state at the join is mode-independent. *)
      let quanta =
        match t.pool with
        | None -> Array.map (fun i -> run_variant_quantum t i ~fuel:remaining) indices
        | Some pool ->
          Dompool.map_array pool
            (fun i -> run_variant_quantum t i ~fuel:remaining)
            indices
      in
      (* Coordinator-side signal bookkeeping for this quantum. *)
      (match t.signal with
      | Some s ->
        Array.iteri
          (fun i delivered ->
            if delivered && not delivered_before.(i) then
              Metrics.incr t.signals_delivered_c)
          s.delivered;
        clear_if_fully_delivered t
      | None -> ());
      (* Deterministic failure order: the lowest variant index wins,
         regardless of which domain finished first. *)
      let first_raised = ref None in
      Array.iter
        (fun q ->
          match (q, !first_raised) with
          | (Q_raised (e, bt), None) -> first_raised := Some (e, bt)
          | _ -> ())
        quanta;
      match !first_raised with
      | Some (Alarm_exn reason, _) -> alarmed t reason
      | Some (e, bt) -> Printexc.raise_with_backtrace e bt
      | None ->
      if Array.exists (function Q_fuel -> true | _ -> false) quanta then Out_of_fuel
      else begin
        let traps =
          Array.map (function Q_trap trap -> trap | Q_fuel | Q_raised _ -> assert false) quanta
        in
        (* Faults and halts are alarm states. *)
        let alarm = ref None in
        Array.iteri
          (fun i trap ->
            if !alarm = None then begin
              match trap with
              | Cpu.Fault_trap fault ->
                alarm := Some (Alarm.Variant_fault { variant = i; fault })
              | Cpu.Halt_trap -> alarm := Some (Alarm.Variant_halted { variant = i })
              | Cpu.Syscall_trap -> ()
            end)
          traps;
        match !alarm with
        | Some reason -> alarmed t reason
        | None -> (
          Metrics.incr t.rendezvous_c;
          (* Synchronized signal delivery: every variant is parked at an
             equivalent rendezvous point (trapped, pc already past the
             syscall instruction, trap context preserved by the
             synchronous handler run), so handlers execute in lockstep
             and the rendezvous then proceeds normally. *)
          let delivery =
            match t.signal with
            | Some ({ mode = At_rendezvous; _ } as s) -> (
              try
                Array.iteri
                  (fun i _ ->
                    if not s.delivered.(i) then begin
                      deliver_signal t i ~handler:s.handler;
                      s.delivered.(i) <- true;
                      Metrics.incr t.signals_delivered_c
                    end)
                  t.variants;
                clear_if_fully_delivered t;
                Ok ()
              with Alarm_exn reason -> Error reason)
            | Some _ | None -> Ok ()
          in
          match delivery with
          | Error reason -> alarmed t reason
          | Ok () ->
          let raws = Array.map (fun v -> Sysabi.of_cpu v.Image.cpu) t.variants in
          let numbers = Array.map (fun (r : Sysabi.raw) -> r.Sysabi.number) raws in
          Metrics.incr t.checks_performed;
          if not (all_equal numbers) then begin
            Metrics.incr t.checks_failed;
            alarmed t (Alarm.Syscall_mismatch { numbers })
          end
          else begin
            let now = instructions_retired t in
            match dispatch t ~now_instr:now raws with
            | None -> loop now
            | Some outcome -> outcome
            | exception Alarm_exn reason -> alarmed t reason
            | exception Marshal_fault { variant; fault } ->
              alarmed t (Alarm.Variant_fault { variant; fault })
          end)
      end
    end
  in
  loop (instructions_retired t)

(* ------------------------------------------------------------------ *)
(* Checkpointing                                                       *)
(* ------------------------------------------------------------------ *)

type snapshot = {
  snap_images : Image.snapshot array;
  snap_kernel : Kernel.snapshot;
}

let snapshot t =
  {
    snap_images = Array.map Image.snapshot t.variants;
    snap_kernel = Kernel.snapshot t.kernel;
  }

let restore t snap =
  Array.iteri (fun i s -> Image.restore t.variants.(i) s) snap.snap_images;
  let dropped = Kernel.restore t.kernel snap.snap_kernel in
  (* A pending signal references pre-rollback execution baselines; it
     cannot survive the rollback. *)
  t.signal <- None;
  (* The retired-instruction totals just jumped backwards with the CPU
     restore; re-anchor the latency baseline so the next rendezvous
     does not observe a negative interval. *)
  t.last_rendezvous_instr <- instructions_retired t;
  dropped
