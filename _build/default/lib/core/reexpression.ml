module Word = Nv_vm.Word

type t = { name : string; encode : Word.t -> Word.t; decode : Word.t -> Word.t }

let identity = { name = "identity"; encode = Fun.id; decode = Fun.id }

let xor_key ~key =
  {
    name = Printf.sprintf "xor 0x%08X" key;
    encode = (fun u -> Word.logxor u key);
    decode = (fun u -> Word.logxor u key);
  }

let paper_uid_key = 0x7FFFFFFF

let uid_for_variant index = if index = 0 then identity else xor_key ~key:paper_uid_key

let inverse_holds t x = t.decode (t.encode x) = x

let disjoint_at a b x = a.decode x <> b.decode x

type table1_row = {
  variation : string;
  target_type : string;
  r0 : string;
  r1 : string;
  r0_inv : string;
  r1_inv : string;
}

let table1 =
  [
    {
      variation = "Address Space Partitioning [16]";
      target_type = "Address";
      r0 = "R0(a) = a";
      r1 = "R1(a) = a + 0x80000000";
      r0_inv = "R0^-1(a) = a";
      r1_inv = "R1^-1(a) = a - 0x80000000";
    };
    {
      variation = "Extended Address Space Partitioning [9]";
      target_type = "Address";
      r0 = "R0(a) = a";
      r1 = "R1(a) = a + 0x80000000 + offset";
      r0_inv = "R0^-1(a) = a";
      r1_inv = "R1^-1(a) = a - 0x80000000 - offset";
    };
    {
      variation = "Instruction Set Tagging [16]";
      target_type = "Instruction";
      r0 = "R0(inst) = 0 || inst";
      r1 = "R1(inst) = 1 || inst";
      r0_inv = "R0^-1(0 || inst) = inst";
      r1_inv = "R1^-1(1 || inst) = inst";
    };
    {
      variation = "UID Variation (this paper)";
      target_type = "UID";
      r0 = "R0(u) = u";
      r1 = "R1(u) = u ^ 0x7FFFFFFF";
      r0_inv = "R0^-1(u) = u";
      r1_inv = "R1^-1(u) = u ^ 0x7FFFFFFF";
    };
  ]
