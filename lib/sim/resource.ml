module Metrics = Nv_util.Metrics

type job = { duration : float; complete : unit -> unit; mutable started_at : float }

type t = {
  engine : Engine.t;
  name : string;
  capacity : int;
  mutable busy : int;
  mutable completed_busy : float;  (* slot-seconds of finished service *)
  mutable inflight_started_sum : float;  (* sum of start times of in-service jobs *)
  waiting : job Queue.t;
  jobs_completed : Metrics.counter;
  busy_time_g : Metrics.gauge;
  queue_high_water : Metrics.gauge;
}

let create engine ~name ~capacity =
  if capacity < 1 then invalid_arg "Resource.create: capacity must be >= 1";
  let scope = Metrics.sub (Metrics.scope (Engine.metrics engine) "sim.resource") name in
  {
    engine;
    name;
    capacity;
    busy = 0;
    completed_busy = 0.0;
    inflight_started_sum = 0.0;
    waiting = Queue.create ();
    jobs_completed = Metrics.counter scope "jobs_completed";
    busy_time_g = Metrics.gauge scope "busy_time_s";
    queue_high_water = Metrics.gauge scope "queue_high_water";
  }

let name t = t.name

(* Busy time is charged as it is delivered, not promised: finished jobs
   contribute their full duration, in-flight jobs only the share elapsed
   so far. Charging the full duration at start (the old behaviour) let
   [utilization] exceed 1.0 whenever jobs were still in flight at the
   reading instant, e.g. at the simulation horizon. *)
let busy_time t =
  t.completed_busy
  +. ((float_of_int t.busy *. Engine.now t.engine) -. t.inflight_started_sum)

let rec start t job =
  t.busy <- t.busy + 1;
  job.started_at <- Engine.now t.engine;
  t.inflight_started_sum <- t.inflight_started_sum +. job.started_at;
  Engine.schedule_after t.engine ~delay:job.duration (fun () -> finish t job)

and finish t job =
  t.busy <- t.busy - 1;
  t.inflight_started_sum <- t.inflight_started_sum -. job.started_at;
  t.completed_busy <- t.completed_busy +. job.duration;
  Metrics.set_gauge t.busy_time_g (busy_time t);
  Metrics.incr t.jobs_completed;
  job.complete ();
  (* The completion callback may itself have submitted work; only pull
     from the queue if a slot is still free afterwards. *)
  if t.busy < t.capacity && not (Queue.is_empty t.waiting) then
    start t (Queue.pop t.waiting)

let serve t ~duration complete =
  if duration < 0.0 then invalid_arg "Resource.serve: negative duration";
  let job = { duration; complete; started_at = 0.0 } in
  if t.busy < t.capacity then start t job
  else begin
    Queue.push job t.waiting;
    Metrics.max_gauge t.queue_high_water (float_of_int (Queue.length t.waiting))
  end

let busy t = t.busy

let queue_length t = Queue.length t.waiting

let utilization t =
  let elapsed = Engine.now t.engine in
  if elapsed <= 0.0 then 0.0
  else busy_time t /. (float_of_int t.capacity *. elapsed)
