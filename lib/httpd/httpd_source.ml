let url_buffer_size = 64

let token_buffer_size = 32

let worker_user = "www"

(* The server proper. Note the declaration order of [urlbuf] and
   [worker_uid]: the code generator lays globals out in declaration
   order, so the UID sits directly after the overflowable buffer. *)
let body ~log_uid =
  let error_log_stmt =
    if log_uid then
      (* The Section 4 pitfall: a UID value flows into shared log
         output. The transformer's scrubbing pass removes it. *)
      {|
    logpos = log_append(logbuf, logpos, " euid=");
    char uidtext[16];
    itoa((int)geteuid(), uidtext);
    logpos = log_append(logbuf, logpos, uidtext);|}
    else ""
  in
  Printf.sprintf
    {|
// ---- minihttpd: static file server with privilege separation ----

char reqbuf[1024];      // raw request bytes
char method[16];
char urlbuf[64];        // VULNERABLE: unbounded strcpy of the URL
uid_t worker_uid = 0;   // sits right after urlbuf; resolved at startup
char pathbuf[256];
char filebuf[4096];
char logbuf[256];
int request_count = 0;

// Advisory auth check: copies the query-string token into a small
// stack buffer. VULNERABLE: classic stack smash.
int check_auth(char *url) {
  int q = find_char(url, 0, '?');
  if (q < 0) { return 1; }
  char token[32];
  strcpy(token, &url[q + 1]);
  if (strcmp(token, "letmein") == 0) { return 1; }
  return 1;
}

int log_append(char *buf, int pos, char *s) {
  int i = 0;
  while (s[i] != '\0' && pos < 254) {
    buf[pos] = s[i];
    pos = pos + 1;
    i = i + 1;
  }
  buf[pos] = '\0';
  return pos;
}

int log_request(char *url, int status) {
  int logpos = 0;
  logpos = log_append(logbuf, logpos, "GET ");
  logpos = log_append(logbuf, logpos, url);
  logpos = log_append(logbuf, logpos, " ");
  char statustext[16];
  itoa(status, statustext);
  logpos = log_append(logbuf, logpos, statustext);%s
  logpos = log_append(logbuf, logpos, "\n");
  int lf = sys_open("/var/log/httpd.log", 2);
  if (lf < 0) { return 0; }
  sys_write(lf, logbuf, logpos);
  sys_close(lf);
  return 1;
}

int parse_request(void) {
  int sp1 = find_char(reqbuf, 0, ' ');
  if (sp1 < 0 || sp1 > 14) { return 0; }
  int i = 0;
  while (i < sp1) {
    method[i] = reqbuf[i];
    i = i + 1;
  }
  method[i] = '\0';
  int sp2 = find_char(reqbuf, sp1 + 1, ' ');
  if (sp2 < 0) { return 0; }
  reqbuf[sp2] = '\0';
  strcpy(urlbuf, &reqbuf[sp1 + 1]);   // overflow: no bounds check
  return 1;
}

int send_status(int fd, char *status_line, char *connection_body, int bodylen) {
  write_str(fd, "HTTP/1.0 ");
  write_str(fd, status_line);
  write_str(fd, "\r\nContent-Length: ");
  write_int(fd, bodylen);
  write_str(fd, "\r\n\r\n");
  sys_write(fd, connection_body, bodylen);
  return 1;
}

int respond_error(int fd, char *status_line, char *message) {
  send_status(fd, status_line, message, strlen(message));
  return 1;
}

int serve_file(int fd, char *url) {
  strcpy(pathbuf, "/var/www");
  if (url[0] == '/' && url[1] == '\0') {
    strcpy(&pathbuf[8], "/index.html");
  } else {
    // strip any query string before the filesystem lookup
    int q = find_char(url, 0, '?');
    if (q >= 0) { url[q] = '\0'; }
    strcpy(&pathbuf[8], url);
  }
  int f = sys_open(pathbuf, 0);
  if (f < 0) {
    respond_error(fd, "404 Not Found", "not found\n");
    return 404;
  }
  int n = sys_read(f, filebuf, 4095);
  if (n < 0) { n = 0; }
  write_str(fd, "HTTP/1.0 200 OK\r\nContent-Length: ");
  write_int(fd, n);
  write_str(fd, "\r\n\r\n");
  sys_write(fd, filebuf, n);
  // stream the remainder for files larger than the buffer
  int more = sys_read(f, filebuf, 4095);
  while (more > 0) {
    sys_write(fd, filebuf, more);
    more = sys_read(f, filebuf, 4095);
  }
  sys_close(f);
  return 200;
}

int handle(int fd) {
  int n = sys_read(fd, reqbuf, 1023);
  if (n < 0) { n = 0; }
  reqbuf[n] = '\0';
  if (!parse_request()) {
    respond_error(fd, "400 Bad Request", "bad request\n");
    return 0;
  }
  if (strcmp(method, "GET") != 0) {
    respond_error(fd, "405 Method Not Allowed", "only GET\n");
    return 0;
  }
  check_auth(urlbuf);
  // Per-request sanity check: we must still be root before the
  // privilege dance (one UID comparison per request, as in the
  // paper's transformed Apache).
  if (geteuid() != 0) {
    respond_error(fd, "500 Internal Server Error", "lost root\n");
    return 0;
  }
  // Defensive check: the worker identity must have resolved at
  // startup (the transformer turns this into one cc_eq system call
  // per request, the paper's Configuration 2 overhead).
  if (worker_uid == (uid_t)(-1)) {
    respond_error(fd, "500 Internal Server Error", "no worker identity\n");
    return 0;
  }
  // Drop privileges for the filesystem work, then regain root.
  seteuid(worker_uid);
  int status = serve_file(fd, urlbuf);
  seteuid(0);
  log_request(urlbuf, status);
  request_count = request_count + 1;
  return 1;
}

int main(void) {
  worker_uid = getpwnam_uid("www");
  if (worker_uid == (uid_t)(-1)) { return 1; }
  if (worker_uid == 0) { return 2; }
  while (1) {
    int fd = sys_accept(3);
    if (fd < 0) { return 3; }
    handle(fd);
    sys_close(fd);
  }
  return 0;
}
|}
    error_log_stmt

let source ?(log_uid = true) () = Nv_minic.Runtime.with_runtime (body ~log_uid)
