type reason =
  | Variant_fault of { variant : int; fault : Nv_vm.Cpu.fault }
  | Variant_halted of { variant : int }
  | Syscall_mismatch of { numbers : int array }
  | Arg_mismatch of { syscall : int; arg_index : int; values : int array }
  | String_mismatch of {
      syscall : int;
      arg_index : int;
      lengths : int array;
      digests : int array;
    }
  | Output_mismatch of { syscall : int; fd : int }
  | Cond_mismatch of { values : int array }
  | Exit_mismatch of { statuses : int array }
  | Signal_delivery_failed of { variant : int; detail : string }

let pp_array pp_elem ppf arr =
  Format.fprintf ppf "[%s]"
    (String.concat "; " (Array.to_list (Array.map (Format.asprintf "%a" pp_elem) arr)))

let pp_int ppf = Format.fprintf ppf "%d"

let pp_hex ppf = Format.fprintf ppf "0x%08X"

let pp ppf = function
  | Variant_fault { variant; fault } ->
    Format.fprintf ppf "variant %d entered an alarm state: %a" variant Nv_vm.Cpu.pp_fault
      fault
  | Variant_halted { variant } ->
    Format.fprintf ppf "variant %d halted outside the kernel interface" variant
  | Syscall_mismatch { numbers } ->
    Format.fprintf ppf "variants made different system calls: %s"
      (String.concat " vs "
         (Array.to_list (Array.map Nv_os.Syscall.name numbers)))
  | Arg_mismatch { syscall; arg_index; values } ->
    Format.fprintf ppf "%s: canonical argument %d differs across variants: %a"
      (Nv_os.Syscall.name syscall) arg_index (pp_array pp_hex) values
  | String_mismatch { syscall; arg_index; lengths; digests } ->
    Format.fprintf ppf
      "%s: string argument %d differs across variants: lengths %a, fnv1a %a"
      (Nv_os.Syscall.name syscall) arg_index (pp_array pp_int) lengths
      (pp_array pp_hex) digests
  | Output_mismatch { syscall; fd } ->
    Format.fprintf ppf "%s: variants wrote different bytes to shared fd %d"
      (Nv_os.Syscall.name syscall) fd
  | Cond_mismatch { values } ->
    Format.fprintf ppf "cond_chk: variants took different paths: %a" (pp_array pp_int)
      values
  | Exit_mismatch { statuses } ->
    Format.fprintf ppf "variants exited with different statuses: %a" (pp_array pp_int)
      statuses
  | Signal_delivery_failed { variant; detail } ->
    Format.fprintf ppf "signal delivery failed in variant %d: %s" variant detail

let to_string reason = Format.asprintf "%a" pp reason

let short_label = function
  | Variant_fault _ -> "fault"
  | Variant_halted _ -> "halt"
  | Syscall_mismatch _ -> "syscall"
  | Arg_mismatch _ -> "arg"
  | String_mismatch _ -> "string"
  | Output_mismatch _ -> "output"
  | Cond_mismatch _ -> "cond"
  | Exit_mismatch _ -> "exit"
  | Signal_delivery_failed _ -> "signal"
