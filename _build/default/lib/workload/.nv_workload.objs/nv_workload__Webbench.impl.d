lib/workload/webbench.ml: Array Cost_model Format Measure Nv_sim Nv_util
