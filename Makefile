.PHONY: build test bench clean

build:
	dune build @all

test:
	dune runtest

# Writes BENCH_results.json in the working directory.
bench:
	dune exec bench/main.exe -- bench

clean:
	dune clean
