bin/nvexec.mli:
