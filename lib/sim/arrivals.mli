(** Open-loop arrival-time generators for fleet load simulation.

    Unlike the closed-loop WebBench clients (which wait for a response
    before issuing the next request), an open-loop source emits requests
    at times drawn from an arrival process regardless of how the system
    is keeping up — the regime where queueing delay and tail latency
    actually show. Three processes are provided:

    - {b Poisson}: exponential inter-arrival gaps at a constant rate.
    - {b Bursty}: Poisson-arriving bursts; each burst carries a
      geometrically distributed number of requests separated by short
      exponential intra-burst gaps. Long-run rate matches [rate].
    - {b Diurnal}: a nonhomogeneous Poisson process whose intensity
      follows a sinusoidal day/night cycle around [rate], sampled by
      Lewis-Shedler thinning.

    All generators are driven by {!Nv_util.Prng}; equal seeds yield
    bit-identical arrival sequences. *)

type model =
  | Poisson of { rate : float }
      (** [rate] arrivals per second, exponential gaps. *)
  | Bursty of { rate : float; burst_mean : float; intra_gap_s : float }
      (** Long-run [rate] arrivals per second delivered in bursts of
          geometric mean size [burst_mean], [intra_gap_s] mean spacing
          inside a burst. *)
  | Diurnal of { rate : float; amplitude : float; period_s : float }
      (** Intensity [rate * (1 + amplitude * sin (2 pi t / period_s))];
          [amplitude] in [\[0,1\]]. *)

type t

val create : seed:int -> model -> t
(** Raises [Invalid_argument] on a non-positive rate, a [burst_mean]
    below 1, a negative [intra_gap_s], an [amplitude] outside [\[0,1\]],
    or a non-positive [period_s]. *)

val model : t -> model

val model_name : model -> string
(** ["poisson"], ["bursty"], or ["diurnal"]. *)

val next : t -> now:float -> float
(** Absolute time of the next arrival strictly after [now]. Successive
    calls with the returned times advance the process deterministically. *)
