(** The [/etc/passwd] and [/etc/group] file formats, and generation of
    the diversified (reexpressed) copies used as unshared files.

    Section 3.4 of the paper keeps one reexpressed copy of each trusted
    UID-bearing file per variant ([/etc/passwd-0], [/etc/passwd-1]...)
    rather than reexpressing on the read path, which would hand the
    attacker a reusable transformation oracle. *)

type entry = {
  name : string;
  uid : Cred.uid;
  gid : Cred.gid;
  gecos : string;
  home : string;
  shell : string;
}

type group_entry = { group_name : string; gid : Cred.gid; members : string list }

val parse : string -> (entry list, string) result
(** Parse passwd-format text ([name:x:uid:gid:gecos:home:shell] lines;
    blank lines ignored). The error carries the first offending line. *)

val serialize : entry list -> string

val parse_group : string -> (group_entry list, string) result
(** [name:x:gid:member,member...] lines. *)

val serialize_group : group_entry list -> string

val lookup : entry list -> string -> entry option
(** Find an entry by user name (linear scan; the reference semantics
    for {!find}). *)

val lookup_uid : entry list -> Cred.uid -> entry option

(** {1 Indexed lookup}

    O(1)/O(log n) lookups over large populations: a hashtable by name
    and a uid-sorted array searched by bisection. Agrees with
    {!lookup}/{!lookup_uid} on any entry list, including ones with
    duplicate names or uids (first entry in file order wins). *)

type index

val index : entry list -> index

val find : index -> string -> entry option

val find_uid : index -> Cred.uid -> entry option

val index_size : index -> int
(** Distinct uids in the index. *)

val comparisons : index -> int
(** Cumulative key comparisons spent by {!find}/{!find_uid} since the
    index was built — lets tests pin that per-lookup work stays
    O(log n) rather than O(n). *)

val generate : ?seed:int -> int -> entry list
(** [generate n] is a synthetic population of [n] users with distinct
    names and uids (starting at 10000, above {!sample}), emitted in a
    seed-determined shuffle. Raises [Invalid_argument] on a negative
    [n]. *)

val reexpress : f:(Cred.uid -> Cred.uid) -> string -> (string, string) result
(** Apply a UID reexpression function to every UID and GID field of a
    passwd-format file, leaving everything else byte-identical. This is
    how the per-variant unshared copies are produced. *)

val reexpress_group : f:(Cred.uid -> Cred.uid) -> string -> (string, string) result

val sample : entry list
(** A small realistic passwd database: root, daemon, www (the server
    worker), and two ordinary users. Used by tests, examples and the
    case study. *)

val sample_groups : group_entry list
