lib/minic/codegen.ml: Array Ast Buffer Char Format Hashtbl List Nv_os Nv_vm Option Parser Pretty Printf String Tast Typecheck
