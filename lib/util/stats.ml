type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  p50 : float;
  p90 : float;
  p99 : float;
  max : float;
}

let mean xs =
  let n = Array.length xs in
  if n = 0 then 0.0 else Array.fold_left ( +. ) 0.0 xs /. float_of_int n

let stddev xs =
  let n = Array.length xs in
  if n < 2 then 0.0
  else begin
    let m = mean xs in
    let acc = Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 xs in
    sqrt (acc /. float_of_int (n - 1))
  end

(* NaN would silently poison a sort: [Float.compare] totally orders it,
   but any order statistic drawn from data containing NaN is garbage, so
   reject it up front rather than return a misleading number. *)
let reject_nan ~what xs =
  Array.iter (fun x -> if Float.is_nan x then invalid_arg (what ^ ": NaN in input")) xs

let sorted_copy xs =
  let sorted = Array.copy xs in
  Array.sort Float.compare sorted;
  sorted

(* Order statistic on an already-sorted array: linear interpolation at
   rank p/100 * (n-1). *)
let percentile_of_sorted sorted p =
  let n = Array.length sorted in
  let rank = p /. 100.0 *. float_of_int (n - 1) in
  let lo = int_of_float (floor rank) in
  let hi = int_of_float (ceil rank) in
  if lo = hi then sorted.(lo)
  else begin
    let frac = rank -. float_of_int lo in
    (sorted.(lo) *. (1.0 -. frac)) +. (sorted.(hi) *. frac)
  end

let percentile xs p =
  if Array.length xs = 0 then invalid_arg "Stats.percentile: empty array";
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p out of range";
  reject_nan ~what:"Stats.percentile" xs;
  percentile_of_sorted (sorted_copy xs) p

let summarize xs =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.summarize: empty array";
  reject_nan ~what:"Stats.summarize" xs;
  let sorted = sorted_copy xs in
  {
    n;
    mean = mean xs;
    stddev = stddev xs;
    min = sorted.(0);
    p50 = percentile_of_sorted sorted 50.0;
    p90 = percentile_of_sorted sorted 90.0;
    p99 = percentile_of_sorted sorted 99.0;
    max = sorted.(n - 1);
  }

let pp_summary ppf s =
  Format.fprintf ppf
    "n=%d mean=%.3f sd=%.3f min=%.3f p50=%.3f p90=%.3f p99=%.3f max=%.3f"
    s.n s.mean s.stddev s.min s.p50 s.p90 s.p99 s.max
