(** Variation configurations: how each variant of an N-variant system
    is diversified.

    A {!variant_spec} fixes, for one variant, its load base (the
    address-space-partitioning dimension), its instruction tag (the
    instruction-set-tagging dimension) and its UID reexpression function
    (this paper's data-diversity dimension). A {!t} bundles the variant
    specs with the set of unshared trusted files. The four predefined
    configurations correspond to the evaluation's Table 3 columns and
    the attack-matrix experiments. *)

type variant_spec = {
  index : int;
  base : int;  (** segment load base *)
  tag : int;  (** expected instruction tag *)
  uid : Reexpression.t;
}

type t = {
  name : string;
  variants : variant_spec array;
  unshared_paths : string list;
      (** trusted files opened per-variant as [path-<i>] *)
}

val count : t -> int

val low_base : int
(** 0x00010000 — variant 0's load base. *)

val high_base : int
(** 0x80010000 — variant 1's base under address partitioning: the high
    address bit is the partition bit. *)

val single : t
(** One variant, no diversity: the unprotected baseline
    (Configurations 1 and 2 of Table 3 when paired with the plain
    runner semantics). *)

val replicated : t
(** Two identical variants (same base, no data diversity): isolates the
    cost of redundant execution alone. *)

val address_partition : t
(** Two variants at disjoint bases (Figure 1; Configuration 3 of
    Table 3). *)

val extended_partition : ?offset:int -> unit -> t
(** Bruschi et al.'s extension (Table 1 row 2): variant 1 is loaded at
    [high_base + offset] (default offset 0x4240), so corresponding
    absolute addresses differ in their {e low} bytes too. This makes
    partial (byte-granularity) overwrites of stored addresses
    detectable with high probability, where plain partitioning only
    breaks attacks that inject complete addresses (Section 2.3's
    discussion). Raises [Invalid_argument] unless [offset] is a
    multiple of the word size (stack alignment must agree across
    variants for pointer canonicalization to hold). *)

val instruction_tagging : t
(** Two variants with distinct instruction tags. *)

val uid_diversity : t
(** The paper's UID variation (Configuration 4): address partitioning
    {e plus} UID reexpression in variant 1 {e plus} unshared
    [/etc/passwd] and [/etc/group]. Composed exactly as in the paper,
    where Configuration 4 is Configuration 3 with the UID variation
    added. *)

val full_diversity : t
(** Composition of all three dimensions (the Section 7 future-work
    direction): address partitioning + instruction tagging + UID
    reexpression + unshared files, in two variants. *)

val uid_diversity_n : int -> t
(** An [n]-variant UID deployment: variant 0 canonical, variants
    [1..n-1] at staggered bases with the XOR reexpression. Pairwise
    disjointness holds for every pair involving variant 0 (the paper
    only builds two variants; this generalization keeps its argument
    for attacks that must fool variant 0 and any other). Raises
    [Invalid_argument] for [n < 1]. *)

val pp : Format.formatter -> t -> unit
