(* Performance-PR guarantees: the execution tiers above the reference
   decoder — the predecoded icache and the basic-block compiler — are
   semantically invisible.

   - A randomized differential test runs generated programs (including
     self-modifying stores into executed code and wrongly-tagged
     injected words) on the cached and reference interpreters in
     lockstep and asserts identical registers, traps, retired counts,
     and memory contents.
   - A three-way sliced-run differential drives the same generated
     programs through [Cpu.run] under all three engines with randomized
     fuel slices, so block boundaries, mid-block fuel exhaustion and
     mid-block faults are all crossed and compared state-for-state.
   - Explicit self-modifying-code tests prove precise invalidation on
     guest and host stores, and that injected code with a wrong
     instruction tag still faults — under every engine.
   - qcheck properties pin the block registry's invalidation contract
     (a store intersecting a registered span flips its validity cell)
     and the sliced-run equivalence.
   - A pinned regression asserts the bench report's demand/monitor
     counters are byte-identical to the committed BENCH_results.json
     baseline. *)

open Nv_vm
module Prng = Nv_util.Prng

(* ------------------------------------------------------------------ *)
(* Differential: cached vs reference interpreter                       *)
(* ------------------------------------------------------------------ *)

let base = 0x10000

let seg_size = 0x4000

let code_len = 48 (* instructions *)

let data_base = base + (code_len * Isa.instr_size)

let data_size = 0x1000

let gen_operand prng =
  if Prng.bool prng then Isa.Reg (Prng.int prng 8)
  else Isa.Imm (1 + Prng.int prng 64)

let binops =
  [| Isa.Add; Isa.Sub; Isa.Mul; Isa.Div; Isa.Mod; Isa.And; Isa.Or; Isa.Xor;
     Isa.Shl; Isa.Shr; Isa.Sar |]

let conds =
  [| Isa.Eq; Isa.Ne; Isa.Lt; Isa.Le; Isa.Gt; Isa.Ge; Isa.Ltu; Isa.Leu; Isa.Gtu;
     Isa.Geu |]

(* Register conventions of the generated programs: r0-r7 scratch
   values, r8/r9 pointers into the data region, r10 a pointer into the
   code region (the self-modifying-store target), r13 the stack
   pointer. *)
let gen_instr prng =
  let r () = Prng.int prng 8 in
  let data_reg () = 8 + Prng.int prng 2 in
  let small_off () = Prng.int prng 64 in
  let code_target () = base + (Isa.instr_size * Prng.int prng code_len) in
  match Prng.int prng 100 with
  | n when n < 18 -> Isa.Mov (r (), Isa.Imm (Prng.int prng 256))
  | n when n < 24 ->
    Isa.Mov (data_reg (), Isa.Imm (data_base + Prng.int prng (data_size - 128)))
  | n when n < 28 ->
    (* Re-aim the self-modifying pointer at some instruction slot. *)
    Isa.Mov (10, Isa.Imm (code_target ()))
  | n when n < 44 -> Isa.Binop (Prng.pick prng binops, r (), r (), gen_operand prng)
  | n when n < 50 -> Isa.Setcc (Prng.pick prng conds, r (), r (), gen_operand prng)
  | n when n < 58 -> Isa.Load (r (), data_reg (), small_off ())
  | n when n < 66 -> Isa.Store (data_reg (), small_off (), r ())
  | n when n < 70 -> Isa.Loadb (r (), data_reg (), small_off ())
  | n when n < 74 -> Isa.Storeb (data_reg (), small_off (), r ())
  | n when n < 80 -> Isa.Br (Prng.pick prng conds, r (), r (), code_target ())
  | n when n < 83 -> Isa.Jmp (code_target ())
  | n when n < 87 -> Isa.Push (r ())
  | n when n < 90 -> Isa.Pop (r ())
  | n when n < 94 ->
    (* Self-modifying store into the code region via r10. *)
    Isa.Store (10, 0, r ())
  | n when n < 96 -> Isa.Call (code_target ())
  | n when n < 97 -> Isa.Ret
  | n when n < 98 -> Isa.Jmpr (r ())
  | _ -> Isa.Syscall

let build_cpu ~engine program =
  let memory = Memory.create ~base ~size:seg_size in
  Array.iteri
    (fun i instr ->
      Memory.store_bytes memory
        ~addr:(base + (i * Isa.instr_size))
        (Isa.encode ~tag:0 instr))
    program;
  Memory.set_engine memory engine;
  let cpu = Cpu.create memory ~pc:base ~sp:(base + seg_size) in
  Cpu.set_reg cpu 8 (data_base + 64);
  Cpu.set_reg cpu 9 (data_base + 512);
  Cpu.set_reg cpu 10 (base + (8 * Isa.instr_size));
  (cpu, memory)

let trap_to_string = function
  | None -> "running"
  | Some trap -> Format.asprintf "%a" Cpu.pp_trap trap

let check_lockstep_state ~seed ~step cached reference =
  Alcotest.(check int)
    (Printf.sprintf "seed %d step %d: pc" seed step)
    (Cpu.pc reference) (Cpu.pc cached);
  for r = 0 to 15 do
    Alcotest.(check int)
      (Printf.sprintf "seed %d step %d: r%d" seed step r)
      (Cpu.reg reference r) (Cpu.reg cached r)
  done;
  Alcotest.(check int)
    (Printf.sprintf "seed %d step %d: retired" seed step)
    (Cpu.instructions_retired reference)
    (Cpu.instructions_retired cached)

let run_differential ~seed ~steps =
  let prng = Prng.create ~seed in
  let program = Array.init code_len (fun _ -> gen_instr prng) in
  let cached_cpu, cached_mem = build_cpu ~engine:Memory.Icache program in
  let ref_cpu, ref_mem = build_cpu ~engine:Memory.Reference program in
  let rec go step =
    if step < steps then begin
      let ct = Cpu.step cached_cpu in
      let rt = Cpu.step ref_cpu in
      Alcotest.(check string)
        (Printf.sprintf "seed %d step %d: trap" seed step)
        (trap_to_string rt) (trap_to_string ct);
      check_lockstep_state ~seed ~step cached_cpu ref_cpu;
      match ct with
      | None | Some Cpu.Syscall_trap -> go (step + 1)
      | Some Cpu.Halt_trap | Some (Cpu.Fault_trap _) -> ()
    end
  in
  go 0;
  let dump m = Bytes.to_string (Memory.load_bytes m ~addr:base ~len:seg_size) in
  Alcotest.(check bool)
    (Printf.sprintf "seed %d: memory identical" seed)
    true
    (String.equal (dump cached_mem) (dump ref_mem))

let test_differential_random_programs () =
  for seed = 1 to 40 do
    run_differential ~seed ~steps:600
  done

(* ------------------------------------------------------------------ *)
(* Three-way sliced-run differential: reference / icache / block       *)
(* ------------------------------------------------------------------ *)

(* Drive [Cpu.run] rather than [Cpu.step], since the block engine only
   engages through [run]. Fuel is sliced randomly (1..9 instructions),
   so slice boundaries constantly land mid-block, forcing the block
   dispatcher into its stepping fallback; generated programs also store
   into their own code through r10 (with arbitrary register values, so
   the rewritten word's tag byte is usually wrong — exercising
   wrong-tag injection against compiled blocks) and fault routinely
   (jmpr through small scratch values). Every slice must leave all
   three engines in bit-identical architectural state. *)
let outcome_to_string = function
  | Cpu.Trapped trap -> trap_to_string (Some trap)
  | Cpu.Out_of_fuel -> "out of fuel"

let run_differential_engines ~seed ~slices =
  let prng = Prng.create ~seed in
  let program = Array.init code_len (fun _ -> gen_instr prng) in
  let ref_cpu, ref_mem = build_cpu ~engine:Memory.Reference program in
  let ic_cpu, ic_mem = build_cpu ~engine:Memory.Icache program in
  let bl_cpu, bl_mem = build_cpu ~engine:Memory.Block program in
  let rec go slice =
    if slice < slices then begin
      let fuel = 1 + Prng.int prng 9 in
      let ro = Cpu.run ref_cpu ~fuel in
      let io = Cpu.run ic_cpu ~fuel in
      let bo = Cpu.run bl_cpu ~fuel in
      Alcotest.(check string)
        (Printf.sprintf "seed %d slice %d: icache outcome" seed slice)
        (outcome_to_string ro) (outcome_to_string io);
      Alcotest.(check string)
        (Printf.sprintf "seed %d slice %d: block outcome" seed slice)
        (outcome_to_string ro) (outcome_to_string bo);
      check_lockstep_state ~seed ~step:slice ic_cpu ref_cpu;
      check_lockstep_state ~seed ~step:slice bl_cpu ref_cpu;
      match ro with
      | Cpu.Out_of_fuel | Cpu.Trapped Cpu.Syscall_trap -> go (slice + 1)
      | Cpu.Trapped Cpu.Halt_trap | Cpu.Trapped (Cpu.Fault_trap _) -> ()
    end
  in
  go 0;
  let dump m = Bytes.to_string (Memory.load_bytes m ~addr:base ~len:seg_size) in
  let ref_dump = dump ref_mem in
  Alcotest.(check bool)
    (Printf.sprintf "seed %d: icache memory identical" seed)
    true
    (String.equal ref_dump (dump ic_mem));
  Alcotest.(check bool)
    (Printf.sprintf "seed %d: block memory identical" seed)
    true
    (String.equal ref_dump (dump bl_mem))

let test_differential_engines () =
  for seed = 100 to 140 do
    run_differential_engines ~seed ~slices:200
  done

(* ------------------------------------------------------------------ *)
(* Self-modifying code: precise invalidation                           *)
(* ------------------------------------------------------------------ *)

let le_word b pos = Int32.to_int (Bytes.get_int32_le b pos) land 0xFFFFFFFF

(* A guest program that executes an instruction (filling the decode
   cache), overwrites that instruction with its own stores, jumps back,
   and must observe the new instruction. A stale cache would loop
   forever. The replacement is encoded with [patch_tag], so the same
   program doubles as the code-injection probe: a wrong tag must fault
   exactly as without the cache. *)
let self_modifying_source ~patch_tag =
  let patch = Isa.encode ~tag:patch_tag (Isa.Mov (3, Isa.Imm 42)) in
  Printf.sprintf
    {|
      la r1, patch
      mov r4, #42
    patch:
      mov r3, #1
      breq r3, r4, done
      mov r2, #%d
      st [r1], r2
      mov r2, #%d
      st [r1+4], r2
      jmp patch
    done:
      halt
    |}
    (le_word patch 0) (le_word patch 4)

let all_engines = [ Memory.Reference; Memory.Icache; Memory.Block ]

let load_source ?(tag = 0) ~engine source =
  let loaded = Image.load (Asm.assemble source) ~base:0x1000 ~size:0x10000 ~tag in
  Memory.set_engine loaded.Image.memory engine;
  loaded

let test_smc_guest_store_invalidates () =
  List.iter
    (fun engine ->
      let loaded = load_source ~engine (self_modifying_source ~patch_tag:0) in
      (match Cpu.run loaded.Image.cpu ~fuel:1000 with
      | Cpu.Trapped Cpu.Halt_trap -> ()
      | Cpu.Trapped trap -> Alcotest.failf "unexpected trap: %a" Cpu.pp_trap trap
      | Cpu.Out_of_fuel -> Alcotest.fail "stale decode cache: patched loop never exited");
      Alcotest.(check int) "patched instruction executed" 42 (Cpu.reg loaded.Image.cpu 3))
    all_engines

let test_smc_injected_wrong_tag_faults () =
  (* Variant expects tag 1; the self-patch writes a tag-0 instruction
     (the attacker does not know the tag), so re-fetching the patched
     slot must raise Bad_tag — identically under every engine. *)
  List.iter
    (fun engine ->
      let loaded = load_source ~tag:1 ~engine (self_modifying_source ~patch_tag:0) in
      match Cpu.run loaded.Image.cpu ~fuel:1000 with
      | Cpu.Trapped (Cpu.Fault_trap (Cpu.Bad_tag { found = 0; expected = 1; _ })) -> ()
      | Cpu.Trapped trap -> Alcotest.failf "expected Bad_tag, got %a" Cpu.pp_trap trap
      | Cpu.Out_of_fuel -> Alcotest.fail "expected Bad_tag, ran out of fuel")
    all_engines

let test_smc_host_store_invalidates () =
  (* Warm the cache by running to halt, then overwrite the first
     instruction from the host side and re-run. *)
  let loaded = load_source ~engine:Memory.Block "mov r1, #1\nhalt" in
  let { Image.cpu; memory; layout } = loaded in
  (match Cpu.run cpu ~fuel:10 with
  | Cpu.Trapped Cpu.Halt_trap -> ()
  | _ -> Alcotest.fail "first run should halt");
  Alcotest.(check int) "original value" 1 (Cpu.reg cpu 1);
  Memory.store_bytes memory ~addr:layout.Image.code_start
    (Isa.encode ~tag:0 (Isa.Mov (1, Isa.Imm 2)));
  Cpu.set_pc cpu layout.Image.code_start;
  (match Cpu.run cpu ~fuel:10 with
  | Cpu.Trapped Cpu.Halt_trap -> ()
  | _ -> Alcotest.fail "second run should halt");
  Alcotest.(check int) "patched value observed" 2 (Cpu.reg cpu 1)

(* ------------------------------------------------------------------ *)
(* qcheck properties: block-registry invalidation and run equivalence  *)
(* ------------------------------------------------------------------ *)

(* A store intersecting a registered block's slot span must flip the
   block's shared validity cell (and count an invalidation); a store
   anywhere else must leave it alone. This is the whole contract
   between [Memory]'s store path and the block compiler — if it holds,
   a compiled block can never execute stale bytes. *)
let prop_store_invalidates_registered_span =
  let slots = seg_size / Isa.instr_size in
  QCheck.Test.make ~name:"store into a registered span invalidates the block"
    ~count:1000
    QCheck.(
      quad
        (int_bound (slots - Memory.max_block_slots - 1))
        (int_range 1 Memory.max_block_slots)
        (int_bound (seg_size - 5))
        bool)
    (fun (slot, span, store_off, word) ->
      let memory = Memory.create ~base ~size:seg_size in
      let valid = Memory.register_block memory ~slot ~slots:span in
      let len = if word then 4 else 1 in
      if word then Memory.store_word memory (base + store_off) 0xDEAD
      else Memory.store_byte memory (base + store_off) 0xAD;
      let lo = store_off / Isa.instr_size in
      let hi = (store_off + len - 1) / Isa.instr_size in
      let intersects = hi >= slot && lo < slot + span in
      !valid = not intersects
      && Memory.block_invalidations memory = (if intersects then 1 else 0))

(* The sliced-run differential as a property over the program seed:
   whatever program the seed generates — including mid-block faults,
   fuel slices ending inside a block, and self-modifying stores — the
   three engines stay state-identical. *)
let prop_engines_agree_under_slicing =
  QCheck.Test.make ~name:"reference/icache/block agree under random fuel slicing"
    ~count:60
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      run_differential_engines ~seed ~slices:80;
      true)

(* ------------------------------------------------------------------ *)
(* Pinned bench counters                                               *)
(* ------------------------------------------------------------------ *)

(* These constants are the demand/monitor numbers of the committed
   BENCH_results.json (bench report, 12 requests per configuration).
   The fast path must not move them: they count guest-visible work
   (instructions, rendezvous, checks), not host time. *)
let pinned_bench config ~instructions ~demand_rendezvous ~monitor_rendezvous
    ~checks_performed =
  match Nv_httpd.Deploy.build config with
  | Error e -> Alcotest.fail e
  | Ok sys -> (
    match Nv_workload.Measure.profile ~requests:12 sys with
    | Error e -> Alcotest.fail e
    | Ok samples ->
      let steady = Array.sub samples 1 (Array.length samples - 1) in
      let demand = Nv_workload.Measure.mean_demand steady in
      Alcotest.(check int)
        "demand instructions" instructions demand.Nv_workload.Measure.instructions;
      Alcotest.(check int)
        "demand rendezvous" demand_rendezvous demand.Nv_workload.Measure.rendezvous;
      let reg = Nv_core.Nsystem.metrics sys in
      let counter name =
        Option.value ~default:0 (Nv_util.Metrics.find_counter reg name)
      in
      Alcotest.(check int)
        "monitor.rendezvous" monitor_rendezvous (counter "monitor.rendezvous");
      Alcotest.(check int)
        "monitor.checks.performed" checks_performed
        (counter "monitor.checks.performed");
      Alcotest.(check int) "monitor.checks.failed" 0 (counter "monitor.checks.failed"))

let test_pinned_two_variant_address () =
  pinned_bench Nv_httpd.Deploy.Two_variant_address ~instructions:13498
    ~demand_rendezvous:20 ~monitor_rendezvous:252 ~checks_performed:806

let test_pinned_two_variant_uid () =
  pinned_bench Nv_httpd.Deploy.Two_variant_uid ~instructions:13504
    ~demand_rendezvous:21 ~monitor_rendezvous:267 ~checks_performed:872

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "nv_perf"
    [
      ( "differential",
        [
          Alcotest.test_case "cached vs reference interpreter (randomized)" `Quick
            test_differential_random_programs;
          Alcotest.test_case "reference vs icache vs block, sliced runs" `Quick
            test_differential_engines;
        ] );
      ( "block properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_store_invalidates_registered_span; prop_engines_agree_under_slicing ] );
      ( "self-modifying code",
        [
          Alcotest.test_case "guest store invalidates decode cache" `Quick
            test_smc_guest_store_invalidates;
          Alcotest.test_case "injected wrong-tag code still faults" `Quick
            test_smc_injected_wrong_tag_faults;
          Alcotest.test_case "host store invalidates decode cache" `Quick
            test_smc_host_store_invalidates;
        ] );
      ( "pinned bench counters",
        [
          Alcotest.test_case "config3 (address partition)" `Quick
            test_pinned_two_variant_address;
          Alcotest.test_case "config4 (uid diversity)" `Quick
            test_pinned_two_variant_uid;
        ] );
    ]
