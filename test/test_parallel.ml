(* Differential suite for domain-parallel variant execution.

   The contract under test (lib/core/monitor.ml, "Concurrency
   discipline"): a monitor created with [~parallel:true] is
   bit-deterministic with respect to sequential stepping — identical
   outcomes, alarms, final registers/memory, and metric values — for
   every program, including ones that raise alarms mid-quantum and
   ones with pending signal deliveries. Mirrors the cached-vs-reference
   differential pattern of test_perf.ml: build the same system twice,
   drive both identically, compare complete fingerprints. *)

module Alarm = Nv_core.Alarm
module Monitor = Nv_core.Monitor
module Nsystem = Nv_core.Nsystem
module Supervisor = Nv_core.Supervisor
module Variation = Nv_core.Variation
module Deploy = Nv_httpd.Deploy
module Http = Nv_httpd.Http
module Payloads = Nv_attacks.Payloads
module Arrivals = Nv_sim.Arrivals
module Measure = Nv_workload.Measure
module Openload = Nv_workload.Openload
module Cpu = Nv_vm.Cpu
module Memory = Nv_vm.Memory
module Image = Nv_vm.Image
module Isa = Nv_vm.Isa
module Word = Nv_vm.Word
module Dompool = Nv_util.Dompool
module Metrics = Nv_util.Metrics
module Prng = Nv_util.Prng
module Spsc = Nv_util.Spsc

(* ------------------------------------------------------------------ *)
(* Fingerprints                                                        *)
(* ------------------------------------------------------------------ *)

let outcome_str = function
  | Monitor.Exited n -> Printf.sprintf "exited %d" n
  | Monitor.Alarm reason -> Format.asprintf "alarm %a" Alarm.pp reason
  | Monitor.Blocked_on_accept -> "blocked-on-accept"
  | Monitor.Out_of_fuel -> "out-of-fuel"

(* Everything observable about a system: per-variant pc, registers,
   retired count, a digest of the whole memory segment, and the full
   metric registry rendered to text (sorted, so registration order is
   irrelevant). *)
let fingerprint sys =
  let monitor = Nsystem.monitor sys in
  let b = Buffer.create 1024 in
  for i = 0 to Monitor.variant_count monitor - 1 do
    let { Image.cpu; memory; _ } = Monitor.loaded monitor i in
    Buffer.add_string b
      (Printf.sprintf "v%d pc=%d retired=%d regs=" i (Cpu.pc cpu)
         (Cpu.instructions_retired cpu));
    for r = 0 to 15 do
      Buffer.add_string b (Printf.sprintf "%d," (Cpu.reg cpu r))
    done;
    let base = Memory.base memory and size = Memory.size memory in
    Buffer.add_string b
      (Printf.sprintf " mem=%s\n"
         (Digest.to_hex (Digest.bytes (Memory.load_bytes memory ~addr:base ~len:size))));
  done;
  Buffer.add_string b (Metrics.to_text (Nsystem.metrics sys));
  Buffer.contents b

(* Build the same system twice — sequential and parallel — drive both
   with [drive] (which returns a transcript of what it observed), and
   require transcript + fingerprint equality. *)
let assert_equivalent ~what ~build ~drive =
  let seq_sys = build ~parallel:false in
  let par_sys = build ~parallel:true in
  Alcotest.(check bool) (what ^ ": parallel flag") true
    (Monitor.parallel (Nsystem.monitor par_sys)
    && not (Monitor.parallel (Nsystem.monitor seq_sys)));
  let seq_log = drive seq_sys in
  let par_log = drive par_sys in
  Alcotest.(check string) (what ^ ": transcript") seq_log par_log;
  Alcotest.(check string) (what ^ ": final state") (fingerprint seq_sys)
    (fingerprint par_sys)

(* ------------------------------------------------------------------ *)
(* Random raw-instruction programs                                     *)
(* ------------------------------------------------------------------ *)

(* A generator in the spirit of test_perf's: arbitrary register
   arithmetic, memory traffic through relocated data pointers, wild
   branches, and frequent syscalls with numbers drawn from the whole
   ABI (including UID-returning and detection calls, so data-diverse
   variations legitimately alarm). Every program ends in exit(0); most
   stop earlier by trapping or alarming. All deterministic per seed. *)
let gen_image prng =
  let ncode = 64 in
  let isz = Isa.instr_size in
  let data_size = 256 and bss_size = 256 in
  let code = Array.make ncode { Image.instr = Isa.Nop; relocate = false } in
  (* data_offset = code bytes rounded up to 16 (Image.data_offset). *)
  let data_off = (((ncode * isz) + 15) / 16) * 16 in
  let plain instr = { Image.instr; relocate = false } in
  let reloc instr = { Image.instr; relocate = true } in
  let reg () = Prng.int prng 8 in
  let binops = [| Isa.Add; Isa.Sub; Isa.Mul; Isa.And; Isa.Or; Isa.Xor |] in
  let conds = [| Isa.Eq; Isa.Ne; Isa.Lt; Isa.Ge; Isa.Ltu; Isa.Geu |] in
  let syscalls = [| 0; 1; 2; 3; 4; 5; 6; 7; 9; 13; 15; 20; 21; 22; 24; 27 |] in
  let code_target () = Word.mask (Prng.int prng ncode * isz) in
  let data_target () = Word.mask (data_off + Prng.int prng (data_size + bss_size - 8)) in
  let i = ref 0 in
  let emit item = if !i < ncode - 2 then begin code.(!i) <- item; incr i end in
  while !i < ncode - 2 do
    match Prng.int prng 100 with
    | n when n < 22 ->
      emit (plain (Isa.Mov (reg (), Isa.Imm (Word.mask (Prng.int prng 4096)))))
    | n when n < 34 ->
      emit
        (plain
           (Isa.Binop (Prng.pick prng binops, reg (), reg (), Isa.Reg (reg ()))))
    | n when n < 40 ->
      emit (plain (Isa.Setcc (Prng.pick prng conds, reg (), reg (), Isa.Reg (reg ()))))
    | n when n < 50 ->
      (* Valid data pointer into r8/r9, then a load or store off it. *)
      let p = 8 + Prng.int prng 2 in
      emit (reloc (Isa.Mov (p, Isa.Imm (data_target ()))));
      if Prng.bool prng then emit (plain (Isa.Load (reg (), p, Prng.int prng 8)))
      else emit (plain (Isa.Store (p, Prng.int prng 8, reg ())))
    | n when n < 58 ->
      let c = Prng.pick prng conds in
      let a = reg () and b = reg () in
      emit (reloc (Isa.Br (c, a, b, code_target ())))
    | n when n < 62 -> emit (reloc (Isa.Jmp (code_target ())))
    | n when n < 68 ->
      if Prng.bool prng then emit (plain (Isa.Push (reg ())))
      else emit (plain (Isa.Pop (reg ())))
    | n when n < 80 ->
      (* Syscall group: number in r0, one plausible argument in r1. *)
      emit (plain (Isa.Mov (0, Isa.Imm (Word.mask (Prng.pick prng syscalls)))));
      emit (plain (Isa.Mov (1, Isa.Imm (Word.mask (Prng.int prng 8)))));
      emit (plain Isa.Syscall)
    | _ -> emit (plain Isa.Nop)
  done;
  (* Epilogue: exit(0). *)
  code.(ncode - 2) <- plain (Isa.Mov (0, Isa.Imm 0));
  code.(ncode - 1) <- plain Isa.Syscall;
  (* The epilogue leaves r1 as-is: variants whose r1 diverged exit with
     different statuses -> a deterministic Exit_mismatch alarm. *)
  {
    Image.code;
    data = Bytes.make data_size '\x2A';
    bss_size;
    entry_offset = 0;
    symbols = [];
  }

let random_variations =
  [|
    Variation.replicated;
    Variation.address_partition;
    Variation.uid_diversity;
    Variation.uid_diversity_n 3;
  |]

let drive_to_rest fuel sys =
  (* Run; on accept-block, feed one client request and continue (at
     most twice) so server-ish random programs get exercised past
     their accept. *)
  let b = Buffer.create 64 in
  let rec go tries =
    match Nsystem.run ~fuel sys with
    | Monitor.Blocked_on_accept when tries > 0 ->
      Buffer.add_string b "blocked;";
      let conn = Nsystem.connect sys in
      Nv_os.Socket.client_send conn "ping";
      Nv_os.Socket.client_close conn;
      go (tries - 1)
    | outcome -> Buffer.add_string b (outcome_str outcome)
  in
  go 2;
  Buffer.contents b

let test_random_programs () =
  for seed = 1 to 40 do
    let image = gen_image (Prng.create ~seed) in
    let variation = random_variations.(seed mod Array.length random_variations) in
    assert_equivalent
      ~what:(Printf.sprintf "random seed %d" seed)
      ~build:(fun ~parallel ->
        Nsystem.of_one_image ~parallel ~segment_size:(1 lsl 17) ~variation image)
      ~drive:(drive_to_rest 30_000)
  done

let test_random_programs_fuel_slices () =
  (* Same comparison but stepping each system in small fuel slices:
     quantum boundaries land mid-program, so the Out_of_fuel path and
     resumability must also be mode-independent. *)
  for seed = 41 to 52 do
    let image = gen_image (Prng.create ~seed) in
    let variation = random_variations.(seed mod Array.length random_variations) in
    assert_equivalent
      ~what:(Printf.sprintf "fuel-sliced seed %d" seed)
      ~build:(fun ~parallel ->
        Nsystem.of_one_image ~parallel ~segment_size:(1 lsl 17) ~variation image)
      ~drive:(fun sys ->
        let b = Buffer.create 64 in
        for _ = 1 to 6 do
          Buffer.add_string b (outcome_str (Nsystem.run ~fuel:701 sys));
          Buffer.add_char b ';'
        done;
        Buffer.contents b)
  done

(* ------------------------------------------------------------------ *)
(* Mini-C programs: signals, alarms, 4 variants                        *)
(* ------------------------------------------------------------------ *)

let compile source = Nv_minic.Codegen.compile_source (Nv_minic.Runtime.with_runtime source)

let build_minic ?(variation = Variation.uid_diversity) source ~parallel =
  Nsystem.of_one_image ~parallel ~segment_size:(1 lsl 17) ~variation (compile source)

let signal_program =
  {|int sigcount = 0;
    int on_signal(void) {
      sigcount = sigcount + 1;
      return 0;
    }
    int main(void) {
      int fd = sys_accept(3);
      sys_close(fd);
      uid_t me = getuid();
      if (seteuid(me) != 0) { return 9; }
      int spin = 0;
      while (spin < 300) { spin++; }
      return sigcount;
    }|}

let divergent_signal_program =
  (* getpwnam parses per-variant unshared files of different lengths,
     so Immediate delivery can land at different logical points and
     raise the paper's false detection — which must be raised (or not)
     identically in both stepping modes. *)
  {|int sigcount = 0;
    int on_signal(void) {
      sigcount = sigcount + 1;
      return 0;
    }
    int main(void) {
      int fd = sys_accept(3);
      sys_close(fd);
      uid_t www = getpwnam_uid("www");
      int snapshot = sigcount;
      if (cond_chk(snapshot == 0)) {
        if (seteuid(www) != 0) { return 0; }
        return 0;
      }
      return 1;
    }|}

let bad_handler_program =
  {|int bad_handler(void) {
      sys_close(0);
      return 0;
    }
    int main(void) {
      int fd = sys_accept(3);
      sys_close(fd);
      int spin = 0;
      while (spin < 500) { spin++; }
      return 0;
    }|}

let drive_signal ~handler ~mode sys =
  match Nsystem.run sys with
  | Monitor.Blocked_on_accept -> (
    match Monitor.post_signal (Nsystem.monitor sys) ~handler ~mode with
    | Error e -> "post failed: " ^ e
    | Ok () ->
      let conn = Nsystem.connect sys in
      Nv_os.Socket.client_send conn "x";
      Nv_os.Socket.client_close conn;
      Printf.sprintf "%s pending=%b"
        (outcome_str (Nsystem.run sys))
        (Monitor.signal_pending (Nsystem.monitor sys)))
  | outcome -> "no accept: " ^ outcome_str outcome

let test_signal_at_rendezvous () =
  assert_equivalent ~what:"signal at-rendezvous"
    ~build:(build_minic signal_program)
    ~drive:(drive_signal ~handler:"on_signal" ~mode:Monitor.At_rendezvous)

let test_signal_immediate_sweep () =
  (* Sweep the delivery point across the run: deliveries land inside
     different quanta, including mid-quantum in the aligned program
     (no alarm) and at drift points in the divergent one (alarm). *)
  List.iter
    (fun after ->
      assert_equivalent
        ~what:(Printf.sprintf "signal immediate after=%d" after)
        ~build:(build_minic signal_program)
        ~drive:
          (drive_signal ~handler:"on_signal"
             ~mode:(Monitor.Immediate { after_instructions = after })))
    [ 50; 137; 200; 500; 1000; 2500 ]

let test_signal_divergent_sweep () =
  List.iter
    (fun after ->
      assert_equivalent
        ~what:(Printf.sprintf "divergent signal after=%d" after)
        ~build:(build_minic divergent_signal_program)
        ~drive:
          (drive_signal ~handler:"on_signal"
             ~mode:(Monitor.Immediate { after_instructions = after })))
    [ 100; 600; 1100; 1600; 2100; 2600; 3100; 3600 ]

let test_signal_delivery_failure () =
  (* The handler traps during delivery: the Alarm_exn is raised inside
     a variant's quantum, exercising the captured-exception join path
     (lowest index first) in parallel mode. *)
  List.iter
    (fun mode ->
      assert_equivalent ~what:"failing handler"
        ~build:(build_minic bad_handler_program)
        ~drive:(drive_signal ~handler:"bad_handler" ~mode))
    [ Monitor.At_rendezvous; Monitor.Immediate { after_instructions = 120 } ]

let uid_dance_4v =
  {|int main(void) {
      uid_t me = getuid();
      if (seteuid(me) != 0) { return 9; }
      uid_t now = geteuid();
      if (cc_eq(me, now) == 0) { return 8; }
      uid_t www = getpwnam_uid("www");
      if (seteuid(www) != 0) { return 7; }
      return 0;
    }|}

let test_four_variants () =
  assert_equivalent ~what:"4-variant uid dance"
    ~build:(build_minic ~variation:(Variation.uid_diversity_n 4) uid_dance_4v)
    ~drive:(fun sys -> outcome_str (Nsystem.run sys))

(* ------------------------------------------------------------------ *)
(* Relaxed monitoring                                                  *)
(* ------------------------------------------------------------------ *)

(* A long stretch of relaxed calls (getuid/geteuid/cc_eq never park the
   variant) bracketed by sensitive rendezvous (seteuid, exit): the
   deferred-record queues fill up and are cross-checked at the flush
   boundary. *)
let relaxed_stretch_program =
  {|int main(void) {
      uid_t me = getuid();
      int i = 0;
      while (i < 40) {
        uid_t e = geteuid();
        if (cc_eq(me, e) == 0) { return 8; }
        i++;
      }
      if (seteuid(me) != 0) { return 9; }
      return 0;
    }|}

let test_relaxed_metrics () =
  (* The relaxed engine must surface its own observability: every
     relaxed position settled from deferred records counts into
     [monitor.relaxed_checks], and each flush boundary records its
     batch into [monitor.deferred_batch_size] — in both modes, with
     identical values (the fingerprint comparison covers equality; here
     we pin the values are actually nonzero). *)
  assert_equivalent ~what:"relaxed metrics"
    ~build:(build_minic relaxed_stretch_program)
    ~drive:(fun sys ->
      let outcome = outcome_str (Nsystem.run sys) in
      let stats = Monitor.stats (Nsystem.monitor sys) in
      (* getuid + 40*(geteuid, cc_eq) = 81 relaxed positions. *)
      Alcotest.(check int) "relaxed_checks counts every relaxed call" 81
        stats.Monitor.st_relaxed_checks;
      Alcotest.(check (option int)) "monitor.relaxed_checks registered" (Some 81)
        (Metrics.find_counter (Nsystem.metrics sys) "monitor.relaxed_checks");
      Alcotest.(check bool) "deferred_batch_size histogram present" true
        (match
           Metrics.Json.member "histograms"
             (Metrics.to_json_value (Nsystem.metrics sys))
         with
        | Some h -> Metrics.Json.member "monitor.deferred_batch_size" h <> None
        | None -> false);
      Printf.sprintf "%s relaxed=%d" outcome stats.Monitor.st_relaxed_checks)

let test_relaxed_divergence_alarms () =
  (* A relaxed call whose records disagree must still alarm with the
     same class and payload as an eager rendezvous — the deferred
     cross-check settles it later, never weaker. Comparing the raw
     (reexpressed, variant-diverse) UID against a constant makes the
     cond_chk booleans disagree: variant 0 is the identity
     reexpression (me = 0, root) while variant 1 sees me XOR'd. *)
  let source =
    {|int main(void) {
        uid_t me = getuid();
        if (cond_chk(me == 0)) { return 1; }
        return 0;
      }|}
  in
  assert_equivalent ~what:"relaxed divergence"
    ~build:(build_minic source)
    ~drive:(fun sys ->
      match Nsystem.run sys with
      | Monitor.Alarm (Alarm.Cond_mismatch { values }) ->
        Printf.sprintf "cond-mismatch %s"
          (String.concat ","
             (Array.to_list (Array.map string_of_int values)))
      | outcome -> Alcotest.failf "expected Cond_mismatch, got %s" (outcome_str outcome))

let test_rollback_resets_relaxed_state () =
  (* Fuel exhaustion mid-stretch leaves deferred records queued (and,
     in parallel mode, variants parked in their rings); restore must
     drain all of it so the replay after rollback is bit-identical to a
     fresh run in either mode. *)
  assert_equivalent ~what:"rollback mid-relaxed-stretch"
    ~build:(build_minic relaxed_stretch_program)
    ~drive:(fun sys ->
      let monitor = Nsystem.monitor sys in
      let snap = Monitor.snapshot monitor in
      let b = Buffer.create 128 in
      (* Step in slices small enough to stop inside the relaxed loop. *)
      for _ = 1 to 3 do
        Buffer.add_string b (outcome_str (Nsystem.run ~fuel:97 sys));
        Buffer.add_char b ';'
      done;
      Buffer.add_string b
        (Printf.sprintf "dropped=%d;" (Monitor.restore monitor snap));
      Buffer.add_string b (outcome_str (Nsystem.run sys));
      Buffer.contents b)

(* ------------------------------------------------------------------ *)
(* The case-study server                                               *)
(* ------------------------------------------------------------------ *)

let test_httpd_serving () =
  assert_equivalent ~what:"httpd two-variant-uid"
    ~build:(fun ~parallel ->
      match Deploy.build ~parallel Deploy.Two_variant_uid with
      | Ok sys -> sys
      | Error e -> Alcotest.fail e)
    ~drive:(fun sys ->
      let b = Buffer.create 4096 in
      List.iter
        (fun url ->
          match Nsystem.serve sys (Http.get url) with
          | Nsystem.Served response -> Buffer.add_string b response
          | Nsystem.Stopped outcome -> Buffer.add_string b (outcome_str outcome))
        [ "/index.html"; "/"; "/missing.html" ];
      Buffer.contents b)

let test_supervisor_recovery_under_parallel () =
  (* The recovery supervisor rolls the monitor back mid-service; in
     parallel mode this lands while the pinned engine is live, so the
     restore path must also drain/reset the transport. The full
     recovery matrix lives in test_supervisor.ml; this is the engine's
     own smoke: attack absorbed, self-healed, identically in both
     modes. *)
  assert_equivalent ~what:"supervisor recovery"
    ~build:(fun ~parallel ->
      match
        Deploy.build ~parallel ~recover:Supervisor.default_config
          Deploy.Two_variant_uid
      with
      | Ok sys -> sys
      | Error e -> Alcotest.fail e)
    ~drive:(fun sys ->
      let b = Buffer.create 4096 in
      let serve req =
        match Nsystem.serve sys req with
        | Nsystem.Served response -> "served:" ^ String.escaped response
        | Nsystem.Stopped outcome -> "stopped:" ^ outcome_str outcome
      in
      let sup = Option.get (Nsystem.supervisor sys) in
      let baseline = serve (Http.get "/") in
      Buffer.add_string b baseline;
      Buffer.add_string b (serve (Http.get (Payloads.null_overflow_url ())));
      Alcotest.(check int) "attack absorbed" 1 (Supervisor.recoveries sup);
      let healed = serve (Http.get "/") in
      Alcotest.(check string) "self-healed to baseline" baseline healed;
      Buffer.add_string b healed;
      Buffer.add_string b
        (Printf.sprintf "recoveries=%d" (Supervisor.recoveries sup));
      Buffer.contents b)

let test_openload_seq_par_identical () =
  (* The fleet tier profiles a replica (Measure drives the deployed
     system through the monitor) and extrapolates an open-loop SLO
     report: the report must be bit-deterministic whether that replica
     stepped its variants sequentially or on the pinned engine. *)
  let spec =
    {
      Openload.replicas = 2;
      arrival = Arrivals.Poisson { rate = 150.0 };
      duration_s = 1.0;
      users = 2_000;
      attacks_per_10k = 5;
    }
  in
  let run ~parallel =
    match Deploy.build ~parallel Deploy.Two_variant_uid with
    | Error e -> Alcotest.failf "deploy failed: %s" e
    | Ok sys -> (
      match Measure.profile ~requests:4 ~seed:11 sys with
      | Error e -> Alcotest.failf "profile failed: %s" e
      | Ok samples ->
        let samples = Array.sub samples 1 (Array.length samples - 1) in
        Openload.run ~seed:11 ~variants:2 ~samples spec)
  in
  let seq = run ~parallel:false in
  let par = run ~parallel:true in
  Alcotest.(check bool) "identical SLO reports" true (seq = par)

(* ------------------------------------------------------------------ *)
(* The transport: SPSC rings                                           *)
(* ------------------------------------------------------------------ *)

let test_spsc_basics () =
  Alcotest.(check bool) "zero capacity rejected" true
    (try
       ignore (Spsc.create ~capacity:0 : int Spsc.t);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check int) "capacity of one" 1 (Spsc.capacity (Spsc.create ~capacity:1));
  let r = Spsc.create ~capacity:5 in
  Alcotest.(check int) "capacity rounded to a power of two" 8 (Spsc.capacity r);
  Alcotest.(check (option int)) "empty pop" None (Spsc.try_pop r);
  Alcotest.(check int) "empty length" 0 (Spsc.length r);
  for i = 0 to 7 do
    Alcotest.(check bool) "push while free" true (Spsc.try_push r i)
  done;
  Alcotest.(check bool) "push on full rejected" false (Spsc.try_push r 99);
  Alcotest.(check int) "full length" 8 (Spsc.length r);
  for i = 0 to 7 do
    Alcotest.(check (option int)) "FIFO order" (Some i) (Spsc.try_pop r)
  done;
  Alcotest.(check (option int)) "drained" None (Spsc.try_pop r);
  (* Interleaved traffic far past the capacity: positions are monotone
     ints masked into the slot array, so wrap-around must be seamless. *)
  for i = 0 to 999 do
    Alcotest.(check bool) "wrap push" true (Spsc.try_push r i);
    if i mod 3 = 0 then
      Alcotest.(check bool) "wrap second push" true (Spsc.try_push r (-i));
    Alcotest.(check bool) "wrap pop nonempty" true (Spsc.try_pop r <> None);
    if i mod 3 = 0 then
      Alcotest.(check bool) "wrap second pop" true (Spsc.try_pop r <> None)
  done;
  Alcotest.(check (option int)) "balanced" None (Spsc.try_pop r)

let test_spsc_cross_domain () =
  (* One producer domain, the test domain consuming: every element
     arrives exactly once, in order, through a ring much smaller than
     the stream. *)
  let ring = Spsc.create ~capacity:8 in
  let n = 50_000 in
  let producer =
    Domain.spawn (fun () ->
        for i = 0 to n - 1 do
          while not (Spsc.try_push ring i) do
            Domain.cpu_relax ()
          done
        done)
  in
  let next = ref 0 in
  while !next < n do
    match Spsc.try_pop ring with
    | Some v ->
      if v <> !next then
        Alcotest.failf "out of order: got %d, expected %d" v !next;
      incr next
    | None -> Domain.cpu_relax ()
  done;
  Domain.join producer;
  Alcotest.(check (option int)) "stream fully consumed" None (Spsc.try_pop ring)

(* ------------------------------------------------------------------ *)
(* The pool itself                                                     *)
(* ------------------------------------------------------------------ *)

let test_dompool_basics () =
  let pool = Dompool.create ~size:2 in
  let p = Dompool.submit pool (fun () -> 21 * 2) in
  Alcotest.(check int) "await" 42 (Dompool.await p);
  let doubled = Dompool.map_array pool (fun x -> 2 * x) (Array.init 100 Fun.id) in
  Alcotest.(check int) "map_array len" 100 (Array.length doubled);
  Array.iteri (fun i v -> Alcotest.(check int) "map_array value" (2 * i) v) doubled;
  Alcotest.(check int) "size" 2 (Dompool.size pool);
  Alcotest.(check (array int)) "empty" [||] (Dompool.map_array pool (fun x -> x) [||]);
  Dompool.shutdown pool;
  Alcotest.(check bool) "submit after shutdown rejected" true
    (try
       ignore (Dompool.submit pool (fun () -> ()));
       false
     with Invalid_argument _ -> true)

let test_dompool_exception_order () =
  let pool = Dompool.create ~size:2 in
  (* Every task fails; the lowest index must win, deterministically. *)
  for _ = 1 to 20 do
    match
      Dompool.map_array pool
        (fun i -> if i >= 3 then failwith (string_of_int i) else i)
        (Array.init 8 Fun.id)
    with
    | _ -> Alcotest.fail "expected a failure"
    | exception Failure s -> Alcotest.(check string) "lowest index raised" "3" s
  done;
  Dompool.shutdown pool

let test_dompool_nested () =
  (* A task that itself maps on the same pool: the help-while-awaiting
     discipline must prevent deadlock even with a single worker. *)
  let pool = Dompool.create ~size:1 in
  let result =
    Dompool.map_array pool
      (fun x ->
        Array.fold_left ( + ) 0 (Dompool.map_array pool (fun y -> x * y) [| 1; 2; 3 |]))
      [| 10; 20; 30 |]
  in
  Alcotest.(check (array int)) "nested sums" [| 60; 120; 180 |] result;
  Dompool.shutdown pool

let test_dompool_dropped_await () =
  (* Regression: awaiting a task that shutdown drained from the queue
     used to block forever. Recipe: a single worker is wedged in task
     [a]; [b] sits queued; shutdown (from another domain) drains the
     queue and drops [b] inside its stop critical section, so once
     submit is observed to reject, [b]'s drop has happened and await
     must raise rather than hang. *)
  let pool = Dompool.create ~size:1 in
  let started = Atomic.make false in
  let gate = Atomic.make false in
  let a =
    Dompool.submit pool (fun () ->
        Atomic.set started true;
        while not (Atomic.get gate) do
          Domain.cpu_relax ()
        done)
  in
  while not (Atomic.get started) do
    Domain.cpu_relax ()
  done;
  let b = Dompool.submit pool (fun () -> 42) in
  (* shutdown blocks joining the wedged worker, so run it elsewhere. *)
  let closer = Domain.spawn (fun () -> Dompool.shutdown pool) in
  let rec wait_stopped () =
    match Dompool.submit pool (fun () -> ()) with
    | (_ : unit Dompool.promise) ->
      Domain.cpu_relax ();
      wait_stopped ()
    | exception Invalid_argument _ -> ()
  in
  wait_stopped ();
  Alcotest.check_raises "await of dropped task"
    (Invalid_argument "Dompool.await: task dropped by shutdown") (fun () ->
      ignore (Dompool.await b : int));
  (* Unblock [a] so shutdown can join its worker; the in-flight task
     itself completes normally. *)
  Atomic.set gate true;
  Dompool.await a;
  Domain.join closer

let test_env_default () =
  (* Not cached: the monitor's default follows the current env. *)
  let before = Dompool.env_default () in
  Alcotest.(check bool) "matches env" before
    (match Sys.getenv_opt "NV_PARALLEL" with Some "1" -> true | _ -> false)

let () =
  Alcotest.run "nv_parallel"
    [
      ( "spsc",
        [
          Alcotest.test_case "basics" `Quick test_spsc_basics;
          Alcotest.test_case "cross-domain stream" `Quick test_spsc_cross_domain;
        ] );
      ( "dompool",
        [
          Alcotest.test_case "basics" `Quick test_dompool_basics;
          Alcotest.test_case "exception order" `Quick test_dompool_exception_order;
          Alcotest.test_case "nested" `Quick test_dompool_nested;
          Alcotest.test_case "dropped by shutdown" `Quick test_dompool_dropped_await;
          Alcotest.test_case "env default" `Quick test_env_default;
        ] );
      ( "differential",
        [
          Alcotest.test_case "random programs" `Quick test_random_programs;
          Alcotest.test_case "random programs, fuel-sliced" `Quick
            test_random_programs_fuel_slices;
          Alcotest.test_case "signal at-rendezvous" `Quick test_signal_at_rendezvous;
          Alcotest.test_case "signal immediate sweep" `Quick test_signal_immediate_sweep;
          Alcotest.test_case "divergent signal sweep" `Quick test_signal_divergent_sweep;
          Alcotest.test_case "signal delivery failure" `Quick test_signal_delivery_failure;
          Alcotest.test_case "four variants" `Quick test_four_variants;
          Alcotest.test_case "relaxed metrics" `Quick test_relaxed_metrics;
          Alcotest.test_case "relaxed divergence" `Quick test_relaxed_divergence_alarms;
          Alcotest.test_case "rollback mid-relaxed-stretch" `Quick
            test_rollback_resets_relaxed_state;
          Alcotest.test_case "httpd serving" `Quick test_httpd_serving;
          Alcotest.test_case "supervisor recovery" `Quick
            test_supervisor_recovery_under_parallel;
          Alcotest.test_case "openload seq==par" `Quick test_openload_seq_par_identical;
        ] );
    ]
