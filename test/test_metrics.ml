(* Tests for the Nv_util.Metrics registry (counters, gauges,
   histograms, timers, JSON export) and its integration into the
   monitor/kernel observability layer. *)

open Nv_core
module Metrics = Nv_util.Metrics
module Json = Nv_util.Metrics.Json
module Socket = Nv_os.Socket
module Syscall = Nv_os.Syscall

(* ------------------------------------------------------------------ *)
(* Counters                                                            *)
(* ------------------------------------------------------------------ *)

let test_counter_basics () =
  let reg = Metrics.create () in
  let s = Metrics.scope reg "a" in
  let c = Metrics.counter s "hits" in
  Alcotest.(check int) "starts at zero" 0 (Metrics.counter_value c);
  Metrics.incr c;
  Metrics.incr c;
  Metrics.add c 5;
  Alcotest.(check int) "incr and add" 7 (Metrics.counter_value c);
  (* Same name resolves to the same counter. *)
  let c' = Metrics.counter (Metrics.scope reg "a") "hits" in
  Metrics.incr c';
  Alcotest.(check int) "shared by name" 8 (Metrics.counter_value c);
  Alcotest.(check (option int)) "find_counter" (Some 8) (Metrics.find_counter reg "a.hits");
  Alcotest.(check (option int)) "find_counter miss" None (Metrics.find_counter reg "a.misses")

let test_counter_scopes () =
  let reg = Metrics.create () in
  let parent = Metrics.scope reg "kernel" in
  let child = Metrics.sub parent "calls" in
  Metrics.incr (Metrics.counter child "read");
  Metrics.add (Metrics.counter child "write") 3;
  Alcotest.(check (option int)) "nested name" (Some 1)
    (Metrics.find_counter reg "kernel.calls.read");
  Alcotest.(check (list (pair string int)))
    "counters_under strips prefix and sorts"
    [ ("read", 1); ("write", 3) ]
    (Metrics.counters_under reg ~prefix:"kernel.calls.")

let test_kind_clash () =
  let reg = Metrics.create () in
  let s = Metrics.scope reg "x" in
  ignore (Metrics.counter s "m");
  Alcotest.check_raises "gauge over counter"
    (Invalid_argument "Metrics: \"x.m\" is already registered as a counter") (fun () ->
      ignore (Metrics.gauge s "m"))

(* ------------------------------------------------------------------ *)
(* Gauges and histograms                                               *)
(* ------------------------------------------------------------------ *)

let test_gauge () =
  let reg = Metrics.create () in
  let g = Metrics.gauge (Metrics.scope reg "q") "depth" in
  Alcotest.(check (float 0.0)) "zero" 0.0 (Metrics.gauge_value g);
  Metrics.set_gauge g 4.0;
  Metrics.max_gauge g 2.0;
  Alcotest.(check (float 0.0)) "max keeps higher" 4.0 (Metrics.gauge_value g);
  Metrics.max_gauge g 9.0;
  Alcotest.(check (float 0.0)) "max raises" 9.0 (Metrics.gauge_value g)

let test_histogram () =
  let reg = Metrics.create () in
  let h = Metrics.histogram (Metrics.scope reg "lat") "ms" in
  for i = 1 to 100 do
    Metrics.observe h (float_of_int i)
  done;
  Alcotest.(check int) "count" 100 (Metrics.histogram_count h);
  Alcotest.(check (float 0.001)) "sum" 5050.0 (Metrics.histogram_sum h);
  Alcotest.(check (float 2.0)) "p50" 50.0 (Metrics.histogram_percentile h 50.0);
  Alcotest.(check (float 2.0)) "p99" 99.0 (Metrics.histogram_percentile h 99.0);
  let empty = Metrics.histogram (Metrics.scope reg "lat") "empty" in
  Alcotest.(check (float 0.0)) "empty percentile" 0.0
    (Metrics.histogram_percentile empty 50.0)

let test_histogram_reservoir_unbiased () =
  (* Regression: the "reservoir" was a ring buffer, so once full it
     held only the most recent window — 100k increasing observations
     left a p50 near 98k. Algorithm R keeps a uniform sample: the p50
     of 0..99999 must sit near 50000 and p999 near 99900. *)
  let reg = Metrics.create () in
  let h = Metrics.histogram (Metrics.scope reg "lat") "ms" in
  let n = 100_000 in
  for i = 0 to n - 1 do
    Metrics.observe h (float_of_int i)
  done;
  Alcotest.(check int) "count" n (Metrics.histogram_count h);
  let p50 = Metrics.histogram_percentile h 50.0 in
  if p50 < 40_000.0 || p50 > 60_000.0 then
    Alcotest.failf "reservoir p50 %.0f is biased (expected ~50000)" p50;
  let p999 = Metrics.histogram_p999 h in
  if p999 < 90_000.0 || p999 > float_of_int n then
    Alcotest.failf "reservoir p999 %.0f out of range" p999;
  Alcotest.(check (float 0.0)) "p999 accessor matches percentile"
    (Metrics.histogram_percentile h 99.9)
    p999;
  Alcotest.(check bool) "p100 stays within observed range" true
    (Metrics.histogram_percentile h 100.0 <= 99_999.0)

let test_histogram_reservoir_deterministic () =
  (* Same registry names, same observations: the seeded per-histogram
     PRNG must reproduce the same sample (NV_PARALLEL-independence of
     published SLO numbers depends on this). *)
  let build () =
    let reg = Metrics.create () in
    let h = Metrics.histogram (Metrics.scope reg "lat") "ms" in
    for i = 0 to 19_999 do
      Metrics.observe h (float_of_int (i * 7 mod 10_000))
    done;
    List.map (Metrics.histogram_percentile h) [ 50.0; 99.0; 99.9 ]
  in
  Alcotest.(check (list (float 0.0))) "identical percentiles" (build ()) (build ())

let test_timer () =
  let reg = Metrics.create () in
  let clock_now = ref 0.0 in
  let tm =
    Metrics.timer (Metrics.scope reg "t") "elapsed" ~clock:(fun () -> !clock_now)
  in
  let stop = Metrics.start tm in
  clock_now := 2.5;
  stop ();
  let h = Metrics.timer_histogram tm in
  Alcotest.(check int) "one observation" 1 (Metrics.histogram_count h);
  Alcotest.(check (float 0.001)) "elapsed" 2.5 (Metrics.histogram_sum h);
  (* A clock running backwards is clamped, never negative. *)
  let stop = Metrics.start tm in
  clock_now := 1.0;
  stop ();
  Alcotest.(check (float 0.001)) "clamped" 2.5 (Metrics.histogram_sum h)

(* ------------------------------------------------------------------ *)
(* Export                                                              *)
(* ------------------------------------------------------------------ *)

let populated () =
  let reg = Metrics.create () in
  let s = Metrics.scope reg "m" in
  Metrics.add (Metrics.counter s "count") 3;
  Metrics.set_gauge (Metrics.gauge s "level") 1.5;
  let h = Metrics.histogram s "hist" in
  List.iter (Metrics.observe h) [ 1.0; 2.0; 3.0 ];
  reg

let contains haystack needle =
  let n = String.length needle in
  let rec scan i =
    i + n <= String.length haystack && (String.sub haystack i n = needle || scan (i + 1))
  in
  scan 0

let test_text_export () =
  let text = Metrics.to_text (populated ()) in
  List.iter
    (fun line ->
      Alcotest.(check bool) (Printf.sprintf "text has %S" line) true
        (contains text line))
    [ "counter m.count 3"; "gauge m.level 1.5"; "histogram m.hist count=3" ]

let test_dump_sorted () =
  (* Regression pin: dump output is in sorted name order regardless of
     registration order, in both text and JSON form. *)
  let reg = Metrics.create () in
  Metrics.incr (Metrics.counter (Metrics.scope reg "zz") "last");
  Metrics.set_gauge (Metrics.gauge (Metrics.scope reg "aa") "first") 1.0;
  Metrics.incr (Metrics.counter (Metrics.scope reg "mm") "mid");
  let names_of_lines text =
    String.split_on_char '\n' text
    |> List.filter (fun l -> l <> "")
    |> List.map (fun l ->
           match String.split_on_char ' ' l with
           | _kind :: name :: _ -> name
           | _ -> Alcotest.failf "unparseable dump line %S" l)
  in
  let names = names_of_lines (Metrics.to_text reg) in
  Alcotest.(check (list string))
    "text lines sorted"
    [ "aa.first"; "mm.mid"; "zz.last" ]
    names;
  (match Metrics.to_json_value reg with
  | Json.Obj groups ->
    List.iter
      (fun (group, v) ->
        match v with
        | Json.Obj fields ->
          let keys = List.map fst fields in
          Alcotest.(check (list string))
            (Printf.sprintf "%s keys sorted" group)
            (List.sort compare keys) keys
        | _ -> Alcotest.failf "group %s is not an object" group)
      groups;
    (match List.assoc_opt "counters" groups with
    | Some (Json.Obj fields) ->
      Alcotest.(check (list string))
        "counter keys" [ "mm.mid"; "zz.last" ] (List.map fst fields)
    | _ -> Alcotest.fail "no counters group")
  | _ -> Alcotest.fail "to_json_value is not an object")

let test_json_roundtrip () =
  let reg = populated () in
  match Json.of_string (Metrics.to_json reg) with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok parsed ->
    (* Compare re-serialized forms: %.12g printing may drop trailing
       float precision, so structural equality is too strict. *)
    Alcotest.(check string) "roundtrip stable"
      (Json.to_string (Metrics.to_json_value reg))
      (Json.to_string parsed);
    (match Json.member "counters" parsed with
    | Some (Json.Obj [ ("m.count", Json.Num 3.0) ]) -> ()
    | _ -> Alcotest.fail "counters object");
    (match Json.member "histograms" parsed with
    | Some (Json.Obj [ ("m.hist", summary) ]) -> (
      match Json.member "count" summary with
      | Some (Json.Num 3.0) -> ()
      | _ -> Alcotest.fail "histogram count")
    | _ -> Alcotest.fail "histograms object")

let test_json_parser_rejects_garbage () =
  List.iter
    (fun input ->
      match Json.of_string input with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted %S" input)
    [ ""; "{"; "[1,]"; "{\"a\":}"; "tru"; "\"unterminated" ]

(* ------------------------------------------------------------------ *)
(* Integration: one monitored request populates the registry           *)
(* ------------------------------------------------------------------ *)

let compile source = Nv_minic.Codegen.compile_source (Nv_minic.Runtime.with_runtime source)

let echo_server =
  {|int main(void) {
      int fd = sys_accept(3);
      char buf[64];
      int n = sys_read(fd, buf, 63);
      buf[n] = '\0';
      write_str(fd, "echo:");
      write_str(fd, buf);
      sys_close(fd);
      return 0;
    }|}

let test_monitored_request_metrics () =
  let sys = Nsystem.of_one_image ~variation:Variation.uid_diversity (compile echo_server) in
  (match Nsystem.run sys with
  | Monitor.Blocked_on_accept -> ()
  | _ -> Alcotest.fail "expected accept block");
  let conn = Nsystem.connect sys in
  Socket.client_send conn "ping";
  (match Nsystem.run sys with
  | Monitor.Exited 0 -> ()
  | _ -> Alcotest.fail "expected clean exit");
  let reg = Nsystem.metrics sys in
  let counter name = Option.value ~default:0 (Metrics.find_counter reg name) in
  Alcotest.(check bool) "rendezvous counted" true (counter "monitor.rendezvous" > 0);
  Alcotest.(check bool) "checks performed" true (counter "monitor.checks.performed" > 0);
  Alcotest.(check int) "no check failed" 0 (counter "monitor.checks.failed");
  Alcotest.(check bool) "kernel syscalls" true (counter "kernel.syscalls" > 0);
  Alcotest.(check bool) "accept seen by monitor" true (counter "monitor.calls.accept" > 0);
  Alcotest.(check bool) "input replicated" true
    (counter "monitor.input_bytes_replicated" > 0);
  Alcotest.(check bool) "output writes checked" true
    (counter "monitor.output_writes_checked" > 0);
  (* The monitor view and the thin stats view agree. *)
  let stats = Monitor.stats (Nsystem.monitor sys) in
  Alcotest.(check int) "stats rendezvous" (counter "monitor.rendezvous")
    stats.Monitor.st_rendezvous;
  Alcotest.(check int) "stats checks" (counter "monitor.checks.performed")
    stats.Monitor.st_checks_performed;
  (* The same registry serves the kernel and the monitor. *)
  Alcotest.(check bool) "one registry per system" true
    (Nsystem.metrics sys == Nv_os.Kernel.metrics (Nsystem.kernel sys))

(* ------------------------------------------------------------------ *)
(* Divergent accept fd raises Arg_mismatch                             *)
(* ------------------------------------------------------------------ *)

(* Under UID diversity, getuid returns differently-reexpressed values
   per variant; feeding one to sys_accept makes the listening-fd
   argument diverge, which the monitor must flag (the pre-fix monitor
   ignored accept's argument entirely). *)
let divergent_accept_server =
  {|int main(void) {
      uid_t me = getuid();
      int fd = sys_accept((int)me);
      sys_close(fd);
      return 0;
    }|}

let test_divergent_accept_fd_alarms () =
  let sys =
    Nsystem.of_one_image ~variation:Variation.uid_diversity (compile divergent_accept_server)
  in
  match Nsystem.run sys with
  | Monitor.Alarm (Alarm.Arg_mismatch { syscall; arg_index = 0; _ }) ->
    Alcotest.(check int) "accept syscall" Syscall.sys_accept syscall;
    let reg = Nsystem.metrics sys in
    Alcotest.(check (option int)) "check failure counted" (Some 1)
      (Metrics.find_counter reg "monitor.checks.failed");
    Alcotest.(check (option int)) "alarm counted" (Some 1)
      (Metrics.find_counter reg "monitor.alarms.arg")
  | Monitor.Alarm reason -> Alcotest.failf "wrong alarm: %a" Alarm.pp reason
  | Monitor.Exited status -> Alcotest.failf "exited %d instead of alarming" status
  | _ -> Alcotest.fail "expected an alarm"

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "nv_metrics"
    [
      ( "registry",
        [
          Alcotest.test_case "counter basics" `Quick test_counter_basics;
          Alcotest.test_case "counter scopes" `Quick test_counter_scopes;
          Alcotest.test_case "kind clash" `Quick test_kind_clash;
          Alcotest.test_case "gauge" `Quick test_gauge;
          Alcotest.test_case "histogram" `Quick test_histogram;
          Alcotest.test_case "reservoir stays unbiased" `Quick
            test_histogram_reservoir_unbiased;
          Alcotest.test_case "reservoir deterministic" `Quick
            test_histogram_reservoir_deterministic;
          Alcotest.test_case "timer" `Quick test_timer;
        ] );
      ( "export",
        [
          Alcotest.test_case "text" `Quick test_text_export;
          Alcotest.test_case "dump sorted" `Quick test_dump_sorted;
          Alcotest.test_case "json roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "json rejects garbage" `Quick test_json_parser_rejects_garbage;
        ] );
      ( "integration",
        [
          Alcotest.test_case "monitored request" `Quick test_monitored_request_metrics;
          Alcotest.test_case "divergent accept fd" `Quick test_divergent_accept_fd_alarms;
        ] );
    ]
