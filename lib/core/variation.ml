type variant_spec = {
  index : int;
  base : int;
  tag : int;
  uid : Reexpression.t;
}

type t = { name : string; variants : variant_spec array; unshared_paths : string list }

let count t = Array.length t.variants

let low_base = 0x00010000

let high_base = 0x80010000

let default_segment_size = 1 lsl 20

let address_space = 0x1_0000_0000

(* Every variant's segment must fit the 32-bit space, and under address
   partitioning no two segments may overlap — a shared page would let a
   single absolute address be valid in two variants at once, which is
   exactly the disjointness the partition exists to provide. *)
let validate_bases ~who ~segment_size bases =
  if segment_size <= 0 then
    invalid_arg (Printf.sprintf "Variation.%s: segment size must be positive" who);
  (* Overlap is diagnosed before overflow: a shared page breaks the
     cross-variant disjointness argument itself, not just the layout. *)
  let n = Array.length bases in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if bases.(i) < bases.(j) + segment_size && bases.(j) < bases.(i) + segment_size
      then
        invalid_arg
          (Printf.sprintf "Variation.%s: variant %d and %d segments overlap" who i j)
    done
  done;
  Array.iteri
    (fun i base ->
      if base < 0 || base + segment_size > address_space then
        invalid_arg
          (Printf.sprintf
             "Variation.%s: variant %d segment overflows the 32-bit address space"
             who i))
    bases

type axis = Address | Tagging | Uid of Reexpression.t array

let composed ?name ?(segment_size = default_segment_size) ?unshared ~n axes =
  if n < 1 then invalid_arg "Variation.composed: need at least one variant";
  let has_address = List.mem Address axes in
  let has_tagging = List.mem Tagging axes in
  let uid_family =
    List.fold_left
      (fun acc axis -> match axis with Uid fam -> Some fam | _ -> acc)
      None axes
  in
  (match uid_family with
  | Some fam when Array.length fam < n ->
    invalid_arg "Variation.composed: uid family smaller than variant count"
  | _ -> ());
  let bases =
    Array.init n (fun i ->
        if not has_address then low_base
        else if i = 0 then low_base
        else high_base + ((i - 1) * segment_size))
  in
  if has_address then validate_bases ~who:"composed" ~segment_size bases;
  let name =
    match name with
    | Some n -> n
    | None ->
      let parts =
        List.filter_map Fun.id
          [
            (if has_address then Some "addr" else None);
            (if has_tagging then Some "tag" else None);
            (if uid_family <> None then Some "uid" else None);
          ]
      in
      Printf.sprintf "composed-%s-%d"
        (if parts = [] then "plain" else String.concat "+" parts)
        n
  in
  let unshared =
    match unshared with
    | Some u -> u
    | None ->
      if uid_family = None then [] else [ "/etc/passwd"; "/etc/group" ]
  in
  {
    name;
    variants =
      Array.init n (fun i ->
          {
            index = i;
            base = bases.(i);
            tag = (if has_tagging then i + 1 else 0);
            uid =
              (match uid_family with
              | Some fam -> fam.(i)
              | None -> Reexpression.identity);
          });
    unshared_paths = unshared;
  }

let plain_variant index base =
  { index; base; tag = 0; uid = Reexpression.identity }

let single =
  { name = "single"; variants = [| plain_variant 0 low_base |]; unshared_paths = [] }

let replicated =
  {
    name = "replicated";
    variants = [| plain_variant 0 low_base; plain_variant 1 low_base |];
    unshared_paths = [];
  }

let address_partition =
  {
    name = "address-partition";
    variants = [| plain_variant 0 low_base; plain_variant 1 high_base |];
    unshared_paths = [];
  }

let extended_partition ?(offset = 0x4240) () =
  (* The offset must preserve word alignment, or the two variants'
     stacks would sit at different segment offsets and every pointer
     canonicalization would spuriously diverge. *)
  if offset land 3 <> 0 then
    invalid_arg "Variation.extended_partition: offset must be word-aligned";
  {
    name = Printf.sprintf "extended-partition(+0x%X)" offset;
    variants = [| plain_variant 0 low_base; plain_variant 1 (high_base + offset) |];
    unshared_paths = [];
  }

let instruction_tagging =
  {
    name = "instruction-tagging";
    variants =
      [|
        { index = 0; base = low_base; tag = 1; uid = Reexpression.identity };
        { index = 1; base = low_base; tag = 2; uid = Reexpression.identity };
      |];
    unshared_paths = [];
  }

let uid_specs n = Array.init n Reexpression.uid_for_variant

let uid_diversity =
  composed ~name:"uid-diversity" ~n:2 [ Address; Uid (uid_specs 2) ]

let full_diversity =
  composed ~name:"full-diversity" ~n:2 [ Address; Tagging; Uid (uid_specs 2) ]

let uid_diversity_n ?(segment_size = default_segment_size) n =
  if n < 1 then invalid_arg "Variation.uid_diversity_n: need at least one variant";
  let bases =
    Array.init n (fun i ->
        if i = 0 then low_base else high_base + ((i - 1) * segment_size))
  in
  validate_bases ~who:"uid_diversity_n" ~segment_size bases;
  composed
    ~name:(Printf.sprintf "uid-diversity-%d" n)
    ~segment_size ~n
    [ Address; Uid (uid_specs n) ]

(* The rotation+XOR family rather than bare per-variant XOR keys: a
   rotation moves bit 31, so the composed deployments also close the
   XOR axis's documented bit-31 escape (config4's pinned CORRUPTED
   cell) — bit-31 faults diverge after the rotated variants decode. *)
let full_diversity_n n =
  composed
    ~name:(Printf.sprintf "full-diversity-%d" n)
    ~n
    [ Address; Tagging; Uid (Reexpression.rotation_family n) ]

let seeded_diversity ~seed n =
  composed
    ~name:(Printf.sprintf "seeded-diversity-%d" n)
    ~n
    [ Address; Uid (Reexpression.xor_family ~seed n) ]

let rotation_diversity n =
  composed
    ~name:(Printf.sprintf "rotation-diversity-%d" n)
    ~n
    [ Address; Uid (Reexpression.rotation_family n) ]

let add_diversity n =
  composed
    ~name:(Printf.sprintf "add-diversity-%d" n)
    ~n
    [ Address; Uid (Reexpression.add_family n) ]

let rotation_only n =
  composed
    ~name:(Printf.sprintf "rotation-only-%d" n)
    ~n
    [ Address; Uid (Reexpression.rotation_only_family n) ]

(* The pre-fix configuration: every variant >= 1 shares variant 1's
   key, so pairs (i, j) with i, j >= 1 are NOT disjoint. Kept only as
   the regression target the attack matrix demonstrates against. *)
let shared_key n =
  if n < 1 then invalid_arg "Variation.shared_key: need at least one variant";
  let legacy =
    Array.init n (fun i ->
        if i = 0 then Reexpression.identity
        else Reexpression.xor_key ~key:Reexpression.paper_uid_key)
  in
  composed ~name:(Printf.sprintf "uid-shared-key-%d" n) ~n [ Address; Uid legacy ]

let portfolio =
  [
    ("uid-diversity", uid_diversity);
    ("full-diversity", full_diversity);
    ("uid-diversity-3", uid_diversity_n 3);
    ("uid-diversity-4", uid_diversity_n 4);
    ("full-diversity-3", full_diversity_n 3);
    ("full-diversity-4", full_diversity_n 4);
    ("seeded-diversity-3", seeded_diversity ~seed:0xB007 3);
    ("seeded-diversity-4", seeded_diversity ~seed:0xB007 4);
    ("rotation-diversity-3", rotation_diversity 3);
    ("rotation-diversity-4", rotation_diversity 4);
    ("add-diversity-3", add_diversity 3);
    ("add-diversity-4", add_diversity 4);
  ]

let pp ppf t =
  Format.fprintf ppf "%s (%d variant%s)" t.name (count t)
    (if count t = 1 then "" else "s")
