lib/httpd/http.ml: List Printf String
