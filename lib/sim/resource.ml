module Metrics = Nv_util.Metrics

type job = { duration : float; complete : unit -> unit }

type t = {
  engine : Engine.t;
  name : string;
  capacity : int;
  mutable busy : int;
  mutable busy_time : float;
  waiting : job Queue.t;
  jobs_completed : Metrics.counter;
  busy_time_g : Metrics.gauge;
  queue_high_water : Metrics.gauge;
}

let create engine ~name ~capacity =
  if capacity < 1 then invalid_arg "Resource.create: capacity must be >= 1";
  let scope = Metrics.sub (Metrics.scope (Engine.metrics engine) "sim.resource") name in
  {
    engine;
    name;
    capacity;
    busy = 0;
    busy_time = 0.0;
    waiting = Queue.create ();
    jobs_completed = Metrics.counter scope "jobs_completed";
    busy_time_g = Metrics.gauge scope "busy_time_s";
    queue_high_water = Metrics.gauge scope "queue_high_water";
  }

let name t = t.name

let rec start t job =
  t.busy <- t.busy + 1;
  t.busy_time <- t.busy_time +. job.duration;
  Metrics.set_gauge t.busy_time_g t.busy_time;
  Engine.schedule_after t.engine ~delay:job.duration (fun () -> finish t job)

and finish t job =
  t.busy <- t.busy - 1;
  Metrics.incr t.jobs_completed;
  job.complete ();
  (* The completion callback may itself have submitted work; only pull
     from the queue if a slot is still free afterwards. *)
  if t.busy < t.capacity && not (Queue.is_empty t.waiting) then
    start t (Queue.pop t.waiting)

let serve t ~duration complete =
  if duration < 0.0 then invalid_arg "Resource.serve: negative duration";
  let job = { duration; complete } in
  if t.busy < t.capacity then start t job
  else begin
    Queue.push job t.waiting;
    Metrics.max_gauge t.queue_high_water (float_of_int (Queue.length t.waiting))
  end

let busy t = t.busy

let queue_length t = Queue.length t.waiting

let busy_time t = t.busy_time

let utilization t =
  let elapsed = Engine.now t.engine in
  if elapsed <= 0.0 then 0.0
  else t.busy_time /. (float_of_int t.capacity *. elapsed)
