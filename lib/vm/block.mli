(** Basic-block superinstruction compiler — the VM's third execution
    tier, above {!Memory.fetch_reference} and the predecoded icache.

    Basic blocks are discovered at execution time (entry pc to the
    first control transfer, capped at {!Memory.max_block_slots}
    instructions) and compiled into closures with register and operand
    accesses specialized per instruction and the per-instruction tag
    check hoisted to one per-block tag comparison at dispatch.
    Compiled blocks are cached per segment, keyed by block-entry slot,
    and registered with the segment's block registry
    ({!Memory.register_block}) so that any store into a block's byte
    range — self-modifying code, injected shellcode, a supervisor
    rollback — invalidates it before the next dispatch (or, for a
    store issued from inside the very block it rewrites, before the
    next instruction of the in-flight execution).

    Observable semantics are bit-identical to the stepping
    interpreter: retired counts advance per instruction, faults leave
    registers and pc exactly as {!Cpu.step} would, and a block is only
    dispatched when it fits in the remaining fuel, so
    {!Cpu.run}[ ~fuel] never overruns its slice.

    This module sits below [Cpu] in the dependency order and therefore
    owns the fault/trap types; [Cpu] re-exports them. *)

type fault =
  | Segfault of { addr : int; access : Memory.access }
  | Bad_tag of { addr : int; found : int; expected : int }
  | Bad_instruction of { addr : int }
  | Division_fault of { addr : int }
  | Stack_fault of { addr : int }

type trap = Syscall_trap | Halt_trap | Fault_trap of fault

type status = {
  mutable st_pc : int;  (** pc after the (partial) block execution *)
  mutable st_retired : int;  (** instructions retired by this execution *)
  mutable st_trap : trap option;
  mutable st_k : int;  (** executor scratch; meaningless between runs *)
  mutable st_base : int;  (** executor scratch: completed self-loop iterations *)
  mutable st_budget : int;
      (** set by the dispatcher before {!exec}: total fuel available,
          bounding how many times a self-looping block may re-enter
          itself without returning *)
}
(** Reusable scratch cell the executor reports into, so the hot path
    allocates nothing per block. *)

type compiled
(** A compiled block: hoisted tag, length, shared validity cell, and
    the executor closure. *)

type cache
(** Per-CPU block cache over one segment. The closures capture the
    CPU's register file and segment directly. *)

val create : Memory.t -> int array -> expected_tag:int -> cache
(** [create mem regs ~expected_tag] — [regs] is the live 16-entry
    register file the compiled closures mutate in place. *)

val scratch : cache -> status

val find : cache -> pc:int -> remaining:int -> compiled option
(** Return a block runnable from [pc] within [remaining] fuel,
    compiling (and registering) it on a miss. [None] means the caller
    must fall back to single-stepping: unaligned or out-of-range pc,
    undecodable entry, a hoisted tag that differs from the CPU's
    expected tag (the step raises the precise fault), or a block
    longer than [remaining]. *)

val exec : compiled -> status -> unit
(** Run the block, filling the status cell with the resulting pc,
    retired count, and trap (if any). Never raises. The caller must
    set [st_budget] to the remaining fuel first: a block whose branch
    terminator targets its own entry loops inside the chain while full
    iterations fit in the budget, reporting the accumulated retired
    count. *)

val length : compiled -> int
(** Number of instructions in the block. *)

val compiled_blocks : cache -> int
(** Compilations performed (recompilations after invalidation
    included). *)

val hits : cache -> int
(** Dispatches served by an already-compiled, still-valid block. *)
