lib/httpd/site.mli: Nv_os
