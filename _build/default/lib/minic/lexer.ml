exception Error of { line : int; message : string }

let fail line fmt = Printf.ksprintf (fun message -> raise (Error { line; message })) fmt

let is_digit c = c >= '0' && c <= '9'

let is_hex_digit c = is_digit c || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || is_digit c

let escape_char line = function
  | 'n' -> '\n'
  | 't' -> '\t'
  | 'r' -> '\r'
  | '0' -> '\000'
  | '\\' -> '\\'
  | '\'' -> '\''
  | '"' -> '"'
  | c -> fail line "unknown escape '\\%c'" c

let tokenize source =
  let n = String.length source in
  let tokens = ref [] in
  let line = ref 1 in
  let emit kind = tokens := Token.{ kind; line = !line } :: !tokens in
  let rec scan i =
    if i >= n then emit Token.Eof
    else begin
      let c = source.[i] in
      match c with
      | '\n' ->
        incr line;
        scan (i + 1)
      | ' ' | '\t' | '\r' -> scan (i + 1)
      | '/' when i + 1 < n && source.[i + 1] = '/' ->
        let rec skip j = if j < n && source.[j] <> '\n' then skip (j + 1) else j in
        scan (skip (i + 2))
      | '/' when i + 1 < n && source.[i + 1] = '*' ->
        let rec skip j =
          if j + 1 >= n then fail !line "unterminated comment"
          else if source.[j] = '*' && source.[j + 1] = '/' then j + 2
          else begin
            if source.[j] = '\n' then incr line;
            skip (j + 1)
          end
        in
        scan (skip (i + 2))
      | '0' when i + 1 < n && (source.[i + 1] = 'x' || source.[i + 1] = 'X') ->
        let rec span j = if j < n && is_hex_digit source.[j] then span (j + 1) else j in
        let stop = span (i + 2) in
        if stop = i + 2 then fail !line "malformed hex literal";
        let text = String.sub source i (stop - i) in
        emit (Token.Int_lit (int_of_string text));
        scan stop
      | c when is_digit c ->
        let rec span j = if j < n && is_digit source.[j] then span (j + 1) else j in
        let stop = span i in
        emit (Token.Int_lit (int_of_string (String.sub source i (stop - i))));
        scan stop
      | c when is_ident_start c ->
        let rec span j = if j < n && is_ident_char source.[j] then span (j + 1) else j in
        let stop = span i in
        let text = String.sub source i (stop - i) in
        (match Token.keyword_of_string text with
        | Some kw -> emit kw
        | None -> emit (Token.Ident text));
        scan stop
      | '\'' ->
        if i + 1 >= n then fail !line "unterminated char literal";
        let ch, stop =
          if source.[i + 1] = '\\' then begin
            if i + 2 >= n then fail !line "unterminated char literal";
            (escape_char !line source.[i + 2], i + 3)
          end
          else (source.[i + 1], i + 2)
        in
        if stop >= n || source.[stop] <> '\'' then fail !line "unterminated char literal";
        emit (Token.Char_lit ch);
        scan (stop + 1)
      | '"' ->
        let buf = Buffer.create 16 in
        let rec str j =
          if j >= n then fail !line "unterminated string literal"
          else begin
            match source.[j] with
            | '"' -> j + 1
            | '\\' ->
              if j + 1 >= n then fail !line "unterminated string literal";
              Buffer.add_char buf (escape_char !line source.[j + 1]);
              str (j + 2)
            | '\n' -> fail !line "newline in string literal"
            | c ->
              Buffer.add_char buf c;
              str (j + 1)
          end
        in
        let stop = str (i + 1) in
        emit (Token.Str_lit (Buffer.contents buf));
        scan stop
      | _ ->
        let two target kind =
          if i + 1 < n && source.[i + 1] = target then begin
            emit kind;
            true
          end
          else false
        in
        let advance_by =
          match c with
          | '(' -> emit Token.Lparen; 1
          | ')' -> emit Token.Rparen; 1
          | '{' -> emit Token.Lbrace; 1
          | '}' -> emit Token.Rbrace; 1
          | '[' -> emit Token.Lbracket; 1
          | ']' -> emit Token.Rbracket; 1
          | ';' -> emit Token.Semi; 1
          | ',' -> emit Token.Comma; 1
          | '+' -> if two '+' Token.Plus_plus then 2 else (emit Token.Plus; 1)
          | '-' -> if two '-' Token.Minus_minus then 2 else (emit Token.Minus; 1)
          | '*' -> emit Token.Star; 1
          | '/' -> emit Token.Slash; 1
          | '%' -> emit Token.Percent; 1
          | '^' -> emit Token.Caret; 1
          | '~' -> emit Token.Tilde; 1
          | '&' -> if two '&' Token.And_and then 2 else (emit Token.Amp; 1)
          | '|' -> if two '|' Token.Or_or then 2 else (emit Token.Pipe; 1)
          | '!' -> if two '=' Token.Ne then 2 else (emit Token.Bang; 1)
          | '=' -> if two '=' Token.Eq then 2 else (emit Token.Assign; 1)
          | '<' ->
            if two '<' Token.Shl then 2
            else if two '=' Token.Le then 2
            else (emit Token.Lt; 1)
          | '>' ->
            if two '>' Token.Shr then 2
            else if two '=' Token.Ge then 2
            else (emit Token.Gt; 1)
          | c -> fail !line "unexpected character %C" c
        in
        scan (i + advance_by)
    end
  in
  scan 0;
  List.rev !tokens
