module Monitor = Nv_core.Monitor
module Nsystem = Nv_core.Nsystem
module Alarm = Nv_core.Alarm
module Socket = Nv_os.Socket
module Deploy = Nv_httpd.Deploy
module Http = Nv_httpd.Http

type verdict =
  | Escalated of string
  | Corrupted_undetected
  | Detected of Nv_core.Alarm.reason
  | Crashed of string
  | Recovered of { recoveries : int; last_alarm : Nv_core.Alarm.reason option }
  | No_effect

let verdict_label = function
  | Escalated _ -> "ESCALATED"
  | Corrupted_undetected -> "CORRUPTED"
  | Detected _ -> "DETECTED"
  | Crashed _ -> "CRASHED"
  | Recovered _ -> "RECOVERED"
  | No_effect -> "no effect"

let pp_verdict ppf = function
  | Escalated evidence -> Format.fprintf ppf "ESCALATED (leaked %S)" evidence
  | Corrupted_undetected -> Format.pp_print_string ppf "CORRUPTED (undetected)"
  | Detected reason -> Format.fprintf ppf "DETECTED (%a)" Alarm.pp reason
  | Crashed why -> Format.fprintf ppf "CRASHED (%s)" why
  | Recovered { recoveries; last_alarm } ->
    Format.fprintf ppf "RECOVERED (%d rollback%s%a)" recoveries
      (if recoveries = 1 then "" else "s")
      (fun ppf -> function
        | None -> ()
        | Some reason -> Format.fprintf ppf ", last alarm: %a" Alarm.pp reason)
      last_alarm
  | No_effect -> Format.pp_print_string ppf "no effect"

type attack = {
  name : string;
  description : string;
  assumes_keys : bool;
  run : Nsystem.t -> verdict;
}

(* ------------------------------------------------------------------ *)
(* Driving helpers                                                     *)
(* ------------------------------------------------------------------ *)

(* Allocation-free substring scan (responses can be tens of KB; the
   old String.sub-per-position version allocated a fresh copy of the
   needle-sized window at every offset). *)
let contains haystack needle =
  let h = String.length haystack and n = String.length needle in
  let rec matches_at i j = j = n || (haystack.[i + j] = needle.[j] && matches_at i (j + 1)) in
  let rec scan i = i <= h - n && (matches_at i 0 || scan (i + 1)) in
  n = 0 || scan 0

type step_result =
  | Response of string
  | Alarmed of Alarm.reason
  | Died of string

(* One request against a system expected to be (or come back to) the
   accept loop. The connection is kept so that bytes written by
   injected code before the process dies still reach the attacker. *)
let send sys request =
  match Nsystem.run sys with
  | Monitor.Blocked_on_accept -> (
    let conn = Nsystem.connect sys in
    Socket.client_send conn request;
    Socket.client_close conn;
    match Nsystem.run sys with
    | Monitor.Blocked_on_accept -> Response (Socket.client_recv conn)
    | Monitor.Alarm reason -> Alarmed reason
    | Monitor.Exited status ->
      (* Injected code may exit after writing its loot. *)
      let received = Socket.client_recv conn in
      if received <> "" then Response received
      else Died (Printf.sprintf "server exited %d" status)
    | Monitor.Out_of_fuel -> Died "fuel exhausted")
  | Monitor.Alarm reason -> Alarmed reason
  | Monitor.Exited status -> Died (Printf.sprintf "server exited %d" status)
  | Monitor.Out_of_fuel -> Died "fuel exhausted"

let expected_stored_uid sys ~variant =
  let variation = Nsystem.variation sys in
  let spec = variation.Nv_core.Variation.variants.(variant) in
  spec.Nv_core.Variation.uid.Nv_core.Reexpression.encode 33

let uid_intact sys =
  Payloads.read_stored_uid sys ~variant:0 = expected_stored_uid sys ~variant:0

(* Shared epilogue: after the corruption step survived undetected, try
   to cash it in with a traversal request, then classify. *)
let classify_after_corruption sys =
  match send sys (Http.get Payloads.traversal_url) with
  | Alarmed reason -> Detected reason
  | Died why -> Crashed why
  | Response raw ->
    if contains raw Payloads.shadow_marker then Escalated Payloads.shadow_marker
    else if uid_intact sys then No_effect
    else Corrupted_undetected

(* ------------------------------------------------------------------ *)
(* The attacks                                                         *)
(* ------------------------------------------------------------------ *)

let baseline_request =
  {
    name = "baseline-request";
    description = "control row: a benign GET / (no attack)";
    assumes_keys = false;
    run =
      (fun sys ->
        match send sys (Http.get "/") with
        | Alarmed reason -> Detected reason
        | Died why -> Crashed why
        | Response raw -> (
          match Http.parse_response raw with
          | Ok { Http.status = 200; _ } when uid_intact sys -> No_effect
          | Ok _ -> Corrupted_undetected
          | Error e -> Crashed ("bad response: " ^ e)));
  }

let overflow_attack ~name ~description ~url =
  {
    name;
    description;
    assumes_keys = false;
    run =
      (fun sys ->
        match send sys (Http.get url) with
        | Alarmed reason -> Detected reason
        | Died why -> Crashed why
        | Response _ -> classify_after_corruption sys);
  }

let uid_null_overflow =
  overflow_attack ~name:"uid-null-overflow"
    ~description:
      "64-byte URL: strcpy's terminator zeroes worker_uid's low byte (canonical 33 -> 0 \
       = root), then ../ traversal reads /secret/shadow"
    ~url:(Payloads.null_overflow_url ())

let uid_partial_byte =
  overflow_attack ~name:"uid-partial-byte"
    ~description:"65-byte URL: one attacker-chosen byte lands in worker_uid"
    ~url:(Payloads.partial_overwrite_url ~low_byte:'\x01')

let uid_three_bytes =
  overflow_attack ~name:"uid-three-bytes"
    ~description:
      "67-byte URL: the three low-order worker_uid bytes replaced with 'AAA' (the \
       Section 2.3 partial-overwrite granularity); the terminator zeroes the high byte"
    ~url:(Payloads.three_byte_overwrite_url ~low_bytes:"AAA")

let bit_attack ~name ~description ~bit ~value =
  {
    name;
    description;
    assumes_keys = false;
    run =
      (fun sys ->
        (* Park the server on accept, inject the fault, then probe. *)
        match Nsystem.run sys with
        | Monitor.Blocked_on_accept ->
          Payloads.flip_stored_uid_bit ~bit ~value sys;
          classify_after_corruption sys
        | Monitor.Alarm reason -> Detected reason
        | Monitor.Exited status -> Crashed (Printf.sprintf "exited %d at startup" status)
        | Monitor.Out_of_fuel -> Crashed "fuel exhausted at startup");
  }

let uid_bit_set_low =
  bit_attack ~name:"uid-bit-set-low"
    ~description:"hardware fault: force bit 0 of the stored worker_uid word to 0 in every variant"
    ~bit:0 ~value:false

let uid_bit_set_high =
  bit_attack ~name:"uid-bit-set-high"
    ~description:
      "hardware fault: force bit 31 to 1 in every variant - the XOR key leaves bit 31 \
       unflipped, the paper's admitted escape"
    ~bit:31 ~value:true

let stack_code_injection =
  {
    name = "stack-code-injection";
    description =
      "stack smash via the auth token: return address redirected to machine code in the \
       request buffer that opens and exfiltrates /secret/shadow";
    assumes_keys = false;
    run =
      (fun sys ->
        (* The payload embeds variant-0 absolute addresses, so the
           system must be parked (loaded) before building it. *)
        match Nsystem.run sys with
        | Monitor.Blocked_on_accept -> (
          let variation = Nsystem.variation sys in
          let tag = variation.Nv_core.Variation.variants.(0).Nv_core.Variation.tag in
          let request = Payloads.code_injection_request sys ~tag in
          match send sys request with
          | Alarmed reason -> Detected reason
          | Died why -> Crashed why
          | Response raw ->
            if contains raw Payloads.shadow_marker then Escalated Payloads.shadow_marker
            else if uid_intact sys then No_effect
            else Corrupted_undetected)
        | Monitor.Alarm reason -> Detected reason
        | Monitor.Exited status -> Crashed (Printf.sprintf "exited %d at startup" status)
        | Monitor.Out_of_fuel -> Crashed "fuel exhausted at startup");
  }

let injection_attack ~name ~description ~assumes_keys ~value =
  {
    name;
    description;
    assumes_keys;
    run =
      (fun sys ->
        match Nsystem.run sys with
        | Monitor.Blocked_on_accept ->
          Payloads.inject_stored_uid ~value sys;
          classify_after_corruption sys
        | Monitor.Alarm reason -> Detected reason
        | Monitor.Exited status -> Crashed (Printf.sprintf "exited %d at startup" status)
        | Monitor.Out_of_fuel -> Crashed "fuel exhausted at startup");
  }

(* The regression attack for the shared-key bug: the attacker has read
   the paper (or the pre-fix source) and writes into each variant the
   published portfolio's encoding of root — identity for variant 0,
   the one shared key for everyone else. Under any shared-key
   deployment every variant decodes to 0 and the escalation sails
   through; one per-variant (or per-boot) key makes the guess wrong in
   at least one variant and the next UID-bearing call diverges. *)
let uid_guessed_key_injection =
  injection_attack ~name:"uid-guessed-key-injection"
    ~description:
      "key-compromise fault: write each variant's guess of encode(0) using the \
       published shared key (variant 0 <- 0, variants >= 1 <- 0x7FFFFFFF) - \
       undetected wherever all non-zero variants share that key"
    ~assumes_keys:true
    ~value:(fun i -> if i = 0 then 0 else Nv_core.Reexpression.paper_uid_key)

(* The single-axis defeat for bare rotations: every rotation fixes 0,
   so a blind zeroing fault decodes to root in every rotation-only
   variant at once. Any XOR or additive component breaks the
   agreement. *)
let uid_zero_injection =
  injection_attack ~name:"uid-zero-injection"
    ~description:
      "blind zeroing fault: write 0 over the stored worker_uid word in every \
       variant (same bytes everywhere) - defeats any reexpression with a fixed \
       point at 0, e.g. bare rotations"
    ~assumes_keys:false
    ~value:(fun _ -> 0)

let attacks =
  [
    baseline_request;
    uid_null_overflow;
    uid_partial_byte;
    uid_three_bytes;
    uid_bit_set_low;
    uid_bit_set_high;
    uid_guessed_key_injection;
    uid_zero_injection;
    stack_code_injection;
  ]

let find name = List.find_opt (fun a -> a.name = name) attacks

(* Under a supervisor a detected attack does not halt the system: the
   rollback absorbs it, the probe requests see a healthy server, and
   the attack classifies as harmless. Distinguish that from a
   genuinely effect-free attack by asking the supervisor whether it
   had to intervene. *)
let classify_with_supervisor sys verdict =
  match (Nsystem.supervisor sys, verdict) with
  | Some sup, No_effect when Nv_core.Supervisor.recoveries sup > 0 ->
    Recovered
      {
        recoveries = Nv_core.Supervisor.recoveries sup;
        last_alarm = Nv_core.Supervisor.last_alarm sup;
      }
  | _ -> verdict

let run_attack ?parallel ?recover attack config =
  match Deploy.build ?parallel ?recover config with
  | Error _ as e -> e
  | Ok sys ->
    let verdict = attack.run sys in
    Ok (classify_with_supervisor sys verdict)

type traced = {
  verdict : verdict;
  forensics : Nv_util.Metrics.Json.value option;
  trace_json : Nv_util.Metrics.Json.value;
}

let run_attack_traced ?parallel ?recover attack config =
  match Deploy.build ?parallel ?recover config with
  | Error _ as e -> e
  | Ok sys ->
    let monitor = Nsystem.monitor sys in
    let session = Monitor.trace_session monitor in
    Nv_util.Trace.set_enabled session true;
    let verdict = classify_with_supervisor sys (attack.run sys) in
    (* Under a supervisor the monitor's bundle survives the rollback
       (it is captured at alarm time), so it is the latest alarm's
       post-mortem either way; fall back to the supervisor's recovery
       log in case a future monitor clears it on restore. *)
    let forensics =
      match Monitor.forensics monitor with
      | Some _ as f -> f
      | None -> (
        match Nsystem.supervisor sys with
        | None -> None
        | Some sup -> (
          match List.rev (Nv_core.Supervisor.recovery_log sup) with
          | [] -> None
          | rr :: _ -> rr.Nv_core.Supervisor.rr_forensics))
    in
    let extra =
      match forensics with Some f -> [ ("forensics", f) ] | None -> []
    in
    let trace_json =
      Nv_util.Trace.to_chrome ~syscall_name:Nv_os.Syscall.name ~extra session
    in
    Ok { verdict; forensics; trace_json }

type matrix = (attack * (Deploy.config * verdict) list) list

(* Each (attack, config) cell builds its own fresh system, so the
   cells are independent; under [parallel] they are fanned out on the
   shared domain pool and reassembled in matrix order. *)
let run_matrix ?parallel ?recover ?(attacks = attacks) ?(configs = Deploy.matrix) () =
  let parallel =
    match parallel with Some b -> b | None -> Nv_util.Dompool.env_default ()
  in
  let cell (attack, config) =
    match run_attack ~parallel ?recover attack config with
    | Ok verdict -> (config, verdict)
    | Error message -> (config, Crashed ("build failed: " ^ message))
  in
  let pairs =
    Array.of_list
      (List.concat_map (fun a -> List.map (fun c -> (a, c)) configs) attacks)
  in
  let results =
    if parallel then Nv_util.Dompool.map_array (Nv_util.Dompool.global ()) cell pairs
    else Array.map cell pairs
  in
  let nconfigs = List.length configs in
  List.mapi
    (fun i attack -> (attack, Array.to_list (Array.sub results (i * nconfigs) nconfigs)))
    attacks

let render_matrix matrix =
  let configs =
    match matrix with [] -> [] | (_, cells) :: _ -> List.map fst cells
  in
  let header = "attack" :: List.map Deploy.name configs in
  let rows =
    List.map
      (fun (attack, cells) -> attack.name :: List.map (fun (_, v) -> verdict_label v) cells)
      matrix
  in
  Nv_util.Tablefmt.render ~header ~rows ()

(* An undetected cell is one where the attacker gained something the
   monitor never saw: escalation or silent corruption. The control row
   is excluded — it attacks nothing. *)
let undetected_cells matrix =
  List.concat_map
    (fun (attack, cells) ->
      if attack.name = baseline_request.name then []
      else
        List.filter_map
          (fun (config, verdict) ->
            match verdict with
            | Escalated _ | Corrupted_undetected -> Some (attack, config, verdict)
            | Detected _ | Crashed _ | Recovered _ | No_effect -> None)
          cells)
    matrix

let matrix_json matrix =
  let module Json = Nv_util.Metrics.Json in
  let cells =
    List.map
      (fun (attack, cells) ->
        ( attack.name,
          Json.Obj
            (List.map
               (fun (config, verdict) -> (Deploy.name config, Json.Str (verdict_label verdict)))
               cells) ))
      matrix
  in
  let undetected =
    List.map
      (fun (attack, config, verdict) ->
        Json.Obj
          [
            ("attack", Json.Str attack.name);
            ("config", Json.Str (Deploy.name config));
            ("verdict", Json.Str (verdict_label verdict));
          ])
      (undetected_cells matrix)
  in
  Json.Obj [ ("cells", Json.Obj cells); ("undetected", Json.List undetected) ]
