(** Shared {!Logs} sources for the library's subsystems. *)

val monitor : Logs.src
(** Rendezvous / divergence events from the N-variant monitor. *)

val kernel : Logs.src
(** Simulated-kernel syscall dispatch. *)

val vm : Logs.src
(** Virtual machine faults and traps. *)

val workload : Logs.src
(** Workload generator progress. *)

val supervisor : Logs.src
(** Recovery supervisor: checkpoints, rollbacks, fail-stop. *)

val fleet : Logs.src
(** Fleet balancer: replica health transitions and shedding. *)

val engine : Logs.src
(** Discrete-event simulation engine. *)

val setup : ?level:Logs.level -> unit -> unit
(** Install a [Fmt]-based reporter on stderr and set the global level
    (default [Logs.Warning]). Intended for executables; the library
    itself never calls this. *)
