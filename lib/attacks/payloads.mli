(** Attack payload construction against the case-study server.

    All payloads are delivered through the single channel the attacker
    controls — the request bytes — which the N-variant framework
    replicates identically to every variant. The builders model the
    attacker of the paper's threat model: they know the target binary's
    layout (variant 0's, say — the framework keeps no secrets), but
    they cannot send different bytes to different variants.

    The bit-level fault payloads ({!flip_stored_uid_bit}) are the one
    exception: they model hardware-level faults (the paper cites the
    heat-lamp attack on the JVM) that our simulated substrate injects
    directly into guest memory, identically in every variant. *)

val shadow_marker : string
(** A substring of [/secret/shadow]'s content; its presence in a
    response proves the attacker read the protected file. *)

val null_overflow_url : unit -> string
(** URL of exactly {!Nv_httpd.Httpd_source.url_buffer_size} bytes: the
    copy's terminating NUL lands on [worker_uid]'s low byte, turning
    canonical UID 33 into 0 (root). *)

val partial_overwrite_url : low_byte:char -> string
(** URL one byte longer: [low_byte] overwrites the UID's low byte and
    the terminator zeroes the second byte. *)

val three_byte_overwrite_url : low_bytes:string -> string
(** URL that overwrites the UID's three low-order bytes (the partial
    overwrite granularity Section 2.3 discusses) — the terminating NUL
    lands exactly on the high byte. [low_bytes] must be 3 NUL-free
    bytes. *)

val traversal_url : string
(** ["/../../secret/shadow"] — escapes the [/var/www] document root;
    only useful once the effective UID is root. *)

val flip_stored_uid_bit :
  bit:int -> value:bool -> Nv_core.Nsystem.t -> unit
(** Hardware-fault model: force bit [bit] of the {e stored}
    [worker_uid] word to [value] in {e every} variant (same physical
    effect everywhere). [bit 31, value true] is the paper's high-bit
    escape; low bits are detected. *)

val inject_stored_uid : value:(int -> Nv_vm.Word.t) -> Nv_core.Nsystem.t -> unit
(** Write [value i] over variant [i]'s stored [worker_uid] word. With
    a constant [value] this is the blind zeroing fault (same physical
    bytes everywhere, like {!flip_stored_uid_bit}); with a per-variant
    [value] it models the key-compromise attacker who computes each
    variant's representation from {e guessed} reexpression keys — the
    regression payload for the pre-fix shared-key deployments. *)

val read_stored_uid : Nv_core.Nsystem.t -> variant:int -> Nv_vm.Word.t
(** The concrete [worker_uid] word in a variant's memory (post-attack
    forensics for the campaign verdicts). *)

val code_injection_request :
  Nv_core.Nsystem.t -> tag:int -> string
(** The stack-smash + code-injection request: overflows the
    [check_auth] token buffer up to the saved frame pointer and return
    address, pointing the return at machine code embedded later in the
    raw request buffer. The injected code opens [/secret/shadow], reads
    it, writes it to the connection, and exits. [tag] is the
    instruction tag the attacker stamps on the injected code (the tags
    are public; tag 0 targets untagged deployments, tag of variant 0
    targets tagged ones — either way at most one variant can accept
    the code). Addresses are resolved against variant 0's layout. *)
