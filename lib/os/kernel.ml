module Metrics = Nv_util.Metrics

let err = Nv_vm.Word.of_signed (-1)

let eagain = Nv_vm.Word.of_signed (-2)

let listen_fd = 3

type file_desc = {
  path : string;
  mutable pos : int;
  writable : bool;
  append : bool;
}

type desc =
  | Dnull
  | Dcapture of Buffer.t
  | Dfile of file_desc
  | Dconn of Socket.conn
  | Dlistener

type slot = Free | Shared of desc | Unshared of desc array

type data = Shared_data of string | Per_variant of string array

type t = {
  vfs : Vfs.t;
  variants : int;
  mutable cred : Cred.t;
  fds : slot array;
  listener : Socket.listener;
  stdout : Buffer.t;
  stderr : Buffer.t;
  unshared_paths : (string, unit) Hashtbl.t;
  mutable exit_status : int option;
  mutable syscalls : int;
  mutable open_fds : int;
  metrics : Metrics.t;
  calls_scope : Metrics.scope;
  syscalls_c : Metrics.counter;
  shared_bytes_in : Metrics.counter;
  shared_bytes_out : Metrics.counter;
  unshared_bytes_in : Metrics.counter;
  unshared_bytes_out : Metrics.counter;
  fds_open : Metrics.gauge;
  fds_high_water : Metrics.gauge;
}

let create ?metrics ?(fd_limit = 64) ~variants vfs =
  if variants < 1 then invalid_arg "Kernel.create: need at least one variant";
  if fd_limit <= listen_fd then invalid_arg "Kernel.create: fd_limit too small";
  let metrics = match metrics with Some m -> m | None -> Metrics.create () in
  let scope = Metrics.scope metrics "kernel" in
  let io_scope = Metrics.sub scope "io" in
  let fds_scope = Metrics.sub scope "fds" in
  let stdout = Buffer.create 256 in
  let stderr = Buffer.create 256 in
  let fds = Array.make fd_limit Free in
  fds.(0) <- Shared Dnull;
  fds.(1) <- Shared (Dcapture stdout);
  fds.(2) <- Shared (Dcapture stderr);
  fds.(listen_fd) <- Shared Dlistener;
  let t =
    {
      vfs;
      variants;
      cred = Cred.superuser;
      fds;
      listener = Socket.make_listener ();
      stdout;
      stderr;
      unshared_paths = Hashtbl.create 8;
      exit_status = None;
      syscalls = 0;
      open_fds = 4;
      metrics;
      calls_scope = Metrics.sub scope "calls";
      syscalls_c = Metrics.counter scope "syscalls";
      shared_bytes_in = Metrics.counter io_scope "shared_bytes_in";
      shared_bytes_out = Metrics.counter io_scope "shared_bytes_out";
      unshared_bytes_in = Metrics.counter io_scope "unshared_bytes_in";
      unshared_bytes_out = Metrics.counter io_scope "unshared_bytes_out";
      fds_open = Metrics.gauge fds_scope "open";
      fds_high_water = Metrics.gauge fds_scope "high_water";
    }
  in
  Metrics.set_gauge t.fds_open (float_of_int t.open_fds);
  Metrics.max_gauge t.fds_high_water (float_of_int t.open_fds);
  t

let vfs t = t.vfs

let variants t = t.variants

let metrics t = t.metrics

let cred t = t.cred

let set_cred t cred = t.cred <- cred

let listener t = t.listener

let connect t = Socket.connect t.listener

let register_unshared t path = Hashtbl.replace t.unshared_paths path ()

let is_unshared t path = Hashtbl.mem t.unshared_paths path

let stdout_contents t = Buffer.contents t.stdout

let stderr_contents t = Buffer.contents t.stderr

let exit_status t = t.exit_status

let syscalls_executed t = t.syscalls

let count t name =
  t.syscalls <- t.syscalls + 1;
  Metrics.incr t.syscalls_c;
  Metrics.incr (Metrics.counter t.calls_scope name)

let fd_delta t delta =
  t.open_fds <- t.open_fds + delta;
  Metrics.set_gauge t.fds_open (float_of_int t.open_fds);
  Metrics.max_gauge t.fds_high_water (float_of_int t.open_fds)

let alloc_fd t =
  let rec scan i =
    if i >= Array.length t.fds then None
    else begin
      match t.fds.(i) with Free -> Some i | Shared _ | Unshared _ -> scan (i + 1)
    end
  in
  scan 3

let slot t fd = if fd < 0 || fd >= Array.length t.fds then Free else t.fds.(fd)

(* ------------------------------------------------------------------ *)
(* Syscalls                                                            *)
(* ------------------------------------------------------------------ *)

let sys_exit t ~status =
  count t "exit";
  t.exit_status <- Some status;
  0

let variant_path path i = Printf.sprintf "%s-%d" path i

let open_one t path flags =
  let access =
    if flags land (Syscall.o_wronly lor Syscall.o_append) <> 0 then Vfs.Write_access
    else Vfs.Read_access
  in
  match Vfs.open_file t.vfs ~cred:t.cred ~path ~access with
  | Error _ -> None
  | Ok () ->
    let writable = access = Vfs.Write_access in
    let append = flags land Syscall.o_append <> 0 in
    if writable && not append then ignore (Vfs.set_contents t.vfs ~path "");
    Some (Dfile { path; pos = 0; writable; append })

let sys_open t ~path ~flags =
  count t "open";
  match alloc_fd t with
  | None -> err
  | Some fd ->
    if is_unshared t path then begin
      let descs =
        Array.init t.variants (fun i -> open_one t (variant_path path i) flags)
      in
      if Array.for_all Option.is_some descs then begin
        t.fds.(fd) <- Unshared (Array.map Option.get descs);
        fd_delta t 1;
        fd
      end
      else err
    end
    else begin
      match open_one t path flags with
      | None -> err
      | Some desc ->
        t.fds.(fd) <- Shared desc;
        fd_delta t 1;
        fd
    end

let sys_close t ~fd =
  count t "close";
  match slot t fd with
  | Free -> err
  | Shared (Dconn conn) ->
    Socket.server_close conn;
    t.fds.(fd) <- Free;
    fd_delta t (-1);
    0
  | Shared _ | Unshared _ ->
    t.fds.(fd) <- Free;
    fd_delta t (-1);
    0

let read_desc t desc len =
  match desc with
  | Dnull -> ""
  | Dcapture _ -> ""
  | Dlistener -> ""
  | Dconn conn -> Socket.server_read conn ~max:len
  | Dfile f -> (
    match Vfs.contents t.vfs ~path:f.path with
    | Error _ -> ""
    | Ok content ->
      let available = String.length content - f.pos in
      let n = max 0 (min len available) in
      let data = String.sub content f.pos n in
      f.pos <- f.pos + n;
      data)

let sys_read t ~fd ~len =
  count t "read";
  let len = max 0 len in
  match slot t fd with
  | Free -> (Nv_vm.Word.to_signed err, Shared_data "")
  | Shared desc ->
    let data = read_desc t desc len in
    Metrics.add t.shared_bytes_in (String.length data);
    (String.length data, Shared_data data)
  | Unshared descs ->
    let chunks = Array.map (fun desc -> read_desc t desc len) descs in
    Array.iter (fun c -> Metrics.add t.unshared_bytes_in (String.length c)) chunks;
    let n = if Array.length chunks > 0 then String.length chunks.(0) else 0 in
    (n, Per_variant chunks)

let write_desc t desc bytes =
  match desc with
  | Dnull -> String.length bytes
  | Dlistener -> Nv_vm.Word.to_signed err
  | Dcapture buf ->
    Buffer.add_string buf bytes;
    String.length bytes
  | Dconn conn -> Socket.server_write conn bytes
  | Dfile f ->
    if not f.writable then Nv_vm.Word.to_signed err
    else begin
      match Vfs.append_contents t.vfs ~path:f.path bytes with
      | Error _ -> Nv_vm.Word.to_signed err
      | Ok () -> String.length bytes
    end

let sys_write t ~fd ~data =
  count t "write";
  match (slot t fd, data) with
  | (Free, _) -> Nv_vm.Word.to_signed err
  | (Shared desc, Shared_data bytes) ->
    let result = write_desc t desc bytes in
    if result > 0 then Metrics.add t.shared_bytes_out result;
    result
  | (Shared desc, Per_variant chunks) ->
    (* Variants wrote different bytes to a shared descriptor; the
       monitor should have raised an alarm before getting here, but we
       fail safe by writing variant 0's bytes. *)
    let result = write_desc t desc (if Array.length chunks > 0 then chunks.(0) else "") in
    if result > 0 then Metrics.add t.shared_bytes_out result;
    result
  | (Unshared descs, Per_variant chunks) when Array.length chunks = Array.length descs ->
    let results = Array.map2 (fun desc bytes -> write_desc t desc bytes) descs chunks in
    Array.iter (fun r -> if r > 0 then Metrics.add t.unshared_bytes_out r) results;
    Array.fold_left min max_int results
  | (Unshared descs, Shared_data bytes) ->
    let results = Array.map (fun desc -> write_desc t desc bytes) descs in
    Array.iter (fun r -> if r > 0 then Metrics.add t.unshared_bytes_out r) results;
    Array.fold_left min max_int results
  | (Unshared _, Per_variant _) -> Nv_vm.Word.to_signed err

let sys_accept t ~fd =
  count t "accept";
  match slot t fd with
  | Shared Dlistener -> (
    match Socket.accept t.listener with
    | None -> eagain
    | Some conn -> (
      match alloc_fd t with
      | None -> err
      | Some fd ->
        t.fds.(fd) <- Shared (Dconn conn);
        fd_delta t 1;
        fd))
  | Free | Shared _ | Unshared _ -> err

let sys_getuid t =
  count t "getuid";
  t.cred.Cred.ruid

let sys_geteuid t =
  count t "geteuid";
  t.cred.Cred.euid

let sys_getgid t =
  count t "getgid";
  t.cred.Cred.rgid

let sys_getegid t =
  count t "getegid";
  t.cred.Cred.egid

let apply_setid t result =
  match result with
  | Ok cred ->
    t.cred <- cred;
    0
  | Error Cred.Eperm -> err

let sys_setuid t ~uid =
  count t "setuid";
  apply_setid t (Cred.setuid t.cred uid)

let sys_seteuid t ~uid =
  count t "seteuid";
  apply_setid t (Cred.seteuid t.cred uid)

let sys_setgid t ~gid =
  count t "setgid";
  apply_setid t (Cred.setgid t.cred gid)

let sys_setegid t ~gid =
  count t "setegid";
  apply_setid t (Cred.setegid t.cred gid)

let fd_is_unshared t ~fd =
  match slot t fd with Unshared _ -> true | Free | Shared _ -> false

let conn_of_fd t ~fd =
  match slot t fd with
  | Shared (Dconn conn) -> Some conn
  | Free | Shared _ | Unshared _ -> None
