(** Descriptive statistics for benchmark and workload reporting. *)

type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  p50 : float;
  p90 : float;
  p99 : float;
  max : float;
}

val mean : float array -> float
(** Arithmetic mean; 0 for an empty array. *)

val stddev : float array -> float
(** Sample standard deviation (n-1 denominator); 0 when n < 2. *)

val percentile : float array -> float -> float
(** [percentile xs p] with [p] in [\[0,100\]], linear interpolation on the
    sorted copy ([Float.compare] ordering). Raises [Invalid_argument] on
    an empty array, a [p] outside the range, or any NaN input. *)

val summarize : float array -> summary
(** Full summary (sorts once). Raises [Invalid_argument] on an empty
    array or any NaN input. *)

val pp_summary : Format.formatter -> summary -> unit
