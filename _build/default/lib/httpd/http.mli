(** Client-side HTTP/1.0 codec for the workload generator and attack
    campaign. *)

type response = {
  status : int;
  content_length : int option;
  body : string;
}

val get : string -> string
(** [get path] renders ["GET <path> HTTP/1.0\r\n\r\n"]. *)

val parse_response : string -> (response, string) result
(** Parse status line, scan headers for [Content-Length], split off the
    body. *)
