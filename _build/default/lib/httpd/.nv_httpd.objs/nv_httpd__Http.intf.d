lib/httpd/http.mli:
