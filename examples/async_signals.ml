(* Asynchronous events and scheduling divergence (Section 3.1).

     dune exec examples/async_signals.exe

   The paper: "if a signal is delivered to variants at different points
   in their execution, their behaviors may diverge. This leads to a
   false attack detection." This demo makes that concrete: the guest
   parses the unshared /etc/passwd (whose diversified copies have
   different lengths, so the variants' instruction streams drift) and
   then snapshots a counter a handler increments. Naive fixed-count
   delivery lands at different logical points and trips a false alarm;
   rendezvous-synchronized delivery never does. *)

module Variation = Nv_core.Variation
module Monitor = Nv_core.Monitor
module Nsystem = Nv_core.Nsystem

let program =
  Nv_minic.Runtime.with_runtime
    {|int sigcount = 0;
      int on_signal(void) {
        sigcount = sigcount + 1;
        return 0;
      }
      int main(void) {
        int fd = sys_accept(3);
        sys_close(fd);
        uid_t www = getpwnam_uid("www");   // divergent instruction counts
        int snapshot = sigcount;
        if (cond_chk(snapshot == 0)) {
          if (seteuid(www) != 0) { return 9; }
          return 0;
        }
        return 1;
      }|}

let build () =
  match
    Nv_transform.Uid_transform.transform_source ~variation:Variation.uid_diversity program
  with
  | Ok (images, _) -> Nsystem.create ~variation:Variation.uid_diversity images
  | Error e -> failwith e

let run_with mode =
  let sys = build () in
  (match Nsystem.run sys with
  | Monitor.Blocked_on_accept -> ()
  | _ -> failwith "daemon did not start");
  (match Monitor.post_signal (Nsystem.monitor sys) ~handler:"on_signal" ~mode with
  | Ok () -> ()
  | Error e -> failwith e);
  ignore (Nsystem.connect sys);
  Nsystem.run sys

let describe = function
  | Monitor.Exited n -> Printf.sprintf "exited %d" n
  | Monitor.Alarm reason -> "FALSE ALARM: " ^ Nv_core.Alarm.to_string reason
  | Monitor.Blocked_on_accept -> "blocked"
  | Monitor.Out_of_fuel -> "fuel exhausted"

let () =
  print_endline "== naive delivery at a fixed instruction count (scanning) ==";
  let outcomes =
    List.map
      (fun after -> (after, run_with (Monitor.Immediate { after_instructions = after })))
      (List.init 120 (fun i -> 50 + (50 * i)))
  in
  let alarms =
    List.filter (fun (_, o) -> match o with Monitor.Alarm _ -> true | _ -> false) outcomes
  in
  Printf.printf "  scanned %d delivery points; %d caused a false detection\n"
    (List.length outcomes) (List.length alarms);
  (match alarms with
  | (after, outcome) :: _ ->
    Printf.printf "  e.g. after %d instructions: %s\n" after (describe outcome)
  | [] -> print_endline "  (no divergent point found in this range)");
  (match List.find_opt (fun (_, o) -> o = Monitor.Exited 1) outcomes with
  | Some (after, _) ->
    Printf.printf "  after %d instructions: exited 1 (handler seen before the snapshot)\n"
      after
  | None -> ());
  (match List.find_opt (fun (_, o) -> o = Monitor.Exited 0) outcomes with
  | Some (after, _) ->
    Printf.printf "  after %d instructions: exited 0 (handler seen after the snapshot)\n"
      after
  | None -> ());
  print_endline "\n== synchronized delivery at the next rendezvous ==";
  Printf.printf "  %s (handler ran in lockstep in both variants)\n"
    (describe (run_with Monitor.At_rendezvous));
  print_endline
    "\nSome naive delivery points split the variants around the snapshot and the\n\
     cond_chk rendezvous reports divergence - an alarm with no attacker. The\n\
     synchronized discipline (the direction the paper credits to Bruschi et al.)\n\
     only ever delivers at equivalent states."
