(** Dataflow inference of UID-typed variables.

    Section 4 of the paper notes that when a programmer declares UID
    variables as plain [int], the variables can be recovered "using
    dataflow analysis by seeing which variables stored the result of
    functions returning a known uid value (e.g., getuid) or were passed
    as a parameter to a function expecting a user id (e.g., setuid)",
    citing Splint. This module implements that analysis for mini-C.

    The analysis is a whole-program fixpoint over:
    - seeds: assignment from a UID-returning function, use as a
      UID-typed argument;
    - propagation through assignments, comparisons, argument passing
      (inferring UID-ness of user function parameters), and returns
      (inferring UID-ness of user function results). *)

type var_id = { scope : string option; name : string }
(** [scope = None] for globals, [Some f] for a local or parameter of
    function [f]. *)

val infer : Ast.program -> var_id list
(** Variables inferred to hold UID values but not declared [uid_t],
    sorted by scope then name. *)

val apply : Ast.program -> Ast.program
(** Rewrite the declarations (globals, locals, parameters and return
    types) of inferred variables from [int] to [uid_t], producing a
    program the UID transformer can handle. *)
