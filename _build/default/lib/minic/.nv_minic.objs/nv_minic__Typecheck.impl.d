lib/minic/typecheck.ml: Ast Char Format Hashtbl List Option Pretty Printf String Tast
