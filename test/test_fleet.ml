(* Fleet tier: open-loop arrivals, load-balanced N-variant replicas,
   health-check drain / re-add, and the end-to-end Openload driver. *)

module Arrivals = Nv_sim.Arrivals
module Fleet = Nv_sim.Fleet
module Prng = Nv_util.Prng
module Deploy = Nv_httpd.Deploy
module Measure = Nv_workload.Measure
module Openload = Nv_workload.Openload

let models =
  [
    Arrivals.Poisson { rate = 250.0 };
    Arrivals.Bursty { rate = 250.0; burst_mean = 8.0; intra_gap_s = 0.0004 };
    Arrivals.Diurnal { rate = 250.0; amplitude = 0.5; period_s = 10.0 };
  ]

let times ~seed ~n model =
  let gen = Arrivals.create ~seed model in
  let rec go now acc k =
    if k = 0 then List.rev acc
    else
      let next = Arrivals.next gen ~now in
      go next (next :: acc) (k - 1)
  in
  go 0.0 [] n

(* ------------------------------------------------------------------ *)
(* Arrival generators                                                  *)
(* ------------------------------------------------------------------ *)

let test_arrivals_deterministic () =
  List.iter
    (fun model ->
      let a = times ~seed:42 ~n:500 model in
      let b = times ~seed:42 ~n:500 model in
      Alcotest.(check (list (float 0.0)))
        (Arrivals.model_name model ^ " same seed, same arrivals")
        a b;
      let c = times ~seed:43 ~n:500 model in
      Alcotest.(check bool)
        (Arrivals.model_name model ^ " different seed differs")
        true (a <> c))
    models

let test_arrivals_monotone () =
  List.iter
    (fun model ->
      let ts = times ~seed:7 ~n:2000 model in
      let ok =
        fst
          (List.fold_left
             (fun (ok, prev) t -> (ok && t > prev, t))
             (true, -1.0) ts)
      in
      Alcotest.(check bool)
        (Arrivals.model_name model ^ " strictly increasing")
        true ok)
    models

let test_arrivals_rate () =
  (* Long-run throughput of every model should track the configured
     rate: 5000 arrivals at 250 req/s should span ~20 s. *)
  List.iter
    (fun model ->
      let ts = times ~seed:11 ~n:5000 model in
      let span = List.nth ts 4999 in
      let rate = 5000.0 /. span in
      let name = Arrivals.model_name model in
      if rate < 200.0 || rate > 312.0 then
        Alcotest.failf "%s long-run rate %.1f req/s not near 250" name rate)
    models

(* ------------------------------------------------------------------ *)
(* Fleet balancer                                                      *)
(* ------------------------------------------------------------------ *)

let steady_stream ?(attack_at = max_int) ~seed () =
  let prng = Prng.create ~seed in
  let n = ref 0 in
  fun () ->
    incr n;
    {
      Fleet.service_s = 0.002 +. Prng.float prng 0.002;
      response_bytes = 200 + Prng.int prng 800;
      attack = !n = attack_at;
    }

let small_config =
  {
    Fleet.default with
    Fleet.replicas = 3;
    cores = 2;
    arrival = Arrivals.Poisson { rate = 500.0 };
    duration_s = 4.0;
    seed = 5;
  }

let test_conservation () =
  let report = Fleet.run small_config ~next_request:(steady_stream ~seed:5 ()) in
  Alcotest.(check int)
    "arrivals = completed + rejected + dropped + in_flight"
    report.Fleet.arrivals
    (report.Fleet.completed + report.Fleet.rejected + report.Fleet.dropped
   + report.Fleet.in_flight);
  Alcotest.(check bool) "served something" true (report.Fleet.completed > 1000);
  Alcotest.(check bool)
    "availability within [0,1]" true
    (report.Fleet.availability >= 0.0 && report.Fleet.availability <= 1.0);
  Array.iteri
    (fun i u ->
      if u < 0.0 || u > 1.0 +. 1e-9 then
        Alcotest.failf "replica %d utilization %f outside [0,1]" i u)
    report.Fleet.replica_utilization

let test_same_seed_same_report () =
  let a = Fleet.run small_config ~next_request:(steady_stream ~seed:5 ()) in
  let b = Fleet.run small_config ~next_request:(steady_stream ~seed:5 ()) in
  Alcotest.(check bool) "bit-identical reports" true (a = b)

let test_recovery_then_up () =
  (* Within the recovery budget an alarm drains the replica and brings
     it back after the pause: recovering -> up, no fail-stop. *)
  let config = { small_config with Fleet.duration_s = 2.0 } in
  let report =
    Fleet.run config ~next_request:(steady_stream ~attack_at:40 ~seed:5 ())
  in
  Alcotest.(check int) "one alarm" 1 report.Fleet.alarms;
  Alcotest.(check int) "one recovery" 1 report.Fleet.recoveries;
  Alcotest.(check int) "no fail-stop" 0 report.Fleet.failstops;
  match report.Fleet.transitions with
  | (t1, r1, "recovering") :: (t2, r2, "up") :: [] ->
    Alcotest.(check int) "same replica" r1 r2;
    Alcotest.(check bool) "pause elapsed" true
      (t2 -. t1 >= config.Fleet.recovery_pause_s -. 1e-9)
  | ts ->
    Alcotest.failf "unexpected transitions: %s"
      (String.concat "; "
         (List.map (fun (t, r, s) -> Printf.sprintf "%.3f r%d %s" t r s) ts))

let test_failstop_drain_and_readd () =
  (* With a zero recovery budget the first alarm fail-stops the replica:
     the balancer drains it, restarts it, walks it through probation
     probes, and only then re-admits it. Meanwhile the other replicas
     keep serving. *)
  let config =
    {
      small_config with
      Fleet.duration_s = 3.0;
      max_recoveries = 0;
      restart_s = 0.5;
      probe_interval_s = 0.05;
      probe_successes = 3;
    }
  in
  let report =
    Fleet.run config ~next_request:(steady_stream ~attack_at:40 ~seed:5 ())
  in
  Alcotest.(check int) "one alarm" 1 report.Fleet.alarms;
  Alcotest.(check int) "one fail-stop" 1 report.Fleet.failstops;
  Alcotest.(check int) "no soft recovery" 0 report.Fleet.recoveries;
  Alcotest.(check int) "probation probes ran" 3 report.Fleet.probes;
  Alcotest.(check bool) "alarm dropped live connections" true
    (report.Fleet.dropped >= 1);
  (match report.Fleet.transitions with
  | (t_down, r1, "down") :: (t_prob, r2, "probation") :: (t_up, r3, "up") :: []
    ->
    Alcotest.(check int) "same replica down->probation" r1 r2;
    Alcotest.(check int) "same replica probation->up" r2 r3;
    Alcotest.(check bool) "restart delay elapsed" true
      (t_prob -. t_down >= config.Fleet.restart_s -. 1e-9);
    Alcotest.(check bool) "probe phase elapsed" true
      (t_up -. t_prob
      >= (float_of_int config.Fleet.probe_successes
         *. config.Fleet.probe_interval_s)
         -. 1e-9);
    (* The drained replica took no traffic while down; the fleet did. *)
    let served_elsewhere =
      Array.to_list report.Fleet.replica_completed
      |> List.filteri (fun i _ -> i <> r1)
      |> List.fold_left ( + ) 0
    in
    Alcotest.(check bool) "other replicas served during the outage" true
      (served_elsewhere > 100);
    Alcotest.(check bool) "re-added replica served again" true
      (report.Fleet.replica_completed.(r1) > 0)
  | ts ->
    Alcotest.failf "unexpected transitions: %s"
      (String.concat "; "
         (List.map (fun (t, r, s) -> Printf.sprintf "%.3f r%d %s" t r s) ts)));
  Alcotest.(check int)
    "conservation holds across the outage" report.Fleet.arrivals
    (report.Fleet.completed + report.Fleet.rejected + report.Fleet.dropped
   + report.Fleet.in_flight)

let test_rejects_bad_config () =
  let bad = { small_config with Fleet.replicas = 0 } in
  Alcotest.check_raises "zero replicas rejected"
    (Invalid_argument "Fleet: replicas must be >= 1") (fun () ->
      ignore (Fleet.run bad ~next_request:(steady_stream ~seed:1 ())))

(* ------------------------------------------------------------------ *)
(* Diversified passwd worlds                                           *)
(* ------------------------------------------------------------------ *)

let test_passwd_world_follows_variation () =
  (* Regression: passwd_world used to encode every copy with the
     hardcoded default key family, so a seeded or rotated deployment
     got unshared files its own variants could not decode. The copies
     must come from the deployed variation's per-variant specs. *)
  let entries = Openload.population ~seed:5 ~users:20 () in
  let contents variation i =
    let vfs, _ = Openload.passwd_world ~entries ~variation in
    match Nv_os.Vfs.contents vfs ~path:(Printf.sprintf "/etc/passwd-%d" i) with
    | Ok s -> s
    | Error _ -> Alcotest.failf "missing /etc/passwd-%d" i
  in
  let default = Deploy.variation Deploy.Two_variant_uid in
  let seeded = Deploy.variation Deploy.Seeded_three in
  let _, sizes = Openload.passwd_world ~entries ~variation:seeded in
  Alcotest.(check int) "one copy per variant" 3 (Array.length sizes);
  Alcotest.(check string) "variant 0 is the identity in both deployments"
    (contents default 0) (contents seeded 0);
  Alcotest.(check bool) "variant 1 follows the deployed key, not the default" true
    (contents default 1 <> contents seeded 1);
  Alcotest.(check bool) "seeded variants pairwise distinct" true
    (contents seeded 1 <> contents seeded 2)

(* ------------------------------------------------------------------ *)
(* Openload end-to-end                                                 *)
(* ------------------------------------------------------------------ *)

let openload_spec =
  {
    Openload.replicas = 3;
    arrival = Arrivals.Poisson { rate = 200.0 };
    duration_s = 2.0;
    users = 4_000;
    attacks_per_10k = 5;
  }

let run_openload ~parallel =
  match Deploy.build ~parallel Deploy.Two_variant_uid with
  | Error e -> Alcotest.failf "deploy failed: %s" e
  | Ok sys -> (
    match Measure.profile ~requests:4 ~seed:9 sys with
    | Error e -> Alcotest.failf "profile failed: %s" e
    | Ok samples ->
      let samples = Array.sub samples 1 (Array.length samples - 1) in
      Openload.run ~seed:9 ~variants:2 ~samples openload_spec)

let test_openload_seq_par_identical () =
  (* The fleet SLO report must be bit-deterministic whether the profiled
     replica ran its variants sequentially or on the domain pool. *)
  let seq = run_openload ~parallel:false in
  let par = run_openload ~parallel:true in
  Alcotest.(check bool) "identical results" true (seq = par);
  Alcotest.(check int)
    "one lookup per arrival" seq.Openload.fleet.Fleet.arrivals
    seq.Openload.lookups

let test_openload_sublinear_lookups () =
  let result = run_openload ~parallel:false in
  let n = float_of_int result.Openload.population in
  let bound = (2.0 *. (log n /. log 2.0)) +. 4.0 in
  Alcotest.(check bool)
    (Printf.sprintf "%.1f comparisons/lookup within 2 log2 n + 4 = %.1f"
       result.Openload.comparisons_per_lookup bound)
    true
    (result.Openload.comparisons_per_lookup <= bound);
  Alcotest.(check bool) "population = samples + users" true
    (result.Openload.population > openload_spec.Openload.users)

let () =
  Alcotest.run "fleet"
    [
      ( "arrivals",
        [
          Alcotest.test_case "deterministic per seed" `Quick
            test_arrivals_deterministic;
          Alcotest.test_case "strictly increasing" `Quick test_arrivals_monotone;
          Alcotest.test_case "long-run rate" `Quick test_arrivals_rate;
        ] );
      ( "balancer",
        [
          Alcotest.test_case "request conservation" `Quick test_conservation;
          Alcotest.test_case "same seed, same report" `Quick
            test_same_seed_same_report;
          Alcotest.test_case "alarm within budget recovers" `Quick
            test_recovery_then_up;
          Alcotest.test_case "fail-stop drains and re-adds" `Quick
            test_failstop_drain_and_readd;
          Alcotest.test_case "rejects bad config" `Quick test_rejects_bad_config;
        ] );
      ( "openload",
        [
          Alcotest.test_case "passwd world follows variation" `Quick
            test_passwd_world_follows_variation;
          Alcotest.test_case "seq and par runs identical" `Quick
            test_openload_seq_par_identical;
          Alcotest.test_case "indexed lookups stay sublinear" `Quick
            test_openload_sublinear_lookups;
        ] );
    ]
