(* Basic-block superinstruction compiler: the third execution tier.

   A block is a maximal straight-line run of same-tagged instructions
   starting at an aligned segment offset and ending at the first
   control transfer (or at [Memory.max_block_slots] instructions, a tag
   change, a decode error, or the end of the segment). Each instruction
   is compiled once into a closure with its register indices and
   operand shape burned in; executing the block is then an array walk
   of closure calls with no per-instruction fetch, decode, tag check,
   pc update, or retired update.

   The observable semantics must match the stepping interpreter
   bit-for-bit — the monitor's signal-delivery slicing and the trace
   timestamps both key off exact retired counts — so the executor
   reconstructs the interpreter's exact architectural state at every
   early exit: a faulting instruction retires nothing and leaves the pc
   on itself; a mid-block store that hits the block's own bytes retires
   normally and hands control back to the dispatcher, which re-decodes
   the (possibly rewritten) successor exactly as the interpreter
   would. *)

type fault =
  | Segfault of { addr : int; access : Memory.access }
  | Bad_tag of { addr : int; found : int; expected : int }
  | Bad_instruction of { addr : int }
  | Division_fault of { addr : int }
  | Stack_fault of { addr : int }

type trap = Syscall_trap | Halt_trap | Fault_trap of fault

type status = {
  mutable st_pc : int;
  mutable st_retired : int;
  mutable st_trap : trap option;
  mutable st_k : int;  (* executor scratch: index of the running instruction *)
  (* Self-loop chaining state: a block whose branch terminator targets
     its own entry re-enters its chain directly while another full
     iteration fits in [st_budget] (the dispatcher's remaining fuel),
     accumulating completed iterations in [st_base]. Terminators and
     the exception handlers report [st_base + within-pass] retired, so
     observable counts are identical to dispatching every iteration. *)
  mutable st_base : int;
  mutable st_budget : int;
}

type compiled = {
  c_tag : int;  (* the hoisted per-block tag; -1 for uncompilable entries *)
  c_len : int;  (* instructions in the block; 0 = uncompilable entry *)
  c_valid : bool ref;  (* shared with the segment's block registry *)
  c_exec : status -> unit;
}

type cache = {
  mem : Memory.t;
  regs : int array;
  expected_tag : int;
  table : compiled option array;  (* keyed by block-entry slot *)
  scratch : status;
  mutable compiled_blocks : int;
  mutable hits : int;
  (* Monomorphic last-dispatch memo: a loop body re-dispatching the
     same block (the common steady state) skips the table lookup and
     the tag/length checks, paying one pc compare and one validity
     deref. *)
  mutable last_pc : int;
  mutable last : compiled option;
}

let create mem regs ~expected_tag =
  let slots = (Memory.size mem + Isa.instr_size - 1) / Isa.instr_size in
  {
    mem;
    regs;
    expected_tag;
    table = Array.make slots None;
    scratch =
      { st_pc = 0; st_retired = 0; st_trap = None; st_k = 0; st_base = 0; st_budget = 0 };
    compiled_blocks = 0;
    hits = 0;
    last_pc = -1;
    last = None;
  }

let scratch c = c.scratch

let compiled_blocks c = c.compiled_blocks

let hits c = c.hits

(* Raised by a compiled store whose write just landed inside this very
   block. The executor bails out with the store retired; the dispatcher
   then re-enters through the decoder, so rewritten successor
   instructions are re-fetched (and re-tag-checked) exactly as the
   stepping interpreter would. *)
exception Invalidated

let is_terminator = function
  | Isa.Br _ | Isa.Jmp _ | Isa.Jmpr _ | Isa.Call _ | Isa.Callr _ | Isa.Ret
  | Isa.Halt | Isa.Syscall ->
    true
  | Isa.Nop | Isa.Mov _ | Isa.Load _ | Isa.Store _ | Isa.Loadb _ | Isa.Storeb _
  | Isa.Binop _ | Isa.Setcc _ | Isa.Push _ | Isa.Pop _ ->
    false

let is_stackish = function
  | Isa.Push _ | Isa.Pop _ | Isa.Call _ | Isa.Callr _ | Isa.Ret -> true
  | _ -> false

(* Compile one instruction to a closure. Register indices come out of
   the decoder already validated to [0, 15], so the register file is
   accessed unsafely; every memory access, update order, and masking
   step mirrors [Cpu.execute] exactly. *)
(* r13 is the stack pointer, mirroring [Cpu.sp_index] (which lives
   above this module in the dependency order). *)
let sp_index = 13

(* Compile instruction [k] of a block into one link of a
   continuation-passing chain: the closure does its work and
   tail-calls [kont] (the rest of the block), so executing a block is
   a straight run of indirect jumps — no dispatch loop, no array walk,
   no per-instruction bookkeeping. Only instructions that can raise
   (memory accesses, div/mod) record their index in [st_k] first, so
   the exception handlers can reconstruct the interpreter's exact
   state; pure register moves pay nothing. Terminators ignore [kont],
   write the final pc/retired/trap and return. [len] is the full block
   length (what a completed block retires). *)
let compile_instr c regs mem valid instr ~k ~len ~at ~next ~entry ~head ~kont =
  let sp = sp_index in
  (* Guest loads and stores are inlined over the backing bytes: the
     closure burns in [data]/[base]/[size] (all immutable for the
     segment's lifetime) and does its own range check; anything out of
     range takes the [Memory] slow path, which raises the exact fault
     the interpreter would. [st_k] is only written on those slow
     paths — the in-range fast path cannot raise. *)
  let data = Memory.bytes mem in
  let mbase = Memory.base mem in
  let msize = Memory.size mem in
  match instr with
  | Isa.Nop -> kont (* retires with the block; position [k] needs no code at all *)
  | Isa.Halt ->
    fun st ->
      st.st_retired <- st.st_base + len;
      st.st_pc <- at;
      st.st_trap <- Some Halt_trap
  | Isa.Mov (rd, Isa.Imm w) ->
    fun st ->
      Array.unsafe_set regs rd w;
      kont st
  | Isa.Mov (rd, Isa.Reg rs) ->
    fun st ->
      Array.unsafe_set regs rd (Array.unsafe_get regs rs);
      kont st
  | Isa.Load (rd, rs, off) ->
    fun st ->
      let addr = Word.mask (Array.unsafe_get regs rs + off) in
      let o = addr - mbase in
      if o >= 0 && o + 4 <= msize then
        Array.unsafe_set regs rd (Int32.to_int (Bytes.get_int32_le data o) land 0xFFFFFFFF)
      else begin
        st.st_k <- k;
        Array.unsafe_set regs rd (Memory.load_word mem addr)
      end;
      kont st
  | Isa.Store (rd, off, rs) ->
    fun st ->
      let addr = Word.mask (Array.unsafe_get regs rd + off) in
      let o = addr - mbase in
      if o >= 0 && o + 4 <= msize then begin
        Bytes.set_int32_le data o (Int32.of_int (Array.unsafe_get regs rs));
        Memory.invalidate_window mem o 4
      end
      else begin
        st.st_k <- k;
        Memory.store_word mem addr (Array.unsafe_get regs rs)
      end;
      if !valid then kont st
      else begin
        st.st_k <- k;
        raise_notrace Invalidated
      end
  | Isa.Loadb (rd, rs, off) ->
    fun st ->
      let addr = Word.mask (Array.unsafe_get regs rs + off) in
      let o = addr - mbase in
      if o >= 0 && o < msize then
        Array.unsafe_set regs rd (Char.code (Bytes.unsafe_get data o))
      else begin
        st.st_k <- k;
        Array.unsafe_set regs rd (Memory.load_byte mem addr)
      end;
      kont st
  | Isa.Storeb (rd, off, rs) ->
    fun st ->
      let addr = Word.mask (Array.unsafe_get regs rd + off) in
      let o = addr - mbase in
      if o >= 0 && o < msize then begin
        Bytes.unsafe_set data o (Char.unsafe_chr (Array.unsafe_get regs rs land 0xFF));
        Memory.invalidate_window mem o 1
      end
      else begin
        st.st_k <- k;
        Memory.store_byte mem addr (Array.unsafe_get regs rs)
      end;
      if !valid then kont st
      else begin
        st.st_k <- k;
        raise_notrace Invalidated
      end
  | Isa.Binop (op, rd, rs, o) -> (
    let module W = Word in
    match (op, o) with
    | Isa.Add, Isa.Imm w ->
      fun st ->
        Array.unsafe_set regs rd (W.add (Array.unsafe_get regs rs) w);
        kont st
    | Isa.Add, Isa.Reg rt ->
      fun st ->
        Array.unsafe_set regs rd
          (W.add (Array.unsafe_get regs rs) (Array.unsafe_get regs rt));
        kont st
    | Isa.Sub, Isa.Imm w ->
      fun st ->
        Array.unsafe_set regs rd (W.sub (Array.unsafe_get regs rs) w);
        kont st
    | Isa.Sub, Isa.Reg rt ->
      fun st ->
        Array.unsafe_set regs rd
          (W.sub (Array.unsafe_get regs rs) (Array.unsafe_get regs rt));
        kont st
    | Isa.Mul, Isa.Imm w ->
      fun st ->
        Array.unsafe_set regs rd (W.mul (Array.unsafe_get regs rs) w);
        kont st
    | Isa.Mul, Isa.Reg rt ->
      fun st ->
        Array.unsafe_set regs rd
          (W.mul (Array.unsafe_get regs rs) (Array.unsafe_get regs rt));
        kont st
    | Isa.Div, Isa.Imm w ->
      fun st ->
        st.st_k <- k;
        Array.unsafe_set regs rd (W.div_signed (Array.unsafe_get regs rs) w);
        kont st
    | Isa.Div, Isa.Reg rt ->
      fun st ->
        st.st_k <- k;
        Array.unsafe_set regs rd
          (W.div_signed (Array.unsafe_get regs rs) (Array.unsafe_get regs rt));
        kont st
    | Isa.Mod, Isa.Imm w ->
      fun st ->
        st.st_k <- k;
        Array.unsafe_set regs rd (W.rem_signed (Array.unsafe_get regs rs) w);
        kont st
    | Isa.Mod, Isa.Reg rt ->
      fun st ->
        st.st_k <- k;
        Array.unsafe_set regs rd
          (W.rem_signed (Array.unsafe_get regs rs) (Array.unsafe_get regs rt));
        kont st
    | Isa.And, Isa.Imm w ->
      fun st ->
        Array.unsafe_set regs rd (Array.unsafe_get regs rs land w);
        kont st
    | Isa.And, Isa.Reg rt ->
      fun st ->
        Array.unsafe_set regs rd (Array.unsafe_get regs rs land Array.unsafe_get regs rt);
        kont st
    | Isa.Or, Isa.Imm w ->
      fun st ->
        Array.unsafe_set regs rd (Array.unsafe_get regs rs lor w);
        kont st
    | Isa.Or, Isa.Reg rt ->
      fun st ->
        Array.unsafe_set regs rd (Array.unsafe_get regs rs lor Array.unsafe_get regs rt);
        kont st
    | Isa.Xor, Isa.Imm w ->
      fun st ->
        Array.unsafe_set regs rd (Array.unsafe_get regs rs lxor w);
        kont st
    | Isa.Xor, Isa.Reg rt ->
      fun st ->
        Array.unsafe_set regs rd (Array.unsafe_get regs rs lxor Array.unsafe_get regs rt);
        kont st
    | Isa.Shl, Isa.Imm w ->
      fun st ->
        Array.unsafe_set regs rd (W.shift_left (Array.unsafe_get regs rs) w);
        kont st
    | Isa.Shl, Isa.Reg rt ->
      fun st ->
        Array.unsafe_set regs rd
          (W.shift_left (Array.unsafe_get regs rs) (Array.unsafe_get regs rt));
        kont st
    | Isa.Shr, Isa.Imm w ->
      fun st ->
        Array.unsafe_set regs rd (W.shift_right_logical (Array.unsafe_get regs rs) w);
        kont st
    | Isa.Shr, Isa.Reg rt ->
      fun st ->
        Array.unsafe_set regs rd
          (W.shift_right_logical (Array.unsafe_get regs rs) (Array.unsafe_get regs rt));
        kont st
    | Isa.Sar, Isa.Imm w ->
      fun st ->
        Array.unsafe_set regs rd (W.shift_right_arith (Array.unsafe_get regs rs) w);
        kont st
    | Isa.Sar, Isa.Reg rt ->
      fun st ->
        Array.unsafe_set regs rd
          (W.shift_right_arith (Array.unsafe_get regs rs) (Array.unsafe_get regs rt));
        kont st)
  | Isa.Setcc (cond, rd, rs, Isa.Imm w) ->
    fun st ->
      Array.unsafe_set regs rd
        (if Isa.eval_cond cond (Array.unsafe_get regs rs) w then 1 else 0);
      kont st
  | Isa.Setcc (cond, rd, rs, Isa.Reg rt) ->
    fun st ->
      Array.unsafe_set regs rd
        (if Isa.eval_cond cond (Array.unsafe_get regs rs) (Array.unsafe_get regs rt)
         then 1
         else 0);
      kont st
  | Isa.Br (cond, rs, rt, target) -> (
    (* The block's hottest terminator (every loop backedge): the
       condition is specialized at compile time so taking the branch
       costs two register loads and a compare. When the branch targets
       this block's own entry — a self-contained loop body, the hottest
       shape there is — taking it re-enters the chain head directly
       while another full iteration fits in the fuel budget, so steady-
       state loop iterations never touch the dispatcher at all. *)
    let module W = Word in
    let take =
      if target = entry then fun st t ->
        if t then begin
          let done_ = st.st_base + len in
          if done_ + len <= st.st_budget then begin
            st.st_base <- done_;
            c.hits <- c.hits + 1;
            !head st
          end
          else begin
            st.st_retired <- done_;
            st.st_pc <- target
          end
        end
        else begin
          st.st_retired <- st.st_base + len;
          st.st_pc <- next
        end
      else fun st t ->
        st.st_retired <- st.st_base + len;
        st.st_pc <- (if t then target else next)
    in
    match cond with
    | Isa.Eq -> fun st -> take st (Array.unsafe_get regs rs = Array.unsafe_get regs rt)
    | Isa.Ne -> fun st -> take st (Array.unsafe_get regs rs <> Array.unsafe_get regs rt)
    | Isa.Lt ->
      fun st -> take st (W.lt_signed (Array.unsafe_get regs rs) (Array.unsafe_get regs rt))
    | Isa.Le ->
      fun st ->
        take st (not (W.lt_signed (Array.unsafe_get regs rt) (Array.unsafe_get regs rs)))
    | Isa.Gt ->
      fun st -> take st (W.lt_signed (Array.unsafe_get regs rt) (Array.unsafe_get regs rs))
    | Isa.Ge ->
      fun st ->
        take st (not (W.lt_signed (Array.unsafe_get regs rs) (Array.unsafe_get regs rt)))
    | Isa.Ltu ->
      fun st -> take st (Array.unsafe_get regs rs < Array.unsafe_get regs rt)
    | Isa.Leu ->
      fun st -> take st (Array.unsafe_get regs rs <= Array.unsafe_get regs rt)
    | Isa.Gtu ->
      fun st -> take st (Array.unsafe_get regs rs > Array.unsafe_get regs rt)
    | Isa.Geu ->
      fun st -> take st (Array.unsafe_get regs rs >= Array.unsafe_get regs rt))
  | Isa.Jmp target ->
    fun st ->
      st.st_retired <- st.st_base + len;
      st.st_pc <- target
  | Isa.Jmpr rs ->
    fun st ->
      st.st_retired <- st.st_base + len;
      st.st_pc <- Array.unsafe_get regs rs
  | Isa.Call target ->
    let rnext = Word.mask next in
    fun st ->
      let nsp = Word.sub (Array.unsafe_get regs sp) 4 in
      let o = nsp - mbase in
      if o >= 0 && o + 4 <= msize then begin
        Bytes.set_int32_le data o (Int32.of_int rnext);
        Memory.invalidate_window mem o 4
      end
      else begin
        st.st_k <- k;
        Memory.store_word mem nsp rnext
      end;
      Array.unsafe_set regs sp nsp;
      st.st_retired <- st.st_base + len;
      st.st_pc <- target
  | Isa.Callr rs ->
    let rnext = Word.mask next in
    fun st ->
      let nsp = Word.sub (Array.unsafe_get regs sp) 4 in
      let o = nsp - mbase in
      if o >= 0 && o + 4 <= msize then begin
        Bytes.set_int32_le data o (Int32.of_int rnext);
        Memory.invalidate_window mem o 4
      end
      else begin
        st.st_k <- k;
        Memory.store_word mem nsp rnext
      end;
      Array.unsafe_set regs sp nsp;
      st.st_retired <- st.st_base + len;
      (* Read the target after the sp update, as the interpreter does:
         [callr r13] must jump to the new stack pointer. *)
      st.st_pc <- Array.unsafe_get regs rs
  | Isa.Ret ->
    fun st ->
      let osp = Array.unsafe_get regs sp in
      let o = osp - mbase in
      let target =
        if o >= 0 && o + 4 <= msize then
          Int32.to_int (Bytes.get_int32_le data o) land 0xFFFFFFFF
        else begin
          st.st_k <- k;
          Memory.load_word mem osp
        end
      in
      Array.unsafe_set regs sp (Word.add osp 4);
      st.st_retired <- st.st_base + len;
      st.st_pc <- target
  | Isa.Push rs ->
    fun st ->
      let nsp = Word.sub (Array.unsafe_get regs sp) 4 in
      let o = nsp - mbase in
      if o >= 0 && o + 4 <= msize then begin
        Bytes.set_int32_le data o (Int32.of_int (Array.unsafe_get regs rs));
        Memory.invalidate_window mem o 4
      end
      else begin
        st.st_k <- k;
        Memory.store_word mem nsp (Array.unsafe_get regs rs)
      end;
      Array.unsafe_set regs sp nsp;
      if !valid then kont st
      else begin
        st.st_k <- k;
        raise_notrace Invalidated
      end
  | Isa.Pop rd ->
    fun st ->
      let osp = Array.unsafe_get regs sp in
      let o = osp - mbase in
      if o >= 0 && o + 4 <= msize then
        Array.unsafe_set regs rd (Int32.to_int (Bytes.get_int32_le data o) land 0xFFFFFFFF)
      else begin
        st.st_k <- k;
        Array.unsafe_set regs rd (Memory.load_word mem osp)
      end;
      (* After the destination write, as the interpreter does: [pop r13]
         ends with sp+4, not the popped value. *)
      Array.unsafe_set regs sp (Word.add osp 4);
      kont st
  | Isa.Syscall ->
    fun st ->
      st.st_retired <- st.st_base + len;
      st.st_pc <- next;
      st.st_trap <- Some Syscall_trap

(* Walk the decoder forward from the entry until the block closes:
   first control transfer (kept, as the block's last instruction), tag
   change, decode error, fetch fault, or the span cap. *)
let discover mem ~entry_off =
  let base = Memory.base mem in
  let rec go acc k block_tag =
    if k >= Memory.max_block_slots then List.rev acc
    else begin
      let at = base + entry_off + (k * Isa.instr_size) in
      match Memory.fetch_decoded mem at with
      | exception Memory.Fault _ -> List.rev acc
      | Error _ -> List.rev acc
      | Ok (tag, instr) ->
        if k > 0 && tag <> block_tag then List.rev acc
        else if is_terminator instr then List.rev ((tag, instr) :: acc)
        else go ((tag, instr) :: acc) (k + 1) (if k = 0 then tag else block_tag)
    end
  in
  go [] 0 0

let uncompilable valid =
  { c_tag = -1; c_len = 0; c_valid = valid; c_exec = (fun _ -> assert false) }

let compile c ~slot =
  let entry_off = slot * Isa.instr_size in
  let entry_addr = Memory.base c.mem + entry_off in
  match discover c.mem ~entry_off with
  | [] ->
    (* Nothing decodes at the entry; register a one-slot span anyway so
       a store that rewrites these bytes forces a recompile. *)
    let valid = Memory.register_block c.mem ~slot ~slots:1 in
    let cb = uncompilable valid in
    c.table.(slot) <- Some cb;
    cb
  | (c_tag, _) :: _ as instrs ->
    let len = List.length instrs in
    let valid = Memory.register_block c.mem ~slot ~slots:len in
    let stackish = Array.make len false in
    List.iteri (fun k (_, instr) -> stackish.(k) <- is_stackish instr) instrs;
    let fallthrough = entry_addr + (len * Isa.instr_size) in
    (* A block that ran off its end without a terminator (cap, tag
       change, decode error ahead) falls through to the dispatcher. *)
    let fin st =
      st.st_retired <- st.st_base + len;
      st.st_pc <- fallthrough
    in
    (* Build the chain back to front so each op captures its
       continuation directly. [head] ties the knot for a self-looping
       terminator: it re-enters the chain from the top without going
       back through the dispatcher. *)
    let head = ref (fun (_ : status) -> assert false) in
    let rec build k = function
      | [] -> fin
      | (_, instr) :: rest ->
        let kont = build (k + 1) rest in
        let at = entry_addr + (k * Isa.instr_size) in
        compile_instr c c.regs c.mem valid instr ~k ~len ~at ~next:(at + Isa.instr_size)
          ~entry:entry_addr ~head ~kont
    in
    let chain = build 0 instrs in
    head := chain;
    let exec st =
      st.st_trap <- None;
      st.st_base <- 0;
      try chain st with
      | Memory.Fault { addr; access } ->
        (* The faulting instruction retires nothing and the pc parks on
           it, exactly as [Cpu.step] leaves things. *)
        let k = st.st_k in
        st.st_retired <- st.st_base + k;
        st.st_pc <- entry_addr + (k * Isa.instr_size);
        st.st_trap <-
          Some
            (Fault_trap
               (if Array.unsafe_get stackish k then Stack_fault { addr }
                else Segfault { addr; access }))
      | Division_by_zero ->
        let k = st.st_k in
        let at = entry_addr + (k * Isa.instr_size) in
        st.st_retired <- st.st_base + k;
        st.st_pc <- at;
        st.st_trap <- Some (Fault_trap (Division_fault { addr = at }))
      | Invalidated ->
        (* The store itself retired normally; resume after it through
           the dispatcher so rewritten bytes are freshly decoded. *)
        st.st_retired <- st.st_base + st.st_k + 1;
        st.st_pc <- entry_addr + ((st.st_k + 1) * Isa.instr_size)
    in
    let cb = { c_tag; c_len = len; c_valid = valid; c_exec = exec } in
    c.table.(slot) <- Some cb;
    c.compiled_blocks <- c.compiled_blocks + 1;
    cb

let length cb = cb.c_len

let exec cb st = cb.c_exec st

(* Dispatch: return a block runnable from [pc] within [remaining] fuel,
   compiling on a miss. [None] sends the caller to the stepping
   interpreter for one instruction — unaligned or out-of-range pcs,
   undecodable entries, hoisted-tag mismatches (the single step raises
   the precise [Bad_tag]/[Bad_instruction]/fault), and blocks longer
   than the remaining fuel (the monitor's signal slicing counts on
   [run] never overrunning its fuel). *)
let find c ~pc ~remaining =
  match c.last with
  | Some cb when c.last_pc = pc && !(cb.c_valid) && cb.c_len <= remaining ->
    (* Steady-state loop body: same entry as last dispatch, block still
       valid (tag and alignment were checked when the memo was set). *)
    c.hits <- c.hits + 1;
    c.last
  | _ ->
    let off = pc - Memory.base c.mem in
    if
      off < 0
      || off + Isa.instr_size > Memory.size c.mem
      || off land (Isa.instr_size - 1) <> 0
    then None
    else begin
      let slot = off lsr 3 in
      let cached, cb =
        match Array.unsafe_get c.table slot with
        | Some cb when !(cb.c_valid) -> (true, cb)
        | _ -> (false, compile c ~slot)
      in
      if cb.c_len = 0 || cb.c_tag <> c.expected_tag || cb.c_len > remaining then None
      else begin
        if cached then c.hits <- c.hits + 1;
        let r = Some cb in
        c.last_pc <- pc;
        c.last <- r;
        r
      end
    end
