module Prng = Nv_util.Prng

type model =
  | Poisson of { rate : float }
  | Bursty of { rate : float; burst_mean : float; intra_gap_s : float }
  | Diurnal of { rate : float; amplitude : float; period_s : float }

type t = {
  model : model;
  rng : Prng.t;
  mutable burst_remaining : int;  (* requests left in the current burst *)
}

let validate = function
  | Poisson { rate } ->
    if rate <= 0.0 then invalid_arg "Arrivals: rate must be positive"
  | Bursty { rate; burst_mean; intra_gap_s } ->
    if rate <= 0.0 then invalid_arg "Arrivals: rate must be positive";
    if burst_mean < 1.0 then invalid_arg "Arrivals: burst_mean must be >= 1";
    if intra_gap_s < 0.0 then invalid_arg "Arrivals: intra_gap_s must be >= 0"
  | Diurnal { rate; amplitude; period_s } ->
    if rate <= 0.0 then invalid_arg "Arrivals: rate must be positive";
    if amplitude < 0.0 || amplitude > 1.0 then
      invalid_arg "Arrivals: amplitude must be in [0,1]";
    if period_s <= 0.0 then invalid_arg "Arrivals: period_s must be positive"

let create ~seed model =
  validate model;
  { model; rng = Prng.create ~seed; burst_remaining = 0 }

let model t = t.model

let model_name = function
  | Poisson _ -> "poisson"
  | Bursty _ -> "bursty"
  | Diurnal _ -> "diurnal"

(* Geometric on {1, 2, ...} with the given mean: success probability
   1/mean per trial. *)
let geometric rng ~mean =
  let p = 1.0 /. mean in
  let rec draw n = if Prng.float rng 1.0 < p then n else draw (n + 1) in
  draw 1

let tau = 8.0 *. atan 1.0

let intensity ~rate ~amplitude ~period_s time =
  rate *. (1.0 +. (amplitude *. sin (tau *. time /. period_s)))

let next t ~now =
  match t.model with
  | Poisson { rate } -> now +. Prng.exponential t.rng ~mean:(1.0 /. rate)
  | Bursty { rate; burst_mean; intra_gap_s } ->
    if t.burst_remaining > 0 then begin
      t.burst_remaining <- t.burst_remaining - 1;
      now +. Prng.exponential t.rng ~mean:intra_gap_s
    end
    else begin
      let size = geometric t.rng ~mean:burst_mean in
      t.burst_remaining <- size - 1;
      (* One burst of mean size m per cycle: pick the inter-burst gap so
         the long-run rate comes out at [rate] after subtracting the
         time the burst itself occupies. Clamped so a pathological
         parameter choice degrades to fast bursts, not a negative mean. *)
      let cycle = burst_mean /. rate in
      let occupied = (burst_mean -. 1.0) *. intra_gap_s in
      let mean_gap = Float.max (0.05 *. cycle) (cycle -. occupied) in
      now +. Prng.exponential t.rng ~mean:mean_gap
    end
  | Diurnal { rate; amplitude; period_s } ->
    (* Lewis-Shedler thinning at the peak intensity: candidate points
       arrive at lambda_max and survive with probability
       lambda(t)/lambda_max. *)
    let lambda_max = rate *. (1.0 +. amplitude) in
    let rec thin time =
      let time = time +. Prng.exponential t.rng ~mean:(1.0 /. lambda_max) in
      let keep =
        Prng.float t.rng lambda_max < intensity ~rate ~amplitude ~period_s time
      in
      if keep then time else thin time
    in
    thin now
