(* The Section 4 case study end to end: a Chen-et-al-style non-control
   data attack against the web server's stored worker UID, delivered
   purely through HTTP, against every deployment configuration.

     dune exec examples/uid_attack.exe

   Attack recipe (all through the one public input channel):
     request 1: "GET /AAAA...A" - a URL of exactly 64 bytes. The
                server's strcpy into its 64-byte URL buffer writes the
                terminating NUL over the adjacent worker_uid's low
                byte; canonical UID 33 (0x00000021) becomes 0 = root.
     request 2: "GET /../../secret/shadow" - with privilege dropping
                now a no-op, the path traversal reads the 0600 file. *)

module Deploy = Nv_httpd.Deploy
module Campaign = Nv_attacks.Campaign
module Payloads = Nv_attacks.Payloads

let show_stored sys label =
  let v0 = Payloads.read_stored_uid sys ~variant:0 in
  Format.printf "  %s: stored worker_uid (variant 0) = 0x%08X@." label v0

let narrate config =
  Format.printf "@.=== %s: %s ===@." (Deploy.name config) (Deploy.description config);
  match Deploy.build config with
  | Error e -> Format.printf "build failed: %s@." e
  | Ok sys -> (
    (* Park the server, show the healthy state. *)
    (match Nv_core.Nsystem.run sys with
    | Nv_core.Monitor.Blocked_on_accept -> show_stored sys "before"
    | _ -> failwith "server did not start");
    let overflow = Nv_httpd.Http.get (Payloads.null_overflow_url ()) in
    Format.printf "  request 1: GET with a %d-byte URL (overflow)@."
      Nv_httpd.Httpd_source.url_buffer_size;
    match Nv_core.Nsystem.serve sys overflow with
    | Nv_core.Nsystem.Stopped (Nv_core.Monitor.Alarm reason) ->
      Format.printf "  >> DETECTED during request 1: %a@." Nv_core.Alarm.pp reason
    | Nv_core.Nsystem.Stopped _ -> Format.printf "  server stopped unexpectedly@."
    | Nv_core.Nsystem.Served _ -> (
      show_stored sys "after overflow";
      Format.printf "  request 2: GET %s (traversal)@." Payloads.traversal_url;
      match Nv_core.Nsystem.serve sys (Nv_httpd.Http.get Payloads.traversal_url) with
      | Nv_core.Nsystem.Stopped (Nv_core.Monitor.Alarm reason) ->
        Format.printf "  >> DETECTED during request 2: %a@." Nv_core.Alarm.pp reason
      | Nv_core.Nsystem.Stopped _ -> Format.printf "  server stopped unexpectedly@."
      | Nv_core.Nsystem.Served raw -> (
        match Nv_httpd.Http.parse_response raw with
        | Ok { Nv_httpd.Http.status = 200; body; _ } ->
          Format.printf "  >> ESCALATED: /secret/shadow leaked: %S@."
            (String.sub body 0 (min 40 (String.length body)))
        | Ok { Nv_httpd.Http.status; _ } ->
          Format.printf "  traversal answered %d (no escalation)@." status
        | Error e -> Format.printf "  bad response: %s@." e)))

let () =
  print_endline "Non-control-data UID corruption attack (paper Sections 3-4)";
  List.iter narrate Deploy.all;
  print_endline "\nFull attack matrix (all attack classes x all configurations):";
  print_string (Campaign.render_matrix (Campaign.run_matrix ()))
