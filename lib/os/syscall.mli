(** System-call numbers, signatures and marshalling metadata.

    The guest ABI: syscall number in [r0], arguments in [r1]..[r5], and
    the result replaces [r0]. Pointer arguments are absolute guest
    addresses; the monitor uses the {!arg_kind} metadata to read the
    pointed-to data out of each variant's memory (canonicalizing
    addresses to segment offsets for cross-variant comparison) and the
    {!ret_kind} to know when a result is a UID that must be reexpressed
    per variant on the way back (Section 3.5 of the paper).

    Numbers 20..27 are the paper's {e detection system calls}
    (Table 2): they exist purely to expose user-space UID uses to the
    monitor. *)

type number = int

val sys_exit : number (* 0: exit(status) *)
val sys_read : number (* 1: read(fd, buf, len) *)
val sys_write : number (* 2: write(fd, buf, len) *)
val sys_open : number (* 3: open(path, flags) *)
val sys_close : number (* 4: close(fd) *)
val sys_accept : number (* 5: accept() *)
val sys_getuid : number (* 6 *)
val sys_geteuid : number (* 7 *)
val sys_setuid : number (* 8: setuid(uid) *)
val sys_seteuid : number (* 9: seteuid(uid) *)
val sys_getgid : number (* 10 *)
val sys_getegid : number (* 11 *)
val sys_setgid : number (* 12: setgid(gid) *)
val sys_setegid : number (* 13: setegid(gid) *)
val sys_uid_value : number (* 20: uid_value(uid) - Table 2 *)
val sys_cond_chk : number (* 21: cond_chk(bool) - Table 2 *)
val sys_cc_eq : number (* 22 *)
val sys_cc_neq : number (* 23 *)
val sys_cc_lt : number (* 24 *)
val sys_cc_leq : number (* 25 *)
val sys_cc_gt : number (* 26 *)
val sys_cc_geq : number (* 27 *)

(* open() flags *)
val o_rdonly : int (* 0 *)
val o_wronly : int (* 1: truncates *)
val o_append : int (* 2 *)

type arg_kind =
  | Int  (** plain integer, compared verbatim across variants *)
  | Uid  (** UID/GID in the variant's data representation *)
  | Ptr_string  (** address of a NUL-terminated string (read in) *)
  | Ptr_out  (** address of an output buffer (data written back) *)
  | Ptr_in  (** address of an input buffer, length in the next arg *)
  | Len  (** byte count governing the preceding pointer *)

type ret_kind =
  | Ret_int
  | Ret_uid  (** result is a UID: reexpressed per variant on return *)

(** Rendezvous class of a call under the relaxed-monitoring engine
    (dMVX/DMON-style): {!Sensitive} calls require a full rendezvous —
    every variant arrives, canonical arguments are compared, and the
    coordinator performs the kernel call once as the leader. {!Relaxed}
    calls are register-only reads whose result each variant can compute
    locally from the credential snapshot and its own reexpression spec;
    the variant posts a canonicalized record and continues immediately,
    and the coordinator cross-checks the accumulated batch at the next
    sensitive rendezvous (raising the same alarms with identical
    payloads). *)
type sensitivity = Sensitive | Relaxed

type signature = {
  name : string;
  args : arg_kind list;
  ret : ret_kind;
  sens : sensitivity;
}

val all : (number * signature) list
(** The complete syscall table, in number order — the source of truth
    tests iterate to check invariants over every defined syscall
    (e.g. that every number fits the monitor's metric-handle fast
    path). *)

val signature : number -> signature option
(** Metadata for a syscall number; [None] for unknown numbers. *)

val name : number -> string
(** Human-readable name; ["sys#N"] for unknown numbers. *)

val sensitivity : number -> sensitivity
(** Rendezvous class; unknown numbers are {!Sensitive} (they must hit
    the full rendezvous to be flagged). *)

val is_relaxed : number -> bool
(** [sensitivity n = Relaxed]. *)

val is_detection_call : number -> bool
(** Numbers 20..27. *)
