examples/async_signals.mli:
