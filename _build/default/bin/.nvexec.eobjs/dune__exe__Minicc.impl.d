bin/minicc.ml: Arg Array Cmd Cmdliner Format List Nv_core Nv_minic Nv_os Nv_transform Nv_vm Printf Term
