(** Rendering mini-C ASTs back to source text.

    Output is valid mini-C: [parse (program p)] yields an AST
    structurally equal to [p] up to redundant parentheses (the printer
    fully parenthesizes nested expressions). Used to display the
    transformed variant source, as the paper shows its Apache diffs. *)

val ty : Ast.ty -> string

val expr : Ast.expr -> string

val stmt : ?indent:int -> Ast.stmt -> string

val program : Ast.program -> string
