module Deploy = Nv_httpd.Deploy

type cell = { unsat : Webbench.result; sat : Webbench.result }

type row = { config : Deploy.config; demand : Measure.sample; cell : cell }

let variants_of config = Nv_core.Variation.count (Deploy.variation config)

let run ?(requests = 40) ?(seed = 7) ?(cost = Cost_model.default) () =
  let rec build = function
    | [] -> Ok []
    | config :: rest -> (
      match Deploy.build config with
      | Error _ as e -> e
      | Ok sys -> (
        match Measure.profile ~requests ~seed sys with
        | Error _ as e -> e
        | Ok samples -> (
          (* Drop the first sample: it carries one-time startup work
             (passwd parsing), which Table 3's steady-state load never
             sees. *)
          let steady =
            if Array.length samples > 1 then
              Array.sub samples 1 (Array.length samples - 1)
            else samples
          in
          let variants = variants_of config in
          let cell =
            {
              unsat = Webbench.run ~seed ~cost ~variants ~samples:steady Webbench.unsaturated;
              sat = Webbench.run ~seed ~cost ~variants ~samples:steady Webbench.saturated;
            }
          in
          let row = { config; demand = Measure.mean_demand steady; cell } in
          match build rest with Ok rows -> Ok (row :: rows) | Error _ as e -> e)))
  in
  build Deploy.all

let render rows =
  let header =
    "" :: List.map (fun r -> Deploy.name r.config) rows
  in
  let metric name f =
    name :: List.map (fun r -> Printf.sprintf "%.0f" (f r)) rows
  in
  let metric1 name f =
    name :: List.map (fun r -> Printf.sprintf "%.2f" (f r)) rows
  in
  let table =
    Nv_util.Tablefmt.render ~header
      ~rows:
        [
          metric "Unsaturated throughput (KB/s)" (fun r -> r.cell.unsat.Webbench.throughput_kb_s);
          metric1 "Unsaturated latency (ms)" (fun r -> r.cell.unsat.Webbench.latency_ms);
          metric "Saturated throughput (KB/s)" (fun r -> r.cell.sat.Webbench.throughput_kb_s);
          metric1 "Saturated latency (ms)" (fun r -> r.cell.sat.Webbench.latency_ms);
        ]
      ()
  in
  let demands =
    Nv_util.Tablefmt.render
      ~header:[ "config"; "instr/req"; "rendezvous/req"; "resp bytes" ]
      ~rows:
        (List.map
           (fun r ->
             [
               Deploy.name r.config;
               string_of_int r.demand.Measure.instructions;
               string_of_int r.demand.Measure.rendezvous;
               string_of_int r.demand.Measure.response_bytes;
             ])
           rows)
      ()
  in
  table ^ "\nMeasured per-request service demands:\n" ^ demands

let paper_values =
  [
    ( "unsaturated throughput (KB/s)",
      [ ("config1", 1010.0); ("config2", 973.0); ("config3", 887.0); ("config4", 877.0) ] );
    ( "unsaturated latency (ms)",
      [ ("config1", 5.81); ("config2", 5.81); ("config3", 6.56); ("config4", 6.65) ] );
    ( "saturated throughput (KB/s)",
      [ ("config1", 5420.0); ("config2", 5372.0); ("config3", 2369.0); ("config4", 2262.0) ] );
    ( "saturated latency (ms)",
      [ ("config1", 16.32); ("config2", 16.24); ("config3", 37.36); ("config4", 38.49) ] );
  ]
