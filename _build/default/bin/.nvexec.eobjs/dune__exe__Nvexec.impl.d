bin/nvexec.ml: Arg Cmd Cmdliner Format List Nv_core Nv_minic Nv_os Nv_transform Printf String Term
