module Word = Nv_vm.Word
module Cpu = Nv_vm.Cpu
module Image = Nv_vm.Image
module Memory = Nv_vm.Memory
module Monitor = Nv_core.Monitor
module Nsystem = Nv_core.Nsystem
module Supervisor = Nv_core.Supervisor
module Prng = Nv_util.Prng
module Deploy = Nv_httpd.Deploy
module Http = Nv_httpd.Http

type fault =
  | Flip_register of { variant : int; reg : int; bit : int }
  | Flip_memory_bit of { variant : int; offset : int; bit : int }
  | Corrupt_syscall_arg of { variant : int; bit : int }
  | Drop_input_byte of { variant : int; index : int }

let describe = function
  | Flip_register { variant; reg; bit } ->
    Printf.sprintf "flip bit %d of r%d in variant %d" bit reg variant
  | Flip_memory_bit { variant; offset; bit } ->
    Printf.sprintf "flip bit %d of data byte %d in variant %d" bit offset variant
  | Corrupt_syscall_arg { variant; bit } ->
    Printf.sprintf "flip bit %d of variant %d's pending syscall argument" bit variant
  | Drop_input_byte { variant; index } ->
    Printf.sprintf "drop input byte %d from variant %d's next read" index variant

let check_variant sys variant =
  let n = Monitor.variant_count (Nsystem.monitor sys) in
  if variant < 0 || variant >= n then invalid_arg "Faultgen.inject: variant out of range"

let flip_register sys ~variant ~reg ~bit =
  if reg < 0 || reg > 15 then invalid_arg "Faultgen.inject: register out of range";
  if bit < 0 || bit > 31 then invalid_arg "Faultgen.inject: bit out of range";
  let cpu = (Monitor.loaded (Nsystem.monitor sys) variant).Image.cpu in
  Cpu.set_reg cpu reg (Word.mask (Cpu.reg cpu reg lxor (1 lsl bit)))

(* The byte offset is folded into the variant's initialized-data + bss
   region, so the flip lands in state the guest actually uses (globals)
   rather than dead stack or code; flipping code would mostly produce
   tag faults, which exercise nothing beyond the decoder. *)
let flip_memory_bit sys ~variant ~offset ~bit =
  if bit < 0 || bit > 7 then invalid_arg "Faultgen.inject: memory bit out of range";
  if offset < 0 then invalid_arg "Faultgen.inject: offset must be >= 0";
  let loaded = Monitor.loaded (Nsystem.monitor sys) variant in
  let layout = loaded.Image.layout in
  let data_size = layout.Image.bss_end - layout.Image.data_start in
  if data_size <= 0 then invalid_arg "Faultgen.inject: variant has no data region";
  let addr = layout.Image.data_start + (offset mod data_size) in
  let byte = Memory.load_byte loaded.Image.memory addr in
  Memory.store_byte loaded.Image.memory addr (byte lxor (1 lsl bit))

(* While the system is parked on accept every variant's pc has been
   rewound to the syscall instruction, so r1 holds the first argument
   of the call about to re-execute; corrupting it in one variant is an
   argument divergence the monitor must catch at the next rendezvous. *)
let corrupt_syscall_arg sys ~variant ~bit = flip_register sys ~variant ~reg:1 ~bit

let drop_input_byte sys ~variant ~index =
  if index < 0 then invalid_arg "Faultgen.inject: index must be >= 0";
  let monitor = Nsystem.monitor sys in
  let armed = ref true in
  Monitor.set_input_fault monitor
    (Some
       (fun ~variant:v bytes ->
         if !armed && v = variant && String.length bytes > index then begin
           armed := false;
           String.sub bytes 0 index
           ^ String.sub bytes (index + 1) (String.length bytes - index - 1)
         end
         else bytes))

let inject sys fault =
  (match fault with
  | Flip_register { variant; _ }
  | Flip_memory_bit { variant; _ }
  | Corrupt_syscall_arg { variant; _ }
  | Drop_input_byte { variant; _ } -> check_variant sys variant);
  match fault with
  | Flip_register { variant; reg; bit } -> flip_register sys ~variant ~reg ~bit
  | Flip_memory_bit { variant; offset; bit } -> flip_memory_bit sys ~variant ~offset ~bit
  | Corrupt_syscall_arg { variant; bit } -> corrupt_syscall_arg sys ~variant ~bit
  | Drop_input_byte { variant; index } -> drop_input_byte sys ~variant ~index

let random_fault prng ~variants =
  if variants < 1 then invalid_arg "Faultgen.random_fault: need at least one variant";
  let variant = Prng.int prng variants in
  match Prng.int prng 4 with
  | 0 -> Flip_register { variant; reg = Prng.int prng 16; bit = Prng.int prng 32 }
  | 1 -> Flip_memory_bit { variant; offset = Prng.int prng 4096; bit = Prng.int prng 8 }
  | 2 -> Corrupt_syscall_arg { variant; bit = Prng.int prng 32 }
  | _ -> Drop_input_byte { variant; index = Prng.int prng 16 }

type report = {
  injected : int;
  recovered : int;
  failstop : int;
  clean : int;
  corrupted : int;
  crashed : int;
}

let pp_report ppf r =
  Format.fprintf ppf
    "%d faults injected: %d recovered, %d fail-stop, %d clean, %d corrupted, %d crashed"
    r.injected r.recovered r.failstop r.clean r.corrupted r.crashed

let recoveries_of sys =
  match Nsystem.supervisor sys with Some s -> Supervisor.recoveries s | None -> 0

let probe = Http.get "/"

let run_campaign ?(seed = 42) ?faults ?recover ?parallel config =
  match Deploy.build ?parallel ?recover config with
  | Error message -> Error ("build failed: " ^ message)
  | Ok sys -> (
    (* Pin the healthy response before any fault, on the same system,
       so "clean" and "served correctly after recovery" mean
       byte-identical to this. *)
    match Nsystem.serve sys probe with
    | Nsystem.Stopped _ -> Error "baseline request did not complete"
    | Nsystem.Served baseline ->
      let faults =
        match faults with
        | Some fs -> fs
        | None ->
          let prng = Prng.create ~seed in
          let variants = Monitor.variant_count (Nsystem.monitor sys) in
          List.init 12 (fun _ -> random_fault prng ~variants)
      in
      let report =
        ref { injected = 0; recovered = 0; failstop = 0; clean = 0; corrupted = 0; crashed = 0 }
      in
      let bump f = report := f !report in
      (* Each fault: inject while parked, probe once, classify against
         the baseline; a recovery must additionally serve a subsequent
         benign request byte-identically. Fail-stop and crashes are
         terminal — the system cannot absorb further faults. *)
      let rec go = function
        | [] -> Ok !report
        | fault :: rest -> (
          bump (fun r -> { r with injected = r.injected + 1 });
          let before = recoveries_of sys in
          (match Nsystem.run sys with
          | Monitor.Blocked_on_accept -> inject sys fault
          | Monitor.Alarm _ | Monitor.Exited _ | Monitor.Out_of_fuel -> ());
          let outcome = Nsystem.serve sys probe in
          Monitor.set_input_fault (Nsystem.monitor sys) None;
          match outcome with
          | Nsystem.Stopped (Monitor.Alarm _) ->
            bump (fun r -> { r with failstop = r.failstop + 1 });
            Ok !report
          | Nsystem.Stopped _ ->
            bump (fun r -> { r with crashed = r.crashed + 1 });
            Ok !report
          | Nsystem.Served response ->
            if recoveries_of sys > before then begin
              match Nsystem.serve sys probe with
              | Nsystem.Served after when after = baseline ->
                bump (fun r -> { r with recovered = r.recovered + 1 });
                go rest
              | Nsystem.Served _ | Nsystem.Stopped _ ->
                bump (fun r -> { r with corrupted = r.corrupted + 1 });
                Ok !report
            end
            else if response = baseline then begin
              bump (fun r -> { r with clean = r.clean + 1 });
              go rest
            end
            else begin
              bump (fun r -> { r with corrupted = r.corrupted + 1 });
              go rest
            end)
      in
      go faults)
