type access = Read | Write | Execute

exception Fault of { addr : int; access : access }

(* One slot per [Isa.instr_size]-aligned window of the segment. A slot
   caches the full decode result (tag included) so the CPU's fetch path
   is an array load; stores into the window reset it to [Not_decoded]. *)
type icache_slot = Not_decoded | Cached of (int * Isa.t, Isa.decode_error) result

type engine = Reference | Icache | Block

(* A compiled basic block registered over the slot span
   [entry slot, be_end). [be_valid] is shared with the compiled closure
   on the CPU side: flipping it to [false] both retires the cache entry
   and makes an in-flight execution of the block bail out after the
   store that hit it. *)
type block_entry = { be_end : int; be_valid : bool ref }

type block_registry = {
  entries : block_entry option array;  (* keyed by block-entry slot *)
  cover : int array;  (* per slot: how many live blocks span it *)
}

type t = {
  base : int;
  size : int;
  data : Bytes.t;
  mutable icache : icache_slot array option;  (* lazily created on first fetch *)
  mutable engine : engine;
  mutable blockreg : block_registry option;  (* lazily created on first compile *)
  mutable block_invalidations : int;
  (* Watermark of slots ever filled into the icache (empty when
     [wm_hi < wm_lo]). Decoded state — cached slots and registered
     blocks — only ever exists inside it, so a store outside the
     watermark (stack and heap traffic, the overwhelmingly common
     case) skips all invalidation with two compares. *)
  mutable wm_lo : int;
  mutable wm_hi : int;
}

let engine_of_string = function
  | "reference" -> Some Reference
  | "icache" -> Some Icache
  | "block" -> Some Block
  | _ -> None

let engine_to_string = function
  | Reference -> "reference"
  | Icache -> "icache"
  | Block -> "block"

(* NV_ENGINE pins the execution tier for a whole process (the CI matrix
   runs the full test tree under NV_ENGINE=block); unset or unknown
   values fall back to the predecoded icache, the pre-block default. *)
let default_engine () =
  match Sys.getenv_opt "NV_ENGINE" with
  | None -> Icache
  | Some s -> ( match engine_of_string s with Some e -> e | None -> Icache)

let create ~base ~size =
  if base < 0 || size < 0 || base + size > 0x1_0000_0000 then
    invalid_arg "Memory.create: segment outside the 32-bit address space";
  {
    base;
    size;
    data = Bytes.make size '\000';
    icache = None;
    engine = default_engine ();
    blockreg = None;
    block_invalidations = 0;
    wm_lo = max_int;
    wm_hi = -1;
  }

let base t = t.base

let size t = t.size

let in_range t addr = addr >= t.base && addr < t.base + t.size

let check t addr access = if not (in_range t addr) then raise (Fault { addr; access })

(* Fault for a multi-byte access [addr, addr+len): report the first
   out-of-range byte, exactly as the historical byte-at-a-time loops
   did. *)
let fault_range t addr len access =
  let rec first i =
    if i >= len then assert false
    else if not (in_range t (addr + i)) then raise (Fault { addr = addr + i; access })
    else first (i + 1)
  in
  first 0

let to_offset t addr =
  check t addr Read;
  addr - t.base

(* ------------------------------------------------------------------ *)
(* Engine selection                                                    *)
(* ------------------------------------------------------------------ *)

let set_engine t engine = t.engine <- engine

let engine t = t.engine

let set_icache_enabled t enabled = t.engine <- (if enabled then Icache else Reference)

(* Slot index = offset / instr_size, as a shift on the (non-negative)
   validated offsets the hot paths pass in. *)
let instr_shift = 3

let () = assert (Isa.instr_size = 1 lsl instr_shift)

let slot_count t = (t.size + Isa.instr_size - 1) lsr instr_shift

(* ------------------------------------------------------------------ *)
(* Compiled-block registry                                             *)
(* ------------------------------------------------------------------ *)

(* Upper bound on a compiled block's slot span. The store path only has
   to back-scan this many entry slots to find a block that covers the
   stored-into slot, so the bound keeps invalidation O(cap) in the worst
   case and O(1) on the common data-store path (cover count is zero). *)
let max_block_slots = 64

let block_invalidations t = t.block_invalidations

let blockreg t =
  match t.blockreg with
  | Some reg -> reg
  | None ->
    let n = slot_count t in
    let reg = { entries = Array.make n None; cover = Array.make n 0 } in
    t.blockreg <- Some reg;
    reg

let unregister reg slot =
  match reg.entries.(slot) with
  | None -> ()
  | Some { be_end; be_valid } ->
    be_valid := false;
    for s = slot to be_end - 1 do
      reg.cover.(s) <- reg.cover.(s) - 1
    done;
    reg.entries.(slot) <- None

let register_block t ~slot ~slots =
  if slots < 1 || slots > max_block_slots then
    invalid_arg "Memory.register_block: span out of range";
  let reg = blockreg t in
  if slot < 0 || slot + slots > Array.length reg.cover then
    invalid_arg "Memory.register_block: slot out of range";
  unregister reg slot;
  let be_valid = ref true in
  reg.entries.(slot) <- Some { be_end = slot + slots; be_valid };
  for s = slot to slot + slots - 1 do
    reg.cover.(s) <- reg.cover.(s) + 1
  done;
  (* The store path only looks at slots inside the decoded watermark;
     grow it so the invariant holds even for spans registered without a
     prior decode. *)
  if slot < t.wm_lo then t.wm_lo <- slot;
  if slot + slots - 1 > t.wm_hi then t.wm_hi <- slot + slots - 1;
  be_valid

(* Invalidate every registered block whose span intersects slots
   [lo, hi]. The cover counts make the no-block case (every store into
   plain data) a handful of array loads; only when a store actually
   lands under a compiled block do we back-scan the bounded window of
   entry slots that could span it. *)
let invalidate_blocks t lo hi =
  match t.blockreg with
  | None -> ()
  | Some reg ->
    let last = Array.length reg.cover - 1 in
    let hi = min hi last in
    let covered = ref false in
    for s = lo to hi do
      if reg.cover.(s) > 0 then covered := true
    done;
    if !covered then
      for e = max 0 (lo - max_block_slots + 1) to hi do
        match reg.entries.(e) with
        | Some { be_end; _ } when be_end > lo ->
          unregister reg e;
          t.block_invalidations <- t.block_invalidations + 1
        | _ -> ()
      done

let invalidate_icache t off len =
  let lo = off lsr instr_shift in
  let hi = (off + len - 1) lsr instr_shift in
  if lo <= t.wm_hi && hi >= t.wm_lo then begin
    (match t.icache with
    | None -> ()
    | Some cache ->
      let hi = min hi (Array.length cache - 1) in
      for i = lo to hi do
        cache.(i) <- Not_decoded
      done);
    invalidate_blocks t lo hi
  end

(* ------------------------------------------------------------------ *)
(* Checkpointing                                                       *)
(* ------------------------------------------------------------------ *)

type snapshot = Bytes.t

let snapshot t = Bytes.copy t.data

let restore t snap =
  if Bytes.length snap <> t.size then
    invalid_arg "Memory.restore: snapshot is for a different segment size";
  Bytes.blit snap 0 t.data 0 t.size;
  (* The rolled-back bytes may differ anywhere in the segment, so every
     cached decode and compiled block is suspect. Keep the allocated
     slot array — recovery campaigns roll back constantly and
     reallocating it each time churns the major heap — and bulk-reset
     it instead. *)
  (match t.icache with
  | None -> ()
  | Some cache -> Array.fill cache 0 (Array.length cache) Not_decoded);
  t.wm_lo <- max_int;
  t.wm_hi <- -1;
  match t.blockreg with
  | None -> ()
  | Some reg ->
    Array.iteri
      (fun slot entry ->
        match entry with
        | None -> ()
        | Some _ ->
          unregister reg slot;
          t.block_invalidations <- t.block_invalidations + 1)
      reg.entries

let load_byte t addr =
  check t addr Read;
  Char.code (Bytes.get t.data (addr - t.base))

let store_byte t addr b =
  check t addr Write;
  let off = addr - t.base in
  Bytes.set t.data off (Char.chr (b land 0xFF));
  invalidate_icache t off 1

let exec_byte t addr =
  check t addr Execute;
  Char.code (Bytes.get t.data (addr - t.base))

let load_word t addr =
  let off = addr - t.base in
  if off < 0 || off + 4 > t.size then fault_range t addr 4 Read;
  Int32.to_int (Bytes.get_int32_le t.data off) land 0xFFFFFFFF

let store_word t addr w =
  let off = addr - t.base in
  if off < 0 || off + 4 > t.size then fault_range t addr 4 Write;
  Bytes.set_int32_le t.data off (Int32.of_int w);
  invalidate_icache t off 4

let load_bytes t ~addr ~len =
  if len < 0 then invalid_arg "Memory.load_bytes: negative length";
  check t addr Read;
  if len > 0 then check t (addr + len - 1) Read;
  Bytes.sub t.data (addr - t.base) len

let store_bytes t ~addr data =
  let len = Bytes.length data in
  check t addr Write;
  if len > 0 then check t (addr + len - 1) Write;
  let off = addr - t.base in
  Bytes.blit data 0 t.data off len;
  if len > 0 then invalidate_icache t off len

let load_cstring t ~addr ~max_len =
  if max_len <= 0 then ""
  else begin
    check t addr Read;
    let off = addr - t.base in
    (* The scan may stop at a NUL, at [max_len], or fault at the end of
       the segment — whichever comes first. *)
    let window_end = min (off + max_len) t.size in
    let rec find i = if i >= window_end then i else if Bytes.get t.data i = '\000' then i else find (i + 1) in
    let stop = find off in
    if stop >= window_end && window_end < off + max_len then
      (* Ran off the segment before a NUL or the length bound. *)
      raise (Fault { addr = t.base + t.size; access = Read });
    Bytes.sub_string t.data off (stop - off)
  end

let store_cstring t ~addr s =
  (* Validate the whole destination (string plus NUL) before touching
     guest memory, so a faulting store never leaves a partial write. *)
  let len = String.length s + 1 in
  let off = addr - t.base in
  if off < 0 || off + len > t.size then fault_range t addr len Write;
  Bytes.blit_string s 0 t.data off (String.length s);
  Bytes.set t.data (off + String.length s) '\000';
  invalidate_icache t off len

(* ------------------------------------------------------------------ *)
(* Decoded fetch                                                       *)
(* ------------------------------------------------------------------ *)

(* The pre-cache fetch path, kept as the differential-testing and
   benchmarking reference: byte-at-a-time Execute-checked loads into a
   fresh buffer, then a full decode. *)
let fetch_reference t addr =
  let b = Bytes.create Isa.instr_size in
  for i = 0 to Isa.instr_size - 1 do
    Bytes.set b i (Char.chr (exec_byte t (addr + i)))
  done;
  Isa.decode b

let fetch_decoded t addr =
  let off = addr - t.base in
  if
    t.engine = Reference
    || off < 0
    || off + Isa.instr_size > t.size
    || off land (Isa.instr_size - 1) <> 0
  then
    (* Reference engine, out of range (faults like the byte loop), or an
       unaligned fetch that would alias a cache slot: decode fresh. *)
    fetch_reference t addr
  else begin
    let cache =
      match t.icache with
      | Some c -> c
      | None ->
        let c = Array.make (slot_count t) Not_decoded in
        t.icache <- Some c;
        c
    in
    let idx = off lsr instr_shift in
    match cache.(idx) with
    | Cached r -> r
    | Not_decoded ->
      let r = Isa.decode_at t.data ~pos:off in
      cache.(idx) <- Cached r;
      if idx < t.wm_lo then t.wm_lo <- idx;
      if idx > t.wm_hi then t.wm_hi <- idx;
      r
  end

(* ------------------------------------------------------------------ *)
(* Raw access for the block compiler                                   *)
(* ------------------------------------------------------------------ *)

let bytes t = t.data

let invalidate_window = invalidate_icache
