examples/authd_demo.ml: Format Nv_core Nv_httpd Nv_minic Nv_transform Printf String
