lib/workload/cost_model.mli:
