examples/webserver_demo.ml: Format List Nv_core Nv_httpd Nv_os Nv_transform Nv_workload String
