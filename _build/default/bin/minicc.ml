(* minicc: the mini-C compiler driver.

   Compile, inspect (AST / disassembly / transformed variant source),
   or run a program single-process on the simulated kernel. *)

open Cmdliner

type action = Run | Dump_ast | Dump_asm | Variant_source | Infer_uids

let action_arg =
  Arg.(
    value
    & opt
        (enum
           [
             ("run", Run); ("ast", Dump_ast); ("asm", Dump_asm);
             ("variant-source", Variant_source); ("infer-uids", Infer_uids);
           ])
        Run
    & info [ "a"; "action" ] ~docv:"ACTION"
        ~doc:
          "run | ast (pretty-printed parse) | asm (disassembly) | variant-source \
           (UID-transformed source for variant 1) | infer-uids (dataflow inference of \
           UID-typed ints)")

let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE.mc" ~doc:"mini-C source file")

let no_runtime_arg =
  Arg.(value & flag & info [ "no-runtime" ] ~doc:"Do not prepend the runtime library.")

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let with_source file no_runtime =
  let source = read_file file in
  if no_runtime then source else Nv_minic.Runtime.with_runtime source

let standard_world () =
  let vfs = Nv_os.Vfs.create () in
  Nv_os.Vfs.mkdir_p vfs "/etc";
  Nv_os.Vfs.install vfs ~path:"/etc/passwd" (Nv_os.Passwd.serialize Nv_os.Passwd.sample);
  Nv_os.Vfs.install vfs ~path:"/etc/group"
    (Nv_os.Passwd.serialize_group Nv_os.Passwd.sample_groups);
  vfs

let run action file no_runtime =
  let source = with_source file no_runtime in
  match action with
  | Dump_ast -> (
    match Nv_minic.Parser.parse source with
    | ast -> print_string (Nv_minic.Pretty.program ast)
    | exception Nv_minic.Parser.Error { line; message } ->
      Printf.eprintf "%s:%d: %s\n" file line message;
      exit 2
    | exception Nv_minic.Lexer.Error { line; message } ->
      Printf.eprintf "%s:%d: %s\n" file line message;
      exit 2)
  | Dump_asm -> (
    match Nv_minic.Codegen.compile_source source with
    | image ->
      let loaded = Nv_vm.Image.load image ~base:0x10000 ~size:(1 lsl 20) ~tag:0 in
      print_string
        (Nv_vm.Disasm.region loaded.Nv_vm.Image.memory
           ~start:loaded.Nv_vm.Image.layout.Nv_vm.Image.code_start
           ~count:(Array.length image.Nv_vm.Image.code))
    | exception Nv_minic.Codegen.Error message ->
      Printf.eprintf "%s: %s\n" file message;
      exit 2)
  | Variant_source -> (
    match
      Nv_transform.Uid_transform.variant_source
        ~f:(Nv_core.Reexpression.uid_for_variant 1) source
    with
    | Ok text -> print_string text
    | Error message ->
      Printf.eprintf "%s: %s\n" file message;
      exit 2)
  | Infer_uids -> (
    match Nv_minic.Parser.parse source with
    | ast ->
      let inferred = Nv_minic.Uid_infer.infer ast in
      if inferred = [] then print_endline "no additional UID variables inferred"
      else
        List.iter
          (fun { Nv_minic.Uid_infer.scope; name } ->
            match scope with
            | None -> Printf.printf "global %s\n" name
            | Some f -> Printf.printf "%s: %s\n" f name)
          inferred
    | exception Nv_minic.Parser.Error { line; message } ->
      Printf.eprintf "%s:%d: %s\n" file line message;
      exit 2)
  | Run -> (
    match Nv_minic.Codegen.compile_source source with
    | exception Nv_minic.Codegen.Error message ->
      Printf.eprintf "%s: %s\n" file message;
      exit 2
    | image -> (
      let kernel = Nv_os.Kernel.create ~variants:1 (standard_world ()) in
      let runner = Nv_minic.Runner.create image kernel in
      match Nv_minic.Runner.run runner with
      | Nv_minic.Runner.Exited status ->
        print_string (Nv_os.Kernel.stdout_contents kernel);
        prerr_string (Nv_os.Kernel.stderr_contents kernel);
        exit (status land 0xFF)
      | Nv_minic.Runner.Faulted fault ->
        Format.eprintf "fault: %a@." Nv_vm.Cpu.pp_fault fault;
        exit 139
      | Nv_minic.Runner.Blocked_on_accept ->
        prerr_endline "blocked on accept with no client";
        exit 4
      | Nv_minic.Runner.Out_of_fuel ->
        prerr_endline "out of fuel";
        exit 5))

let cmd =
  let doc = "compile, inspect, or run mini-C programs" in
  Cmd.v (Cmd.info "minicc" ~doc) Term.(const run $ action_arg $ file_arg $ no_runtime_arg)

let () = exit (Cmd.eval cmd)
