(** Type checking and elaboration of mini-C programs.

    The checker enforces the UID discipline the paper's transformation
    relies on (Section 3.3): [uid_t] is a distinct scalar type that
    supports only assignment, equality/ordering comparison against
    other [uid_t] values, use in boolean contexts (the implicit
    comparison with 0 that the transformer later explicates), and
    explicit casts. Arithmetic on [uid_t] is a type error - this is the
    "programs do not typically perform other operations on UID values"
    assumption, made checkable.

    Int {e literals} used where a [uid_t] is expected are implicitly
    coerced and elaborated to [(uid_t)lit] casts so the transformer can
    find every UID constant syntactically. Arbitrary [int] expressions
    do {e not} coerce: crossing the representation boundary requires an
    explicit cast (e.g. after parsing a UID from a trusted, already
    diversified file). *)

type error = { in_func : string option; message : string }

val pp_error : Format.formatter -> error -> unit

val builtins : (string * (Ast.ty list * Ast.ty)) list
(** Built-in functions (syscall wrappers): name, parameter types,
    return type. Includes the paper's Table 2 detection calls. *)

val check : Ast.program -> (Tast.tprogram, error list) result
(** Check and elaborate a program. All errors are collected (the
    checker recovers per-function). *)
