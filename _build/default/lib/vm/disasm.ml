let instruction memory ~addr =
  match Memory.load_bytes memory ~addr ~len:Isa.instr_size with
  | exception Memory.Fault _ -> Error (Printf.sprintf "unmapped address 0x%08X" addr)
  | raw -> (
    match Isa.decode raw with
    | Ok (tag, instr) -> Ok (tag, instr)
    | Error (Isa.Bad_opcode op) -> Error (Printf.sprintf "bad opcode %d" op)
    | Error (Isa.Bad_selector sel) -> Error (Printf.sprintf "bad selector %d" sel)
    | Error (Isa.Bad_register r) -> Error (Printf.sprintf "bad register %d" r))

let region memory ~start ~count =
  let buf = Buffer.create 256 in
  for i = 0 to count - 1 do
    let addr = start + (i * Isa.instr_size) in
    (match instruction memory ~addr with
    | Ok (tag, instr) ->
      Buffer.add_string buf
        (Format.asprintf "0x%08X [%d] %a" addr tag Isa.pp instr)
    | Error message -> Buffer.add_string buf (Format.asprintf "0x%08X ?? %s" addr message));
    Buffer.add_char buf '\n'
  done;
  Buffer.contents buf
