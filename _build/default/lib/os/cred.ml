type uid = Nv_vm.Word.t
type gid = Nv_vm.Word.t

let root : uid = 0

type t = { ruid : uid; euid : uid; rgid : gid; egid : gid }

let superuser = { ruid = root; euid = root; rgid = 0; egid = 0 }

let of_user ~uid ~gid = { ruid = uid; euid = uid; rgid = gid; egid = gid }

let is_root t = t.euid = root

type setid_error = Eperm

let setuid t uid =
  if t.euid = root then Ok { t with ruid = uid; euid = uid }
  else if uid = t.ruid then Ok { t with euid = uid }
  else Error Eperm

let seteuid t uid =
  if t.euid = root || t.ruid = root then Ok { t with euid = uid }
  else if uid = t.ruid then Ok { t with euid = uid }
  else Error Eperm

let setgid t gid =
  if t.euid = root then Ok { t with rgid = gid; egid = gid }
  else if gid = t.rgid then Ok { t with egid = gid }
  else Error Eperm

let setegid t gid =
  if t.euid = root || t.ruid = root then Ok { t with egid = gid }
  else if gid = t.rgid then Ok { t with egid = gid }
  else Error Eperm

let pp ppf t =
  Format.fprintf ppf "ruid=%a euid=%a rgid=%a egid=%a" Nv_vm.Word.pp t.ruid
    Nv_vm.Word.pp t.euid Nv_vm.Word.pp t.rgid Nv_vm.Word.pp t.egid
