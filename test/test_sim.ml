(* Unit and property tests for nv_sim: Heap, Engine, Resource. *)

open Nv_sim

(* ------------------------------------------------------------------ *)
(* Heap                                                                *)
(* ------------------------------------------------------------------ *)

let test_heap_empty () =
  let h : int Heap.t = Heap.create () in
  Alcotest.(check bool) "empty" true (Heap.is_empty h);
  Alcotest.(check bool) "pop none" true (Heap.pop h = None);
  Alcotest.(check bool) "peek none" true (Heap.peek h = None)

let test_heap_ordering () =
  let h = Heap.create () in
  Heap.push h ~key:3.0 ~seq:1 "c";
  Heap.push h ~key:1.0 ~seq:2 "a";
  Heap.push h ~key:2.0 ~seq:3 "b";
  let pop () = match Heap.pop h with Some (_, _, v) -> v | None -> "?" in
  let first = pop () in
  let second = pop () in
  let third = pop () in
  Alcotest.(check (list string)) "sorted" [ "a"; "b"; "c" ] [ first; second; third ]

let test_heap_fifo_ties () =
  let h = Heap.create () in
  for i = 1 to 10 do
    Heap.push h ~key:5.0 ~seq:i i
  done;
  let out = ref [] in
  let rec drain () =
    match Heap.pop h with
    | Some (_, _, v) ->
      out := v :: !out;
      drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check (list int)) "FIFO on equal keys" (List.init 10 (fun i -> i + 1))
    (List.rev !out)

let test_heap_peek_stable () =
  let h = Heap.create () in
  Heap.push h ~key:2.0 ~seq:1 "x";
  Heap.push h ~key:1.0 ~seq:2 "y";
  (match Heap.peek h with
  | Some (k, _, v) ->
    Alcotest.(check (float 0.0)) "peek key" 1.0 k;
    Alcotest.(check string) "peek value" "y" v
  | None -> Alcotest.fail "peek empty");
  Alcotest.(check int) "size unchanged" 2 (Heap.size h)

(* Popped slots must not pin their values: a heap that keeps popped
   entries reachable in its backing array leaks every event closure the
   engine ever executed. *)
let test_heap_pop_releases () =
  let h = Heap.create () in
  let weak = Weak.create 1 in
  (* Allocate the value inside a function so no local keeps it alive. *)
  let push_tracked () =
    let v = ref (String.make 64 'x') in
    Weak.set weak 0 (Some v);
    Heap.push h ~key:1.0 ~seq:1 v
  in
  push_tracked ();
  ignore (Heap.pop h);
  Gc.full_major ();
  Alcotest.(check bool) "popped value collected" false (Weak.check weak 0)

let test_heap_shrinks () =
  let h = Heap.create () in
  for i = 1 to 1000 do
    Heap.push h ~key:(float_of_int i) ~seq:i i
  done;
  for _ = 1 to 1000 do
    ignore (Heap.pop h)
  done;
  Alcotest.(check int) "drained" 0 (Heap.size h);
  (* Still usable after the internal shrink. *)
  Heap.push h ~key:1.0 ~seq:1 42;
  Alcotest.(check bool) "usable after shrink" true
    (match Heap.pop h with Some (_, _, 42) -> true | _ -> false)

let prop_heap_sorts =
  QCheck.Test.make ~name:"heap pops in nondecreasing key order" ~count:300
    QCheck.(list (float_range 0.0 1000.0))
    (fun keys ->
      let h = Heap.create () in
      List.iteri (fun i k -> Heap.push h ~key:k ~seq:i i) keys;
      let rec drain last =
        match Heap.pop h with
        | None -> true
        | Some (k, _, _) -> k >= last && drain k
      in
      drain neg_infinity)

let prop_heap_size =
  QCheck.Test.make ~name:"heap size tracks pushes and pops" ~count:200
    QCheck.(small_list (float_range 0.0 10.0))
    (fun keys ->
      let h = Heap.create () in
      List.iteri (fun i k -> Heap.push h ~key:k ~seq:i ()) keys;
      let n = List.length keys in
      Heap.size h = n
      &&
      (ignore (Heap.pop h);
       Heap.size h = max 0 (n - 1)))

(* ------------------------------------------------------------------ *)
(* Engine                                                              *)
(* ------------------------------------------------------------------ *)

let test_engine_order () =
  let e = Engine.create () in
  let trace = ref [] in
  Engine.schedule_at e ~time:2.0 (fun () -> trace := "b" :: !trace);
  Engine.schedule_at e ~time:1.0 (fun () -> trace := "a" :: !trace);
  Engine.schedule_at e ~time:3.0 (fun () -> trace := "c" :: !trace);
  Engine.run e;
  Alcotest.(check (list string)) "time order" [ "a"; "b"; "c" ] (List.rev !trace)

let test_engine_clock_advances () =
  let e = Engine.create () in
  Engine.schedule_at e ~time:5.5 (fun () -> ());
  Engine.run e;
  Alcotest.(check (float 1e-12)) "clock" 5.5 (Engine.now e)

let test_engine_past_rejected () =
  let e = Engine.create () in
  Engine.schedule_at e ~time:1.0 (fun () ->
      Alcotest.check_raises "past" (Invalid_argument "Engine.schedule_at: time in the past")
        (fun () -> Engine.schedule_at e ~time:0.5 (fun () -> ())));
  Engine.run e

let test_engine_negative_delay_rejected () =
  let e = Engine.create () in
  Alcotest.check_raises "negative"
    (Invalid_argument "Engine.schedule_after: negative delay") (fun () ->
      Engine.schedule_after e ~delay:(-1.0) (fun () -> ()))

let test_engine_nested_scheduling () =
  let e = Engine.create () in
  let fired = ref 0 in
  Engine.schedule_at e ~time:1.0 (fun () ->
      incr fired;
      Engine.schedule_after e ~delay:1.0 (fun () -> incr fired));
  Engine.run e;
  Alcotest.(check int) "both fired" 2 !fired;
  Alcotest.(check (float 1e-12)) "final time" 2.0 (Engine.now e)

let test_engine_until_horizon () =
  let e = Engine.create () in
  let fired = ref [] in
  List.iter
    (fun t -> Engine.schedule_at e ~time:t (fun () -> fired := t :: !fired))
    [ 1.0; 2.0; 3.0; 4.0 ];
  Engine.run ~until:2.5 e;
  Alcotest.(check (list (float 1e-12))) "only <= 2.5" [ 1.0; 2.0 ] (List.rev !fired);
  Alcotest.(check (float 1e-12)) "clock at horizon" 2.5 (Engine.now e);
  Alcotest.(check int) "events remain" 2 (Engine.pending e);
  Engine.run e;
  Alcotest.(check int) "all fired eventually" 4 (List.length !fired)

let test_engine_same_time_fifo () =
  let e = Engine.create () in
  let trace = ref [] in
  for i = 1 to 5 do
    Engine.schedule_at e ~time:1.0 (fun () -> trace := i :: !trace)
  done;
  Engine.run e;
  Alcotest.(check (list int)) "FIFO" [ 1; 2; 3; 4; 5 ] (List.rev !trace)

let test_engine_step () =
  let e = Engine.create () in
  Alcotest.(check bool) "empty step" false (Engine.step e);
  Engine.schedule_at e ~time:1.0 (fun () -> ());
  Alcotest.(check bool) "one step" true (Engine.step e);
  Alcotest.(check bool) "drained" false (Engine.step e)

(* ------------------------------------------------------------------ *)
(* Resource                                                            *)
(* ------------------------------------------------------------------ *)

let test_resource_serializes () =
  let e = Engine.create () in
  let cpu = Resource.create e ~name:"cpu" ~capacity:1 in
  let completions = ref [] in
  for i = 1 to 3 do
    Resource.serve cpu ~duration:2.0 (fun () ->
        completions := (i, Engine.now e) :: !completions)
  done;
  Engine.run e;
  let times = List.rev_map snd !completions in
  Alcotest.(check (list (float 1e-9))) "serialized completions" [ 2.0; 4.0; 6.0 ] times

let test_resource_parallel_capacity () =
  let e = Engine.create () in
  let cpu = Resource.create e ~name:"cpu" ~capacity:2 in
  let completions = ref [] in
  for _ = 1 to 4 do
    Resource.serve cpu ~duration:1.0 (fun () ->
        completions := Engine.now e :: !completions)
  done;
  Engine.run e;
  Alcotest.(check (list (float 1e-9))) "two waves" [ 1.0; 1.0; 2.0; 2.0 ]
    (List.rev !completions)

let test_resource_queue_length () =
  let e = Engine.create () in
  let cpu = Resource.create e ~name:"cpu" ~capacity:1 in
  for _ = 1 to 5 do
    Resource.serve cpu ~duration:1.0 (fun () -> ())
  done;
  Alcotest.(check int) "busy" 1 (Resource.busy cpu);
  Alcotest.(check int) "queued" 4 (Resource.queue_length cpu);
  Engine.run e;
  Alcotest.(check int) "drained" 0 (Resource.queue_length cpu);
  Alcotest.(check int) "idle" 0 (Resource.busy cpu)

let test_resource_utilization () =
  let e = Engine.create () in
  let cpu = Resource.create e ~name:"cpu" ~capacity:1 in
  Resource.serve cpu ~duration:2.0 (fun () -> ());
  Engine.schedule_at e ~time:4.0 (fun () -> ());
  Engine.run e;
  Alcotest.(check (float 1e-9)) "util = 0.5" 0.5 (Resource.utilization cpu)

let test_resource_utilization_horizon () =
  (* Regression: busy time used to be charged in full when a job
     *started*, so a horizon cut mid-job reported utilization > 1. A
     job of duration 10 observed at t=1 is exactly 1 core-second in. *)
  let e = Engine.create () in
  let cpu = Resource.create e ~name:"cpu" ~capacity:1 in
  Resource.serve cpu ~duration:10.0 (fun () -> ());
  Engine.run e ~until:1.0;
  Alcotest.(check (float 1e-9)) "pro-rated busy time" 1.0 (Resource.busy_time cpu);
  Alcotest.(check (float 1e-9)) "util = 1, not 10" 1.0 (Resource.utilization cpu)

let test_resource_invalid () =
  let e = Engine.create () in
  Alcotest.check_raises "capacity" (Invalid_argument "Resource.create: capacity must be >= 1")
    (fun () -> ignore (Resource.create e ~name:"x" ~capacity:0));
  let cpu = Resource.create e ~name:"cpu" ~capacity:1 in
  Alcotest.check_raises "duration" (Invalid_argument "Resource.serve: negative duration")
    (fun () -> Resource.serve cpu ~duration:(-0.1) (fun () -> ()))

let test_resource_completion_resubmits () =
  let e = Engine.create () in
  let cpu = Resource.create e ~name:"cpu" ~capacity:1 in
  let done_times = ref [] in
  Resource.serve cpu ~duration:1.0 (fun () ->
      done_times := Engine.now e :: !done_times;
      Resource.serve cpu ~duration:1.0 (fun () ->
          done_times := Engine.now e :: !done_times));
  Engine.run e;
  Alcotest.(check (list (float 1e-9))) "chained" [ 1.0; 2.0 ] (List.rev !done_times)

let prop_resource_conserves_jobs =
  QCheck.Test.make ~name:"every job submitted completes exactly once" ~count:100
    QCheck.(pair (int_range 1 4) (small_list (float_range 0.0 3.0)))
    (fun (capacity, durations) ->
      let e = Engine.create () in
      let r = Resource.create e ~name:"r" ~capacity in
      let completed = ref 0 in
      List.iter (fun d -> Resource.serve r ~duration:d (fun () -> incr completed)) durations;
      Engine.run e;
      !completed = List.length durations)

let prop_resource_busy_time_is_total_duration =
  QCheck.Test.make ~name:"busy time equals sum of durations" ~count:100
    QCheck.(small_list (float_range 0.0 3.0))
    (fun durations ->
      let e = Engine.create () in
      let r = Resource.create e ~name:"r" ~capacity:2 in
      List.iter (fun d -> Resource.serve r ~duration:d (fun () -> ())) durations;
      Engine.run e;
      let total = List.fold_left ( +. ) 0.0 durations in
      abs_float (Resource.busy_time r -. total) < 1e-6)

let prop_resource_utilization_bounded =
  QCheck.Test.make ~name:"utilization never exceeds 1 at any horizon" ~count:100
    QCheck.(
      pair
        (pair (int_range 1 4) (float_range 0.1 5.0))
        (small_list (float_range 0.0 3.0)))
    (fun ((capacity, horizon), durations) ->
      let e = Engine.create () in
      let r = Resource.create e ~name:"r" ~capacity in
      List.iter (fun d -> Resource.serve r ~duration:d (fun () -> ())) durations;
      Engine.run e ~until:horizon;
      let u = Resource.utilization r in
      0.0 <= u && u <= 1.0 +. 1e-9)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "nv_sim"
    [
      ( "heap",
        [
          Alcotest.test_case "empty" `Quick test_heap_empty;
          Alcotest.test_case "ordering" `Quick test_heap_ordering;
          Alcotest.test_case "FIFO ties" `Quick test_heap_fifo_ties;
          Alcotest.test_case "peek stable" `Quick test_heap_peek_stable;
          Alcotest.test_case "pop releases values" `Quick test_heap_pop_releases;
          Alcotest.test_case "shrinks after drain" `Quick test_heap_shrinks;
        ]
        @ qsuite [ prop_heap_sorts; prop_heap_size ] );
      ( "engine",
        [
          Alcotest.test_case "order" `Quick test_engine_order;
          Alcotest.test_case "clock advances" `Quick test_engine_clock_advances;
          Alcotest.test_case "past rejected" `Quick test_engine_past_rejected;
          Alcotest.test_case "negative delay rejected" `Quick test_engine_negative_delay_rejected;
          Alcotest.test_case "nested scheduling" `Quick test_engine_nested_scheduling;
          Alcotest.test_case "until horizon" `Quick test_engine_until_horizon;
          Alcotest.test_case "same-time FIFO" `Quick test_engine_same_time_fifo;
          Alcotest.test_case "step" `Quick test_engine_step;
        ] );
      ( "resource",
        [
          Alcotest.test_case "serializes" `Quick test_resource_serializes;
          Alcotest.test_case "parallel capacity" `Quick test_resource_parallel_capacity;
          Alcotest.test_case "queue length" `Quick test_resource_queue_length;
          Alcotest.test_case "utilization" `Quick test_resource_utilization;
          Alcotest.test_case "utilization at mid-job horizon" `Quick
            test_resource_utilization_horizon;
          Alcotest.test_case "invalid args" `Quick test_resource_invalid;
          Alcotest.test_case "completion resubmits" `Quick test_resource_completion_resubmits;
        ]
        @ qsuite
            [
              prop_resource_conserves_jobs;
              prop_resource_busy_time_is_total_duration;
              prop_resource_utilization_bounded;
            ] );
    ]
