lib/os/kernel.ml: Array Buffer Cred Hashtbl Nv_vm Option Printf Socket String Syscall Vfs
