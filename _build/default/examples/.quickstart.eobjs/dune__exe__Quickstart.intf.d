examples/quickstart.mli:
