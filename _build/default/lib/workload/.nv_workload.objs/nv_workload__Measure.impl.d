lib/workload/measure.ml: Array Format List Nv_core Nv_httpd Nv_util Printf String
