type file = { name : string; size : int }

let files =
  [
    { name = "index.html"; size = 2048 };
    { name = "small.html"; size = 512 };
    { name = "news.html"; size = 4096 };
    { name = "docs.html"; size = 6000 };
    { name = "large.html"; size = 16384 };
    { name = "style.css"; size = 1024 };
  ]

let content { name; size } =
  let header = Printf.sprintf "<html><!-- %s --><body>" name in
  let footer = "</body></html>\n" in
  let fill = size - String.length header - String.length footer in
  if fill < 0 then String.sub (header ^ footer) 0 size
  else begin
    let buf = Buffer.create size in
    Buffer.add_string buf header;
    for i = 0 to fill - 1 do
      Buffer.add_char buf (Char.chr (Char.code 'a' + (i mod 26)))
    done;
    Buffer.add_string buf footer;
    Buffer.contents buf
  end

let install vfs =
  List.iter
    (fun file ->
      Nv_os.Vfs.install vfs
        ~attrs:{ Nv_os.Vfs.mode = 0o644; owner = 0; group = 0 }
        ~path:("/var/www/" ^ file.name) (content file))
    files

let request_mix =
  (* Weighted roughly like a static-site session: the index dominates. *)
  [|
    "/"; "/"; "/"; "/index.html"; "/small.html"; "/small.html"; "/news.html";
    "/news.html"; "/docs.html"; "/style.css"; "/style.css"; "/large.html";
  |]
