lib/minic/runtime.mli:
