(** Shared {!Logs} sources for the library's subsystems. *)

val monitor : Logs.src
(** Rendezvous / divergence events from the N-variant monitor. *)

val kernel : Logs.src
(** Simulated-kernel syscall dispatch. *)

val vm : Logs.src
(** Virtual machine faults and traps. *)

val workload : Logs.src
(** Workload generator progress. *)

val setup : ?level:Logs.level -> unit -> unit
(** Install a [Fmt]-based reporter on stderr and set the global level
    (default [Logs.Warning]). Intended for executables; the library
    itself never calls this. *)
