lib/httpd/deploy.mli: Nv_core Nv_transform
