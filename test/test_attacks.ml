(* Tests for nv_attacks: payload geometry and the full attack-by-
   configuration verdict matrix (experiment X2). Each expectation below
   is one cell of the paper's detection-claims story. *)

open Nv_attacks
module Deploy = Nv_httpd.Deploy

(* ------------------------------------------------------------------ *)
(* Payload geometry                                                    *)
(* ------------------------------------------------------------------ *)

let test_null_overflow_length () =
  Alcotest.(check int) "exactly buffer size" Nv_httpd.Httpd_source.url_buffer_size
    (String.length (Payloads.null_overflow_url ()))

let test_partial_overwrite_length () =
  Alcotest.(check int) "one byte past" (Nv_httpd.Httpd_source.url_buffer_size + 1)
    (String.length (Payloads.partial_overwrite_url ~low_byte:'Z'))

let test_three_byte_length () =
  Alcotest.(check int) "three bytes past" (Nv_httpd.Httpd_source.url_buffer_size + 3)
    (String.length (Payloads.three_byte_overwrite_url ~low_bytes:"XYZ"))

let test_three_byte_validation () =
  Alcotest.(check bool) "wrong size rejected" true
    (try
       ignore (Payloads.three_byte_overwrite_url ~low_bytes:"XY");
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "NUL rejected" true
    (try
       ignore (Payloads.three_byte_overwrite_url ~low_bytes:"X\000Z");
       false
     with Invalid_argument _ -> true)

let test_code_injection_request_shape () =
  let sys = Result.get_ok (Deploy.build Deploy.Unmodified_single) in
  (match Nv_core.Nsystem.run sys with
  | Nv_core.Monitor.Blocked_on_accept -> ()
  | _ -> Alcotest.fail "not parked");
  let request = Payloads.code_injection_request sys ~tag:0 in
  Alcotest.(check bool) "fits the request buffer" true (String.length request < 1024);
  Alcotest.(check bool) "carries the target path" true
    (let contains s sub =
       let n = String.length sub in
       let rec scan i = i + n <= String.length s && (String.sub s i n = sub || scan (i + 1)) in
       scan 0
     in
     contains request "/secret/shadow")

(* ------------------------------------------------------------------ *)
(* Verdict matrix                                                      *)
(* ------------------------------------------------------------------ *)

let run name config =
  let attack = Option.get (Campaign.find name) in
  match Campaign.run_attack attack config with
  | Ok verdict -> verdict
  | Error e -> Alcotest.fail e

let check_verdict name config expected_label =
  let verdict = run name config in
  Alcotest.(check string)
    (Printf.sprintf "%s under %s" name (Deploy.name config))
    expected_label
    (Campaign.verdict_label verdict)

let test_baseline_benign_everywhere () =
  List.iter (fun c -> check_verdict "baseline-request" c "no effect") Deploy.all

let test_null_overflow_matrix () =
  (* Root escalation on every deployment except the UID variation. *)
  check_verdict "uid-null-overflow" Deploy.Unmodified_single "ESCALATED";
  check_verdict "uid-null-overflow" Deploy.Transformed_single "ESCALATED";
  check_verdict "uid-null-overflow" Deploy.Two_variant_address "ESCALATED";
  check_verdict "uid-null-overflow" Deploy.Two_variant_uid "DETECTED"

let test_null_overflow_detected_at_uid_interface () =
  (* Detection fires at the first UID-bearing rendezvous after the
     corruption: the inserted cc_eq check, or seteuid itself. *)
  match run "uid-null-overflow" Deploy.Two_variant_uid with
  | Campaign.Detected (Nv_core.Alarm.Arg_mismatch { syscall; _ }) ->
    let name = Nv_os.Syscall.name syscall in
    Alcotest.(check bool)
      (Printf.sprintf "at a UID interface (got %s)" name)
      true
      (name = "seteuid" || name = "cc_eq" || name = "uid_value")
  | v -> Alcotest.failf "unexpected verdict %s" (Campaign.verdict_label v)

let test_partial_byte_matrix () =
  check_verdict "uid-partial-byte" Deploy.Unmodified_single "CORRUPTED";
  check_verdict "uid-partial-byte" Deploy.Two_variant_address "CORRUPTED";
  check_verdict "uid-partial-byte" Deploy.Two_variant_uid "DETECTED"

let test_three_bytes_matrix () =
  check_verdict "uid-three-bytes" Deploy.Unmodified_single "CORRUPTED";
  check_verdict "uid-three-bytes" Deploy.Two_variant_uid "DETECTED"

let test_bit_set_low_matrix () =
  check_verdict "uid-bit-set-low" Deploy.Unmodified_single "CORRUPTED";
  check_verdict "uid-bit-set-low" Deploy.Two_variant_uid "DETECTED"

let test_bit_set_high_escape () =
  (* The paper's admitted weakness: the XOR key leaves bit 31
     unflipped, so a forced high bit decodes identically in both
     variants and the corruption goes undetected even under the UID
     variation. *)
  check_verdict "uid-bit-set-high" Deploy.Two_variant_uid "CORRUPTED";
  check_verdict "uid-bit-set-high" Deploy.Unmodified_single "CORRUPTED"

let test_guessed_key_injection_regression () =
  (* THE regression for the N>2 disjointness bug. Under the pre-fix
     shared-key family an attacker who learned variant 1's published
     key writes one forged root UID into every variant >= 1; variants
     1 and 2 decode it identically, out-vote variant 0's story at no
     rendezvous, and the request escalates. Per-variant keys turn the
     same injection into an immediate divergence. *)
  check_verdict "uid-guessed-key-injection" Deploy.Shared_key_three "ESCALATED";
  (* config4's keys ARE the published pair the attack guesses, so the
     fixed-key two-variant deployment also loses once keys leak — the
     attack's [assumes_keys] flag is what keeps this row out of the
     headline detection gates. *)
  check_verdict "uid-guessed-key-injection" Deploy.Two_variant_uid "ESCALATED";
  check_verdict "uid-guessed-key-injection" Deploy.Seeded_three "DETECTED";
  check_verdict "uid-guessed-key-injection" Deploy.Composed_three "DETECTED";
  check_verdict "uid-guessed-key-injection" Deploy.Composed_four "DETECTED"

let test_zero_injection_matrix () =
  (* Zero is every bare rotation's fixed point, so the rotation-only
     column falls to a stored zero; any keyed column detects it. *)
  check_verdict "uid-zero-injection" Deploy.Rotation_only_three "ESCALATED";
  check_verdict "uid-zero-injection" Deploy.Two_variant_uid "DETECTED";
  check_verdict "uid-zero-injection" Deploy.Composed_three "DETECTED"

let test_bit_set_high_closed_by_rotation () =
  (* The paper's bit-31 escape survives every pure-XOR column (pinned
     above for config4) but not the rotation/XOR composition: the
     rotation moves bit 31, so the forced high bit decodes apart. *)
  check_verdict "uid-bit-set-high" Deploy.Seeded_three "CORRUPTED";
  check_verdict "uid-bit-set-high" Deploy.Composed_three "DETECTED";
  check_verdict "uid-bit-set-high" Deploy.Composed_four "DETECTED"

let test_composed_columns_fully_detected () =
  (* The CI gate in executable form: no attack in the book leaves a
     composed deployment corrupted or escalated. *)
  let matrix =
    Campaign.run_matrix ~configs:[ Deploy.Composed_three; Deploy.Composed_four ] ()
  in
  match Campaign.undetected_cells matrix with
  | [] -> ()
  | cells ->
    Alcotest.failf "%d undetected composed cells, first: %s under %s"
      (List.length cells)
      (match cells with (a, _, _) :: _ -> a.Campaign.name | [] -> "")
      (match cells with (_, c, _) :: _ -> Deploy.name c | [] -> "")

let test_code_injection_matrix () =
  check_verdict "stack-code-injection" Deploy.Unmodified_single "ESCALATED";
  check_verdict "stack-code-injection" Deploy.Transformed_single "ESCALATED";
  check_verdict "stack-code-injection" Deploy.Two_variant_address "DETECTED";
  check_verdict "stack-code-injection" Deploy.Two_variant_uid "DETECTED"

let test_code_injection_detected_by_fault () =
  match run "stack-code-injection" Deploy.Two_variant_address with
  | Campaign.Detected (Nv_core.Alarm.Variant_fault { variant = 1; _ }) -> ()
  | v -> Alcotest.failf "expected variant-1 fault, got %s" (Campaign.verdict_label v)

let test_escalation_leaks_shadow () =
  match run "stack-code-injection" Deploy.Unmodified_single with
  | Campaign.Escalated evidence ->
    Alcotest.(check string) "marker" Payloads.shadow_marker evidence
  | v -> Alcotest.failf "expected escalation, got %s" (Campaign.verdict_label v)

let test_matrix_runner_and_rendering () =
  let matrix =
    Campaign.run_matrix
      ~attacks:[ Option.get (Campaign.find "baseline-request") ]
      ~configs:[ Deploy.Unmodified_single; Deploy.Two_variant_uid ]
      ()
  in
  Alcotest.(check int) "one row" 1 (List.length matrix);
  let rendered = Campaign.render_matrix matrix in
  let contains s sub =
    let n = String.length sub in
    let rec scan i = i + n <= String.length s && (String.sub s i n = sub || scan (i + 1)) in
    scan 0
  in
  Alcotest.(check bool) "has config columns" true (contains rendered "config4");
  Alcotest.(check bool) "has verdicts" true (contains rendered "no effect")

let test_find () =
  Alcotest.(check bool) "known" true (Campaign.find "uid-null-overflow" <> None);
  Alcotest.(check bool) "unknown" true (Campaign.find "nonexistent" = None);
  Alcotest.(check int) "nine attacks" 9 (List.length Campaign.attacks);
  Alcotest.(check bool)
    "guessed-key row is flagged key-compromise" true
    (match Campaign.find "uid-guessed-key-injection" with
    | Some a -> a.Campaign.assumes_keys
    | None -> false)

let () =
  Alcotest.run "nv_attacks"
    [
      ( "payloads",
        [
          Alcotest.test_case "null overflow length" `Quick test_null_overflow_length;
          Alcotest.test_case "partial length" `Quick test_partial_overwrite_length;
          Alcotest.test_case "three-byte length" `Quick test_three_byte_length;
          Alcotest.test_case "three-byte validation" `Quick test_three_byte_validation;
          Alcotest.test_case "code injection shape" `Quick test_code_injection_request_shape;
        ] );
      ( "matrix",
        [
          Alcotest.test_case "baseline benign" `Slow test_baseline_benign_everywhere;
          Alcotest.test_case "null overflow" `Slow test_null_overflow_matrix;
          Alcotest.test_case "null overflow at UID interface" `Quick
            test_null_overflow_detected_at_uid_interface;
          Alcotest.test_case "partial byte" `Slow test_partial_byte_matrix;
          Alcotest.test_case "three bytes" `Quick test_three_bytes_matrix;
          Alcotest.test_case "bit set low" `Quick test_bit_set_low_matrix;
          Alcotest.test_case "bit set high escape" `Quick test_bit_set_high_escape;
          Alcotest.test_case "guessed key (N>2 regression)" `Slow
            test_guessed_key_injection_regression;
          Alcotest.test_case "zero injection" `Slow test_zero_injection_matrix;
          Alcotest.test_case "bit set high closed by rotation" `Slow
            test_bit_set_high_closed_by_rotation;
          Alcotest.test_case "composed columns fully detected" `Slow
            test_composed_columns_fully_detected;
          Alcotest.test_case "code injection" `Slow test_code_injection_matrix;
          Alcotest.test_case "code injection fault" `Quick test_code_injection_detected_by_fault;
          Alcotest.test_case "escalation leaks shadow" `Quick test_escalation_leaks_shadow;
          Alcotest.test_case "runner and rendering" `Quick test_matrix_runner_and_rendering;
          Alcotest.test_case "find" `Quick test_find;
        ] );
    ]
