lib/core/reexpression.mli: Nv_vm
