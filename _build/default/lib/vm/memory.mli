(** Byte-addressable segmented guest memory.

    A segment maps the absolute address range [\[base, base + size)] to a
    backing byte array. Any access outside the segment raises
    {!Fault}; this is how address-space partitioning turns an injected
    absolute address into a detectable failure: an address that is
    mapped in variant 0's segment is unmapped in variant 1's.

    Words are stored little-endian. *)

type t

type access = Read | Write | Execute

exception Fault of { addr : int; access : access }
(** Raised on any access outside [\[base, base+size)]. *)

val create : base:int -> size:int -> t
(** Fresh zeroed segment. [base] and [size] must be non-negative and
    [base + size <= 2^32], otherwise [Invalid_argument]. *)

val base : t -> int
val size : t -> int

val in_range : t -> int -> bool
(** Whether an absolute address falls inside the segment. *)

val to_offset : t -> int -> int
(** Canonicalize an absolute address to a segment-relative offset (the
    paper's canonicalization function for address partitioning). Raises
    [Fault] if out of range. *)

val load_byte : t -> int -> int
val store_byte : t -> int -> int -> unit

val load_word : t -> int -> Word.t
(** Little-endian 32-bit load; all four bytes must be in range. *)

val store_word : t -> int -> Word.t -> unit

val load_bytes : t -> addr:int -> len:int -> bytes
val store_bytes : t -> addr:int -> bytes -> unit

val load_cstring : t -> addr:int -> max_len:int -> string
(** Read a NUL-terminated string starting at [addr]; stops at NUL or
    after [max_len] bytes (whichever comes first; the NUL is not
    included). Faults if it runs off the segment before terminating. *)

val store_cstring : t -> addr:int -> string -> unit
(** Write the string followed by a NUL byte. *)

val exec_byte : t -> int -> int
(** Like {!load_byte} but faults carry [Execute] access, used by the
    CPU's fetch path so traces distinguish fetch faults. *)
