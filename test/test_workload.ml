(* Tests for nv_workload: cost model, service-demand measurement, the
   closed-loop simulator, and the Table 3 shape properties. *)

open Nv_workload
module Deploy = Nv_httpd.Deploy

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

(* ------------------------------------------------------------------ *)
(* Cost model                                                          *)
(* ------------------------------------------------------------------ *)

let test_cost_cpu_monotone () =
  let c = Cost_model.default in
  let base = Cost_model.cpu_seconds c ~instructions:1000 ~rendezvous:10 ~variants:1 in
  let more_instr = Cost_model.cpu_seconds c ~instructions:2000 ~rendezvous:10 ~variants:1 in
  let more_rdv = Cost_model.cpu_seconds c ~instructions:1000 ~rendezvous:20 ~variants:1 in
  let more_var = Cost_model.cpu_seconds c ~instructions:1000 ~rendezvous:10 ~variants:2 in
  Alcotest.(check bool) "instructions cost" true (more_instr > base);
  Alcotest.(check bool) "rendezvous cost" true (more_rdv > base);
  Alcotest.(check bool) "variants cost" true (more_var > base)

let test_cost_wire () =
  let c = Cost_model.default in
  Alcotest.(check bool) "positive" true (Cost_model.wire_seconds c ~bytes:1500 > 0.0);
  Alcotest.(check (float 1e-12)) "zero bytes" 0.0 (Cost_model.wire_seconds c ~bytes:0)

let prop_cost_nonnegative =
  QCheck.Test.make ~name:"cpu cost is non-negative" ~count:200
    QCheck.(triple (int_bound 1_000_000) (int_bound 1000) (int_range 1 4))
    (fun (instructions, rendezvous, variants) ->
      Cost_model.cpu_seconds Cost_model.default ~instructions ~rendezvous ~variants >= 0.0)

(* ------------------------------------------------------------------ *)
(* Measurement                                                         *)
(* ------------------------------------------------------------------ *)

let profile config ~requests =
  let sys = Result.get_ok (Deploy.build config) in
  match Measure.profile ~requests sys with
  | Ok samples -> samples
  | Error e -> Alcotest.fail e

let test_measure_profile_counts () =
  let samples = profile Deploy.Unmodified_single ~requests:10 in
  Alcotest.(check int) "ten samples" 10 (Array.length samples);
  Array.iter
    (fun s ->
      Alcotest.(check bool) "instructions positive" true (s.Measure.instructions > 0);
      Alcotest.(check bool) "rendezvous positive" true (s.Measure.rendezvous > 0);
      Alcotest.(check bool) "response bytes positive" true (s.Measure.response_bytes > 0))
    samples

let test_measure_two_variants_double_instructions () =
  let single = Measure.mean_demand (profile Deploy.Unmodified_single ~requests:10) in
  let dual = Measure.mean_demand (profile Deploy.Two_variant_address ~requests:10) in
  let ratio =
    float_of_int dual.Measure.instructions /. float_of_int single.Measure.instructions
  in
  Alcotest.(check bool)
    (Printf.sprintf "ratio %.2f in [1.9, 2.1]" ratio)
    true
    (ratio > 1.9 && ratio < 2.1);
  (* Same canonical responses regardless of replication. *)
  Alcotest.(check int) "same bytes" single.Measure.response_bytes dual.Measure.response_bytes

let test_measure_deterministic () =
  let a = profile Deploy.Unmodified_single ~requests:8 in
  let b = profile Deploy.Unmodified_single ~requests:8 in
  Alcotest.(check bool) "same demands" true (a = b)

(* ------------------------------------------------------------------ *)
(* Webbench simulation                                                 *)
(* ------------------------------------------------------------------ *)

let synthetic_samples =
  [|
    { Measure.instructions = 5000; rendezvous = 20; request_bytes = 40; response_bytes = 2048 };
    { Measure.instructions = 8000; rendezvous = 25; request_bytes = 40; response_bytes = 4096 };
  |]

let test_webbench_runs () =
  let r =
    Webbench.run ~variants:1 ~samples:synthetic_samples { Webbench.clients = 1; duration_s = 5.0 }
  in
  Alcotest.(check bool) "completed requests" true (r.Webbench.requests_completed > 0);
  Alcotest.(check bool) "throughput positive" true (r.Webbench.throughput_kb_s > 0.0);
  Alcotest.(check bool) "latency positive" true (r.Webbench.latency_ms > 0.0);
  Alcotest.(check bool) "p99 >= mean" true
    (r.Webbench.latency_p99_ms >= r.Webbench.latency_ms -. 1e-9)

let test_webbench_deterministic () =
  let run () =
    Webbench.run ~seed:3 ~variants:2 ~samples:synthetic_samples
      { Webbench.clients = 4; duration_s = 5.0 }
  in
  Alcotest.(check bool) "same result" true (run () = run ())

(* Regression pin for the horizon-accounting fix: the issue/completion
   window predicate is now a single [time < duration]; these exact
   counts for a fixed seed guard against the predicate drifting. *)
let test_webbench_horizon_regression () =
  let r =
    Webbench.run ~seed:7 ~variants:2 ~samples:synthetic_samples
      { Webbench.clients = 3; duration_s = 5.0 }
  in
  Alcotest.(check int) "pinned request count" 2922 r.Webbench.requests_completed;
  Alcotest.(check int) "pinned rendezvous total" 65745 r.Webbench.rendezvous_total;
  Alcotest.(check bool) "p50 <= mean-ish p99" true
    (r.Webbench.latency_p50_ms <= r.Webbench.latency_p99_ms +. 1e-9)

(* Regression pin for the single-accounting-path fix: the latency
   summary (mean/p50/p99) is now sourced from the metrics timer's
   histogram — the same data every metrics consumer sees — instead of
   a side list kept next to it. These exact values for a fixed seed
   guard against the two paths reappearing and drifting apart. *)
let test_webbench_latency_single_accounting_pin () =
  let r =
    Webbench.run ~seed:7 ~variants:2 ~samples:synthetic_samples
      { Webbench.clients = 3; duration_s = 5.0 }
  in
  let check_ms what expected actual =
    Alcotest.(check bool)
      (Printf.sprintf "%s = %.9f (got %.9f)" what expected actual)
      true
      (Float.abs (expected -. actual) < 1e-9)
  in
  check_ms "mean" 5.130579926 r.Webbench.latency_ms;
  check_ms "p50" 5.130522727 r.Webbench.latency_p50_ms;
  check_ms "p99" 5.364863636 r.Webbench.latency_p99_ms

let test_webbench_saturation_increases_latency_and_throughput () =
  let unsat =
    Webbench.run ~variants:1 ~samples:synthetic_samples { Webbench.clients = 1; duration_s = 10.0 }
  in
  let sat =
    Webbench.run ~variants:1 ~samples:synthetic_samples { Webbench.clients = 15; duration_s = 10.0 }
  in
  Alcotest.(check bool) "more throughput under load" true
    (sat.Webbench.throughput_kb_s > unsat.Webbench.throughput_kb_s);
  Alcotest.(check bool) "more latency under load" true
    (sat.Webbench.latency_ms > unsat.Webbench.latency_ms);
  Alcotest.(check bool) "higher cpu utilization" true
    (sat.Webbench.cpu_utilization > unsat.Webbench.cpu_utilization)

let test_webbench_two_variants_slower () =
  let load = { Webbench.clients = 15; duration_s = 10.0 } in
  let one = Webbench.run ~variants:1 ~samples:synthetic_samples load in
  (* A 2-variant deployment executes every instruction twice, so its
     measured samples carry doubled instruction counts. *)
  let doubled =
    Array.map
      (fun s -> { s with Measure.instructions = 2 * s.Measure.instructions })
      synthetic_samples
  in
  let two = Webbench.run ~variants:2 ~samples:doubled load in
  Alcotest.(check bool) "redundant execution halves-ish throughput" true
    (two.Webbench.throughput_kb_s < 0.65 *. one.Webbench.throughput_kb_s)

let test_webbench_validation () =
  Alcotest.(check bool) "no samples" true
    (try
       ignore (Webbench.run ~variants:1 ~samples:[||] Webbench.unsaturated);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "no clients" true
    (try
       ignore
         (Webbench.run ~variants:1 ~samples:synthetic_samples
            { Webbench.clients = 0; duration_s = 1.0 });
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Table 3 shape (the headline reproduction claims)                    *)
(* ------------------------------------------------------------------ *)

let table3 = lazy (Result.get_ok (Table3.run ~requests:25 ()))

let find rows config = List.find (fun r -> r.Table3.config = config) rows

let test_table3_shape_unsaturated () =
  let rows = Lazy.force table3 in
  let c1 = find rows Deploy.Unmodified_single in
  let c3 = find rows Deploy.Two_variant_address in
  let t1 = c1.Table3.cell.Table3.unsat.Webbench.throughput_kb_s in
  let t3 = c3.Table3.cell.Table3.unsat.Webbench.throughput_kb_s in
  (* Paper: -12.2% throughput for the 2-variant baseline, unsaturated.
     Accept the 5..25% band: the deployment is I/O bound, so the
     overhead must be small but visible. *)
  let drop = (t1 -. t3) /. t1 in
  Alcotest.(check bool)
    (Printf.sprintf "unsat 2-variant drop %.1f%% in [5%%, 25%%]" (100.0 *. drop))
    true
    (drop > 0.05 && drop < 0.25)

let test_table3_shape_saturated () =
  let rows = Lazy.force table3 in
  let c1 = find rows Deploy.Unmodified_single in
  let c3 = find rows Deploy.Two_variant_address in
  let t1 = c1.Table3.cell.Table3.sat.Webbench.throughput_kb_s in
  let t3 = c3.Table3.cell.Table3.sat.Webbench.throughput_kb_s in
  (* Paper: -56% saturated (the redundant-computation halving). *)
  let drop = (t1 -. t3) /. t1 in
  Alcotest.(check bool)
    (Printf.sprintf "sat 2-variant drop %.1f%% in [40%%, 65%%]" (100.0 *. drop))
    true
    (drop > 0.40 && drop < 0.65)

let test_table3_shape_uid_variation_cheap () =
  let rows = Lazy.force table3 in
  let c3 = find rows Deploy.Two_variant_address in
  let c4 = find rows Deploy.Two_variant_uid in
  let t3 = c3.Table3.cell.Table3.sat.Webbench.throughput_kb_s in
  let t4 = c4.Table3.cell.Table3.sat.Webbench.throughput_kb_s in
  (* Paper: the UID variation costs 4.5% on top of Configuration 3. *)
  let drop = (t3 -. t4) /. t3 in
  Alcotest.(check bool)
    (Printf.sprintf "uid variation cost %.1f%% in [0%%, 10%%]" (100.0 *. drop))
    true
    (drop >= 0.0 && drop < 0.10)

let test_table3_shape_transformation_cheap () =
  let rows = Lazy.force table3 in
  let c1 = find rows Deploy.Unmodified_single in
  let c2 = find rows Deploy.Transformed_single in
  let t1 = c1.Table3.cell.Table3.sat.Webbench.throughput_kb_s in
  let t2 = c2.Table3.cell.Table3.sat.Webbench.throughput_kb_s in
  let drop = (t1 -. t2) /. t1 in
  Alcotest.(check bool)
    (Printf.sprintf "transformation cost %.1f%% in [0%%, 5%%]" (100.0 *. drop))
    true
    (drop >= -0.01 && drop < 0.05)

let test_table3_latency_ordering () =
  let rows = Lazy.force table3 in
  let latency config =
    (find rows config).Table3.cell.Table3.sat.Webbench.latency_ms
  in
  Alcotest.(check bool) "2-variant latency higher" true
    (latency Deploy.Two_variant_address > latency Deploy.Unmodified_single);
  Alcotest.(check bool) "uid variation adds a little" true
    (latency Deploy.Two_variant_uid >= latency Deploy.Two_variant_address)

let test_table3_render () =
  let rows = Lazy.force table3 in
  let text = Table3.render rows in
  let contains s sub =
    let n = String.length sub in
    let rec scan i = i + n <= String.length s && (String.sub s i n = sub || scan (i + 1)) in
    scan 0
  in
  Alcotest.(check bool) "has throughput row" true (contains text "Saturated throughput");
  Alcotest.(check bool) "has config4" true (contains text "config4")

let test_paper_values_complete () =
  Alcotest.(check int) "four metrics" 4 (List.length Table3.paper_values);
  List.iter
    (fun (_, cells) -> Alcotest.(check int) "four configs" 4 (List.length cells))
    Table3.paper_values

let () =
  Alcotest.run "nv_workload"
    [
      ( "cost-model",
        [
          Alcotest.test_case "cpu monotone" `Quick test_cost_cpu_monotone;
          Alcotest.test_case "wire" `Quick test_cost_wire;
        ]
        @ qsuite [ prop_cost_nonnegative ] );
      ( "measure",
        [
          Alcotest.test_case "profile counts" `Quick test_measure_profile_counts;
          Alcotest.test_case "two variants double instructions" `Quick
            test_measure_two_variants_double_instructions;
          Alcotest.test_case "deterministic" `Quick test_measure_deterministic;
        ] );
      ( "webbench",
        [
          Alcotest.test_case "runs" `Quick test_webbench_runs;
          Alcotest.test_case "deterministic" `Quick test_webbench_deterministic;
          Alcotest.test_case "horizon regression" `Quick test_webbench_horizon_regression;
          Alcotest.test_case "latency single accounting pin" `Quick
            test_webbench_latency_single_accounting_pin;
          Alcotest.test_case "saturation" `Quick
            test_webbench_saturation_increases_latency_and_throughput;
          Alcotest.test_case "two variants slower" `Quick test_webbench_two_variants_slower;
          Alcotest.test_case "validation" `Quick test_webbench_validation;
        ] );
      ( "table3",
        [
          Alcotest.test_case "unsaturated shape" `Slow test_table3_shape_unsaturated;
          Alcotest.test_case "saturated shape" `Slow test_table3_shape_saturated;
          Alcotest.test_case "uid variation cheap" `Slow test_table3_shape_uid_variation_cheap;
          Alcotest.test_case "transformation cheap" `Slow test_table3_shape_transformation_cheap;
          Alcotest.test_case "latency ordering" `Slow test_table3_latency_ordering;
          Alcotest.test_case "render" `Slow test_table3_render;
          Alcotest.test_case "paper values" `Quick test_paper_values_complete;
        ] );
    ]
