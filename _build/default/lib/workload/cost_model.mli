(** Timing model mapping measured guest work to simulated seconds.

    Table 3's absolute numbers came from a 1.4 GHz Pentium 4 and a LAN;
    we cannot (and per the reproduction ground rules need not) match
    them absolutely. The constants below are calibrated once so that
    the {e unsaturated} Configuration 1 lands near the paper's
    operating point, and everything else — the small unsaturated
    overheads, the roughly-halved saturated throughput of two-variant
    execution, the few-percent cost of adding the UID variation on top
    — must then emerge from measured instruction counts and rendezvous
    counts alone. The calibration constants are documented in
    EXPERIMENTS.md. *)

type t = {
  ns_per_instruction : float;
      (** guest CPU cost per retired instruction *)
  syscall_ns : float;
      (** kernel entry/exit + I/O bookkeeping per rendezvous {e per
          variant} (every variant enters the kernel and is parked at
          the rendezvous) *)
  check_ns_per_variant : float;
      (** monitor comparison cost per rendezvous {e per variant}
          beyond the first (the wrappers' checking work) *)
  rtt_s : float;  (** client-server round trip *)
  bandwidth_bytes_per_s : float;  (** server NIC *)
}

val default : t

val cpu_seconds : t -> instructions:int -> rendezvous:int -> variants:int -> float
(** Service demand of one request on the server CPU. *)

val wire_seconds : t -> bytes:int -> float
(** Transmission time of a payload on the NIC. *)
