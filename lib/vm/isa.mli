(** Instruction set of the guest machine.

    Instructions occupy a fixed {!instr_size} bytes. Byte 0 of every
    encoded instruction is its {e tag}: the instruction-set-tagging
    variation (Table 1 of the paper, row 3) gives each variant a
    distinct tag value, and the CPU faults when a fetched instruction's
    tag differs from the tag it was configured to expect. Untagged
    programs use tag 0.

    Register conventions (by convention only, not enforced):
    [r12] frame pointer, [r13] stack pointer, [r15] assembler/compiler
    scratch. Syscall ABI: number in [r0], arguments in [r1]..[r5],
    result replaces [r0]. *)

type reg = int
(** Register index in [\[0, 15\]]. *)

type operand =
  | Reg of reg
  | Imm of Word.t  (** 32-bit immediate *)

type binop = Add | Sub | Mul | Div | Mod | And | Or | Xor | Shl | Shr | Sar

type cond =
  | Eq | Ne
  | Lt | Le | Gt | Ge  (** signed *)
  | Ltu | Leu | Gtu | Geu  (** unsigned *)

type t =
  | Nop
  | Halt
  | Mov of reg * operand  (** [rd <- operand] *)
  | Load of reg * reg * int  (** [rd <- mem32\[rs + simm\]] *)
  | Store of reg * int * reg  (** [mem32\[rd + simm\] <- rs] *)
  | Loadb of reg * reg * int  (** byte load, zero-extended *)
  | Storeb of reg * int * reg  (** byte store, low 8 bits *)
  | Binop of binop * reg * reg * operand  (** [rd <- rs op operand] *)
  | Setcc of cond * reg * reg * operand  (** [rd <- rs cond operand ? 1 : 0] *)
  | Br of cond * reg * reg * Word.t  (** [if rs cond rt then pc <- target] *)
  | Jmp of Word.t
  | Jmpr of reg  (** indirect jump — the code-pointer attack surface *)
  | Call of Word.t  (** push return address; jump *)
  | Callr of reg
  | Ret  (** pop return address into pc *)
  | Push of reg
  | Pop of reg
  | Syscall

val instr_size : int
(** 8 bytes. *)

val eval_cond : cond -> Word.t -> Word.t -> bool
(** Evaluate a comparison on two words. *)

val eval_binop : binop -> Word.t -> Word.t -> Word.t
(** Evaluate an ALU operation. Raises [Division_by_zero] for
    [Div]/[Mod] with a zero divisor. *)

type decode_error =
  | Bad_opcode of int
  | Bad_selector of int
  | Bad_register of int

val encode : tag:int -> t -> Bytes.t
(** Encode to [instr_size] bytes. Raises [Invalid_argument] when a
    register index, the tag, or an immediate is out of range. *)

val decode : Bytes.t -> (int * t, decode_error) result
(** [decode b] reads one instruction from an [instr_size]-byte buffer
    and returns [(tag, instruction)]. *)

val decode_at : Bytes.t -> pos:int -> (int * t, decode_error) result
(** Like {!decode} but reads the [instr_size] bytes starting at [pos]
    inside a larger buffer, without copying. Raises [Invalid_argument]
    when the window does not fit. *)

val pp : Format.formatter -> t -> unit
(** Assembly-like rendering, e.g. [add r1, r2, #4]. *)

val pp_cond : Format.formatter -> cond -> unit
val pp_binop : Format.formatter -> binop -> unit
