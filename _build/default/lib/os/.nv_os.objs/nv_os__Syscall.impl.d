lib/os/syscall.ml: List Printf
