type reason =
  | Variant_fault of { variant : int; fault : Nv_vm.Cpu.fault }
  | Variant_halted of { variant : int }
  | Syscall_mismatch of { numbers : int array }
  | Arg_mismatch of { syscall : int; arg_index : int; values : int array }
  | String_mismatch of {
      syscall : int;
      arg_index : int;
      lengths : int array;
      digests : int array;
    }
  | Output_mismatch of { syscall : int; fd : int }
  | Cond_mismatch of { values : int array }
  | Exit_mismatch of { statuses : int array }
  | Signal_delivery_failed of { variant : int; detail : string }

let pp_array pp_elem ppf arr =
  Format.fprintf ppf "[%s]"
    (String.concat "; " (Array.to_list (Array.map (Format.asprintf "%a" pp_elem) arr)))

let pp_int ppf = Format.fprintf ppf "%d"

let pp_hex ppf = Format.fprintf ppf "0x%08X"

let pp ppf = function
  | Variant_fault { variant; fault } ->
    Format.fprintf ppf "variant %d entered an alarm state: %a" variant Nv_vm.Cpu.pp_fault
      fault
  | Variant_halted { variant } ->
    Format.fprintf ppf "variant %d halted outside the kernel interface" variant
  | Syscall_mismatch { numbers } ->
    Format.fprintf ppf "variants made different system calls: %s"
      (String.concat " vs "
         (Array.to_list (Array.map Nv_os.Syscall.name numbers)))
  | Arg_mismatch { syscall; arg_index; values } ->
    Format.fprintf ppf "%s: canonical argument %d differs across variants: %a"
      (Nv_os.Syscall.name syscall) arg_index (pp_array pp_hex) values
  | String_mismatch { syscall; arg_index; lengths; digests } ->
    Format.fprintf ppf
      "%s: string argument %d differs across variants: lengths %a, fnv1a %a"
      (Nv_os.Syscall.name syscall) arg_index (pp_array pp_int) lengths
      (pp_array pp_hex) digests
  | Output_mismatch { syscall; fd } ->
    Format.fprintf ppf "%s: variants wrote different bytes to shared fd %d"
      (Nv_os.Syscall.name syscall) fd
  | Cond_mismatch { values } ->
    Format.fprintf ppf "cond_chk: variants took different paths: %a" (pp_array pp_int)
      values
  | Exit_mismatch { statuses } ->
    Format.fprintf ppf "variants exited with different statuses: %a" (pp_array pp_int)
      statuses
  | Signal_delivery_failed { variant; detail } ->
    Format.fprintf ppf "signal delivery failed in variant %d: %s" variant detail

let to_string reason = Format.asprintf "%a" pp reason

let short_label = function
  | Variant_fault _ -> "fault"
  | Variant_halted _ -> "halt"
  | Syscall_mismatch _ -> "syscall"
  | Arg_mismatch _ -> "arg"
  | String_mismatch _ -> "string"
  | Output_mismatch _ -> "output"
  | Cond_mismatch _ -> "cond"
  | Exit_mismatch _ -> "exit"
  | Signal_delivery_failed _ -> "signal"

(* Indices disagreeing with the modal value; ties between counts are
   broken toward variant 0's value, so a two-variant mismatch
   implicates variant 1 — with N=2 the monitor can only prove
   disagreement, not which side is at fault, and the bundle says so by
   listing every index that differs from the majority. *)
let divergent_indices values =
  let n = Array.length values in
  if n = 0 then []
  else begin
    let count v = Array.fold_left (fun acc x -> if x = v then acc + 1 else acc) 0 values in
    let modal = ref values.(0) in
    let best = ref (count values.(0)) in
    Array.iter
      (fun v ->
        let c = count v in
        if c > !best then begin
          modal := v;
          best := c
        end)
      values;
    List.filter (fun i -> values.(i) <> !modal) (List.init n Fun.id)
  end

let to_json reason =
  let message = to_string reason in
  let open Nv_util.Metrics.Json in
  let num i = Num (float_of_int i) in
  let nums arr = List (Array.to_list (Array.map num arr)) in
  let hex v = Str (Printf.sprintf "0x%08X" v) in
  let hexes arr = List (Array.to_list (Array.map hex arr)) in
  let divergent arr = ("divergent_variants", List (List.map num (divergent_indices arr))) in
  let syscall n = [ ("syscall", num n); ("syscall_name", Str (Nv_os.Syscall.name n)) ] in
  let fields =
    match reason with
    | Variant_fault { variant; fault } ->
        [
          ("variant", num variant);
          ("fault", Str (Format.asprintf "%a" Nv_vm.Cpu.pp_fault fault));
          ("divergent_variants", List [ num variant ]);
        ]
    | Variant_halted { variant } ->
        [ ("variant", num variant); ("divergent_variants", List [ num variant ]) ]
    | Syscall_mismatch { numbers } ->
        [
          ("numbers", nums numbers);
          ( "names",
            List (Array.to_list (Array.map (fun n -> Str (Nv_os.Syscall.name n)) numbers))
          );
          divergent numbers;
        ]
    | Arg_mismatch { syscall = n; arg_index; values } ->
        syscall n
        @ [ ("arg_index", num arg_index); ("values", hexes values); divergent values ]
    | String_mismatch { syscall = n; arg_index; lengths; digests } ->
        syscall n
        @ [
            ("arg_index", num arg_index);
            ("lengths", nums lengths);
            ("digests", hexes digests);
            divergent digests;
          ]
    | Output_mismatch { syscall = n; fd } -> syscall n @ [ ("fd", num fd) ]
    | Cond_mismatch { values } -> [ ("values", nums values); divergent values ]
    | Exit_mismatch { statuses } -> [ ("statuses", nums statuses); divergent statuses ]
    | Signal_delivery_failed { variant; detail } ->
        [
          ("variant", num variant);
          ("detail", Str detail);
          ("divergent_variants", List [ num variant ]);
        ]
  in
  Obj
    (("class", Str (short_label reason)) :: ("message", Str message) :: fields)
