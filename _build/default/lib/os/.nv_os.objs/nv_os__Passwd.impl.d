lib/os/passwd.ml: Cred List Nv_vm Printf String
