let name_buffer_size = 32

let body =
  {|
// ---- authd: a login service in the shape of Chen et al.'s sshd ----

char linebuf[128];
char namebuf[32];            // VULNERABLE: unbounded strcpy of the username
uid_t admins[4] = {0, 33, 0, 0};  // sits right after namebuf
int admin_count = 2;
int logins_served = 0;

int read_line(int fd) {
  int n = sys_read(fd, linebuf, 127);
  if (n < 0) { n = 0; }
  linebuf[n] = '\0';
  int nl = find_char(linebuf, 0, '\n');
  if (nl >= 0) { linebuf[nl] = '\0'; }
  return n;
}

int respond(int fd, char *verdict) {
  write_str(fd, verdict);
  write_str(fd, "\n");
  return 1;
}

int handle(int fd) {
  read_line(fd);
  if (!starts_with(linebuf, "LOGIN ")) {
    respond(fd, "BAD");
    return 0;
  }
  strcpy(namebuf, &linebuf[6]);   // overflow: no bounds check
  uid_t uid = getpwnam_uid(namebuf);
  if (uid == (uid_t)(-1)) {
    respond(fd, "NOUSER");
    return 0;
  }
  int is_admin = 0;
  for (int i = 0; i < admin_count; i++) {
    if (uid == admins[i]) { is_admin = 1; }
  }
  if (is_admin) {
    respond(fd, "ADMIN");
  } else {
    respond(fd, "OK");
  }
  logins_served = logins_served + 1;
  return 1;
}

int main(void) {
  while (1) {
    int fd = sys_accept(3);
    if (fd < 0) { return 1; }
    handle(fd);
    sys_close(fd);
  }
  return 0;
}
|}

let source = Nv_minic.Runtime.with_runtime body

let login user = Printf.sprintf "LOGIN %s\n" user

let overflow_login ~target_uid =
  let b0 = Nv_vm.Word.byte target_uid 0 in
  let b1 = Nv_vm.Word.byte target_uid 1 in
  let b2 = Nv_vm.Word.byte target_uid 2 in
  let b3 = Nv_vm.Word.byte target_uid 3 in
  (* strcpy carries the low NUL-free bytes; its terminator supplies the
     first zero; any byte after that is out of the attacker's reach. *)
  if b0 = 0 || b1 = 0 || b2 <> 0 || b3 <> 0 then
    invalid_arg "Authd_source.overflow_login: uid must be 0x0000YYXX with XX,YY nonzero";
  Printf.sprintf "LOGIN %s%c%c\n" (String.make name_buffer_size 'A') (Char.chr b0)
    (Char.chr b1)
